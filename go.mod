module msrnet

go 1.22
