// Package msrnet is a timing-optimization library for multisource
// (multidriver bus) nets, reproducing Lillis & Cheng, "Timing
// Optimization for Multisource Nets: Characterization and Optimal
// Repeater Insertion" (DAC'97 / IEEE TCAD vol. 18 no. 3, 1999).
//
// The library provides:
//
//   - the augmented RC-diameter (ARD) performance measure and its
//     linear-time computation under the Elmore delay model (paper §III);
//   - provably optimal repeater (bidirectional buffer) insertion for a
//     fixed routing topology with prescribed insertion points, under the
//     min-cost-subject-to-timing formulation, producing the full
//     cost/performance tradeoff suite (paper §IV);
//   - discrete driver sizing in the same framework (paper §V), plus the
//     documented extensions: inverting repeaters with polarity
//     feasibility and per-wire width selection;
//   - supporting substrates: rectilinear Steiner routing, random net
//     generation, a transient RC simulator for validation, JSON
//     persistence and SVG rendering.
//
// # Quick start
//
//	tech := msrnet.DefaultTech()
//	b := msrnet.NewBuilder(tech)
//	b.AddTerminal("cpu", 0, 0, msrnet.Roles{Source: true, Sink: true})
//	b.AddTerminal("dma", 9000, 1000, msrnet.Roles{Source: true, Sink: true})
//	b.AddTerminal("mem", 4000, 8000, msrnet.Roles{Sink: true})
//	net, err := b.AutoRoute()            // Steiner route + insertion points
//	...
//	suite, err := net.OptimizeRepeaters() // full cost/ARD tradeoff
//	best, ok := suite.MinCost(2.5)        // cheapest meeting ARD ≤ 2.5 ns
//
// Units: µm, pF, kΩ, ns (kΩ·pF = ns).
package msrnet

import (
	"fmt"
	"io"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/geom"
	"msrnet/internal/netio"
	"msrnet/internal/ptree"
	"msrnet/internal/rcsim"
	"msrnet/internal/rctree"
	"msrnet/internal/rsmt"
	"msrnet/internal/slew"
	"msrnet/internal/spef"
	"msrnet/internal/svgplot"
	"msrnet/internal/topo"
)

// Re-exported library types. These aliases make the public API
// self-contained while the implementation lives in internal packages.
type (
	// Tech bundles wire parasitics and the repeater/driver libraries.
	Tech = buslib.Tech
	// Wire holds per-µm parasitics.
	Wire = buslib.Wire
	// Buffer is a unidirectional buffer.
	Buffer = buslib.Buffer
	// Repeater is a bidirectional buffer with distinct A/B sides.
	Repeater = buslib.Repeater
	// Driver is a sizing option for a terminal's bus driver.
	Driver = buslib.Driver
	// Terminal carries a pin's electrical parameters.
	Terminal = buslib.Terminal
	// Assignment is a concrete optimization outcome: placed repeaters,
	// driver overrides and wire widths.
	Assignment = rctree.Assignment
	// Placed is a repeater at an insertion point with orientation.
	Placed = rctree.Placed
	// Suite is the Pareto cost/ARD tradeoff returned by the optimizer.
	Suite = core.Suite
	// RootSolution is one point of the tradeoff suite.
	RootSolution = core.RootSolution
	// OptimizeOptions configures the dynamic program.
	OptimizeOptions = core.Options
	// OptimizeStats reports dynamic-programming effort.
	OptimizeStats = core.Stats
	// Point is a planar location in µm.
	Point = geom.Point
	// Topology is the underlying routing-tree representation, exposed for
	// advanced use (custom traversals, direct node access).
	Topology = topo.Tree
)

// DefaultTech returns the experimental technology of the paper's §VI: a
// bidirectional repeater built from a pair of 1X buffers and a
// {1X, 2X, 3X, 4X} driver library. See DESIGN.md §4 for the provenance of
// the numeric values.
func DefaultTech() Tech { return buslib.Default() }

// DefaultTerminal returns the symmetric source+sink terminal model used
// in the paper's experiments (AAT = 0, Q folding in the output buffer).
func DefaultTerminal(name string) Terminal { return buslib.DefaultTerminal(name) }

// RepeaterFromPair builds a bidirectional repeater from two copies of a
// unidirectional buffer.
func RepeaterFromPair(b Buffer) Repeater { return buslib.RepeaterFromPair(b) }

// Roles declares how a terminal participates on the bus.
type Roles struct {
	Source bool
	Sink   bool
}

// Builder incrementally constructs a multisource net.
type Builder struct {
	tech  Tech
	names []string
	pts   []Point
	terms []Terminal
	// explicit topology (optional)
	edges [][2]int
}

// NewBuilder starts a net under the given technology.
func NewBuilder(tech Tech) *Builder {
	return &Builder{tech: tech}
}

// AddTerminal places a pin at (x, y) µm with default electrical
// parameters and the given roles, returning its terminal index.
func (b *Builder) AddTerminal(name string, x, y float64, roles Roles) int {
	t := buslib.DefaultTerminal(name)
	t.IsSource = roles.Source
	t.IsSink = roles.Sink
	return b.AddCustomTerminal(name, x, y, t)
}

// AddCustomTerminal places a pin with fully specified electrical
// parameters.
func (b *Builder) AddCustomTerminal(name string, x, y float64, t Terminal) int {
	t.Name = name
	b.names = append(b.names, name)
	b.pts = append(b.pts, geom.Pt(x, y))
	b.terms = append(b.terms, t)
	return len(b.pts) - 1
}

// Connect adds an explicit wire between two terminal indices; the net
// then uses the given topology instead of auto-routing. Wire length is
// the rectilinear distance.
func (b *Builder) Connect(i, j int) {
	b.edges = append(b.edges, [2]int{i, j})
}

// InsertionSpacing is the default maximum distance between candidate
// repeater locations (the paper's 800 µm rule).
const InsertionSpacing = 800.0

// AutoRoute routes the terminals with a rectilinear Steiner heuristic and
// places insertion points at the default spacing.
func (b *Builder) AutoRoute() (*Net, error) {
	return b.AutoRouteSpacing(InsertionSpacing)
}

// SynthesizeTimingDriven performs multisource timing-driven topology
// synthesis (the §VII extension): candidate topologies from the P-Tree
// interval dynamic program and the 1-Steiner heuristic are each optimized
// with repeater insertion, and the topology whose *optimized* ARD is best
// is returned together with its tradeoff suite. Explicit Connect edges
// are ignored; the router chooses the topology.
func (b *Builder) SynthesizeTimingDriven() (*Net, Suite, error) {
	if len(b.pts) < 2 {
		return nil, nil, fmt.Errorf("msrnet: need at least two terminals, got %d", len(b.pts))
	}
	res, err := ptree.TimingDriven(b.pts, b.terms, b.tech, InsertionSpacing, ptree.Options{})
	if err != nil {
		return nil, nil, err
	}
	return &Net{Tree: res.Tree, Tech: b.tech}, res.Suite, nil
}

// AutoRouteSpacing is AutoRoute with explicit insertion-point spacing;
// spacing 0 places no insertion points.
func (b *Builder) AutoRouteSpacing(spacing float64) (*Net, error) {
	if len(b.pts) < 2 {
		return nil, fmt.Errorf("msrnet: need at least two terminals, got %d", len(b.pts))
	}
	var tr *topo.Tree
	if len(b.edges) > 0 {
		tr = topo.New()
		ids := make([]int, len(b.pts))
		for i := range b.pts {
			ids[i] = tr.AddTerminal(b.pts[i], b.terms[i])
		}
		for _, e := range b.edges {
			tr.AddEdgeAuto(ids[e[0]], ids[e[1]])
		}
		tr.EnsureTerminalLeaves()
	} else {
		st := rsmt.Steiner(b.pts)
		var err error
		tr, err = fromRSMT(st, b.terms)
		if err != nil {
			return nil, err
		}
	}
	if spacing > 0 {
		tr.PlaceInsertionPoints(spacing)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("msrnet: %w", err)
	}
	return &Net{Tree: tr, Tech: b.tech}, nil
}

func fromRSMT(st rsmt.Tree, terms []Terminal) (*topo.Tree, error) {
	tr := topo.New()
	ids := make([]int, len(st.Points))
	for i, pt := range st.Points {
		if i < st.NumTerminals {
			ids[i] = tr.AddTerminal(pt, terms[i])
		} else {
			ids[i] = tr.AddSteiner(pt)
		}
	}
	for _, e := range st.Edges {
		tr.AddEdge(ids[e[0]], ids[e[1]], geom.Dist(st.Points[e[0]], st.Points[e[1]]))
	}
	tr.EnsureTerminalLeaves()
	return tr, nil
}

// Net is a routed multisource net ready for analysis and optimization.
type Net struct {
	Tree *Topology
	Tech Tech
}

// WrapTopology adopts an existing topology (e.g. loaded from a file or
// produced by internal packages) as a Net.
func WrapTopology(tr *Topology, tech Tech) *Net { return &Net{Tree: tr, Tech: tech} }

// ARDResult reports the augmented RC-diameter and its critical pair.
type ARDResult struct {
	ARD      float64
	CritSrc  string // critical source terminal name ("" if none)
	CritSink string // critical sink terminal name
}

// ARD computes the augmented RC-diameter of the net under a concrete
// assignment (use the zero Assignment for the bare net), in linear time
// (paper §III).
func (n *Net) ARD(asg Assignment) (ARDResult, error) {
	if err := n.Tree.Validate(); err != nil {
		return ARDResult{}, err
	}
	rt := n.root()
	net := rctree.NewNet(rt, n.Tech, asg)
	res := ard.Compute(net, ard.Options{})
	out := ARDResult{ARD: res.ARD}
	if res.CritSrc >= 0 {
		out.CritSrc = n.Tree.Node(res.CritSrc).Term.Name
	}
	if res.CritSink >= 0 {
		out.CritSink = n.Tree.Node(res.CritSink).Term.Name
	}
	return out, nil
}

// PathDelay returns the Elmore delay from source terminal src to sink
// terminal dst (terminal names) under the assignment, excluding AAT/Q.
func (n *Net) PathDelay(src, dst string, asg Assignment) (float64, error) {
	s, err := n.terminalByName(src)
	if err != nil {
		return 0, err
	}
	d, err := n.terminalByName(dst)
	if err != nil {
		return 0, err
	}
	net := rctree.NewNet(n.root(), n.Tech, asg)
	return net.PathDelay(s, d), nil
}

// Optimize runs the multisource repeater-insertion dynamic program with
// full control over the options, returning the Pareto suite and run
// statistics.
func (n *Net) Optimize(opt OptimizeOptions) (Suite, OptimizeStats, error) {
	res, err := core.Optimize(n.root(), n.Tech, opt)
	if err != nil {
		return nil, OptimizeStats{}, err
	}
	return res.Suite, res.Stats, nil
}

// OptimizeRepeaters runs optimal repeater insertion (paper §IV) and
// returns the cost/ARD tradeoff suite.
func (n *Net) OptimizeRepeaters() (Suite, error) {
	s, _, err := n.Optimize(OptimizeOptions{Repeaters: true})
	return s, err
}

// SizeDrivers runs discrete driver sizing (paper §V) and returns the
// tradeoff suite.
func (n *Net) SizeDrivers() (Suite, error) {
	s, _, err := n.Optimize(OptimizeOptions{SizeDrivers: true})
	return s, err
}

// SlewModel parameterizes the slew-aware generalized delay evaluation
// (see internal/slew): K is the buffer delay sensitivity to input
// transition time, InputSlew the transition time of primary inputs.
type SlewModel = slew.Model

// SlewARD evaluates the generalized, slew-aware augmented RC-diameter of
// the net under an assignment. With the zero model it equals ARD exactly;
// with positive sensitivity it accounts for edge-rate degradation along
// unbuffered runs and regeneration at repeaters. Evaluation only — the
// optimizer's exactness guarantee is specific to the Elmore measure.
func (n *Net) SlewARD(asg Assignment, m SlewModel) (ARDResult, error) {
	if err := n.Tree.Validate(); err != nil {
		return ARDResult{}, err
	}
	net := rctree.NewNet(n.root(), n.Tech, asg)
	v, cs, ck, err := slew.ARD(net, m)
	if err != nil {
		return ARDResult{}, err
	}
	out := ARDResult{ARD: v}
	if cs >= 0 {
		out.CritSrc = n.Tree.Node(cs).Term.Name
	}
	if ck >= 0 {
		out.CritSink = n.Tree.Node(ck).Term.Name
	}
	return out, nil
}

// Simulate runs the transient RC simulator from the named source and
// returns the 50%-threshold delay to each terminal by name. A validation
// aid: values should track (and slightly undercut) the Elmore delays.
func (n *Net) Simulate(src string, asg Assignment) (map[string]float64, error) {
	s, err := n.terminalByName(src)
	if err != nil {
		return nil, err
	}
	net := rctree.NewNet(n.root(), n.Tech, asg)
	delays, err := rcsim.Delays(net, s, rcsim.Options{})
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, id := range n.Tree.Terminals() {
		out[n.Tree.Node(id).Term.Name] = delays[id]
	}
	return out, nil
}

// RenderSVG writes an SVG drawing of the net with the assignment's
// repeaters marked and the critical pair highlighted.
func (n *Net) RenderSVG(w io.Writer, asg Assignment, title string) error {
	res, err := n.ARD(asg)
	if err != nil {
		return err
	}
	rt := n.root()
	net := rctree.NewNet(rt, n.Tech, asg)
	r := ard.Compute(net, ard.Options{})
	return svgplot.Render(w, n.Tree, asg, svgplot.Annotation{
		Title:    title,
		Subtitle: fmt.Sprintf("ARD = %.4f ns, critical %s → %s", res.ARD, res.CritSrc, res.CritSink),
		CritSrc:  r.CritSrc,
		CritSink: r.CritSink,
	}, svgplot.Style{ShowLabels: true})
}

// Save writes the net (topology + technology) to a JSON file.
func (n *Net) Save(path, name string) error {
	return netio.Save(path, name, n.Tree, n.Tech)
}

// SaveSPEF exports the net's parasitics as an IEEE 1481 SPEF-subset
// document (see internal/spef for the exact subset and conventions).
func (n *Net) SaveSPEF(w io.Writer, name string) error {
	return spef.Write(w, name, n.Tree, n.Tech)
}

// LoadSPEF imports a tree-structured *D_NET as a Net under the given
// technology. Terminal parameters other than the load capacitance are
// taken from the template function (pass msrnet.DefaultTerminal for the
// paper's symmetric model).
func LoadSPEF(r io.Reader, tech Tech, template func(name string) Terminal) (*Net, error) {
	tr, err := spef.Read(r, tech, template)
	if err != nil {
		return nil, err
	}
	return &Net{Tree: tr, Tech: tech}, nil
}

// Load reads a net from a JSON file written by Save.
func Load(path string) (*Net, error) {
	tr, tech, err := netio.Load(path)
	if err != nil {
		return nil, err
	}
	return &Net{Tree: tr, Tech: tech}, nil
}

// WireLength returns the total wirelength in µm.
func (n *Net) WireLength() float64 { return n.Tree.TotalWireLength() }

// InsertionPoints returns the number of candidate repeater locations.
func (n *Net) InsertionPoints() int { return len(n.Tree.Insertions()) }

// Terminals returns the terminal names in id order.
func (n *Net) Terminals() []string {
	var out []string
	for _, id := range n.Tree.Terminals() {
		out = append(out, n.Tree.Node(id).Term.Name)
	}
	return out
}

func (n *Net) root() *topo.Rooted {
	return n.Tree.RootAt(n.Tree.Terminals()[0])
}

func (n *Net) terminalByName(name string) (int, error) {
	for _, id := range n.Tree.Terminals() {
		if n.Tree.Node(id).Term.Name == name {
			return id, nil
		}
	}
	return 0, fmt.Errorf("msrnet: no terminal named %q", name)
}
