package msrnet_test

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"msrnet"
)

func buildBus(t *testing.T) *msrnet.Net {
	t.Helper()
	b := msrnet.NewBuilder(msrnet.DefaultTech())
	b.AddTerminal("cpu", 0, 0, msrnet.Roles{Source: true, Sink: true})
	b.AddTerminal("dma", 9000, 1000, msrnet.Roles{Source: true, Sink: true})
	b.AddTerminal("mem", 4000, 8000, msrnet.Roles{Sink: true})
	b.AddTerminal("io", 8000, 7000, msrnet.Roles{Source: true, Sink: true})
	net, err := b.AutoRoute()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestBuilderAutoRoute(t *testing.T) {
	net := buildBus(t)
	if got := net.Terminals(); len(got) != 4 || got[0] != "cpu" {
		t.Errorf("Terminals = %v", got)
	}
	if net.WireLength() <= 0 || net.InsertionPoints() == 0 {
		t.Errorf("wl=%g ins=%d", net.WireLength(), net.InsertionPoints())
	}
}

func TestARDAndOptimize(t *testing.T) {
	net := buildBus(t)
	base, err := net.ARD(msrnet.Assignment{})
	if err != nil {
		t.Fatal(err)
	}
	if base.ARD <= 0 || base.CritSrc == "" || base.CritSink == "" {
		t.Fatalf("degenerate ARD: %+v", base)
	}
	suite, err := net.OptimizeRepeaters()
	if err != nil {
		t.Fatal(err)
	}
	best, err := suite.MinARD()
	if err != nil {
		t.Fatal(err)
	}
	if best.ARD >= base.ARD {
		t.Errorf("optimization did not improve: %g vs %g", best.ARD, base.ARD)
	}
	// Spec-driven lookup: cheapest solution meeting a mid-range spec.
	spec := (base.ARD + best.ARD) / 2
	sol, ok := suite.MinCost(spec)
	if !ok {
		t.Fatal("mid-range spec infeasible")
	}
	if sol.ARD > spec+1e-9 {
		t.Errorf("MinCost returned ARD %g above spec %g", sol.ARD, spec)
	}
	// Reconstructed assignment must evaluate to the same ARD.
	check, err := net.ARD(sol.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(check.ARD-sol.ARD) > 1e-6 {
		t.Errorf("assignment evaluates to %g, suite says %g", check.ARD, sol.ARD)
	}
}

func TestSizeDrivers(t *testing.T) {
	net := buildBus(t)
	suite, err := net.SizeDrivers()
	if err != nil {
		t.Fatal(err)
	}
	base, _ := net.ARD(msrnet.Assignment{})
	best, err := suite.MinARD()
	if err != nil {
		t.Fatal(err)
	}
	if best.ARD >= base.ARD {
		t.Error("driver sizing did not improve")
	}
}

func TestPathDelay(t *testing.T) {
	net := buildBus(t)
	d, err := net.PathDelay("cpu", "mem", msrnet.Assignment{})
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("PathDelay = %g", d)
	}
	if _, err := net.PathDelay("nope", "mem", msrnet.Assignment{}); err == nil {
		t.Error("unknown terminal accepted")
	}
}

func TestSimulateTracksElmore(t *testing.T) {
	net := buildBus(t)
	sim, err := net.Simulate("cpu", msrnet.Assignment{})
	if err != nil {
		t.Fatal(err)
	}
	for _, dst := range []string{"dma", "mem", "io"} {
		elm, err := net.PathDelay("cpu", dst, msrnet.Assignment{})
		if err != nil {
			t.Fatal(err)
		}
		if sim[dst] <= 0 || sim[dst] > elm*1.05 {
			t.Errorf("sim delay to %s = %g vs elmore %g", dst, sim[dst], elm)
		}
	}
}

func TestRenderSVG(t *testing.T) {
	net := buildBus(t)
	suite, err := net.OptimizeRepeaters()
	if err != nil {
		t.Fatal(err)
	}
	best, err := suite.MinARD()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.RenderSVG(&buf, best.Assignment(), "best"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("no svg output")
	}
}

func TestSaveLoad(t *testing.T) {
	net := buildBus(t)
	path := filepath.Join(t.TempDir(), "bus.json")
	if err := net.Save(path, "bus"); err != nil {
		t.Fatal(err)
	}
	net2, err := msrnet.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := net.ARD(msrnet.Assignment{})
	a2, _ := net2.ARD(msrnet.Assignment{})
	if math.Abs(a1.ARD-a2.ARD) > 1e-9 {
		t.Errorf("ARD changed across save/load: %g vs %g", a1.ARD, a2.ARD)
	}
}

func TestExplicitTopology(t *testing.T) {
	b := msrnet.NewBuilder(msrnet.DefaultTech())
	a := b.AddTerminal("a", 0, 0, msrnet.Roles{Source: true, Sink: true})
	m := b.AddTerminal("m", 5000, 0, msrnet.Roles{Sink: true})
	c := b.AddTerminal("c", 10000, 0, msrnet.Roles{Source: true, Sink: true})
	b.Connect(a, m)
	b.Connect(m, c)
	net, err := b.AutoRoute()
	if err != nil {
		t.Fatal(err)
	}
	// Daisy-chain: wirelength exactly 10000.
	if math.Abs(net.WireLength()-10000) > 1e-9 {
		t.Errorf("wirelength = %g", net.WireLength())
	}
	if _, err := net.OptimizeRepeaters(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := msrnet.NewBuilder(msrnet.DefaultTech())
	b.AddTerminal("only", 0, 0, msrnet.Roles{Source: true, Sink: true})
	if _, err := b.AutoRoute(); err == nil {
		t.Error("single-terminal net accepted")
	}
}

func TestCustomTerminal(t *testing.T) {
	b := msrnet.NewBuilder(msrnet.DefaultTech())
	custom := msrnet.DefaultTerminal("x")
	custom.AAT = 1.5
	custom.IsSource = true
	custom.IsSink = false
	b.AddCustomTerminal("x", 0, 0, custom)
	b.AddTerminal("y", 4000, 0, msrnet.Roles{Sink: true})
	net, err := b.AutoRoute()
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.ARD(msrnet.Assignment{})
	if err != nil {
		t.Fatal(err)
	}
	// The AAT offset must show up in the ARD.
	if res.ARD < 1.5 {
		t.Errorf("ARD %g does not include AAT", res.ARD)
	}
	if res.CritSrc != "x" || res.CritSink != "y" {
		t.Errorf("critical pair %s->%s", res.CritSrc, res.CritSink)
	}
}

func TestSPEFRoundTripViaFacade(t *testing.T) {
	net := buildBus(t)
	var buf bytes.Buffer
	if err := net.SaveSPEF(&buf, "bus"); err != nil {
		t.Fatal(err)
	}
	net2, err := msrnet.LoadSPEF(&buf, net.Tech, msrnet.DefaultTerminal)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := net.ARD(msrnet.Assignment{})
	a2, _ := net2.ARD(msrnet.Assignment{})
	if math.Abs(a1.ARD-a2.ARD) > 1e-6*(1+a1.ARD) {
		t.Errorf("SPEF roundtrip ARD: %g vs %g", a1.ARD, a2.ARD)
	}
	if net2.InsertionPoints() != net.InsertionPoints() {
		t.Errorf("insertion points: %d vs %d", net2.InsertionPoints(), net.InsertionPoints())
	}
	// Optimization works on the imported net.
	if _, err := net2.OptimizeRepeaters(); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeTimingDrivenFacade(t *testing.T) {
	b := msrnet.NewBuilder(msrnet.DefaultTech())
	b.AddTerminal("a", 0, 0, msrnet.Roles{Source: true, Sink: true})
	b.AddTerminal("b", 8000, 0, msrnet.Roles{Source: true, Sink: true})
	b.AddTerminal("c", 4000, 6000, msrnet.Roles{Sink: true})
	b.AddTerminal("d", 1000, 7000, msrnet.Roles{Sink: true})
	net, suite, err := b.SynthesizeTimingDriven()
	if err != nil {
		t.Fatal(err)
	}
	if net.WireLength() <= 0 || len(suite) == 0 {
		t.Fatalf("degenerate synthesis: wl=%g suite=%d", net.WireLength(), len(suite))
	}
	// The synthesized net is a normal Net: spec lookup and re-evaluation
	// work on it.
	sol, err := suite.MinARD()
	if err != nil {
		t.Fatal(err)
	}
	check, err := net.ARD(sol.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(check.ARD-sol.ARD) > 1e-6*(1+sol.ARD) {
		t.Errorf("synthesized suite inconsistent: %g vs %g", check.ARD, sol.ARD)
	}
	// Too few terminals errors.
	b2 := msrnet.NewBuilder(msrnet.DefaultTech())
	b2.AddTerminal("only", 0, 0, msrnet.Roles{Source: true, Sink: true})
	if _, _, err := b2.SynthesizeTimingDriven(); err == nil {
		t.Error("single-terminal synthesis accepted")
	}
}

func TestWrapTopologyAndSpacingZero(t *testing.T) {
	b := msrnet.NewBuilder(msrnet.DefaultTech())
	b.AddTerminal("a", 0, 0, msrnet.Roles{Source: true, Sink: true})
	b.AddTerminal("b", 3000, 0, msrnet.Roles{Source: true, Sink: true})
	net, err := b.AutoRouteSpacing(0)
	if err != nil {
		t.Fatal(err)
	}
	if net.InsertionPoints() != 0 {
		t.Errorf("spacing 0 placed %d insertion points", net.InsertionPoints())
	}
	wrapped := msrnet.WrapTopology(net.Tree, net.Tech)
	a1, err := wrapped.ARD(msrnet.Assignment{})
	if err != nil {
		t.Fatal(err)
	}
	if a1.ARD <= 0 {
		t.Error("wrapped net degenerate")
	}
	// Optimize with a custom options struct through the generic entry.
	suite, stats, err := wrapped.Optimize(msrnet.OptimizeOptions{SizeDrivers: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) == 0 || stats.SolutionsCreated == 0 {
		t.Error("generic Optimize degenerate")
	}
}

func TestSlewARDFacade(t *testing.T) {
	net := buildBus(t)
	base, err := net.ARD(msrnet.Assignment{})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := net.SlewARD(msrnet.Assignment{}, msrnet.SlewModel{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zero.ARD-base.ARD) > 1e-9*(1+base.ARD) {
		t.Errorf("zero slew model %g != ARD %g", zero.ARD, base.ARD)
	}
	withSlew, err := net.SlewARD(msrnet.Assignment{},
		msrnet.SlewModel{SlewSensitivity: 0.3, InputSlew: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if withSlew.ARD < base.ARD {
		t.Errorf("slew-aware ARD %g below Elmore %g", withSlew.ARD, base.ARD)
	}
	if withSlew.CritSrc == "" || withSlew.CritSink == "" {
		t.Error("missing critical pair")
	}
}
