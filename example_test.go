package msrnet_test

import (
	"fmt"

	"msrnet"
)

// ExampleBuilder builds a three-drop daisy-chain bus explicitly and
// computes its augmented RC-diameter.
func ExampleBuilder() {
	b := msrnet.NewBuilder(msrnet.DefaultTech())
	cpu := b.AddTerminal("cpu", 0, 0, msrnet.Roles{Source: true, Sink: true})
	hub := b.AddTerminal("hub", 5000, 0, msrnet.Roles{Sink: true})
	dev := b.AddTerminal("dev", 10000, 0, msrnet.Roles{Source: true, Sink: true})
	b.Connect(cpu, hub)
	b.Connect(hub, dev)
	net, err := b.AutoRoute()
	if err != nil {
		panic(err)
	}
	res, err := net.ARD(msrnet.Assignment{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("wire: %.0f µm\n", net.WireLength())
	fmt.Printf("ARD %.4f ns, critical %s -> %s\n", res.ARD, res.CritSrc, res.CritSink)
	// Output:
	// wire: 10000 µm
	// ARD 1.2800 ns, critical dev -> cpu
}

// ExampleSuite_MinCost solves Problem 2.1: the minimum-cost repeater
// assignment meeting a timing spec.
func ExampleSuite_MinCost() {
	b := msrnet.NewBuilder(msrnet.DefaultTech())
	a := b.AddTerminal("a", 0, 0, msrnet.Roles{Source: true, Sink: true})
	z := b.AddTerminal("z", 12000, 0, msrnet.Roles{Source: true, Sink: true})
	b.Connect(a, z)
	net, err := b.AutoRoute()
	if err != nil {
		panic(err)
	}
	suite, err := net.OptimizeRepeaters()
	if err != nil {
		panic(err)
	}
	unbuffered := suite[0]
	sol, ok := suite.MinCost(unbuffered.ARD * 0.8)
	if !ok {
		panic("infeasible")
	}
	fmt.Printf("unbuffered %.4f ns; meeting 80%% of that needs %d repeaters (cost %.0f)\n",
		unbuffered.ARD, sol.Repeaters(), sol.Cost)
	// Output:
	// unbuffered 1.5552 ns; meeting 80% of that needs 2 repeaters (cost 4)
}
