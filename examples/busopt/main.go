// busopt: optimize a realistic 16-drop system bus with asymmetric
// terminals — different arrival times, downstream requirements and roles
// — the full multisource scenario the ARD measure was designed for.
//
//	go run ./examples/busopt
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"msrnet"
)

func main() {
	tech := msrnet.DefaultTech()
	b := msrnet.NewBuilder(tech)

	// A system bus on a 12×8 mm die. Three bus masters launch late
	// (deep logic in front of their drivers), a DSP cluster reads and
	// writes, and peripheral endpoints only listen but feed timing-
	// critical output logic (large Q).
	type drop struct {
		name     string
		x, y     float64
		src, snk bool
		aat, q   float64
	}
	drops := []drop{
		{"cpu0", 800, 700, true, true, 0.9, 0.2},
		{"cpu1", 1500, 700, true, true, 0.9, 0.2},
		{"dma", 11000, 900, true, true, 0.4, 0.2},
		{"dsp0", 6000, 4200, true, true, 0.6, 0.4},
		{"dsp1", 6900, 4600, true, true, 0.6, 0.4},
		{"l2", 3300, 7300, true, true, 0.3, 0.3},
		{"rom", 10800, 7500, false, true, 0, 0.6},
		{"uart", 11800, 4000, false, true, 0, 1.1},
		{"spi", 11600, 6400, false, true, 0, 1.0},
		{"gpio0", 400, 7600, false, true, 0, 0.9},
		{"gpio1", 900, 7900, false, true, 0, 0.9},
		{"timer", 5200, 7800, false, true, 0, 0.8},
		{"wdt", 5600, 400, false, true, 0, 0.7},
		{"pcie", 11900, 1900, true, true, 0.5, 0.5},
		{"usb", 9500, 300, true, true, 0.5, 0.5},
		{"sdio", 2600, 300, false, true, 0, 0.8},
	}
	for _, d := range drops {
		t := msrnet.DefaultTerminal(d.name)
		t.IsSource, t.IsSink = d.src, d.snk
		t.AAT = d.aat
		t.Q += d.q // extra downstream logic beyond the output buffer
		b.AddCustomTerminal(d.name, d.x, d.y, t)
	}

	net, err := b.AutoRoute()
	if err != nil {
		log.Fatal(err)
	}
	base, err := net.ARD(msrnet.Assignment{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("16-drop bus: %.1f mm wire, %d insertion points\n",
		net.WireLength()/1000, net.InsertionPoints())
	fmt.Printf("unoptimized ARD %.4f ns, critical %s → %s\n",
		base.ARD, base.CritSrc, base.CritSink)

	suite, err := net.OptimizeRepeaters()
	if err != nil {
		log.Fatal(err)
	}
	best, err := suite.MinARD()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suite spans cost %g..%g, ARD %.4f..%.4f ns\n",
		suite[0].Cost, suite[len(suite)-1].Cost,
		best.ARD, suite[0].ARD)

	// Close timing at a 4.5 ns cycle budget.
	const spec = 4.5
	sol, ok := suite.MinCost(spec)
	if !ok {
		log.Fatalf("cannot close timing at %.2f ns; best is %.4f", spec, best.ARD)
	}
	fmt.Printf("closing timing at %.2f ns: %d repeaters, cost %.0f, achieved ARD %.4f ns\n",
		spec, sol.Repeaters(), sol.Cost, sol.ARD)

	// Validate the optimized net against the transient simulator: the
	// simulated 50%% delays must not exceed the Elmore numbers the
	// optimizer worked with.
	asg := sol.Assignment()
	sim, err := net.Simulate("cpu0", asg)
	if err != nil {
		log.Fatal(err)
	}
	worstRatio := 0.0
	for _, dst := range net.Terminals() {
		if dst == "cpu0" {
			continue
		}
		elm, err := net.PathDelay("cpu0", dst, asg)
		if err != nil {
			log.Fatal(err)
		}
		if r := sim[dst] / elm; !math.IsNaN(r) && r > worstRatio {
			worstRatio = r
		}
	}
	fmt.Printf("simulation check: worst sim/Elmore ratio from cpu0 = %.3f (≤ 1 expected)\n", worstRatio)

	// Render the solution.
	f, err := os.Create("busopt.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := net.RenderSVG(f, asg, "16-drop bus, timing-closed"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote busopt.svg")
}
