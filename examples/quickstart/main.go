// Quickstart: build a small multisource bus, measure its augmented
// RC-diameter, and run optimal repeater insertion.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"msrnet"
)

func main() {
	tech := msrnet.DefaultTech()

	// A four-drop bus on a 1 cm die: two bus masters and two targets
	// (one read-only). Coordinates are in µm.
	b := msrnet.NewBuilder(tech)
	b.AddTerminal("cpu", 500, 500, msrnet.Roles{Source: true, Sink: true})
	b.AddTerminal("dma", 9500, 800, msrnet.Roles{Source: true, Sink: true})
	b.AddTerminal("sram", 5200, 9000, msrnet.Roles{Source: true, Sink: true})
	b.AddTerminal("rom", 9000, 8500, msrnet.Roles{Sink: true})

	// Route with the built-in rectilinear Steiner heuristic and place
	// candidate repeater locations every ≤800 µm (the paper's setup).
	net, err := b.AutoRoute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed: %.1f mm of wire, %d candidate repeater locations\n",
		net.WireLength()/1000, net.InsertionPoints())

	// The augmented RC-diameter of the bare net: the worst augmented
	// source→sink Elmore delay, computed in linear time.
	base, err := net.ARD(msrnet.Assignment{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unoptimized ARD: %.4f ns (critical path %s → %s)\n",
		base.ARD, base.CritSrc, base.CritSink)

	// Optimal repeater insertion: the full cost/performance suite.
	suite, err := net.OptimizeRepeaters()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cost/ARD tradeoff:")
	for _, s := range suite {
		fmt.Printf("  %2.0f buffer-equivalents -> %.4f ns (%d repeaters)\n",
			s.Cost, s.ARD, s.Repeaters())
	}

	// Problem 2.1: cheapest solution meeting a timing spec.
	spec := base.ARD * 0.75
	sol, ok := suite.MinCost(spec)
	if !ok {
		log.Fatalf("no solution meets %.4f ns", spec)
	}
	fmt.Printf("cheapest solution meeting ARD ≤ %.4f ns: cost %.0f, ARD %.4f ns\n",
		spec, sol.Cost, sol.ARD)

	// The assignment is concrete: evaluate it independently.
	check, err := net.ARD(sol.Assignment())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-evaluated assignment: ARD %.4f ns (critical %s → %s)\n",
		check.ARD, check.CritSrc, check.CritSink)
}
