// spefflow: interoperate with a standard EDA flow — export a routed bus
// as IEEE 1481 SPEF parasitics, re-import it as if it came from an
// external extractor, optimize, and print the resulting placement in a
// sign-off-style report.
//
//	go run ./examples/spefflow
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"
	"strings"

	"msrnet"
)

func main() {
	tech := msrnet.DefaultTech()

	// A six-drop bus we pretend was routed elsewhere.
	b := msrnet.NewBuilder(tech)
	b.AddTerminal("core0", 300, 300, msrnet.Roles{Source: true, Sink: true})
	b.AddTerminal("core1", 9700, 600, msrnet.Roles{Source: true, Sink: true})
	b.AddTerminal("l3", 5000, 5200, msrnet.Roles{Source: true, Sink: true})
	b.AddTerminal("ddrphy", 9500, 9400, msrnet.Roles{Sink: true})
	b.AddTerminal("noc", 700, 9100, msrnet.Roles{Source: true, Sink: true})
	b.AddTerminal("dbg", 5200, 700, msrnet.Roles{Sink: true})
	net, err := b.AutoRoute()
	if err != nil {
		log.Fatal(err)
	}

	// Export → import round trip (what an external flow would see).
	var spefBuf bytes.Buffer
	if err := net.SaveSPEF(&spefBuf, "sysbus"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d bytes of SPEF (header below)\n", spefBuf.Len())
	for i, line := range strings.SplitN(spefBuf.String(), "\n", 7)[:6] {
		fmt.Printf("  %d| %s\n", i+1, line)
	}

	// Terminal roles are not part of SPEF; reapply them on import.
	roles := map[string]msrnet.Roles{
		"core0": {Source: true, Sink: true}, "core1": {Source: true, Sink: true},
		"l3": {Source: true, Sink: true}, "noc": {Source: true, Sink: true},
		"ddrphy": {Sink: true}, "dbg": {Sink: true},
	}
	imported, err := msrnet.LoadSPEF(&spefBuf, tech, func(name string) msrnet.Terminal {
		t := msrnet.DefaultTerminal(name)
		t.IsSource = roles[name].Source
		t.IsSink = roles[name].Sink
		return t
	})
	if err != nil {
		log.Fatal(err)
	}
	a0, _ := net.ARD(msrnet.Assignment{})
	a1, _ := imported.ARD(msrnet.Assignment{})
	fmt.Printf("ARD before export %.4f ns, after import %.4f ns (Δ %.2g)\n",
		a0.ARD, a1.ARD, a1.ARD-a0.ARD)

	// Optimize the imported net and print a placement report.
	suite, err := imported.OptimizeRepeaters()
	if err != nil {
		log.Fatal(err)
	}
	sol, err := suite.MinARD()
	if err != nil {
		log.Fatal(err)
	}
	asg := sol.Assignment()
	fmt.Printf("\nplacement report: %d repeaters, cost %.0f, ARD %.4f ns\n",
		sol.Repeaters(), sol.Cost, sol.ARD)
	type row struct {
		node int
		desc string
	}
	var rows []row
	for node, pl := range asg.Repeaters {
		orient := "A-up"
		if !pl.ASideUp {
			orient = "B-up"
		}
		pt := imported.Tree.Node(node).Pt
		rows = append(rows, row{node, fmt.Sprintf("  n%-4d %-10s %-5s at (%6.0f, %6.0f) µm",
			node, pl.Rep.Name, orient, pt.X, pt.Y)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].node < rows[j].node })
	for _, r := range rows {
		fmt.Println(r.desc)
	}
}
