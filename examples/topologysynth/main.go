// topologysynth: multisource timing-driven topology synthesis — the §VII
// extension of the paper. Instead of optimizing repeaters on a fixed
// routing tree, the router itself scores candidate topologies by their
// repeater-optimized ARD (a multisource version of the P-Tree idea).
//
//	go run ./examples/topologysynth
package main

import (
	"fmt"
	"log"
	"math/rand"

	"msrnet"
)

func main() {
	tech := msrnet.DefaultTech()
	r := rand.New(rand.NewSource(21))

	b := msrnet.NewBuilder(tech)
	for i := 0; i < 9; i++ {
		b.AddTerminal(fmt.Sprintf("t%d", i),
			r.Float64()*10000, r.Float64()*10000,
			msrnet.Roles{Source: true, Sink: true})
	}

	// Baseline: fixed 1-Steiner routing, then optimize repeaters.
	fixedB := msrnet.NewBuilder(tech)
	r2 := rand.New(rand.NewSource(21))
	for i := 0; i < 9; i++ {
		fixedB.AddTerminal(fmt.Sprintf("t%d", i),
			r2.Float64()*10000, r2.Float64()*10000,
			msrnet.Roles{Source: true, Sink: true})
	}
	fixed, err := fixedB.AutoRoute()
	if err != nil {
		log.Fatal(err)
	}
	fixedSuite, err := fixed.OptimizeRepeaters()
	if err != nil {
		log.Fatal(err)
	}

	// Timing-driven synthesis: the router considers P-Tree and Steiner
	// candidates and keeps whichever optimizes best.
	net, suite, err := b.SynthesizeTimingDriven()
	if err != nil {
		log.Fatal(err)
	}

	fixedBest, err := fixedSuite.MinARD()
	if err != nil {
		log.Fatal(err)
	}
	synBest, err := suite.MinARD()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fixed topology (1-Steiner route, then buffer):")
	fmt.Printf("  wirelength %.1f mm, optimized ARD %.4f ns (%d repeaters)\n",
		fixed.WireLength()/1000, fixedBest.ARD, fixedBest.Repeaters())
	fmt.Println("timing-driven synthesis (buffering-aware topology choice):")
	fmt.Printf("  wirelength %.1f mm, optimized ARD %.4f ns (%d repeaters)\n",
		net.WireLength()/1000, synBest.ARD, synBest.Repeaters())

	if synBest.ARD <= fixedBest.ARD {
		fmt.Println("synthesis matched or beat the fixed route, as guaranteed")
	} else {
		fmt.Println("WARNING: synthesis lost to the fixed route (should not happen)")
	}

	// The suite is a normal tradeoff suite: spec-driven selection works
	// the same way.
	spec := suite[0].ARD * 0.7
	if sol, ok := suite.MinCost(spec); ok {
		fmt.Printf("meeting %.4f ns on the synthesized topology: cost %.0f, %d repeaters\n",
			spec, sol.Cost, sol.Repeaters())
	}
}
