// driversizing: compare discrete driver sizing against repeater insertion
// on the same net — the §VI/Table II story of the paper at API level.
// Driver sizing can only shrink the driver's share of the delay; repeater
// insertion also breaks the quadratic wire delay and decouples branches,
// so it reaches lower diameters and reaches the sizing diameter at lower
// cost.
//
//	go run ./examples/driversizing
package main

import (
	"fmt"
	"log"
	"math/rand"

	"msrnet"
)

func main() {
	tech := msrnet.DefaultTech()

	// Ten random drops on a 1 cm die, every terminal both source and
	// sink — the paper's symmetric benchmark.
	r := rand.New(rand.NewSource(7))
	b := msrnet.NewBuilder(tech)
	for i := 0; i < 10; i++ {
		b.AddTerminal(fmt.Sprintf("t%d", i),
			r.Float64()*10000, r.Float64()*10000,
			msrnet.Roles{Source: true, Sink: true})
	}
	net, err := b.AutoRoute()
	if err != nil {
		log.Fatal(err)
	}
	base, err := net.ARD(msrnet.Assignment{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (all 1X drivers, no repeaters): ARD %.4f ns\n", base.ARD)

	sizing, err := net.SizeDrivers()
	if err != nil {
		log.Fatal(err)
	}
	dsBest, err := sizing.MinARD()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("driver sizing:      best ARD %.4f ns (%.0f%% of baseline), driver cost %.0f\n",
		dsBest.ARD, 100*dsBest.ARD/base.ARD, dsBest.Cost)

	reps, err := net.OptimizeRepeaters()
	if err != nil {
		log.Fatal(err)
	}
	riBest, err := reps.MinARD()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeater insertion: best ARD %.4f ns (%.0f%% of baseline), %d repeaters\n",
		riBest.ARD, 100*riBest.ARD/base.ARD, riBest.Repeaters())

	// The paper's second observation: to merely match the best sizing
	// diameter, repeaters are much cheaper than the sizing solution.
	match, ok := reps.MinCost(dsBest.ARD)
	if !ok {
		log.Fatal("repeaters cannot match sizing (unexpected)")
	}
	fmt.Printf("matching sizing's %.4f ns with repeaters costs only %.0f buffer-equivalents (%d repeaters)\n",
		dsBest.ARD, match.Cost, match.Repeaters())

	// Print both suites side by side.
	fmt.Println("\ndriver-sizing suite:        repeater suite:")
	n := len(sizing)
	if len(reps) > n {
		n = len(reps)
	}
	for i := 0; i < n; i++ {
		left, right := "", ""
		if i < len(sizing) {
			left = fmt.Sprintf("cost %5.1f -> %.4f ns", sizing[i].Cost, sizing[i].ARD)
		}
		if i < len(reps) {
			right = fmt.Sprintf("cost %5.1f -> %.4f ns", reps[i].Cost, reps[i].ARD)
		}
		fmt.Printf("  %-26s%s\n", left, right)
	}
}
