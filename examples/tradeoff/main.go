// tradeoff: sweep the full cost/performance suite produced by the
// optimizer, print it as a curve, and render SVG snapshots of selected
// points — how a designer would explore the buffering budget for a wide
// bus before committing area.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"msrnet"
)

func main() {
	tech := msrnet.DefaultTech()

	// A 12-drop bus shaped like a long backbone with stubs — the
	// topology where repeaters pay off most.
	b := msrnet.NewBuilder(tech)
	names := []string{"m0", "m1", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "m2", "s8"}
	coords := [][2]float64{
		{200, 5000}, {11800, 5000}, // masters at the ends
		{1500, 4500}, {2800, 5600}, {4100, 4400}, {5400, 5700},
		{6700, 4300}, {8000, 5800}, {9300, 4500}, {10600, 5500},
		{6000, 9500}, // a master on a stub
		{6000, 500},  // a sink on the opposite stub
	}
	for i, name := range names {
		roles := msrnet.Roles{Source: strings.HasPrefix(name, "m"), Sink: true}
		b.AddTerminal(name, coords[i][0], coords[i][1], roles)
	}
	net, err := b.AutoRoute()
	if err != nil {
		log.Fatal(err)
	}
	suite, err := net.OptimizeRepeaters()
	if err != nil {
		log.Fatal(err)
	}
	base := suite[0].ARD

	// ASCII tradeoff curve.
	fmt.Println("cost  ARD(ns)  improvement")
	for _, s := range suite {
		bar := strings.Repeat("#", int(60*(base-s.ARD)/base)+1)
		fmt.Printf("%5.1f  %7.4f  %s\n", s.Cost, s.ARD, bar)
	}
	fmt.Printf("\nknee analysis: marginal ns per unit cost\n")
	for i := 1; i < len(suite); i++ {
		dA := suite[i-1].ARD - suite[i].ARD
		dC := suite[i].Cost - suite[i-1].Cost
		fmt.Printf("  %5.1f -> %5.1f: %.4f ns per cost unit\n",
			suite[i-1].Cost, suite[i].Cost, dA/dC)
	}

	// SVG snapshots: cheapest, knee (best marginal), fastest.
	knee := suite[0]
	bestRate := 0.0
	for i := 1; i < len(suite); i++ {
		rate := (suite[i-1].ARD - suite[i].ARD) / (suite[i].Cost - suite[i-1].Cost)
		if rate > bestRate {
			bestRate = rate
			knee = suite[i]
		}
	}
	fastest, err := suite.MinARD()
	if err != nil {
		log.Fatal(err)
	}
	for _, pick := range []struct {
		tag string
		sol msrnet.RootSolution
	}{
		{"cheapest", suite[0]},
		{"knee", knee},
		{"fastest", fastest},
	} {
		path := fmt.Sprintf("tradeoff-%s.svg", pick.tag)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		title := fmt.Sprintf("%s: cost %.0f, ARD %.4f ns", pick.tag, pick.sol.Cost, pick.sol.ARD)
		if err := net.RenderSVG(f, pick.sol.Assignment(), title); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Println("wrote", path)
	}
}
