package msrnet_test

// End-to-end command-line integration tests: build each tool once and
// drive realistic flag combinations through temp files. Guarded by
// -short so unit-test runs stay fast.

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
)

var cli struct {
	once sync.Once
	dir  string
	err  error
}

// buildTools compiles every command into a shared temp dir.
func buildTools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping CLI integration tests")
	}
	cli.once.Do(func() {
		dir, err := os.MkdirTemp("", "msrnet-cli")
		if err != nil {
			cli.err = err
			return
		}
		cli.dir = dir
		for _, tool := range []string{"netgen", "ardcalc", "msri", "synth", "experiments", "benchreport"} {
			bin := filepath.Join(dir, tool)
			if runtime.GOOS == "windows" {
				bin += ".exe"
			}
			cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+tool)
			if out, err := cmd.CombinedOutput(); err != nil {
				cli.err = err
				cli.dir = string(out)
				return
			}
		}
	})
	if cli.err != nil {
		t.Fatalf("building tools: %v (%s)", cli.err, cli.dir)
	}
	return cli.dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	dir := buildTools(t)
	cmd := exec.Command(filepath.Join(dir, bin), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestCLIGenerateAnalyzeOptimize(t *testing.T) {
	dir := t.TempDir()
	netPath := filepath.Join(dir, "net.json")
	spefPath := filepath.Join(dir, "net.spef")

	run(t, "netgen", "-pins", "8", "-seed", "5", "-out", netPath, "-spef", spefPath)
	if _, err := os.Stat(netPath); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(spefPath); err != nil {
		t.Fatal(err)
	}

	out := run(t, "ardcalc", "-net", netPath, "-check", "-matrix")
	if !strings.Contains(out, "ARD =") || !strings.Contains(out, "critical pair") {
		t.Errorf("ardcalc output: %s", out)
	}
	if !strings.Contains(out, "naive ARD") {
		t.Errorf("cross-check missing: %s", out)
	}

	// The SPEF view must agree with the JSON view.
	outSpef := run(t, "ardcalc", "-net", spefPath)
	j := strings.SplitN(out, "\n", 2)[0]
	sp := strings.SplitN(outSpef, "\n", 2)[0]
	if j != sp {
		t.Errorf("JSON vs SPEF ARD lines differ: %q vs %q", j, sp)
	}

	svgPath := filepath.Join(dir, "sol.svg")
	asgPath := filepath.Join(dir, "sol.json")
	out = run(t, "msri", "-net", netPath, "-stats", "-report",
		"-svg", svgPath, "-assign", asgPath)
	for _, want := range []string{"tradeoff suite", "min-ARD solution", "stats:", "before", "after"} {
		if !strings.Contains(out, want) {
			t.Errorf("msri output missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(svgPath); err != nil {
		t.Error("svg not written")
	}
	if _, err := os.Stat(asgPath); err != nil {
		t.Error("assignment not written")
	}

	// Metrics snapshot: the JSON document must carry phase timings plus
	// the per-node set-size and PWL-segment histograms of the issue's
	// acceptance criteria.
	metricsPath := filepath.Join(dir, "metrics.json")
	out = run(t, "msri", "-net", netPath, "-metrics", metricsPath, "-trace",
		"-cpuprofile", filepath.Join(dir, "cpu.pprof"), "-memprofile", filepath.Join(dir, "mem.pprof"))
	if !strings.Contains(out, "tradeoff suite") {
		t.Errorf("msri -metrics output: %s", out)
	}
	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics file: %v", err)
	}
	for _, want := range []string{
		`"schema": "msrnet-metrics/v1"`, "msri", "solve",
		"core/set_size/pre_prune", "core/set_size/post_prune",
		"core/pwl_segments", "core/prune/divide/calls", "ard/runs",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics JSON missing %q", want)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "cpu.pprof")); err != nil {
		t.Error("cpu profile not written")
	}
	if _, err := os.Stat(filepath.Join(dir, "mem.pprof")); err != nil {
		t.Error("mem profile not written")
	}
	out = run(t, "ardcalc", "-net", netPath, "-metrics", filepath.Join(dir, "ard-metrics.json"))
	if !strings.Contains(out, "ARD =") {
		t.Errorf("ardcalc -metrics output: %s", out)
	}
	if raw, err := os.ReadFile(filepath.Join(dir, "ard-metrics.json")); err != nil {
		t.Error("ardcalc metrics not written")
	} else if !strings.Contains(string(raw), "ard/runs") {
		t.Error("ardcalc metrics missing ard/runs")
	}

	// Spec-driven run with both pruners; results must agree on the line.
	a := run(t, "msri", "-net", netPath, "-spec", "99", "-pruner", "divide")
	b := run(t, "msri", "-net", netPath, "-spec", "99", "-pruner", "naive")
	la := lastLine(a)
	lb := lastLine(b)
	if la != lb {
		t.Errorf("pruner outputs differ: %q vs %q", la, lb)
	}
}

func TestCLISynthAndExperiments(t *testing.T) {
	out := run(t, "synth", "-pins", "6", "-seed", "9")
	if !strings.Contains(out, "synthesized topology") || !strings.Contains(out, "optimized ARD") {
		t.Errorf("synth output: %s", out)
	}

	out = run(t, "experiments", "-table", "1")
	if !strings.Contains(out, "Table I") {
		t.Errorf("experiments -table 1: %s", out)
	}

	csvDir := t.TempDir()
	metricsPath := filepath.Join(csvDir, "metrics.json")
	out = run(t, "experiments", "-table", "2", "-nets", "2", "-parallel", "2",
		"-csvdir", csvDir, "-metrics", metricsPath)
	if !strings.Contains(out, "Table II") {
		t.Errorf("experiments -table 2: %s", out)
	}
	if _, err := os.Stat(filepath.Join(csvDir, "table2.csv")); err != nil {
		t.Error("table2.csv not written")
	}
	if raw, err := os.ReadFile(metricsPath); err != nil {
		t.Error("experiments metrics not written")
	} else if !strings.Contains(string(raw), "table2") {
		t.Error("experiments metrics missing table2 span")
	}
}

func lastLine(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	return lines[len(lines)-1]
}

// TestCLIObservatory drives the new observability surfaces end to end:
// a Perfetto trace from msri, obs flags on netgen, and a benchreport
// run compared against the committed baseline (whose work counters are
// deterministic, so the comparison must pass on any machine).
func TestCLIObservatory(t *testing.T) {
	dir := t.TempDir()
	netPath := filepath.Join(dir, "net.json")
	run(t, "netgen", "-pins", "12", "-seed", "5", "-out", netPath,
		"-metrics", filepath.Join(dir, "netgen-metrics.json"))

	tracePath := filepath.Join(dir, "timeline.json")
	run(t, "msri", "-net", netPath, "-trace-events", tracePath)
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"traceEvents"`, `"dp/leaf"`, `"dp/prune"`, `"ard/compute"`, "msrnet-trace-events/v1"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("trace file missing %s", want)
		}
	}

	reportPath := filepath.Join(dir, "BENCH_msrnet.json")
	out := run(t, "benchreport", "-suite", "quick", "-repeats", "1",
		"-out", reportPath, "-baseline", "BENCH_msrnet.json")
	if !strings.Contains(out, "no regressions") {
		t.Errorf("benchreport vs committed baseline: %s", out)
	}
	if _, err := os.Stat(reportPath); err != nil {
		t.Errorf("report not written: %v", err)
	}
}
