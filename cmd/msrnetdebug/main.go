// Command msrnetdebug renders a postmortem bundle written by msrnetd's
// flight recorder (schema msrnet-postmortem/v1) as a human-readable
// incident report: what triggered the capture, a timeline of the
// recorder ring around it, the biggest p99 latency movers, the jobs
// that were in flight or recently finished, and — given the committed
// bench baseline — how the DP shape of the crashed daemon's jobs
// compares to the perf observatory's numbers.
//
// Usage:
//
//	msrnetdebug /var/lib/msrnet/postmortems/postmortem-...-worker_panic
//	msrnetdebug -baseline BENCH_msrnet.json <bundle-dir>
//	msrnetdebug -list /var/lib/msrnet/postmortems   # enumerate bundles
//
// The raw artifacts stay in the bundle for deeper digging: recorder.json
// (the full ring), heap.pb.gz (go tool pprof), trace.json (Perfetto),
// goroutines.txt. See DESIGN.md §11.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"msrnet/internal/bench"
	"msrnet/internal/cliflags"
	"msrnet/internal/obs/recorder"
)

func main() {
	var (
		baseline = flag.String("baseline", "", "compare the bundle's DP shape against this msrnet-bench/v1 report (e.g. the committed BENCH_msrnet.json)")
		list     = flag.String("list", "", "list the bundles under this directory (newest last) instead of rendering one")
	)
	flag.Parse()

	if *list != "" {
		if err := listBundles(*list); err != nil {
			fatal(err)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: msrnetdebug [-baseline BENCH_msrnet.json] <bundle-dir>")
		fmt.Fprintln(os.Stderr, "       msrnetdebug -list <postmortem-dir>")
		os.Exit(2)
	}

	b, err := recorder.LoadBundle(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var base *bench.Report
	if *baseline != "" {
		rep, err := bench.Load(*baseline)
		if err != nil {
			fatal(err)
		}
		base = &rep
	}
	if err := recorder.WriteReport(os.Stdout, b, base); err != nil {
		fatal(err)
	}
}

// listBundles enumerates the postmortem bundles under dir with their
// trigger, oldest first (the names embed a fixed-width timestamp, so
// lexical order is chronological).
func listBundles(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "postmortem-") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		fmt.Printf("no postmortem bundles under %s\n", dir)
		return nil
	}
	sort.Strings(names)
	for _, name := range names {
		b, err := recorder.LoadBundle(filepath.Join(dir, name))
		if err != nil {
			fmt.Printf("%s  (unreadable: %v)\n", name, err)
			continue
		}
		tr := b.Manifest.Trigger
		fmt.Printf("%s  trigger=%s", name, tr.Reason)
		if tr.Detail != "" {
			fmt.Printf(" (%s)", tr.Detail)
		}
		fmt.Printf("  samples=%d\n", len(b.Ring))
	}
	return nil
}

func fatal(err error) { cliflags.Fatal("msrnetdebug", err) }
