// Command msrnetdebug renders a postmortem bundle written by msrnetd's
// flight recorder (schema msrnet-postmortem/v1) as a human-readable
// incident report: what triggered the capture, a timeline of the
// recorder ring around it, the biggest p99 latency movers, the jobs
// that were in flight or recently finished, and — given the committed
// bench baseline — how the DP shape of the crashed daemon's jobs
// compares to the perf observatory's numbers.
//
// Usage:
//
//	msrnetdebug /var/lib/msrnet/postmortems/postmortem-...-worker_panic
//	msrnetdebug -baseline BENCH_msrnet.json <bundle-dir>
//	msrnetdebug -list /var/lib/msrnet/postmortems   # enumerate bundles
//
// The raw artifacts stay in the bundle for deeper digging: recorder.json
// (the full ring), heap.pb.gz (go tool pprof), trace.json (Perfetto),
// goroutines.txt. See DESIGN.md §11.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"msrnet/internal/bench"
	"msrnet/internal/cliflags"
	"msrnet/internal/obs/recorder"
	"msrnet/internal/spancollect"
)

func main() {
	var (
		baseline = flag.String("baseline", "", "compare the bundle's DP shape against this msrnet-bench/v1 report (e.g. the committed BENCH_msrnet.json)")
		list     = flag.String("list", "", "list the bundles under this directory (newest last) instead of rendering one")
		traceID  = flag.String("trace-id", "", "with -list: only bundles whose captured span index contains this trace")
		trace    = flag.String("trace", "", "render the given trace from the bundle's spans.json as a waterfall + critical path instead of the incident report")
	)
	flag.Parse()

	if *list != "" {
		if err := listBundles(*list, *traceID); err != nil {
			fatal(err)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: msrnetdebug [-baseline BENCH_msrnet.json] [-trace <traceID>] <bundle-dir>")
		fmt.Fprintln(os.Stderr, "       msrnetdebug -list <postmortem-dir> [-trace-id <traceID>]")
		os.Exit(2)
	}

	b, err := recorder.LoadBundle(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *trace != "" {
		if err := renderTrace(b, *trace); err != nil {
			fatal(err)
		}
		return
	}
	var base *bench.Report
	if *baseline != "" {
		rep, err := bench.Load(*baseline)
		if err != nil {
			fatal(err)
		}
		base = &rep
	}
	if err := recorder.WriteReport(os.Stdout, b, base); err != nil {
		fatal(err)
	}
}

// renderTrace stitches one trace out of the bundle's captured span
// index (spans.json) and prints the waterfall plus critical-path
// report. A bundle holds one process's view — the cross-process picture
// needs msrnetctl -trace against the live fleet — but for a crashed
// daemon this is the view that still exists.
func renderTrace(b *recorder.Bundle, traceID string) error {
	if !b.HasSpans {
		return fmt.Errorf("bundle has no spans.json (daemon predates span tracing or captured before any traced job)")
	}
	var procs []spancollect.ProcessSpans
	for _, exp := range b.Spans.Traces {
		if exp.TraceID == traceID {
			procs = append(procs, spancollect.ProcessSpans{Process: exp.Process, Spans: exp.Spans})
		}
	}
	if len(procs) == 0 {
		return fmt.Errorf("no spans for trace %s in this bundle (evicted, or never seen by this daemon)", traceID)
	}
	st := spancollect.Stitch(traceID, procs)
	st.WriteWaterfall(os.Stdout)
	fmt.Println()
	st.CriticalPath().Write(os.Stdout)
	return nil
}

// listBundles enumerates the postmortem bundles under dir with their
// trigger, oldest first (the names embed a fixed-width timestamp, so
// lexical order is chronological). A non-empty traceID keeps only
// bundles whose captured span index saw that trace — "which postmortem
// has my slow job" without opening each one.
func listBundles(dir, traceID string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "postmortem-") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	shown := 0
	for _, name := range names {
		b, err := recorder.LoadBundle(filepath.Join(dir, name))
		if err != nil {
			if traceID == "" {
				fmt.Printf("%s  (unreadable: %v)\n", name, err)
				shown++
			}
			continue
		}
		if traceID != "" && !bundleHasTrace(b, traceID) {
			continue
		}
		shown++
		tr := b.Manifest.Trigger
		fmt.Printf("%s  trigger=%s", name, tr.Reason)
		if tr.Detail != "" {
			fmt.Printf(" (%s)", tr.Detail)
		}
		fmt.Printf("  samples=%d\n", len(b.Ring))
	}
	if shown == 0 {
		if traceID != "" {
			fmt.Printf("no bundles under %s contain trace %s\n", dir, traceID)
		} else {
			fmt.Printf("no postmortem bundles under %s\n", dir)
		}
	}
	return nil
}

// bundleHasTrace reports whether the bundle's span capture includes
// the trace.
func bundleHasTrace(b *recorder.Bundle, traceID string) bool {
	if !b.HasSpans {
		return false
	}
	for _, exp := range b.Spans.Traces {
		if exp.TraceID == traceID {
			return true
		}
	}
	return false
}

func fatal(err error) { cliflags.Fatal("msrnetdebug", err) }
