// Command msri runs the optimal multisource repeater-insertion dynamic
// program of §IV of Lillis & Cheng (TCAD'99) on a net file, printing the
// full cost/performance tradeoff suite and, given a timing spec, the
// min-cost solution meeting it (Problem 2.1).
//
// Usage:
//
//	msri -net net10.json                       # full tradeoff suite
//	msri -net net10.json -spec 1.8             # min cost with ARD ≤ 1.8 ns
//	msri -net net10.json -mode sizing          # driver sizing instead
//	msri -net net10.json -mode both            # sizing + repeaters jointly
//	msri -net net10.json -svg out.svg          # render the chosen solution
//	msri -net net10.json -assign out.json      # dump the chosen assignment
//	msri -net net10.json -metrics m.json       # JSON metrics snapshot (spans + histograms)
//	msri -net net10.json -trace                # phase-span report on stderr
//	msri -net net10.json -trace-events t.json  # Perfetto-loadable per-node DP timeline
//	msri -net net10.json -solveprof p.json     # candidate-lifecycle waste profile (see msrnetprof)
//	msri -net net10.json -listen :9090         # live /metrics, /debug/vars, /debug/pprof
//	msri -net net10.json -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"msrnet/internal/ard"
	"msrnet/internal/cliflags"
	"msrnet/internal/core"
	"msrnet/internal/dominance"
	"msrnet/internal/netio"
	"msrnet/internal/rctree"
	"msrnet/internal/report"
	"msrnet/internal/solveprof"
	"msrnet/internal/spef"
	"msrnet/internal/svgplot"
	"msrnet/internal/topo"

	"msrnet/internal/buslib"

	"encoding/json"
)

func main() {
	var (
		netPath  = flag.String("net", "", "net file (required)")
		mode     = flag.String("mode", "repeaters", "repeaters | sizing | both")
		spec     = flag.Float64("spec", 0, "timing spec in ns (0 = report full suite, choose min-ARD)")
		svgOut   = flag.String("svg", "", "write an SVG of the chosen solution")
		asgOut   = flag.String("assign", "", "write the chosen assignment as JSON")
		widths   = flag.String("widths", "", "comma-separated wire width options (enables wire sizing)")
		pruner   = flag.String("pruner", "divide", "divide | naive (MFS implementation)")
		stats    = flag.Bool("stats", false, "print dynamic-programming statistics")
		profOut  = flag.String("solveprof", "", "write a msrnet-solveprof/v1 candidate-lifecycle profile to this file (analyze with msrnetprof)")
		parallel = flag.Bool("parallel", false, "evaluate independent subtrees of this one net concurrently (intra-net parallelism; composes with, and is independent of, msrnetd's worker-pool parallelism across jobs)")
		rep      = flag.Bool("report", false, "print a before/after summary and placement report for the chosen solution")
	)
	obsFlags := cliflags.Register(flag.CommandLine, cliflags.Caps{TraceEvents: true, Listen: true})
	flag.Parse()
	if *netPath == "" {
		fmt.Fprintln(os.Stderr, "msri: -net is required")
		os.Exit(2)
	}
	run, err := obsFlags.Start()
	if err != nil {
		fatal(err)
	}
	reg, tcr := run.Reg, run.Tracer
	if tcr != nil {
		dominance.SetTracer(tcr)
	}
	defer func() {
		if err := run.Close(); err != nil {
			fatal(err)
		}
	}()

	loadSpan := reg.StartSpan("msri/load")
	tr, tech, err := loadNet(*netPath)
	if err != nil {
		fatal(err)
	}
	loadSpan.End()
	opt := core.Options{Obs: run.Recorder(), Trace: tcr}
	switch *mode {
	case "repeaters":
		opt.Repeaters = true
	case "sizing":
		opt.SizeDrivers = true
	case "both":
		opt.Repeaters = true
		opt.SizeDrivers = true
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	switch *pruner {
	case "divide":
		opt.Pruner = core.PruneDivide
	case "naive":
		opt.Pruner = core.PruneNaive
	default:
		fatal(fmt.Errorf("unknown pruner %q", *pruner))
	}
	opt.Parallel = *parallel
	opt.Profile = *profOut != ""
	if *widths != "" {
		for _, tok := range strings.Split(*widths, ",") {
			w, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				fatal(fmt.Errorf("bad width %q: %w", tok, err))
			}
			opt.WireWidths = append(opt.WireWidths, w)
		}
	}

	rt := tr.RootAt(tr.Terminals()[0])
	base := rctree.NewNet(rt, tech, rctree.Assignment{})
	baseARD := ard.Compute(base, ard.Options{Obs: run.Recorder(), Trace: tcr}).ARD
	fmt.Printf("net: %d terminals, %d insertion points, %.0f µm wire, unoptimized ARD %.4f ns\n",
		len(tr.Terminals()), len(tr.Insertions()), tr.TotalWireLength(), baseARD)

	optSpan := reg.StartSpan("msri/optimize")
	res, err := core.Optimize(rt, tech, opt)
	if err != nil {
		fatal(err)
	}
	optSpan.End()
	fmt.Println("cost/ARD tradeoff suite:")
	if err := report.Suite(os.Stdout, res.Suite); err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Printf("stats: %d solutions created, max set %d, max PWL segments %d, %d prunes, %d dropped\n",
			res.Stats.SolutionsCreated, res.Stats.MaxSetSize, res.Stats.MaxSegs, res.Stats.PruneCalls, res.Stats.Dropped)
	}
	if *profOut != "" {
		p := solveprof.FromResult(res, "msri", *netPath)
		if err := p.WriteFile(*profOut); err != nil {
			fatal(err)
		}
		fmt.Printf("solveprof: %d born, %d died, waste ratio %d‰ -> %s\n",
			p.Totals.Born, p.Totals.Deaths, p.Waste.SegOpsPerMille, *profOut)
	}

	best, err := res.Suite.MinARD()
	if err != nil {
		fatal(err)
	}
	var chosen core.RootSolution
	if *spec > 0 {
		sol, ok := res.Suite.MinCost(*spec)
		if !ok {
			fatal(fmt.Errorf("no solution meets ARD ≤ %g ns (best achievable %.4f)",
				*spec, best.ARD))
		}
		chosen = sol
		fmt.Printf("min-cost solution meeting ARD ≤ %g: cost %.1f, ARD %.4f ns, %d repeaters\n",
			*spec, sol.Cost, sol.ARD, sol.Repeaters())
	} else {
		chosen = best
		fmt.Printf("min-ARD solution: cost %.1f, ARD %.4f ns, %d repeaters\n",
			chosen.Cost, chosen.ARD, chosen.Repeaters())
	}

	if *rep {
		if err := report.Summary(os.Stdout, rt, tech, chosen); err != nil {
			fatal(err)
		}
	}
	asg := chosen.Assignment()
	if *asgOut != "" {
		fh, err := os.Create(*asgOut)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(fh)
		enc.SetIndent("", "  ")
		if err := enc.Encode(netio.EncodeAssignment(chosen.Cost, chosen.ARD, asg)); err != nil {
			fatal(err)
		}
		fh.Close()
	}
	if *svgOut != "" {
		fh, err := os.Create(*svgOut)
		if err != nil {
			fatal(err)
		}
		net := rctree.NewNet(rt, tech, asg)
		r := ard.Compute(net, ard.Options{})
		err = svgplot.Render(fh, tr, asg, svgplot.Annotation{
			Title:    fmt.Sprintf("%s solution", *mode),
			Subtitle: fmt.Sprintf("cost %.1f, ARD %.4f ns", chosen.Cost, chosen.ARD),
			CritSrc:  r.CritSrc, CritSink: r.CritSink,
		}, svgplot.Style{ShowLabels: true})
		fh.Close()
		if err != nil {
			fatal(err)
		}
	}
}

// loadNet reads a net file: JSON from this repo's netgen, or an IEEE 1481
// SPEF subset when the path ends in .spef (terminal roles default to
// source+sink with the paper's symmetric electrical model).
func loadNet(path string) (*topo.Tree, buslib.Tech, error) {
	if strings.HasSuffix(path, ".spef") {
		fh, err := os.Open(path)
		if err != nil {
			return nil, buslib.Tech{}, err
		}
		defer fh.Close()
		tech := buslib.Default()
		tr, err := spef.Read(fh, tech, buslib.DefaultTerminal)
		return tr, tech, err
	}
	return netio.Load(path)
}

func fatal(err error) { cliflags.Fatal("msri", err) }
