// Command msrnetctl is the fleet-aware msrnetd client: it discovers a
// cluster's membership from any seed peer, routes each job of a
// msrnet-job/v1 batch to the job's home peer on the fleet's
// consistent-hash ring (where the shard cache hits in zero hops), fails
// over around dead peers, and merges the results back into request
// order. Against a single clusterless daemon it degrades to a plain
// retrying client. See DESIGN.md §13 and the README's "Running a
// 3-node fleet" walkthrough.
//
// Usage:
//
//	msrnetctl -peers http://h1:8383,http://h2:8383 -in batch.json
//	msrnetctl -peers http://h1:8383 -members        # print the membership
//	msrnetctl -peers http://h1:8383 -version        # peer build identity
//	msrnetctl -peers http://h1:8383 -api-key K -in batch.json   # multi-tenant daemon
//	msrnetctl -peers http://h1:8383 -api-key K -jobs            # fetch crash-recovered results
//	cat batch.json | msrnetctl -peers http://h1:8383 -in - -explain
//
// The request file is a msrnet-job/v1 body (same as POST /v1/jobs);
// the response JSON goes to stdout. Exit status is 0 only when every
// job succeeded.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"msrnet/internal/client"
	"msrnet/internal/cliflags"
	"msrnet/internal/obs/reqctx"
	"msrnet/internal/service"
	"msrnet/internal/spancollect"
)

// envAPIKey supplies the tenant credential when -api-key is not given,
// keeping the key out of shell history and process listings.
const envAPIKey = "MSRNET_API_KEY"

func main() {
	var (
		peers    = flag.String("peers", "", "comma-separated fleet seed base URLs (any live member; required)")
		in       = flag.String("in", "", "msrnet-job/v1 request file (\"-\" = stdin)")
		members  = flag.Bool("members", false, "print the discovered membership (one base URL per line) and exit")
		version  = flag.Bool("version", false, "print the first seed's /version build identity and exit")
		explain  = flag.Bool("explain", false, "ask for per-job msrnet-explain/v1 reports on the results")
		timeout  = flag.Duration("timeout", 5*time.Minute, "overall deadline for the whole batch, discovery and failover included")
		attempts = flag.Int("attempts", 0, "per-peer HTTP attempts per submission (0 = client default)")
		rounds   = flag.Int("rounds", -1, "job-level retry rounds per peer (-1 = client default, 0 = none)")
		apiKey   = flag.String("api-key", "", "tenant API key for a multi-tenant daemon (X-Msrnet-Api-Key; also via "+envAPIKey+")")
		jobs     = flag.Bool("jobs", false, "list this tenant's crash-recovered jobs from the first seed's GET /v1/recovered and exit (done results are acked on fetch; add -keep to peek)")
		keep     = flag.Bool("keep", false, "with -jobs: peek without acking, so the results stay fetchable")
		trace    = flag.String("trace", "", "collect the given trace ID's spans from every fleet member, stitch them, and print the cross-process waterfall + critical path")
		traceOut = flag.String("trace-out", "", "with -trace: also write the stitched Chrome trace-event file here (open in Perfetto)")
	)
	flag.Parse()

	var seeds []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			seeds = append(seeds, p)
		}
	}
	if len(seeds) == 0 {
		fmt.Fprintln(os.Stderr, "usage: msrnetctl -peers http://host:8383[,...] [-in batch.json | -members | -version]")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	key := *apiKey
	if key == "" {
		key = os.Getenv(envAPIKey)
	}

	if *version {
		if err := printVersion(ctx, seeds[0]); err != nil {
			fatal(err)
		}
		return
	}
	if *jobs {
		if err := printRecovered(ctx, seeds[0], key, *keep); err != nil {
			fatal(err)
		}
		return
	}

	opt := client.Options{MaxAttempts: *attempts, APIKey: key}
	if *rounds >= 0 {
		opt.JobRounds = *rounds
		if *rounds == 0 {
			opt.JobRounds = -1 // Options normalizes 0 to the default; -1 clamps to none
		}
	}
	c := client.NewCluster(seeds, opt)

	if *members {
		if err := c.Discover(ctx); err != nil {
			fatal(err)
		}
		for _, m := range c.Members() {
			fmt.Println(m)
		}
		return
	}

	if *trace != "" {
		if err := collectTrace(ctx, c, *trace, *traceOut); err != nil {
			fatal(err)
		}
		return
	}

	if *in == "" {
		fmt.Fprintln(os.Stderr, "msrnetctl: -in is required to submit a batch (or use -members / -version)")
		os.Exit(2)
	}
	req, err := readRequest(*in)
	if err != nil {
		fatal(err)
	}
	if *explain {
		req.Explain = true
	}
	resp, err := c.Run(ctx, req)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		fatal(err)
	}
	printProvenance(resp)
	for _, r := range resp.Results {
		if r.Status != service.StatusOK {
			os.Exit(1)
		}
	}
}

// printProvenance summarizes, on stderr, which fleet member actually
// served each explained job: work-stealing means the peer that answered
// the HTTP request is not necessarily the peer that solved the job, and
// before this summary a forwarded batch's output gave no hint of the
// hop. Silent when no explain carries fleet provenance (clusterless
// daemons, or batches submitted without -explain).
func printProvenance(resp *service.Response) {
	for _, r := range resp.Results {
		e := r.Explain
		if e == nil || (e.ServedBy == "" && e.ForwardedFrom == "") {
			continue
		}
		line := "msrnetctl: job " + label(e)
		switch {
		case e.ForwardedFrom != "":
			line += " solved by this peer after forward from " + e.ForwardedFrom
		case e.Outcome == service.OutcomeForwarded:
			line += " forwarded to and solved by " + e.ServedBy
		default:
			line += " served by " + e.ServedBy
		}
		if e.TraceID != "" {
			line += " (trace " + e.TraceID + ")"
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

// label names a job in provenance output: the client's label when the
// batch gave one, else the daemon-assigned job ID.
func label(e *service.Explain) string {
	if e.Label != "" {
		return e.Label
	}
	return e.JobID
}

// collectTrace fans the trace ID out over the discovered membership,
// stitches every process's spans on one skew-corrected timeline, and
// prints the waterfall plus the critical-path attribution. With a
// -trace-out path it also writes the stitched Chrome trace-event file.
func collectTrace(ctx context.Context, c *client.ClusterClient, traceID, out string) error {
	if err := c.Discover(ctx); err != nil {
		return err
	}
	col, err := spancollect.Collect(ctx, c.Members(), traceID, spancollect.Options{})
	if err != nil {
		return err
	}
	col.Stitched.WriteWaterfall(os.Stdout)
	fmt.Println()
	col.Stitched.CriticalPath().Write(os.Stdout)
	for _, m := range col.Missing {
		fmt.Fprintf(os.Stderr, "msrnetctl: %s has no spans for this trace\n", m)
	}
	for _, e := range col.Errors {
		fmt.Fprintf(os.Stderr, "msrnetctl: %s\n", e)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := col.Stitched.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "msrnetctl: stitched Chrome trace written to %s\n", out)
	}
	return nil
}

// readRequest loads the msrnet-job/v1 body from path ("-" = stdin).
func readRequest(path string) (*service.Request, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var req service.Request
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("msrnetctl: decode %s: %w", path, err)
	}
	return &req, nil
}

// printRecovered fetches the tenant's crash-recovered jobs from one
// peer's GET /v1/recovered and pretty-prints the msrnet-recovered/v1
// body. Unless keep is set, the daemon acknowledges the done results
// it hands over, so this call IS the delivery.
func printRecovered(ctx context.Context, peer, key string, keep bool) error {
	url := strings.TrimRight(peer, "/") + "/v1/recovered"
	if keep {
		url += "?keep=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	if key != "" {
		req.Header.Set(reqctx.HeaderAPIKey, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("msrnetctl: %s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var pretty json.RawMessage = body
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(pretty)
}

// printVersion fetches and pretty-prints one peer's build identity.
func printVersion(ctx context.Context, peer string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(peer, "/")+"/version", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("msrnetctl: %s/version: HTTP %d", peer, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	os.Stdout.Write(body)
	return nil
}

func fatal(err error) { cliflags.Fatal("msrnetctl", err) }
