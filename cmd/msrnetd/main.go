// Command msrnetd is the long-running batch-optimization daemon: an
// HTTP/JSON service that accepts single nets or batches (schema
// msrnet-job/v1) for the linear-time ARD pass, the optimal
// repeater-insertion dynamic program, or both, runs them on a bounded
// worker pool with per-job deadlines and backpressure, and memoizes
// results in an LRU cache keyed by the canonical content hash of the
// net plus its options. See DESIGN.md §8 and the README's "Running the
// daemon" section.
//
// Usage:
//
//	msrnetd                                  # serve on :8383 with GOMAXPROCS workers
//	msrnetd -listen :9000 -workers 8 -queue 128 -cache 1024
//	msrnetd -job-timeout 10s                 # per-job deadline
//	msrnetd -metrics m.json -trace           # snapshot/report on exit
//
// The serving listener itself exposes /metrics, /debug/vars,
// /debug/pprof/* and /healthz next to /v1/jobs, so the daemon needs no
// second observability port. SIGINT/SIGTERM trigger a graceful drain:
// in-flight and queued jobs complete before exit.
//
// An always-on flight recorder samples the full observability surface
// into a bounded ring (-recorder-interval) and writes self-contained
// postmortem bundles (-postmortem-dir) on worker panics, SLO burn-rate
// alerts (-slo), SIGQUIT, or POST /debug/dump; inspect bundles with
// cmd/msrnetdebug. See DESIGN.md §11.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"msrnet/internal/cliflags"
	"msrnet/internal/cluster"
	"msrnet/internal/faultinject"
	"msrnet/internal/jobstore"
	"msrnet/internal/obs/recorder"
	"msrnet/internal/obs/reqctx"
	"msrnet/internal/obs/spans"
	"msrnet/internal/service"
)

func main() {
	var (
		listen     = flag.String("listen", ":8383", "serve /v1/jobs plus /metrics, /debug/vars, /debug/pprof and /healthz on this address")
		workers    = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS); each worker runs one job at a time, composing with per-job \"parallel\" intra-net parallelism")
		queue      = flag.Int("queue", 0, "bounded job-queue depth (0 = 4×workers); full queue rejects with HTTP 429")
		jobTimeout = flag.Duration("job-timeout", 30*time.Second, "per-job deadline (0 = none)")
		cacheSize  = flag.Int("cache", 512, "LRU result-cache capacity in entries (0 = disable caching)")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown may spend draining in-flight jobs")
		drainGrace = flag.Duration("drain-grace", 0, "on SIGTERM, keep serving for this long with /readyz failing (and admission closed) before the listener stops, so load balancers drain traffic first")
		headroom   = flag.Duration("degrade-headroom", 0, "deadline slice reserved for the coarse (ε-relaxed) fallback (0 = job-timeout/4, negative = disable degradation)")
		coarseEps  = flag.Float64("coarse-eps", 0, "dominance relaxation of degraded runs in ns (0 = default 0.02)")
		shedMargin = flag.Duration("shed-margin", 0, "shed jobs at dequeue whose remaining deadline is below this margin (0 = disable shedding)")
		faults     = flag.String("faults", "", "fault-injection spec for chaos testing, e.g. 'svc/worker:panic:0.1;svc/cache/get:error:0.5' (also via "+faultinject.EnvFaults+")")
		faultSeed  = flag.Int64("fault-seed", 1, "fault-injection RNG seed (also via "+faultinject.EnvSeed+")")
		recEvery   = flag.Duration("recorder-interval", recorder.DefaultInterval, "flight-recorder sampling interval; the in-memory ring keeps the last "+fmt.Sprint(recorder.DefaultCapacity)+" samples")
		clAddr     = flag.String("cluster-addr", "", "advertised base URL of THIS daemon (e.g. http://10.0.0.1:8383); enables fleet clustering — gossip membership, the cluster-wide shard cache and work-stealing (DESIGN.md §13)")
		clPeers    = flag.String("cluster-peers", "", "comma-separated base URLs of seed peers to join through (any live member works)")
		clEvery    = flag.Duration("cluster-interval", time.Second, "gossip round period")
		clHops     = flag.Int("cluster-forward-hops", 0, "work-stealing forward-chain cap (0 = default 2)")
		pmDir      = flag.String("postmortem-dir", "", "write postmortem bundles into this directory on worker panics, SLO burns, SIGQUIT or POST /debug/dump (empty = ring-only recorder, no bundles)")
		pmKeep     = flag.Int("postmortem-keep", recorder.DefaultMaxBundles, "bounded bundle retention: the oldest bundles beyond this count are deleted")
		sloSpec    = flag.String("slo", "", "SLO burn-rate rules, semicolon-separated, e.g. 'e2e-slow:p99:e2e/ok:500ms:1m;err-fast:error_rate:0.01:1m'; a firing rule triggers a postmortem bundle")
		walDir     = flag.String("wal-dir", "", "write-ahead job log directory: accepted jobs and results are persisted and replayed on restart, so a crash or kill -9 loses nothing (empty = no durability, as before)")
		walSegment = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation size in bytes (0 = default 8 MiB)")
		tenantsCfg = flag.String("tenants", "", "msrnet-tenants/v1 config file: enables API-key auth, per-tenant quotas (queue slots, nets/sec, per-tenant Retry-After on 429) and weighted fair-share dispatch (DESIGN.md §14)")
	)
	obsFlags := cliflags.Register(flag.CommandLine,
		cliflags.Caps{AlwaysRegistry: true, AlwaysTracer: true, TraceEvents: true})
	flag.Parse()

	run, err := obsFlags.Start()
	if err != nil {
		fatal(err)
	}
	// Every log line carries the request-scoped trace_id/job_id when its
	// context has one (see internal/obs/reqctx).
	logger := reqctx.Logger(slog.NewTextHandler(os.Stderr, nil))

	// The -faults flag wins over MSRNET_FAULTS; both default to no
	// injector at all (nil is inert), so production pays nothing.
	inj, err := faultinject.FromEnv(run.Reg)
	if err != nil {
		fatal(err)
	}
	if *faults != "" {
		inj = faultinject.New(*faultSeed, run.Reg)
		if err := inj.Configure(*faults); err != nil {
			fatal(err)
		}
	}
	if inj.Active() > 0 {
		logger.Warn("fault injection ACTIVE — not a production configuration", "faults", inj.Active())
	}

	rules, err := recorder.ParseRules(*sloSpec)
	if err != nil {
		fatal(err)
	}
	// The flight recorder is always on: daemon snapshots carry Go
	// runtime state, and the ring is live at GET /debug/recorder even
	// when no -postmortem-dir is set (bundle triggers then fail).
	run.Reg.EnableRuntime()
	rec := recorder.New(recorder.Config{
		Reg:        run.Reg,
		Tracer:     run.Tracer,
		Interval:   *recEvery,
		Rules:      rules,
		Dir:        *pmDir,
		MaxBundles: *pmKeep,
		Logger:     logger,
		Info: map[string]any{
			"binary": "msrnetd", "go": runtime.Version(),
			"listen": *listen, "workers": *workers, "queue": *queue,
			"job_timeout": jobTimeout.String(), "cache": *cacheSize,
			"slo": *sloSpec, "faults_active": inj.Active(),
		},
	})

	// A daemon with an advertised address joins the fleet: peer identity
	// IS the advertised base URL, so every member (and every client)
	// derives the same consistent-hash ring with no coordination.
	var node *cluster.Node
	if *clAddr != "" {
		self := strings.TrimRight(*clAddr, "/")
		var seeds []cluster.Peer
		for _, p := range strings.Split(*clPeers, ",") {
			if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" && p != self {
				seeds = append(seeds, cluster.Peer{ID: cluster.ID(p), Addr: p})
			}
		}
		node = cluster.NewNode(cluster.Config{
			Self:      cluster.Peer{ID: cluster.ID(self), Addr: self},
			Seeds:     seeds,
			Params:    cluster.Params{Interval: *clEvery},
			Transport: &cluster.HTTPTransport{},
			Reg:       run.Reg,
			Logger:    logger,
		})
		logger.Info("cluster enabled", "self", self, "seeds", len(seeds), "interval", clEvery.String())
	}

	// The span index records this daemon's share of every traced job
	// lifecycle (DESIGN.md §15). The process name must be the fleet
	// identity when clustered — the collector stitches spans across
	// members by matching span references ("process#id") against
	// membership addresses — and falls back to a listen-derived name for
	// standalone daemons.
	process := "msrnetd@" + *listen
	if *clAddr != "" {
		process = strings.TrimRight(*clAddr, "/")
	}
	spanIdx := spans.NewIndex(spans.Options{Process: process})
	rec.SetSpans(func() any { return spanIdx.Dump() })

	var tenants []service.TenantConfig
	if *tenantsCfg != "" {
		tenants, err = service.LoadTenants(*tenantsCfg)
		if err != nil {
			fatal(err)
		}
		logger.Info("multi-tenant admission enabled", "tenants", len(tenants), "config", *tenantsCfg)
	}

	// The WAL opens (and replays) before the daemon exists so no request
	// can race recovery; replayed jobs re-enter the queue right after
	// New, before the listener binds.
	var store *jobstore.Store
	var replay *jobstore.Replay
	if *walDir != "" {
		store, replay, err = jobstore.Open(jobstore.Options{
			Dir: *walDir, SegmentBytes: *walSegment,
			Faults: inj, Reg: run.Reg, Spans: spanIdx, Logger: logger,
		})
		if err != nil {
			fatal(err)
		}
		logger.Info("job WAL open", "dir", *walDir, "replayed", len(replay.Entries),
			"torn", replay.Torn, "torn_tail", replay.TornTail)
	}

	d := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		JobTimeout:      *jobTimeout,
		CacheSize:       *cacheSize,
		DegradeHeadroom: *headroom,
		CoarseEps:       *coarseEps,
		ShedMargin:      *shedMargin,
		Faults:          inj,
		Reg:             run.Reg,
		Logger:          logger,
		Tracer:          run.Tracer,
		Recorder:        rec,
		Cluster:         node,
		ForwardHops:     *clHops,
		Tenants:         tenants,
		Store:           store,
		Spans:           spanIdx,
	})
	if store != nil {
		requeued, restored := d.Recover(replay)
		if requeued+restored > 0 {
			logger.Info("crash recovery", "requeued", requeued, "restored", restored)
		}
	}
	rec.Start()
	if node != nil {
		node.Start()
	}
	srv, err := service.Serve(*listen, d, logger)
	if err != nil {
		fatal(err)
	}

	// SIGQUIT forces a postmortem bundle and keeps serving; SIGINT and
	// SIGTERM begin the graceful drain.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGQUIT)
	var s os.Signal
	for s = range sig {
		if s != syscall.SIGQUIT {
			break
		}
		if dir, err := rec.Trigger(recorder.ReasonSIGQUIT, ""); err != nil {
			logger.Error("postmortem capture failed", "signal", s.String(), "err", err)
		} else {
			logger.Info("postmortem bundle written", "signal", s.String(), "bundle", dir)
		}
	}
	logger.Info("shutting down", "signal", s.String(), "drain_grace", *drainGrace, "drain_timeout", *drain)

	// Grace window: /readyz fails and admission is closed while the
	// listener (including /healthz, still 200) keeps serving, giving
	// load balancers time to route away before connections start
	// getting refused.
	if *drainGrace > 0 {
		srv.StartDrain()
		time.Sleep(*drainGrace)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Gossip keeps running through the drain (peers must see the
	// Ready=false heartbeats to stop stealing work to us); the loop
	// stops only once the listener is gone.
	err = srv.Shutdown(ctx)
	if node != nil {
		node.Stop()
	}
	// The WAL closes after the drain: the final fsync covers every
	// result the drain completed, and anything un-acked replays next
	// start.
	if cerr := store.Close(); cerr != nil {
		logger.Error("wal close", "err", cerr)
	}
	if err != nil {
		logger.Error("shutdown", "err", err)
		rec.Stop()
		run.Close()
		os.Exit(1)
	}
	rec.Stop()
	if err := run.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) { cliflags.Fatal("msrnetd", err) }
