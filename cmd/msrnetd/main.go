// Command msrnetd is the long-running batch-optimization daemon: an
// HTTP/JSON service that accepts single nets or batches (schema
// msrnet-job/v1) for the linear-time ARD pass, the optimal
// repeater-insertion dynamic program, or both, runs them on a bounded
// worker pool with per-job deadlines and backpressure, and memoizes
// results in an LRU cache keyed by the canonical content hash of the
// net plus its options. See DESIGN.md §8 and the README's "Running the
// daemon" section.
//
// Usage:
//
//	msrnetd                                  # serve on :8383 with GOMAXPROCS workers
//	msrnetd -listen :9000 -workers 8 -queue 128 -cache 1024
//	msrnetd -job-timeout 10s                 # per-job deadline
//	msrnetd -metrics m.json -trace           # snapshot/report on exit
//
// The serving listener itself exposes /metrics, /debug/vars,
// /debug/pprof/* and /healthz next to /v1/jobs, so the daemon needs no
// second observability port. SIGINT/SIGTERM trigger a graceful drain:
// in-flight and queued jobs complete before exit.
package main

import (
	"context"
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"msrnet/internal/cliflags"
	"msrnet/internal/faultinject"
	"msrnet/internal/obs/reqctx"
	"msrnet/internal/service"
)

func main() {
	var (
		listen     = flag.String("listen", ":8383", "serve /v1/jobs plus /metrics, /debug/vars, /debug/pprof and /healthz on this address")
		workers    = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS); each worker runs one job at a time, composing with per-job \"parallel\" intra-net parallelism")
		queue      = flag.Int("queue", 0, "bounded job-queue depth (0 = 4×workers); full queue rejects with HTTP 429")
		jobTimeout = flag.Duration("job-timeout", 30*time.Second, "per-job deadline (0 = none)")
		cacheSize  = flag.Int("cache", 512, "LRU result-cache capacity in entries (0 = disable caching)")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown may spend draining in-flight jobs")
		drainGrace = flag.Duration("drain-grace", 0, "on SIGTERM, keep serving for this long with /readyz failing (and admission closed) before the listener stops, so load balancers drain traffic first")
		headroom   = flag.Duration("degrade-headroom", 0, "deadline slice reserved for the coarse (ε-relaxed) fallback (0 = job-timeout/4, negative = disable degradation)")
		coarseEps  = flag.Float64("coarse-eps", 0, "dominance relaxation of degraded runs in ns (0 = default 0.02)")
		shedMargin = flag.Duration("shed-margin", 0, "shed jobs at dequeue whose remaining deadline is below this margin (0 = disable shedding)")
		faults     = flag.String("faults", "", "fault-injection spec for chaos testing, e.g. 'svc/worker:panic:0.1;svc/cache/get:error:0.5' (also via "+faultinject.EnvFaults+")")
		faultSeed  = flag.Int64("fault-seed", 1, "fault-injection RNG seed (also via "+faultinject.EnvSeed+")")
	)
	obsFlags := cliflags.Register(flag.CommandLine,
		cliflags.Caps{AlwaysRegistry: true, AlwaysTracer: true, TraceEvents: true})
	flag.Parse()

	run, err := obsFlags.Start()
	if err != nil {
		fatal(err)
	}
	// Every log line carries the request-scoped trace_id/job_id when its
	// context has one (see internal/obs/reqctx).
	logger := reqctx.Logger(slog.NewTextHandler(os.Stderr, nil))

	// The -faults flag wins over MSRNET_FAULTS; both default to no
	// injector at all (nil is inert), so production pays nothing.
	inj, err := faultinject.FromEnv(run.Reg)
	if err != nil {
		fatal(err)
	}
	if *faults != "" {
		inj = faultinject.New(*faultSeed, run.Reg)
		if err := inj.Configure(*faults); err != nil {
			fatal(err)
		}
	}
	if inj.Active() > 0 {
		logger.Warn("fault injection ACTIVE — not a production configuration", "faults", inj.Active())
	}

	d := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		JobTimeout:      *jobTimeout,
		CacheSize:       *cacheSize,
		DegradeHeadroom: *headroom,
		CoarseEps:       *coarseEps,
		ShedMargin:      *shedMargin,
		Faults:          inj,
		Reg:             run.Reg,
		Logger:          logger,
		Tracer:          run.Tracer,
	})
	srv, err := service.Serve(*listen, d, logger)
	if err != nil {
		fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logger.Info("shutting down", "signal", s.String(), "drain_grace", *drainGrace, "drain_timeout", *drain)

	// Grace window: /readyz fails and admission is closed while the
	// listener (including /healthz, still 200) keeps serving, giving
	// load balancers time to route away before connections start
	// getting refused.
	if *drainGrace > 0 {
		srv.StartDrain()
		time.Sleep(*drainGrace)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("shutdown", "err", err)
		run.Close()
		os.Exit(1)
	}
	if err := run.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) { cliflags.Fatal("msrnetd", err) }
