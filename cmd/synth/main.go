// Command synth performs multisource timing-driven topology synthesis —
// the §VII extension of Lillis & Cheng (TCAD'99): candidate topologies
// (P-Tree interval DP and iterated 1-Steiner) are each optimized with
// repeater insertion, and the one whose optimized ARD is best wins.
//
// Usage:
//
//	synth -net terminals.json           # synthesize for a net file's terminals
//	synth -pins 9 -seed 21              # synthesize for random terminals
//	synth -pins 9 -seed 21 -out best.json -svg best.svg
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/cliflags"
	"msrnet/internal/dominance"
	"msrnet/internal/geom"
	"msrnet/internal/netio"
	"msrnet/internal/ptree"
	"msrnet/internal/rctree"
	"msrnet/internal/rsmt"
	"msrnet/internal/svgplot"
)

func main() {
	var (
		netPath = flag.String("net", "", "net file supplying terminals and technology")
		pins    = flag.Int("pins", 9, "random terminals when no -net is given")
		seed    = flag.Int64("seed", 1, "random seed for -pins mode")
		grid    = flag.Float64("grid", 10000, "grid side (µm) for -pins mode")
		spacing = flag.Float64("spacing", 800, "insertion-point spacing in µm")
		out     = flag.String("out", "", "write the synthesized net as JSON")
		svgOut  = flag.String("svg", "", "write an SVG of the best solution")
	)
	obsFlags := cliflags.Register(flag.CommandLine, cliflags.Caps{})
	flag.Parse()

	run, err := obsFlags.Start()
	if err != nil {
		fatal(err)
	}
	reg := run.Reg
	if reg != nil {
		dominance.SetObserver(reg)
	}
	defer func() {
		if err := run.Close(); err != nil {
			fatal(err)
		}
	}()

	var (
		pts   []geom.Point
		terms []buslib.Terminal
		tech  buslib.Tech
	)
	if *netPath != "" {
		tr, fileTech, err := netio.Load(*netPath)
		if err != nil {
			fatal(err)
		}
		tech = fileTech
		for _, id := range tr.Terminals() {
			pts = append(pts, tr.Node(id).Pt)
			terms = append(terms, tr.Node(id).Term)
		}
	} else {
		tech = buslib.Default()
		r := rand.New(rand.NewSource(*seed))
		for i := 0; i < *pins; i++ {
			pts = append(pts, geom.Pt(r.Float64()**grid, r.Float64()**grid))
			terms = append(terms, buslib.DefaultTerminal(fmt.Sprintf("t%d", i)))
		}
	}

	// Baseline for comparison: fixed 1-Steiner route.
	baseLen := rsmt.Steiner(pts).Length()

	synSpan := reg.StartSpan("synth/synthesize")
	res, err := ptree.TimingDriven(pts, terms, tech, *spacing, ptree.Options{})
	if err != nil {
		fatal(err)
	}
	synSpan.End()
	best, err := res.Suite.MinARD()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("synthesized topology: %.0f µm wire (1-Steiner baseline %.0f µm)\n",
		res.WirelengthUm, baseLen)
	fmt.Printf("optimized ARD %.4f ns at cost %.0f (%d repeaters); suite has %d points\n",
		best.ARD, best.Cost, best.Repeaters(), len(res.Suite))

	if *out != "" {
		if err := netio.Save(*out, "synthesized", res.Tree, tech); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *out)
	}
	if *svgOut != "" {
		fh, err := os.Create(*svgOut)
		if err != nil {
			fatal(err)
		}
		asg := best.Assignment()
		rt := res.Tree.RootAt(res.Tree.Terminals()[0])
		net := rctree.NewNet(rt, tech, asg)
		r := ard.Compute(net, ard.Options{})
		err = svgplot.Render(fh, res.Tree, asg, svgplot.Annotation{
			Title:    "timing-driven synthesis",
			Subtitle: fmt.Sprintf("ARD %.4f ns, cost %.0f", best.ARD, best.Cost),
			CritSrc:  r.CritSrc, CritSink: r.CritSink,
		}, svgplot.Style{ShowLabels: true})
		fh.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *svgOut)
	}
}

func fatal(err error) { cliflags.Fatal("synth", err) }
