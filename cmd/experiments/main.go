// Command experiments regenerates the evaluation section of Lillis &
// Cheng (TCAD'99): Tables I–IV, Fig. 11 and the asymmetric-roles study.
//
// Usage:
//
//	experiments -all                  # everything (Table II/IV use -nets nets per size)
//	experiments -table 2 -nets 10    # Table II exactly as in the paper
//	experiments -fig 11 -svgdir out/ # Fig. 11 panels, with SVG renderings
//	experiments -all -listen :9090   # live /metrics + /debug/pprof while it runs
//	experiments -all -trace-events t.json  # Perfetto-loadable study timeline
//	experiments -all -solveprof p.json     # merged candidate-lifecycle waste profile
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/cliflags"
	"msrnet/internal/dominance"
	"msrnet/internal/experiments"
	"msrnet/internal/obs"
	trc "msrnet/internal/obs/trace"
	"msrnet/internal/rctree"
	"msrnet/internal/solveprof"
	"msrnet/internal/svgplot"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate table 1, 2, 3 or 4")
		fig      = flag.Int("fig", 0, "regenerate figure (11)")
		asym     = flag.Bool("asym", false, "run the asymmetric source/sink study (§VII)")
		all      = flag.Bool("all", false, "regenerate everything")
		nets     = flag.Int("nets", 10, "random nets per size for Tables II/IV")
		seed     = flag.Int64("seed", 1, "base seed")
		parallel = flag.Int("parallel", 1, "worker goroutines for Tables II/IV")
		spacing  = flag.Bool("spacing", false, "run the insertion-spacing study (footnote 15)")
		combined = flag.Bool("combined", false, "run the joint sizing+repeater study")
		svgdir   = flag.String("svgdir", "", "directory for Fig. 11 SVG output")
		csvdir   = flag.String("csvdir", "", "directory for CSV dumps of the tables")
		profOut  = flag.String("solveprof", "", "write the session's merged msrnet-solveprof/v1 candidate-lifecycle profile to this file")
	)
	obsFlags := cliflags.Register(flag.CommandLine, cliflags.Caps{TraceEvents: true, Listen: true})
	flag.Parse()
	tech := buslib.Default()
	if *profOut != "" {
		experiments.EnableProfiling()
	}

	run, err := obsFlags.Start()
	if err != nil {
		fatal(err)
	}
	reg, tcr := run.Reg, run.Tracer
	if reg != nil {
		dominance.SetObserver(reg)
	}
	if tcr != nil {
		dominance.SetTracer(tcr)
	}
	defer func() {
		if err := run.Close(); err != nil {
			fatal(err)
		}
	}()

	did := false
	if *all || *table == 1 {
		fmt.Print(experiments.FormatTable1(tech))
		fmt.Println()
		did = true
	}
	var t2rows []experiments.Table2Row
	if *all || *table == 2 || *table == 4 {
		done := startStudy(reg, tcr, "experiments/table2")
		for _, pins := range []int{10, 20} {
			row, _, err := experiments.Table2Parallel(pins, *nets, *seed, tech, *parallel)
			if err != nil {
				fatal(err)
			}
			t2rows = append(t2rows, row)
		}
		done()
	}
	if *all || *table == 2 {
		fmt.Print(experiments.FormatTable2(t2rows))
		fmt.Println()
		if *csvdir != "" {
			if err := writeCSV(*csvdir, "table2.csv", func(w *os.File) error {
				return experiments.WriteTable2CSV(w, t2rows)
			}); err != nil {
				fatal(err)
			}
		}
		did = true
	}
	if *all || *table == 3 {
		done := startStudy(reg, tcr, "experiments/table3")
		rows, err := experiments.Table3(tech)
		if err != nil {
			fatal(err)
		}
		done()
		fmt.Print(experiments.FormatTable3(rows))
		fmt.Println()
		if *csvdir != "" {
			if err := writeCSV(*csvdir, "table3.csv", func(w *os.File) error {
				return experiments.WriteTable3CSV(w, rows)
			}); err != nil {
				fatal(err)
			}
		}
		did = true
	}
	if *all || *table == 4 {
		fmt.Print(experiments.FormatTable4(t2rows))
		fmt.Println()
		did = true
	}
	if *all || *fig == 11 {
		done := startStudy(reg, tcr, "experiments/fig11")
		f, err := experiments.Fig11(8, tech, []int{2, 5})
		if err != nil {
			fatal(err)
		}
		done()
		fmt.Print(experiments.FormatFig11(f))
		fmt.Println()
		if *svgdir != "" {
			if err := os.MkdirAll(*svgdir, 0o755); err != nil {
				fatal(err)
			}
			rt := f.Tree.RootAt(f.Tree.Terminals()[0])
			for i, s := range f.Solutions {
				path := filepath.Join(*svgdir, fmt.Sprintf("fig11-%d-%dreps.svg", i, s.Repeaters))
				fh, err := os.Create(path)
				if err != nil {
					fatal(err)
				}
				net := rctree.NewNet(rt, tech, s.Assign)
				r := ard.Compute(net, ard.Options{})
				err = svgplot.Render(fh, f.Tree, s.Assign, svgplot.Annotation{
					Title:    s.Label,
					Subtitle: fmt.Sprintf("RC-diameter %.4f ns, critical %s → %s", s.ARD, s.CritSrc, s.CritSink),
					CritSrc:  r.CritSrc, CritSink: r.CritSink,
				}, svgplot.Style{ShowLabels: true})
				fh.Close()
				if err != nil {
					fatal(err)
				}
				fmt.Println("wrote", path)
			}
		}
		did = true
	}
	if *all || *spacing {
		done := startStudy(reg, tcr, "experiments/spacing")
		rows, err := experiments.SpacingStudy(10, *nets, *seed, tech, []float64{800, 450, 300})
		if err != nil {
			fatal(err)
		}
		done()
		fmt.Print(experiments.FormatSpacing(rows))
		fmt.Println()
		if *csvdir != "" {
			if err := writeCSV(*csvdir, "spacing.csv", func(w *os.File) error {
				return experiments.WriteSpacingCSV(w, rows)
			}); err != nil {
				fatal(err)
			}
		}
		did = true
	}
	if *all || *combined {
		done := startStudy(reg, tcr, "experiments/combined")
		var rows []experiments.CombinedRow
		for _, pins := range []int{10, 20} {
			row, err := experiments.Combined(pins, *nets, *seed, tech)
			if err != nil {
				fatal(err)
			}
			rows = append(rows, row)
		}
		done()
		fmt.Print(experiments.FormatCombined(rows))
		fmt.Println()
		did = true
	}
	if *all || *asym {
		done := startStudy(reg, tcr, "experiments/asym")
		rows, err := experiments.Asymmetric(10, *nets, *seed, tech, []float64{0.2, 0.5, 1.0})
		if err != nil {
			fatal(err)
		}
		done()
		fmt.Print(experiments.FormatAsym(rows))
		fmt.Println()
		did = true
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
	if *profOut != "" {
		p := solveprof.FromProfile(experiments.CollectProfile(), "experiments", studyLabel())
		if p == nil {
			fatal(fmt.Errorf("no solves were profiled"))
		}
		if err := p.WriteFile(*profOut); err != nil {
			fatal(err)
		}
		fmt.Printf("solveprof: %d runs merged, %d born, %d died, waste ratio %d‰ -> %s\n",
			p.Runs, p.Totals.Born, p.Totals.Deaths, p.Waste.SegOpsPerMille, *profOut)
	}
}

// studyLabel names the profiled session after the flags that selected
// the studies, so diffs between sessions are self-describing.
func studyLabel() string {
	var parts []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "table", "fig", "asym", "all", "spacing", "combined", "nets", "seed":
			parts = append(parts, fmt.Sprintf("%s=%s", f.Name, f.Value))
		}
	})
	return strings.Join(parts, ",")
}

// startStudy opens the same study phase in both sinks — a registry span
// for the aggregate report and a trace region for the timeline — and
// returns the closer. Both sinks are nil-safe, so unconfigured runs pay
// nothing.
func startStudy(reg *obs.Registry, tcr *trc.Tracer, name string) func() {
	sp := reg.StartSpan(name)
	rg := tcr.Begin(name, "study")
	return func() { sp.End(); rg.End() }
}

func writeCSV(dir, name string, fn func(*os.File) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fh, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer fh.Close()
	if err := fn(fh); err != nil {
		return err
	}
	fmt.Println("wrote", filepath.Join(dir, name))
	return nil
}

func fatal(err error) { cliflags.Fatal("experiments", err) }
