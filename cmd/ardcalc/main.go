// Command ardcalc computes the augmented RC-diameter (ARD) of a net file
// using the linear-time algorithm of §III of Lillis & Cheng (TCAD'99),
// and optionally cross-checks it against the naive multiple-single-source
// method and dumps the full source×sink delay matrix.
//
// Usage:
//
//	ardcalc -net net10.json
//	ardcalc -net net10.json -matrix -check
//	ardcalc -net net10.json -metrics m.json -trace -cpuprofile cpu.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"msrnet/internal/ard"
	"msrnet/internal/cliflags"
	"msrnet/internal/netio"
	"msrnet/internal/rctree"
	"msrnet/internal/spef"
	"msrnet/internal/topo"

	"msrnet/internal/buslib"
	"strings"
)

func main() {
	var (
		netPath = flag.String("net", "", "net file (required)")
		matrix  = flag.Bool("matrix", false, "print the full source×sink augmented delay matrix")
		check   = flag.Bool("check", false, "cross-check against the naive O(s·n) computation")
		self    = flag.Bool("self", false, "include u==v source/sink pairs")
	)
	obsFlags := cliflags.Register(flag.CommandLine, cliflags.Caps{})
	flag.Parse()
	if *netPath == "" {
		fmt.Fprintln(os.Stderr, "ardcalc: -net is required")
		os.Exit(2)
	}
	run, err := obsFlags.Start()
	if err != nil {
		fatal(err)
	}
	reg := run.Reg
	defer func() {
		if err := run.Close(); err != nil {
			fatal(err)
		}
	}()

	loadSpan := reg.StartSpan("ardcalc/load")
	tr, tech, err := loadNet(*netPath)
	if err != nil {
		fatal(err)
	}
	loadSpan.End()
	rt := tr.RootAt(tr.Terminals()[0])
	net := rctree.NewNet(rt, tech, rctree.Assignment{})
	res := ard.Compute(net, ard.Options{IncludeSelf: *self, Obs: run.Recorder()})
	name := func(id int) string {
		if id < 0 {
			return "-"
		}
		return tr.Node(id).Term.Name
	}
	fmt.Printf("ARD = %.6f ns\n", res.ARD)
	fmt.Printf("critical pair: %s -> %s\n", name(res.CritSrc), name(res.CritSink))

	if *check {
		naiveSpan := reg.StartSpan("ardcalc/naive_check")
		naive, _, _ := net.NaiveARD(*self)
		naiveSpan.End()
		diff := res.ARD - naive
		fmt.Printf("naive ARD = %.6f ns (difference %.3g)\n", naive, diff)
		if diff > 1e-9 || diff < -1e-9 {
			fmt.Fprintln(os.Stderr, "ardcalc: MISMATCH between linear and naive ARD")
			os.Exit(1)
		}
	}
	if *matrix {
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprint(w, "src\\snk")
		sinks := tr.Sinks()
		for _, v := range sinks {
			fmt.Fprintf(w, "\t%s", name(v))
		}
		fmt.Fprintln(w)
		for _, s := range tr.Sources() {
			fmt.Fprint(w, name(s))
			dist := net.DelaysFrom(s)
			for _, v := range sinks {
				if v == s && !*self {
					fmt.Fprint(w, "\t-")
					continue
				}
				aug := tr.Node(s).Term.AAT + dist[v] + tr.Node(v).Term.Q
				fmt.Fprintf(w, "\t%.4f", aug)
			}
			fmt.Fprintln(w)
		}
		w.Flush()
	}
}

// loadNet reads a net file: JSON from this repo's netgen, or an IEEE 1481
// SPEF subset when the path ends in .spef (terminal roles default to
// source+sink with the paper's symmetric electrical model).
func loadNet(path string) (*topo.Tree, buslib.Tech, error) {
	if strings.HasSuffix(path, ".spef") {
		fh, err := os.Open(path)
		if err != nil {
			return nil, buslib.Tech{}, err
		}
		defer fh.Close()
		tech := buslib.Default()
		tr, err := spef.Read(fh, tech, buslib.DefaultTerminal)
		return tr, tech, err
	}
	return netio.Load(path)
}

func fatal(err error) { cliflags.Fatal("ardcalc", err) }
