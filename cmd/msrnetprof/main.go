// Command msrnetprof is the differential analyzer for
// msrnet-solveprof/v1 artifacts: it renders where the MSRI solver
// wastes work (which candidate classes die, at which topology nodes,
// after how many survived prunes, at what PWL-segment cost), diffs two
// profiles, and checks a profile against the committed bench baseline.
//
// Usage:
//
//	msrnetprof prof.json                      # render one profile
//	msrnetprof old.json new.json              # diff two profiles
//	msrnetprof -bench msri/12pin              # profile a committed bench workload in-process
//	msrnetprof -bench msri/12pin -out p.json  # ... and write the artifact
//	msrnetprof old.json -bench msri/12pin     # diff a saved profile against a fresh run
//	msrnetprof -baseline BENCH_msrnet.json -bench msri/12pin
//	                                          # check the waste ratio against the bench baseline
//
// The rendered "predictive-pruning upper bound" is the share of work
// charged to candidates that die: a perfect predictive pruner (Li &
// Shi's O(bn²) bookkeeping, ROADMAP open item 1) could remove at most
// that much of the solver's PWL/allocation work.
package main

import (
	"flag"
	"fmt"
	"os"

	"msrnet/internal/bench"
	"msrnet/internal/cliflags"
	"msrnet/internal/solveprof"
)

func main() {
	var (
		benchWL  = flag.String("bench", "", "profile this committed bench workload (msri/<N>pin) in-process")
		out      = flag.String("out", "", "write the -bench profile artifact to this file")
		baseline = flag.String("baseline", "", "compare the profile's waste ratio against this committed bench report")
		top      = flag.Int("top", 10, "number of top wasted sites / movers to show")
	)
	flag.Parse()

	profiles, err := loadInputs(flag.Args(), *benchWL)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if *benchWL == "" {
			fatal(fmt.Errorf("-out requires -bench (saved profiles are already on disk)"))
		}
		if err := profiles[len(profiles)-1].WriteFile(*out); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *out)
	}

	switch len(profiles) {
	case 1:
		solveprof.Render(os.Stdout, profiles[0], *top)
	case 2:
		solveprof.Compute(profiles[0], profiles[1]).Render(os.Stdout, *top)
	default:
		fatal(fmt.Errorf("need one profile (render) or two (diff); got %d — see -h", len(profiles)))
	}

	if *baseline != "" {
		if err := checkBaseline(*baseline, profiles[len(profiles)-1]); err != nil {
			fmt.Fprintln(os.Stderr, "msrnetprof:", err)
			os.Exit(1)
		}
	}
}

// loadInputs resolves positional artifact paths plus the optional
// in-process bench profile (which, when present, acts as the "new"
// side).
func loadInputs(paths []string, benchWL string) ([]*solveprof.Profile, error) {
	var out []*solveprof.Profile
	for _, path := range paths {
		p, err := solveprof.Load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if benchWL != "" {
		res, err := bench.ProfileMSRI(benchWL)
		if err != nil {
			return nil, err
		}
		p := solveprof.FromResult(res, "bench", benchWL)
		if err := p.Validate(); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// checkBaseline compares the profile's waste ratio against the
// committed bench counters for the same workload — the CLI face of the
// CI waste-budget gate.
func checkBaseline(path string, p *solveprof.Profile) error {
	rep, err := bench.Load(path)
	if err != nil {
		return err
	}
	for _, wl := range rep.Workloads {
		if wl.Name != p.Workload {
			continue
		}
		base, ok := wl.Counters["waste_per_mille"]
		if !ok {
			return fmt.Errorf("baseline %s has no waste counters for %s (regenerate it)", path, wl.Name)
		}
		cur := p.Waste.SegOpsPerMille
		d := cur - base
		sign := "+"
		if d < 0 {
			sign, d = "-", -d
		}
		fmt.Printf("\nbaseline %s: waste ratio %d.%d%% vs committed %d.%d%% (%s%d.%dpp)\n",
			wl.Name, cur/10, cur%10, base/10, base%10, sign, d/10, d%10)
		if cur > base {
			return fmt.Errorf("waste ratio regressed vs baseline: %d‰ > %d‰", cur, base)
		}
		return nil
	}
	return fmt.Errorf("baseline %s has no workload %q", path, p.Workload)
}

func fatal(err error) { cliflags.Fatal("msrnetprof", err) }
