// Command netgen generates random multisource benchmark nets in the style
// of §VI of Lillis & Cheng (TCAD'99): random terminals on a square grid,
// Steiner-routed, with repeater insertion points at bounded spacing.
//
// Usage:
//
//	netgen -pins 10 -seed 1 -out net10.json
//	netgen -pins 20 -seed 3 -grid 10000 -spacing 800 -sources 0.5 -out asym.json
package main

import (
	"flag"
	"fmt"
	"os"

	"msrnet/internal/buslib"
	"msrnet/internal/cliflags"
	"msrnet/internal/netgen"
	"msrnet/internal/netio"
	"msrnet/internal/spef"
)

func main() {
	var (
		pins    = flag.Int("pins", 10, "number of terminals")
		seed    = flag.Int64("seed", 1, "random seed")
		grid    = flag.Float64("grid", 10000, "grid side in µm")
		spacing = flag.Float64("spacing", 800, "max insertion-point spacing in µm (0 = none)")
		steiner = flag.Bool("steiner", true, "use iterated 1-Steiner routing (false = MST)")
		sources = flag.Float64("sources", 1.0, "fraction of terminals acting as sources")
		sinks   = flag.Float64("sinks", 1.0, "fraction of terminals acting as sinks")
		name    = flag.String("name", "", "net name (default derived from parameters)")
		out     = flag.String("out", "", "output file (default stdout)")
		spefOut = flag.String("spef", "", "also write the parasitics as SPEF to this path")
	)
	obsFlags := cliflags.Register(flag.CommandLine, cliflags.Caps{})
	flag.Parse()

	run, err := obsFlags.Start()
	if err != nil {
		fatal(err)
	}
	reg := run.Reg
	defer func() {
		if err := run.Close(); err != nil {
			fatal(err)
		}
	}()

	p := netgen.Params{
		Terminals:             *pins,
		GridUm:                *grid,
		MaxInsertionSpacingUm: *spacing,
		UseSteiner:            *steiner,
		SourceFrac:            *sources,
		SinkFrac:              *sinks,
	}
	genSpan := reg.StartSpan("netgen/generate")
	tr, err := netgen.Generate(*seed, p)
	if err != nil {
		fatal(err)
	}
	genSpan.End()
	netName := *name
	if netName == "" {
		netName = fmt.Sprintf("rand-%dpin-seed%d", *pins, *seed)
	}
	f := netio.Encode(netName, tr, buslib.Default())
	w := os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer fh.Close()
		w = fh
	}
	wrSpan := reg.StartSpan("netgen/write")
	if err := netio.Write(w, f); err != nil {
		fatal(err)
	}
	wrSpan.End()
	if *spefOut != "" {
		spefSpan := reg.StartSpan("netgen/spef")
		fh, err := os.Create(*spefOut)
		if err != nil {
			fatal(err)
		}
		if err := spef.Write(fh, netName, tr, buslib.Default()); err != nil {
			fh.Close()
			fatal(err)
		}
		fh.Close()
		spefSpan.End()
		fmt.Fprintln(os.Stderr, "wrote", *spefOut)
	}
	fmt.Fprintf(os.Stderr, "generated %s: %d terminals, %d insertion points, %.0f µm wire\n",
		netName, len(tr.Terminals()), len(tr.Insertions()), tr.TotalWireLength())
}

func fatal(err error) { cliflags.Fatal("netgen", err) }
