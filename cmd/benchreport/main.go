// Command benchreport is the perf-regression observatory: it runs the
// fixed paper-derived workload suite (ARD characterization on §VI-style
// random nets, MSRI dynamic-program sweeps), writes a schema-versioned
// report with each workload's deterministic work counters and per-phase
// span timings, and — given a baseline — exits non-zero if anything
// regressed past the threshold.
//
// Usage:
//
//	benchreport                                  # quick suite -> BENCH_msrnet.json
//	benchreport -suite full -repeats 5
//	benchreport -baseline BENCH_msrnet.json -out /tmp/now.json
//	benchreport -baseline BENCH_msrnet.json -threshold 0.25
//
// Comparison is on the DP's deterministic work counters (solutions
// created, prune calls, set sizes…), which are machine-independent, so
// a committed baseline stays meaningful on any runner. Wall-clock
// comparison is opt-in via -time-threshold, for same-machine A/B runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"msrnet/internal/bench"
	"msrnet/internal/cliflags"
)

func main() {
	var (
		suite     = flag.String("suite", "quick", "workload suite: quick (CI-sized) or full")
		repeats   = flag.Int("repeats", 3, "wall-time repeats per workload (best-of)")
		out       = flag.String("out", "BENCH_msrnet.json", "write the report to this file")
		baseline  = flag.String("baseline", "", "compare against this committed report; exit 1 on regression")
		threshold = flag.Float64("threshold", 0.25, "allowed fractional growth per work counter")
		timeTol   = flag.Float64("time-threshold", 0, "allowed fractional wall-time growth (0 = don't compare time)")
	)
	flag.Parse()

	rep, err := bench.Run(bench.Config{Suite: *suite, Repeats: *repeats})
	if err != nil {
		fatal(err)
	}
	for _, wl := range rep.Workloads {
		fmt.Printf("%-14s %10.4fs", wl.Name, wl.WallSeconds)
		for _, key := range []string{"solutions_created", "prune_calls", "nodes"} {
			if v, ok := wl.Counters[key]; ok {
				fmt.Printf("  %s=%d", key, v)
			}
		}
		fmt.Println()
	}
	if err := rep.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)

	if *baseline == "" {
		return
	}
	base, err := bench.Load(*baseline)
	if err != nil {
		fatal(err)
	}
	regs, err := bench.Compare(base, rep, *threshold, *timeTol)
	if err != nil {
		fatal(err)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchreport: %d regression(s) vs %s:\n", len(regs), *baseline)
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, " ", r)
		}
		os.Exit(1)
	}
	fmt.Printf("no regressions vs %s (counter threshold %.0f%%)\n", *baseline, *threshold*100)
}

func fatal(err error) { cliflags.Fatal("benchreport", err) }
