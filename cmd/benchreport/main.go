// Command benchreport is the perf-regression observatory: it runs the
// fixed paper-derived workload suite (ARD characterization on §VI-style
// random nets, MSRI dynamic-program sweeps), writes a schema-versioned
// report with each workload's deterministic work counters and per-phase
// span timings, and — given a baseline — exits non-zero if anything
// regressed past the threshold.
//
// Usage:
//
//	benchreport                                  # quick suite -> BENCH_msrnet.json
//	benchreport -suite full -repeats 5
//	benchreport -baseline BENCH_msrnet.json -out /tmp/now.json
//	benchreport -baseline BENCH_msrnet.json -threshold 0.25 -waste-threshold 5
//
// Comparison is on the DP's deterministic work counters (solutions
// created, prune calls, set sizes…), which are machine-independent, so
// a committed baseline stays meaningful on any runner. Wall-clock
// comparison is opt-in via -time-threshold, for same-machine A/B runs.
// The MSRI workloads additionally carry waste counters (dead-candidate
// share of PWL segment ops); the waste-budget gate fails the run when a
// workload's waste ratio grows more than -waste-threshold per-mille
// points past the baseline.
package main

import (
	"flag"
	"fmt"
	"os"

	"msrnet/internal/bench"
	"msrnet/internal/cliflags"
	"msrnet/internal/solveprof"
)

func main() {
	var (
		suite     = flag.String("suite", "quick", "workload suite: quick (CI-sized) or full")
		repeats   = flag.Int("repeats", 3, "wall-time repeats per workload (best-of)")
		out       = flag.String("out", "BENCH_msrnet.json", "write the report to this file")
		baseline  = flag.String("baseline", "", "compare against this committed report; exit 1 on regression")
		threshold = flag.Float64("threshold", 0.25, "allowed fractional growth per work counter")
		timeTol   = flag.Float64("time-threshold", 0, "allowed fractional wall-time growth (0 = don't compare time)")
		wasteTol  = flag.Int64("waste-threshold", 5, "allowed waste-ratio growth in per-mille points (waste-budget gate; negative = don't gate)")
	)
	flag.Parse()

	rep, err := bench.Run(bench.Config{Suite: *suite, Repeats: *repeats})
	if err != nil {
		fatal(err)
	}

	var base *bench.Report
	if *baseline != "" {
		b, err := bench.Load(*baseline)
		if err != nil {
			fatal(err)
		}
		base = &b
	}

	for _, wl := range rep.Workloads {
		fmt.Printf("%-14s %10.4fs", wl.Name, wl.WallSeconds)
		for _, key := range []string{"solutions_created", "prune_calls", "nodes"} {
			if v, ok := wl.Counters[key]; ok {
				fmt.Printf("  %s=%d", key, v)
			}
		}
		fmt.Printf("%s\n", wasteColumn(wl, base))
	}
	if err := rep.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)

	if base == nil {
		return
	}
	regs, err := bench.Compare(*base, rep, *threshold, *timeTol)
	if err != nil {
		fatal(err)
	}
	if *wasteTol >= 0 {
		wregs, err := bench.WasteRegressions(*base, rep, *wasteTol)
		if err != nil {
			fatal(err)
		}
		regs = append(regs, wregs...)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchreport: %d regression(s) vs %s:\n", len(regs), *baseline)
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, " ", r)
		}
		os.Exit(1)
	}
	fmt.Printf("no regressions vs %s (counter threshold %.0f%%, waste slack %d‰)\n",
		*baseline, *threshold*100, *wasteTol)
}

// wasteColumn renders the waste-ratio column for MSRI workloads:
// deaths/born and the wasted-ops share, with the delta against the
// baseline when one is loaded.
func wasteColumn(wl bench.Workload, base *bench.Report) string {
	total, ok := wl.Counters["total_seg_ops"]
	if !ok {
		return ""
	}
	dropRatio := solveprof.PerMille(wl.Counters["dropped"], wl.Counters["solutions_created"])
	wasteRatio := wl.Counters["waste_per_mille"]
	col := fmt.Sprintf("  dropped/created=%d.%d%%  wasted_ops=%d.%d%% (%d/%d)",
		dropRatio/10, dropRatio%10, wasteRatio/10, wasteRatio%10,
		wl.Counters["wasted_seg_ops"], total)
	if base != nil {
		for _, bw := range base.Workloads {
			if bw.Name != wl.Name {
				continue
			}
			if b, ok := bw.Counters["waste_per_mille"]; ok {
				d := wasteRatio - b
				sign := "+"
				if d < 0 {
					sign, d = "-", -d
				}
				col += fmt.Sprintf("  Δwaste=%s%d.%dpp", sign, d/10, d%10)
			}
			break
		}
	}
	return col
}

func fatal(err error) { cliflags.Fatal("benchreport", err) }
