package solveprof

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Render writes a human-readable report of one profile: totals, the
// waste headline, the top wasted birth sites, the per-class churn, the
// survival-depth histogram and the wavefront peak — ending with the
// predictive-pruning upper bound (the share of work spent on candidates
// that provably never contribute; a perfect predictive pruner as in Li
// & Shi could remove at most that much).
func Render(w io.Writer, p *Profile, topN int) {
	if topN <= 0 {
		topN = 10
	}
	fmt.Fprintf(w, "solveprof %s", p.Source)
	if p.Workload != "" {
		fmt.Fprintf(w, " %s", p.Workload)
	}
	fmt.Fprintf(w, " (%d run%s)\n", p.Runs, plural(p.Runs))
	fmt.Fprintf(w, "  candidates: %d born, %d died (%s), %d survived to suite\n",
		p.Totals.Born, p.Totals.Deaths, permilleStr(p.Waste.DeathsPerMille), p.Totals.Survived)
	fmt.Fprintf(w, "  work: %d PWL seg ops (%d wasted, %s), %d allocs (%d wasted, %s), %d join pairings\n",
		p.Totals.SegOps, p.Waste.SegOps, permilleStr(p.Waste.SegOpsPerMille),
		p.Totals.Allocs, p.Waste.Allocs, permilleStr(p.Waste.AllocsPerMille),
		p.Totals.JoinPairings)
	if p.Stats != nil {
		fmt.Fprintf(w, "  solver: %d solutions created, %d prune calls, %d dropped, max set %d\n",
			p.Stats.SolutionsCreated, p.Stats.PruneCalls, p.Stats.Dropped, p.Stats.MaxSetSize)
	}

	fmt.Fprintf(w, "\n  per-class churn:\n")
	fmt.Fprintf(w, "    %-12s %8s %8s %8s %12s %14s\n", "class", "born", "died", "survived", "seg_ops", "wasted_segs")
	for _, ph := range p.Phases {
		fmt.Fprintf(w, "    %-12s %8d %8d %8d %12d %14d\n",
			ph.Class, ph.Born, ph.Deaths, ph.Survived, ph.SegOps, ph.WastedSegOps)
	}

	rows := topWasted(p, topN)
	if len(rows) > 0 {
		fmt.Fprintf(w, "\n  top wasted sites (by dead-candidate seg ops):\n")
		fmt.Fprintf(w, "    %-12s %6s %8s %8s %14s  %s\n", "class", "node", "born", "died", "wasted_segs", "causes")
		for _, r := range rows {
			fmt.Fprintf(w, "    %-12s %6d %8d %8d %14d  %s\n",
				r.Class, r.Node, r.Born, r.TotalDeaths(), r.WastedSegOps(), causesStr(r))
		}
	}

	fmt.Fprintf(w, "\n  survival depth of dying candidates (prune calls survived):\n")
	for _, d := range p.Depth {
		if d.Deaths == 0 {
			continue
		}
		fmt.Fprintf(w, "    depth %-3s %8d deaths %12d seg ops\n", d.Bucket, d.Deaths, d.SegOps)
	}

	if len(p.Wavefront) > 0 {
		peak := p.Wavefront[0]
		for _, r := range p.Wavefront {
			if r.Final > peak.Final {
				peak = r
			}
		}
		fmt.Fprintf(w, "\n  wavefront: %d nodes; peak set %d at node %d (%s)\n",
			len(p.Wavefront), peak.Final, peak.Node, peak.Kind)
	}

	fmt.Fprintf(w, "\n  predictive-pruning upper bound: removing all dead-candidate work would save\n")
	fmt.Fprintf(w, "  up to %s of PWL segment ops and %s of candidate allocations.\n",
		permilleStr(p.Waste.SegOpsPerMille), permilleStr(p.Waste.AllocsPerMille))
}

// topWasted returns the sites with the most dead-candidate seg ops,
// ties broken by (class, node) for deterministic output.
func topWasted(p *Profile, n int) []SiteRow {
	rows := make([]SiteRow, 0, len(p.Matrix))
	for _, r := range p.Matrix {
		if r.TotalDeaths() > 0 {
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		wi, wj := rows[i].WastedSegOps(), rows[j].WastedSegOps()
		if wi != wj {
			return wi > wj
		}
		if rows[i].Class != rows[j].Class {
			return rows[i].Class < rows[j].Class
		}
		return rows[i].Node < rows[j].Node
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

func causesStr(r SiteRow) string {
	keys := make([]string, 0, len(r.Deaths))
	for c := range r.Deaths {
		keys = append(keys, c)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, c := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", c, r.Deaths[c].Deaths))
	}
	return strings.Join(parts, " ")
}

// permilleStr renders an integer per-mille ratio as a percentage.
func permilleStr(pm int64) string {
	return fmt.Sprintf("%d.%d%%", pm/10, pm%10)
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}
