// Package solveprof defines the msrnet-solveprof/v1 artifact: the
// serialized, diffable form of the solver's candidate-lifecycle profile
// (core.LifecycleProfile). Where BENCH_msrnet.json answers "did the
// solver get slower?", a solveprof answers "where does the solver waste
// work?" — which construction rules at which topology nodes burn PWL
// segment operations and allocations on candidates that die, how deep
// those candidates survive before dying, and what the per-node
// wavefront looked like. It is the measuring stick for the predictive
// pruning work of ROADMAP open item 1.
//
// The artifact is deterministic by construction: every list is sorted
// on a total key order, counters are order-independent sums, and no
// wall-clock timing is recorded, so the same input produces a
// byte-identical file across runs, machines and GOMAXPROCS settings.
package solveprof

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"msrnet/internal/core"
)

// Schema identifies the artifact format.
const Schema = "msrnet-solveprof/v1"

// Profile is the root of a msrnet-solveprof/v1 document.
type Profile struct {
	Schema string `json:"schema"`
	// Source says who produced the profile ("msri", "bench", "msrnetd",
	// "experiments"); Workload names the input ("msri/12pin", a job id,
	// a study name).
	Source   string `json:"source"`
	Workload string `json:"workload,omitempty"`
	// Runs counts the Optimize runs aggregated into this profile (>1
	// for experiment sessions that merge many solves).
	Runs int `json:"runs"`

	Totals Totals `json:"totals"`
	Waste  Waste  `json:"waste"`

	// Matrix is the site×cause waste matrix: one row per birth site,
	// sorted by (class, node); each row carries its per-cause death
	// cells. Matrix rows cover every site that ever bore a candidate.
	Matrix []SiteRow `json:"matrix"`

	// Depth is the survival-depth histogram of deaths: bucket k holds
	// candidates that survived exactly k prune calls before dying; the
	// last bucket collects 8 and deeper.
	Depth []DepthRow `json:"depth"`

	// Wavefront is the per-node timeline summary, sorted by node id.
	Wavefront []WaveRow `json:"wavefront"`

	// Phases is the per-candidate-class churn rollup (the "per-phase
	// alloc churn" view), sorted by class name.
	Phases []PhaseRow `json:"phases"`

	// Stats echoes the solver's run statistics when the profile covers
	// exactly one Optimize run (omitted for merged profiles, where no
	// single Stats applies).
	Stats *core.Stats `json:"stats,omitempty"`
	// SuitePoints is the root Pareto-suite size for single-run profiles.
	SuitePoints int `json:"suite_points,omitempty"`
}

// Totals are the whole-run construction counters.
type Totals struct {
	Born         int   `json:"born"`
	Deaths       int   `json:"deaths"`
	Survived     int   `json:"survived"`
	SegOps       int64 `json:"seg_ops"`
	Allocs       int64 `json:"allocs"`
	JoinPairings int64 `json:"join_pairings"`
}

// Waste is the dead-candidate share of the totals. PerMille ratios are
// integer to keep the artifact byte-stable (no float formatting).
type Waste struct {
	SegOps         int64 `json:"seg_ops"`
	Allocs         int64 `json:"allocs"`
	SegOpsPerMille int64 `json:"seg_ops_per_mille"`
	AllocsPerMille int64 `json:"allocs_per_mille"`
	DeathsPerMille int64 `json:"deaths_per_mille"`
}

// SiteRow is one birth site's lifecycle ledger.
type SiteRow struct {
	Class    string `json:"class"`
	Node     int    `json:"node"`
	Born     int    `json:"born"`
	Survived int    `json:"survived,omitempty"`
	SegOps   int64  `json:"seg_ops"`
	Allocs   int64  `json:"allocs"`
	// Deaths maps cause → waste cell; encoding/json emits map keys in
	// sorted order, so the encoding stays deterministic.
	Deaths map[string]core.WasteCell `json:"deaths,omitempty"`
}

// WastedSegOps sums the row's dead-candidate segment ops across causes.
func (r SiteRow) WastedSegOps() int64 {
	var n int64
	for _, c := range r.Deaths {
		n += c.SegOps
	}
	return n
}

// TotalDeaths sums the row's deaths across causes.
func (r SiteRow) TotalDeaths() int {
	n := 0
	for _, c := range r.Deaths {
		n += c.Deaths
	}
	return n
}

// DepthRow is one survival-depth bucket (power-of-two lineage-depth
// ranges; see core.DepthBucketLabel).
type DepthRow struct {
	Bucket string `json:"bucket"` // "0", "1", "2", "3-4", …, "65+"
	Deaths int    `json:"deaths"`
	SegOps int64  `json:"seg_ops"`
	Allocs int64  `json:"allocs"`
}

// WaveRow is one node's slice of the wavefront timeline.
type WaveRow struct {
	Node  int    `json:"node"`
	Kind  string `json:"kind"`
	Born  int    `json:"born"`
	Died  int    `json:"died"`
	Final int    `json:"final"`
}

// PhaseRow aggregates one candidate class across all nodes.
type PhaseRow struct {
	Class        string `json:"class"`
	Born         int    `json:"born"`
	Deaths       int    `json:"deaths"`
	Survived     int    `json:"survived"`
	SegOps       int64  `json:"seg_ops"`
	Allocs       int64  `json:"allocs"`
	WastedSegOps int64  `json:"wasted_seg_ops"`
	WastedAllocs int64  `json:"wasted_allocs"`
}

// PerMille returns round(1000·num/den), 0 when den is 0 — the integer
// ratio format used throughout the artifact and the bench waste gate.
func PerMille(num, den int64) int64 {
	if den == 0 {
		return 0
	}
	return (1000*num + den/2) / den
}

// FromProfile converts a collected lifecycle profile into the artifact
// form. The input is not modified.
func FromProfile(p *core.LifecycleProfile, source, workload string) *Profile {
	if p == nil {
		return nil
	}
	out := &Profile{
		Schema:   Schema,
		Source:   source,
		Workload: workload,
		Runs:     p.Runs,
		Totals: Totals{
			Born:         p.TotalBorn(),
			Deaths:       p.TotalDeaths(),
			Survived:     p.TotalSurvived(),
			SegOps:       p.TotalSegOps,
			Allocs:       p.TotalAllocs,
			JoinPairings: p.JoinPairings,
		},
		Waste: Waste{
			SegOps:         p.WastedSegOps,
			Allocs:         p.WastedAllocs,
			SegOpsPerMille: PerMille(p.WastedSegOps, p.TotalSegOps),
			AllocsPerMille: PerMille(p.WastedAllocs, p.TotalAllocs),
		},
	}
	out.Waste.DeathsPerMille = PerMille(int64(out.Totals.Deaths), int64(out.Totals.Born))

	phases := map[string]*PhaseRow{}
	phase := func(class string) *PhaseRow {
		ph := phases[class]
		if ph == nil {
			ph = &PhaseRow{Class: class}
			phases[class] = ph
		}
		return ph
	}
	for k, st := range p.Sites {
		row := SiteRow{
			Class:    k.Class,
			Node:     k.Node,
			Born:     st.Born,
			Survived: st.Survived,
			SegOps:   st.SegOps,
			Allocs:   st.Allocs,
		}
		if len(st.Deaths) > 0 {
			row.Deaths = make(map[string]core.WasteCell, len(st.Deaths))
			for cause, c := range st.Deaths {
				row.Deaths[cause] = c
			}
		}
		out.Matrix = append(out.Matrix, row)
		ph := phase(k.Class)
		ph.Born += st.Born
		ph.Survived += st.Survived
		ph.SegOps += st.SegOps
		ph.Allocs += st.Allocs
		for _, c := range st.Deaths {
			ph.Deaths += c.Deaths
			ph.WastedSegOps += c.SegOps
			ph.WastedAllocs += c.Allocs
		}
	}
	sort.Slice(out.Matrix, func(i, j int) bool {
		if out.Matrix[i].Class != out.Matrix[j].Class {
			return out.Matrix[i].Class < out.Matrix[j].Class
		}
		return out.Matrix[i].Node < out.Matrix[j].Node
	})

	for i, c := range p.Depth {
		out.Depth = append(out.Depth, DepthRow{
			Bucket: core.DepthBucketLabel(i), Deaths: c.Deaths, SegOps: c.SegOps, Allocs: c.Allocs,
		})
	}

	for node, w := range p.Wave {
		out.Wavefront = append(out.Wavefront, WaveRow{
			Node: node, Kind: w.Kind, Born: w.Born, Died: w.Died, Final: w.Final,
		})
	}
	sort.Slice(out.Wavefront, func(i, j int) bool { return out.Wavefront[i].Node < out.Wavefront[j].Node })

	for _, ph := range phases {
		out.Phases = append(out.Phases, *ph)
	}
	sort.Slice(out.Phases, func(i, j int) bool { return out.Phases[i].Class < out.Phases[j].Class })

	return out
}

// FromResult converts a single profiled Optimize result, echoing its
// run statistics. Returns nil when the run was not profiled.
func FromResult(res *core.Result, source, workload string) *Profile {
	if res == nil || res.Profile == nil {
		return nil
	}
	p := FromProfile(res.Profile, source, workload)
	stats := res.Stats
	p.Stats = &stats
	p.SuitePoints = len(res.Suite)
	return p
}

// Validate checks the schema tag and the internal reconciliation the
// acceptance criteria demand: matrix deaths sum to Totals.Deaths (and,
// when Stats are present, to Stats.Dropped), survivors to
// Totals.Survived (and SuitePoints).
func (p *Profile) Validate() error {
	if p.Schema != Schema {
		return fmt.Errorf("solveprof: schema %q, want %q", p.Schema, Schema)
	}
	deaths, survived := 0, 0
	for _, row := range p.Matrix {
		deaths += row.TotalDeaths()
		survived += row.Survived
	}
	if deaths != p.Totals.Deaths {
		return fmt.Errorf("solveprof: matrix deaths %d != totals.deaths %d", deaths, p.Totals.Deaths)
	}
	if survived != p.Totals.Survived {
		return fmt.Errorf("solveprof: matrix survivors %d != totals.survived %d", survived, p.Totals.Survived)
	}
	if p.Stats != nil {
		if deaths != p.Stats.Dropped {
			return fmt.Errorf("solveprof: matrix deaths %d != stats.Dropped %d", deaths, p.Stats.Dropped)
		}
		if p.SuitePoints != 0 && survived != p.SuitePoints {
			return fmt.Errorf("solveprof: matrix survivors %d != suite_points %d", survived, p.SuitePoints)
		}
	}
	depthDeaths := 0
	for _, d := range p.Depth {
		depthDeaths += d.Deaths
	}
	if depthDeaths != p.Totals.Deaths {
		return fmt.Errorf("solveprof: depth histogram deaths %d != totals.deaths %d", depthDeaths, p.Totals.Deaths)
	}
	return nil
}

// Encode marshals the artifact to deterministic indented JSON.
func (p *Profile) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile validates and writes the artifact.
func (p *Profile) WriteFile(path string) error {
	if err := p.Validate(); err != nil {
		return err
	}
	b, err := p.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Load reads and validates a msrnet-solveprof/v1 file.
func Load(path string) (*Profile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// Decode parses and validates artifact bytes.
func Decode(b []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("solveprof: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}
