package solveprof

import (
	"fmt"
	"io"
	"sort"
)

// SiteDelta is one birth site's change between two profiles.
type SiteDelta struct {
	Class      string
	Node       int
	Deaths     int   // new minus old
	WastedSegs int64 // new minus old
}

// Diff summarizes how waste moved between two profiles of comparable
// workloads (typically the same workload before and after a solver
// change).
type Diff struct {
	Old, New *Profile
	// Per-mille deltas of the headline ratios (new minus old).
	SegOpsPerMille int64
	AllocsPerMille int64
	DeathsPerMille int64
	// Sites, sorted by |wasted-seg-ops delta| descending, largest
	// movers first. Sites present in only one profile count from zero.
	Sites []SiteDelta
}

// Compute builds the differential report between two profiles.
func Compute(oldP, newP *Profile) *Diff {
	d := &Diff{
		Old:            oldP,
		New:            newP,
		SegOpsPerMille: newP.Waste.SegOpsPerMille - oldP.Waste.SegOpsPerMille,
		AllocsPerMille: newP.Waste.AllocsPerMille - oldP.Waste.AllocsPerMille,
		DeathsPerMille: newP.Waste.DeathsPerMille - oldP.Waste.DeathsPerMille,
	}
	type key struct {
		class string
		node  int
	}
	acc := map[key]*SiteDelta{}
	at := func(k key) *SiteDelta {
		sd := acc[k]
		if sd == nil {
			sd = &SiteDelta{Class: k.class, Node: k.node}
			acc[k] = sd
		}
		return sd
	}
	for _, r := range oldP.Matrix {
		sd := at(key{r.Class, r.Node})
		sd.Deaths -= r.TotalDeaths()
		sd.WastedSegs -= r.WastedSegOps()
	}
	for _, r := range newP.Matrix {
		sd := at(key{r.Class, r.Node})
		sd.Deaths += r.TotalDeaths()
		sd.WastedSegs += r.WastedSegOps()
	}
	for _, sd := range acc {
		if sd.Deaths != 0 || sd.WastedSegs != 0 {
			d.Sites = append(d.Sites, *sd)
		}
	}
	sort.Slice(d.Sites, func(i, j int) bool {
		ai, aj := abs64(d.Sites[i].WastedSegs), abs64(d.Sites[j].WastedSegs)
		if ai != aj {
			return ai > aj
		}
		if d.Sites[i].Class != d.Sites[j].Class {
			return d.Sites[i].Class < d.Sites[j].Class
		}
		return d.Sites[i].Node < d.Sites[j].Node
	})
	return d
}

// Render writes the differential report.
func (d *Diff) Render(w io.Writer, topN int) {
	if topN <= 0 {
		topN = 10
	}
	fmt.Fprintf(w, "solveprof diff: %s -> %s\n", label(d.Old), label(d.New))
	fmt.Fprintf(w, "  waste ratio (seg ops):  %s -> %s (%s)\n",
		permilleStr(d.Old.Waste.SegOpsPerMille), permilleStr(d.New.Waste.SegOpsPerMille),
		deltaStr(d.SegOpsPerMille))
	fmt.Fprintf(w, "  waste ratio (allocs):   %s -> %s (%s)\n",
		permilleStr(d.Old.Waste.AllocsPerMille), permilleStr(d.New.Waste.AllocsPerMille),
		deltaStr(d.AllocsPerMille))
	fmt.Fprintf(w, "  death rate (born):      %s -> %s (%s)\n",
		permilleStr(d.Old.Waste.DeathsPerMille), permilleStr(d.New.Waste.DeathsPerMille),
		deltaStr(d.DeathsPerMille))
	fmt.Fprintf(w, "  deaths: %d -> %d; wasted seg ops: %d -> %d\n",
		d.Old.Totals.Deaths, d.New.Totals.Deaths, d.Old.Waste.SegOps, d.New.Waste.SegOps)
	if len(d.Sites) == 0 {
		fmt.Fprintf(w, "  no per-site movement\n")
		return
	}
	fmt.Fprintf(w, "  top movers (wasted seg ops, new-old):\n")
	n := len(d.Sites)
	if n > topN {
		n = topN
	}
	for _, sd := range d.Sites[:n] {
		fmt.Fprintf(w, "    %-12s node %-5d %+8d deaths %+12d wasted segs\n",
			sd.Class, sd.Node, sd.Deaths, sd.WastedSegs)
	}
}

func label(p *Profile) string {
	if p.Workload != "" {
		return p.Workload
	}
	return p.Source
}

// deltaStr renders a signed per-mille delta in percentage points.
func deltaStr(pm int64) string {
	sign := "+"
	if pm < 0 {
		sign, pm = "-", -pm
	}
	return fmt.Sprintf("%s%d.%dpp", sign, pm/10, pm%10)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
