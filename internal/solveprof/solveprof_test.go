package solveprof_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/netgen"
	"msrnet/internal/solveprof"
)

func profiled(t *testing.T, pins int, seed int64) *core.Result {
	t.Helper()
	tr, err := netgen.Generate(seed, netgen.Defaults(pins))
	if err != nil {
		t.Fatal(err)
	}
	rt := tr.RootAt(tr.Terminals()[0])
	res, err := core.Optimize(rt, buslib.Default(), core.Options{Repeaters: true, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestArtifactByteIdentical is the acceptance-criteria determinism
// check: the same input must yield byte-identical msrnet-solveprof/v1
// artifacts across runs (serial or parallel).
func TestArtifactByteIdentical(t *testing.T) {
	tr, err := netgen.Generate(3, netgen.Defaults(12))
	if err != nil {
		t.Fatal(err)
	}
	rt := tr.RootAt(tr.Terminals()[0])
	var encs [][]byte
	for _, par := range []bool{false, true, false} {
		res, err := core.Optimize(rt, buslib.Default(),
			core.Options{Repeaters: true, Profile: true, Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		p := solveprof.FromResult(res, "test", "msri/12pin")
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		b, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		encs = append(encs, b)
	}
	for i := 1; i < len(encs); i++ {
		if !bytes.Equal(encs[0], encs[i]) {
			t.Errorf("artifact %d differs from artifact 0:\n%s\nvs\n%s", i, encs[i], encs[0])
		}
	}
}

// TestRoundTrip: WriteFile then Load preserves the artifact and its
// validation invariants.
func TestRoundTrip(t *testing.T) {
	res := profiled(t, 12, 3)
	p := solveprof.FromResult(res, "test", "msri/12pin")
	path := filepath.Join(t.TempDir(), "prof.json")
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := solveprof.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != solveprof.Schema || got.Totals != p.Totals || got.Waste != p.Waste {
		t.Errorf("round trip changed the profile: %+v vs %+v", got, p)
	}
	b1, _ := p.Encode()
	b2, _ := got.Encode()
	if !bytes.Equal(b1, b2) {
		t.Error("round trip is not byte-stable")
	}
}

// TestReconcilesWithStats: the artifact echoes and reconciles with the
// solver stats — matrix deaths == Stats.Dropped, survivors == suite
// points (the ISSUE acceptance numbers).
func TestReconcilesWithStats(t *testing.T) {
	res := profiled(t, 12, 3)
	p := solveprof.FromResult(res, "test", "msri/12pin")
	deaths := 0
	for _, row := range p.Matrix {
		deaths += row.TotalDeaths()
	}
	if deaths != res.Stats.Dropped {
		t.Errorf("matrix deaths %d != Stats.Dropped %d", deaths, res.Stats.Dropped)
	}
	if p.Totals.Survived != len(res.Suite) {
		t.Errorf("survivors %d != suite points %d", p.Totals.Survived, len(res.Suite))
	}
	if p.SuitePoints != len(res.Suite) || p.Stats == nil || p.Stats.Dropped != res.Stats.Dropped {
		t.Errorf("stats echo wrong: %+v", p)
	}
}

// TestValidateCatchesCorruption: a tampered artifact fails to load.
func TestValidateCatchesCorruption(t *testing.T) {
	res := profiled(t, 10, 1)
	p := solveprof.FromResult(res, "test", "msri/10pin")
	p.Totals.Deaths++
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted inconsistent totals")
	}
	p.Totals.Deaths--
	p.Schema = "bogus"
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted bad schema")
	}
}

// TestRenderAndDiff exercises the text surfaces for coverage and
// structural sanity (headline waste ratio, top sites, upper bound).
func TestRenderAndDiff(t *testing.T) {
	a := solveprof.FromResult(profiled(t, 10, 1), "test", "msri/10pin")
	b := solveprof.FromResult(profiled(t, 12, 3), "test", "msri/12pin")
	var buf bytes.Buffer
	solveprof.Render(&buf, b, 5)
	out := buf.String()
	for _, want := range []string{"candidates:", "per-class churn", "top wasted sites", "predictive-pruning upper bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	d := solveprof.Compute(a, b)
	buf.Reset()
	d.Render(&buf, 5)
	if !strings.Contains(buf.String(), "waste ratio (seg ops)") {
		t.Errorf("diff render missing headline:\n%s", buf.String())
	}
	// Self-diff has no movement.
	self := solveprof.Compute(b, b)
	if len(self.Sites) != 0 || self.SegOpsPerMille != 0 {
		t.Errorf("self diff shows movement: %+v", self)
	}
}

// TestPerMille pins the rounding convention.
func TestPerMille(t *testing.T) {
	for _, tc := range []struct{ num, den, want int64 }{
		{0, 0, 0}, {1, 2, 500}, {1, 3, 333}, {2, 3, 667}, {999, 1000, 999}, {5, 5, 1000},
	} {
		if got := solveprof.PerMille(tc.num, tc.den); got != tc.want {
			t.Errorf("PerMille(%d,%d) = %d, want %d", tc.num, tc.den, got, tc.want)
		}
	}
}

// TestMergedProfileArtifact: a merged multi-run profile converts and
// validates (no Stats echo).
func TestMergedProfileArtifact(t *testing.T) {
	m := core.NewLifecycleProfile()
	m.Merge(profiled(t, 10, 1).Profile)
	m.Merge(profiled(t, 12, 3).Profile)
	p := solveprof.FromProfile(m, "experiments", "study")
	if p.Runs != 2 {
		t.Errorf("Runs = %d, want 2", p.Runs)
	}
	if p.Stats != nil {
		t.Error("merged profile must not echo a single run's stats")
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}
