package experiments

import (
	"sync"

	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/topo"
)

// Package-level profiling sink, modeled on dominance.SetObserver: the
// studies in this package call core.Optimize from many places (and,
// under Table2Parallel, from many goroutines), so per-call plumbing of
// a profile collector would touch every study signature. Instead the
// CLI opts in once (EnableProfiling), every solve runs with
// Options.Profile, and the per-run lifecycle profiles merge into one
// session aggregate the CLI collects at exit. Merging is commutative,
// so the aggregate is deterministic for a fixed set of solves even
// when workers race.
var (
	profMu   sync.Mutex
	profSink *core.LifecycleProfile
)

// EnableProfiling turns on candidate-lifecycle profiling for every
// subsequent solve in this package, resetting any prior aggregate.
func EnableProfiling() {
	profMu.Lock()
	profSink = core.NewLifecycleProfile()
	profMu.Unlock()
}

// CollectProfile returns the aggregated profile of all solves since
// EnableProfiling, or nil when profiling is off.
func CollectProfile() *core.LifecycleProfile {
	profMu.Lock()
	defer profMu.Unlock()
	return profSink
}

// optimize is the package's single gateway to core.Optimize: it applies
// the profiling opt-in and folds the run's profile into the session
// aggregate.
func optimize(rt *topo.Rooted, tech buslib.Tech, opt core.Options) (*core.Result, error) {
	profMu.Lock()
	on := profSink != nil
	profMu.Unlock()
	if on {
		opt.Profile = true
	}
	res, err := core.Optimize(rt, tech, opt)
	if err == nil && res.Profile != nil {
		profMu.Lock()
		if profSink != nil {
			profSink.Merge(res.Profile)
		}
		profMu.Unlock()
	}
	return res, err
}
