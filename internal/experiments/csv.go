package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteTable2CSV emits Table II rows as CSV for downstream plotting.
func WriteTable2CSV(w io.Writer, rows []Table2Row) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{
		"pins", "avg_insertion_points",
		"ds_diam_norm", "ds_diam_std", "ds_cost_norm",
		"ri_cost_at_ds_diam_norm", "ri_diam_norm", "ri_diam_std", "ri_cost_norm",
		"avg_ds_seconds", "avg_ri_seconds",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			itoa(r.Pins), ftoa(r.AvgIns),
			ftoa(r.DSDiam), ftoa(r.DSDiamStd), ftoa(r.DSCost),
			ftoa(r.RIMatch), ftoa(r.RIDiam), ftoa(r.RIDiamStd), ftoa(r.RICost),
			ftoa(r.AvgDSSec), ftoa(r.AvgRISec),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable3CSV emits Table III rows as CSV.
func WriteTable3CSV(w io.Writer, rows []Table3Row) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{
		"net", "pins", "ds_diam_ns", "ds_cost", "ri_diam_ns", "ri_cost", "repeaters",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Name, itoa(r.Pins), ftoa(r.DSDiam), ftoa(r.DSCost),
			ftoa(r.RepDiam), ftoa(r.RepCost), itoa(r.NumReps),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSuiteCSV emits a tradeoff suite as CSV: cost, ARD, repeaters.
func WriteSuiteCSV(w io.Writer, nr NetResult) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"mode", "cost", "ard_ns", "repeaters"}); err != nil {
		return err
	}
	for _, s := range nr.SizingSuite {
		if err := cw.Write([]string{"sizing", ftoa(s.Cost), ftoa(s.ARD), itoa(s.Repeaters())}); err != nil {
			return err
		}
	}
	for _, s := range nr.RepSuite {
		if err := cw.Write([]string{"repeater", ftoa(s.Cost), ftoa(s.ARD), itoa(s.Repeaters())}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSpacingCSV emits the footnote-15 spacing study as CSV.
func WriteSpacingCSV(w io.Writer, rows []SpacingRow) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"spacing_um", "avg_points", "ri_diam_norm", "avg_seconds"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			ftoa(r.SpacingUm), ftoa(r.AvgIns), ftoa(r.RIDiam), ftoa(r.AvgSec),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string { return fmt.Sprintf("%g", v) }
