package experiments

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"

	"msrnet/internal/buslib"
)

func TestRunNetShape(t *testing.T) {
	tech := buslib.Default()
	nr, err := RunNet(1, 10, tech)
	if err != nil {
		t.Fatal(err)
	}
	if nr.Insertion == 0 || nr.WireUm <= 0 || nr.BaseARD <= 0 {
		t.Fatalf("degenerate result: %+v", nr)
	}
	dsD, dsC, err := nr.DSMin()
	if err != nil {
		t.Fatal(err)
	}
	riD, riC, err := nr.RepMin()
	if err != nil {
		t.Fatal(err)
	}
	// Both optimizations must improve on the baseline.
	if dsD >= nr.BaseARD {
		t.Errorf("sizing did not improve: %g vs %g", dsD, nr.BaseARD)
	}
	if riD >= nr.BaseARD {
		t.Errorf("repeaters did not improve: %g vs %g", riD, nr.BaseARD)
	}
	// Repeater insertion beats sizing on diameter — the paper's headline.
	if riD >= dsD {
		t.Errorf("repeater diameter %g not better than sizing %g", riD, dsD)
	}
	if dsC <= float64(nr.Pins) {
		t.Errorf("sizing cost %g should exceed baseline %d (larger drivers)", dsC, nr.Pins)
	}
	if riC <= nr.BaseCost {
		t.Errorf("repeater total cost %g should exceed baseline %g", riC, nr.BaseCost)
	}
	// Matching solution is at most the min-diameter solution's cost.
	match, ok := nr.RepMatching()
	if !ok {
		t.Fatal("no matching repeater solution")
	}
	if match > riC {
		t.Errorf("matching cost %g exceeds min-diameter cost %g", match, riC)
	}
}

func TestTable2RowNormalization(t *testing.T) {
	tech := buslib.Default()
	row, results, err := Table2(10, 3, 1, tech)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	// Normalized diameters must be in (0, 1); repeater beats sizing.
	if row.DSDiam <= 0 || row.DSDiam >= 1 {
		t.Errorf("DSDiam = %g", row.DSDiam)
	}
	if row.RIDiam <= 0 || row.RIDiam >= row.DSDiam {
		t.Errorf("RIDiam = %g vs DSDiam = %g", row.RIDiam, row.DSDiam)
	}
	// Costs normalized to base: all ≥ 1; matching solution cheaper than
	// the sizing solution for equal-or-better diameter (the paper's
	// second headline).
	if row.DSCost < 1 || row.RICost < 1 || row.RIMatch < 1 {
		t.Errorf("cost columns below 1: %+v", row)
	}
	if row.RIMatch >= row.DSCost {
		t.Errorf("matching repeater cost %g not below sizing cost %g", row.RIMatch, row.DSCost)
	}
	if row.AvgIns <= 0 {
		t.Error("no insertion points counted")
	}
}

func TestFormatters(t *testing.T) {
	tech := buslib.Default()
	s := FormatTable1(tech)
	for _, want := range []string{"Table I", "wire resistance", "repeater", "driver"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	rows := []Table2Row{{Pins: 10, AvgIns: 20, DSDiam: 0.74, DSCost: 2.1,
		RIMatch: 1.4, RIDiam: 0.56, RICost: 2.6}}
	s2 := FormatTable2(rows)
	if !strings.Contains(s2, "Table II") || !strings.Contains(s2, "0.74") {
		t.Errorf("Table II format: %s", s2)
	}
	s4 := FormatTable4(rows)
	if !strings.Contains(s4, "Table IV") {
		t.Errorf("Table IV format: %s", s4)
	}
}

func TestFig11(t *testing.T) {
	tech := buslib.Default()
	f, err := Fig11(8, tech, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Solutions) != 3 {
		t.Fatalf("solutions = %d, want 3", len(f.Solutions))
	}
	un := f.Solutions[0]
	if un.Repeaters != 0 || un.Cost != 0 {
		t.Errorf("first solution should be unoptimized: %+v", un)
	}
	// Monotone improvement with added buffering resources (as in the
	// paper's panels).
	prev := un.ARD
	for _, s := range f.Solutions[1:] {
		if s.ARD >= prev {
			t.Errorf("solution %q did not improve: %g vs %g", s.Label, s.ARD, prev)
		}
		prev = s.ARD
		if s.CritSrc == "-" || s.CritSink == "-" {
			t.Errorf("solution %q missing critical pair", s.Label)
		}
	}
	out := FormatFig11(f)
	if !strings.Contains(out, "8-pin net") || !strings.Contains(out, "critical") {
		t.Errorf("Fig 11 format: %s", out)
	}
}

func TestAsymmetric(t *testing.T) {
	tech := buslib.Default()
	rows, err := Asymmetric(8, 2, 50, tech, []float64{0.25, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RIDiam <= 0 || r.RIDiam >= 1 {
			t.Errorf("frac %g: normalized diameter %g out of range", r.SourceFrac, r.RIDiam)
		}
	}
	if s := FormatAsym(rows); !strings.Contains(s, "source frac") {
		t.Errorf("asym format: %s", s)
	}
}

func TestTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tech := buslib.Default()
	rows, err := Table3(tech)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RepDiam >= r.DSDiam {
			t.Errorf("%s: repeater diameter %g not better than sizing %g",
				r.Name, r.RepDiam, r.DSDiam)
		}
		if r.NumReps == 0 {
			t.Errorf("%s: fastest repeater solution uses no repeaters", r.Name)
		}
		if math.IsNaN(r.RepCost) || r.RepCost <= float64(r.Pins) {
			t.Errorf("%s: suspicious repeater cost %g", r.Name, r.RepCost)
		}
	}
	if s := FormatTable3(rows); !strings.Contains(s, "Table III") {
		t.Error("Table III format")
	}
}

func TestSpacingStudy(t *testing.T) {
	tech := buslib.Default()
	rows, err := SpacingStudy(8, 2, 1, tech, []float64{800, 450})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Denser spacing means more insertion points and a diameter that is
	// no worse (the footnote-15 shape).
	if rows[1].AvgIns <= rows[0].AvgIns {
		t.Errorf("denser spacing produced fewer points: %+v", rows)
	}
	if rows[1].RIDiam > rows[0].RIDiam+1e-9 {
		t.Errorf("denser spacing worsened diameter: %+v", rows)
	}
	if s := FormatSpacing(rows); !strings.Contains(s, "footnote 15") {
		t.Error("spacing format")
	}
}

func TestTable2ParallelMatchesSerial(t *testing.T) {
	tech := buslib.Default()
	serial, _, err := Table2(8, 3, 5, tech)
	if err != nil {
		t.Fatal(err)
	}
	par, results, err := Table2Parallel(8, 3, 5, tech, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	// All non-timing columns must be bit-identical (same seeds, same
	// accumulation order).
	if par.DSDiam != serial.DSDiam || par.RIDiam != serial.RIDiam ||
		par.DSCost != serial.DSCost || par.RIMatch != serial.RIMatch ||
		par.RICost != serial.RICost || par.AvgIns != serial.AvgIns {
		t.Errorf("parallel row differs from serial:\n  par %+v\n  ser %+v", par, serial)
	}
	// Workers ≤ 1 falls back to the serial path.
	one, _, err := Table2Parallel(8, 2, 5, tech, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Pins != 8 {
		t.Error("fallback broken")
	}
}

func TestCSVWriters(t *testing.T) {
	tech := buslib.Default()
	row, results, err := Table2(8, 2, 1, tech)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable2CSV(&buf, []Table2Row{row}); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || len(recs[0]) != 11 {
		t.Fatalf("table2 csv shape: %dx%d", len(recs), len(recs[0]))
	}
	if recs[1][0] != "8" {
		t.Errorf("pins cell = %q", recs[1][0])
	}

	buf.Reset()
	if err := WriteSuiteCSV(&buf, results[0]); err != nil {
		t.Fatal(err)
	}
	recs, err = csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 3 {
		t.Fatalf("suite csv too short: %d rows", len(recs))
	}
	modes := map[string]bool{}
	for _, rec := range recs[1:] {
		modes[rec[0]] = true
	}
	if !modes["sizing"] || !modes["repeater"] {
		t.Errorf("suite csv missing modes: %v", modes)
	}

	buf.Reset()
	if err := WriteSpacingCSV(&buf, []SpacingRow{{SpacingUm: 800, AvgIns: 20, RIDiam: 0.6, AvgSec: 0.1}}); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); !strings.Contains(got, "spacing_um") || !strings.Contains(got, "800") {
		t.Errorf("spacing csv: %q", got)
	}

	buf.Reset()
	if err := WriteTable3CSV(&buf, []Table3Row{{Name: "n1", Pins: 10, DSDiam: 3, DSCost: 17,
		RepDiam: 2, RepCost: 28, NumReps: 9}}); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); !strings.Contains(got, "n1") {
		t.Errorf("table3 csv: %q", got)
	}
}

func TestCombinedStudy(t *testing.T) {
	tech := buslib.Default()
	row, err := Combined(8, 2, 1, tech)
	if err != nil {
		t.Fatal(err)
	}
	// The joint mode can never lose to either technique alone.
	if row.CombinedDiam > row.DSDiam+1e-9 || row.CombinedDiam > row.RIDiam+1e-9 {
		t.Errorf("combined %g worse than DS %g or RI %g", row.CombinedDiam, row.DSDiam, row.RIDiam)
	}
	if s := FormatCombined([]CombinedRow{row}); !strings.Contains(s, "combined") {
		t.Error("format")
	}
}
