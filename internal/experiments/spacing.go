package experiments

import (
	"fmt"
	"strings"
	"sync"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/netgen"
	"msrnet/internal/obs"
	"msrnet/internal/rctree"
)

// SpacingRow is one row of the insertion-point-spacing study, which
// reproduces footnote 15 of the paper: tightening the spacing well below
// 800 µm increases complexity (and run time) while improving the
// achievable diameter only slightly.
type SpacingRow struct {
	SpacingUm float64
	AvgIns    float64 // average number of insertion points
	RIDiam    float64 // repeater min diameter / base diameter
	AvgSec    float64 // average optimizer seconds
}

// SpacingStudy measures min-diameter repeater insertion across insertion
// spacings on the same nets.
func SpacingStudy(pins, nets int, seed0 int64, tech buslib.Tech, spacings []float64) ([]SpacingRow, error) {
	var rows []SpacingRow
	for _, sp := range spacings {
		row := SpacingRow{SpacingUm: sp}
		for i := 0; i < nets; i++ {
			p := netgen.Defaults(pins)
			p.MaxInsertionSpacingUm = sp
			tr, err := netgen.Generate(seed0+int64(i), p)
			if err != nil {
				return nil, err
			}
			rt := tr.RootAt(tr.Terminals()[0])
			base := rctree.NewNet(rt, tech, rctree.Assignment{})
			baseARD := ard.Compute(base, ard.Options{}).ARD
			reg := obs.New()
			sp := reg.StartSpan("net/repeaters")
			res, err := optimize(rt, tech, core.Options{Repeaters: true, Obs: reg})
			if err != nil {
				return nil, err
			}
			sp.End()
			best, err := res.Suite.MinARD()
			if err != nil {
				return nil, err
			}
			row.AvgSec += reg.SpanSeconds("net/repeaters")
			row.AvgIns += float64(len(tr.Insertions()))
			row.RIDiam += best.ARD / baseARD
		}
		k := float64(nets)
		row.AvgSec /= k
		row.AvgIns /= k
		row.RIDiam /= k
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSpacing renders the spacing study.
func FormatSpacing(rows []SpacingRow) string {
	var b strings.Builder
	b.WriteString("Insertion-point spacing study (paper footnote 15)\n")
	b.WriteString("spacing(µm) | avg points | norm. min diameter | avg seconds\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%11.0f | %10.1f | %18.4f | %11.3f\n",
			r.SpacingUm, r.AvgIns, r.RIDiam, r.AvgSec)
	}
	return b.String()
}

// Table2Parallel is Table2 with the per-net work fanned out across
// workers. Results are deterministic and identical to the serial path:
// each net's computation is independent and the averaging is
// order-insensitive only up to floating-point association, so partial
// sums are accumulated in seed order after all workers finish.
func Table2Parallel(pins, nets int, seed0 int64, tech buslib.Tech, workers int) (Table2Row, []NetResult, error) {
	if workers <= 1 {
		return Table2(pins, nets, seed0, tech)
	}
	results := make([]NetResult, nets)
	errs := make([]error, nets)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < nets; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = RunNet(seed0+int64(i), pins, tech)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Table2Row{}, nil, err
		}
	}
	// Accumulate in deterministic (seed) order.
	row, err := accumulateTable2(pins, results)
	return row, results, err
}

// CombinedRow reports the joint sizing+repeater mode against each
// technique alone — the natural "combinations of these techniques"
// experiment the paper's introduction motivates.
type CombinedRow struct {
	Pins         int
	DSDiam       float64 // sizing-only min diameter / base
	RIDiam       float64 // repeaters-only min diameter / base
	CombinedDiam float64 // joint mode min diameter / base
}

// Combined runs the joint optimization study.
func Combined(pins, nets int, seed0 int64, tech buslib.Tech) (CombinedRow, error) {
	row := CombinedRow{Pins: pins}
	for i := 0; i < nets; i++ {
		tr, err := netgen.Generate(seed0+int64(i), netgen.Defaults(pins))
		if err != nil {
			return row, err
		}
		rt := tr.RootAt(tr.Terminals()[0])
		base := rctree.NewNet(rt, tech, rctree.Assignment{})
		baseARD := ard.Compute(base, ard.Options{}).ARD
		ds, err := optimize(rt, tech, core.Options{SizeDrivers: true})
		if err != nil {
			return row, err
		}
		ri, err := optimize(rt, tech, core.Options{Repeaters: true})
		if err != nil {
			return row, err
		}
		both, err := optimize(rt, tech, core.Options{Repeaters: true, SizeDrivers: true})
		if err != nil {
			return row, err
		}
		dsBest, err := ds.Suite.MinARD()
		if err != nil {
			return row, err
		}
		riBest, err := ri.Suite.MinARD()
		if err != nil {
			return row, err
		}
		bothBest, err := both.Suite.MinARD()
		if err != nil {
			return row, err
		}
		row.DSDiam += dsBest.ARD / baseARD
		row.RIDiam += riBest.ARD / baseARD
		row.CombinedDiam += bothBest.ARD / baseARD
	}
	k := float64(nets)
	row.DSDiam /= k
	row.RIDiam /= k
	row.CombinedDiam /= k
	return row, nil
}

// FormatCombined renders the joint-mode study.
func FormatCombined(rows []CombinedRow) string {
	var b strings.Builder
	b.WriteString("Combined sizing + repeater study (joint optimization)\n")
	b.WriteString("pins | sizing only | repeaters only | combined\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d | %11.3f | %14.3f | %8.3f\n", r.Pins, r.DSDiam, r.RIDiam, r.CombinedDiam)
	}
	return b.String()
}
