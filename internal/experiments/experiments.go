// Package experiments regenerates the evaluation of Lillis & Cheng
// (TCAD'99, §VI): Table I (technology parameters), Table II (driver
// sizing vs repeater insertion on random 10/20-pin nets), Table III
// (fastest solutions on sample topologies), Table IV (run times) and
// Fig. 11 (solutions for an 8-pin net), plus the §VII asymmetric-roles
// probe and the §III ARD-scaling claim. The same entry points back the
// repository's top-level benchmarks and the cmd/experiments tool.
//
// Absolute delays depend on the substituted Table I values (see DESIGN.md
// §4); the reproduction targets the normalized shape of the results,
// which EXPERIMENTS.md records side by side with the paper's numbers.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/netgen"
	"msrnet/internal/obs"
	"msrnet/internal/rctree"
	"msrnet/internal/topo"
)

// NetResult bundles everything measured on one random net.
type NetResult struct {
	Seed      int64
	Pins      int
	Insertion int     // number of candidate insertion points
	WireUm    float64 // total wirelength
	BaseARD   float64 // unoptimized (min-cost) RC-diameter
	BaseCost  float64 // cost of the min-cost solution: Pins 1X drivers

	// Driver sizing results.
	SizingSuite core.Suite

	// Repeater insertion results.
	RepSuite core.Suite

	// Obs is the per-net instrumentation registry: the phase spans
	// "net/base_ard", "net/sizing" and "net/repeaters", plus the core DP
	// and ARD metrics of the runs underneath them.
	Obs *obs.Registry
}

// SizingSeconds returns the wall time of the driver-sizing phase
// (Table IV's "driver sizing" column), read from the "net/sizing" span.
func (n NetResult) SizingSeconds() float64 { return n.Obs.SpanSeconds("net/sizing") }

// RepSeconds returns the wall time of the repeater-insertion phase
// (Table IV's "repeater insertion" column), from the "net/repeaters"
// span.
func (n NetResult) RepSeconds() float64 { return n.Obs.SpanSeconds("net/repeaters") }

// DSMin returns the minimum diameter achievable by sizing and its cost
// (driver costs only; the min-cost baseline spends Pins units on 1X
// drivers). The error is core.ErrEmptySuite on a zero-value NetResult.
func (n NetResult) DSMin() (diam, cost float64, err error) {
	best, err := n.SizingSuite.MinARD()
	if err != nil {
		return 0, 0, err
	}
	return best.ARD, best.Cost, nil
}

// RepMin returns the minimum diameter achievable by repeater insertion
// and its total cost including the Pins fixed 1X drivers. The error is
// core.ErrEmptySuite on a zero-value NetResult.
func (n NetResult) RepMin() (diam, cost float64, err error) {
	best, err := n.RepSuite.MinARD()
	if err != nil {
		return 0, 0, err
	}
	return best.ARD, best.Cost + n.BaseCost, nil
}

// RepMatching returns the cheapest repeater solution whose diameter
// equals or betters the best driver-sizing diameter (column 5 of
// Table II), as total cost including fixed drivers.
func (n NetResult) RepMatching() (cost float64, ok bool) {
	dsDiam, _, err := n.DSMin()
	if err != nil {
		return 0, false
	}
	sol, ok := n.RepSuite.MinCost(dsDiam)
	if !ok {
		return 0, false
	}
	return sol.Cost + n.BaseCost, true
}

// RunNet generates the net for (seed, pins) with the paper's Table II
// setup and runs both optimization modes.
func RunNet(seed int64, pins int, tech buslib.Tech) (NetResult, error) {
	tr, err := netgen.Generate(seed, netgen.Defaults(pins))
	if err != nil {
		return NetResult{}, err
	}
	return RunTopology(tr, tech, seed, pins)
}

// RunTopology runs both optimization modes on an existing topology.
func RunTopology(tr *topo.Tree, tech buslib.Tech, seed int64, pins int) (NetResult, error) {
	rt := tr.RootAt(tr.Terminals()[0])
	reg := obs.New()
	res := NetResult{
		Seed:      seed,
		Pins:      pins,
		Insertion: len(tr.Insertions()),
		WireUm:    tr.TotalWireLength(),
		BaseCost:  float64(pins),
		Obs:       reg,
	}
	baseSpan := reg.StartSpan("net/base_ard")
	base := rctree.NewNet(rt, tech, rctree.Assignment{})
	res.BaseARD = ard.Compute(base, ard.Options{Obs: reg}).ARD
	baseSpan.End()

	szSpan := reg.StartSpan("net/sizing")
	sz, err := optimize(rt, tech, core.Options{SizeDrivers: true, Obs: reg})
	if err != nil {
		return res, fmt.Errorf("sizing: %w", err)
	}
	szSpan.End()
	res.SizingSuite = sz.Suite

	repSpan := reg.StartSpan("net/repeaters")
	rep, err := optimize(rt, tech, core.Options{Repeaters: true, Obs: reg})
	if err != nil {
		return res, fmt.Errorf("repeaters: %w", err)
	}
	repSpan.End()
	res.RepSuite = rep.Suite
	return res, nil
}

// Table2Row is one averaged row of Table II. All ratio columns are
// normalized to the min-cost (no sizing, no repeaters) solution, exactly
// as in the paper.
type Table2Row struct {
	Pins   int
	AvgIns float64 // column 2: average number of insertion points

	DSDiam   float64 // column 3: sizing min diameter / base diameter
	DSCost   float64 // column 4: sizing cost / base cost
	RIMatch  float64 // column 5: cheapest repeater cost matching sizing diameter / base cost
	RIDiam   float64 // column 6: repeater min diameter / base diameter
	RICost   float64 // column 7: repeater min-diameter cost / base cost
	AvgDSSec float64 // Table IV: average sizing CPU seconds
	AvgRISec float64 // Table IV: average repeater CPU seconds

	// Sample standard deviations of the normalized diameters, reported
	// alongside the paper-format averages.
	DSDiamStd float64
	RIDiamStd float64
}

// Table2 averages Nets random nets of the given size (seeds seed0,
// seed0+1, …), reproducing one row of Table II (and the matching cells of
// Table IV).
func Table2(pins, nets int, seed0 int64, tech buslib.Tech) (Table2Row, []NetResult, error) {
	results := make([]NetResult, nets)
	for i := 0; i < nets; i++ {
		nr, err := RunNet(seed0+int64(i), pins, tech)
		if err != nil {
			return Table2Row{}, nil, err
		}
		results[i] = nr
	}
	row, err := accumulateTable2(pins, results)
	return row, results, err
}

// accumulateTable2 folds per-net results into one Table II row, in input
// (seed) order so serial and parallel paths agree bit-for-bit.
func accumulateTable2(pins int, results []NetResult) (Table2Row, error) {
	row := Table2Row{Pins: pins}
	var dsDiams, riDiams []float64
	for _, nr := range results {
		dsD, dsC, err := nr.DSMin()
		if err != nil {
			return row, fmt.Errorf("seed %d: %w", nr.Seed, err)
		}
		riD, riC, err := nr.RepMin()
		if err != nil {
			return row, fmt.Errorf("seed %d: %w", nr.Seed, err)
		}
		match, ok := nr.RepMatching()
		if !ok {
			return row, fmt.Errorf("seed %d: no repeater solution matches sizing diameter", nr.Seed)
		}
		row.AvgIns += float64(nr.Insertion)
		row.DSDiam += dsD / nr.BaseARD
		row.DSCost += dsC / nr.BaseCost
		row.RIMatch += match / nr.BaseCost
		row.RIDiam += riD / nr.BaseARD
		row.RICost += riC / nr.BaseCost
		row.AvgDSSec += nr.SizingSeconds()
		row.AvgRISec += nr.RepSeconds()
		dsDiams = append(dsDiams, dsD/nr.BaseARD)
		riDiams = append(riDiams, riD/nr.BaseARD)
	}
	k := float64(len(results))
	row.AvgIns /= k
	row.DSDiam /= k
	row.DSCost /= k
	row.RIMatch /= k
	row.RIDiam /= k
	row.RICost /= k
	row.AvgDSSec /= k
	row.AvgRISec /= k
	row.DSDiamStd = stddev(dsDiams, row.DSDiam)
	row.RIDiamStd = stddev(riDiams, row.RIDiam)
	return row, nil
}

func stddev(xs []float64, mean float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// FormatTable1 renders the technology parameters (Table I).
func FormatTable1(tech buslib.Tech) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: technology parameters (see DESIGN.md §4 for the substitution note)\n")
	fmt.Fprintf(&b, "  wire resistance   : %.4g Ω/µm\n", tech.Wire.ResPerUm*1000)
	fmt.Fprintf(&b, "  wire capacitance  : %.4g fF/µm\n", tech.Wire.CapPerUm*1000)
	for _, r := range tech.Repeaters {
		fmt.Fprintf(&b, "  repeater %-10s: delay %.3g ns, rout %.3g Ω, cin %.3g pF/side, cost %.3g\n",
			r.Name, r.DelayAB, r.RoutAB*1000, r.CapA, r.Cost)
	}
	for _, d := range tech.Drivers {
		fmt.Fprintf(&b, "  driver %-10s : intrinsic %.3g ns, rout %.3g Ω, cost %.3g\n",
			d.Name, d.Intrinsic, d.Rout*1000, d.Cost)
	}
	fmt.Fprintf(&b, "  previous-stage resistance: %.3g Ω\n", tech.PrevStageRes*1000)
	fmt.Fprintf(&b, "  next-stage capacitance   : %.3g pF\n", tech.NextStageCap)
	return b.String()
}

// FormatTable2 renders rows in the layout of Table II.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table II: normalized results (averages over random nets; 1.0 = min-cost solution)\n")
	b.WriteString("pins  ins.pts | DS diam (±σ)  DS cost | RI cost@DS-diam | RI diam (±σ)  RI cost\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d  %7.1f | %5.2f (±%.2f)  %7.2f | %15.2f | %5.2f (±%.2f)  %7.2f\n",
			r.Pins, r.AvgIns, r.DSDiam, r.DSDiamStd, r.DSCost, r.RIMatch, r.RIDiam, r.RIDiamStd, r.RICost)
	}
	return b.String()
}

// Table3Row is one sample topology's fastest-solution comparison.
type Table3Row struct {
	Name    string
	Pins    int
	DSDiam  float64 // ns
	DSCost  float64 // equivalent 1X buffers (drivers)
	RepDiam float64 // ns
	RepCost float64 // equivalent 1X buffers (drivers + repeaters)
	NumReps int
}

// Table3 compares the fastest driver-sizing and repeater-insertion
// solutions on sample topologies (three 10-pin and three 20-pin seeded
// instances, standing in for the paper's six unpublished samples).
func Table3(tech buslib.Tech) ([]Table3Row, error) {
	specs := []struct {
		pins int
		seed int64
	}{
		{10, 101}, {10, 102}, {10, 103},
		{20, 201}, {20, 202}, {20, 203},
	}
	var rows []Table3Row
	for i, sp := range specs {
		nr, err := RunNet(sp.seed, sp.pins, tech)
		if err != nil {
			return nil, err
		}
		dsBest, err := nr.SizingSuite.MinARD()
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", sp.seed, err)
		}
		repBest, err := nr.RepSuite.MinARD()
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", sp.seed, err)
		}
		rows = append(rows, Table3Row{
			Name:    fmt.Sprintf("net%d-%dpin", i+1, sp.pins),
			Pins:    sp.pins,
			DSDiam:  dsBest.ARD,
			DSCost:  dsBest.Cost,
			RepDiam: repBest.ARD,
			RepCost: repBest.Cost + nr.BaseCost,
			NumReps: repBest.Repeaters(),
		})
	}
	return rows, nil
}

// FormatTable3 renders Table III.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table III: fastest driver-sizing vs repeater-insertion solutions\n")
	b.WriteString("net           | DS diam(ns) DS cost | RI diam(ns) RI cost  #reps\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13s | %11.3f %7.0f | %11.3f %7.0f  %5d\n",
			r.Name, r.DSDiam, r.DSCost, r.RepDiam, r.RepCost, r.NumReps)
	}
	return b.String()
}

// FormatTable4 renders Table IV (run times) from Table II rows.
func FormatTable4(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table IV: average CPU seconds (this machine; paper used a SPARC 10)\n")
	b.WriteString("pins | repeater insertion | driver sizing\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d | %18.3f | %13.3f\n", r.Pins, r.AvgRISec, r.AvgDSSec)
	}
	return b.String()
}

// Fig11Solution describes one panel of Fig. 11.
type Fig11Solution struct {
	Label     string
	Repeaters int
	Cost      float64
	ARD       float64
	CritSrc   string
	CritSink  string
	Assign    rctree.Assignment
}

// Fig11Result carries the full figure.
type Fig11Result struct {
	Tree      *topo.Tree
	WireUm    float64
	Solutions []Fig11Solution
}

// Fig11 reproduces the 8-pin example: the unoptimized topology plus the
// repeater-insertion solutions with the requested repeater counts (the
// paper shows 2 and 5). For each requested count the suite entry with
// exactly that many repeaters is chosen when present, otherwise the
// closest available count.
func Fig11(seed int64, tech buslib.Tech, wantReps []int) (*Fig11Result, error) {
	tr, err := netgen.Generate(seed, netgen.Defaults(8))
	if err != nil {
		return nil, err
	}
	rt := tr.RootAt(tr.Terminals()[0])
	out := &Fig11Result{Tree: tr, WireUm: tr.TotalWireLength()}

	describe := func(label string, cost, ardVal float64, asg rctree.Assignment, reps int) Fig11Solution {
		n := rctree.NewNet(rt, tech, asg)
		res := ard.Compute(n, ard.Options{})
		name := func(id int) string {
			if id < 0 {
				return "-"
			}
			return tr.Node(id).Term.Name
		}
		return Fig11Solution{
			Label: label, Repeaters: reps, Cost: cost, ARD: ardVal,
			CritSrc: name(res.CritSrc), CritSink: name(res.CritSink),
			Assign: asg,
		}
	}

	base := rctree.NewNet(rt, tech, rctree.Assignment{})
	baseRes := ard.Compute(base, ard.Options{})
	out.Solutions = append(out.Solutions,
		describe("unoptimized", 0, baseRes.ARD, rctree.Assignment{}, 0))

	opt, err := optimize(rt, tech, core.Options{Repeaters: true})
	if err != nil {
		return nil, err
	}
	for _, k := range wantReps {
		bestIdx := -1
		bestDist := math.MaxInt
		for i, s := range opt.Suite {
			d := abs(s.Repeaters() - k)
			if d < bestDist {
				bestDist = d
				bestIdx = i
			}
		}
		s := opt.Suite[bestIdx]
		out.Solutions = append(out.Solutions, describe(
			fmt.Sprintf("%d-repeater solution", s.Repeaters()),
			s.Cost, s.ARD, s.Assignment(), s.Repeaters()))
	}
	return out, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// FormatFig11 renders the figure as text.
func FormatFig11(f *Fig11Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11: optimization of an 8-pin net (total wirelength %.1f Kµm)\n", f.WireUm/1000)
	for _, s := range f.Solutions {
		fmt.Fprintf(&b, "  %-22s: RC-diameter %.4f ns, cost %.0f, critical %s -> %s\n",
			s.Label, s.ARD, s.Cost, s.CritSrc, s.CritSink)
	}
	return b.String()
}

// AsymRow is one row of the §VII asymmetric source/sink study.
type AsymRow struct {
	SourceFrac float64
	RIDiam     float64 // min repeater diameter / base diameter
	RICost     float64 // repeaters used by the min-diameter solution
}

// Asymmetric probes the effect of asymmetric source/sink distributions
// (§VII "future directions"): fewer sources leave more freedom for
// one-directional optimization, so diameters should drop at least as much
// as in the symmetric case.
func Asymmetric(pins, nets int, seed0 int64, tech buslib.Tech, fracs []float64) ([]AsymRow, error) {
	var rows []AsymRow
	for _, frac := range fracs {
		var accD, accC float64
		for i := 0; i < nets; i++ {
			p := netgen.Defaults(pins)
			p.SourceFrac = frac
			tr, err := netgen.Generate(seed0+int64(i), p)
			if err != nil {
				return nil, err
			}
			rt := tr.RootAt(tr.Terminals()[0])
			base := rctree.NewNet(rt, tech, rctree.Assignment{})
			baseARD := ard.Compute(base, ard.Options{}).ARD
			res, err := optimize(rt, tech, core.Options{Repeaters: true})
			if err != nil {
				return nil, err
			}
			best, err := res.Suite.MinARD()
			if err != nil {
				return nil, err
			}
			accD += best.ARD / baseARD
			accC += best.Cost
		}
		rows = append(rows, AsymRow{
			SourceFrac: frac,
			RIDiam:     accD / float64(nets),
			RICost:     accC / float64(nets),
		})
	}
	return rows, nil
}

// FormatAsym renders the asymmetric-roles table.
func FormatAsym(rows []AsymRow) string {
	var b strings.Builder
	b.WriteString("Asymmetric source/sink study (§VII): repeater insertion, min-diameter point\n")
	b.WriteString("source frac | norm. diameter | repeater cost\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%11.2f | %14.3f | %13.1f\n", r.SourceFrac, r.RIDiam, r.RICost)
	}
	return b.String()
}
