package netio

import (
	"math"
	"strings"
	"testing"

	"msrnet/internal/buslib"
	"msrnet/internal/netgen"
	"msrnet/internal/topo"
	"msrnet/internal/validate"
)

// TestCorpusCodes drives Read+Decode over the canonical malformed-input
// corpus and asserts each rejection carries exactly the taxonomy code
// the corpus promises — the contract the CLIs, daemon and clients
// branch on.
func TestCorpusCodes(t *testing.T) {
	for _, c := range validate.Corpus() {
		t.Run(c.Name, func(t *testing.T) {
			f, err := Read(strings.NewReader(c.JSON))
			if err == nil {
				_, _, err = Decode(f)
			}
			got := validate.CodeOf(err)
			if got != c.WantCode {
				t.Fatalf("code = %q (err %v), want %q", got, err, c.WantCode)
			}
			if c.WantCode == "" && err != nil {
				t.Fatalf("well-formed entry rejected: %v", err)
			}
		})
	}
}

// TestDecodeNeverPanics: inputs that previously tripped topo's panics
// (self-loops, negative lengths) must now come back as typed errors.
func TestDecodeNeverPanics(t *testing.T) {
	base := Encode("", mustNet(t, 3, 6), buslib.Default())

	selfLoop := base
	selfLoop.Edges = append(append([]EdgeJSON(nil), base.Edges...), EdgeJSON{A: 1, B: 1, Length: 5})
	if _, _, err := Decode(selfLoop); validate.CodeOf(err) != validate.CodeSelfLoop {
		t.Fatalf("self-loop: %v", err)
	}

	negLen := base
	negLen.Edges = append([]EdgeJSON(nil), base.Edges...)
	negLen.Edges[0].Length = -1
	if _, _, err := Decode(negLen); validate.CodeOf(err) != validate.CodeNegativeRC {
		t.Fatalf("negative length: %v", err)
	}
}

// TestDecodeNonFinite covers the NaN/Inf checks JSON cannot reach (its
// grammar has no such literals): in-memory NetFiles with poisoned
// numbers must be rejected with the non-finite codes.
func TestDecodeNonFinite(t *testing.T) {
	nan := math.NaN()
	base := Encode("", mustNet(t, 5, 6), buslib.Default())

	badNode := base
	badNode.Nodes = append([]NodeJSON(nil), base.Nodes...)
	badNode.Nodes[0].X = nan
	if _, _, err := Decode(badNode); validate.CodeOf(err) != validate.CodeNonFinite {
		t.Fatalf("NaN coordinate: %v", err)
	}

	badTerm := base
	badTerm.Nodes = append([]NodeJSON(nil), base.Nodes...)
	for i := range badTerm.Nodes {
		if badTerm.Nodes[i].Kind == "terminal" {
			badTerm.Nodes[i].Cin = math.Inf(1)
			break
		}
	}
	if _, _, err := Decode(badTerm); validate.CodeOf(err) != validate.CodeNonFinite {
		t.Fatalf("Inf cin: %v", err)
	}

	badTech := base
	badTech.Tech.WireResPerUm = nan
	if _, _, err := Decode(badTech); validate.CodeOf(err) != validate.CodeTechNonFinite {
		t.Fatalf("NaN wire resistance: %v", err)
	}

	badRep := base
	badRep.Tech.Repeaters = append([]buslib.Repeater(nil), base.Tech.Repeaters...)
	badRep.Tech.Repeaters[0].CapA = nan
	if _, _, err := Decode(badRep); validate.CodeOf(err) != validate.CodeTechNonFinite {
		t.Fatalf("NaN repeater cap: %v", err)
	}
}

// TestDecodeLimits: an oversized net is rejected with net/too_large
// under tightened limits and accepted under the defaults.
func TestDecodeLimits(t *testing.T) {
	f := Encode("", mustNet(t, 4, 8), buslib.Default())
	if _, _, err := Decode(f); err != nil {
		t.Fatalf("default limits reject a netgen net: %v", err)
	}
	_, _, err := DecodeWithLimits(f, validate.Limits{MaxNodes: 2})
	if validate.CodeOf(err) != validate.CodeTooLarge {
		t.Fatalf("tight limits: %v", err)
	}
	_, _, err = DecodeWithLimits(f, validate.Limits{MaxLibrary: 1})
	if validate.CodeOf(err) != validate.CodeTechTooLarge {
		t.Fatalf("tight library limit: %v", err)
	}
}

func mustNet(t *testing.T, seed int64, pins int) *topo.Tree {
	t.Helper()
	tr, err := netgen.Generate(seed, netgen.Defaults(pins))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}
