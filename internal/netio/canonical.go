package netio

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sort"
)

// Canonicalize returns a semantically identical copy of f in canonical
// form: every edge stored with A ≤ B, edges sorted by (A, B, Length),
// and the version pinned to FormatVersion. Node order is already
// semantically load-bearing (IDs must be dense and ordered, and decode
// rebuilds terminals in file order), so nodes are copied untouched; the
// same holds for the repeater and driver libraries, whose order can
// break ties in the dynamic program. Canonicalize is idempotent:
// Canonicalize(Canonicalize(f)) == Canonicalize(f).
//
// Two NetFiles that decode to the same tree-plus-technology up to edge
// direction and edge insertion order canonicalize to identical values,
// which is what makes ContentHash usable as a cache key.
func Canonicalize(f NetFile) NetFile {
	out := f
	out.Version = FormatVersion
	out.Nodes = append([]NodeJSON(nil), f.Nodes...)
	out.Edges = append([]EdgeJSON(nil), f.Edges...)
	for i, e := range out.Edges {
		if e.A > e.B {
			out.Edges[i].A, out.Edges[i].B = e.B, e.A
		}
	}
	sort.SliceStable(out.Edges, func(i, j int) bool {
		a, b := out.Edges[i], out.Edges[j]
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.Length < b.Length
	})
	out.Tech.Repeaters = append(f.Tech.Repeaters[:0:0], f.Tech.Repeaters...)
	out.Tech.Drivers = append(f.Tech.Drivers[:0:0], f.Tech.Drivers...)
	return out
}

// CanonicalBytes returns the deterministic encoding of the canonical
// form of f: compact single-line JSON with struct fields in declaration
// order. Identical nets (up to edge direction and edge order) yield
// identical bytes.
func CanonicalBytes(f NetFile) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(Canonicalize(f)); err != nil {
		return nil, fmt.Errorf("netio: canonical encode: %w", err)
	}
	// Encoder appends a newline; the canonical form is the bare object.
	return bytes.TrimRight(buf.Bytes(), "\n"), nil
}

// ContentHash returns a stable content address for the net:
// "sha256:<hex>" over CanonicalBytes. It is the net half of the
// msrnetd result-cache key (see DESIGN.md §8).
func ContentHash(f NetFile) (string, error) {
	b, err := CanonicalBytes(f)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return fmt.Sprintf("sha256:%x", sum), nil
}
