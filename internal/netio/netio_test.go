package netio

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"msrnet/internal/buslib"
	"msrnet/internal/netgen"
	"msrnet/internal/rctree"
)

func TestRoundTrip(t *testing.T) {
	tr, err := netgen.Generate(5, netgen.Defaults(8))
	if err != nil {
		t.Fatal(err)
	}
	tech := buslib.Default()
	var buf bytes.Buffer
	if err := Write(&buf, Encode("test-net", tr, tech)); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "test-net" || f.Version != FormatVersion {
		t.Errorf("header wrong: %+v", f.Name)
	}
	tr2, tech2, err := Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.NumNodes() != tr.NumNodes() || tr2.NumEdges() != tr.NumEdges() {
		t.Fatal("structure not preserved")
	}
	if math.Abs(tr2.TotalWireLength()-tr.TotalWireLength()) > 1e-9 {
		t.Fatal("wirelength not preserved")
	}
	if tech2.Wire != tech.Wire || len(tech2.Repeaters) != len(tech.Repeaters) ||
		len(tech2.Drivers) != len(tech.Drivers) {
		t.Fatal("tech not preserved")
	}
	for i := 0; i < tr.NumNodes(); i++ {
		a, b := tr.Node(i), tr2.Node(i)
		if a.Kind != b.Kind || a.Pt != b.Pt || a.Term != b.Term {
			t.Fatalf("node %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.json")
	tr, err := netgen.Generate(1, netgen.Defaults(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(path, "n5", tr, buslib.Default()); err != nil {
		t.Fatal(err)
	}
	tr2, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.NumNodes() != tr.NumNodes() {
		t.Fatal("load mismatch")
	}
}

func TestDecodeErrors(t *testing.T) {
	// Bad version.
	if _, _, err := Decode(NetFile{Version: 99}); err == nil {
		t.Error("bad version accepted")
	}
	// Bad node kind.
	f := NetFile{Version: 1, Nodes: []NodeJSON{{ID: 0, Kind: "alien"}}}
	if _, _, err := Decode(f); err == nil {
		t.Error("bad kind accepted")
	}
	// Non-dense ids.
	f2 := NetFile{Version: 1, Nodes: []NodeJSON{{ID: 3, Kind: "steiner"}}}
	if _, _, err := Decode(f2); err == nil {
		t.Error("sparse ids accepted")
	}
	// Edge out of range.
	f3 := NetFile{Version: 1,
		Nodes: []NodeJSON{{ID: 0, Kind: "terminal", IsSource: true, IsSink: true}},
		Edges: []EdgeJSON{{A: 0, B: 5, Length: 1}}}
	if _, _, err := Decode(f3); err == nil {
		t.Error("bad edge accepted")
	}
	// Invalid topology (disconnected).
	f4 := NetFile{Version: 1, Nodes: []NodeJSON{
		{ID: 0, Kind: "terminal"}, {ID: 1, Kind: "terminal"},
	}}
	if _, _, err := Decode(f4); err == nil {
		t.Error("forest accepted")
	}
	// Garbage JSON.
	if _, err := Read(strings.NewReader("{nope")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestEncodeAssignment(t *testing.T) {
	rep := buslib.RepeaterFromPair(buslib.Buffer1X())
	asg := rctree.Assignment{
		Repeaters: map[int]rctree.Placed{7: {Rep: rep, ASideUp: true}},
		Drivers:   map[int]buslib.Driver{2: {Name: "drv2X"}},
		Widths:    map[int]float64{3: 2},
	}
	aj := EncodeAssignment(4, 1.5, asg)
	if aj.Cost != 4 || aj.ARD != 1.5 {
		t.Error("header wrong")
	}
	if len(aj.Repeaters) != 1 || aj.Repeaters[0].Node != 7 || !aj.Repeaters[0].ASideUp {
		t.Errorf("repeaters wrong: %+v", aj.Repeaters)
	}
	if aj.Drivers["2"] != "drv2X" || aj.Widths["3"] != "2" {
		t.Error("maps wrong")
	}
}
