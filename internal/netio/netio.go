// Package netio serializes nets, technologies and optimization results to
// a stable JSON format used by the command-line tools. The format is
// self-describing and versioned so saved benchmarks remain loadable.
package netio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"msrnet/internal/buslib"
	"msrnet/internal/geom"
	"msrnet/internal/rctree"
	"msrnet/internal/topo"
	"msrnet/internal/validate"
)

// FormatVersion identifies the on-disk schema.
const FormatVersion = 1

// NetFile is the JSON representation of a routing topology plus its
// technology.
type NetFile struct {
	Version int        `json:"version"`
	Name    string     `json:"name,omitempty"`
	Tech    TechJSON   `json:"tech"`
	Nodes   []NodeJSON `json:"nodes"`
	Edges   []EdgeJSON `json:"edges"`
}

// TechJSON mirrors buslib.Tech.
type TechJSON struct {
	WireResPerUm float64           `json:"wire_res_per_um"`
	WireCapPerUm float64           `json:"wire_cap_per_um"`
	Repeaters    []buslib.Repeater `json:"repeaters,omitempty"`
	Drivers      []buslib.Driver   `json:"drivers,omitempty"`
	PrevStageRes float64           `json:"prev_stage_res,omitempty"`
	NextStageCap float64           `json:"next_stage_cap,omitempty"`
}

// NodeJSON mirrors topo.Node.
type NodeJSON struct {
	ID   int     `json:"id"`
	Kind string  `json:"kind"` // "terminal", "steiner", "insertion"
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	// Terminal-only fields.
	Name     string  `json:"name,omitempty"`
	IsSource bool    `json:"is_source,omitempty"`
	IsSink   bool    `json:"is_sink,omitempty"`
	AAT      float64 `json:"aat,omitempty"`
	Q        float64 `json:"q,omitempty"`
	Cin      float64 `json:"cin,omitempty"`
	Rout     float64 `json:"rout,omitempty"`
	DrvIntr  float64 `json:"driver_intrinsic,omitempty"`
}

// EdgeJSON mirrors topo.Edge.
type EdgeJSON struct {
	A      int     `json:"a"`
	B      int     `json:"b"`
	Length float64 `json:"length"`
}

// Encode converts a topology and technology to the file form.
func Encode(name string, tr *topo.Tree, tech buslib.Tech) NetFile {
	f := NetFile{
		Version: FormatVersion,
		Name:    name,
		Tech: TechJSON{
			WireResPerUm: tech.Wire.ResPerUm,
			WireCapPerUm: tech.Wire.CapPerUm,
			Repeaters:    tech.Repeaters,
			Drivers:      tech.Drivers,
			PrevStageRes: tech.PrevStageRes,
			NextStageCap: tech.NextStageCap,
		},
	}
	for i := 0; i < tr.NumNodes(); i++ {
		n := tr.Node(i)
		nj := NodeJSON{ID: n.ID, Kind: n.Kind.String(), X: n.Pt.X, Y: n.Pt.Y}
		if n.Kind == topo.Terminal {
			nj.Name = n.Term.Name
			nj.IsSource = n.Term.IsSource
			nj.IsSink = n.Term.IsSink
			nj.AAT = n.Term.AAT
			nj.Q = n.Term.Q
			nj.Cin = n.Term.Cin
			nj.Rout = n.Term.Rout
			nj.DrvIntr = n.Term.DriverIntrinsic
		}
		f.Nodes = append(f.Nodes, nj)
	}
	for i := 0; i < tr.NumEdges(); i++ {
		e := tr.Edge(i)
		f.Edges = append(f.Edges, EdgeJSON{A: e.A, B: e.B, Length: e.Length})
	}
	return f
}

// Decode rebuilds the topology and technology from the file form. The
// file is first run through Check with the default limits, so any
// returned error carries an msrnet-error/v1 taxonomy code (see
// internal/validate) and the tree construction below cannot panic on
// hostile input.
func Decode(f NetFile) (*topo.Tree, buslib.Tech, error) {
	return DecodeWithLimits(f, validate.Limits{})
}

// DecodeWithLimits is Decode under caller-chosen size limits (zero
// fields take the defaults).
func DecodeWithLimits(f NetFile, lim validate.Limits) (*topo.Tree, buslib.Tech, error) {
	if err := Check(f, lim); err != nil {
		return nil, buslib.Tech{}, err
	}
	tech := buslib.Tech{
		Wire:         buslib.Wire{ResPerUm: f.Tech.WireResPerUm, CapPerUm: f.Tech.WireCapPerUm},
		Repeaters:    f.Tech.Repeaters,
		Drivers:      f.Tech.Drivers,
		PrevStageRes: f.Tech.PrevStageRes,
		NextStageCap: f.Tech.NextStageCap,
	}
	tr := topo.New()
	for _, nj := range f.Nodes {
		pt := geom.Pt(nj.X, nj.Y)
		switch nj.Kind {
		case "terminal":
			tr.AddTerminal(pt, buslib.Terminal{
				Name: nj.Name, IsSource: nj.IsSource, IsSink: nj.IsSink,
				AAT: nj.AAT, Q: nj.Q, Cin: nj.Cin, Rout: nj.Rout,
				DriverIntrinsic: nj.DrvIntr,
			})
		case "steiner":
			tr.AddSteiner(pt)
		case "insertion":
			tr.AddInsertion(pt)
		}
	}
	for _, ej := range f.Edges {
		tr.AddEdge(ej.A, ej.B, ej.Length)
	}
	if err := tr.Validate(); err != nil {
		// Check above enforces every Validate invariant first; this is
		// the backstop should the two ever drift.
		return nil, tech, fmt.Errorf("netio: %w", err)
	}
	return tr, tech, nil
}

// Write streams the net file as indented JSON.
func Write(w io.Writer, f NetFile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Read parses a net file. Syntax errors carry the net/bad_json
// taxonomy code.
func Read(r io.Reader) (NetFile, error) {
	var f NetFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return f, fmt.Errorf("netio: %w: %w",
			validate.E(validate.CodeBadJSON, "", "net file is not valid JSON"), err)
	}
	return f, nil
}

// Save writes the net to a file path.
func Save(path, name string, tr *topo.Tree, tech buslib.Tech) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	return Write(fh, Encode(name, tr, tech))
}

// Load reads a net from a file path.
func Load(path string) (*topo.Tree, buslib.Tech, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, buslib.Tech{}, err
	}
	defer fh.Close()
	f, err := Read(fh)
	if err != nil {
		return nil, buslib.Tech{}, err
	}
	return Decode(f)
}

// AssignmentJSON serializes an optimization outcome for one net.
type AssignmentJSON struct {
	Version   int               `json:"version"`
	Cost      float64           `json:"cost"`
	ARD       float64           `json:"ard"`
	Repeaters []PlacedJSON      `json:"repeaters,omitempty"`
	Drivers   map[string]string `json:"drivers,omitempty"` // node id -> driver name
	Widths    map[string]string `json:"widths,omitempty"`  // edge id -> width
}

// PlacedJSON mirrors rctree.Placed.
type PlacedJSON struct {
	Node    int    `json:"node"`
	Name    string `json:"repeater"`
	ASideUp bool   `json:"a_side_up"`
}

// EncodeAssignment summarizes a concrete assignment. The output is
// deterministic: repeaters are sorted by node id (map iteration order
// must not leak into saved files or cached daemon results), and the
// driver/width maps marshal with sorted keys as encoding/json always
// does.
func EncodeAssignment(cost, ard float64, asg rctree.Assignment) AssignmentJSON {
	out := AssignmentJSON{Version: FormatVersion, Cost: cost, ARD: ard}
	for node, pl := range asg.Repeaters {
		out.Repeaters = append(out.Repeaters, PlacedJSON{
			Node: node, Name: pl.Rep.Name, ASideUp: pl.ASideUp,
		})
	}
	sort.Slice(out.Repeaters, func(i, j int) bool {
		return out.Repeaters[i].Node < out.Repeaters[j].Node
	})
	if len(asg.Drivers) > 0 {
		out.Drivers = map[string]string{}
		for node, d := range asg.Drivers {
			out.Drivers[fmt.Sprint(node)] = d.Name
		}
	}
	if len(asg.Widths) > 0 {
		out.Widths = map[string]string{}
		for eid, w := range asg.Widths {
			out.Widths[fmt.Sprint(eid)] = fmt.Sprint(w)
		}
	}
	return out
}
