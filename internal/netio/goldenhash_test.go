package netio

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"msrnet/internal/buslib"
	"msrnet/internal/netgen"
)

// goldenHashFile pins the ContentHash of a fixed net corpus. The hash
// is the fleet-wide routing and cache key: every daemon shards by it
// and every cluster client routes by it, so a hash that drifts across
// releases silently splits the shard cache and breaks the single-hop
// property. This test turns any such drift into a diff against a
// committed golden file.
const goldenHashFile = "testdata/golden_hashes.json"

// updateGoldenEnv regenerates the golden file when set — only for a
// DELIBERATE format-version bump, which is a coordinated fleet upgrade.
const updateGoldenEnv = "MSRNET_UPDATE_GOLDEN"

// goldenCorpus builds the fixed corpus: generated nets across seeds
// and sizes. netgen is fully seeded, so the corpus is identical on
// every platform and run.
func goldenCorpus(t *testing.T) map[string]NetFile {
	t.Helper()
	corpus := map[string]NetFile{}
	for _, pins := range []int{4, 9, 17} {
		for seed := int64(1); seed <= 4; seed++ {
			tr, err := netgen.Generate(seed, netgen.Defaults(pins))
			if err != nil {
				t.Fatalf("generate seed=%d pins=%d: %v", seed, pins, err)
			}
			name := fmt.Sprintf("gen-seed%d-pins%d", seed, pins)
			corpus[name] = Encode(name, tr, buslib.Default())
		}
	}
	return corpus
}

// TestContentHashGoldenCorpus locks ContentHash to the committed
// golden values, and asserts the invariances the cache key promises:
// edge order and edge direction do not matter, a JSON round trip does
// not matter, and the canonical bytes are a fixpoint.
func TestContentHashGoldenCorpus(t *testing.T) {
	corpus := goldenCorpus(t)
	got := map[string]string{}
	for name, f := range corpus {
		h, err := ContentHash(f)
		if err != nil {
			t.Fatalf("%s: hash: %v", name, err)
		}
		got[name] = h
	}

	if os.Getenv(updateGoldenEnv) != "" {
		names := make([]string, 0, len(got))
		for name := range got {
			names = append(names, name)
		}
		sort.Strings(names)
		ordered := make(map[string]string, len(got))
		for _, name := range names {
			ordered[name] = got[name]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenHashFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenHashFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden hashes rewritten: %s (%d entries)", goldenHashFile, len(ordered))
		return
	}

	data, err := os.ReadFile(goldenHashFile)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with %s=1 go test): %v", updateGoldenEnv, err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("decoding golden file: %v", err)
	}
	if len(want) != len(got) {
		t.Errorf("corpus has %d nets, golden file has %d", len(got), len(want))
	}
	for name, h := range got {
		if w, ok := want[name]; !ok {
			t.Errorf("%s: missing from golden file", name)
		} else if h != w {
			t.Errorf("%s: ContentHash drifted — cache keys and fleet routing would split\n  got:  %s\n  want: %s", name, h, w)
		}
	}

	for name, f := range corpus {
		assertHashInvariances(t, name, f, got[name])
	}
}

// assertHashInvariances perturbs a net in ways ContentHash documents
// as irrelevant and asserts the hash holds.
func assertHashInvariances(t *testing.T, name string, f NetFile, want string) {
	t.Helper()

	// Edge direction and edge order are canonicalized away.
	rng := rand.New(rand.NewSource(int64(len(name))))
	perm := f
	perm.Edges = append([]EdgeJSON(nil), f.Edges...)
	for i := range perm.Edges {
		if rng.Intn(2) == 0 {
			perm.Edges[i].A, perm.Edges[i].B = perm.Edges[i].B, perm.Edges[i].A
		}
	}
	rng.Shuffle(len(perm.Edges), func(i, j int) {
		perm.Edges[i], perm.Edges[j] = perm.Edges[j], perm.Edges[i]
	})
	if h, err := ContentHash(perm); err != nil || h != want {
		t.Errorf("%s: hash changed under edge permutation: %s (err %v)", name, h, err)
	}

	// A JSON round trip (what every daemon and client does in transit)
	// must not move the hash.
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatalf("%s: marshal: %v", name, err)
	}
	var back NetFile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("%s: unmarshal: %v", name, err)
	}
	if h, err := ContentHash(back); err != nil || h != want {
		t.Errorf("%s: hash changed across JSON round trip: %s (err %v)", name, h, err)
	}

	// The canonical form is a fixpoint: hashing the canonicalized net
	// yields the same address.
	if h, err := ContentHash(Canonicalize(f)); err != nil || h != want {
		t.Errorf("%s: hash changed after canonicalize: %s (err %v)", name, h, err)
	}
}
