package netio

import (
	"bytes"
	"math/rand"
	"testing"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/netgen"
	"msrnet/internal/rctree"
)

// TestCanonicalRoundTripProperty checks the cache-key contract on random
// nets: parse → canonicalize → parse is the identity. Concretely, the
// canonical bytes are a fixpoint (re-reading and re-encoding them
// reproduces them exactly), and the decoded tree is electrically
// identical (same ARD) to the original.
func TestCanonicalRoundTripProperty(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		tr, err := netgen.Generate(seed, netgen.Defaults(6+int(seed%5)))
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		tech := buslib.Default()
		f := Encode("prop", tr, tech)

		cb, err := CanonicalBytes(f)
		if err != nil {
			t.Fatalf("seed %d: canonical bytes: %v", seed, err)
		}
		parsed, err := Read(bytes.NewReader(cb))
		if err != nil {
			t.Fatalf("seed %d: re-read canonical bytes: %v", seed, err)
		}
		cb2, err := CanonicalBytes(parsed)
		if err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if !bytes.Equal(cb, cb2) {
			t.Fatalf("seed %d: canonical bytes are not a fixpoint:\n%s\nvs\n%s", seed, cb, cb2)
		}

		tr2, tech2, err := Decode(parsed)
		if err != nil {
			t.Fatalf("seed %d: decode canonical: %v", seed, err)
		}
		want := ard.Compute(rctree.NewNet(tr.RootAt(tr.Terminals()[0]), tech, rctree.Assignment{}), ard.Options{}).ARD
		got := ard.Compute(rctree.NewNet(tr2.RootAt(tr2.Terminals()[0]), tech2, rctree.Assignment{}), ard.Options{}).ARD
		if want != got {
			t.Fatalf("seed %d: ARD changed through canonical round trip: %g vs %g", seed, want, got)
		}
	}
}

// TestContentHashEdgeInvariance verifies the hash ignores edge direction
// and edge insertion order — the two representational freedoms
// Canonicalize normalizes away — while distinguishing real changes.
func TestContentHashEdgeInvariance(t *testing.T) {
	tr, err := netgen.Generate(7, netgen.Defaults(9))
	if err != nil {
		t.Fatal(err)
	}
	f := Encode("inv", tr, buslib.Default())
	base, err := ContentHash(f)
	if err != nil {
		t.Fatal(err)
	}

	flipped := f
	flipped.Edges = append([]EdgeJSON(nil), f.Edges...)
	for i, e := range flipped.Edges {
		flipped.Edges[i].A, flipped.Edges[i].B = e.B, e.A
	}
	if h, _ := ContentHash(flipped); h != base {
		t.Fatalf("hash changed under edge direction flip: %s vs %s", h, base)
	}

	shuffled := f
	shuffled.Edges = append([]EdgeJSON(nil), f.Edges...)
	rand.New(rand.NewSource(3)).Shuffle(len(shuffled.Edges), func(i, j int) {
		shuffled.Edges[i], shuffled.Edges[j] = shuffled.Edges[j], shuffled.Edges[i]
	})
	if h, _ := ContentHash(shuffled); h != base {
		t.Fatalf("hash changed under edge reorder: %s vs %s", h, base)
	}

	longer := f
	longer.Edges = append([]EdgeJSON(nil), f.Edges...)
	longer.Edges[0].Length += 1
	if h, _ := ContentHash(longer); h == base {
		t.Fatal("hash failed to distinguish a changed edge length")
	}

	renamed := f
	renamed.Name = "other"
	if h, _ := ContentHash(renamed); h == base {
		t.Fatal("hash failed to distinguish a changed net name")
	}
}

// TestCanonicalizeIdempotent pins the Canonicalize fixpoint and checks
// it does not mutate its argument.
func TestCanonicalizeIdempotent(t *testing.T) {
	tr, err := netgen.Generate(5, netgen.Defaults(8))
	if err != nil {
		t.Fatal(err)
	}
	f := Encode("idem", tr, buslib.Default())
	f.Edges[0].A, f.Edges[0].B = f.Edges[0].B, f.Edges[0].A
	beforeA, beforeB := f.Edges[0].A, f.Edges[0].B

	c1 := Canonicalize(f)
	if f.Edges[0].A != beforeA || f.Edges[0].B != beforeB {
		t.Fatal("Canonicalize mutated its argument")
	}
	c2 := Canonicalize(c1)
	b1, err := CanonicalBytes(c1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := CanonicalBytes(c2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("Canonicalize is not idempotent")
	}
}
