package netio

import (
	"strings"
	"testing"

	"msrnet/internal/validate"
)

// FuzzRead ensures arbitrary input never panics the decoder, that every
// rejection carries an msrnet-error/v1 taxonomy code, and that anything
// it accepts round-trips structurally. Seeded with the validation
// taxonomy's canonical corpus so each code's trigger is a mutation
// starting point.
func FuzzRead(f *testing.F) {
	f.Add(`{"version":1,"nodes":[],"edges":[]}`)
	f.Add(`{"version":1,"nodes":[{"id":0,"kind":"terminal","is_source":true,"is_sink":true}],"edges":[]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"version":1,"nodes":[{"id":0,"kind":"steiner"},{"id":1,"kind":"terminal"}],"edges":[{"a":0,"b":1,"length":10}]}`)
	for _, c := range validate.Corpus() {
		f.Add(c.JSON)
	}
	f.Fuzz(func(t *testing.T, in string) {
		nf, err := Read(strings.NewReader(in))
		if err != nil {
			if validate.CodeOf(err) == "" {
				t.Fatalf("Read rejection without taxonomy code: %v", err)
			}
			return // typed rejection is fine; panics are not
		}
		tr, tech, err := Decode(nf)
		if err != nil {
			if validate.CodeOf(err) == "" {
				t.Fatalf("Decode rejection without taxonomy code: %v", err)
			}
			return
		}
		// Anything decodable must survive re-encode + re-decode.
		nf2 := Encode(nf.Name, tr, tech)
		tr2, _, err := Decode(nf2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if tr2.NumNodes() != tr.NumNodes() || tr2.NumEdges() != tr.NumEdges() {
			t.Fatalf("round-trip changed structure: %d/%d vs %d/%d",
				tr.NumNodes(), tr.NumEdges(), tr2.NumNodes(), tr2.NumEdges())
		}
	})
}
