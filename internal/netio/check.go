package netio

import (
	"fmt"

	"msrnet/internal/validate"
)

// Check performs the deep structural and numeric validation of a net
// file against the msrnet-error/v1 taxonomy, before any topo.Tree is
// built: schema version, size limits, dense node ids, node kinds,
// finiteness and sign of every coordinate/length/electrical value,
// edge endpoint sanity, cycle and connectivity detection (union-find),
// tree-degree rules for terminals and insertion points, source/sink
// presence, and the technology block. Decode runs it automatically;
// callers that want tighter limits (e.g. a serving daemon) call it
// directly. The first violation is returned as a *validate.Error.
func Check(f NetFile, lim validate.Limits) error {
	lim = lim.Resolve()
	if f.Version != FormatVersion {
		return validate.E(validate.CodeUnsupportedVersion, "version",
			"unsupported net-file version %d (want %d)", f.Version, FormatVersion)
	}
	if err := checkTech(f.Tech, lim); err != nil {
		return err
	}
	n := len(f.Nodes)
	if n == 0 {
		return validate.E(validate.CodeEmptyNet, "nodes", "net has no nodes")
	}
	if n > lim.MaxNodes {
		return validate.E(validate.CodeTooLarge, "nodes",
			"%d nodes exceeds the limit of %d", n, lim.MaxNodes)
	}
	if len(f.Edges) > lim.MaxEdges {
		return validate.E(validate.CodeTooLarge, "edges",
			"%d edges exceeds the limit of %d", len(f.Edges), lim.MaxEdges)
	}

	degree := make([]int, n)
	var sources, sinks int
	for i, nd := range f.Nodes {
		path := nodePath(i)
		if nd.ID != i {
			return validate.E(validate.CodeNodeOrder, path,
				"node ids must be dense and ordered; got id %d at index %d", nd.ID, i)
		}
		switch nd.Kind {
		case "terminal", "steiner", "insertion":
		default:
			return validate.E(validate.CodeBadKind, path,
				"unknown node kind %q (want terminal, steiner or insertion)", nd.Kind)
		}
		if err := validate.Finite(validate.CodeNonFinite, path+".x", nd.X); err != nil {
			return err
		}
		if err := validate.Finite(validate.CodeNonFinite, path+".y", nd.Y); err != nil {
			return err
		}
		if nd.Kind == "terminal" {
			if nd.IsSource {
				sources++
			}
			if nd.IsSink {
				sinks++
			}
			for _, v := range []struct {
				field string
				val   float64
				sign  bool // must also be ≥ 0
			}{
				{"aat", nd.AAT, false},
				{"q", nd.Q, false},
				{"cin", nd.Cin, true},
				{"rout", nd.Rout, true},
				{"driver_intrinsic", nd.DrvIntr, true},
			} {
				p := path + "." + v.field
				if v.sign {
					if err := validate.NonNegative(validate.CodeNonFinite, validate.CodeNegativeRC, p, v.val); err != nil {
						return err
					}
				} else if err := validate.Finite(validate.CodeNonFinite, p, v.val); err != nil {
					return err
				}
			}
		}
	}

	dsu := validate.NewDSU(n)
	for i, e := range f.Edges {
		path := edgePath(i)
		if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n {
			return validate.E(validate.CodeEdgeRange, path,
				"endpoint out of range: %d–%d with %d nodes", e.A, e.B, n)
		}
		if e.A == e.B {
			return validate.E(validate.CodeSelfLoop, path, "self-loop at node %d", e.A)
		}
		if err := validate.NonNegative(validate.CodeNonFinite, validate.CodeNegativeRC, path+".length", e.Length); err != nil {
			return err
		}
		if !dsu.Union(e.A, e.B) {
			return validate.E(validate.CodeCycle, path,
				"edge %d–%d closes a cycle", e.A, e.B)
		}
		degree[e.A]++
		degree[e.B]++
	}
	if dsu.Components() > 1 {
		return validate.E(validate.CodeDisconnected, "edges",
			"graph has %d connected components, want 1", dsu.Components())
	}
	if len(f.Edges) != n-1 {
		// Unreachable after the cycle/connectivity checks, kept as the
		// taxonomy's backstop for future edge representations.
		return validate.E(validate.CodeNotATree, "edges",
			"%d nodes but %d edges; a tree needs n-1", n, len(f.Edges))
	}
	for i, nd := range f.Nodes {
		switch nd.Kind {
		case "terminal":
			if degree[i] != 1 {
				return validate.E(validate.CodeTerminalDegree, nodePath(i),
					"terminal %q has degree %d, must be a leaf", nd.Name, degree[i])
			}
		case "insertion":
			if degree[i] != 2 {
				return validate.E(validate.CodeInsertionDegree, nodePath(i),
					"insertion point has degree %d, want 2", degree[i])
			}
		}
	}
	if sources == 0 {
		return validate.E(validate.CodeNoSource, "nodes", "net has no source terminal")
	}
	if sinks == 0 {
		return validate.E(validate.CodeNoSink, "nodes", "net has no sink terminal")
	}
	return nil
}

// checkTech validates the technology block: finite, non-negative unit
// parasitics, bounded libraries, and sane per-element numbers.
func checkTech(t TechJSON, lim validate.Limits) error {
	for _, v := range []struct {
		path string
		val  float64
	}{
		{"tech.wire_res_per_um", t.WireResPerUm},
		{"tech.wire_cap_per_um", t.WireCapPerUm},
		{"tech.prev_stage_res", t.PrevStageRes},
		{"tech.next_stage_cap", t.NextStageCap},
	} {
		if err := validate.NonNegative(validate.CodeTechNonFinite, validate.CodeTechNegativeRC, v.path, v.val); err != nil {
			return err
		}
	}
	if len(t.Repeaters) > lim.MaxLibrary {
		return validate.E(validate.CodeTechTooLarge, "tech.repeaters",
			"%d repeaters exceeds the limit of %d", len(t.Repeaters), lim.MaxLibrary)
	}
	if len(t.Drivers) > lim.MaxLibrary {
		return validate.E(validate.CodeTechTooLarge, "tech.drivers",
			"%d drivers exceeds the limit of %d", len(t.Drivers), lim.MaxLibrary)
	}
	for i, r := range t.Repeaters {
		p := repPath(i)
		for _, v := range []struct {
			field string
			val   float64
		}{
			{"cost", r.Cost}, {"cap_a", r.CapA}, {"cap_b", r.CapB},
			{"rout_ab", r.RoutAB}, {"rout_ba", r.RoutBA},
			{"delay_ab", r.DelayAB}, {"delay_ba", r.DelayBA},
		} {
			if err := validate.NonNegative(validate.CodeTechNonFinite, validate.CodeTechNegativeRC, p+"."+v.field, v.val); err != nil {
				return err
			}
		}
	}
	for i, d := range t.Drivers {
		p := drvPath(i)
		for _, v := range []struct {
			field string
			val   float64
		}{
			{"cost", d.Cost}, {"rout", d.Rout}, {"intrinsic", d.Intrinsic},
		} {
			if err := validate.NonNegative(validate.CodeTechNonFinite, validate.CodeTechNegativeRC, p+"."+v.field, v.val); err != nil {
				return err
			}
		}
	}
	return nil
}

func nodePath(i int) string { return fmt.Sprintf("nodes[%d]", i) }
func edgePath(i int) string { return fmt.Sprintf("edges[%d]", i) }
func repPath(i int) string  { return fmt.Sprintf("tech.repeaters[%d]", i) }
func drvPath(i int) string  { return fmt.Sprintf("tech.drivers[%d]", i) }
