package spancollect

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"msrnet/internal/obs/spans"
)

// twoProcTrace is a fixed two-process forwarded job: node-0 submits,
// forwards to node-1 (whose clock runs 100ms fast), node-1 solves and
// appends to its WAL. All times in ms on each process's own clock.
func twoProcTrace() []ProcessSpans {
	return []ProcessSpans{
		{
			Process: "node-0",
			Spans: []spans.Record{
				{ID: 1, Name: "submit", StartUnixNs: 0, DurNs: 20 * ms},
				{ID: 2, Parent: 1, Name: "queue", StartUnixNs: 1 * ms, DurNs: 2 * ms},
				{ID: 3, Parent: 1, Name: "forward", StartUnixNs: 5 * ms, DurNs: 14 * ms, Peer: "node-1"},
			},
		},
		{
			Process:  "node-1",
			OffsetNs: 100 * ms, // node-1's clock reads 100ms ahead
			Spans: []spans.Record{
				{ID: 1, ParentRemote: "node-0#3", Name: "submit", StartUnixNs: 106 * ms, DurNs: 12 * ms},
				{ID: 2, Parent: 1, Name: "queue", StartUnixNs: 106*ms + ms/2, DurNs: ms / 2},
				{ID: 3, Parent: 1, Name: "solve", StartUnixNs: 107 * ms, DurNs: 10 * ms},
				{ID: 4, Parent: 1, Name: "wal/append", StartUnixNs: 117 * ms, DurNs: 1 * ms},
			},
		},
	}
}

func TestStitchResolvesCrossProcessLinks(t *testing.T) {
	st := Stitch("0123456789abcdef", twoProcTrace())
	if got := len(st.Nodes); got != 7 {
		t.Fatalf("stitched %d nodes, want 7", got)
	}
	if len(st.Roots) != 1 {
		t.Fatalf("roots = %v, want exactly one", st.Roots)
	}
	byKey := map[string]Node{}
	for _, n := range st.Nodes {
		byKey[n.Key] = n
	}
	root := byKey["node-0#1"]
	if root.Parent != -1 || root.Depth != 0 {
		t.Fatalf("node-0#1 should be the root: %+v", root)
	}
	remote := byKey["node-1#1"]
	if remote.Parent < 0 || st.Nodes[remote.Parent].Key != "node-0#3" {
		t.Fatalf("node-1#1 should hang under the forward span, got parent %d", remote.Parent)
	}
	if remote.Depth != 2 || byKey["node-1#3"].Depth != 3 {
		t.Fatalf("depths wrong: remote submit %d (want 2), solve %d (want 3)",
			remote.Depth, byKey["node-1#3"].Depth)
	}
	// Skew correction: node-1's spans subtract its +100ms offset, so the
	// remote submit lands inside the forward window on the shared
	// timeline.
	if remote.StartNs != 6*ms {
		t.Fatalf("remote submit aligned to %dns, want %dns", remote.StartNs, 6*ms)
	}
	fwd := byKey["node-0#3"]
	if remote.StartNs < fwd.StartNs || remote.StartNs+remote.DurNs > fwd.StartNs+fwd.DurNs {
		t.Fatal("aligned remote submit should nest inside the forward hop window")
	}
	if want := []string{"node-0", "node-1"}; strings.Join(st.Processes, ",") != strings.Join(want, ",") {
		t.Fatalf("processes = %v, want %v", st.Processes, want)
	}
}

func TestStitchOrphanBecomesRoot(t *testing.T) {
	procs := []ProcessSpans{{
		Process: "node-1",
		Spans: []spans.Record{
			{ID: 1, ParentRemote: "node-9#5", Name: "submit", StartUnixNs: 0, DurNs: ms},
			{ID: 2, Parent: 7, Name: "queue", StartUnixNs: 0, DurNs: ms}, // local parent evicted
		},
	}}
	st := Stitch("deadbeefdeadbeef", procs)
	if len(st.Roots) != 2 {
		t.Fatalf("both orphans should surface as roots, got %v", st.Roots)
	}
}

func TestStitchIsDeterministic(t *testing.T) {
	render := func() (string, string, string) {
		st := Stitch("0123456789abcdef", twoProcTrace())
		var chrome, wf bytes.Buffer
		if err := st.WriteChrome(&chrome); err != nil {
			t.Fatal(err)
		}
		st.WriteWaterfall(&wf)
		var cp bytes.Buffer
		st.CriticalPath().Write(&cp)
		return chrome.String(), wf.String(), cp.String()
	}
	c1, w1, p1 := render()
	for i := 0; i < 3; i++ {
		c2, w2, p2 := render()
		if c1 != c2 {
			t.Fatalf("Chrome export not deterministic:\n%s\n---\n%s", c1, c2)
		}
		if w1 != w2 {
			t.Fatalf("waterfall not deterministic:\n%s\n---\n%s", w1, w2)
		}
		if p1 != p2 {
			t.Fatalf("critical path not deterministic:\n%s\n---\n%s", p1, p2)
		}
	}
	// The Chrome export keeps one track per process, in sorted order.
	if !strings.Contains(c1, `{"name":"process_name","ph":"M","pid":1,"tid":1,"args":{"name":"node-0"}}`) ||
		!strings.Contains(c1, `{"name":"process_name","ph":"M","pid":2,"tid":1,"args":{"name":"node-1"}}`) {
		t.Fatalf("missing per-process metadata tracks:\n%s", c1)
	}
}

func TestCriticalPathSumsTo100(t *testing.T) {
	st := Stitch("0123456789abcdef", twoProcTrace())
	cp := st.CriticalPath()
	if cp.TotalMs != 20 {
		t.Fatalf("total = %vms, want 20ms", cp.TotalMs)
	}
	if cp.Dominant != spans.ClassSolve {
		t.Fatalf("dominant = %q, want solve (shares: %+v)", cp.Dominant, cp.Shares)
	}
	var pct, msSum float64
	share := map[string]float64{}
	for _, s := range cp.Shares {
		pct += s.Pct
		msSum += s.Ms
		share[s.Class] = s.Ms
	}
	if math.Abs(pct-100) > 1e-9 {
		t.Fatalf("percentages sum to %v, want 100", pct)
	}
	if math.Abs(msSum-cp.TotalMs) > 1e-9 {
		t.Fatalf("attributed %vms of %vms", msSum, cp.TotalMs)
	}
	// Hand-computed deepest-active attribution for the fixture.
	want := map[string]float64{
		spans.ClassSolve: 10,
		spans.ClassOther: 4.5,
		spans.ClassQueue: 2.5,
		spans.ClassHop:   2,
		spans.ClassFsync: 1,
	}
	for class, ms := range want {
		if math.Abs(share[class]-ms) > 1e-9 {
			t.Fatalf("share[%s] = %v, want %v (all: %+v)", class, share[class], ms, cp.Shares)
		}
	}
}

func TestCriticalPathEmptyTrace(t *testing.T) {
	st := Stitch("0123456789abcdef", nil)
	if cp := st.CriticalPath(); cp.TotalMs != 0 || len(cp.Shares) != 0 {
		t.Fatalf("empty trace critical path = %+v", cp)
	}
	var buf bytes.Buffer
	st.WriteWaterfall(&buf)
	if !strings.Contains(buf.String(), "no spans") {
		t.Fatalf("empty waterfall = %q", buf.String())
	}
}
