package spancollect

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// StitchedSchema identifies the stitched Chrome trace-event export —
// load it in Perfetto / chrome://tracing. One pid per process (sorted,
// so numbering is stable), complete "X" events in microseconds.
const StitchedSchema = "msrnet-stitched-trace/v1"

// WriteChrome renders the stitched trace as a Chrome trace-event JSON
// waterfall: a process_name metadata event per process, then one "X"
// event per span in tree order, each on its process's track. Output is
// deterministic: identical stitched trees render to identical bytes.
func (st *Stitched) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"schema\":%q,\"displayTimeUnit\":\"ms\",\"traceEvents\":[", StitchedSchema)

	pid := map[string]int{}
	for i, p := range st.Processes {
		pid[p] = i + 1
	}
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",")
		}
		first = false
		bw.WriteString("\n")
		bw.WriteString(line)
	}
	for i, p := range st.Processes {
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":1,"args":{"name":%s}}`,
			i+1, quote(p)))
	}
	var base int64
	if r := st.Root(); r >= 0 {
		base = st.Nodes[r].StartNs
	}
	for i := range st.Nodes {
		n := &st.Nodes[i]
		var sb strings.Builder
		fmt.Fprintf(&sb, `{"name":%s,"cat":"span","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":1,"args":{"key":%s`,
			quote(n.Name), us(n.StartNs-base), us(n.DurNs), pid[n.Process], quote(n.Key))
		if n.Parent >= 0 {
			fmt.Fprintf(&sb, `,"parent":%s`, quote(st.Nodes[n.Parent].Key))
		}
		if n.Peer != "" {
			fmt.Fprintf(&sb, `,"peer":%s`, quote(n.Peer))
		}
		if len(n.Attrs) > 0 {
			keys := make([]string, 0, len(n.Attrs))
			for k := range n.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&sb, `,%s:%s`, quote(k), quote(n.Attrs[k]))
			}
		}
		sb.WriteString("}}")
		emit(sb.String())
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// us renders nanoseconds as trace-event microseconds with sub-µs
// precision kept (fixed three decimals, so output is deterministic).
func us(ns int64) string {
	sign := ""
	if ns < 0 {
		sign, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", sign, ns/1000, ns%1000)
}

// quote is a strict JSON string quoter (no HTML escaping surprises).
func quote(s string) string { return strconv.Quote(s) }
