package spancollect

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"msrnet/internal/cluster"
	"msrnet/internal/obs/spans"
)

// Options tunes a collection run.
type Options struct {
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// Now overrides the collector clock (tests).
	Now func() time.Time
}

// Collection is the result of fanning one trace ID out over the fleet:
// every process's export, the per-process clock-offset estimates that
// aligned them, and the stitched tree.
type Collection struct {
	TraceID string
	// Exports holds each responding process's msrnet-spans/v1 body,
	// sorted by process.
	Exports []spans.TraceExport
	// Offsets maps process → its resolved clock offset vs the collector.
	Offsets map[string]OffsetEstimate
	// Stitched is the aligned cross-process span tree.
	Stitched *Stitched
	// Missing lists members that answered but had no spans for the
	// trace, and Errors the members that could not be asked at all.
	Missing []string
	Errors  []string
}

// Collect fans GET /debug/spans/{traceID} out over the member base
// URLs (as discovered by client.NewCluster), estimates each responding
// peer's clock offset — request/response midpoint first, refined by
// gossip heartbeat witnesses from /cluster/members — and stitches the
// per-process spans into one tree. Members that are down or don't know
// the trace are reported, not fatal; only a trace nobody knows is an
// error.
func Collect(ctx context.Context, members []string, traceID string, o Options) (*Collection, error) {
	httpc := o.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	now := o.Now
	if now == nil {
		now = time.Now
	}

	col := &Collection{TraceID: traceID, Offsets: map[string]OffsetEstimate{}}
	probes := map[string]Probe{} // by process
	addrOf := map[string]string{}
	sortedMembers := append([]string(nil), members...)
	sort.Strings(sortedMembers)

	for _, addr := range sortedMembers {
		addr = strings.TrimRight(addr, "/")
		send := now().UnixNano()
		exp, status, err := fetchSpans(ctx, httpc, addr, traceID)
		recv := now().UnixNano()
		switch {
		case err != nil:
			col.Errors = append(col.Errors, fmt.Sprintf("%s: %v", addr, err))
			continue
		case status == http.StatusNotFound:
			col.Missing = append(col.Missing, addr)
			continue
		}
		col.Exports = append(col.Exports, exp)
		probes[exp.Process] = Probe{SendUnixNs: send, RecvUnixNs: recv, PeerUnixNs: exp.WallUnixNs}
		addrOf[exp.Process] = addr
	}
	if len(col.Exports) == 0 {
		detail := ""
		if len(col.Errors) > 0 {
			detail = " (" + strings.Join(col.Errors, "; ") + ")"
		}
		return nil, fmt.Errorf("spancollect: no fleet member has spans for trace %s%s", traceID, detail)
	}
	sort.Slice(col.Exports, func(i, j int) bool { return col.Exports[i].Process < col.Exports[j].Process })

	// Witness refinement: each responding peer's gossip state says when
	// it last HEARD every other member's heartbeat advance, and what
	// wall clock that member stamped into the heartbeat. A witness is
	// only usable once its own offset is directly estimated.
	states := map[string]*cluster.StateBody{}
	for proc, addr := range addrOf {
		if st, err := fetchClusterState(ctx, httpc, addr); err == nil {
			states[proc] = st
		}
	}
	for _, exp := range col.Exports {
		target := exp.Process
		direct := []Probe{probes[target]}
		var ws []WitnessSample
		for wproc, st := range states {
			if wproc == target {
				continue
			}
			wp, ok := probes[wproc]
			if !ok {
				continue
			}
			heard, ok := st.HeardMs[cluster.ID(target)]
			if !ok {
				continue
			}
			var targetWall int64
			for _, m := range st.Members {
				if string(m.ID) == target {
					targetWall = m.WallMs
				}
			}
			if targetWall == 0 || heard == 0 {
				continue
			}
			ws = append(ws, WitnessSample{
				WitnessOffsetNs: wp.OffsetNs(),
				TargetWallMs:    targetWall,
				HeardWallMs:     heard,
			})
		}
		col.Offsets[target] = EstimateOffset(direct, ws)
	}

	procs := make([]ProcessSpans, 0, len(col.Exports))
	for _, exp := range col.Exports {
		procs = append(procs, ProcessSpans{
			Process:  exp.Process,
			OffsetNs: col.Offsets[exp.Process].OffsetNs,
			Spans:    exp.Spans,
		})
	}
	col.Stitched = Stitch(traceID, procs)
	return col, nil
}

// fetchSpans GETs one member's msrnet-spans/v1 export for the trace.
func fetchSpans(ctx context.Context, httpc *http.Client, addr, traceID string) (spans.TraceExport, int, error) {
	var exp spans.TraceExport
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/debug/spans/"+traceID, nil)
	if err != nil {
		return exp, 0, err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return exp, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return exp, http.StatusNotFound, nil
	}
	if resp.StatusCode != http.StatusOK {
		return exp, resp.StatusCode, fmt.Errorf("GET /debug/spans/%s: HTTP %d", traceID, resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&exp); err != nil {
		return exp, resp.StatusCode, fmt.Errorf("decode spans: %w", err)
	}
	if exp.Schema != spans.Schema {
		return exp, resp.StatusCode, fmt.Errorf("spans schema %q, want %q", exp.Schema, spans.Schema)
	}
	return exp, http.StatusOK, nil
}

// fetchClusterState GETs one member's gossip state for witness data;
// clusterless daemons (404) simply contribute no witnesses.
func fetchClusterState(ctx context.Context, httpc *http.Client, addr string) (*cluster.StateBody, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/cluster/members", nil)
	if err != nil {
		return nil, err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("GET /cluster/members: HTTP %d", resp.StatusCode)
	}
	var st cluster.StateBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
