package spancollect

import "testing"

const ms = int64(1e6)

// TestOffsetSymmetricRTT: with symmetric legs the midpoint estimate is
// exact, whatever the peer's skew.
func TestOffsetSymmetricRTT(t *testing.T) {
	for _, skew := range []int64{0, 250 * ms, -3000 * ms, 90_000 * ms} {
		// Collector sends at t=1000ms; each leg takes 10ms; the peer
		// stamps at true time 1010ms, reading its own skewed clock.
		p := Probe{
			SendUnixNs: 1000 * ms,
			RecvUnixNs: 1020 * ms,
			PeerUnixNs: 1010*ms + skew,
		}
		est := EstimateOffset([]Probe{p}, nil)
		if est.OffsetNs != skew {
			t.Fatalf("skew %d: offset = %d, want %d", skew, est.OffsetNs, skew)
		}
		if est.ErrorBoundNs != 10*ms {
			t.Fatalf("skew %d: bound = %d, want %d (RTT/2)", skew, est.ErrorBoundNs, 10*ms)
		}
		if est.Source != SourceDirect {
			t.Fatalf("source = %q, want %q", est.Source, SourceDirect)
		}
	}
}

// TestOffsetAsymmetricRTTBoundedByHalfRTT: however lopsided the two
// legs are, the midpoint estimate errs by at most RTT/2 — the bound the
// witness clamp relies on.
func TestOffsetAsymmetricRTTBoundedByHalfRTT(t *testing.T) {
	const skew = 500 * ms
	cases := []struct{ out, back int64 }{
		{1 * ms, 39 * ms},  // slow return leg
		{39 * ms, 1 * ms},  // slow outbound leg
		{20 * ms, 20 * ms}, // symmetric control
		{0, 40 * ms},       // pathological: all delay on the way back
	}
	for _, c := range cases {
		send := int64(1000 * ms)
		p := Probe{
			SendUnixNs: send,
			RecvUnixNs: send + c.out + c.back,
			PeerUnixNs: send + c.out + skew,
		}
		est := EstimateOffset([]Probe{p}, nil)
		err := est.OffsetNs - skew
		if err < 0 {
			err = -err
		}
		rtt := c.out + c.back
		if err > rtt/2 {
			t.Fatalf("legs (%d,%d): error %d exceeds RTT/2 = %d", c.out, c.back, err, rtt/2)
		}
		if est.ErrorBoundNs != rtt/2 {
			t.Fatalf("legs (%d,%d): reported bound %d, want %d", c.out, c.back, est.ErrorBoundNs, rtt/2)
		}
	}
}

// TestOffsetPicksMinRTTProbe: the tightest probe anchors the estimate.
func TestOffsetPicksMinRTTProbe(t *testing.T) {
	probes := []Probe{
		{SendUnixNs: 0, RecvUnixNs: 100 * ms, PeerUnixNs: 75 * ms},         // rtt 100ms, offset 25ms
		{SendUnixNs: 200 * ms, RecvUnixNs: 204 * ms, PeerUnixNs: 203 * ms}, // rtt 4ms, offset 1ms
		{SendUnixNs: 300 * ms, RecvUnixNs: 290 * ms, PeerUnixNs: 0},        // malformed, skipped
	}
	est := EstimateOffset(probes, nil)
	if est.OffsetNs != 1*ms || est.ErrorBoundNs != 2*ms {
		t.Fatalf("est = %+v, want offset 1ms bound 2ms from the min-RTT probe", est)
	}
}

// TestWitnessRefinementClampsToDirectBand: witness medians adjust the
// estimate only inside the direct probe's ±RTT/2 feasibility band.
func TestWitnessRefinementClampsToDirectBand(t *testing.T) {
	// Direct: offset 10ms, RTT 8ms → band [6ms, 14ms].
	direct := []Probe{{SendUnixNs: 0, RecvUnixNs: 8 * ms, PeerUnixNs: 14 * ms}}

	witAt := func(offNs int64) WitnessSample {
		// Witness with zero own-offset that heard the target's heartbeat
		// instantly: its estimate is exactly offNs.
		return WitnessSample{WitnessOffsetNs: 0, TargetWallMs: 2000 + offNs/ms, HeardWallMs: 2000}
	}

	// Median inside the band: adopted as-is.
	in := EstimateOffset(direct, []WitnessSample{witAt(12 * ms), witAt(11 * ms), witAt(13 * ms)})
	if in.OffsetNs != 12*ms || in.Source != SourceDirectWitness {
		t.Fatalf("in-band refinement = %+v, want offset 12ms", in)
	}

	// Median far below the band (e.g. gossip delay bias): clamped to the
	// band's floor, never trusted past what the direct probe allows.
	low := EstimateOffset(direct, []WitnessSample{witAt(-50 * ms), witAt(-40 * ms), witAt(-60 * ms)})
	if low.OffsetNs != 6*ms {
		t.Fatalf("low refinement = %+v, want clamp to 6ms", low)
	}
	high := EstimateOffset(direct, []WitnessSample{witAt(400 * ms)})
	if high.OffsetNs != 14*ms {
		t.Fatalf("high refinement = %+v, want clamp to 14ms", high)
	}
}

// TestWitnessOnlyAndEmpty: witness median stands alone when the peer
// is unreachable directly; nothing at all yields a tagged zero.
func TestWitnessOnlyAndEmpty(t *testing.T) {
	ws := []WitnessSample{
		{WitnessOffsetNs: 2 * ms, TargetWallMs: 1007, HeardWallMs: 1000},  // 9ms
		{WitnessOffsetNs: 0, TargetWallMs: 1005, HeardWallMs: 1000},       // 5ms
		{WitnessOffsetNs: -1 * ms, TargetWallMs: 1008, HeardWallMs: 1000}, // 7ms
	}
	est := EstimateOffset(nil, ws)
	if est.OffsetNs != 7*ms || est.Source != SourceWitness {
		t.Fatalf("witness-only = %+v, want median 7ms", est)
	}
	if e := EstimateOffset(nil, nil); e.OffsetNs != 0 || e.Source != SourceNone {
		t.Fatalf("empty = %+v, want tagged zero", e)
	}
}

// TestOffsetStableAcrossRefinement: estimation is pure — the same
// inputs always resolve to the same offset, and feeding the refined
// estimate through again cannot move it (the clamp is idempotent).
func TestOffsetStableAcrossRefinement(t *testing.T) {
	direct := []Probe{{SendUnixNs: 0, RecvUnixNs: 6 * ms, PeerUnixNs: 20 * ms}}
	ws := []WitnessSample{
		{WitnessOffsetNs: 1 * ms, TargetWallMs: 5000 + 25, HeardWallMs: 5000},
		{WitnessOffsetNs: -2 * ms, TargetWallMs: 5000 + 12, HeardWallMs: 5000},
	}
	first := EstimateOffset(direct, ws)
	for i := 0; i < 5; i++ {
		if again := EstimateOffset(direct, ws); again != first {
			t.Fatalf("round %d: estimate moved from %+v to %+v", i, first, again)
		}
	}
	// Idempotence of the clamp: an in-band offset re-clamped stays put.
	bound := direct[0].RecvUnixNs / 2
	lo, hi := direct[0].OffsetNs()-bound, direct[0].OffsetNs()+bound
	if re := clamp(first.OffsetNs, lo, hi); re != first.OffsetNs {
		t.Fatalf("refined offset %d moved to %d on re-clamp", first.OffsetNs, re)
	}
}
