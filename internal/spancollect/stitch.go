package spancollect

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"msrnet/internal/obs/spans"
)

// ProcessSpans is one process's contribution to a stitched trace: its
// exported spans plus its resolved clock offset. Subtracting OffsetNs
// from every timestamp lands the spans on the collector's timeline.
type ProcessSpans struct {
	Process  string
	OffsetNs int64
	Spans    []spans.Record
}

// Node is one span in the stitched tree, timestamps already aligned to
// the collector timeline. Parent is an index into Stitched.Nodes (−1
// for roots); Children are indices in deterministic (start, key) order.
type Node struct {
	Key      string // qualified "process#id"
	Process  string
	Name     string
	StartNs  int64
	DurNs    int64
	Peer     string
	Attrs    map[string]string
	Depth    int
	Parent   int
	Children []int
}

// Stitched is the cross-process span tree of one trace. Nodes are in
// deterministic depth-first pre-order (roots by start time, children by
// start time), so rendering it twice — or stitching the same exports
// twice — yields identical bytes.
type Stitched struct {
	TraceID   string
	Processes []string // sorted
	Nodes     []Node
	Roots     []int
}

// Stitch merges per-process span exports into one tree: it qualifies
// every span as "process#id", aligns timestamps by each process's clock
// offset, resolves local and remote parent links, and orders the result
// deterministically. Spans whose parent never arrived (evicted, or a
// process that died before export) surface as extra roots rather than
// disappearing.
func Stitch(traceID string, procs []ProcessSpans) *Stitched {
	sorted := append([]ProcessSpans(nil), procs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Process < sorted[j].Process })

	st := &Stitched{TraceID: traceID}
	byKey := map[string]int{}
	parentKey := make([]string, 0)
	for _, p := range sorted {
		if len(p.Spans) > 0 {
			st.Processes = append(st.Processes, p.Process)
		}
		for _, r := range p.Spans {
			key := spans.Qualify(p.Process, r.ID)
			pk := ""
			if r.Parent != 0 {
				pk = spans.Qualify(p.Process, r.Parent)
			} else if r.ParentRemote != "" {
				pk = r.ParentRemote
			}
			if _, dup := byKey[key]; dup {
				continue
			}
			byKey[key] = len(st.Nodes)
			st.Nodes = append(st.Nodes, Node{
				Key:     key,
				Process: p.Process,
				Name:    r.Name,
				StartNs: r.StartUnixNs - p.OffsetNs,
				DurNs:   r.DurNs,
				Peer:    r.Peer,
				Attrs:   r.Attrs,
				Parent:  -1,
			})
			parentKey = append(parentKey, pk)
		}
	}

	// Resolve parents; a link to a missing span makes a root.
	for i := range st.Nodes {
		if pk := parentKey[i]; pk != "" {
			if pi, ok := byKey[pk]; ok && pi != i {
				st.Nodes[i].Parent = pi
				continue
			}
		}
	}
	for i := range st.Nodes {
		if p := st.Nodes[i].Parent; p >= 0 {
			st.Nodes[p].Children = append(st.Nodes[p].Children, i)
		} else {
			st.Roots = append(st.Roots, i)
		}
	}
	order := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool {
			na, nb := st.Nodes[idx[a]], st.Nodes[idx[b]]
			if na.StartNs != nb.StartNs {
				return na.StartNs < nb.StartNs
			}
			return na.Key < nb.Key
		})
	}
	order(st.Roots)
	for i := range st.Nodes {
		order(st.Nodes[i].Children)
	}

	// Re-number into depth-first pre-order (cycle-guarded: a span caught
	// in a malformed parent cycle is cut loose as a root).
	perm := make([]int, 0, len(st.Nodes))
	seen := make([]bool, len(st.Nodes))
	depth := make([]int, len(st.Nodes))
	var walk func(i, d int)
	walk = func(i, d int) {
		if seen[i] {
			return
		}
		seen[i] = true
		depth[i] = d
		perm = append(perm, i)
		for _, c := range st.Nodes[i].Children {
			walk(c, d+1)
		}
	}
	for _, r := range st.Roots {
		walk(r, 0)
	}
	for i := range st.Nodes {
		if !seen[i] {
			st.Nodes[i].Parent = -1
			st.Roots = append(st.Roots, i)
			walk(i, 0)
		}
	}
	old := st.Nodes
	newIdx := make([]int, len(old))
	for n, o := range perm {
		newIdx[o] = n
	}
	nodes := make([]Node, len(old))
	for n, o := range perm {
		nd := old[o]
		nd.Depth = depth[o]
		if nd.Parent >= 0 {
			nd.Parent = newIdx[nd.Parent]
		}
		kids := make([]int, len(nd.Children))
		for k, c := range nd.Children {
			kids[k] = newIdx[c]
		}
		nd.Children = kids
		nodes[n] = nd
	}
	st.Nodes = nodes
	for i, r := range st.Roots {
		st.Roots[i] = newIdx[r]
	}
	sort.Ints(st.Roots)
	return st
}

// Root returns the primary root (the earliest-starting one — the
// client-facing submit), or −1 for an empty trace.
func (st *Stitched) Root() int {
	if len(st.Roots) == 0 {
		return -1
	}
	best := st.Roots[0]
	for _, r := range st.Roots[1:] {
		if st.Nodes[r].StartNs < st.Nodes[best].StartNs ||
			(st.Nodes[r].StartNs == st.Nodes[best].StartNs && st.Nodes[r].Key < st.Nodes[best].Key) {
			best = r
		}
	}
	return best
}

// ClassShare is one segment of the critical-path report.
type ClassShare struct {
	Class string  `json:"class"`
	Ms    float64 `json:"ms"`
	Pct   float64 `json:"pct"`
}

// CriticalPath attributes every instant of the trace's end-to-end
// window to exactly one segment class and names the dominant one.
// Percentages therefore sum to 100% of the root span's duration, within
// float rounding, no matter how spans nest or overlap.
type CriticalPath struct {
	TotalMs  float64      `json:"total_ms"`
	Dominant string       `json:"dominant"`
	Shares   []ClassShare `json:"shares"`
}

// CriticalPath sweeps the primary root's window and attributes each
// elementary interval to the deepest span active there (ties: the
// latest-starting, then lexically greatest key — deterministic), then
// buckets by ClassOf. "Deepest active" is what makes the report answer
// "what was the trace actually DOING": a solve instant counts as solve
// even though the submit root also covers it.
func (st *Stitched) CriticalPath() CriticalPath {
	root := st.Root()
	if root < 0 || st.Nodes[root].DurNs <= 0 {
		return CriticalPath{}
	}
	w0 := st.Nodes[root].StartNs
	w1 := w0 + st.Nodes[root].DurNs

	type ival struct {
		s, e  int64
		depth int
		start int64
		key   string
		class string
	}
	var ivs []ival
	cuts := []int64{w0, w1}
	for i := range st.Nodes {
		n := &st.Nodes[i]
		s, e := n.StartNs, n.StartNs+n.DurNs
		if s < w0 {
			s = w0
		}
		if e > w1 {
			e = w1
		}
		if e <= s {
			continue
		}
		ivs = append(ivs, ival{s: s, e: e, depth: n.Depth, start: n.StartNs, key: n.Key, class: spans.ClassOf(n.Name)})
		cuts = append(cuts, s, e)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

	byClass := map[string]int64{}
	for i := 0; i+1 < len(cuts); i++ {
		a, b := cuts[i], cuts[i+1]
		if b <= a {
			continue
		}
		var win *ival
		for j := range ivs {
			v := &ivs[j]
			if v.s > a || v.e < b {
				continue
			}
			if win == nil || v.depth > win.depth ||
				(v.depth == win.depth && (v.start > win.start ||
					(v.start == win.start && v.key > win.key))) {
				win = v
			}
		}
		if win != nil {
			byClass[win.class] += b - a
		}
	}

	cp := CriticalPath{TotalMs: float64(w1-w0) / 1e6}
	for class, ns := range byClass {
		cp.Shares = append(cp.Shares, ClassShare{
			Class: class,
			Ms:    float64(ns) / 1e6,
			Pct:   float64(ns) / float64(w1-w0) * 100,
		})
	}
	sort.Slice(cp.Shares, func(i, j int) bool {
		if cp.Shares[i].Ms != cp.Shares[j].Ms {
			return cp.Shares[i].Ms > cp.Shares[j].Ms
		}
		return cp.Shares[i].Class < cp.Shares[j].Class
	})
	if len(cp.Shares) > 0 {
		cp.Dominant = cp.Shares[0].Class
	}
	return cp
}

// Write renders the critical-path report as text.
func (cp CriticalPath) Write(w io.Writer) {
	if cp.TotalMs == 0 {
		fmt.Fprintln(w, "critical path: (empty trace)")
		return
	}
	fmt.Fprintf(w, "critical path over %.3fms end-to-end (dominant: %s)\n", cp.TotalMs, cp.Dominant)
	for _, s := range cp.Shares {
		fmt.Fprintf(w, "  %-13s %6.1f%%  %10.3fms\n", s.Class, s.Pct, s.Ms)
	}
}

// waterfallBarWidth is the character width of the timeline bars.
const waterfallBarWidth = 32

// WriteWaterfall renders the stitched tree as a text waterfall: one
// line per span in tree order, indented by depth, with a bar placing it
// inside the primary root's window.
func (st *Stitched) WriteWaterfall(w io.Writer) {
	root := st.Root()
	if root < 0 {
		fmt.Fprintf(w, "trace %s: no spans\n", st.TraceID)
		return
	}
	w0 := st.Nodes[root].StartNs
	total := st.Nodes[root].DurNs
	fmt.Fprintf(w, "trace %s  e2e %.3fms  processes: %s\n",
		st.TraceID, float64(total)/1e6, strings.Join(st.Processes, ", "))
	for i := range st.Nodes {
		n := &st.Nodes[i]
		label := strings.Repeat("  ", n.Depth) + n.Name
		if n.Peer != "" {
			label += " →" + n.Peer
		}
		fmt.Fprintf(w, "  %10.3fms %9.3fms  |%s|  %-40s %s\n",
			float64(n.StartNs-w0)/1e6, float64(n.DurNs)/1e6,
			bar(n.StartNs-w0, n.DurNs, total), label, n.Process)
	}
}

// bar draws a span's position within the root window.
func bar(off, dur, total int64) string {
	cells := make([]byte, waterfallBarWidth)
	for i := range cells {
		cells[i] = ' '
	}
	if total <= 0 {
		return string(cells)
	}
	lo := int(off * waterfallBarWidth / total)
	hi := int((off + dur) * waterfallBarWidth / total)
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		hi = lo + 1
	}
	if hi > waterfallBarWidth {
		hi = waterfallBarWidth
	}
	if lo >= waterfallBarWidth {
		lo = waterfallBarWidth - 1
	}
	for i := lo; i < hi; i++ {
		cells[i] = '#'
	}
	return string(cells)
}
