package spancollect

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"msrnet/internal/obs/spans"
)

// TestCollectFansOutAndAligns drives the collector against two fake
// daemons whose clocks disagree: the spans come back on one timeline
// and the stitched tree crosses the processes.
func TestCollectFansOutAndAligns(t *testing.T) {
	const traceID = "0123456789abcdef"
	base := time.Unix(1700000000, 0)
	var ticks int64
	now := func() time.Time {
		n := atomic.AddInt64(&ticks, 1)
		return base.Add(time.Duration(n) * time.Millisecond)
	}

	// Fake members: node-a on the collector's clock, node-b 50ms fast.
	// WallUnixNs is stamped far enough out to cover any probe midpoint
	// the fake clock produces (each probe's mid is within a few ms of
	// base), so the estimated offsets are ~0 and ~+50ms.
	mkServer := func(process string, skewNs int64) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /debug/spans/"+traceID, func(w http.ResponseWriter, r *http.Request) {
			var recs []spans.Record
			if process == "node-a" {
				recs = []spans.Record{
					{ID: 1, Name: "submit", StartUnixNs: base.UnixNano() + skewNs, DurNs: 30 * ms},
					{ID: 2, Parent: 1, Name: "forward", StartUnixNs: base.UnixNano() + skewNs + 5*ms, DurNs: 20 * ms, Peer: "node-b"},
				}
			} else {
				recs = []spans.Record{
					{ID: 1, ParentRemote: "node-a#2", Name: "submit", StartUnixNs: base.UnixNano() + skewNs + 8*ms, DurNs: 14 * ms},
					{ID: 2, Parent: 1, Name: "solve", StartUnixNs: base.UnixNano() + skewNs + 9*ms, DurNs: 13 * ms},
				}
			}
			json.NewEncoder(w).Encode(spans.TraceExport{
				Schema: spans.Schema, TraceID: traceID, Process: process,
				WallUnixNs: now().UnixNano() + skewNs, Spans: recs,
			})
		})
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			http.NotFound(w, r)
		})
		return httptest.NewServer(mux)
	}
	sa := mkServer("node-a", 0)
	defer sa.Close()
	sb := mkServer("node-b", 50*ms)
	defer sb.Close()
	// A dead member and one that never saw the trace must not break
	// collection.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	empty := httptest.NewServer(http.NotFoundHandler())
	defer empty.Close()

	col, err := Collect(context.Background(),
		[]string{sa.URL, sb.URL, dead.URL, empty.URL}, traceID, Options{Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Exports) != 2 {
		t.Fatalf("collected %d exports, want 2", len(col.Exports))
	}
	if len(col.Missing) != 1 || len(col.Errors) != 1 {
		t.Fatalf("missing=%v errors=%v, want one of each", col.Missing, col.Errors)
	}
	// node-b's offset must recover most of the +50ms skew (the fake
	// clock adds a few ms of probe latency noise, bounded by RTT/2).
	offB := col.Offsets["node-b"].OffsetNs
	if offB < 40*ms || offB > 60*ms {
		t.Fatalf("node-b offset = %dns, want ≈ +50ms", offB)
	}
	if src := col.Offsets["node-b"].Source; src != SourceDirect {
		t.Fatalf("node-b offset source = %q, want direct (no gossip witnesses here)", src)
	}

	st := col.Stitched
	if len(st.Roots) != 1 {
		t.Fatalf("stitched roots = %v, want one", st.Roots)
	}
	var remote *Node
	for i := range st.Nodes {
		if st.Nodes[i].Key == "node-b#1" {
			remote = &st.Nodes[i]
		}
	}
	if remote == nil || remote.Parent < 0 || st.Nodes[remote.Parent].Key != "node-a#2" {
		t.Fatalf("node-b's submit should hang under node-a's forward: %+v", remote)
	}
	// After alignment the remote span starts ≈8ms into the trace, not
	// 58ms: the skew correction pulled it back inside the hop window.
	rel := remote.StartNs - st.Nodes[st.Root()].StartNs
	if rel < 0 || rel > 20*ms {
		t.Fatalf("aligned remote start %dns into trace; skew was not corrected", rel)
	}
	if cp := st.CriticalPath(); cp.Dominant != spans.ClassSolve {
		t.Fatalf("dominant = %q, want solve: %+v", cp.Dominant, cp.Shares)
	}
}

// TestCollectNoSpansAnywhere: a trace nobody knows is an error naming
// the trace.
func TestCollectNoSpansAnywhere(t *testing.T) {
	empty := httptest.NewServer(http.NotFoundHandler())
	defer empty.Close()
	_, err := Collect(context.Background(), []string{empty.URL}, "feedfacefeedface", Options{})
	if err == nil || !strings.Contains(err.Error(), "feedfacefeedface") {
		t.Fatalf("err = %v, want trace-not-found", err)
	}
}
