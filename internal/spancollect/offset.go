// Package spancollect turns per-process msrnet-spans/v1 exports into
// one fleet-wide answer: it estimates each peer's clock offset against
// the collector (request/response midpoint, refined by gossip heartbeat
// witnesses), shifts every process's spans onto the collector's
// timeline, stitches the cross-process parent links into a single span
// tree, and reports both a Perfetto-ready waterfall and the critical
// path — which segment (queue, solve, fsync, hop, remote cache)
// dominated a trace's end-to-end time. See DESIGN.md §15.
package spancollect

import "sort"

// Probe is one request/response clock sounding against a peer: the
// collector's clock at send and receive bracket the peer's clock
// reading carried in the response (TraceExport.WallUnixNs). Under the
// classic NTP midpoint assumption — the peer stamped roughly halfway
// through the round trip — the peer-minus-collector offset is
// PeerUnixNs − (SendUnixNs+RecvUnixNs)/2, and however asymmetric the
// two legs really were, the true offset lies within ±RTT/2 of it.
type Probe struct {
	SendUnixNs int64 `json:"send_unix_ns"`
	RecvUnixNs int64 `json:"recv_unix_ns"`
	PeerUnixNs int64 `json:"peer_unix_ns"`
}

// OffsetNs is the midpoint estimate of (peer clock − collector clock).
func (p Probe) OffsetNs() int64 {
	return p.PeerUnixNs - (p.SendUnixNs+p.RecvUnixNs)/2
}

// RTTNs is the probe's round-trip time; the midpoint estimate's error
// bound is half of it.
func (p Probe) RTTNs() int64 { return p.RecvUnixNs - p.SendUnixNs }

// WitnessSample refines a target peer's offset through a third party:
// witness W gossips that it last saw target T's heartbeat advance at
// W-wall HeardWallMs, and T stamped that heartbeat with its own wall
// clock TargetWallMs (cluster.Info.WallMs / StateBody.HeardMs). With
// W's own offset θ_W already estimated, the event happened at collector
// time ≈ HeardWallMs·1e6 − θ_W, so θ_T ≈ TargetWallMs·1e6 − (that).
// The estimate runs low by the gossip propagation delay, which is why
// witness medians only ever refine WITHIN the direct probe's ±RTT/2
// feasibility band, never override it.
type WitnessSample struct {
	// WitnessOffsetNs is the witness's own estimated offset vs the
	// collector (from its direct probe).
	WitnessOffsetNs int64 `json:"witness_offset_ns"`
	// TargetWallMs is the target's wall clock stamped into the heartbeat
	// the witness saw (cluster.Info.WallMs as gossiped to the witness).
	TargetWallMs int64 `json:"target_wall_ms"`
	// HeardWallMs is the witness's wall clock when that heartbeat
	// advance arrived (cluster.StateBody.HeardMs[target]).
	HeardWallMs int64 `json:"heard_wall_ms"`
}

// OffsetNs is the witness's estimate of (target clock − collector
// clock).
func (w WitnessSample) OffsetNs() int64 {
	return w.TargetWallMs*1e6 - (w.HeardWallMs*1e6 - w.WitnessOffsetNs)
}

// Offset estimate provenance.
const (
	SourceNone          = "none"
	SourceDirect        = "direct"
	SourceWitness       = "witness"
	SourceDirectWitness = "direct+witness"
)

// OffsetEstimate is one peer's resolved clock offset: subtract OffsetNs
// from that peer's span timestamps to land them on the collector's
// timeline. ErrorBoundNs is the provable half-RTT bound when a direct
// probe contributed (0 means unknown, not perfect).
type OffsetEstimate struct {
	OffsetNs     int64  `json:"offset_ns"`
	ErrorBoundNs int64  `json:"error_bound_ns,omitempty"`
	Source       string `json:"source"`
}

// EstimateOffset resolves a peer's clock offset from its direct probes
// and any gossip witnesses. The minimum-RTT probe anchors the estimate
// (its midpoint has the tightest ±RTT/2 bound); the witness median then
// refines it, clamped into the anchor's feasibility band. With no
// direct probe the witness median stands alone; with nothing at all the
// offset is zero and Source says so. The function is pure, so repeated
// refinement with the same inputs is stable by construction.
func EstimateOffset(direct []Probe, witnesses []WitnessSample) OffsetEstimate {
	best, ok := bestProbe(direct)
	med, nw := witnessMedian(witnesses)
	switch {
	case !ok && nw == 0:
		return OffsetEstimate{Source: SourceNone}
	case !ok:
		return OffsetEstimate{OffsetNs: med, Source: SourceWitness}
	case nw == 0:
		return OffsetEstimate{OffsetNs: best.OffsetNs(), ErrorBoundNs: best.RTTNs() / 2, Source: SourceDirect}
	}
	bound := best.RTTNs() / 2
	off := clamp(med, best.OffsetNs()-bound, best.OffsetNs()+bound)
	return OffsetEstimate{OffsetNs: off, ErrorBoundNs: bound, Source: SourceDirectWitness}
}

// bestProbe picks the minimum-RTT probe, skipping malformed ones
// (non-positive RTT: clock went backwards mid-probe).
func bestProbe(ps []Probe) (Probe, bool) {
	var best Probe
	found := false
	for _, p := range ps {
		if p.RTTNs() <= 0 {
			continue
		}
		if !found || p.RTTNs() < best.RTTNs() {
			best, found = p, true
		}
	}
	return best, found
}

// witnessMedian is the median witness offset (lower of the two middles
// for even counts, so the result is always an actual sample).
func witnessMedian(ws []WitnessSample) (int64, int) {
	if len(ws) == 0 {
		return 0, 0
	}
	offs := make([]int64, len(ws))
	for i, w := range ws {
		offs[i] = w.OffsetNs()
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	return offs[(len(offs)-1)/2], len(offs)
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
