package faultinject

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"msrnet/internal/obs"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Fire(context.Background(), "svc/worker"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if in.Active() != 0 {
		t.Fatal("nil injector reports active faults")
	}
}

func TestConfigureAndFire(t *testing.T) {
	in := New(1, nil)
	if err := in.Configure("svc/cache/get:error:1;svc/worker:latency:25ms"); err != nil {
		t.Fatal(err)
	}
	if in.Active() != 2 {
		t.Fatalf("Active = %d, want 2", in.Active())
	}
	err := in.Fire(context.Background(), "svc/cache/get")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error fault: %v", err)
	}
	if !strings.Contains(err.Error(), "svc/cache/get") {
		t.Fatalf("error does not name the point: %v", err)
	}
	// Unconfigured point: nothing fires.
	if err := in.Fire(context.Background(), "svc/queue"); err != nil {
		t.Fatalf("unconfigured point fired: %v", err)
	}
	// Latency sleeps roughly the configured time.
	start := time.Now()
	if err := in.Fire(context.Background(), "svc/worker"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency fault slept only %v", d)
	}
	// Reconfiguring with an empty spec clears everything.
	if err := in.Configure(""); err != nil {
		t.Fatal(err)
	}
	if in.Active() != 0 {
		t.Fatal("clear did not drop faults")
	}
	if err := in.Fire(context.Background(), "svc/cache/get"); err != nil {
		t.Fatalf("cleared injector fired: %v", err)
	}
}

func TestLatencyHonorsContext(t *testing.T) {
	in := New(1, nil)
	if err := in.Configure("p:latency:10s"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := in.Fire(ctx, "p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("latency ignored context: slept %v", d)
	}
}

func TestPanicMode(t *testing.T) {
	in := New(1, nil)
	if err := in.Configure("p:panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("panic fault did not panic")
		}
	}()
	in.Fire(context.Background(), "p")
}

func TestProbabilityIsSeededAndRoughlyCalibrated(t *testing.T) {
	count := func(seed int64) int {
		in := New(seed, nil)
		if err := in.Configure("p:error:0.3"); err != nil {
			t.Fatal(err)
		}
		n := 0
		for i := 0; i < 1000; i++ {
			if in.Fire(context.Background(), "p") != nil {
				n++
			}
		}
		return n
	}
	a, b := count(42), count(42)
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	if a < 200 || a > 400 {
		t.Fatalf("p=0.3 fired %d/1000", a)
	}
}

func TestSpecErrors(t *testing.T) {
	in := New(1, nil)
	for _, bad := range []string{
		"justapoint",
		"p:teleport",
		"p:error:1.5",
		"p:error:x",
		"p:latency",
		"p:latency:0.5:notadur",
		"p:latency:-5ms",
		":error",
	} {
		if err := in.Configure(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	// A failed Configure leaves the previous set active.
	if err := in.Configure("p:error:1"); err != nil {
		t.Fatal(err)
	}
	if err := in.Configure("p:bogus"); err == nil {
		t.Fatal("bad reconfigure accepted")
	}
	if !errors.Is(in.Fire(context.Background(), "p"), ErrInjected) {
		t.Fatal("failed reconfigure clobbered the active set")
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvFaults, "")
	in, err := FromEnv(nil)
	if err != nil || in != nil {
		t.Fatalf("empty env: in=%v err=%v", in, err)
	}
	t.Setenv(EnvFaults, "p:error:1")
	t.Setenv(EnvSeed, "7")
	in, err = FromEnv(obs.New())
	if err != nil || in == nil || in.Active() != 1 {
		t.Fatalf("FromEnv: in=%v err=%v", in, err)
	}
	t.Setenv(EnvSeed, "notanumber")
	if _, err := FromEnv(nil); err == nil {
		t.Fatal("bad seed accepted")
	}
	t.Setenv(EnvSeed, "")
	t.Setenv(EnvFaults, "p:bogus")
	if _, err := FromEnv(nil); err == nil {
		t.Fatal("bad spec accepted")
	}
}
