// Package faultinject is a seedable, registry-instrumented fault
// injector for chaos testing the serving layer. Code under test calls
// Fire(ctx, point) at named injection points; an injector configured
// with a fault spec then probabilistically returns errors, sleeps, or
// panics there. A nil *Injector is inert and free, so production paths
// keep their injection points permanently wired.
//
// A spec is a semicolon-separated list of faults, each
//
//	point:mode[:probability][:duration]
//
// where mode is "error", "panic", "latency" or "shortwrite". The probability
// defaults to 1; latency requires a trailing Go duration. Multiple
// faults may target the same point — all are evaluated, in spec order:
//
//	svc/worker:latency:1:200ms;svc/worker:panic:0.2;svc/cache/get:error:0.5
//
// Draws come from a per-fault RNG deterministically derived from the
// injector seed and the fault's position, so a given seed replays the
// same decision sequence at each point (up to goroutine interleaving).
// Every evaluation and outcome feeds the fault/* counters.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"msrnet/internal/obs"
)

// Modes a fault can take.
const (
	ModeError   = "error"
	ModeLatency = "latency"
	ModePanic   = "panic"
	// ModeShortWrite is a storage-flavoured error: Fire returns an error
	// wrapping both ErrInjected and ErrShortWrite, and the code under
	// test is expected to leave a torn artifact behind (internal/jobstore
	// writes half a WAL frame before failing, simulating a crash
	// mid-write). Points that do not special-case it treat it as a plain
	// injected error.
	ModeShortWrite = "shortwrite"
)

// Env variables read by FromEnv.
const (
	EnvFaults = "MSRNET_FAULTS"
	EnvSeed   = "MSRNET_FAULT_SEED"
)

// ErrInjected is the sentinel wrapped by every injected error; test
// with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrShortWrite is additionally wrapped by shortwrite-mode faults, so
// storage layers can distinguish "fail cleanly" from "fail leaving a
// torn record behind" (errors.Is against both sentinels holds).
var ErrShortWrite = errors.New("faultinject: injected short write")

// fault is one parsed spec entry.
type fault struct {
	point string
	mode  string
	prob  float64
	delay time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// Injector evaluates configured faults at named points. The zero of
// *Injector (nil) never fires. All methods are safe for concurrent
// use; Configure atomically replaces the active fault set.
type Injector struct {
	seed int64

	mu     sync.Mutex
	byPt   map[string][]*fault
	nSpecs int

	fired, injErr, injPanic, injDelay *obs.Counter
}

// New builds an injector with no active faults. The registry may be
// nil; seed determines every probabilistic decision.
func New(seed int64, reg *obs.Registry) *Injector {
	return &Injector{
		seed:     seed,
		byPt:     map[string][]*fault{},
		fired:    reg.Counter("fault/evaluations"),
		injErr:   reg.Counter("fault/errors_injected"),
		injPanic: reg.Counter("fault/panics_injected"),
		injDelay: reg.Counter("fault/latency_injected"),
	}
}

// FromEnv builds an injector from MSRNET_FAULTS and MSRNET_FAULT_SEED.
// Returns nil (inert) when MSRNET_FAULTS is unset or empty — the
// normal production state.
func FromEnv(reg *obs.Registry) (*Injector, error) {
	spec := os.Getenv(EnvFaults)
	if spec == "" {
		return nil, nil
	}
	var seed int64 = 1
	if s := os.Getenv(EnvSeed); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad %s %q: %w", EnvSeed, s, err)
		}
		seed = v
	}
	in := New(seed, reg)
	if err := in.Configure(spec); err != nil {
		return nil, err
	}
	return in, nil
}

// Configure parses spec and atomically replaces the active fault set.
// An empty spec clears every fault. On a parse error the previous set
// stays active.
func (in *Injector) Configure(spec string) error {
	byPt := map[string][]*fault{}
	n := 0
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := parseFault(part)
		if err != nil {
			return err
		}
		// Derive the fault RNG from the injector seed and the fault's
		// spec position so reconfiguration replays deterministically.
		f.rng = rand.New(rand.NewSource(in.seed + int64(n)*int64(1e9)))
		byPt[f.point] = append(byPt[f.point], f)
		n++
	}
	in.mu.Lock()
	in.byPt = byPt
	in.nSpecs = n
	in.mu.Unlock()
	return nil
}

// parseFault parses one point:mode[:prob][:duration] entry.
func parseFault(s string) (*fault, error) {
	fields := strings.Split(s, ":")
	if len(fields) < 2 {
		return nil, fmt.Errorf("faultinject: %q needs at least point:mode", s)
	}
	f := &fault{point: fields[0], mode: fields[1], prob: 1}
	if f.point == "" {
		return nil, fmt.Errorf("faultinject: %q has an empty point", s)
	}
	rest := fields[2:]
	switch f.mode {
	case ModeError, ModePanic, ModeShortWrite:
		if len(rest) > 1 {
			return nil, fmt.Errorf("faultinject: %q: %s takes at most a probability", s, f.mode)
		}
		if len(rest) == 1 {
			if err := f.setProb(rest[0]); err != nil {
				return nil, fmt.Errorf("faultinject: %q: %w", s, err)
			}
		}
	case ModeLatency:
		switch len(rest) {
		case 1: // latency:<dur>
			rest = []string{"1", rest[0]}
		case 2: // latency:<prob>:<dur>
		default:
			return nil, fmt.Errorf("faultinject: %q: latency takes [prob:]duration", s)
		}
		if err := f.setProb(rest[0]); err != nil {
			return nil, fmt.Errorf("faultinject: %q: %w", s, err)
		}
		d, err := time.ParseDuration(rest[1])
		if err != nil || d < 0 {
			return nil, fmt.Errorf("faultinject: %q: bad duration %q", s, rest[1])
		}
		f.delay = d
	default:
		return nil, fmt.Errorf("faultinject: %q: unknown mode %q (want error, latency, panic or shortwrite)", s, f.mode)
	}
	return f, nil
}

func (f *fault) setProb(s string) error {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil || p < 0 || p > 1 {
		return fmt.Errorf("bad probability %q (want [0,1])", s)
	}
	f.prob = p
	return nil
}

// hit draws the fault's coin.
func (f *fault) hit() bool {
	if f.prob >= 1 {
		return true
	}
	if f.prob <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64() < f.prob
}

// Fire evaluates every fault configured at point, in spec order:
// latency sleeps (bounded by ctx), error returns a wrapped
// ErrInjected, panic panics. Nil injectors and unconfigured points
// return nil immediately.
func (in *Injector) Fire(ctx context.Context, point string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	faults := in.byPt[point]
	in.mu.Unlock()
	if len(faults) == 0 {
		return nil
	}
	in.fired.Inc()
	for _, f := range faults {
		if !f.hit() {
			continue
		}
		switch f.mode {
		case ModeLatency:
			in.injDelay.Inc()
			t := time.NewTimer(f.delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			}
		case ModeError:
			in.injErr.Inc()
			return fmt.Errorf("%w at %s", ErrInjected, point)
		case ModeShortWrite:
			in.injErr.Inc()
			return fmt.Errorf("%w: %w at %s", ErrInjected, ErrShortWrite, point)
		case ModePanic:
			in.injPanic.Inc()
			panic(fmt.Sprintf("faultinject: injected panic at %s", point))
		}
	}
	return nil
}

// Active reports the number of configured faults — zero on a nil
// injector.
func (in *Injector) Active() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.nSpecs
}
