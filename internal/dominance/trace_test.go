package dominance

import (
	"math/rand"
	"testing"

	"msrnet/internal/obs/trace"
)

// TestMinimaTracing: with a tracer installed, each top-level minima
// call records one slice with points/survivors args, and the KLP
// recursion's small-case fallbacks record instants with their depth.
func TestMinimaTracing(t *testing.T) {
	tcr := trace.New(1 << 12)
	SetTracer(tcr)
	defer SetTracer(nil)

	r := rand.New(rand.NewSource(9))
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{r.Float64(), r.Float64(), r.Float64()}
	}
	surv := Minima3D(pts, 0)

	var minima, fallbacks int
	for _, ev := range tcr.Events() {
		switch ev.Name {
		case "dominance/minima3d":
			minima++
			args := map[string]int64{}
			for i := 0; i < int(ev.NArgs); i++ {
				args[ev.Args[i].Key] = ev.Args[i].Val
			}
			if args["points"] != 200 || args["survivors"] != int64(len(surv)) {
				t.Errorf("minima3d args = %v, want points=200 survivors=%d", args, len(surv))
			}
		case "dominance/fallback":
			fallbacks++
			if ev.NArgs != 1 || ev.Args[0].Key != "depth" || ev.Args[0].Val < 1 {
				t.Errorf("fallback args = %+v", ev.Args[:ev.NArgs])
			}
		}
	}
	if minima != 1 {
		t.Errorf("minima3d slices = %d, want 1", minima)
	}
	if fallbacks == 0 {
		t.Error("KLP recursion recorded no fallback instants on 200 points")
	}

	// After removal, calls record nothing further.
	SetTracer(nil)
	before := tcr.Total()
	Minima2D(pts[:10], 0)
	if tcr.Total() != before {
		t.Error("removed tracer still recording")
	}
}
