package dominance

import (
	"math/rand"
	"testing"

	"msrnet/internal/obs"
)

func randPts(r *rand.Rand, n, d int, dupProb float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		if i > 0 && r.Float64() < dupProb {
			// Exact duplicate of an earlier point.
			cp := make(Point, d)
			copy(cp, pts[r.Intn(i)])
			pts[i] = cp
			continue
		}
		p := make(Point, d)
		for k := range p {
			p[k] = float64(r.Intn(50)) // small grid: plenty of ties
		}
		pts[i] = p
	}
	return pts
}

func sameIndexSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMinima2DAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		pts := randPts(r, 1+r.Intn(60), 2, 0.2)
		want := MinimaNaive(pts, 0)
		got := Minima2D(pts, 0)
		if !sameIndexSet(got, want) {
			t.Fatalf("trial %d: got %v, want %v\npts=%v", trial, got, want, pts)
		}
	}
}

func TestMinima3DAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		pts := randPts(r, 1+r.Intn(80), 3, 0.15)
		want := MinimaNaive(pts, 0)
		got := Minima3D(pts, 0)
		if !sameIndexSet(got, want) {
			t.Fatalf("trial %d: got %v, want %v\npts=%v", trial, got, want, pts)
		}
	}
}

func TestMinimaKDAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		d := 2 + r.Intn(4) // dimensions 2..5
		pts := randPts(r, 1+r.Intn(60), d, 0.1)
		want := MinimaNaive(pts, 0)
		got := MinimaKD(pts, 0)
		if !sameIndexSet(got, want) {
			t.Fatalf("trial %d (d=%d): got %v, want %v", trial, d, got, want)
		}
	}
}

func TestMinimaProperties(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		pts := randPts(r, 2+r.Intn(50), 3, 0.1)
		surv := Minima3D(pts, 0)
		inSurv := map[int]bool{}
		for _, i := range surv {
			inSurv[i] = true
		}
		// No survivor dominates another survivor.
		for _, i := range surv {
			for _, j := range surv {
				if i != j && dominates(pts[i], pts[j], 0) {
					t.Fatalf("survivor %d dominates survivor %d", i, j)
				}
			}
		}
		// Every eliminated point is dominated by (or duplicates) a survivor.
		for i := range pts {
			if inSurv[i] {
				continue
			}
			covered := false
			for _, j := range surv {
				if dominates(pts[j], pts[i], 0) || equal(pts[j], pts[i], 0) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("eliminated point %d not covered by any survivor", i)
			}
		}
	}
}

func TestSinglePointAndEmpty(t *testing.T) {
	if got := MinimaKD(nil, 0); got != nil {
		t.Errorf("empty: %v", got)
	}
	one := []Point{{1, 2}}
	if got := Minima2D(one, 0); len(got) != 1 || got[0] != 0 {
		t.Errorf("single 2d: %v", got)
	}
	if got := Minima3D([]Point{{1, 2, 3}}, 0); len(got) != 1 {
		t.Errorf("single 3d: %v", got)
	}
}

func TestKnownFrontier2D(t *testing.T) {
	pts := []Point{
		{1, 5}, // frontier
		{2, 3}, // frontier
		{3, 3}, // dominated by {2,3}
		{4, 1}, // frontier
		{4, 1}, // duplicate (earliest kept)
		{0, 9}, // frontier
		{5, 5}, // dominated
	}
	got := Minima2D(pts, 0)
	want := []int{0, 1, 3, 5}
	if !sameIndexSet(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestEpsTolerance(t *testing.T) {
	// With eps = 0.5, {1.1, 1.1} is treated as a duplicate of {1, 1}.
	pts := []Point{{1, 1}, {1.1, 1.1}}
	got := Minima2D(pts, 0.5)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("eps duplicate handling: %v", got)
	}
	// With eps = 0 both survive... no: {1,1} dominates {1.1,1.1} strictly.
	got0 := Minima2D(pts, 0)
	if len(got0) != 1 || got0[0] != 0 {
		t.Errorf("strict dominance handling: %v", got0)
	}
}

func BenchmarkMinima3D(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	pts := randPts(r, 2000, 3, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Minima3D(pts, 0)
	}
}

func BenchmarkMinimaNaive3D(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	pts := randPts(r, 2000, 3, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinimaNaive(pts, 0)
	}
}

// TestObserverMetrics checks the instrumentation hook: recursion depth,
// small-case fallbacks and call counts must be recorded when an observer
// is installed, and removing it must stop recording.
func TestObserverMetrics(t *testing.T) {
	reg := obs.New()
	SetObserver(reg)
	defer SetObserver(nil)

	r := rand.New(rand.NewSource(17))
	pts := randPts(r, 500, 3, 0)
	Minima3D(pts, 0)
	snap := reg.Snapshot()
	if snap.Counters["dominance/calls"] == 0 {
		t.Error("calls counter not recorded")
	}
	if snap.Counters["dominance/small_case_fallbacks"] == 0 {
		t.Error("small-case fallbacks not recorded")
	}
	// 500 points halving to ≤8 needs at least ceil(log2(500/8)) levels
	// below the root.
	if got := snap.Gauges["dominance/max_depth"]; got < 6 {
		t.Errorf("max depth = %d, want ≥ 6", got)
	}

	// KD path (4-D) records too.
	pts4 := randPts(r, 300, 4, 0)
	MinimaKD(pts4, 0)
	if got := reg.Snapshot().Counters["dominance/calls"]; got < 2 {
		t.Errorf("calls after KD = %d, want ≥ 2", got)
	}

	SetObserver(nil)
	before := reg.Snapshot().Counters["dominance/calls"]
	Minima3D(pts, 0)
	if got := reg.Snapshot().Counters["dominance/calls"]; got != before {
		t.Errorf("observer removal ignored: %d → %d", before, got)
	}
}
