// Package dominance solves the minima (Pareto) problem for point sets:
// given points in d dimensions where smaller is better in every
// coordinate, find the subset not dominated by any other point. This is
// the classical maxima-of-vectors problem of Kung, Luccio and Preparata
// (JACM 1975), which the paper cites as the foundation of solution
// pruning in multidimensional dynamic programming (§IV-D).
//
// The package provides the O(n log n) sort-and-scan algorithm for two
// dimensions, the KLP divide-and-conquer for three, and a general
// divide-and-conquer for arbitrary dimension, together with a quadratic
// reference implementation used in tests. The optimizer uses Minima2D
// for (cost, ARD) suite extraction; the functional (per-c_E) pruning in
// package core generalizes the same idea to PWL-valued coordinates.
package dominance

import (
	"sort"
	"sync/atomic"

	"msrnet/internal/obs"
	"msrnet/internal/obs/trace"
)

// domInstr caches the metric handles so the recursive hot paths pay one
// atomic pointer load when instrumentation is off.
type domInstr struct {
	calls     *obs.Counter
	fallbacks *obs.Counter
	maxDepth  *obs.Gauge
}

var instr atomic.Pointer[domInstr]

// SetObserver installs (or, with nil, removes) the package's
// instrumentation sink. The package records the divide-and-conquer
// recursion depth ("dominance/max_depth"), the number of small-case
// quadratic fallbacks ("dominance/small_case_fallbacks") and total
// minima calls ("dominance/calls"). Package-level because the classical
// minima routines are free functions; the metrics themselves are atomic,
// so concurrent callers are safe.
func SetObserver(r obs.Recorder) {
	if r == nil {
		instr.Store(nil)
		return
	}
	instr.Store(&domInstr{
		calls:     r.Counter("dominance/calls"),
		fallbacks: r.Counter("dominance/small_case_fallbacks"),
		maxDepth:  r.Gauge("dominance/max_depth"),
	})
}

var tracer atomic.Pointer[trace.Tracer]

// SetTracer installs (or, with nil, removes) the package's timeline
// tracer. Each top-level minima call records one "dominance/minima*"
// slice (args: input points, surviving points) and each small-case
// fallback inside the divide-and-conquer recursion records an instant
// event with its depth, so a Perfetto view shows where pruning time
// goes as the KLP recursion unwinds. Package-level for the same reason
// as SetObserver: the minima routines are free functions.
func SetTracer(t *trace.Tracer) { tracer.Store(t) }

// begin opens a trace region for one top-level minima call; the nil
// receiver path keeps uninstrumented callers at one atomic load.
func begin(name string) trace.Region {
	return tracer.Load().Begin(name, "dominance")
}

func endMinima(rg trace.Region, points, survivors int) {
	rg.End(trace.I("points", points), trace.I("survivors", survivors))
}

func noteCall() *domInstr {
	in := instr.Load()
	if in != nil {
		in.calls.Inc()
	}
	return in
}

func (in *domInstr) noteDepth(depth int) {
	if in != nil {
		in.maxDepth.SetMax(int64(depth))
	}
}

func (in *domInstr) noteFallback(depth int) {
	if in != nil {
		in.fallbacks.Inc()
	}
	tracer.Load().Instant("dominance/fallback", "dominance", trace.I("depth", depth))
}

// Point is a d-dimensional point; smaller is better in every coordinate.
type Point []float64

// dominates reports whether a ≤ b component-wise with a strict
// inequality somewhere (given tolerance eps in each coordinate).
func dominates(a, b Point, eps float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i]+eps {
			return false
		}
		if a[i] < b[i]-eps {
			strict = true
		}
	}
	return strict
}

// MinimaNaive returns the indices of the non-dominated points by
// quadratic pairwise comparison. Exact ties are resolved by keeping the
// earliest index. It is the reference oracle for the fast algorithms.
func MinimaNaive(pts []Point, eps float64) []int {
	noteCall()
	rg := begin("dominance/minima_naive")
	var out []int
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if dominates(q, p, eps) {
				dominated = true
				break
			}
			// Exact duplicate: keep the earliest.
			if j < i && equal(q, p, eps) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	endMinima(rg, len(pts), len(out))
	return out
}

func equal(a, b Point, eps float64) bool {
	for i := range a {
		if a[i] > b[i]+eps || a[i] < b[i]-eps {
			return false
		}
	}
	return true
}

// Minima2D returns the indices of the non-dominated points of a
// two-dimensional set in O(n log n): sort by the first coordinate
// (breaking ties by the second, then by index) and sweep, keeping points
// that strictly improve the best second coordinate seen.
func Minima2D(pts []Point, eps float64) []int {
	noteCall()
	rg := begin("dominance/minima2d")
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa[0] != pb[0] {
			return pa[0] < pb[0]
		}
		if pa[1] != pb[1] {
			return pa[1] < pb[1]
		}
		return idx[a] < idx[b]
	})
	var out []int
	bestY := 0.0
	first := true
	lastX := 0.0
	for _, i := range idx {
		p := pts[i]
		if first {
			out = append(out, i)
			bestY = p[1]
			lastX = p[0]
			first = false
			continue
		}
		if p[0] <= lastX+eps && p[1] >= bestY-eps {
			// Same x (within eps) but no better y: dominated or duplicate.
			continue
		}
		if p[1] < bestY-eps {
			out = append(out, i)
			bestY = p[1]
			lastX = p[0]
		}
	}
	sort.Ints(out)
	endMinima(rg, len(pts), len(out))
	return out
}

// Minima3D returns the indices of the non-dominated points of a
// three-dimensional set by the KLP divide-and-conquer: sort by the first
// coordinate, recursively solve each half, then discard from the
// high half every point dominated in (y, z) by the staircase of the low
// half.
func Minima3D(pts []Point, eps float64) []int {
	in := noteCall()
	rg := begin("dominance/minima3d")
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		for k := 0; k < 3; k++ {
			if pa[k] != pb[k] {
				return pa[k] < pb[k]
			}
		}
		return idx[a] < idx[b]
	})
	surv := minima3Rec(pts, idx, eps, 1, in)
	sort.Ints(surv)
	endMinima(rg, len(pts), len(surv))
	return surv
}

func minima3Rec(pts []Point, idx []int, eps float64, depth int, in *domInstr) []int {
	in.noteDepth(depth)
	if len(idx) <= 1 {
		return append([]int(nil), idx...)
	}
	if len(idx) <= 8 {
		in.noteFallback(depth)
		return smallMinima(pts, idx, eps)
	}
	mid := len(idx) / 2
	low := minima3Rec(pts, idx[:mid], eps, depth+1, in)
	high := minima3Rec(pts, idx[mid:], eps, depth+1, in)
	// Points in `high` have x ≥ every x in `low` (by sort order), so a
	// high point survives only if no low point dominates it in (y, z).
	// Build the (y → min z) staircase of the low survivors.
	stair := make([][2]float64, 0, len(low))
	for _, i := range low {
		stair = append(stair, [2]float64{pts[i][1], pts[i][2]})
	}
	sort.Slice(stair, func(a, b int) bool { return stair[a][0] < stair[b][0] })
	// prefix-min of z over increasing y
	for i := 1; i < len(stair); i++ {
		if stair[i-1][1] < stair[i][1] {
			stair[i][1] = stair[i-1][1]
		}
	}
	out := low
	for _, i := range high {
		p := pts[i]
		// Find the largest y in the staircase with y ≤ p[1]+eps.
		k := sort.Search(len(stair), func(j int) bool { return stair[j][0] > p[1]+eps })
		dominatedByLow := false
		if k > 0 && stair[k-1][1] <= p[2]+eps {
			// Some low point has y ≤ p.y and z ≤ p.z; since its x ≤ p.x
			// too, check strictness: the KLP split guarantees x strictly
			// less OR equal; treat equality conservatively via direct
			// scan over low survivors only when values tie everywhere.
			dominatedByLow = true
			if stair[k-1][1] >= p[2]-eps {
				dominatedByLow = false
				for _, j := range low {
					if dominates(pts[j], p, eps) || equal(pts[j], p, eps) {
						dominatedByLow = true
						break
					}
				}
			}
		}
		if !dominatedByLow {
			out = append(out, i)
		}
	}
	return out
}

func smallMinima(pts []Point, idx []int, eps float64) []int {
	var out []int
	for ai, i := range idx {
		dominated := false
		for bi, j := range idx {
			if ai == bi {
				continue
			}
			if dominates(pts[j], pts[i], eps) {
				dominated = true
				break
			}
			if bi < ai && equal(pts[j], pts[i], eps) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// MinimaKD returns the indices of the non-dominated points in any
// dimension by divide-and-conquer on the first coordinate with naive
// cross-filtering — O(n log n) when the frontier is small, O(n²) worst
// case, always correct.
func MinimaKD(pts []Point, eps float64) []int {
	if len(pts) == 0 {
		return nil
	}
	switch len(pts[0]) {
	case 2:
		return Minima2D(pts, eps)
	case 3:
		return Minima3D(pts, eps)
	}
	in := noteCall()
	rg := begin("dominance/minima_kd")
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		for k := range pa {
			if pa[k] != pb[k] {
				return pa[k] < pb[k]
			}
		}
		return idx[a] < idx[b]
	})
	surv := kdRec(pts, idx, eps, 1, in)
	sort.Ints(surv)
	endMinima(rg, len(pts), len(surv))
	return surv
}

func kdRec(pts []Point, idx []int, eps float64, depth int, in *domInstr) []int {
	in.noteDepth(depth)
	if len(idx) <= 16 {
		in.noteFallback(depth)
		return smallMinima(pts, idx, eps)
	}
	mid := len(idx) / 2
	low := kdRec(pts, idx[:mid], eps, depth+1, in)
	high := kdRec(pts, idx[mid:], eps, depth+1, in)
	out := low
	for _, i := range high {
		dominated := false
		for _, j := range low {
			if dominates(pts[j], pts[i], eps) || equal(pts[j], pts[i], eps) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}
