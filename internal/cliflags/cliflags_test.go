package cliflags

import (
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parse(t *testing.T, caps Caps, args ...string) *Set {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	s := Register(fs, caps)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRegistryOnlyWhenAsked(t *testing.T) {
	s := parse(t, Caps{})
	run, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if run.Reg != nil {
		t.Fatal("registry created with no observability flags set")
	}
	if run.Recorder() != nil {
		t.Fatal("Recorder must be untyped nil when the registry is nil")
	}
}

func TestAlwaysRegistry(t *testing.T) {
	s := parse(t, Caps{AlwaysRegistry: true})
	run, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if run.Reg == nil {
		t.Fatal("AlwaysRegistry did not create a registry")
	}
}

func TestCapsGateOptionalFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	Register(fs, Caps{})
	for _, name := range []string{"trace-events", "listen"} {
		if fs.Lookup(name) != nil {
			t.Fatalf("-%s registered without its capability", name)
		}
	}
	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	Register(fs, Caps{TraceEvents: true, Listen: true})
	for _, name := range []string{"metrics", "trace", "trace-events", "listen", "cpuprofile", "memprofile"} {
		if fs.Lookup(name) == nil {
			t.Fatalf("-%s missing with full capabilities", name)
		}
	}
}

func TestMetricsFileAndListenEndpoint(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "m.json")
	s := parse(t, Caps{Listen: true}, "-metrics", mpath, "-listen", "127.0.0.1:0")
	run, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	if run.Reg == nil {
		t.Fatal("-metrics must create a registry")
	}
	run.Reg.Counter("cliflags/test").Inc()
	sp := run.Reg.StartSpan("cliflags/phase")
	sp.End()

	resp, err := http.Get("http://" + run.srv.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "cliflags/test") {
		t.Fatalf("metrics snapshot missing counter: %s", b)
	}
}
