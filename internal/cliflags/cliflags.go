// Package cliflags factors the observability flag set shared by every
// command in this repository — -metrics, -trace, -trace-events,
// -listen, -cpuprofile, -memprofile — into one helper, so the flags
// keep identical names, help text and shutdown ordering everywhere
// (msri, ardcalc, experiments, netgen, synth, msrnetd).
//
// Usage:
//
//	obsFlags := cliflags.Register(flag.CommandLine, cliflags.Caps{TraceEvents: true, Listen: true})
//	flag.Parse()
//	run, err := obsFlags.Start()   // CPU profile, registry, tracer, -listen endpoint
//	if err != nil { ... }
//	defer func() {
//		if err := run.Close(); err != nil { ... }   // flush metrics/trace/memprofile
//	}()
//	reg, rec := run.Reg, run.Recorder()
//
// Start and Close mirror the lifecycle the commands previously open-
// coded: Start begins the CPU profile, creates the registry only when
// some consumer (-metrics/-trace/-listen, or Caps.AlwaysRegistry) needs
// it — a nil registry keeps the instrumented hot paths allocation-free —
// and opens the live export endpoint; Close stops the profile, prints
// the -trace report, and writes the -metrics, -trace-events and
// -memprofile files, in that order.
package cliflags

import (
	"flag"
	"fmt"
	"os"

	"msrnet/internal/obs"
	"msrnet/internal/obs/export"
	trc "msrnet/internal/obs/trace"
	"msrnet/internal/validate"
)

// Caps selects which optional flags a command exposes. Every command
// gets -metrics, -trace, -cpuprofile and -memprofile; -trace-events and
// -listen are opt-in because only the commands whose pipelines emit
// timeline events (msri, experiments) or run long enough to scrape
// (msri, experiments, msrnetd) register them.
type Caps struct {
	// TraceEvents adds -trace-events (Chrome trace-event JSON timeline).
	TraceEvents bool
	// Listen adds -listen (live /metrics, /debug/vars, /debug/pprof,
	// /healthz endpoint for the duration of the run).
	Listen bool
	// AlwaysRegistry makes Start create a registry even when no
	// observability flag is set — for daemons whose serving metrics must
	// exist regardless (msrnetd).
	AlwaysRegistry bool
	// AlwaysTracer makes Start create the ring tracer even without a
	// -trace-events file — for daemons that serve the live ring over
	// HTTP (GET /debug/trace) and only optionally dump it at exit.
	AlwaysTracer bool
}

// Set holds the parsed flag values. Fields are pointers into the
// FlagSet; read them only after FlagSet.Parse.
type Set struct {
	caps     Caps
	metrics  *string
	trace    *bool
	traceEvs *string
	listen   *string
	cpuProf  *string
	memProf  *string
}

// Register installs the observability flags selected by caps on fs
// (flag.CommandLine in the commands) and returns the Set to Start after
// parsing.
func Register(fs *flag.FlagSet, caps Caps) *Set {
	s := &Set{caps: caps}
	s.metrics = fs.String("metrics", "", "write a JSON metrics snapshot (phase spans, counters, histograms) to this file")
	s.trace = fs.Bool("trace", false, "print the phase-span/metrics report to stderr on exit")
	if caps.TraceEvents {
		s.traceEvs = fs.String("trace-events", "", "write a Chrome trace-event JSON timeline (Perfetto-loadable) to this file")
	}
	if caps.Listen {
		s.listen = fs.String("listen", "", "serve /metrics, /debug/vars, /debug/pprof and /healthz on this address for the duration of the run")
	}
	s.cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
	s.memProf = fs.String("memprofile", "", "write a heap profile to this file")
	return s
}

// Run is the live observability state of one command invocation.
type Run struct {
	// Reg is the metrics registry, or nil when no flag asked for one
	// (and Caps.AlwaysRegistry is off). Nil is a valid Recorder sink.
	Reg *obs.Registry
	// Tracer is the ring tracer behind -trace-events, or nil.
	Tracer *trc.Tracer

	set     *Set
	srv     *export.Server
	stopCPU func()
}

// Start begins the CPU profile, creates the registry and tracer as
// demanded by the parsed flags, and opens the -listen endpoint. The
// caller must Close the returned Run.
func (s *Set) Start() (*Run, error) {
	stopCPU, err := obs.StartCPUProfile(*s.cpuProf)
	if err != nil {
		return nil, err
	}
	r := &Run{set: s, stopCPU: stopCPU}
	if *s.metrics != "" || *s.trace || s.listenAddr() != "" || s.caps.AlwaysRegistry {
		r.Reg = obs.New()
	}
	if (s.traceEvs != nil && *s.traceEvs != "") || s.caps.AlwaysTracer {
		r.Tracer = trc.New(0)
	}
	if addr := s.listenAddr(); addr != "" {
		srv, err := export.Serve(addr, r.Reg, nil)
		if err != nil {
			stopCPU()
			return nil, err
		}
		r.srv = srv
	}
	return r, nil
}

func (s *Set) listenAddr() string {
	if s.listen == nil {
		return ""
	}
	return *s.listen
}

// Recorder converts the possibly-nil registry into a Recorder without
// producing a typed-nil interface surprise at call sites that compare
// against nil.
func (r *Run) Recorder() obs.Recorder {
	if r.Reg == nil {
		return nil
	}
	return r.Reg
}

// Close flushes everything in the order the commands relied on: stop
// the CPU profile, print the -trace report, write the -metrics
// snapshot, the -trace-events timeline and the -memprofile heap dump,
// then shut the -listen endpoint. The first error wins but every step
// still runs.
func (r *Run) Close() error {
	r.stopCPU()
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if *r.set.trace {
		fmt.Fprint(os.Stderr, r.Reg.Snapshot().Text())
	}
	keep(r.Reg.WriteMetricsFile(*r.set.metrics))
	if r.set.traceEvs != nil {
		keep(r.Tracer.WriteFile(*r.set.traceEvs))
	}
	keep(obs.WriteMemProfile(*r.set.memProf))
	if r.srv != nil {
		keep(r.srv.Close())
	}
	return first
}

// Fatal prints err the way every command in this repository reports a
// terminal failure — "tool: message", plus the msrnet-error/v1
// taxonomy code in brackets when the error carries one, so scripted
// callers can branch on the code without parsing prose — and exits 1.
func Fatal(tool string, err error) {
	if code := validate.CodeOf(err); code != "" {
		fmt.Fprintf(os.Stderr, "%s: %v [%s]\n", tool, err, code)
	} else {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	}
	os.Exit(1)
}
