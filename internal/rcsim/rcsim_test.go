package rcsim

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"msrnet/internal/buslib"
	"msrnet/internal/geom"
	"msrnet/internal/rctree"
	"msrnet/internal/testnet"
	"msrnet/internal/topo"
)

// TestSingleRCLump: a driver charging one lumped capacitor crosses 50% at
// t = RC·ln2 (plus intrinsic). Built as a zero-length wire to a single
// terminal.
func TestSingleRCLump(t *testing.T) {
	tr := topo.New()
	ta := buslib.Terminal{Name: "a", IsSource: true, IsSink: true,
		Cin: 0.2, Rout: 1.0, DriverIntrinsic: 0.0}
	tb := buslib.Terminal{Name: "b", IsSink: true, Cin: 0.2}
	a := tr.AddTerminal(geom.Pt(0, 0), ta)
	b := tr.AddTerminal(geom.Pt(0, 0), tb)
	tr.AddEdge(a, b, 0)
	tech := buslib.Tech{Wire: buslib.Wire{ResPerUm: 1e-4, CapPerUm: 1e-4}}
	n := rctree.NewNet(tr.RootAt(a), tech, rctree.Assignment{})
	got, err := Delays(n, a, Options{DT: 1e-4, TMax: 10})
	if err != nil {
		t.Fatal(err)
	}
	// R = 1 kΩ, C = 0.4 pF total → τ = 0.4 ns; t50 = τ·ln2 ≈ 0.2773.
	want := 0.4 * math.Ln2
	if math.Abs(got[a]-want) > 0.01*want {
		t.Errorf("t50 at a = %g, want ≈ %g", got[a], want)
	}
	if math.Abs(got[b]-want) > 0.02*want {
		t.Errorf("t50 at b = %g, want ≈ %g", got[b], want)
	}
}

// TestElmoreIsUpperBoundish: for RC trees the Elmore delay is an upper
// bound on the 50% delay (Gupta et al.); allow 2% numerical slack.
func TestElmoreUpperBound(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		cfg := testnet.DefaultConfig()
		cfg.Backbone = 2 + r.Intn(4)
		cfg.InsSpacing = 0
		tr := testnet.RandTree(r, cfg)
		tech := testnet.RandTech(r, 0, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		n := rctree.NewNet(rt, tech, rctree.Assignment{})
		s := tr.Sources()[0]
		elm := n.DelaysFrom(s)
		sim, err := Delays(n, s, Options{DT: 2e-3, TMax: 100})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range tr.Sinks() {
			if v == s {
				continue
			}
			if math.IsInf(sim[v], 1) {
				t.Fatalf("trial %d: node %d never crossed", trial, v)
			}
			if sim[v] > elm[v]*1.02+1e-3 {
				t.Fatalf("trial %d: sim %g > elmore %g at node %d", trial, sim[v], elm[v], v)
			}
			// And not absurdly optimistic either (ln2 lower bound for
			// the far-field; allow generous floor).
			if sim[v] < 0.2*elm[v]-1e-3 {
				t.Fatalf("trial %d: sim %g ≪ elmore %g at node %d", trial, sim[v], elm[v], v)
			}
		}
	}
}

// TestRankCorrelation: Elmore ordering of sink delays should largely agree
// with simulated ordering.
func TestRankCorrelation(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	cfg := testnet.DefaultConfig()
	cfg.Backbone = 8
	cfg.InsSpacing = 0
	tr := testnet.RandTree(r, cfg)
	tech := testnet.RandTech(r, 0, 0)
	rt := tr.RootAt(testnet.RootTerminal(tr))
	n := rctree.NewNet(rt, tech, rctree.Assignment{})
	s := tr.Sources()[0]
	elm := n.DelaysFrom(s)
	sim, err := Delays(n, s, Options{DT: 2e-3, TMax: 100})
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ e, s float64 }
	var ps []pair
	for _, v := range tr.Sinks() {
		if v != s {
			ps = append(ps, pair{elm[v], sim[v]})
		}
	}
	if len(ps) < 3 {
		t.Skip("too few sinks")
	}
	// Count concordant pairs.
	conc, tot := 0, 0
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			tot++
			if (ps[i].e-ps[j].e)*(ps[i].s-ps[j].s) >= 0 {
				conc++
			}
		}
	}
	if float64(conc) < 0.8*float64(tot) {
		t.Errorf("rank agreement %d/%d too low", conc, tot)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].e < ps[j].e })
}

// TestWithRepeater: staging through a repeater works and speeds up a long
// line, matching the Elmore conclusion qualitatively.
func TestWithRepeater(t *testing.T) {
	mk := func(withRep bool) float64 {
		tr := topo.New()
		ta := buslib.DefaultTerminal("a")
		tb := buslib.DefaultTerminal("b")
		a := tr.AddTerminal(geom.Pt(0, 0), ta)
		b := tr.AddTerminal(geom.Pt(8000, 0), tb)
		e := tr.AddEdge(a, b, 8000)
		mid := tr.SplitEdge(e, 0.5, topo.Insertion)
		tech := buslib.Default()
		asg := rctree.Assignment{}
		if withRep {
			asg.Repeaters = map[int]rctree.Placed{
				mid: {Rep: tech.Repeaters[0], ASideUp: true},
			}
		}
		n := rctree.NewNet(tr.RootAt(a), tech, asg)
		sim, err := Delays(n, a, Options{DT: 1e-3, TMax: 100})
		if err != nil {
			t.Fatal(err)
		}
		return sim[b]
	}
	plain := mk(false)
	buffered := mk(true)
	if math.IsInf(plain, 1) || math.IsInf(buffered, 1) {
		t.Fatal("no crossing")
	}
	if buffered >= plain {
		t.Errorf("repeater did not help in simulation: %g vs %g", buffered, plain)
	}
}

// TestRepeaterStagingMatchesElmoreShape: simulated delay through a
// repeater should stay within a sane band of the Elmore value.
func TestRepeaterStagingBand(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		cfg := testnet.DefaultConfig()
		cfg.Backbone = 3
		tr := testnet.RandTree(r, cfg)
		tech := testnet.RandTech(r, 1, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		asg := testnet.RandAssignment(r, rt, tech, 0.5)
		n := rctree.NewNet(rt, tech, asg)
		s := tr.Sources()[0]
		elm := n.DelaysFrom(s)
		sim, err := Delays(n, s, Options{DT: 2e-3, TMax: 200})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range tr.Sinks() {
			if v == s || math.IsInf(sim[v], 1) {
				continue
			}
			if sim[v] > elm[v]*1.05+1e-2 {
				t.Fatalf("trial %d node %d: sim %g vs elmore %g", trial, v, sim[v], elm[v])
			}
		}
	}
}

// TestErrors rejects non-source launches.
func TestErrors(t *testing.T) {
	tr := topo.New()
	ta := buslib.DefaultTerminal("a")
	tb := buslib.DefaultTerminal("b")
	tb.IsSource = false
	a := tr.AddTerminal(geom.Pt(0, 0), ta)
	b := tr.AddTerminal(geom.Pt(100, 0), tb)
	tr.AddEdge(a, b, 100)
	n := rctree.NewNet(tr.RootAt(a), buslib.Default(), rctree.Assignment{})
	if _, err := Delays(n, b, Options{}); err == nil {
		t.Error("expected error for non-source")
	}
}

// TestDistributedLine50Percent: the 50% delay of a distributed RC line
// driven by an ideal (very strong) source is ≈ 0.38·R·C — a classical
// closed form. Model the line as many π segments and check convergence.
func TestDistributedLine50Percent(t *testing.T) {
	tr := topo.New()
	drv := buslib.Terminal{Name: "drv", IsSource: true,
		Cin: 0, Rout: 1e-4, DriverIntrinsic: 0} // near-ideal source
	end := buslib.Terminal{Name: "end", IsSink: true, Cin: 0}
	a := tr.AddTerminal(geom.Pt(0, 0), drv)
	b := tr.AddTerminal(geom.Pt(10000, 0), end)
	tr.AddEdge(a, b, 10000)
	// Split into 32 segments for a good distributed approximation.
	tr.PlaceInsertionPoints(10000.0/32 + 1)
	tech := buslib.Tech{Wire: buslib.Wire{ResPerUm: 1e-4, CapPerUm: 2e-4}}
	n := rctree.NewNet(tr.RootAt(a), tech, rctree.Assignment{})
	sim, err := Delays(n, a, Options{DT: 5e-4, TMax: 20})
	if err != nil {
		t.Fatal(err)
	}
	R := tech.Wire.Res(10000) // 1 kΩ
	C := tech.Wire.Cap(10000) // 2 pF
	want := 0.38 * R * C      // ≈ 0.76 ns
	if math.Abs(sim[b]-want) > 0.06*want {
		t.Errorf("distributed line t50 = %g ns, want ≈ %g (0.38RC)", sim[b], want)
	}
	// And the Elmore value for the same structure is ≈ RC/2, the other
	// classical constant.
	elm := n.DelaysFrom(a)
	if math.Abs(elm[b]-0.5*R*C) > 0.06*0.5*R*C {
		t.Errorf("distributed line Elmore = %g ns, want ≈ %g (RC/2)", elm[b], 0.5*R*C)
	}
}
