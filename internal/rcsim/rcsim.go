// Package rcsim is a transient simulator for repeater-annotated RC trees.
// It provides an independent, physics-level check on the Elmore metric
// used throughout the optimizer: wires are π-segments, drivers and
// repeaters are resistive switches with intrinsic delay, and node
// voltages are integrated by backward Euler with an O(n) tree solver.
// Stage boundaries (repeaters) are handled event-style: a repeater's
// output stage launches when its input crosses the 50% threshold, offset
// by the repeater's intrinsic delay — mirroring the staging structure of
// the Elmore model so the two are directly comparable.
//
// This substrate is not part of the paper; DESIGN.md lists it as a
// validation layer (Elmore 50% delays are expected to be close to, and
// correlated with, simulated 50% delays).
package rcsim

import (
	"fmt"
	"math"

	"msrnet/internal/rctree"
	"msrnet/internal/topo"
)

// Options controls integration.
type Options struct {
	// DT is the time step in ns. Default 1e-3.
	DT float64
	// TMax is the simulation horizon per stage in ns. Default 50.
	TMax float64
	// Threshold is the switching threshold as a fraction of the rail.
	// Default 0.5 (the standard 50% delay point).
	Threshold float64
}

func (o Options) withDefaults() Options {
	if o.DT <= 0 {
		o.DT = 1e-3
	}
	if o.TMax <= 0 {
		o.TMax = 50
	}
	if o.Threshold <= 0 || o.Threshold >= 1 {
		o.Threshold = 0.5
	}
	return o
}

// Delays simulates a rising transition launched by source terminal s and
// returns the 50% (or Threshold) crossing time at every node, in ns,
// measured from the switch of s's driver input and including the driver's
// intrinsic delay — the same reference as rctree.DelaysFrom, so the two
// are directly comparable. Nodes that never cross within TMax get +Inf.
func Delays(n *rctree.Net, s int, opt Options) ([]float64, error) {
	opt = opt.withDefaults()
	t := n.R.Tree
	nd := t.Node(s)
	if nd.Kind != topo.Terminal || !nd.Term.IsSource {
		return nil, fmt.Errorf("rcsim: node %d is not a source terminal", s)
	}
	out := make([]float64, t.NumNodes())
	for i := range out {
		out[i] = math.Inf(1)
	}
	rout, intr := driverAt(n, s)
	// Simulate the source stage, then recurse through repeaters.
	type launch struct {
		at     int     // node where the driving resistor connects
		from   int     // neighbor to exclude (-1 for source stage)
		rDrv   float64 // driving resistance
		t0     float64 // absolute launch time
		isRoot bool
	}
	queue := []launch{{at: s, from: -1, rDrv: rout, t0: intr}}
	for len(queue) > 0 {
		l := queue[0]
		queue = queue[1:]
		cross, members, boundaries := simulateStage(n, l.at, l.from, l.rDrv, opt)
		for _, m := range members {
			tm := cross[m]
			if math.IsInf(tm, 1) {
				continue
			}
			abs := l.t0 + tm
			if abs < out[m] {
				out[m] = abs
			}
		}
		for _, b := range boundaries {
			tm := cross[b.node]
			if math.IsInf(tm, 1) {
				continue
			}
			pl := n.Assign.Repeaters[b.node]
			var d, r float64
			if b.fromParentSide {
				d, r = pl.DownDelay()
			} else {
				d, r = pl.UpDelay()
			}
			queue = append(queue, launch{
				at:   b.node,
				from: b.from,
				rDrv: r,
				t0:   l.t0 + tm + d,
			})
		}
	}
	return out, nil
}

type boundary struct {
	node           int // repeater node reached
	from           int // node we reached it from
	fromParentSide bool
}

// simulateStage integrates one RC stage: the region reachable from
// `entry` without passing `exclude` and without crossing repeaters. The
// driver is a unit step behind rDrv connected at entry. Returns crossing
// times (relative to the stage launch), the member nodes and the boundary
// repeaters reached.
func simulateStage(n *rctree.Net, entry, exclude int, rDrv float64, opt Options) (map[int]float64, []int, []boundary) {
	t := n.R.Tree
	// Flood the stage.
	type edgeRec struct{ a, b, eid int }
	var members []int
	var edges []edgeRec
	var bounds []boundary
	seen := map[int]bool{entry: true}
	if exclude >= 0 {
		seen[exclude] = true
	}
	stack := []int{entry}
	members = append(members, entry)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range t.Incident(v) {
			u := t.Edge(eid).Other(v)
			if seen[u] {
				continue
			}
			seen[u] = true
			edges = append(edges, edgeRec{a: v, b: u, eid: eid})
			if _, ok := n.Assign.Repeaters[u]; ok {
				members = append(members, u)
				bounds = append(bounds, boundary{
					node: u, from: v,
					fromParentSide: n.R.Parent[u] == v,
				})
				continue // do not cross
			}
			members = append(members, u)
			stack = append(stack, u)
		}
	}
	// Build the stage circuit: local indices.
	idx := make(map[int]int, len(members))
	for i, m := range members {
		idx[m] = i
	}
	k := len(members)
	capv := make([]float64, k)
	for i, m := range members {
		nd := t.Node(m)
		if nd.Kind == topo.Terminal {
			capv[i] += nd.Term.Cin
		}
		if pl, ok := n.Assign.Repeaters[m]; ok {
			// Boundary repeater input capacitance on the facing side.
			var c float64
			for _, b := range bounds {
				if b.node == m {
					if b.fromParentSide {
						c = pl.CapUpSide()
					} else {
						c = pl.CapDownSide()
					}
				}
			}
			capv[i] += c
		}
	}
	// π-model: each wire contributes half its cap to both endpoints and a
	// resistor between them. Zero-resistance wires get a tiny resistance
	// to keep the system well-posed.
	type res struct {
		a, b int
		g    float64
	}
	rs := make([]res, 0, len(edges))
	for _, e := range edges {
		c := n.EdgeCap(e.eid)
		capv[idx[e.a]] += c / 2
		capv[idx[e.b]] += c / 2
		r := n.EdgeRes(e.eid)
		if r <= 0 {
			r = 1e-9
		}
		rs = append(rs, res{a: idx[e.a], b: idx[e.b], g: 1 / r})
	}
	if rDrv <= 0 {
		rDrv = 1e-9
	}
	gDrv := 1 / rDrv

	// Tree solver setup: the stage is a tree; root it at entry.
	parent := make([]int, k)
	pg := make([]float64, k) // conductance to parent
	for i := range parent {
		parent[i] = -1
	}
	adj := make([][]res, k)
	for _, r := range rs {
		adj[r.a] = append(adj[r.a], r)
		adj[r.b] = append(adj[r.b], res{a: r.b, b: r.a, g: r.g})
	}
	order := make([]int, 0, k) // pre-order
	visited := make([]bool, k)
	st2 := []int{idx[entry]}
	visited[idx[entry]] = true
	for len(st2) > 0 {
		v := st2[len(st2)-1]
		st2 = st2[:len(st2)-1]
		order = append(order, v)
		for _, r := range adj[v] {
			if !visited[r.b] {
				visited[r.b] = true
				parent[r.b] = v
				pg[r.b] = r.g
				st2 = append(st2, r.b)
			}
		}
	}

	// Backward Euler: (C/dt + G) v' = C/dt v + b, where G is the
	// conductance Laplacian plus gDrv at the entry, b = gDrv·1 at entry.
	dt := opt.DT
	// Some capacitances can be zero (bare Steiner node with zero-length
	// wires); give them a tiny value for stability.
	for i := range capv {
		if capv[i] <= 0 {
			capv[i] = 1e-9
		}
	}
	baseDiag := make([]float64, k)
	for i := range baseDiag {
		baseDiag[i] = capv[i] / dt
	}
	for _, r := range rs {
		baseDiag[r.a] += r.g
		baseDiag[r.b] += r.g
	}
	baseDiag[idx[entry]] += gDrv

	v := make([]float64, k)
	cross := make(map[int]float64, k)
	diag := make([]float64, k)
	rhs := make([]float64, k)
	thr := opt.Threshold
	prev := make([]float64, k)
	steps := int(opt.TMax / dt)
	for step := 1; step <= steps; step++ {
		copy(prev, v)
		copy(diag, baseDiag)
		for i := range rhs {
			rhs[i] = capv[i] / dt * v[i]
		}
		rhs[idx[entry]] += gDrv
		// Eliminate in reverse pre-order (children before parents).
		for i := k - 1; i >= 1; i-- {
			c := order[i]
			p := parent[c]
			f := pg[c] / diag[c]
			diag[p] -= f * pg[c]
			rhs[p] += f * rhs[c]
		}
		// Back-substitute in pre-order.
		rt := order[0]
		v[rt] = rhs[rt] / diag[rt]
		for i := 1; i < k; i++ {
			c := order[i]
			v[c] = (rhs[c] + pg[c]*v[parent[c]]) / diag[c]
		}
		// Record threshold crossings with linear interpolation.
		tNow := float64(step) * dt
		done := true
		for i, m := range members {
			if _, ok := cross[m]; ok {
				continue
			}
			if v[i] >= thr {
				frac := 0.0
				if v[i] > prev[i] {
					frac = (thr - prev[i]) / (v[i] - prev[i])
				}
				cross[m] = tNow - dt + frac*dt
			} else {
				done = false
			}
		}
		if done {
			break
		}
	}
	out := make(map[int]float64, k)
	for _, m := range members {
		if c, ok := cross[m]; ok {
			out[m] = c
		} else {
			out[m] = math.Inf(1)
		}
	}
	return out, members, bounds
}

func driverAt(n *rctree.Net, s int) (rout, intr float64) {
	term := n.R.Tree.Node(s).Term
	if d, ok := n.Assign.Drivers[s]; ok {
		return d.Rout, d.Intrinsic
	}
	return term.Rout, term.DriverIntrinsic
}
