package rcsim

import (
	"math"
	"math/rand"
	"testing"

	"msrnet/internal/buslib"
	"msrnet/internal/rctree"
	"msrnet/internal/testnet"
	"msrnet/internal/topo"
)

// TestScaledElmoreTracksSimulation validates the alternative delay
// measure of buslib.ScaledRC: Elmore with RC products scaled by ln 2
// should predict the simulated 50% delays much more closely than raw
// Elmore on distributed RC trees, while raw Elmore stays a safe upper
// bound — the standard calibration argument, and a concrete instance of
// the paper's remark that the ARD machinery is delay-measure agnostic.
func TestScaledElmoreTracksSimulation(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var rawErr, scaledErr float64
	samples := 0
	for trial := 0; trial < 16; trial++ {
		cfg := testnet.DefaultConfig()
		cfg.Backbone = 2 + r.Intn(4)
		cfg.InsSpacing = 0
		tr := testnet.RandTree(r, cfg)
		tech := testnet.RandTech(r, 0, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))

		// Raw Elmore.
		raw := rctree.NewNet(rt, tech, rctree.Assignment{})
		s := tr.Sources()[0]
		elm := raw.DelaysFrom(s)
		sim, err := Delays(raw, s, Options{DT: 2e-3, TMax: 100})
		if err != nil {
			t.Fatal(err)
		}
		// Scaled-RC Elmore on the same physical net: scale the library
		// and the terminal drivers.
		scaledTech := tech.ScaledRC(math.Ln2)
		scaledTree := cloneWithScaledTerminals(tr, math.Ln2)
		srt := scaledTree.RootAt(testnet.RootTerminal(scaledTree))
		scaled := rctree.NewNet(srt, scaledTech, rctree.Assignment{})
		selm := scaled.DelaysFrom(s)

		for _, v := range tr.Sinks() {
			if v == s || math.IsInf(sim[v], 1) {
				continue
			}
			if sim[v] <= 0.02 {
				continue // dominated by intrinsics; ratio uninformative
			}
			rawErr += math.Abs(elm[v] - sim[v])
			scaledErr += math.Abs(selm[v] - sim[v])
			samples++
			// Raw Elmore stays an upper bound.
			if sim[v] > elm[v]*1.02+1e-3 {
				t.Fatalf("trial %d node %d: sim %g above raw elmore %g", trial, v, sim[v], elm[v])
			}
		}
	}
	if samples < 10 {
		t.Fatalf("too few samples: %d", samples)
	}
	if scaledErr >= rawErr {
		t.Errorf("ln2-scaled Elmore not closer to simulation: scaled %.4f vs raw %.4f over %d samples",
			scaledErr, rawErr, samples)
	}
}

func cloneWithScaledTerminals(tr *topo.Tree, k float64) *topo.Tree {
	out := topo.New()
	for i := 0; i < tr.NumNodes(); i++ {
		n := tr.Node(i)
		switch n.Kind {
		case topo.Terminal:
			out.AddTerminal(n.Pt, buslib.ScaleTerminalRC(n.Term, k))
		case topo.Steiner:
			out.AddSteiner(n.Pt)
		case topo.Insertion:
			out.AddInsertion(n.Pt)
		}
	}
	for i := 0; i < tr.NumEdges(); i++ {
		e := tr.Edge(i)
		out.AddEdge(e.A, e.B, e.Length)
	}
	return out
}
