package core

import (
	"math"
	"sort"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/rctree"
	"msrnet/internal/topo"
)

// CostARD is one point of a cost/performance tradeoff.
type CostARD struct {
	Cost float64
	ARD  float64
}

// ParetoPoints sorts points by cost and keeps those that strictly improve
// the ARD — the same frontier rule used by Suite.
func ParetoPoints(pts []CostARD) []CostARD {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Cost != pts[j].Cost {
			return pts[i].Cost < pts[j].Cost
		}
		return pts[i].ARD < pts[j].ARD
	})
	out := pts[:0]
	best := math.Inf(1)
	for _, p := range pts {
		if p.ARD < best-domTol {
			out = append(out, p)
			best = p.ARD
		}
	}
	return out
}

// BruteForce exhaustively enumerates every repeater assignment (and, in
// sizing mode, every driver assignment), evaluates each with the
// independent linear-time ARD algorithm, and returns the exact Pareto
// frontier. It is exponential and exists to verify Theorem 4.1 on small
// instances; keep the number of insertion points below ~8.
func BruteForce(rt *topo.Rooted, tech buslib.Tech, opt Options) []CostARD {
	type choice struct {
		placed *rctree.Placed
		cost   float64
	}
	// Choices per insertion point.
	var repChoices []choice
	repChoices = append(repChoices, choice{})
	if opt.Repeaters {
		for _, rep := range tech.Repeaters {
			if rep.Inverting && !opt.AllowInverting {
				continue
			}
			orientations := []bool{true}
			if !rep.Symmetric() {
				orientations = []bool{true, false}
			}
			for _, aUp := range orientations {
				r := rep
				repChoices = append(repChoices, choice{
					placed: &rctree.Placed{Rep: r, ASideUp: aUp},
					cost:   rep.Cost,
				})
			}
		}
	}
	ins := rt.Tree.Insertions()
	var srcs []int
	if opt.SizeDrivers {
		srcs = rt.Tree.Sources()
	}

	var pts []CostARD
	var recurse func(i int, asg rctree.Assignment, cost float64)
	evalDrivers := func(asg rctree.Assignment, cost float64) {
		if !opt.SizeDrivers {
			pts = append(pts, evalOne(rt, tech, asg, cost, opt))
			return
		}
		var rec func(j int, asg rctree.Assignment, cost float64)
		rec = func(j int, asg rctree.Assignment, cost float64) {
			if j == len(srcs) {
				pts = append(pts, evalOne(rt, tech, asg, cost, opt))
				return
			}
			for _, drv := range tech.Drivers {
				na := asg.Clone()
				if na.Drivers == nil {
					na.Drivers = map[int]buslib.Driver{}
				}
				na.Drivers[srcs[j]] = drv
				rec(j+1, na, cost+drv.Cost)
			}
		}
		rec(0, asg, cost)
	}
	recurse = func(i int, asg rctree.Assignment, cost float64) {
		if i == len(ins) {
			if !parityFeasible(rt, asg) {
				return
			}
			evalDrivers(asg, cost)
			return
		}
		for _, ch := range repChoices {
			na := asg.Clone()
			if ch.placed != nil {
				if na.Repeaters == nil {
					na.Repeaters = map[int]rctree.Placed{}
				}
				na.Repeaters[ins[i]] = *ch.placed
			}
			recurse(i+1, na, cost+ch.cost)
		}
	}
	recurse(0, rctree.Assignment{}, 0)
	return ParetoPoints(pts)
}

func evalOne(rt *topo.Rooted, tech buslib.Tech, asg rctree.Assignment, cost float64, opt Options) CostARD {
	n := rctree.NewNet(rt, tech, asg)
	res := ard.Compute(n, ard.Options{IncludeSelf: opt.IncludeSelf})
	return CostARD{Cost: cost, ARD: res.ARD}
}

// parityFeasible checks the inverting-repeater polarity constraint: every
// terminal must observe an even number of inversions from every other
// terminal, which holds iff all terminals have equal inversion parity to
// the root.
func parityFeasible(rt *topo.Rooted, asg rctree.Assignment) bool {
	t := rt.Tree
	parity := make([]int, t.NumNodes())
	// Pre-order walk from root.
	for i := len(rt.PostOrder) - 1; i >= 0; i-- {
		v := rt.PostOrder[i]
		if v == rt.Root {
			parity[v] = 0
			continue
		}
		p := parity[rt.Parent[v]]
		if pl, ok := asg.Repeaters[v]; ok && pl.Rep.Inverting {
			p ^= 1
		}
		parity[v] = p
	}
	// A repeater AT node v flips signals passing through v; terminals are
	// leaves so the parity of the terminal is the parity accumulated
	// along its root path (inverters at the terminal itself cannot occur).
	ref := -1
	for _, v := range t.Terminals() {
		if ref == -1 {
			ref = parity[v]
		} else if parity[v] != ref {
			return false
		}
	}
	return true
}
