package core

import (
	"math"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/rctree"
	"msrnet/internal/topo"
)

// GreedyInsertion is a baseline heuristic for comparison with the optimal
// dynamic program: starting from the unbuffered net, repeatedly place the
// single (repeater, insertion point, orientation) choice that most
// reduces the ARD, stopping when no placement improves it. Each step
// costs O(|points| · |library| · n) ARD evaluations.
//
// It returns the greedy trajectory as a suite-like sequence: entry k is
// the best assignment found with k repeaters. The trajectory is *not*
// Pareto-pruned — by construction cost increases and ARD decreases until
// the loop stops — and it is in general suboptimal, which is exactly what
// the comparison benchmarks demonstrate.
func GreedyInsertion(rt *topo.Rooted, tech buslib.Tech, opt Options) ([]CostARD, []rctree.Assignment) {
	cur := rctree.Assignment{Repeaters: map[int]rctree.Placed{}}
	eval := func(a rctree.Assignment) float64 {
		n := rctree.NewNet(rt, tech, a)
		return ard.Compute(n, ard.Options{IncludeSelf: opt.IncludeSelf}).ARD
	}
	curARD := eval(cur)
	curCost := 0.0
	pts := []CostARD{{Cost: 0, ARD: curARD}}
	asgs := []rctree.Assignment{cur.Clone()}
	ins := rt.Tree.Insertions()
	for {
		bestARD := curARD
		var bestNode int
		var bestPlaced rctree.Placed
		found := false
		for _, v := range ins {
			if _, occupied := cur.Repeaters[v]; occupied {
				continue
			}
			for _, rep := range tech.Repeaters {
				if rep.Inverting && !opt.AllowInverting {
					continue
				}
				orientations := []bool{true}
				if !rep.Symmetric() {
					orientations = []bool{true, false}
				}
				for _, aUp := range orientations {
					cur.Repeaters[v] = rctree.Placed{Rep: rep, ASideUp: aUp}
					if rep.Inverting && !parityFeasible(rt, cur) {
						delete(cur.Repeaters, v)
						continue
					}
					if a := eval(cur); a < bestARD-1e-12 {
						bestARD = a
						bestNode = v
						bestPlaced = cur.Repeaters[v]
						found = true
					}
					delete(cur.Repeaters, v)
				}
			}
		}
		if !found {
			return pts, asgs
		}
		cur.Repeaters[bestNode] = bestPlaced
		curARD = bestARD
		curCost += bestPlaced.Rep.Cost
		pts = append(pts, CostARD{Cost: curCost, ARD: curARD})
		asgs = append(asgs, cur.Clone())
	}
}

// OptimalityGap compares the greedy baseline with the optimal suite: for
// every greedy trajectory point it reports the cost premium greedy pays
// relative to the cheapest optimal solution achieving at least the same
// ARD, and the ARD excess at equal cost. Positive gaps demonstrate the
// value of the exact dynamic program.
type OptimalityGap struct {
	GreedyPoints  int
	WorstARDGapNs float64 // max over costs of greedy ARD − optimal ARD at that cost
	TotalARDGapNs float64
}

// CompareGreedy computes the gap between a greedy trajectory and an
// optimal suite.
func CompareGreedy(greedy []CostARD, optimal Suite) OptimalityGap {
	g := OptimalityGap{GreedyPoints: len(greedy)}
	for _, p := range greedy {
		// Best optimal ARD achievable at cost ≤ p.Cost.
		best := math.Inf(1)
		for _, s := range optimal {
			if s.Cost <= p.Cost+domTol && s.ARD < best {
				best = s.ARD
			}
		}
		if math.IsInf(best, 1) {
			continue
		}
		gap := p.ARD - best
		if gap < 0 {
			gap = 0
		}
		if gap > g.WorstARDGapNs {
			g.WorstARDGapNs = gap
		}
		g.TotalARDGapNs += gap
	}
	return g
}
