package core_test

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/geom"
	"msrnet/internal/rctree"
	"msrnet/internal/testnet"
	"msrnet/internal/topo"
)

// smallNet builds a random net with at most maxIns insertion points so
// brute force stays tractable.
func smallNet(r *rand.Rand, maxIns int) *topo.Tree {
	cfg := testnet.DefaultConfig()
	cfg.Backbone = 1 + r.Intn(4)
	cfg.InsSpacing = 0 // no automatic insertion points
	tr := testnet.RandTree(r, cfg)
	nEdges := tr.NumEdges()
	k := 1 + r.Intn(maxIns)
	for i := 0; i < k && i < nEdges; i++ {
		eid := r.Intn(nEdges)
		if tr.Edge(eid).Length <= 0 {
			continue
		}
		tr.SplitEdge(eid, 0.2+0.6*r.Float64(), topo.Insertion)
	}
	return tr
}

func frontiersEqual(t *testing.T, tag string, got core.Suite, want []core.CostARD) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: frontier size %d, want %d\n got: %v\nwant: %v",
			tag, len(got), len(want), points(got), want)
	}
	for i := range want {
		if math.Abs(got[i].Cost-want[i].Cost) > 1e-6 ||
			math.Abs(got[i].ARD-want[i].ARD) > 1e-6*(1+math.Abs(want[i].ARD)) {
			t.Fatalf("%s: frontier point %d: got (%.9g, %.9g), want (%.9g, %.9g)",
				tag, i, got[i].Cost, got[i].ARD, want[i].Cost, want[i].ARD)
		}
	}
}

func points(s core.Suite) []core.CostARD {
	out := make([]core.CostARD, len(s))
	for i, r := range s {
		out[i] = core.CostARD{Cost: r.Cost, ARD: r.ARD}
	}
	return out
}

// TestOptimalityAgainstBruteForce is the Theorem 4.1 verification: the DP
// suite must equal the exhaustive-enumeration Pareto frontier.
func TestOptimalityAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1001))
	opt := core.Options{Repeaters: true}
	for trial := 0; trial < 60; trial++ {
		tr := smallNet(r, 5)
		tech := testnet.RandTech(r, 1+r.Intn(2), 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		res, err := core.Optimize(rt, tech, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := core.BruteForce(rt, tech, opt)
		frontiersEqual(t, "repeater", res.Suite, want)
	}
}

// TestOptimalityWithSelfPairs repeats the check with u==v pairs counted.
func TestOptimalityWithSelfPairs(t *testing.T) {
	r := rand.New(rand.NewSource(1002))
	opt := core.Options{Repeaters: true, IncludeSelf: true}
	for trial := 0; trial < 30; trial++ {
		tr := smallNet(r, 4)
		tech := testnet.RandTech(r, 1, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		res, err := core.Optimize(rt, tech, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := core.BruteForce(rt, tech, opt)
		frontiersEqual(t, "self", res.Suite, want)
	}
}

// TestDriverSizingAgainstBruteForce verifies the sizing mode of §V.
func TestDriverSizingAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1003))
	opt := core.Options{SizeDrivers: true}
	for trial := 0; trial < 30; trial++ {
		tr := smallNet(r, 2)
		if len(tr.Sources()) > 4 {
			continue // keep brute force small
		}
		tech := testnet.RandTech(r, 0, 3)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		res, err := core.Optimize(rt, tech, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := core.BruteForce(rt, tech, opt)
		frontiersEqual(t, "sizing", res.Suite, want)
	}
}

// TestCombinedSizingAndRepeaters exercises both dimensions at once.
func TestCombinedSizingAndRepeaters(t *testing.T) {
	r := rand.New(rand.NewSource(1004))
	opt := core.Options{Repeaters: true, SizeDrivers: true}
	for trial := 0; trial < 15; trial++ {
		tr := smallNet(r, 2)
		if len(tr.Sources()) > 3 {
			continue
		}
		tech := testnet.RandTech(r, 1, 2)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		res, err := core.Optimize(rt, tech, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := core.BruteForce(rt, tech, opt)
		frontiersEqual(t, "combined", res.Suite, want)
	}
}

// TestReconstructionConsistency: every suite entry's reconstructed
// assignment, evaluated by the independent ARD module, must reproduce the
// reported ARD and cost.
func TestReconstructionConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(1005))
	for trial := 0; trial < 40; trial++ {
		cfg := testnet.DefaultConfig()
		cfg.Backbone = 2 + r.Intn(6)
		tr := testnet.RandTree(r, cfg)
		tech := testnet.RandTech(r, 2, 3)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		opt := core.Options{Repeaters: true, SizeDrivers: trial%2 == 0}
		res, err := core.Optimize(rt, tech, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, rs := range res.Suite {
			asg := rs.Assignment()
			n := rctree.NewNet(rt, tech, asg)
			check := ard.Compute(n, ard.Options{})
			if math.Abs(check.ARD-rs.ARD) > 1e-6*(1+math.Abs(rs.ARD)) {
				t.Fatalf("trial %d: reported ARD %.9g, reconstruction gives %.9g (cost %.3g, %d repeaters)",
					trial, rs.ARD, check.ARD, rs.Cost, rs.Repeaters())
			}
			wantCost := asg.Cost()
			if math.Abs(wantCost-rs.Cost) > 1e-9 {
				t.Fatalf("trial %d: reported cost %.9g, assignment cost %.9g", trial, rs.Cost, wantCost)
			}
		}
	}
}

// TestPrunerEquivalence: naive and divide-and-conquer MFS must yield the
// same Pareto suite.
func TestPrunerEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(1006))
	for trial := 0; trial < 25; trial++ {
		cfg := testnet.DefaultConfig()
		cfg.Backbone = 2 + r.Intn(5)
		tr := testnet.RandTree(r, cfg)
		tech := testnet.RandTech(r, 2, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		a, err := core.Optimize(rt, tech, core.Options{Repeaters: true, Pruner: core.PruneDivide})
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.Optimize(rt, tech, core.Options{Repeaters: true, Pruner: core.PruneNaive})
		if err != nil {
			t.Fatal(err)
		}
		frontiersEqual(t, "pruners", a.Suite, points(b.Suite))
	}
}

// TestSuiteIsParetoSorted checks the structural contract of a suite.
func TestSuiteIsParetoSorted(t *testing.T) {
	r := rand.New(rand.NewSource(1007))
	tr := testnet.RandTree(r, testnet.DefaultConfig())
	tech := testnet.RandTech(r, 2, 0)
	rt := tr.RootAt(testnet.RootTerminal(tr))
	res, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Suite
	for i := 1; i < len(s); i++ {
		if s[i].Cost <= s[i-1].Cost {
			t.Errorf("suite not strictly increasing in cost at %d", i)
		}
		if s[i].ARD >= s[i-1].ARD {
			t.Errorf("suite not strictly decreasing in ARD at %d", i)
		}
	}
	// MinCost against the worst ARD must return the cheapest point.
	if got, ok := s.MinCost(s[0].ARD + 1); !ok || got.Cost != s[0].Cost {
		t.Error("MinCost(loose spec) should return cheapest")
	}
	// MinCost with an impossible spec fails.
	if _, ok := s.MinCost(mustMinARD(t, s).ARD - 1); ok {
		t.Error("MinCost(impossible spec) should fail")
	}
	if mustMinARD(t, s).ARD > s[0].ARD {
		t.Error("MinARD worse than cheapest solution")
	}
	cheapest, err := s.MinCostSolution()
	if err != nil {
		t.Fatal(err)
	}
	if cheapest.Cost != s[0].Cost {
		t.Error("MinCostSolution mismatch")
	}
	// The empty suite is a typed error, not a panic.
	if _, err := core.Suite(nil).MinARD(); !errors.Is(err, core.ErrEmptySuite) {
		t.Errorf("empty MinARD error = %v, want ErrEmptySuite", err)
	}
	if _, err := core.Suite(nil).MinCostSolution(); !errors.Is(err, core.ErrEmptySuite) {
		t.Errorf("empty MinCostSolution error = %v, want ErrEmptySuite", err)
	}
}

// mustMinARD unwraps Suite.MinARD for suites the test knows are
// non-empty.
func mustMinARD(t testing.TB, s core.Suite) core.RootSolution {
	t.Helper()
	sol, err := s.MinARD()
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

// TestRepeatersNeverHurt: enabling repeaters can only improve (or match)
// the best achievable ARD, and the zero-cost point matches the
// no-repeater baseline.
func TestRepeatersNeverHurt(t *testing.T) {
	r := rand.New(rand.NewSource(1008))
	for trial := 0; trial < 20; trial++ {
		tr := testnet.RandTree(r, testnet.DefaultConfig())
		tech := testnet.RandTech(r, 1, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		base := rctree.NewNet(rt, tech, rctree.Assignment{})
		baseARD := ard.Compute(base, ard.Options{}).ARD
		res, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
		if err != nil {
			t.Fatal(err)
		}
		if best := mustMinARD(t, res.Suite); best.ARD > baseARD+1e-9 {
			t.Fatalf("trial %d: best ARD %.9g worse than unbuffered %.9g",
				trial, best.ARD, baseARD)
		}
		// The cheapest point must be the unbuffered solution.
		if math.Abs(res.Suite[0].Cost) > 1e-12 {
			t.Fatalf("trial %d: cheapest solution has cost %g, want 0", trial, res.Suite[0].Cost)
		}
		if math.Abs(res.Suite[0].ARD-baseARD) > 1e-9*(1+math.Abs(baseARD)) {
			t.Fatalf("trial %d: zero-cost ARD %.9g != unbuffered %.9g",
				trial, res.Suite[0].ARD, baseARD)
		}
	}
}

// TestInvertingRepeaters: with an inverting-only library the DP must
// respect polarity feasibility and still match brute force.
func TestInvertingRepeaters(t *testing.T) {
	r := rand.New(rand.NewSource(1009))
	for trial := 0; trial < 20; trial++ {
		tr := smallNet(r, 4)
		tech := testnet.RandTech(r, 1, 0)
		inv := tech.Repeaters[0]
		inv.Inverting = true
		inv.Name = "inv"
		inv.Cost = 1
		tech.Repeaters = []buslib.Repeater{inv}
		rt := tr.RootAt(testnet.RootTerminal(tr))
		opt := core.Options{Repeaters: true, AllowInverting: true}
		res, err := core.Optimize(rt, tech, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := core.BruteForce(rt, tech, opt)
		frontiersEqual(t, "inverting", res.Suite, want)
		// Every solution must place an even number of inverters on each
		// root-to-terminal path; check via the parity rule on the
		// reconstructed assignment.
		for _, rs := range res.Suite {
			asg := rs.Assignment()
			if !parityOK(rt, asg) {
				t.Fatalf("trial %d: suite entry with infeasible polarity", trial)
			}
		}
	}
}

func parityOK(rt *topo.Rooted, asg rctree.Assignment) bool {
	parity := make([]int, rt.Tree.NumNodes())
	for i := len(rt.PostOrder) - 1; i >= 0; i-- {
		v := rt.PostOrder[i]
		if v == rt.Root {
			continue
		}
		p := parity[rt.Parent[v]]
		if pl, ok := asg.Repeaters[v]; ok && pl.Rep.Inverting {
			p ^= 1
		}
		parity[v] = p
	}
	for _, v := range rt.Tree.Terminals() {
		if parity[v] != 0 {
			return false
		}
	}
	return true
}

// TestWireSizingExtension: free extra width must not hurt, and must be
// exploited when it helps.
func TestWireSizingExtension(t *testing.T) {
	r := rand.New(rand.NewSource(1010))
	for trial := 0; trial < 10; trial++ {
		tr := smallNet(r, 4)
		tech := testnet.RandTech(r, 1, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		plain, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
		if err != nil {
			t.Fatal(err)
		}
		sized, err := core.Optimize(rt, tech, core.Options{
			Repeaters:  true,
			WireWidths: []float64{1, 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		sizedBest, plainBest := mustMinARD(t, sized.Suite), mustMinARD(t, plain.Suite)
		if sizedBest.ARD > plainBest.ARD+1e-9 {
			t.Fatalf("trial %d: wire sizing hurt: %.9g vs %.9g",
				trial, sizedBest.ARD, plainBest.ARD)
		}
	}
}

// TestWireSizingReconstruction: a width-using solution must evaluate
// consistently when reconstructed.
func TestWireSizingReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(1011))
	tr := smallNet(r, 4)
	tech := testnet.RandTech(r, 1, 0)
	rt := tr.RootAt(testnet.RootTerminal(tr))
	res, err := core.Optimize(rt, tech, core.Options{
		Repeaters:     true,
		WireWidths:    []float64{1, 2},
		WireCostPerUm: 1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range res.Suite {
		asg := rs.Assignment()
		n := rctree.NewNet(rt, tech, asg)
		check := ard.Compute(n, ard.Options{})
		if math.Abs(check.ARD-rs.ARD) > 1e-6*(1+math.Abs(rs.ARD)) {
			t.Fatalf("wire-sized reconstruction: %.9g vs %.9g", check.ARD, rs.ARD)
		}
	}
}

// TestErrorCases verifies input validation.
func TestErrorCases(t *testing.T) {
	tech := buslib.Default()
	// Root not a terminal.
	tr := topo.New()
	s := tr.AddSteiner(geom.Pt(0, 0))
	a := tr.AddTerminal(geom.Pt(0, 1), buslib.DefaultTerminal("a"))
	b := tr.AddTerminal(geom.Pt(1, 0), buslib.DefaultTerminal("b"))
	tr.AddEdge(s, a, 100)
	tr.AddEdge(s, b, 100)
	if _, err := core.Optimize(tr.RootAt(s), tech, core.Options{Repeaters: true}); err == nil {
		t.Error("expected error for steiner root")
	}
	// No sinks.
	tr2 := topo.New()
	ta := buslib.DefaultTerminal("a")
	ta.IsSink = false
	tb := buslib.DefaultTerminal("b")
	tb.IsSink = false
	x := tr2.AddTerminal(geom.Pt(0, 0), ta)
	y := tr2.AddTerminal(geom.Pt(1, 0), tb)
	tr2.AddEdge(x, y, 100)
	if _, err := core.Optimize(tr2.RootAt(x), tech, core.Options{Repeaters: true}); err == nil {
		t.Error("expected error for sinkless net")
	}
	// Empty repeater library with Repeaters set.
	tr3 := topo.New()
	x3 := tr3.AddTerminal(geom.Pt(0, 0), buslib.DefaultTerminal("a"))
	y3 := tr3.AddTerminal(geom.Pt(1, 0), buslib.DefaultTerminal("b"))
	tr3.AddEdge(x3, y3, 100)
	badTech := tech
	badTech.Repeaters = nil
	if _, err := core.Optimize(tr3.RootAt(x3), badTech, core.Options{Repeaters: true}); err == nil {
		t.Error("expected error for empty repeater library")
	}
	badTech2 := tech
	badTech2.Drivers = nil
	if _, err := core.Optimize(tr3.RootAt(x3), badTech2, core.Options{SizeDrivers: true}); err == nil {
		t.Error("expected error for empty driver library")
	}
}

// TestStatsPopulated sanity-checks the run statistics.
func TestStatsPopulated(t *testing.T) {
	r := rand.New(rand.NewSource(1012))
	tr := testnet.RandTree(r, testnet.DefaultConfig())
	tech := testnet.RandTech(r, 1, 0)
	rt := tr.RootAt(testnet.RootTerminal(tr))
	res, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SolutionsCreated == 0 || res.Stats.MaxSetSize == 0 || res.Stats.PruneCalls == 0 {
		t.Errorf("stats look empty: %+v", res.Stats)
	}
}

// TestMaxSolutionsGuard: a tiny limit must trip on a net that needs more
// solutions, with a descriptive error; a generous limit must not.
func TestMaxSolutionsGuard(t *testing.T) {
	r := rand.New(rand.NewSource(1013))
	tr := testnet.RandTree(r, testnet.DefaultConfig())
	tech := testnet.RandTech(r, 2, 0)
	rt := tr.RootAt(testnet.RootTerminal(tr))
	_, err := core.Optimize(rt, tech, core.Options{Repeaters: true, MaxSolutions: 1})
	if err == nil {
		t.Fatal("limit 1 did not trip")
	}
	res, err := core.Optimize(rt, tech, core.Options{Repeaters: true, MaxSolutions: 1 << 20})
	if err != nil {
		t.Fatalf("generous limit tripped: %v", err)
	}
	if len(res.Suite) == 0 {
		t.Fatal("empty suite")
	}
}

// TestPruneOffStillOptimal: with pruning disabled on a small instance the
// suite must match the pruned runs (pruning only removes provably
// dominated candidates).
func TestPruneOffStillOptimal(t *testing.T) {
	r := rand.New(rand.NewSource(1014))
	for trial := 0; trial < 10; trial++ {
		tr := smallNet(r, 4)
		tech := testnet.RandTech(r, 1, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		a, err := core.Optimize(rt, tech, core.Options{Repeaters: true, Pruner: core.PruneOff})
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
		if err != nil {
			t.Fatal(err)
		}
		frontiersEqual(t, "pruneoff", a.Suite, points(b.Suite))
	}
}

// TestParallelMatchesSerial: parallel subtree evaluation must produce an
// identical suite to the serial run (deterministic combination order).
func TestParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(1015))
	for trial := 0; trial < 15; trial++ {
		cfg := testnet.DefaultConfig()
		cfg.Backbone = 3 + r.Intn(6)
		tr := testnet.RandTree(r, cfg)
		tech := testnet.RandTech(r, 2, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		serial, err := core.Optimize(rt, tech, core.Options{Repeaters: true, Profile: true})
		if err != nil {
			t.Fatal(err)
		}
		par, err := core.Optimize(rt, tech, core.Options{Repeaters: true, Parallel: true, Profile: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(serial.Suite) != len(par.Suite) {
			t.Fatalf("trial %d: suite sizes differ: %d vs %d", trial, len(serial.Suite), len(par.Suite))
		}
		for i := range serial.Suite {
			if serial.Suite[i].Cost != par.Suite[i].Cost || serial.Suite[i].ARD != par.Suite[i].ARD {
				t.Fatalf("trial %d: point %d differs: (%g,%g) vs (%g,%g)", trial, i,
					serial.Suite[i].Cost, serial.Suite[i].ARD, par.Suite[i].Cost, par.Suite[i].ARD)
			}
		}
		// The full stats — including the per-site PruneSites breakdown —
		// must merge identically regardless of goroutine interleaving.
		if !reflect.DeepEqual(serial.Stats, par.Stats) {
			t.Fatalf("trial %d: stats differ: %+v vs %+v", trial, serial.Stats, par.Stats)
		}
		// And so must the candidate-lifecycle profile: every aggregation
		// is an order-independent sum.
		if !reflect.DeepEqual(serial.Profile, par.Profile) {
			t.Fatalf("trial %d: lifecycle profiles differ:\nserial: %+v\npar:    %+v",
				trial, serial.Profile, par.Profile)
		}
	}
}

// TestQuickSuiteProperties: randomized checks of suite semantics —
// MinCost is monotone in the spec (looser specs never cost more) and
// always returns a point meeting the spec.
func TestQuickSuiteProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1016))
	for trial := 0; trial < 10; trial++ {
		tr := testnet.RandTree(r, testnet.DefaultConfig())
		tech := testnet.RandTech(r, 1, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		res, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
		if err != nil {
			t.Fatal(err)
		}
		s := res.Suite
		lo, hi := mustMinARD(t, s).ARD, s[0].ARD
		prevCost := math.Inf(1)
		for k := 0; k <= 20; k++ {
			spec := hi - (hi-lo)*float64(k)/20
			sol, ok := s.MinCost(spec)
			if !ok {
				t.Fatalf("trial %d: spec %g in achievable range infeasible", trial, spec)
			}
			if sol.ARD > spec+1e-9 {
				t.Fatalf("trial %d: returned ARD %g above spec %g", trial, sol.ARD, spec)
			}
			// Tighter spec (k increasing) must cost at least as much as
			// looser ones; we iterate tightening so cost must be
			// non-decreasing.
			if sol.Cost > prevCost && k == 0 {
				t.Fatalf("impossible")
			}
			if k > 0 && sol.Cost < prevCost-1e-9 && prevCost != math.Inf(1) {
				// cost decreased while tightening: contradiction
				t.Fatalf("trial %d: cost decreased from %g to %g while tightening", trial, prevCost, sol.Cost)
			}
			prevCost = sol.Cost
		}
	}
}
