package core

import "sync"

// Candidate-lifecycle profiling (Options.Profile): every solution the
// DP constructs is stamped with a birth site — the topology node it was
// built for plus the candidate class of the construction rule — and its
// fate is recorded when it dies under pruning (with a cause) or reaches
// the root suite. The aggregate is the raw material of the
// msrnet-solveprof/v1 artifact (internal/solveprof): it says which
// construction rules, at which nodes, burn work on candidates that
// never contribute to the answer — the measuring stick for predictive
// pruning (ROADMAP open item 1).
//
// The accounting is deterministic: every field is an order-independent
// sum, so serial and parallel runs of the same input produce identical
// profiles, and repeated runs produce byte-identical artifacts.

// Candidate classes: the construction rule that created a solution.
// They deliberately match the Stats.PruneSites keys where a prune
// exists; ClassWire is the width-1 Augment, which creates solutions but
// never prunes (dominance is preserved by the transform), so its
// candidates die later, at an ancestor's join or repeater prune.
const (
	// ClassDrivers marks leaf solutions (one per driver option under
	// SizeDrivers; exactly one for a fixed-driver leaf).
	ClassDrivers = "drivers"
	// ClassWire marks plain width-1 Augment lifts across a wire.
	ClassWire = "wire"
	// ClassWireWidths marks Augment lifts under wire sizing (>1 width).
	ClassWireWidths = "wire_widths"
	// ClassJoin marks Steiner branch merges (JoinSets pairings).
	ClassJoin = "join"
	// ClassRepeater marks repeater-capped candidates at insertion points.
	ClassRepeater = "repeater"
)

// Death causes: why a candidate's validity domain became empty. The
// classification looks at the final dominating subtraction — the one
// that emptied the domain — and applies the first matching rule, in
// this order:
const (
	// CauseEps: the kill needed the CoarseEps relaxation — re-checking
	// the same dominator at eps=0 would have left the candidate alive.
	// Only possible on degraded (CoarseEps > 0) runs.
	CauseEps = "eps_coarse"
	// CauseCost: the dominator is strictly cheaper; the candidate paid
	// for resources a cheaper solution made unnecessary.
	CauseCost = "cost_dominated"
	// CauseDomain: no single dominator covered the candidate — its
	// domain was whittled down by earlier subtractions (possibly at
	// earlier prune sites) before this one emptied the remainder.
	CauseDomain = "domain_emptied"
	// CauseDelay: an equal-cost dominator beat the candidate on the
	// delay coordinates (Q, A, D) over its whole remaining domain.
	CauseDelay = "delay_dominated"
)

// DeathCauses lists every cause, in classification order.
var DeathCauses = []string{CauseEps, CauseCost, CauseDomain, CauseDelay}

// DepthBuckets bounds the survival-depth histogram. Depth is the
// number of prune calls the candidate's lineage survived: inherited at
// construction (the max over the parents a candidate derives from) and
// bumped on every prune survived. A death at depth k means k prune
// passes already invested work in the candidate's ancestry before the
// waste was discovered — deep deaths are the expensive ones predictive
// pruning should target first. Buckets are power-of-two ranges
// (0, 1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, 65+) so the histogram stays
// readable on deep trees.
const DepthBuckets = 9

// depthBucket maps a lineage depth to its histogram bucket.
func depthBucket(depth int) int {
	switch {
	case depth <= 2:
		return depth
	case depth <= 4:
		return 3
	case depth <= 8:
		return 4
	case depth <= 16:
		return 5
	case depth <= 32:
		return 6
	case depth <= 64:
		return 7
	default:
		return 8
	}
}

// depthBucketLabels names the histogram buckets, index-aligned with
// LifecycleProfile.Depth.
var depthBucketLabels = [DepthBuckets]string{
	"0", "1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+",
}

// DepthBucketLabel returns the human-readable range of histogram
// bucket i ("0", "1", "2", "3-4", …, "65+").
func DepthBucketLabel(i int) string {
	if i < 0 || i >= DepthBuckets {
		return "?"
	}
	return depthBucketLabels[i]
}

// SiteKey identifies a birth site: the construction rule and the
// topology node it ran for.
type SiteKey struct {
	Class string
	Node  int
}

// WasteCell is the work charged to a group of dead candidates: their
// count, the PWL segments materialized to build them (A plus D), and
// the allocations (one candidate tuple each). The charge is the direct
// construction cost of the dead candidate itself — a lower bound on
// the transitive waste, since work spent on its ancestors may also have
// fed survivors.
type WasteCell struct {
	Deaths int
	SegOps int64
	Allocs int64
}

func (c *WasteCell) add(o WasteCell) {
	c.Deaths += o.Deaths
	c.SegOps += o.SegOps
	c.Allocs += o.Allocs
}

// SiteStats is the full lifecycle ledger of one birth site.
type SiteStats struct {
	// Born counts candidates constructed here; SegOps/Allocs are their
	// total construction work (dead or alive).
	Born   int
	SegOps int64
	Allocs int64
	// Survived counts root-suite points whose closing solution was born
	// here (one per suite point, so survivors sum to len(Suite)).
	Survived int
	// Deaths buckets the candidates pruned to death, by cause.
	Deaths map[string]WasteCell
}

// WaveStats is one node's slice of the wavefront timeline: how many
// candidates were born for the node, how many died in its prunes, and
// the set size its subtree solve finished with.
type WaveStats struct {
	Kind  string // "leaf", "steiner" or "insertion"
	Born  int
	Died  int
	Final int
}

// LifecycleProfile is the aggregate of one (or, after Merge, several)
// profiled Optimize runs.
type LifecycleProfile struct {
	// Runs counts the Optimize runs merged into this profile.
	Runs int
	// Sites is the per-birth-site ledger.
	Sites map[SiteKey]*SiteStats
	// Depth is the survival-depth histogram of deaths, bucketed by the
	// prune calls the dying candidate's lineage survived (see
	// DepthBucketLabel for the ranges).
	Depth [DepthBuckets]WasteCell
	// Wave is the per-node wavefront summary, keyed by topology node.
	Wave map[int]*WaveStats
	// JoinPairings counts candidate pairings JoinSets examined,
	// including those skipped before construction (parity mismatch,
	// empty domain intersection) — the hidden quadratic work no born
	// candidate accounts for.
	JoinPairings int64
	// Totals and the dead-candidate share of them. The waste ratio
	// WastedSegOps/TotalSegOps is the headline number the CI waste gate
	// baselines.
	TotalSegOps  int64
	WastedSegOps int64
	TotalAllocs  int64
	WastedAllocs int64
}

// NewLifecycleProfile returns an empty profile ready to merge into.
func NewLifecycleProfile() *LifecycleProfile {
	return &LifecycleProfile{Sites: map[SiteKey]*SiteStats{}, Wave: map[int]*WaveStats{}}
}

func (p *LifecycleProfile) site(k SiteKey) *SiteStats {
	st := p.Sites[k]
	if st == nil {
		st = &SiteStats{Deaths: map[string]WasteCell{}}
		p.Sites[k] = st
	}
	return st
}

func (p *LifecycleProfile) waveAt(node int) *WaveStats {
	w := p.Wave[node]
	if w == nil {
		w = &WaveStats{}
		p.Wave[node] = w
	}
	return w
}

// TotalBorn sums candidates constructed across all sites; on a
// single-run profile it equals Stats.SolutionsCreated.
func (p *LifecycleProfile) TotalBorn() int {
	n := 0
	for _, st := range p.Sites {
		n += st.Born
	}
	return n
}

// TotalDeaths sums attributed deaths across all sites and causes; on a
// single-run profile it equals Stats.Dropped.
func (p *LifecycleProfile) TotalDeaths() int {
	n := 0
	for _, st := range p.Sites {
		for _, c := range st.Deaths {
			n += c.Deaths
		}
	}
	return n
}

// TotalSurvived sums survivors across all sites; on a single-run
// profile it equals len(Result.Suite).
func (p *LifecycleProfile) TotalSurvived() int {
	n := 0
	for _, st := range p.Sites {
		n += st.Survived
	}
	return n
}

// Merge folds o into p (for aggregating a study session's runs). Both
// profiles are left usable; o is not modified.
func (p *LifecycleProfile) Merge(o *LifecycleProfile) {
	if o == nil {
		return
	}
	p.Runs += o.Runs
	for k, st := range o.Sites {
		dst := p.site(k)
		dst.Born += st.Born
		dst.SegOps += st.SegOps
		dst.Allocs += st.Allocs
		dst.Survived += st.Survived
		for cause, c := range st.Deaths {
			dc := dst.Deaths[cause]
			dc.add(c)
			dst.Deaths[cause] = dc
		}
	}
	for i := range o.Depth {
		p.Depth[i].add(o.Depth[i])
	}
	for node, w := range o.Wave {
		dst := p.waveAt(node)
		if dst.Kind == "" {
			dst.Kind = w.Kind
		}
		dst.Born += w.Born
		dst.Died += w.Died
		dst.Final += w.Final
	}
	p.JoinPairings += o.JoinPairings
	p.TotalSegOps += o.TotalSegOps
	p.WastedSegOps += o.WastedSegOps
	p.TotalAllocs += o.TotalAllocs
	p.WastedAllocs += o.WastedAllocs
}

// lifeRec is the per-solution birth stamp, allocated only under
// Options.Profile and shared by the shrunk-domain copies the pruners
// make (the copies are the same logical candidate).
type lifeRec struct {
	class string
	node  int
	depth int32 // prune calls survived by the candidate's lineage
	segs  int32 // PWL segments materialized at construction (A + D)
	// domCut marks that some earlier dominator shrank (without
	// emptying) this candidate's domain — the signal for CauseDomain.
	domCut bool
}

// lifeProf is the run-scoped collector behind Options.Profile. All
// aggregate updates are commutative sums under one mutex, so parallel
// subtree goroutines produce the same profile as a serial run. A nil
// *lifeProf (profiling off) costs one pointer check per hook.
type lifeProf struct {
	mu sync.Mutex
	p  *LifecycleProfile
}

func newLifeProf() *lifeProf {
	return &lifeProf{p: NewLifecycleProfile()}
}

// born stamps a freshly constructed batch and charges its construction
// work to the site ledger.
func (lp *lifeProf) born(sols []*Solution, class string, node int, kind string) {
	if lp == nil || len(sols) == 0 {
		return
	}
	var segSum int64
	for _, s := range sols {
		segs := s.A.NumSegs() + s.D.NumSegs()
		s.lc = &lifeRec{class: class, node: node, segs: int32(segs), depth: lineageDepth(s)}
		segSum += int64(segs)
	}
	k := SiteKey{Class: class, Node: node}
	lp.mu.Lock()
	st := lp.p.site(k)
	st.Born += len(sols)
	st.SegOps += segSum
	st.Allocs += int64(len(sols))
	lp.p.TotalSegOps += segSum
	lp.p.TotalAllocs += int64(len(sols))
	w := lp.p.waveAt(node)
	if w.Kind == "" {
		w.Kind = kind
	}
	w.Born += len(sols)
	lp.mu.Unlock()
}

// lineageDepth is the survival depth a freshly constructed candidate
// inherits: the max over the stamped parents it derives from. Parents
// without a stamp (profiling re-entry, synthetic stubs) contribute 0.
func lineageDepth(s *Solution) int32 {
	var d int32
	if s.from1 != nil && s.from1.lc != nil && s.from1.lc.depth > d {
		d = s.from1.lc.depth
	}
	if s.from2 != nil && s.from2.lc != nil && s.from2.lc.depth > d {
		d = s.from2.lc.depth
	}
	return d
}

// kill attributes one death: dominator s emptied t's remaining domain.
// t still carries its pre-subtraction domain, so the eps=0 re-check
// sees exactly the state the relaxed kill saw.
func (lp *lifeProf) kill(s, t *Solution, eps float64) {
	lc := t.lc
	cause := CauseDelay
	switch {
	case eps > 0 && !killsExactly(s, t):
		cause = CauseEps
	case s.Cost < t.Cost-domTol:
		cause = CauseCost
	case lc != nil && lc.domCut:
		cause = CauseDomain
	}
	cell := WasteCell{Deaths: 1, Allocs: 1}
	k := SiteKey{}
	depth := 0
	if lc != nil {
		cell.SegOps = int64(lc.segs)
		k = SiteKey{Class: lc.class, Node: lc.node}
		depth = int(lc.depth)
	}
	lp.mu.Lock()
	st := lp.p.site(k)
	dc := st.Deaths[cause]
	dc.add(cell)
	st.Deaths[cause] = dc
	lp.p.Depth[depthBucket(depth)].add(cell)
	lp.p.WastedSegOps += cell.SegOps
	lp.p.WastedAllocs += cell.Allocs
	lp.mu.Unlock()
}

// killsExactly reports whether s still empties t's remaining domain
// under exact (eps=0) dominance — the discriminator between a real
// death and one bought by the CoarseEps relaxation.
func killsExactly(s, t *Solution) bool {
	reg := dominatedRegion(s, t, 0)
	if reg.IsEmpty() {
		return false
	}
	return t.Dom.Subtract(reg).IsEmpty()
}

// survivedPrune bumps the survival depth of every candidate that came
// out of a prune alive.
func (lp *lifeProf) survivedPrune(out []*Solution) {
	if lp == nil {
		return
	}
	for _, s := range out {
		if s.lc != nil {
			s.lc.depth++
		}
	}
}

// died charges a prune call's drop count to the node being pruned (the
// wavefront's "died here" axis; the per-candidate attribution happened
// in kill).
func (lp *lifeProf) died(node int, drops int) {
	if lp == nil || drops == 0 {
		return
	}
	lp.mu.Lock()
	lp.p.waveAt(node).Died += drops
	lp.mu.Unlock()
}

// final records a node's finished set size on the wavefront.
func (lp *lifeProf) final(node int, size int) {
	if lp == nil {
		return
	}
	lp.mu.Lock()
	lp.p.waveAt(node).Final = size
	lp.mu.Unlock()
}

// joins counts JoinSets pairings examined (built or skipped).
func (lp *lifeProf) joins(n int64) {
	if lp == nil || n == 0 {
		return
	}
	lp.mu.Lock()
	lp.p.JoinPairings += n
	lp.mu.Unlock()
}

// survive credits one suite point to the closing solution's birth site.
func (lp *lifeProf) survive(s *Solution) {
	if lp == nil {
		return
	}
	k := SiteKey{}
	if s.lc != nil {
		k = SiteKey{Class: s.lc.class, Node: s.lc.node}
	}
	lp.mu.Lock()
	lp.p.site(k).Survived++
	lp.mu.Unlock()
}

// profile finalizes and returns the collected profile.
func (lp *lifeProf) profile() *LifecycleProfile {
	if lp == nil {
		return nil
	}
	lp.p.Runs = 1
	return lp.p
}
