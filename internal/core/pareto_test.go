package core

import (
	"math/rand"
	"testing"

	"msrnet/internal/dominance"
)

// TestParetoPointsMatchesKLPMinima cross-validates the suite's frontier
// rule against the classical minima algorithms of package dominance
// (Kung–Luccio–Preparata, the paper's reference [14] for the point
// dominance problem): the surviving (cost, ARD) pairs must be exactly
// the 2-D minima of the candidate set.
func TestParetoPointsMatchesKLPMinima(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(60)
		pts := make([]CostARD, n)
		dpts := make([]dominance.Point, n)
		for i := range pts {
			// Grid values to force ties and duplicates.
			c := float64(r.Intn(12)) * 2
			a := float64(r.Intn(20)) * 0.25
			pts[i] = CostARD{Cost: c, ARD: a}
			dpts[i] = dominance.Point{c, a}
		}
		minima := dominance.Minima2D(dpts, 1e-12)
		wantSet := map[CostARD]bool{}
		for _, i := range minima {
			wantSet[CostARD{Cost: dpts[i][0], ARD: dpts[i][1]}] = true
		}
		got := ParetoPoints(pts)
		if len(got) != len(wantSet) {
			t.Fatalf("trial %d: frontier size %d, minima size %d\ngot %v",
				trial, len(got), len(wantSet), got)
		}
		for _, p := range got {
			if !wantSet[p] {
				t.Fatalf("trial %d: frontier point %v not in KLP minima", trial, p)
			}
		}
	}
}
