package core_test

import (
	"reflect"
	"testing"

	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/netgen"
	"msrnet/internal/obs"
)

// TestOptimizeRecordsMetrics is the end-to-end instrumentation check of
// the issue: a 16-terminal net run with a live Recorder must produce
// non-zero prune counters, solution-set-size histograms and PWL-segment
// histograms, the "msri/solve" span, and a snapshot consistent with the
// returned Stats.
func TestOptimizeRecordsMetrics(t *testing.T) {
	tr, err := netgen.Generate(7, netgen.Defaults(16))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Terminals()); got != 16 {
		t.Fatalf("terminals = %d, want 16", got)
	}
	rt := tr.RootAt(tr.Terminals()[0])
	tech := buslib.Default()
	reg := obs.New()
	res, err := core.Optimize(rt, tech, core.Options{Repeaters: true, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	// Prune behavior (the Fig. 4 MFS): calls and drops must be observed.
	if got := snap.Counters["core/prune/divide/calls"]; got != int64(res.Stats.PruneCalls) {
		t.Errorf("prune calls counter = %d, stats say %d", got, res.Stats.PruneCalls)
	}
	if got := snap.Counters["core/prune/divide/drops"]; got != int64(res.Stats.Dropped) {
		t.Errorf("prune drops counter = %d, stats say %d", got, res.Stats.Dropped)
	}
	if res.Stats.PruneCalls == 0 || res.Stats.Dropped == 0 {
		t.Errorf("expected non-zero prune activity on a 16-terminal net: %+v", res.Stats)
	}
	if got := snap.Counters["core/solutions_created"]; got != int64(res.Stats.SolutionsCreated) {
		t.Errorf("solutions counter = %d, stats say %d", got, res.Stats.SolutionsCreated)
	}
	// |S(v)| histograms before and after pruning.
	for _, name := range []string{"core/set_size/pre_prune", "core/set_size/post_prune"} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			t.Errorf("histogram %q missing or empty", name)
		}
	}
	post := snap.Histograms["core/set_size/post_prune"]
	if post.Max == nil || int(*post.Max) != res.Stats.MaxSetSize {
		t.Errorf("post-prune max = %v, stats MaxSetSize = %d", post.Max, res.Stats.MaxSetSize)
	}
	if got := snap.Gauges["core/max_set_size"]; got != int64(res.Stats.MaxSetSize) {
		t.Errorf("max set gauge = %d, stats say %d", got, res.Stats.MaxSetSize)
	}
	// PWL segment counts: non-empty and max consistent with Stats.
	segs, ok := snap.Histograms["core/pwl_segments"]
	if !ok || segs.Count == 0 {
		t.Fatalf("pwl_segments histogram missing or empty")
	}
	if segs.Max == nil || int(*segs.Max) != res.Stats.MaxSegs {
		t.Errorf("segment max = %v, stats MaxSegs = %d", segs.Max, res.Stats.MaxSegs)
	}
	// Phase span present with positive wall time.
	if reg.SpanSeconds("msri/solve") <= 0 {
		t.Error("msri/solve span not recorded")
	}
}

// TestOptimizeStatsConsistentAcrossPruners: every pruner path must
// populate MaxSetSize and PruneCalls, and the two real pruners must
// report drops; serial stats must also match a nil-recorder run.
func TestOptimizeStatsConsistentAcrossPruners(t *testing.T) {
	tr, err := netgen.Generate(3, netgen.Defaults(8))
	if err != nil {
		t.Fatal(err)
	}
	rt := tr.RootAt(tr.Terminals()[0])
	tech := buslib.Default()
	for _, p := range []core.Pruner{core.PruneDivide, core.PruneNaive} {
		res, err := core.Optimize(rt, tech, core.Options{Repeaters: true, Pruner: p})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		s := res.Stats
		if s.MaxSetSize == 0 || s.PruneCalls == 0 || s.Dropped == 0 || s.SolutionsCreated == 0 {
			t.Errorf("pruner %v: stats under-reported: %+v", p, s)
		}
		// A recorded run must not change the result or the stats.
		reg := obs.New()
		res2, err := core.Optimize(rt, tech, core.Options{Repeaters: true, Pruner: p, Obs: reg})
		if err != nil {
			t.Fatalf("%v with recorder: %v", p, err)
		}
		if !reflect.DeepEqual(res2.Stats, s) {
			t.Errorf("pruner %v: stats differ with recorder: %+v vs %+v", p, res2.Stats, s)
		}
		if len(res2.Suite) != len(res.Suite) {
			t.Errorf("pruner %v: suite changed under instrumentation", p)
		}
	}
	// PruneOff still counts calls and set sizes (drops are zero by
	// construction — nothing is pruned). Use a small net so the
	// exponential path stays tractable.
	trS, err := netgen.Generate(3, netgen.Defaults(4))
	if err != nil {
		t.Fatal(err)
	}
	rtS := trS.RootAt(trS.Terminals()[0])
	res, err := core.Optimize(rtS, tech, core.Options{Repeaters: true, Pruner: core.PruneOff})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PruneCalls == 0 || res.Stats.MaxSetSize == 0 {
		t.Errorf("PruneOff stats under-reported: %+v", res.Stats)
	}
	if res.Stats.Dropped != 0 {
		t.Errorf("PruneOff dropped %d solutions", res.Stats.Dropped)
	}
}
