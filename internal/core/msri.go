package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"msrnet/internal/buslib"
	"msrnet/internal/obs"
	"msrnet/internal/obs/trace"
	"msrnet/internal/pwl"
	"msrnet/internal/rctree"
	"msrnet/internal/topo"
)

// Pruner selects the minimal-functional-subset implementation.
type Pruner int

const (
	// PruneDivide is the divide-and-conquer scheme of Fig. 4 (default).
	PruneDivide Pruner = iota
	// PruneNaive is the quadratic pairwise scheme, kept as a baseline and
	// cross-check.
	PruneNaive
	// PruneOff disables pruning entirely (exponential; only for tiny
	// ablation experiments).
	PruneOff
)

// String names the pruner for metrics and diagnostics.
func (p Pruner) String() string {
	switch p {
	case PruneNaive:
		return "naive"
	case PruneOff:
		return "off"
	default:
		return "divide"
	}
}

// Options configures an optimization run.
type Options struct {
	// Repeaters enables repeater insertion at the topology's insertion
	// points using Tech.Repeaters.
	Repeaters bool
	// SizeDrivers enables discrete driver sizing: every source terminal
	// chooses a driver from Tech.Drivers (cost included) instead of its
	// fixed built-in driver.
	SizeDrivers bool
	// IncludeSelf counts u==v source/sink pairs in the ARD.
	IncludeSelf bool
	// AllowInverting permits repeaters marked Inverting, enforcing global
	// polarity feasibility (all terminals must see even inversion parity,
	// §V extension).
	AllowInverting bool
	// WireWidths, when non-empty, lets Augment choose a width factor for
	// every wire (wire-sizing extension; width w scales R by 1/w and C by
	// w). Width 1 should normally be included.
	WireWidths []float64
	// WireCostPerUm is the cost of one µm of wire at one unit of extra
	// width: a wire of length L at width w adds (w−1)·L·WireCostPerUm.
	WireCostPerUm float64
	// Pruner selects the MFS implementation.
	Pruner Pruner
	// MaxSolutions, when positive, aborts the run with an error if any
	// pruned per-node solution set exceeds this size — a guard against
	// the (rare, but possible; see the paper's footnote 13) exponential
	// growth of the PWL solution space on adversarial inputs.
	MaxSolutions int
	// Parallel evaluates independent sibling subtrees on separate
	// goroutines (bounded by GOMAXPROCS). The result is identical to the
	// serial run; only wall-clock time changes.
	Parallel bool
	// Obs, when non-nil, receives detailed instrumentation: the
	// "msri/solve" phase span, per-node solution-set-size histograms
	// before and after pruning, PWL segment-count histograms, and prune
	// call/drop counters keyed by pruner kind. A nil Obs keeps the hot
	// paths allocation-free.
	Obs obs.Recorder
	// Context, when non-nil, is polled at every node visit and prune
	// call; once it is canceled or past its deadline the run unwinds and
	// Optimize returns an error wrapping ctx.Err() (test with
	// errors.Is(err, context.DeadlineExceeded) etc.). Partial work is
	// discarded — the suite is never silently truncated.
	Context context.Context
	// CoarseEps relaxes dominance on the delay coordinates (Q, A, D) by
	// the given amount while keeping Cost and Cap exact, shrinking
	// solution sets at a bounded accuracy price: the returned minimum
	// ARD exceeds the exact one by at most CoarseEps·Stats.PruneCalls.
	// Zero (the default) is the exact algorithm; this is the degraded
	// mode the serving layer falls back to under deadline pressure.
	CoarseEps float64
	// Trace, when non-nil, records the per-node timeline of the bottom-up
	// walk into the ring tracer: one "dp/leaf"/"dp/steiner"/"dp/insertion"
	// slice per node (args: node id, final set size, max PWL segment
	// count) and one "dp/prune" slice per prune call (args: pre/post
	// sizes, drops). Export with Tracer.WriteJSON and load in Perfetto.
	// Orthogonal to Obs; a nil Trace costs one nil check per event site.
	Trace *trace.Tracer
	// TraceArgs are appended to every trace event this run emits. The
	// serving layer sets the request-scoped identity here (trace_id and
	// job seq), so many jobs sharing one ring tracer stay separable in
	// a Perfetto view. Ignored without Trace.
	TraceArgs []trace.Arg
	// Profile enables candidate-lifecycle profiling: every solution is
	// stamped with its birth site, deaths are attributed to a cause, and
	// the wasted construction work is aggregated into Result.Profile
	// (the raw material of the msrnet-solveprof/v1 artifact). With a
	// Trace also installed, each set-forming step additionally emits a
	// "dp/wavefront" instant carrying the live set size. Profiling never
	// changes the computation — suites and Stats are identical with it
	// on or off — and costs nothing when false (one nil check per hook,
	// no allocations).
	Profile bool
}

// Stats reports work done by the dynamic program. All counters are
// deterministic: serial and parallel runs of the same input agree.
type Stats struct {
	SolutionsCreated int // total candidate solutions constructed
	MaxSetSize       int // largest per-node solution set after pruning
	MaxSegs          int // largest PWL segment count observed
	PruneCalls       int // prune invocations (counted for every pruner, including PruneOff)
	Dropped          int // solutions removed by pruning (validity domain emptied)
	NodesVisited     int // DP subtree solves completed (one per topology node below the root)
	SetSizeSum       int // sum of final per-node set sizes; mean candidates/node = SetSizeSum/NodesVisited

	// PruneSites breaks PruneCalls/Dropped down by the dominance rule's
	// call site — "drivers" (leaf driver sizing), "wire_widths"
	// (augment over width options), "join" (Steiner branch merge),
	// "repeater" (insertion-point candidates) — the per-job shape the
	// explain reports surface.
	PruneSites map[string]PruneSiteStats `json:",omitempty"`
}

// PruneSiteStats is the per-site slice of the pruning work.
type PruneSiteStats struct {
	Calls int
	Drops int
}

// Result is the outcome of Optimize: the Pareto suite plus run statistics.
type Result struct {
	Suite Suite
	Stats Stats
	// Profile is the candidate-lifecycle profile; nil unless
	// Options.Profile was set.
	Profile *LifecycleProfile
}

// Optimize runs the MSRI dynamic program (Fig. 5) on the rooted topology
// and returns the suite of Pareto-optimal (cost, ARD) solutions. The root
// must be a leaf terminal and the net must contain at least one source
// and one sink.
func Optimize(rt *topo.Rooted, tech buslib.Tech, opt Options) (*Result, error) {
	t := rt.Tree
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	rootNd := t.Node(rt.Root)
	if rootNd.Kind != topo.Terminal {
		return nil, fmt.Errorf("core: root node %d is %v, must be a terminal", rt.Root, rootNd.Kind)
	}
	if len(t.Sources()) == 0 || len(t.Sinks()) == 0 {
		return nil, fmt.Errorf("core: net needs at least one source and one sink")
	}
	if opt.SizeDrivers && len(tech.Drivers) == 0 {
		return nil, fmt.Errorf("core: SizeDrivers set but technology has no drivers")
	}
	if opt.Repeaters && len(tech.Repeaters) == 0 {
		return nil, fmt.Errorf("core: Repeaters set but technology has no repeaters")
	}
	if opt.CoarseEps < 0 || math.IsNaN(opt.CoarseEps) || math.IsInf(opt.CoarseEps, 0) {
		return nil, fmt.Errorf("core: CoarseEps %v must be a finite non-negative number", opt.CoarseEps)
	}
	d := &dp{rt: rt, tech: tech, opt: opt, ctx: opt.Context, tr: opt.Trace, tags: opt.TraceArgs}
	if opt.Parallel {
		d.sem = make(chan struct{}, runtime.GOMAXPROCS(0))
	}
	if opt.Profile {
		d.lp = newLifeProf()
	}
	if opt.Obs != nil {
		kind := opt.Pruner.String()
		d.ins = instr{
			solutions:  opt.Obs.Counter("core/solutions_created"),
			pruneCalls: opt.Obs.Counter("core/prune/" + kind + "/calls"),
			pruneDrops: opt.Obs.Counter("core/prune/" + kind + "/drops"),
			preSize:    opt.Obs.Histogram("core/set_size/pre_prune", nil),
			postSize:   opt.Obs.Histogram("core/set_size/post_prune", nil),
			segs:       opt.Obs.Histogram("core/pwl_segments", nil),
			maxSet:     opt.Obs.Gauge("core/max_set_size"),
		}
	}
	span := obs.Start(opt.Obs, "msri/solve")
	defer span.End()
	// Root: single child (root is a leaf terminal).
	children := rt.Children[rt.Root]
	if len(children) != 1 {
		return nil, fmt.Errorf("core: root terminal has %d children, want 1", len(children))
	}
	c := children[0]
	childSet := d.solve(c)
	if err := d.getErr(); err != nil {
		return nil, err
	}
	final := d.augment(childSet, rt.ParentEdge[c], rt.Root)
	suite := d.rootSolutions(final)
	if len(suite) == 0 {
		return nil, fmt.Errorf("core: no feasible solution (all domains pruned)")
	}
	if d.lp != nil {
		d.lp.final(rt.Root, len(final))
		for _, rs := range suite {
			d.lp.survive(rs.sol)
		}
	}
	return &Result{Suite: suite, Stats: d.stats, Profile: d.lp.profile()}, nil
}

// solve computes the pruned solution set for the subtree rooted at v.
// In parallel mode, sibling subtrees of a branch node are evaluated on
// separate goroutines; results are combined in deterministic child order
// so serial and parallel runs produce identical suites. With a tracer
// installed, every node contributes one timeline slice whose duration
// covers its whole subtree (so the trace nests like the recursion) and
// whose args carry the quantities Tables I–IV are governed by: the
// final solution-set size and the largest PWL segment count in the set.
func (d *dp) solve(v int) []*Solution {
	if d.tr == nil {
		out := d.solveNode(v)
		d.noteNode(v, len(out))
		return out
	}
	rg := d.tr.Begin(nodeEventName(d.rt.Tree.Node(v).Kind), "core")
	out := d.solveNode(v)
	d.noteNode(v, len(out))
	rg.End(d.targs(trace.I("node", v), trace.I("set", len(out)), trace.I("segs", maxSegsOf(out)))...)
	return out
}

// targs appends the run's identity tags (Options.TraceArgs) to an
// event's own args. Trace-only, so the append cost is paid only with a
// live tracer.
func (d *dp) targs(args ...trace.Arg) []trace.Arg {
	return append(args, d.tags...)
}

// noteNode records one completed subtree solve and its final set size
// — the per-node candidate-count profile the explain reports surface.
func (d *dp) noteNode(v, setSize int) {
	d.mu.Lock()
	d.stats.NodesVisited++
	d.stats.SetSizeSum += setSize
	d.mu.Unlock()
	d.lp.final(v, setSize)
}

// nodeEventName maps a topology node kind to its trace slice name.
func nodeEventName(k topo.Kind) string {
	switch k {
	case topo.Terminal:
		return "dp/leaf"
	case topo.Insertion:
		return "dp/insertion"
	default:
		return "dp/steiner"
	}
}

// maxSegsOf returns the largest PWL segment count (over A and D) in the
// set — trace-only, so the cost is paid only with a live tracer.
func maxSegsOf(sols []*Solution) int {
	m := 0
	for _, s := range sols {
		if n := s.A.NumSegs(); n > m {
			m = n
		}
		if n := s.D.NumSegs(); n > m {
			m = n
		}
	}
	return m
}

func (d *dp) solveNode(v int) []*Solution {
	if d.aborted() {
		return nil
	}
	t := d.rt.Tree
	nd := t.Node(v)
	if nd.Kind == topo.Terminal {
		return d.leafSolutions(v)
	}
	children := d.rt.Children[v]
	if len(children) == 0 {
		// A dangling Steiner stub: contributes no sources, sinks or
		// capacitance of its own (its wire is added when the parent
		// augments).
		return []*Solution{{
			Cost: 0, Cap: 0, Q: math.Inf(-1),
			A: pwl.NegInf(), D: pwl.NegInf(), Dom: pwl.Full(),
		}}
	}
	lifted := make([][]*Solution, len(children))
	if d.opt.Parallel && len(children) > 1 {
		var wg sync.WaitGroup
		for i, c := range children {
			wg.Add(1)
			go func(i, c int) {
				defer wg.Done()
				// Soft bound: acquire a slot when available; when the
				// semaphore is full (deep nesting) proceed anyway rather
				// than risk deadlock — the oversubscription is bounded by
				// the tree's branching.
				select {
				case d.sem <- struct{}{}:
					defer func() { <-d.sem }()
				default:
				}
				lifted[i] = d.augment(d.solve(c), d.rt.ParentEdge[c], v)
			}(i, c)
		}
		wg.Wait()
	} else {
		for i, c := range children {
			lifted[i] = d.augment(d.solve(c), d.rt.ParentEdge[c], v)
		}
	}
	if d.getErr() != nil {
		return nil
	}
	cur := lifted[0]
	for i := 1; i < len(lifted); i++ {
		cur = d.prune(d.joinSets(cur, lifted[i], v), "join", v)
	}
	if nd.Kind == topo.Insertion && d.opt.Repeaters {
		cur = d.prune(d.repeaterSolutions(cur, v), "repeater", v)
	}
	return cur
}

// dp carries per-run state. The stats and error fields are shared across
// subtree goroutines in parallel mode and guarded by mu.
type dp struct {
	rt   *topo.Rooted
	tech buslib.Tech
	opt  Options
	ctx  context.Context // nil disables deadline polling
	ins  instr
	tr   *trace.Tracer
	tags []trace.Arg // identity args appended to every trace event
	lp   *lifeProf   // candidate-lifecycle collector; nil unless Options.Profile

	mu    sync.Mutex
	stats Stats
	err   error
	sem   chan struct{} // bounds concurrent subtree goroutines
}

// instr holds the metric handles resolved once per run, so the hot path
// pays only nil-safe atomic updates (or nothing, when Options.Obs is
// nil and every handle stays nil).
type instr struct {
	solutions  *obs.Counter
	pruneCalls *obs.Counter
	pruneDrops *obs.Counter
	preSize    *obs.Histogram
	postSize   *obs.Histogram
	segs       *obs.Histogram
	maxSet     *obs.Gauge
}

// setErr records the first error.
func (d *dp) setErr(err error) {
	d.mu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.mu.Unlock()
}

func (d *dp) getErr() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// aborted polls the run's context (the periodic deadline check of the
// DP) and reports whether the walk should unwind. It is called at every
// node visit and every prune call — the two places where the remaining
// work between checks is bounded by a single set operation.
func (d *dp) aborted() bool {
	if d.ctx != nil {
		if err := d.ctx.Err(); err != nil {
			d.setErr(fmt.Errorf("core: optimization aborted: %w", err))
			return true
		}
	}
	return d.getErr() != nil
}

func (d *dp) note(sols []*Solution) {
	d.mu.Lock()
	d.stats.SolutionsCreated += len(sols)
	for _, s := range sols {
		if n := s.A.NumSegs(); n > d.stats.MaxSegs {
			d.stats.MaxSegs = n
		}
		if n := s.D.NumSegs(); n > d.stats.MaxSegs {
			d.stats.MaxSegs = n
		}
	}
	d.mu.Unlock()
	if d.ins.segs != nil {
		d.ins.solutions.Add(int64(len(sols)))
		for _, s := range sols {
			d.ins.segs.ObserveInt(s.A.NumSegs())
			d.ins.segs.ObserveInt(s.D.NumSegs())
		}
	}
}

// noteSetSize records a finished per-node solution set that did not pass
// through prune (already-pruned sets survive Augment unchanged, and a
// plain leaf is a one-element set), keeping MaxSetSize consistent across
// every construction path. v is the node the set belongs to, for the
// profiling wavefront; the update sites of MaxSetSize (here and in
// prune) are exactly the emitters of dp/wavefront instants, so the
// traced wavefront maxima reconcile with Stats.MaxSetSize.
func (d *dp) noteSetSize(v, n int) {
	d.mu.Lock()
	if n > d.stats.MaxSetSize {
		d.stats.MaxSetSize = n
	}
	d.mu.Unlock()
	d.ins.maxSet.SetMax(int64(n))
	if d.lp != nil && d.tr != nil {
		d.tr.Instant("dp/wavefront", "core", d.targs(trace.I("node", v), trace.I("set", n))...)
	}
}

// born stamps a freshly constructed candidate batch with its birth
// site. One nil check when profiling is off.
func (d *dp) born(sols []*Solution, class string, node int) {
	if d.lp == nil {
		return
	}
	d.lp.born(sols, class, node, waveKind(d.rt.Tree.Node(node).Kind))
}

// waveKind names a node kind for the wavefront summary.
func waveKind(k topo.Kind) string {
	switch k {
	case topo.Terminal:
		return "leaf"
	case topo.Insertion:
		return "insertion"
	default:
		return "steiner"
	}
}

// prune runs the configured MFS pruner over sols. The site labels the
// dominance rule's call point ("drivers", "wire_widths", "join",
// "repeater") for the Stats.PruneSites breakdown and the dp/prune
// trace slice; v is the topology node being pruned, for the profiling
// wavefront.
func (d *dp) prune(sols []*Solution, site string, v int) []*Solution {
	if d.aborted() {
		return nil
	}
	rg := d.tr.Begin("dp/prune", "core")
	var out []*Solution
	switch d.opt.Pruner {
	case PruneNaive:
		out = pruneNaive(sols, d.opt.CoarseEps, d.lp)
		sortSolutions(out)
	case PruneOff:
		out = sols
	default:
		out = pruneDivide(sols, d.opt.CoarseEps, d.lp)
	}
	drops := len(sols) - len(out)
	if d.lp != nil {
		d.lp.survivedPrune(out)
		d.lp.died(v, drops)
		if d.tr != nil {
			d.tr.Instant("dp/wavefront", "core", d.targs(trace.I("node", v), trace.I("set", len(out)))...)
		}
	}
	d.mu.Lock()
	d.stats.PruneCalls++
	d.stats.Dropped += drops
	if d.stats.PruneSites == nil {
		d.stats.PruneSites = map[string]PruneSiteStats{}
	}
	ps := d.stats.PruneSites[site]
	ps.Calls++
	ps.Drops += drops
	d.stats.PruneSites[site] = ps
	if len(out) > d.stats.MaxSetSize {
		d.stats.MaxSetSize = len(out)
	}
	if d.opt.MaxSolutions > 0 && len(out) > d.opt.MaxSolutions && d.err == nil {
		d.err = fmt.Errorf("core: solution set grew to %d (limit %d); see Options.MaxSolutions",
			len(out), d.opt.MaxSolutions)
	}
	d.mu.Unlock()
	if d.ins.pruneCalls != nil {
		d.ins.pruneCalls.Inc()
		d.ins.pruneDrops.Add(int64(drops))
		d.ins.preSize.ObserveInt(len(sols))
		d.ins.postSize.ObserveInt(len(out))
		d.ins.maxSet.SetMax(int64(len(out)))
	}
	if d.tr != nil {
		rg.End(d.targs(trace.S("site", site), trace.I("pre", len(sols)),
			trace.I("post", len(out)), trace.I("drops", drops))...)
	}
	return out
}

// leafSolutions implements LeafSolutions (Fig. 6), extended with the
// driver-sizing option of §V.
func (d *dp) leafSolutions(v int) []*Solution {
	term := d.rt.Tree.Node(v).Term
	q := math.Inf(-1)
	if term.IsSink {
		q = term.Q
	}
	mk := func(cost, routDrv, intr float64, drv *drvRec) *Solution {
		a := pwl.NegInf()
		if term.IsSource {
			a = pwl.Linear(term.AAT+intr+routDrv*term.Cin, routDrv)
		}
		dd := pwl.NegInf()
		if d.opt.IncludeSelf && term.IsSource && term.IsSink {
			dd = a.AddConst(q)
		}
		return &Solution{
			Cost: cost, Cap: term.Cin, Q: q,
			A: a, D: dd, Dom: pwl.Full(), drv: drv,
		}
	}
	if !d.opt.SizeDrivers || !term.IsSource {
		out := []*Solution{mk(0, term.Rout, term.DriverIntrinsic, nil)}
		d.note(out)
		d.born(out, ClassDrivers, v)
		d.noteSetSize(v, len(out))
		return out
	}
	out := make([]*Solution, 0, len(d.tech.Drivers))
	for _, drv := range d.tech.Drivers {
		out = append(out, mk(drv.Cost, drv.Rout, drv.Intrinsic, &drvRec{node: v, driver: drv}))
	}
	d.note(out)
	d.born(out, ClassDrivers, v)
	return d.prune(out, "drivers", v)
}

// augment implements Augment (Fig. 10): extend every solution of a
// subtree across the wire to its parent. With the wire-sizing extension a
// solution is produced per width option. Dominance is preserved by the
// width-1 transform, so no pruning is needed in the plain case. v is
// the parent-side node the lifted set belongs to (the birth site of
// the new candidates).
func (d *dp) augment(sols []*Solution, eid, v int) []*Solution {
	length := d.rt.Tree.Edge(eid).Length
	widths := d.opt.WireWidths
	if len(widths) == 0 {
		widths = []float64{1}
	}
	out := make([]*Solution, 0, len(sols)*len(widths))
	for _, w := range widths {
		re := d.tech.Wire.Res(length) / w
		ce := d.tech.Wire.Cap(length) * w
		extraCost := (w - 1) * length * d.opt.WireCostPerUm
		for _, s := range sols {
			dom := s.Dom.Shift(ce)
			if dom.IsEmpty() {
				continue
			}
			ns := &Solution{
				Cost:   s.Cost + extraCost,
				Cap:    s.Cap + ce,
				Q:      s.Q + re*(ce/2+s.Cap),
				A:      s.A.Shift(ce).AddLinear(re*ce/2, re),
				D:      s.D.Shift(ce),
				Dom:    dom,
				Parity: s.Parity,
				from1:  s,
			}
			if w != 1 {
				ns.width = &widthRec{edge: eid, width: w}
			}
			out = append(out, ns)
		}
	}
	d.note(out)
	if len(widths) > 1 {
		d.born(out, ClassWireWidths, v)
		return d.prune(out, "wire_widths", v)
	}
	d.born(out, ClassWire, v)
	d.noteSetSize(v, len(out))
	return out
}

// joinSets implements JoinSets (Fig. 7): combine the solution sets of two
// branches meeting at a common (Steiner) node v. Each pairing sees the
// sibling's capacitance as additional external load.
func (d *dp) joinSets(s1, s2 []*Solution, v int) []*Solution {
	out := make([]*Solution, 0, len(s1)*len(s2))
	for _, a := range s1 {
		for _, b := range s2 {
			if a.Parity != b.Parity {
				continue
			}
			dom := a.Dom.Shift(b.Cap).Intersect(b.Dom.Shift(a.Cap))
			if dom.IsEmpty() {
				continue
			}
			aShift := a.A.Shift(b.Cap)
			bShift := b.A.Shift(a.Cap)
			dParts := []pwl.Func{
				a.D.Shift(b.Cap),
				b.D.Shift(a.Cap),
			}
			if !math.IsInf(b.Q, -1) {
				dParts = append(dParts, aShift.AddConst(b.Q))
			}
			if !math.IsInf(a.Q, -1) {
				dParts = append(dParts, bShift.AddConst(a.Q))
			}
			out = append(out, &Solution{
				Cost:   a.Cost + b.Cost,
				Cap:    a.Cap + b.Cap,
				Q:      math.Max(a.Q, b.Q),
				A:      aShift.Max(bShift),
				D:      pwl.MaxOver(dParts...),
				Dom:    dom,
				Parity: a.Parity,
				from1:  a,
				from2:  b,
			})
		}
	}
	d.note(out)
	d.born(out, ClassJoin, v)
	if d.lp != nil {
		d.lp.joins(int64(len(s1)) * int64(len(s2)))
	}
	return out
}

// repeaterSolutions implements RepeaterSolutions (Fig. 8): at insertion
// point v, every unbuffered solution may additionally be capped with
// every repeater in each orientation. The repeater decouples the subtree:
// the external capacitance its child side presents is known exactly, so
// A collapses to a single line and D to a constant.
func (d *dp) repeaterSolutions(sols []*Solution, v int) []*Solution {
	out := make([]*Solution, 0, 2*len(sols))
	out = append(out, sols...)
	for _, rep := range d.tech.Repeaters {
		if rep.Inverting && !d.opt.AllowInverting {
			continue
		}
		orientations := []bool{true}
		if !rep.Symmetric() {
			orientations = []bool{true, false}
		}
		for _, aUp := range orientations {
			var capUp, capDown, dUp, rUp, dDown, rDown float64
			if aUp {
				capUp, capDown = rep.CapA, rep.CapB
				dUp, rUp = rep.DelayBA, rep.RoutBA
				dDown, rDown = rep.DelayAB, rep.RoutAB
			} else {
				capUp, capDown = rep.CapB, rep.CapA
				dUp, rUp = rep.DelayAB, rep.RoutAB
				dDown, rDown = rep.DelayBA, rep.RoutBA
			}
			for _, s := range sols {
				if !s.Dom.Contains(capDown) {
					continue
				}
				a0 := s.A.Eval(capDown)
				na := pwl.NegInf()
				if !math.IsInf(a0, -1) {
					na = pwl.Linear(a0+dUp, rUp)
				}
				parity := s.Parity
				if rep.Inverting {
					parity = 1 - parity
				}
				out = append(out, &Solution{
					Cost:   s.Cost + rep.Cost,
					Cap:    capUp,
					Q:      dDown + rDown*s.Cap + s.Q,
					A:      na,
					D:      pwl.Const(s.D.Eval(capDown)),
					Dom:    pwl.Full(),
					Parity: parity,
					from1:  s,
					place:  &placedRec{node: v, rep: rep, aUp: aUp},
				})
			}
		}
	}
	d.note(out)
	// Only the repeater-capped candidates are new births; out[:len(sols)]
	// passes the already-stamped unbuffered set through to the prune.
	d.born(out[len(sols):], ClassRepeater, v)
	return out
}

// rootSolutions implements RootSolutions (Fig. 9): close every surviving
// solution against the root terminal, producing concrete (cost, ARD)
// outcomes, then keep the Pareto frontier.
func (d *dp) rootSolutions(sols []*Solution) Suite {
	term := d.rt.Tree.Node(d.rt.Root).Term
	cE := term.Cin

	type rootDrv struct {
		rout, intr, cost float64
		rec              *drvRec
	}
	var drivers []rootDrv
	if d.opt.SizeDrivers && term.IsSource {
		for _, drv := range d.tech.Drivers {
			drivers = append(drivers, rootDrv{
				rout: drv.Rout, intr: drv.Intrinsic, cost: drv.Cost,
				rec: &drvRec{node: d.rt.Root, driver: drv},
			})
		}
	} else {
		drivers = []rootDrv{{rout: term.Rout, intr: term.DriverIntrinsic}}
	}

	var all Suite
	for _, s := range sols {
		if s.Parity != 0 || !s.Dom.Contains(cE) {
			continue
		}
		for _, drv := range drivers {
			ardVal := s.D.Eval(cE)
			critNote := "internal"
			if term.IsSink {
				if v := s.A.Eval(cE) + term.Q; v > ardVal {
					ardVal = v
					critNote = "to-root"
				}
			}
			if term.IsSource && !math.IsInf(s.Q, -1) {
				if v := term.AAT + drv.intr + drv.rout*(cE+s.Cap) + s.Q; v > ardVal {
					ardVal = v
					critNote = "from-root"
				}
			}
			if d.opt.IncludeSelf && term.IsSource && term.IsSink {
				if v := term.AAT + drv.intr + drv.rout*(cE+s.Cap) + term.Q; v > ardVal {
					ardVal = v
					critNote = "root-self"
				}
			}
			if math.IsInf(ardVal, -1) {
				continue
			}
			rs := RootSolution{
				Cost:    s.Cost + drv.cost,
				ARD:     ardVal,
				sol:     s,
				rootDrv: drv.rec,
				note:    critNote,
			}
			all = append(all, rs)
		}
	}
	return all.pareto()
}

// RootSolution is one point of the cost/performance tradeoff suite.
type RootSolution struct {
	Cost float64
	ARD  float64

	sol     *Solution
	rootDrv *drvRec
	note    string
}

// Assignment reconstructs the full concrete assignment of the solution.
func (r RootSolution) Assignment() rctree.Assignment {
	asg := r.sol.Assignment()
	if r.rootDrv != nil {
		if asg.Drivers == nil {
			asg.Drivers = map[int]buslib.Driver{}
		}
		asg.Drivers[r.rootDrv.node] = r.rootDrv.driver
	}
	return asg
}

// Repeaters returns the number of repeaters placed.
func (r RootSolution) Repeaters() int { return r.sol.RepeaterCount() }

// Suite is a set of root solutions sorted by increasing cost and strictly
// decreasing ARD (a Pareto frontier).
type Suite []RootSolution

// pareto sorts and filters to the strict frontier.
func (s Suite) pareto() Suite {
	if len(s) == 0 {
		return s
	}
	sort.Slice(s, func(i, j int) bool {
		if s[i].Cost != s[j].Cost {
			return s[i].Cost < s[j].Cost
		}
		return s[i].ARD < s[j].ARD
	})
	out := s[:0]
	best := math.Inf(1)
	for _, r := range s {
		if r.ARD < best-domTol {
			out = append(out, r)
			best = r.ARD
		}
	}
	return out
}

// MinCost returns the cheapest solution meeting ARD ≤ spec — Problem 2.1.
func (s Suite) MinCost(spec float64) (RootSolution, bool) {
	for _, r := range s {
		if r.ARD <= spec+domTol {
			return r, true
		}
	}
	return RootSolution{}, false
}

// ErrEmptySuite reports a frontier lookup on an empty suite. Suites
// built by Optimize are never empty (it errors instead), so hitting
// this means the suite was constructed or filtered by hand.
var ErrEmptySuite = errors.New("core: empty suite")

// MinARD returns the best-performance solution regardless of cost (the
// cost-oblivious formulation the paper notes is subsumed by Problem 2.1).
func (s Suite) MinARD() (RootSolution, error) {
	if len(s) == 0 {
		return RootSolution{}, ErrEmptySuite
	}
	return s[len(s)-1], nil
}

// MinCostSolution returns the cheapest solution overall.
func (s Suite) MinCostSolution() (RootSolution, error) {
	if len(s) == 0 {
		return RootSolution{}, ErrEmptySuite
	}
	return s[0], nil
}
