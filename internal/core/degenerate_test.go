package core_test

import (
	"math"
	"testing"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/geom"
	"msrnet/internal/rctree"
	"msrnet/internal/topo"
)

// TestCoincidentTerminals: all pins at one point, zero-length wires
// everywhere. The optimizer must run and report a finite ARD dominated by
// intrinsic delays.
func TestCoincidentTerminals(t *testing.T) {
	tr := topo.New()
	var ids []int
	for i := 0; i < 4; i++ {
		ids = append(ids, tr.AddTerminal(geom.Pt(100, 100), buslib.DefaultTerminal("t")))
	}
	s := tr.AddSteiner(geom.Pt(100, 100))
	for _, id := range ids {
		tr.AddEdge(s, id, 0)
	}
	tech := buslib.Default()
	rt := tr.RootAt(ids[0])
	res, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
	if err != nil {
		t.Fatal(err)
	}
	best := mustMinARD(t, res.Suite)
	if math.IsInf(best.ARD, 0) || best.ARD <= 0 {
		t.Fatalf("degenerate ARD: %g", best.ARD)
	}
	// No insertion points, so no repeaters can be placed.
	if best.Repeaters() != 0 || len(res.Suite) != 1 {
		t.Errorf("expected a single unbuffered solution, got %d points", len(res.Suite))
	}
}

// TestHugeAATSkew: one source arrives extremely late; it must own the
// critical path and the reported ARD must track its AAT exactly.
func TestHugeAATSkew(t *testing.T) {
	tr := topo.New()
	late := buslib.DefaultTerminal("late")
	late.AAT = 1e6
	a := tr.AddTerminal(geom.Pt(0, 0), late)
	b := tr.AddTerminal(geom.Pt(4000, 0), buslib.DefaultTerminal("b"))
	e := tr.AddEdge(a, b, 4000)
	tr.SplitEdge(e, 0.5, topo.Insertion)
	tech := buslib.Default()
	rt := tr.RootAt(a)
	res, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Suite {
		if s.ARD < 1e6 {
			t.Errorf("suite entry below the AAT floor: %g", s.ARD)
		}
		asg := s.Assignment()
		n := rctree.NewNet(rt, tech, asg)
		r := ard.Compute(n, ard.Options{})
		if r.CritSrc != a {
			t.Errorf("critical source should be the late terminal")
		}
	}
}

// TestZeroIntrinsicZeroCostRepeater: a free, zero-delay repeater library
// must never make things worse and the DP must still terminate with a
// finite suite.
func TestZeroIntrinsicZeroCostRepeater(t *testing.T) {
	tr := topo.New()
	a := tr.AddTerminal(geom.Pt(0, 0), buslib.DefaultTerminal("a"))
	b := tr.AddTerminal(geom.Pt(6000, 0), buslib.DefaultTerminal("b"))
	e := tr.AddEdge(a, b, 6000)
	tr.SplitEdge(e, 0.3, topo.Insertion)
	tr.SplitEdge(e, 0.5, topo.Insertion)
	tech := buslib.Default()
	tech.Repeaters = []buslib.Repeater{{
		Name: "free", RoutAB: 0.05, RoutBA: 0.05, CapA: 0.001, CapB: 0.001,
	}}
	rt := tr.RootAt(a)
	res, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
	if err != nil {
		t.Fatal(err)
	}
	// Zero-cost repeaters collapse the cost axis: the suite has exactly
	// one point (cost 0), with the best achievable ARD.
	if len(res.Suite) != 1 || res.Suite[0].Cost != 0 {
		t.Fatalf("suite = %d points, first cost %g", len(res.Suite), res.Suite[0].Cost)
	}
	base := rctree.NewNet(rt, tech, rctree.Assignment{})
	baseARD := ard.Compute(base, ard.Options{}).ARD
	if res.Suite[0].ARD > baseARD+1e-9 {
		t.Errorf("free repeaters made things worse: %g vs %g", res.Suite[0].ARD, baseARD)
	}
}

// TestSingleSourceManySinks: classic single-source buffering as a special
// case of the multisource machinery.
func TestSingleSourceManySinks(t *testing.T) {
	tr := topo.New()
	src := buslib.DefaultTerminal("src")
	src.IsSink = false
	root := tr.AddTerminal(geom.Pt(0, 0), src)
	hub := tr.AddSteiner(geom.Pt(3000, 0))
	tr.AddEdge(root, hub, 3000)
	for i := 0; i < 3; i++ {
		snk := buslib.DefaultTerminal("snk")
		snk.IsSource = false
		id := tr.AddTerminal(geom.Pt(6000, float64(i)*1000), snk)
		tr.AddEdge(hub, id, 3000+float64(i)*1000)
	}
	tr.PlaceInsertionPoints(800)
	tech := buslib.Default()
	rt := tr.RootAt(root)
	res, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check best solution against the naive single-source radius.
	best := mustMinARD(t, res.Suite)
	n := rctree.NewNet(rt, tech, best.Assignment())
	dist := n.DelaysFrom(root)
	worst := math.Inf(-1)
	for _, v := range tr.Sinks() {
		if d := dist[v] + tr.Node(v).Term.Q; d > worst {
			worst = d
		}
	}
	if math.Abs(worst-best.ARD) > 1e-9*(1+worst) {
		t.Errorf("single-source ARD mismatch: %g vs %g", worst, best.ARD)
	}
}

// TestRepeaterAtEveryPoint: dense insertion with a strong incentive — the
// min-ARD solution on a very resistive line should buffer nearly every
// candidate, and reconstruction must stay consistent.
func TestRepeaterAtEveryPoint(t *testing.T) {
	tr := topo.New()
	a := tr.AddTerminal(geom.Pt(0, 0), buslib.DefaultTerminal("a"))
	b := tr.AddTerminal(geom.Pt(20000, 0), buslib.DefaultTerminal("b"))
	tr.AddEdge(a, b, 20000)
	tr.PlaceInsertionPoints(2000)
	tech := buslib.Default()
	tech.Wire.ResPerUm *= 10 // very resistive wire
	rt := tr.RootAt(a)
	res, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
	if err != nil {
		t.Fatal(err)
	}
	best := mustMinARD(t, res.Suite)
	if best.Repeaters() < 5 {
		t.Errorf("resistive line buffered with only %d repeaters", best.Repeaters())
	}
	n := rctree.NewNet(rt, tech, best.Assignment())
	check := ard.Compute(n, ard.Options{})
	if math.Abs(check.ARD-best.ARD) > 1e-6*(1+best.ARD) {
		t.Errorf("reconstruction mismatch: %g vs %g", check.ARD, best.ARD)
	}
}
