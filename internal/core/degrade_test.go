package core_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"msrnet/internal/ard"
	"msrnet/internal/core"
	"msrnet/internal/rctree"
	"msrnet/internal/testnet"
)

// TestCoarseEpsBound: the ε-relaxed dominance of the degraded mode may
// lose accuracy, but only within the documented bound — the coarse
// minimum ARD exceeds the exact one by at most ε per prune call. The
// returned solutions must still be self-consistent: each claimed ARD is
// reproduced by evaluating its reconstructed assignment.
func TestCoarseEpsBound(t *testing.T) {
	const eps = 0.05
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		tr := testnet.RandTree(r, testnet.DefaultConfig())
		tech := testnet.RandTech(r, 1, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))

		exact, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
		if err != nil {
			t.Fatal(err)
		}
		coarse, err := core.Optimize(rt, tech, core.Options{Repeaters: true, CoarseEps: eps})
		if err != nil {
			t.Fatal(err)
		}
		exactBest := mustMinARD(t, exact.Suite)
		coarseBest := mustMinARD(t, coarse.Suite)

		bound := exactBest.ARD + eps*float64(coarse.Stats.PruneCalls) + 1e-9
		if coarseBest.ARD > bound {
			t.Errorf("trial %d: coarse ARD %.9g exceeds bound %.9g (exact %.9g, %d prunes)",
				trial, coarseBest.ARD, bound, exactBest.ARD, coarse.Stats.PruneCalls)
		}
		// Coarser pruning never finds something better than exact.
		if coarseBest.ARD < exactBest.ARD-1e-9 {
			t.Errorf("trial %d: coarse ARD %.9g beats exact %.9g", trial, coarseBest.ARD, exactBest.ARD)
		}
		// Degraded solutions are still real solutions: re-evaluating the
		// reconstructed assignment reproduces the claimed ARD.
		net := rctree.NewNet(rt, tech, coarseBest.Assignment())
		got := ard.Compute(net, ard.Options{}).ARD
		if math.Abs(got-coarseBest.ARD) > 1e-6*(1+coarseBest.ARD) {
			t.Errorf("trial %d: coarse assignment evaluates to %.9g, suite says %.9g",
				trial, got, coarseBest.ARD)
		}
		// The relaxation may only shrink the search: never more work.
		if coarse.Stats.SolutionsCreated > exact.Stats.SolutionsCreated {
			t.Errorf("trial %d: coarse created %d solutions, exact %d",
				trial, coarse.Stats.SolutionsCreated, exact.Stats.SolutionsCreated)
		}
	}
}

// TestCoarseEpsRejectsBadValues: NaN/Inf/negative ε are configuration
// errors, not silently-exact runs.
func TestCoarseEpsRejectsBadValues(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	tr := testnet.RandTree(r, testnet.DefaultConfig())
	tech := testnet.RandTech(r, 1, 0)
	rt := tr.RootAt(testnet.RootTerminal(tr))
	for _, eps := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := core.Optimize(rt, tech, core.Options{Repeaters: true, CoarseEps: eps}); err == nil {
			t.Errorf("CoarseEps %v accepted", eps)
		}
	}
}

// TestOptimizeHonorsContext: the DP polls Options.Context and unwinds
// with a typed error instead of returning a truncated suite.
func TestOptimizeHonorsContext(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	tr := testnet.RandTree(r, testnet.DefaultConfig())
	tech := testnet.RandTech(r, 1, 0)
	rt := tr.RootAt(testnet.RootTerminal(tr))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := core.Optimize(rt, tech, core.Options{Repeaters: true, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled context: res=%v err=%v, want context.Canceled", res, err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	res, err = core.Optimize(rt, tech, core.Options{Repeaters: true, Context: expired})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: res=%v err=%v, want context.DeadlineExceeded", res, err)
	}

	// A live context changes nothing.
	res, err = core.Optimize(rt, tech, core.Options{Repeaters: true, Context: context.Background()})
	if err != nil || len(res.Suite) == 0 {
		t.Fatalf("live context: err=%v", err)
	}
}
