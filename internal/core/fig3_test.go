package core

import (
	"math"
	"testing"

	"msrnet/internal/buslib"
	"msrnet/internal/geom"
	"msrnet/internal/pwl"
	"msrnet/internal/topo"
)

// TestFig3WorkedExample reconstructs the motivational example of Fig. 3
// of the paper: two source terminals u and w whose branches join at a
// vertex v, with bottom-up accumulated resistances of 7 (to u) and 12
// (to w). The arrival-time function at v must be the piecewise maximum
// of two lines with those slopes, the critical source must switch at
// their crossing, and the internal-diameter function must be those lines
// shifted by the opposite branch's sink requirement (Fig. 3(d)).
func TestFig3WorkedExample(t *testing.T) {
	// Technology: 1 Ω/µm and a tiny capacitance so the slopes are clean.
	tech := buslib.Tech{Wire: buslib.Wire{ResPerUm: 1e-3, CapPerUm: 1e-6}}

	// Terminal u: driver resistance 3 kΩ; wire u→v of 4000 µm → 4 kΩ.
	// Accumulated resistance to v: 7 kΩ (the paper's "seven").
	termU := buslib.Terminal{Name: "u", IsSource: true, IsSink: true,
		AAT: 1.0, Q: 0.5, Cin: 0.001, Rout: 3, DriverIntrinsic: 0}
	// Terminal w: driver 2 kΩ; wire w→v of 10000 µm → 10 kΩ. Total 12.
	termW := buslib.Terminal{Name: "w", IsSource: true, IsSink: true,
		AAT: 6.0, Q: 2.5, Cin: 0.001, Rout: 2, DriverIntrinsic: 0}

	tr := topo.New()
	u := tr.AddTerminal(geom.Pt(0, 0), termU)
	w := tr.AddTerminal(geom.Pt(0, 1), termW)
	v := tr.AddSteiner(geom.Pt(1, 0))
	root := tr.AddTerminal(geom.Pt(2, 0), buslib.Terminal{
		Name: "root", IsSink: true, Cin: 0.001, Q: 0})
	euv := tr.AddEdge(u, v, 4000)
	ewv := tr.AddEdge(w, v, 10000)
	tr.AddEdge(v, root, 1)
	rt := tr.RootAt(root)

	d := &dp{rt: rt, tech: tech, opt: Options{}}
	su := d.augment(d.leafSolutions(u), euv, v)
	sw := d.augment(d.leafSolutions(w), ewv, v)
	joined := d.joinSets(su, sw, v)
	if len(joined) != 1 {
		t.Fatalf("expected a single joined solution, got %d", len(joined))
	}
	sol := joined[0]

	// The arrival function at v: max of the u-line (slope 7) and the
	// w-line (slope 12). Capacitances are tiny, so intercepts are
	// approximately the AATs: a_u ≈ 1, a_w ≈ 6.
	segs := sol.A.Segments()
	if len(segs) != 1 || math.Abs(segs[0].M-12) > 1e-3 {
		t.Fatalf("A(c_E) = %v, want a single slope-12 line (w dominates everywhere)", sol.A)
	}
	// The crossing: 1 + 7x = 6 + 12x has no positive solution, so with
	// these AATs the u-line must dominate for small x only if its value
	// is larger there. At x=0: u gives ~1, w gives ~6 → w dominates at 0.
	// Slope 12 > 7 means w dominates everywhere; for the Fig. 3 shape
	// (critical source switching with c_E) swap the arrival offsets:
	termU.AAT, termW.AAT = 6.0, 1.0
	tr.SetTerminal(u, termU)
	tr.SetTerminal(w, termW)
	su = d.augment(d.leafSolutions(u), euv, v)
	sw = d.augment(d.leafSolutions(w), ewv, v)
	sol = d.joinSets(su, sw, v)[0]
	segs = sol.A.Segments()
	if len(segs) != 2 {
		t.Fatalf("switched A(c_E) has %d segments, want 2: %v", len(segs), sol.A)
	}
	// Now u (offset ~6, slope 7) dominates at small c_E and w (offset ~1,
	// slope 12) takes over at x ≈ (6−1)/(12−7) = 1.
	if math.Abs(segs[0].M-7) > 1e-3 || math.Abs(segs[1].M-12) > 1e-3 {
		t.Errorf("A slopes = %.4f, %.4f; want 7 then 12", segs[0].M, segs[1].M)
	}
	if math.Abs(segs[1].X0-1.0) > 0.01 {
		t.Errorf("critical-source switch at c_E = %.4f, want ≈ 1.0", segs[1].X0)
	}

	// Fig. 3(d): the internal diameter is the max of (arrival from u +
	// q of w's branch) and (arrival from w + q of u's branch) — the
	// dashed lines. q values: Q(w)=2.5 lifted across the w-wire, Q(u)=0.5
	// lifted across the u-wire (wire caps are negligible here).
	// D must be a PWL whose value at any x equals that max.
	for _, x := range []float64{0, 0.5, 1, 2, 5} {
		au := su[0].A.Shift(sw[0].Cap).Eval(x)
		aw := sw[0].A.Shift(su[0].Cap).Eval(x)
		qu := su[0].Q
		qw := sw[0].Q
		want := math.Max(au+qw, aw+qu)
		if got := sol.D.Eval(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("D(%g) = %.6f, want %.6f", x, got, want)
		}
	}
}

// TestFig3PWLOperatorsOnArrival exercises the exact PWL primitives listed
// in eq. (3) of the paper on the Fig. 3 arrival function: Max, add
// scalar, add linear (wire), shift (external capacitance growth).
func TestFig3PWLOperators(t *testing.T) {
	aU := pwl.Linear(6, 7)
	aW := pwl.Linear(1, 12)
	arr := aU.Max(aW)
	if arr.NumSegs() != 2 {
		t.Fatalf("max has %d segs", arr.NumSegs())
	}
	// Augment across a wire with R=2, C=0.5: A'(x) = A(x+0.5) + 2(0.25+x).
	lifted := arr.Shift(0.5).AddLinear(2*0.25, 2)
	for _, x := range []float64{0, 0.3, 1, 4} {
		want := math.Max(6+7*(x+0.5), 1+12*(x+0.5)) + 0.5 + 2*x
		if got := lifted.Eval(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("lifted(%g) = %g, want %g", x, got, want)
		}
	}
	// Repeater evaluation point: A evaluated at the repeater's child-side
	// input capacitance collapses the function to a scalar.
	a0 := lifted.Eval(0.04)
	if math.IsInf(a0, 0) || a0 <= 0 {
		t.Errorf("a0 = %g", a0)
	}
}
