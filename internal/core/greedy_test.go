package core_test

import (
	"math"
	"math/rand"
	"testing"

	"msrnet/internal/ard"
	"msrnet/internal/core"
	"msrnet/internal/rctree"
	"msrnet/internal/testnet"
)

// TestGreedyNeverBeatsOptimal: the DP is optimal, so at every cost level
// the greedy baseline's ARD must be ≥ the optimal suite's.
func TestGreedyNeverBeatsOptimal(t *testing.T) {
	r := rand.New(rand.NewSource(2001))
	for trial := 0; trial < 25; trial++ {
		tr := smallNet(r, 5)
		tech := testnet.RandTech(r, 1+r.Intn(2), 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		opt := core.Options{Repeaters: true}
		res, err := core.Optimize(rt, tech, opt)
		if err != nil {
			t.Fatal(err)
		}
		greedy, asgs := core.GreedyInsertion(rt, tech, opt)
		if len(greedy) != len(asgs) {
			t.Fatalf("trajectory lengths differ")
		}
		for _, p := range greedy {
			// Optimal ARD at cost ≤ p.Cost.
			best := math.Inf(1)
			for _, s := range res.Suite {
				if s.Cost <= p.Cost+1e-9 && s.ARD < best {
					best = s.ARD
				}
			}
			if p.ARD < best-1e-9*(1+math.Abs(best)) {
				t.Fatalf("trial %d: greedy (cost %g, ARD %.9g) beats optimal %.9g",
					trial, p.Cost, p.ARD, best)
			}
		}
		// Trajectory invariants: strictly decreasing ARD, increasing cost.
		for i := 1; i < len(greedy); i++ {
			if greedy[i].ARD >= greedy[i-1].ARD || greedy[i].Cost <= greedy[i-1].Cost {
				t.Fatalf("trial %d: non-monotone greedy trajectory", trial)
			}
		}
		// Each trajectory assignment evaluates to its recorded ARD.
		for i, asg := range asgs {
			n := rctree.NewNet(rt, tech, asg)
			got := ard.Compute(n, ard.Options{}).ARD
			if math.Abs(got-greedy[i].ARD) > 1e-9*(1+math.Abs(got)) {
				t.Fatalf("trial %d: trajectory point %d evaluates to %.9g, recorded %.9g",
					trial, i, got, greedy[i].ARD)
			}
		}
	}
}

// TestGreedySometimesSuboptimal: across random instances the greedy
// heuristic must exhibit a strictly positive gap somewhere — otherwise
// the comparison (and the DP) would be pointless.
func TestGreedySometimesSuboptimal(t *testing.T) {
	r := rand.New(rand.NewSource(2002))
	sawGap := false
	for trial := 0; trial < 40 && !sawGap; trial++ {
		tr := smallNet(r, 5)
		tech := testnet.RandTech(r, 2, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		opt := core.Options{Repeaters: true}
		res, err := core.Optimize(rt, tech, opt)
		if err != nil {
			t.Fatal(err)
		}
		greedy, _ := core.GreedyInsertion(rt, tech, opt)
		gap := core.CompareGreedy(greedy, res.Suite)
		if gap.WorstARDGapNs > 1e-9 {
			sawGap = true
		}
	}
	if !sawGap {
		t.Skip("no greedy gap found in 40 trials (library too forgiving); not a failure")
	}
}

// TestCompareGreedy unit-checks the gap computation.
func TestCompareGreedy(t *testing.T) {
	optimal := core.Suite{} // unused fields beyond Cost/ARD are fine here
	_ = optimal
	greedy := []core.CostARD{{Cost: 0, ARD: 10}, {Cost: 2, ARD: 8}}
	// Fake an optimal frontier via ParetoPoints on raw points is not
	// possible (Suite carries unexported fields), so test the arithmetic
	// directly with an empty suite: no reference point → zero gap.
	gap := core.CompareGreedy(greedy, nil)
	if gap.WorstARDGapNs != 0 || gap.GreedyPoints != 2 {
		t.Errorf("gap vs empty suite: %+v", gap)
	}
}
