package core

import (
	"math"
	"reflect"
	"testing"

	"msrnet/internal/buslib"
	"msrnet/internal/netgen"
	"msrnet/internal/obs/trace"
	"msrnet/internal/pwl"
	"msrnet/internal/topo"
)

// TestOptimizeTracesPerNode is the tentpole acceptance check at the
// library level: a 16-terminal run with a live tracer must record one
// DP slice per non-root topology node, each carrying the set-size and
// segment-count args, plus prune slices — and tracing must not change
// the result.
func TestOptimizeTracesPerNode(t *testing.T) {
	tr, err := netgen.Generate(7, netgen.Defaults(16))
	if err != nil {
		t.Fatal(err)
	}
	rt := tr.RootAt(tr.Terminals()[0])
	tech := buslib.Default()

	base, err := Optimize(rt, tech, Options{Repeaters: true})
	if err != nil {
		t.Fatal(err)
	}
	tcr := trace.New(0)
	res, err := Optimize(rt, tech, Options{Repeaters: true, Trace: tcr})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suite) != len(base.Suite) || !reflect.DeepEqual(res.Stats, base.Stats) {
		t.Errorf("tracing changed the run: %+v vs %+v", res.Stats, base.Stats)
	}

	nodeEvents := map[int]trace.Event{}
	prunes := 0
	for _, ev := range tcr.Events() {
		switch ev.Name {
		case "dp/leaf", "dp/steiner", "dp/insertion":
			if ev.Phase != 'X' {
				t.Fatalf("node event not a complete slice: %+v", ev)
			}
			args := map[string]int64{}
			for i := 0; i < int(ev.NArgs); i++ {
				args[ev.Args[i].Key] = ev.Args[i].Val
			}
			for _, key := range []string{"node", "set", "segs"} {
				if _, ok := args[key]; !ok {
					t.Fatalf("node event missing %q arg: %+v", key, ev)
				}
			}
			nodeEvents[int(args["node"])] = ev
		case "dp/prune":
			prunes++
		}
	}
	// Every node except the root (a leaf handled by rootSolutions) is
	// solved exactly once.
	want := tr.NumNodes() - 1
	if len(nodeEvents) != want {
		t.Errorf("traced %d distinct DP nodes, want %d", len(nodeEvents), want)
	}
	if prunes != res.Stats.PruneCalls {
		t.Errorf("traced %d prune slices, stats say %d calls", prunes, res.Stats.PruneCalls)
	}
	// The traced set sizes must be plausible: max equals Stats.MaxSetSize
	// somewhere in the walk is too strong (the max can occur pre-root-
	// augment), but no traced set may exceed it.
	for node, ev := range nodeEvents {
		var set int64
		for i := 0; i < int(ev.NArgs); i++ {
			if ev.Args[i].Key == "set" {
				set = ev.Args[i].Val
			}
		}
		if set > int64(res.Stats.MaxSetSize) {
			t.Errorf("node %d traced set size %d > Stats.MaxSetSize %d", node, set, res.Stats.MaxSetSize)
		}
	}
}

// TestOptimizeTraceParallelRace exercises the tracer from the parallel
// subtree goroutines (meaningful under -race) and checks the run is
// still deterministic.
func TestOptimizeTraceParallelRace(t *testing.T) {
	tr, err := netgen.Generate(3, netgen.Defaults(12))
	if err != nil {
		t.Fatal(err)
	}
	rt := tr.RootAt(tr.Terminals()[0])
	tech := buslib.Default()
	serial, err := Optimize(rt, tech, Options{Repeaters: true})
	if err != nil {
		t.Fatal(err)
	}
	tcr := trace.New(1 << 12)
	par, err := Optimize(rt, tech, Options{Repeaters: true, Parallel: true, Trace: tcr})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.Stats, serial.Stats) || len(par.Suite) != len(serial.Suite) {
		t.Errorf("parallel traced run diverged: %+v vs %+v", par.Stats, serial.Stats)
	}
	if tcr.Total() == 0 {
		t.Error("parallel run recorded no events")
	}
}

// TestWavefrontReconcilesWithMaxSetSize: with Profile and Trace both
// on, the "dp/wavefront" instants sample the per-node set size at
// exactly the sites that feed Stats.MaxSetSize, so the max over the
// timeline equals the stat exactly — the reconciliation the solveprof
// wavefront summary depends on.
func TestWavefrontReconcilesWithMaxSetSize(t *testing.T) {
	tr, err := netgen.Generate(3, netgen.Defaults(12))
	if err != nil {
		t.Fatal(err)
	}
	rt := tr.RootAt(tr.Terminals()[0])
	tcr := trace.New(0)
	res, err := Optimize(rt, buslib.Default(), Options{Repeaters: true, Profile: true, Trace: tcr})
	if err != nil {
		t.Fatal(err)
	}
	maxSet, events := int64(0), 0
	for _, ev := range tcr.Events() {
		if ev.Name != "dp/wavefront" {
			continue
		}
		if ev.Phase != 'i' {
			t.Fatalf("wavefront event not an instant: %+v", ev)
		}
		events++
		var set int64 = -1
		var node int64 = -1
		for i := 0; i < int(ev.NArgs); i++ {
			switch ev.Args[i].Key {
			case "set":
				set = ev.Args[i].Val
			case "node":
				node = ev.Args[i].Val
			}
		}
		if set < 0 || node < 0 {
			t.Fatalf("wavefront event missing node/set args: %+v", ev)
		}
		if set > maxSet {
			maxSet = set
		}
	}
	if events == 0 {
		t.Fatal("profiled traced run emitted no dp/wavefront instants")
	}
	if maxSet != int64(res.Stats.MaxSetSize) {
		t.Errorf("wavefront max set %d != Stats.MaxSetSize %d", maxSet, res.Stats.MaxSetSize)
	}
	// Without Profile the wavefront channel stays silent.
	tcr2 := trace.New(0)
	if _, err := Optimize(rt, buslib.Default(), Options{Repeaters: true, Trace: tcr2}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range tcr2.Events() {
		if ev.Name == "dp/wavefront" {
			t.Fatal("dp/wavefront emitted without Options.Profile")
		}
	}
}

// TestInstrumentationZeroAllocWhenOff is the nil-Recorder fast-path
// guard (PR-1 invariant, re-stated over the tracer): with Options.Obs
// and Options.Trace both nil, the per-node instrumentation sites —
// stats notes, nil metric handles, nil trace regions — must not
// allocate. AllocsPerRun compiles the same code paths Optimize runs per
// node.
func TestInstrumentationZeroAllocWhenOff(t *testing.T) {
	d := &dp{opt: Options{}}
	sols := []*Solution{{
		Cost: 1, Cap: 0.5, Q: math.Inf(-1),
		A: pwl.Linear(1, 2), D: pwl.NegInf(), Dom: pwl.Full(),
	}}
	if n := testing.AllocsPerRun(1000, func() {
		d.note(sols)
		d.noteSetSize(1, len(sols))
		rg := d.tr.Begin(nodeEventName(topo.Terminal), "core")
		rg.End(trace.I("node", 1), trace.I("set", 1), trace.I("segs", 1))
		d.ins.maxSet.SetMax(3)
		d.ins.segs.ObserveInt(2)
		d.ins.solutions.Add(1)
	}); n != 0 {
		t.Errorf("nil-recorder instrumentation allocates %.2f per node, want 0", n)
	}
}

// BenchmarkInstrumentationOff is the benchmark form of the same guard,
// so `go test -bench Instrumentation -benchmem` shows 0 B/op.
func BenchmarkInstrumentationOff(b *testing.B) {
	d := &dp{opt: Options{}}
	sols := []*Solution{{
		Cost: 1, Cap: 0.5, Q: math.Inf(-1),
		A: pwl.Linear(1, 2), D: pwl.NegInf(), Dom: pwl.Full(),
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.note(sols)
		d.noteSetSize(1, len(sols))
		rg := d.tr.Begin(nodeEventName(topo.Terminal), "core")
		rg.End(trace.I("node", i), trace.I("set", 1), trace.I("segs", 1))
	}
}
