package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"msrnet/internal/buslib"
	"msrnet/internal/netgen"
	"msrnet/internal/pwl"
	"msrnet/internal/testnet"
)

func profiledRun(t *testing.T, pins int, seed int64, opt Options) *Result {
	t.Helper()
	tr, err := netgen.Generate(seed, netgen.Defaults(pins))
	if err != nil {
		t.Fatal(err)
	}
	rt := tr.RootAt(tr.Terminals()[0])
	res, err := Optimize(rt, buslib.Default(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// profiledSmallRun is profiledRun over a compact testnet fixture — for
// option combinations (wire sizing, driver sizing) whose solution space
// explodes on the netgen workloads.
func profiledSmallRun(t *testing.T, seed int64, opt Options) *Result {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	cfg := testnet.DefaultConfig()
	cfg.Backbone = 3
	tr := testnet.RandTree(r, cfg)
	tech := testnet.RandTech(r, 2, 3)
	rt := tr.RootAt(testnet.RootTerminal(tr))
	res, err := Optimize(rt, tech, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestProfileDeathsReconcile is the core acceptance invariant: every
// candidate the pruners drop is attributed to exactly one (site, cause)
// cell, every suite point to exactly one birth site, and the derived
// histograms agree with the primary counters.
func TestProfileDeathsReconcile(t *testing.T) {
	for _, tc := range []struct {
		name string
		pins int // 0 selects the compact testnet fixture
		seed int64
		opt  Options
	}{
		{"repeaters/12pin", 12, 3, Options{Repeaters: true, Profile: true}},
		{"repeaters/10pin", 10, 1, Options{Repeaters: true, Profile: true}},
		{"sizing", 0, 1012, Options{Repeaters: true, SizeDrivers: true, Profile: true}},
		{"widths", 0, 1011, Options{Repeaters: true, WireWidths: []float64{1, 2}, WireCostPerUm: 1e-4, Profile: true}},
		{"naive", 10, 1, Options{Repeaters: true, Pruner: PruneNaive, Profile: true}},
		{"parallel", 12, 3, Options{Repeaters: true, Parallel: true, Profile: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var res *Result
			if tc.pins == 0 {
				res = profiledSmallRun(t, tc.seed, tc.opt)
			} else {
				res = profiledRun(t, tc.pins, tc.seed, tc.opt)
			}
			p := res.Profile
			if p == nil {
				t.Fatal("Options.Profile set but Result.Profile is nil")
			}
			if p.Runs != 1 {
				t.Errorf("Runs = %d, want 1", p.Runs)
			}
			if got := p.TotalDeaths(); got != res.Stats.Dropped {
				t.Errorf("attributed deaths %d != Stats.Dropped %d", got, res.Stats.Dropped)
			}
			if got := p.TotalSurvived(); got != len(res.Suite) {
				t.Errorf("attributed survivors %d != suite points %d", got, len(res.Suite))
			}
			// Depth histogram is a repartition of the same deaths.
			depthDeaths, depthSegs := 0, int64(0)
			for _, c := range p.Depth {
				depthDeaths += c.Deaths
				depthSegs += c.SegOps
			}
			if depthDeaths != res.Stats.Dropped {
				t.Errorf("depth histogram holds %d deaths, want %d", depthDeaths, res.Stats.Dropped)
			}
			if depthSegs != p.WastedSegOps {
				t.Errorf("depth histogram holds %d wasted seg ops, totals say %d", depthSegs, p.WastedSegOps)
			}
			// So is the wavefront's died axis.
			waveDied := 0
			for _, w := range p.Wave {
				waveDied += w.Died
			}
			if waveDied != res.Stats.Dropped {
				t.Errorf("wavefront died %d, want %d", waveDied, res.Stats.Dropped)
			}
			// One candidate tuple per death; wasted never exceeds total.
			if p.WastedAllocs != int64(res.Stats.Dropped) {
				t.Errorf("WastedAllocs %d, want %d", p.WastedAllocs, res.Stats.Dropped)
			}
			if p.WastedSegOps > p.TotalSegOps || p.WastedAllocs > p.TotalAllocs {
				t.Errorf("wasted work exceeds totals: %+v", p)
			}
			known := map[string]bool{}
			for _, c := range DeathCauses {
				known[c] = true
			}
			for k, st := range p.Sites {
				if k.Class == "" {
					t.Errorf("death or survival attributed to an unstamped candidate: %+v", st)
				}
				for cause, c := range st.Deaths {
					if !known[cause] {
						t.Errorf("site %v: unknown death cause %q", k, cause)
					}
					if cause == CauseEps && tc.opt.CoarseEps == 0 {
						t.Errorf("site %v: %d eps_coarse deaths on an exact run", k, c.Deaths)
					}
				}
			}
			if res.Stats.Dropped > 0 && p.JoinPairings == 0 && res.Stats.PruneSites["join"].Calls > 0 {
				t.Error("join prunes ran but no pairings were counted")
			}
		})
	}
}

// TestProfileDoesNotChangeRun: profiling is pure observation — suite and
// stats must be bit-identical with Profile on and off.
func TestProfileDoesNotChangeRun(t *testing.T) {
	tr, err := netgen.Generate(3, netgen.Defaults(12))
	if err != nil {
		t.Fatal(err)
	}
	rt := tr.RootAt(tr.Terminals()[0])
	tech := buslib.Default()
	off, err := Optimize(rt, tech, Options{Repeaters: true})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Optimize(rt, tech, Options{Repeaters: true, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(off.Stats, on.Stats) {
		t.Errorf("profiling changed stats: %+v vs %+v", off.Stats, on.Stats)
	}
	if len(off.Suite) != len(on.Suite) {
		t.Fatalf("profiling changed suite size: %d vs %d", len(off.Suite), len(on.Suite))
	}
	for i := range off.Suite {
		if off.Suite[i].Cost != on.Suite[i].Cost || off.Suite[i].ARD != on.Suite[i].ARD {
			t.Errorf("suite point %d differs under profiling", i)
		}
	}
	if off.Profile != nil {
		t.Error("Result.Profile non-nil without Options.Profile")
	}
}

// TestProfileDeterministic: two profiled runs of the same input produce
// deeply equal profiles (the artifact layer then guarantees byte
// equality).
func TestProfileDeterministic(t *testing.T) {
	opt := Options{Repeaters: true, Profile: true}
	a := profiledRun(t, 12, 3, opt)
	b := profiledRun(t, 12, 3, opt)
	if !reflect.DeepEqual(a.Profile, b.Profile) {
		t.Errorf("profiles differ across identical runs:\n%+v\nvs\n%+v", a.Profile, b.Profile)
	}
}

// TestProfileEpsCause: under CoarseEps, deaths that needed the
// relaxation are classified eps_coarse, and the reconciliation
// invariants still hold.
func TestProfileEpsCause(t *testing.T) {
	exact := profiledRun(t, 12, 3, Options{Repeaters: true, Profile: true})
	coarse := profiledRun(t, 12, 3, Options{Repeaters: true, Profile: true, CoarseEps: 0.05})
	p := coarse.Profile
	if got := p.TotalDeaths(); got != coarse.Stats.Dropped {
		t.Errorf("coarse deaths %d != Dropped %d", got, coarse.Stats.Dropped)
	}
	epsDeaths := 0
	for _, st := range p.Sites {
		epsDeaths += st.Deaths[CauseEps].Deaths
	}
	// The relaxation exists to kill more: if coarse pruning dropped more
	// candidates than the exact run created headroom for, some of those
	// kills must be attributed to eps.
	if coarse.Stats.Dropped > exact.Stats.Dropped && epsDeaths == 0 {
		t.Errorf("coarse run dropped %d (exact %d) but no eps_coarse deaths attributed",
			coarse.Stats.Dropped, exact.Stats.Dropped)
	}
}

// TestProfileMergeAdds: Merge is the aggregation path the experiments
// sink and the bench runner use; totals must add component-wise.
func TestProfileMergeAdds(t *testing.T) {
	a := profiledRun(t, 10, 1, Options{Repeaters: true, Profile: true}).Profile
	b := profiledRun(t, 12, 3, Options{Repeaters: true, Profile: true}).Profile
	m := NewLifecycleProfile()
	m.Merge(a)
	m.Merge(b)
	if m.Runs != 2 {
		t.Errorf("merged Runs = %d, want 2", m.Runs)
	}
	if got, want := m.TotalDeaths(), a.TotalDeaths()+b.TotalDeaths(); got != want {
		t.Errorf("merged deaths %d, want %d", got, want)
	}
	if got, want := m.TotalBorn(), a.TotalBorn()+b.TotalBorn(); got != want {
		t.Errorf("merged born %d, want %d", got, want)
	}
	if got, want := m.TotalSegOps, a.TotalSegOps+b.TotalSegOps; got != want {
		t.Errorf("merged TotalSegOps %d, want %d", got, want)
	}
	if got, want := m.JoinPairings, a.JoinPairings+b.JoinPairings; got != want {
		t.Errorf("merged JoinPairings %d, want %d", got, want)
	}
}

// TestKillsExactly pins the eps discriminator on a hand-built pair: t
// survives exact dominance but dies under a relaxed comparison.
func TestKillsExactly(t *testing.T) {
	a := &Solution{Cost: 1, Cap: 1, Q: 1, A: pwl.NegInf(), D: pwl.NegInf(), Dom: pwl.Full()}
	b := &Solution{Cost: 1, Cap: 1, Q: 1.02, A: pwl.NegInf(), D: pwl.NegInf(), Dom: pwl.Full()}
	if !killsExactly(a, b) {
		t.Error("a should kill b exactly (Q 1 <= 1.02)")
	}
	c := &Solution{Cost: 1, Cap: 1, Q: 0.99, A: pwl.NegInf(), D: pwl.NegInf(), Dom: pwl.Full()}
	if killsExactly(b, c) {
		t.Error("b must not kill c exactly (Q 1.02 > 0.99)")
	}
	if dominatedRegion(b, c, 0.05).IsEmpty() {
		t.Error("b should dominate c under eps=0.05")
	}
}

// TestProfileZeroAllocWhenOff extends the PR-1 zero-alloc guard to the
// lifecycle hooks: with profiling off (nil lifeProf), the born/prune
// paths must not allocate.
func TestProfileZeroAllocWhenOff(t *testing.T) {
	d := &dp{opt: Options{}}
	sols := []*Solution{{
		Cost: 1, Cap: 0.5, Q: math.Inf(-1),
		A: pwl.Linear(1, 2), D: pwl.NegInf(), Dom: pwl.Full(),
	}}
	if n := testing.AllocsPerRun(1000, func() {
		d.born(sols, ClassJoin, 1)
		d.lp.survivedPrune(sols)
		d.lp.died(1, 0)
		d.lp.final(1, 1)
		d.lp.joins(4)
	}); n != 0 {
		t.Errorf("nil-profiler lifecycle hooks allocate %.2f per node, want 0", n)
	}
}
