// Package core implements the paper's primary contribution: optimal
// repeater insertion for multisource nets (MSRI — Lillis & Cheng,
// TCAD'99, §IV). Given a routing topology with prescribed degree-two
// insertion points, a repeater library and a performance target, the
// bottom-up dynamic program of Fig. 5 computes the full suite of
// Pareto-optimal (cost, ARD) solutions; the min-cost solution meeting any
// ARD spec — Problem 2.1 — is then a lookup, as is the minimum-diameter
// solution (the cost-oblivious formulation the paper notes is subsumed).
//
// Each candidate subtree solution is characterized by three scalars and
// two piecewise-linear functions of the external capacitance c_E (§IV-B):
//
//	cost  — resources spent in the subtree
//	cap   — capacitance the subtree presents to its parent
//	Q     — max augmented delay from the subtree root to internal sinks
//	A(c_E) — max augmented arrival at the subtree root from internal sources
//	D(c_E) — max internal augmented RC-diameter
//
// Pruning uses the minimal functional subset (Definition 4.3): a
// solution's validity domain (an interval set over c_E) shrinks wherever
// another solution dominates it in all five coordinates.
//
// The same machinery solves discrete driver sizing (§V) by enumerating
// driver options at source leaves, and two documented extensions: wire
// sizing during Augment and inverting repeaters with polarity
// feasibility.
package core

import (
	"fmt"
	"math"
	"sort"

	"msrnet/internal/buslib"
	"msrnet/internal/pwl"
	"msrnet/internal/rctree"
)

// Solution characterizes one candidate repeater/driver assignment for a
// subtree (§IV-B). Solutions are immutable once created; derivation links
// allow the concrete assignment to be reconstructed at the root.
type Solution struct {
	Cost float64
	Cap  float64
	// Q is the maximum augmented delay from the subtree root down to any
	// internal sink; −Inf when the subtree contains no sinks.
	Q float64
	// A gives the maximum augmented arrival time at the subtree root from
	// internal sources as a function of the external capacitance c_E;
	// constant −Inf when the subtree contains no sources.
	A pwl.Func
	// D gives the maximum augmented RC-diameter over source/sink pairs
	// both internal to the subtree, as a function of c_E; constant −Inf
	// when no such pair exists.
	D pwl.Func
	// Dom is the validity domain: the c_E values for which this solution
	// is not (yet known to be) dominated.
	Dom pwl.IntervalSet
	// Parity is the polarity of the subtree's terminals relative to the
	// subtree root signal (0 = non-inverted). Only meaningful when
	// inverting repeaters are in play; solutions of differing parity are
	// incomparable and at the root parity must be 0.
	Parity int

	// Derivation for assignment reconstruction.
	from1, from2 *Solution
	place        *placedRec
	drv          *drvRec
	width        *widthRec

	// lc is the candidate-lifecycle stamp (birth site, survival depth,
	// construction work). Nil unless Options.Profile; the pruners'
	// shrunk-domain copies share it, since a copy is the same logical
	// candidate.
	lc *lifeRec
}

type placedRec struct {
	node int
	rep  buslib.Repeater
	aUp  bool
}

type drvRec struct {
	node   int
	driver buslib.Driver
}

type widthRec struct {
	edge  int
	width float64
}

// Assignment reconstructs the concrete placement decisions along this
// solution's derivation chain.
func (s *Solution) Assignment() rctree.Assignment {
	asg := rctree.Assignment{
		Repeaters: map[int]rctree.Placed{},
		Drivers:   map[int]buslib.Driver{},
		Widths:    map[int]float64{},
	}
	s.collect(&asg)
	if len(asg.Widths) == 0 {
		asg.Widths = nil
	}
	if len(asg.Drivers) == 0 {
		asg.Drivers = nil
	}
	return asg
}

func (s *Solution) collect(asg *rctree.Assignment) {
	for cur := s; cur != nil; {
		if cur.place != nil {
			asg.Repeaters[cur.place.node] = rctree.Placed{Rep: cur.place.rep, ASideUp: cur.place.aUp}
		}
		if cur.drv != nil {
			asg.Drivers[cur.drv.node] = cur.drv.driver
		}
		if cur.width != nil {
			asg.Widths[cur.width.edge] = cur.width.width
		}
		if cur.from2 != nil {
			cur.from2.collect(asg)
		}
		cur = cur.from1
	}
}

// RepeaterCount returns the number of repeaters in the derivation.
func (s *Solution) RepeaterCount() int {
	n := 0
	for cur := s; cur != nil; {
		if cur.place != nil {
			n++
		}
		if cur.from2 != nil {
			n += cur.from2.RepeaterCount()
		}
		cur = cur.from1
	}
	return n
}

// String summarizes the solution for debugging.
func (s *Solution) String() string {
	return fmt.Sprintf("sol{cost=%.3g cap=%.4g q=%.4g |A|=%d |D|=%d dom=%v}",
		s.Cost, s.Cap, s.Q, s.A.NumSegs(), s.D.NumSegs(), s.Dom)
}

// domTol is the tolerance for dominance comparisons: tiny slack so that
// floating-point noise does not keep provably equal solutions alive.
const domTol = 1e-12

// dominatedRegion returns the subset of t.Dom on which s dominates t:
// s's scalars are all ≤ t's, and on the returned c_E region (within
// s.Dom) s's A and D do not exceed t's. Parities must match; mismatched
// parity never dominates.
//
// eps relaxes the comparison on the delay coordinates only (Q, A, D): a
// solution whose delays are within eps of a cheaper one is treated as
// dominated. Cost and Cap stay at the strict tolerance, so eps trades
// timing accuracy — never resource accounting — for smaller sets. The
// induced ARD error is additive per prune pass: at most eps per call,
// hence ≤ eps·Stats.PruneCalls for the whole run.
func dominatedRegion(s, t *Solution, eps float64) pwl.IntervalSet {
	if s.Parity != t.Parity {
		return nil
	}
	if s.Cost > t.Cost+domTol || s.Cap > t.Cap+domTol || !scalarLeq(s.Q, t.Q, domTol+eps) {
		return nil
	}
	reg := s.Dom.Intersect(t.Dom)
	if reg.IsEmpty() {
		return nil
	}
	reg = reg.Intersect(s.A.LeqRegions(t.A, domTol+eps))
	if reg.IsEmpty() {
		return nil
	}
	reg = reg.Intersect(s.D.LeqRegions(t.D, domTol+eps))
	return reg
}

func scalarLeq(a, b, tol float64) bool {
	if math.IsInf(a, -1) {
		return true
	}
	if math.IsInf(b, -1) {
		return false
	}
	return a <= b+tol
}

// pruneNaive computes the minimal functional subset of sols by pairwise
// comparison (O(k²) pairs). Solutions whose domain becomes empty are
// removed. The input slice is not modified; surviving solutions may carry
// reduced domains. lp, when non-nil, receives one death attribution per
// candidate at the subtraction that empties its domain.
func pruneNaive(sols []*Solution, eps float64, lp *lifeProf) []*Solution {
	work := make([]*Solution, len(sols))
	copy(work, sols)
	sortSolutions(work)
	for i := range work {
		if work[i].Dom.IsEmpty() {
			continue
		}
		for j := range work {
			if i == j || work[j].Dom.IsEmpty() {
				continue
			}
			reg := dominatedRegion(work[i], work[j], eps)
			if reg.IsEmpty() {
				continue
			}
			cp := *work[j]
			cp.Dom = work[j].Dom.Subtract(reg)
			if lp != nil {
				if cp.Dom.IsEmpty() {
					lp.kill(work[i], work[j], eps)
				} else if cp.lc != nil {
					cp.lc.domCut = true
				}
			}
			work[j] = &cp
		}
	}
	out := work[:0]
	for _, s := range work {
		if !s.Dom.IsEmpty() {
			out = append(out, s)
		}
	}
	return out
}

// pruneDivide computes the minimal functional subset by the divide and
// conquer scheme of Fig. 4: recursively prune each half, then prune each
// half against the other. Suboptimal solutions discarded deep in the
// recursion never participate in higher-level comparisons, which is the
// source of the speedup in practice.
func pruneDivide(sols []*Solution, eps float64, lp *lifeProf) []*Solution {
	work := make([]*Solution, len(sols))
	copy(work, sols)
	sortSolutions(work)
	out := mfsRec(work, eps, lp)
	final := out[:0]
	for _, s := range out {
		if !s.Dom.IsEmpty() {
			final = append(final, s)
		}
	}
	sortSolutions(final)
	return final
}

func mfsRec(sols []*Solution, eps float64, lp *lifeProf) []*Solution {
	if len(sols) <= 1 {
		return sols
	}
	if len(sols) <= 4 {
		return pruneNaive(sols, eps, lp)
	}
	mid := len(sols) / 2
	left := mfsRec(sols[:mid], eps, lp)
	right := mfsRec(sols[mid:], eps, lp)
	// Cross-prune: right against left, then left against the surviving
	// right.
	right = pruneAgainst(right, left, eps, lp)
	left = pruneAgainst(left, right, eps, lp)
	return append(left, right...)
}

// pruneAgainst shrinks the domains of targets using the members of
// pruners, returning the surviving targets.
func pruneAgainst(targets, prunners []*Solution, eps float64, lp *lifeProf) []*Solution {
	out := make([]*Solution, 0, len(targets))
	for _, t := range targets {
		cur := t
		for _, s := range prunners {
			if s.Dom.IsEmpty() || cur.Dom.IsEmpty() {
				continue
			}
			reg := dominatedRegion(s, cur, eps)
			if reg.IsEmpty() {
				continue
			}
			nd := cur.Dom.Subtract(reg)
			cp := *cur
			cp.Dom = nd
			if lp != nil {
				if nd.IsEmpty() {
					lp.kill(s, cur, eps)
				} else if cp.lc != nil {
					cp.lc.domCut = true
				}
			}
			cur = &cp
		}
		if !cur.Dom.IsEmpty() {
			out = append(out, cur)
		}
	}
	return out
}

// sortSolutions orders by (cost, cap, Q) — the organizational convention
// of §V that keeps comparisons cheap and output deterministic.
func sortSolutions(sols []*Solution) {
	sort.SliceStable(sols, func(i, j int) bool {
		if sols[i].Cost != sols[j].Cost {
			return sols[i].Cost < sols[j].Cost
		}
		if sols[i].Cap != sols[j].Cap {
			return sols[i].Cap < sols[j].Cap
		}
		return sols[i].Q < sols[j].Q
	})
}
