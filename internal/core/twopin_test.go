package core_test

import (
	"math"
	"testing"

	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/geom"
	"msrnet/internal/topo"
)

// lineNet builds a 2-pin net of the given length with insertion points
// every `pitch` µm.
func lineNet(length, pitch float64) *topo.Tree {
	tr := topo.New()
	a := tr.AddTerminal(geom.Pt(0, 0), buslib.DefaultTerminal("a"))
	z := tr.AddTerminal(geom.Pt(length, 0), buslib.DefaultTerminal("z"))
	tr.AddEdge(a, z, length)
	tr.PlaceInsertionPoints(pitch)
	return tr
}

// evenDelay computes the augmented delay of a two-pin line of the given
// length with k identical repeaters evenly spaced — the classical
// closed-form setting of Bakoglu [1] cited in the paper's related work.
func evenDelay(tech buslib.Tech, length float64, k int) float64 {
	term := buslib.DefaultTerminal("x")
	rep := tech.Repeaters[0]
	n := float64(k + 1)
	segR := tech.Wire.Res(length) / n
	segC := tech.Wire.Cap(length) / n

	d := term.AAT + term.DriverIntrinsic
	// Driver stage: the driver also sees its own terminal capacitance.
	load := rep.CapA
	if k == 0 {
		load = term.Cin
	}
	d += term.Rout*(term.Cin+segC+load) + segR*(segC/2+load)
	// Repeater stages.
	for i := 1; i <= k; i++ {
		load = rep.CapA
		if i == k {
			load = term.Cin
		}
		d += rep.DelayAB + rep.RoutAB*(segC+load) + segR*(segC/2+load)
	}
	return d + term.Q
}

// TestTwoPinMatchesEvenSpacing anchors the DP to the two-pin closed-form
// setting: on a uniform line with a fine insertion grid, the DP's
// minimum diameter must (a) not be worse than any evenly-spaced
// configuration representable on the grid, (b) come within 1% of the
// continuous evenly-spaced optimum, and (c) use a repeater count close
// to the analytic optimum.
func TestTwoPinMatchesEvenSpacing(t *testing.T) {
	tech := buslib.Default()
	const length = 16000.0
	tr := lineNet(length, 250) // 16000/250 → 63 evenly spaced points
	rt := tr.RootAt(tr.Terminals()[0])
	res, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
	if err != nil {
		t.Fatal(err)
	}
	best := mustMinARD(t, res.Suite)

	// (a) k = 3, 7, 15 are exactly representable on the 64-segment grid.
	for _, k := range []int{0, 3, 7, 15} {
		if bound := evenDelay(tech, length, k); best.ARD > bound+1e-9 {
			t.Errorf("DP min diameter %.6f worse than representable even spacing k=%d (%.6f)",
				best.ARD, k, bound)
		}
	}
	// (b, c) continuous optimum over all k.
	bestK, bestEven := 0, math.Inf(1)
	for k := 0; k <= 30; k++ {
		if d := evenDelay(tech, length, k); d < bestEven {
			bestEven, bestK = d, k
		}
	}
	if best.ARD > bestEven*1.01 {
		t.Errorf("DP min diameter %.6f more than 1%% above continuous optimum %.6f",
			best.ARD, bestEven)
	}
	if diff := best.Repeaters() - bestK; diff < -2 || diff > 2 {
		t.Errorf("DP uses %d repeaters, analytic optimum is %d", best.Repeaters(), bestK)
	}
}

// TestTwoPinRepeaterCountGrowsWithLength: the optimal repeater count must
// grow with line length (the sqrt scaling of the closed form).
func TestTwoPinRepeaterCountGrowsWithLength(t *testing.T) {
	tech := buslib.Default()
	prev := -1
	for _, length := range []float64{4000, 8000, 16000, 32000} {
		tr := lineNet(length, 400)
		rt := tr.RootAt(tr.Terminals()[0])
		res, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
		if err != nil {
			t.Fatal(err)
		}
		k := mustMinARD(t, res.Suite).Repeaters()
		if k < prev {
			t.Errorf("length %g: repeater count dropped to %d from %d", length, k, prev)
		}
		prev = k
	}
	if prev < 2 {
		t.Errorf("longest line uses only %d repeaters", prev)
	}
}

// TestTwoPinDiameterMonotoneInLength: longer lines are slower, buffered
// or not.
func TestTwoPinDiameterMonotoneInLength(t *testing.T) {
	tech := buslib.Default()
	prev := 0.0
	for _, length := range []float64{2000, 4000, 8000, 16000} {
		tr := lineNet(length, 400)
		rt := tr.RootAt(tr.Terminals()[0])
		res, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
		if err != nil {
			t.Fatal(err)
		}
		d := mustMinARD(t, res.Suite).ARD
		if d <= prev {
			t.Errorf("length %g: optimized diameter %g not larger than %g", length, d, prev)
		}
		prev = d
	}
}
