// Package spef reads and writes a practical subset of the IEEE 1481
// Standard Parasitic Exchange Format, the lingua franca for RC parasitics
// in physical-design flows. It gives the multisource optimizer an
// interchange path with external tools: a routed net exports as a *D_NET
// with π-model resistors and grounded capacitors; a tree-structured
// *D_NET imports back as a routing topology.
//
// Subset and conventions:
//
//   - Units are fixed to the library's internal system: *T_UNIT 1 NS,
//     *C_UNIT 1 PF, *R_UNIT 1 KOHM.
//   - Terminals appear as ports (*P, direction B) in the *CONN section,
//     with *C coordinates; internal nodes carry *N coordinate records.
//   - Each wire becomes one resistor in *RES; its capacitance is split
//     half-and-half onto the endpoint nodes in *CAP (π model). Terminal
//     input capacitances are *CAP entries on the port nodes.
//   - Candidate repeater insertion points — a concept SPEF does not have —
//     are preserved in "// msrnet-insertion <node>" comment lines, which
//     other tools ignore.
//   - Import requires the RC graph to be a tree (the optimizer's domain);
//     meshes are rejected.
//
// Electrical terminal parameters beyond the load capacitance (arrival
// times, downstream requirements, driver strength) are not expressible in
// SPEF; the importer takes them from a caller-supplied template.
package spef

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"msrnet/internal/buslib"
	"msrnet/internal/geom"
	"msrnet/internal/topo"
)

// Write exports the topology as a single-net SPEF document.
func Write(w io.Writer, netName string, tr *topo.Tree, tech buslib.Tech) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, `*SPEF "IEEE 1481 subset"`)
	fmt.Fprintf(bw, "*DESIGN \"%s\"\n", netName)
	fmt.Fprintln(bw, `*VENDOR "msrnet"`)
	fmt.Fprintln(bw, `*PROGRAM "msrnet spef exporter"`)
	fmt.Fprintln(bw, `*DIVIDER /`)
	fmt.Fprintln(bw, `*DELIMITER :`)
	fmt.Fprintln(bw, `*T_UNIT 1 NS`)
	fmt.Fprintln(bw, `*C_UNIT 1 PF`)
	fmt.Fprintln(bw, `*R_UNIT 1 KOHM`)
	fmt.Fprintln(bw, `*L_UNIT 1 HENRY`)
	fmt.Fprintln(bw)

	nodeName := func(id int) string {
		n := tr.Node(id)
		if n.Kind == topo.Terminal {
			return n.Term.Name
		}
		return fmt.Sprintf("%s:%d", netName, id)
	}

	// Node capacitances: half of each incident wire + terminal loads.
	caps := make([]float64, tr.NumNodes())
	var totalCap float64
	for i := 0; i < tr.NumEdges(); i++ {
		e := tr.Edge(i)
		c := tech.Wire.Cap(e.Length)
		caps[e.A] += c / 2
		caps[e.B] += c / 2
		totalCap += c
	}
	for _, id := range tr.Terminals() {
		caps[id] += tr.Node(id).Term.Cin
		totalCap += tr.Node(id).Term.Cin
	}

	fmt.Fprintf(bw, "*D_NET %s %.6g\n", netName, totalCap)
	fmt.Fprintln(bw, "*CONN")
	for _, id := range tr.Terminals() {
		n := tr.Node(id)
		fmt.Fprintf(bw, "*P %s B *C %.6f %.6f\n", n.Term.Name, n.Pt.X, n.Pt.Y)
	}
	for i := 0; i < tr.NumNodes(); i++ {
		n := tr.Node(i)
		if n.Kind != topo.Terminal {
			fmt.Fprintf(bw, "*N %s *C %.6f %.6f\n", nodeName(i), n.Pt.X, n.Pt.Y)
		}
	}
	fmt.Fprintln(bw, "*CAP")
	k := 1
	for i := 0; i < tr.NumNodes(); i++ {
		if caps[i] > 0 {
			fmt.Fprintf(bw, "%d %s %.12g\n", k, nodeName(i), caps[i])
			k++
		}
	}
	fmt.Fprintln(bw, "*RES")
	k = 1
	for i := 0; i < tr.NumEdges(); i++ {
		e := tr.Edge(i)
		fmt.Fprintf(bw, "%d %s %s %.12g\n", k, nodeName(e.A), nodeName(e.B), tech.Wire.Res(e.Length))
		k++
	}
	fmt.Fprintln(bw, "*END")
	for _, id := range tr.Insertions() {
		fmt.Fprintf(bw, "// msrnet-insertion %s\n", nodeName(id))
	}
	return bw.Flush()
}

// Document is a parsed single-net SPEF.
type Document struct {
	Design   string
	Net      string
	TotalCap float64
	Ports    []Port
	Nodes    []InternalNode
	Caps     []CapEntry
	Ress     []ResEntry
	// Insertions lists node names flagged by msrnet-insertion comments.
	Insertions []string
}

// Port is a *CONN *P record.
type Port struct {
	Name string
	Dir  string
	X, Y float64
}

// InternalNode is a *CONN *N record.
type InternalNode struct {
	Name string
	X, Y float64
}

// CapEntry is one grounded capacitor.
type CapEntry struct {
	Node string
	PF   float64
}

// ResEntry is one resistor.
type ResEntry struct {
	A, B string
	KOhm float64
}

// Parse reads the SPEF subset.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	section := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "//") {
			f := strings.Fields(strings.TrimPrefix(line, "//"))
			if len(f) == 2 && f[0] == "msrnet-insertion" {
				doc.Insertions = append(doc.Insertions, f[1])
			}
			continue
		}
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "*DESIGN"):
			doc.Design = strings.Trim(strings.TrimSpace(strings.TrimPrefix(line, "*DESIGN")), `"`)
		case strings.HasPrefix(line, "*T_UNIT"):
			if !strings.Contains(line, "1 NS") {
				return nil, fmt.Errorf("spef: line %d: unsupported time unit %q", lineNo, line)
			}
		case strings.HasPrefix(line, "*C_UNIT"):
			if !strings.Contains(line, "1 PF") {
				return nil, fmt.Errorf("spef: line %d: unsupported capacitance unit %q", lineNo, line)
			}
		case strings.HasPrefix(line, "*R_UNIT"):
			if !strings.Contains(line, "1 KOHM") {
				return nil, fmt.Errorf("spef: line %d: unsupported resistance unit %q", lineNo, line)
			}
		case strings.HasPrefix(line, "*D_NET"):
			if len(fields) != 3 {
				return nil, fmt.Errorf("spef: line %d: malformed *D_NET", lineNo)
			}
			doc.Net = fields[1]
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("spef: line %d: bad total cap: %w", lineNo, err)
			}
			doc.TotalCap = v
		case line == "*CONN" || line == "*CAP" || line == "*RES":
			section = line
		case line == "*END":
			section = ""
		case strings.HasPrefix(line, "*P "):
			p := Port{Name: fields[1]}
			if len(fields) >= 3 {
				p.Dir = fields[2]
			}
			if x, y, ok := coordOf(fields); ok {
				p.X, p.Y = x, y
			}
			doc.Ports = append(doc.Ports, p)
		case strings.HasPrefix(line, "*N "):
			n := InternalNode{Name: fields[1]}
			if x, y, ok := coordOf(fields); ok {
				n.X, n.Y = x, y
			}
			doc.Nodes = append(doc.Nodes, n)
		case section == "*CAP":
			if len(fields) != 3 {
				return nil, fmt.Errorf("spef: line %d: malformed cap entry", lineNo)
			}
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("spef: line %d: bad capacitance: %w", lineNo, err)
			}
			doc.Caps = append(doc.Caps, CapEntry{Node: fields[1], PF: v})
		case section == "*RES":
			if len(fields) != 4 {
				return nil, fmt.Errorf("spef: line %d: malformed res entry", lineNo)
			}
			v, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("spef: line %d: bad resistance: %w", lineNo, err)
			}
			doc.Ress = append(doc.Ress, ResEntry{A: fields[1], B: fields[2], KOhm: v})
		case strings.HasPrefix(line, "*"):
			// Unhandled header record: tolerated.
		default:
			return nil, fmt.Errorf("spef: line %d: unexpected %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if doc.Net == "" {
		return nil, fmt.Errorf("spef: no *D_NET found")
	}
	return doc, nil
}

func coordOf(fields []string) (x, y float64, ok bool) {
	for i, f := range fields {
		if f == "*C" && i+2 < len(fields) {
			x, err1 := strconv.ParseFloat(fields[i+1], 64)
			y, err2 := strconv.ParseFloat(fields[i+2], 64)
			if err1 == nil && err2 == nil {
				return x, y, true
			}
		}
	}
	return 0, 0, false
}

// ToTopology rebuilds a routing tree from the parsed document. The RC
// graph must be a tree over the named nodes; resistor values convert to
// wire lengths through tech's per-µm resistance. Terminal electrical
// parameters come from mkTerm (typically a closure over a template),
// which receives the port name; the port's load capacitance (its *CAP
// entry minus adjacent half-wire contributions) is assigned to Cin.
func ToTopology(doc *Document, tech buslib.Tech, mkTerm func(name string) buslib.Terminal) (*topo.Tree, error) {
	if tech.Wire.ResPerUm <= 0 {
		return nil, fmt.Errorf("spef: technology needs positive wire resistance")
	}
	tr := topo.New()
	id := map[string]int{}
	isPort := map[string]bool{}
	for _, p := range doc.Ports {
		term := mkTerm(p.Name)
		term.Name = p.Name
		id[p.Name] = tr.AddTerminal(geom.Pt(p.X, p.Y), term)
		isPort[p.Name] = true
	}
	insertion := map[string]bool{}
	for _, n := range doc.Insertions {
		insertion[n] = true
	}
	for _, n := range doc.Nodes {
		if _, dup := id[n.Name]; dup {
			return nil, fmt.Errorf("spef: duplicate node %q", n.Name)
		}
		if insertion[n.Name] {
			id[n.Name] = tr.AddInsertion(geom.Pt(n.X, n.Y))
		} else {
			id[n.Name] = tr.AddSteiner(geom.Pt(n.X, n.Y))
		}
	}
	// Any resistor endpoint not declared gets an implicit Steiner node.
	for _, r := range doc.Ress {
		for _, name := range []string{r.A, r.B} {
			if _, ok := id[name]; !ok {
				id[name] = tr.AddSteiner(geom.Pt(0, 0))
			}
		}
	}
	for _, r := range doc.Ress {
		length := r.KOhm / tech.Wire.ResPerUm
		tr.AddEdge(id[r.A], id[r.B], length)
	}
	// Recover terminal loads: port cap entry minus half of each incident
	// wire's capacitance.
	capAt := map[string]float64{}
	for _, c := range doc.Caps {
		capAt[c.Node] += c.PF
	}
	for name, nid := range id {
		if !isPort[name] {
			continue
		}
		cin := capAt[name]
		for _, eid := range tr.Incident(nid) {
			cin -= tech.Wire.Cap(tr.Edge(eid).Length) / 2
		}
		if cin < 0 {
			cin = 0
		}
		term := tr.Node(nid).Term
		term.Cin = cin
		tr.SetTerminal(nid, term)
	}
	tr.EnsureTerminalLeaves()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("spef: RC network is not a routing tree: %w", err)
	}
	return tr, nil
}

// Read parses and converts in one step.
func Read(r io.Reader, tech buslib.Tech, mkTerm func(name string) buslib.Terminal) (*topo.Tree, error) {
	doc, err := Parse(r)
	if err != nil {
		return nil, err
	}
	return ToTopology(doc, tech, mkTerm)
}

// PortNames returns the sorted port names of a document.
func (d *Document) PortNames() []string {
	out := make([]string, 0, len(d.Ports))
	for _, p := range d.Ports {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}
