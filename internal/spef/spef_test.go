package spef

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/netgen"
	"msrnet/internal/rctree"
)

func defaultTerm(name string) buslib.Terminal {
	return buslib.DefaultTerminal(name)
}

func TestRoundTripPreservesElectricalView(t *testing.T) {
	tech := buslib.Default()
	for _, seed := range []int64{1, 2, 3} {
		tr, err := netgen.Generate(seed, netgen.Defaults(8))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, "bus8", tr, tech); err != nil {
			t.Fatal(err)
		}
		tr2, err := Read(bytes.NewReader(buf.Bytes()), tech, defaultTerm)
		if err != nil {
			t.Fatal(err)
		}
		// Same terminals.
		if len(tr2.Terminals()) != len(tr.Terminals()) {
			t.Fatalf("seed %d: terminals %d vs %d", seed, len(tr2.Terminals()), len(tr.Terminals()))
		}
		// Insertion points survive the comment extension.
		if len(tr2.Insertions()) != len(tr.Insertions()) {
			t.Fatalf("seed %d: insertions %d vs %d", seed, len(tr2.Insertions()), len(tr.Insertions()))
		}
		// Wirelength preserved through the R→length conversion.
		if math.Abs(tr2.TotalWireLength()-tr.TotalWireLength()) > 1e-6*tr.TotalWireLength() {
			t.Fatalf("seed %d: wirelength %g vs %g", seed, tr2.TotalWireLength(), tr.TotalWireLength())
		}
		// The electrical view is identical: same ARD.
		a1 := ard.Compute(rctree.NewNet(tr.RootAt(tr.Terminals()[0]), tech, rctree.Assignment{}), ard.Options{})
		a2 := ard.Compute(rctree.NewNet(tr2.RootAt(tr2.Terminals()[0]), tech, rctree.Assignment{}), ard.Options{})
		if math.Abs(a1.ARD-a2.ARD) > 1e-9*(1+a1.ARD) {
			t.Fatalf("seed %d: ARD %g vs %g", seed, a1.ARD, a2.ARD)
		}
	}
}

func TestWriteFormat(t *testing.T) {
	tech := buslib.Default()
	tr, err := netgen.Generate(4, netgen.Defaults(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, "mynet", tr, tech); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"*SPEF", "*DESIGN \"mynet\"", "*T_UNIT 1 NS", "*C_UNIT 1 PF",
		"*R_UNIT 1 KOHM", "*D_NET mynet", "*CONN", "*CAP", "*RES", "*END",
		"msrnet-insertion",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in output", want)
		}
	}
	// Total cap in the D_NET header equals the sum of CAP entries.
	doc, err := Parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, c := range doc.Caps {
		sum += c.PF
	}
	if math.Abs(sum-doc.TotalCap) > 1e-6*(1+doc.TotalCap) {
		t.Errorf("cap sum %g vs header %g", sum, doc.TotalCap)
	}
	if len(doc.PortNames()) != 4 {
		t.Errorf("ports = %v", doc.PortNames())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"no-net", "*SPEF \"x\"\n"},
		{"bad-unit", "*T_UNIT 1 PS\n*D_NET n 1\n"},
		{"bad-cap", "*D_NET n 1\n*CAP\n1 x notanumber\n"},
		{"bad-res", "*D_NET n 1\n*RES\n1 a b nan... no\n"},
		{"garbage", "*D_NET n 1\nhello world\n"},
		{"bad-dnet", "*D_NET n\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(c.in)); err == nil {
				t.Errorf("accepted %q", c.in)
			}
		})
	}
}

func TestToTopologyRejectsMesh(t *testing.T) {
	in := `*SPEF "x"
*T_UNIT 1 NS
*C_UNIT 1 PF
*R_UNIT 1 KOHM
*D_NET loop 1.0
*CONN
*P a B *C 0 0
*P b B *C 10 0
*N loop:1 *C 5 0
*CAP
1 a 0.05
*RES
1 a loop:1 0.1
2 loop:1 b 0.1
3 a b 0.3
*END
`
	tech := buslib.Default()
	if _, err := Read(strings.NewReader(in), tech, defaultTerm); err == nil {
		t.Fatal("mesh accepted")
	}
}

func TestToTopologyMinimal(t *testing.T) {
	in := `*SPEF "x"
*T_UNIT 1 NS
*C_UNIT 1 PF
*R_UNIT 1 KOHM
*D_NET two 0.29
*CONN
*P a B *C 0 0
*P b B *C 1000 0
*CAP
1 a 0.11
2 b 0.11
*RES
1 a b 0.08
*END
`
	tech := buslib.Default() // 8e-5 kΩ/µm → 0.08 kΩ = 1000 µm
	tr, err := Read(strings.NewReader(in), tech, defaultTerm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.TotalWireLength()-1000) > 1e-6 {
		t.Errorf("length = %g", tr.TotalWireLength())
	}
	// Cin recovered: 0.11 − half wire cap (0.12/2 = 0.06) = 0.05.
	for _, id := range tr.Terminals() {
		if cin := tr.Node(id).Term.Cin; math.Abs(cin-0.05) > 1e-9 {
			t.Errorf("Cin = %g, want 0.05", cin)
		}
	}
}

func TestImplicitNodesGetSteiner(t *testing.T) {
	in := `*SPEF "x"
*T_UNIT 1 NS
*C_UNIT 1 PF
*R_UNIT 1 KOHM
*D_NET n 0.1
*CONN
*P a B *C 0 0
*P b B *C 1000 0
*CAP
1 a 0.05
*RES
1 a n:99 0.04
2 n:99 b 0.04
*END
`
	tr, err := Read(strings.NewReader(in), buslib.Default(), defaultTerm)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 3 {
		t.Errorf("nodes = %d, want 3", tr.NumNodes())
	}
}
