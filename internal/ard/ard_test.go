package ard_test

import (
	"math"
	"math/rand"
	"testing"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/geom"
	"msrnet/internal/obs"
	"msrnet/internal/rctree"
	"msrnet/internal/testnet"
	"msrnet/internal/topo"
)

// TestLinearMatchesNaive is the central equivalence check of §III: the
// single-pass Fig. 2 algorithm must produce exactly the same ARD as one
// Elmore propagation per source, across random topologies, random
// electrical parameters and random repeater assignments.
func TestLinearMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 400; trial++ {
		cfg := testnet.DefaultConfig()
		cfg.Backbone = 1 + r.Intn(12)
		cfg.ZeroLenEdges = trial%4 == 0
		cfg.AllRoles = trial%5 == 0
		tr := testnet.RandTree(r, cfg)
		tech := testnet.RandTech(r, 2, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		asg := testnet.RandAssignment(r, rt, tech, 0.5)
		n := rctree.NewNet(rt, tech, asg)
		for _, includeSelf := range []bool{false, true} {
			want, wantSrc, wantSink := n.NaiveARD(includeSelf)
			got := ard.Compute(n, ard.Options{IncludeSelf: includeSelf})
			if math.Abs(got.ARD-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("trial %d (self=%v): linear ARD %.12g != naive %.12g",
					trial, includeSelf, got.ARD, want)
			}
			// The critical pair must achieve the ARD (ties may differ).
			if got.CritSrc >= 0 {
				aat := tr.Node(got.CritSrc).Term.AAT
				q := tr.Node(got.CritSink).Term.Q
				pd := n.PathDelay(got.CritSrc, got.CritSink)
				if math.Abs(aat+pd+q-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("trial %d: reported pair (%d,%d) achieves %.12g, ARD is %.12g (naive pair %d,%d)",
						trial, got.CritSrc, got.CritSink, aat+pd+q, want, wantSrc, wantSink)
				}
			}
		}
	}
}

// TestLinearMatchesNaiveWithDriverOverrides exercises driver-sizing
// assignments too.
func TestLinearMatchesNaiveWithDriverOverrides(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	for trial := 0; trial < 100; trial++ {
		tr := testnet.RandTree(r, testnet.DefaultConfig())
		tech := testnet.RandTech(r, 1, 4)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		asg := testnet.RandAssignment(r, rt, tech, 0.3)
		asg.Drivers = map[int]buslib.Driver{}
		for _, s := range tr.Sources() {
			if r.Intn(2) == 0 {
				asg.Drivers[s] = tech.Drivers[r.Intn(len(tech.Drivers))]
			}
		}
		n := rctree.NewNet(rt, tech, asg)
		want, _, _ := n.NaiveARD(false)
		got := ard.Compute(n, ard.Options{})
		if math.Abs(got.ARD-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("trial %d: %.12g != %.12g", trial, got.ARD, want)
		}
	}
}

// TestRootChoiceInvariance: the ARD is a property of the net, not of the
// rooting. Re-rooting at every terminal must give the same value for a
// fixed physical repeater placement. (Orientations are expressed in the
// rooted frame, so we fix them in a root-independent way: A side faces
// the lower-id neighbor.)
func TestRootChoiceInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	for trial := 0; trial < 50; trial++ {
		tr := testnet.RandTree(r, testnet.DefaultConfig())
		tech := testnet.RandTech(r, 1, 0)
		// Physical placement: repeater at each insertion point w.p. 1/2,
		// A side toward the lower-id neighbor.
		type phys struct{ rep buslib.Repeater }
		placedAt := map[int]phys{}
		for _, id := range tr.Insertions() {
			if r.Intn(2) == 0 {
				placedAt[id] = phys{rep: tech.Repeaters[0]}
			}
		}
		var ref float64
		for i, root := range tr.Terminals() {
			rt := tr.RootAt(root)
			asg := rctree.Assignment{Repeaters: map[int]rctree.Placed{}}
			for id, ph := range placedAt {
				// Lower-id neighbor = A side. In the rooted frame the A
				// side faces the parent iff parent has the lower id of
				// the two neighbors.
				nb := neighbors(tr, id)
				low := nb[0]
				if nb[1] < low {
					low = nb[1]
				}
				asg.Repeaters[id] = rctree.Placed{Rep: ph.rep, ASideUp: rt.Parent[id] == low}
			}
			n := rctree.NewNet(rt, tech, asg)
			got := ard.Compute(n, ard.Options{}).ARD
			if i == 0 {
				ref = got
				continue
			}
			if math.Abs(got-ref) > 1e-9*(1+math.Abs(ref)) {
				t.Fatalf("trial %d: rooting at %d gives %.12g, rooting at %d gives %.12g",
					trial, root, got, tr.Terminals()[0], ref)
			}
		}
	}
}

func neighbors(tr *topo.Tree, v int) [2]int {
	inc := tr.Incident(v)
	return [2]int{tr.Edge(inc[0]).Other(v), tr.Edge(inc[1]).Other(v)}
}

// TestTwoPinClosedForm checks the ARD of a 2-pin net against a closed
// form.
func TestTwoPinClosedForm(t *testing.T) {
	tr := topo.New()
	ta := buslib.Terminal{Name: "a", IsSource: true, IsSink: true,
		AAT: 1.0, Q: 0.5, Cin: 0.05, Rout: 0.4, DriverIntrinsic: 0.1}
	tb := buslib.Terminal{Name: "b", IsSource: true, IsSink: true,
		AAT: 0.2, Q: 2.0, Cin: 0.08, Rout: 0.3, DriverIntrinsic: 0.15}
	a := tr.AddTerminal(geom.Pt(0, 0), ta)
	b := tr.AddTerminal(geom.Pt(1000, 0), tb)
	tr.AddEdge(a, b, 1000)
	tech := buslib.Tech{Wire: buslib.Wire{ResPerUm: 1e-4, CapPerUm: 2e-4}}
	n := rctree.NewNet(tr.RootAt(a), tech, rctree.Assignment{})
	const rw, cw = 0.1, 0.2
	stage := 0.05 + cw + 0.08
	ab := 1.0 + (0.1 + 0.4*stage + rw*(cw/2+0.08)) + 2.0
	ba := 0.2 + (0.15 + 0.3*stage + rw*(cw/2+0.05)) + 0.5
	want := math.Max(ab, ba)
	got := ard.Compute(n, ard.Options{})
	if math.Abs(got.ARD-want) > 1e-12 {
		t.Errorf("ARD = %.12g, want %.12g", got.ARD, want)
	}
	if got.CritSrc != a || got.CritSink != b {
		t.Errorf("critical pair (%d,%d), want (%d,%d)", got.CritSrc, got.CritSink, a, b)
	}
}

// TestSingleSourceReducesToRadius: with one source, ARD = AAT + max
// augmented sink delay, i.e. the classical single-source measure.
func TestSingleSourceReducesToRadius(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 50; trial++ {
		tr := testnet.RandTree(r, testnet.DefaultConfig())
		// Demote all but one source.
		srcs := tr.Sources()
		keep := srcs[r.Intn(len(srcs))]
		for _, s := range srcs {
			term := tr.Node(s).Term
			term.IsSource = s == keep
			if s == keep {
				term.IsSink = false // ensure at least src; self excluded anyway
			} else {
				term.IsSink = true
			}
			tr.SetTerminal(s, term)
		}
		if len(tr.Sinks()) == 0 {
			continue
		}
		tech := testnet.RandTech(r, 1, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		asg := testnet.RandAssignment(r, rt, tech, 0.5)
		n := rctree.NewNet(rt, tech, asg)
		dist := n.DelaysFrom(keep)
		want := math.Inf(-1)
		for _, v := range tr.Sinks() {
			if v == keep {
				continue
			}
			d := tr.Node(keep).Term.AAT + dist[v] + tr.Node(v).Term.Q
			if d > want {
				want = d
			}
		}
		got := ard.Compute(n, ard.Options{})
		if math.Abs(got.ARD-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("trial %d: %.12g != %.12g", trial, got.ARD, want)
		}
		if got.CritSrc != keep {
			t.Fatalf("trial %d: critical source %d, want %d", trial, got.CritSrc, keep)
		}
	}
}

// TestMonotoneInAAT: raising a source's arrival time can only raise the
// ARD.
func TestMonotoneInAAT(t *testing.T) {
	r := rand.New(rand.NewSource(505))
	for trial := 0; trial < 50; trial++ {
		tr := testnet.RandTree(r, testnet.DefaultConfig())
		tech := testnet.RandTech(r, 1, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		asg := testnet.RandAssignment(r, rt, tech, 0.5)
		n := rctree.NewNet(rt, tech, asg)
		before := ard.Compute(n, ard.Options{}).ARD
		s := tr.Sources()[r.Intn(len(tr.Sources()))]
		term := tr.Node(s).Term
		term.AAT += 5
		tr.SetTerminal(s, term)
		n2 := rctree.NewNet(rt, tech, asg)
		after := ard.Compute(n2, ard.Options{}).ARD
		if after < before-1e-9 {
			t.Fatalf("trial %d: ARD decreased after raising AAT: %g -> %g", trial, before, after)
		}
	}
}

func BenchmarkARDLinear(b *testing.B) {
	benchARD(b, func(n *rctree.Net) {
		ard.Compute(n, ard.Options{})
	})
}

func BenchmarkARDNaive(b *testing.B) {
	benchARD(b, func(n *rctree.Net) {
		n.NaiveARD(false)
	})
}

func benchARD(b *testing.B, f func(n *rctree.Net)) {
	r := rand.New(rand.NewSource(9))
	cfg := testnet.DefaultConfig()
	cfg.Backbone = 200
	cfg.AllRoles = true
	tr := testnet.RandTree(r, cfg)
	tech := testnet.RandTech(r, 1, 0)
	rt := tr.RootAt(testnet.RootTerminal(tr))
	n := rctree.NewNet(rt, tech, testnet.RandAssignment(r, rt, tech, 0.3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(n)
	}
}

// TestComputeRecordsObs: the linear-time pass must record its phase
// spans and node counters, the measured side of the §III claim.
func TestComputeRecordsObs(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	cfg := testnet.DefaultConfig()
	cfg.AllRoles = true
	tr := testnet.RandTree(r, cfg)
	tech := testnet.RandTech(r, 1, 0)
	rt := tr.RootAt(testnet.RootTerminal(tr))
	n := rctree.NewNet(rt, tech, rctree.Assignment{})

	reg := obs.New()
	plain := ard.Compute(n, ard.Options{})
	rec := ard.Compute(n, ard.Options{Obs: reg})
	if plain.ARD != rec.ARD {
		t.Fatalf("instrumentation changed the result: %g vs %g", plain.ARD, rec.ARD)
	}
	snap := reg.Snapshot()
	if snap.Counters["ard/runs"] != 1 {
		t.Errorf("runs = %d, want 1", snap.Counters["ard/runs"])
	}
	if snap.Counters["ard/nodes"] == 0 || snap.Counters["ard/sources"] == 0 || snap.Counters["ard/sinks"] == 0 {
		t.Errorf("node/source/sink counters empty: %+v", snap.Counters)
	}
	for _, path := range []string{"ard/compute", "ard/compute/stage_cap", "ard/compute/dfs"} {
		if reg.SpanSeconds(path) <= 0 {
			t.Errorf("span %q not recorded", path)
		}
	}
}
