package ard_test

import (
	"testing"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/netgen"
	"msrnet/internal/obs/trace"
	"msrnet/internal/rctree"
)

// TestComputeTracesThreePasses: a traced ARD run must record the
// Fig. 2 pipeline as nested slices — stage_cap, dfs and root under one
// ard/compute — with the input sizes as args, and tracing must not
// change the result.
func TestComputeTracesThreePasses(t *testing.T) {
	tr, err := netgen.Generate(11, netgen.Defaults(16))
	if err != nil {
		t.Fatal(err)
	}
	rt := tr.RootAt(tr.Terminals()[0])
	n := rctree.NewNet(rt, buslib.Default(), rctree.Assignment{})

	base := ard.Compute(n, ard.Options{})
	tcr := trace.New(64)
	got := ard.Compute(n, ard.Options{Trace: tcr})
	if got != base {
		t.Errorf("tracing changed the result: %+v vs %+v", got, base)
	}

	byName := map[string]trace.Event{}
	for _, ev := range tcr.Events() {
		byName[ev.Name] = ev
	}
	for _, name := range []string{"ard/compute", "ard/stage_cap", "ard/dfs", "ard/root"} {
		ev, ok := byName[name]
		if !ok {
			t.Fatalf("missing %q slice; recorded %v", name, names(tcr.Events()))
		}
		if ev.Phase != 'X' {
			t.Errorf("%s phase = %c, want X", name, ev.Phase)
		}
	}
	total := byName["ard/compute"]
	args := map[string]int64{}
	for i := 0; i < int(total.NArgs); i++ {
		args[total.Args[i].Key] = total.Args[i].Val
	}
	if args["nodes"] != int64(tr.NumNodes()) {
		t.Errorf("compute nodes arg = %d, want %d", args["nodes"], tr.NumNodes())
	}
	if args["sources"] != int64(len(tr.Sources())) || args["sinks"] != int64(len(tr.Sinks())) {
		t.Errorf("compute source/sink args = %v", args)
	}
	// The passes nest inside the total slice.
	for _, name := range []string{"ard/stage_cap", "ard/dfs", "ard/root"} {
		ev := byName[name]
		if ev.TS < total.TS || ev.TS+ev.Dur > total.TS+total.Dur {
			t.Errorf("%s [%v,%v] not nested in ard/compute [%v,%v]",
				name, ev.TS, ev.TS+ev.Dur, total.TS, total.TS+total.Dur)
		}
	}
}

func names(evs []trace.Event) []string {
	var out []string
	for _, ev := range evs {
		out = append(out, ev.Name)
	}
	return out
}
