// Package ard implements the linear-time computation of the augmented
// RC-diameter (ARD) of a multisource net under the Elmore delay model —
// the algorithm of Fig. 2 of Lillis & Cheng (TCAD'99, §III).
//
// The ARD of a topology T is
//
//	ARD(T) = max over sources u, sinks v of  AAT(u) + PD(u,v) + Q(v),
//
// the worst augmented delay across the net. The naive method runs one
// single-source Elmore propagation per source, O(s·n); this package
// computes the same value in a single O(n) depth-first pass after the two
// capacitance passes of eqs. (1)–(2), maintaining for every subtree three
// values: the maximum augmented arrival time a at the subtree root via
// internal sources, the maximum augmented delay q from the root to
// internal sinks, and the maximum internal augmented diameter d.
package ard

import (
	"math"

	"msrnet/internal/obs"
	"msrnet/internal/obs/trace"
	"msrnet/internal/rctree"
	"msrnet/internal/topo"
)

// Options tunes the ARD computation.
type Options struct {
	// IncludeSelf counts u==v source/sink pairs (a terminal observing its
	// own launch). The bus-timing interpretation excludes them, matching
	// the experiments in §VI; enable for the fully general diameter.
	IncludeSelf bool
	// Obs, when non-nil, records the "ard/compute" span (with its
	// "stage_cap" and "dfs" sub-passes) and per-run node counters, the
	// observable side of the §III linear-time claim. Nil is free.
	Obs obs.Recorder
	// Trace, when non-nil, records the timeline of the three Fig. 2
	// passes — "ard/stage_cap" (the eqs. 1–2 capacitance pass),
	// "ard/dfs" (the post-order (a, q, d) walk) and "ard/root" (the root
	// combination) — nested under one "ard/compute" slice whose args
	// carry the input sizes (nodes, sources, sinks) the O(n) claim is
	// stated over. Nil is free.
	Trace *trace.Tracer
	// TraceArgs are appended to every trace event this run emits —
	// request-scoped identity (trace_id, job seq) in the serving layer,
	// so a shared ring can be filtered per job. Ignored without Trace.
	TraceArgs []trace.Arg
}

// targs appends the run's identity tags to an event's own args.
func (o *Options) targs(args ...trace.Arg) []trace.Arg {
	return append(args, o.TraceArgs...)
}

// Result carries the ARD value and the witnessing critical pair.
type Result struct {
	ARD      float64
	CritSrc  int // terminal node id of the critical source (-1 if none)
	CritSink int // terminal node id of the critical sink (-1 if none)
}

// valued pairs a scalar with the terminal that witnesses it, so the
// critical pair can be reported (Fig. 11 of the paper annotates solutions
// with their critical source and sink).
type valued struct {
	v    float64
	node int
}

func negInfV() valued { return valued{v: math.Inf(-1), node: -1} }

func maxV(a, b valued) valued {
	if b.v > a.v {
		return b
	}
	return a
}

// pairVal is a diameter candidate with its witnessing pair.
type pairVal struct {
	v         float64
	src, sink int
}

func negInfP() pairVal { return pairVal{v: math.Inf(-1), src: -1, sink: -1} }

func maxP(a, b pairVal) pairVal {
	if b.v > a.v {
		return b
	}
	return a
}

// subtree holds the (a, q, d) triple of Fig. 2 for one subtree.
type subtree struct {
	a valued  // max augmented arrival at the subtree root from internal sources
	q valued  // max augmented delay from the subtree root to internal sinks
	d pairVal // max internal augmented diameter
}

// lifted is a child's (a, q) after crossing the wire to its parent.
type lifted struct {
	a, q valued
}

// Compute returns the ARD of the assigned net in linear time.
func Compute(n *rctree.Net, opt Options) Result {
	t := n.R.Tree
	total := obs.Start(opt.Obs, "ard/compute")
	defer total.End()
	trTotal := opt.Trace.Begin("ard/compute", "ard")
	defer func() {
		trTotal.End(opt.targs(trace.I("nodes", t.NumNodes()),
			trace.I("sources", len(t.Sources())), trace.I("sinks", len(t.Sinks())))...)
	}()
	if opt.Obs != nil {
		opt.Obs.Counter("ard/runs").Inc()
		opt.Obs.Counter("ard/nodes").Add(int64(t.NumNodes()))
		opt.Obs.Counter("ard/sources").Add(int64(len(t.Sources())))
		opt.Obs.Counter("ard/sinks").Add(int64(len(t.Sinks())))
	}
	// Per-node total stage capacitance for O(1) "stage cap away from
	// child c" queries at branch points: stageCap[v] − wireCap(c) −
	// CapBelow[c]. Undefined at repeater nodes, whose sides decouple.
	capPass := obs.Start(opt.Obs, "ard/compute/stage_cap")
	trCap := opt.Trace.Begin("ard/stage_cap", "ard")
	stageCap := make([]float64, t.NumNodes())
	for _, v := range n.R.PostOrder {
		if _, ok := n.Assign.Repeaters[v]; ok {
			stageCap[v] = math.NaN()
			continue
		}
		stageCap[v] = n.StageCapAt(v)
	}
	trCap.End(opt.targs(trace.I("nodes", t.NumNodes()))...)
	capPass.End()

	dfsPass := obs.Start(opt.Obs, "ard/compute/dfs")
	defer dfsPass.End()
	trDFS := opt.Trace.Begin("ard/dfs", "ard")
	sub := make([]subtree, t.NumNodes())
	for _, v := range n.R.PostOrder {
		if v == n.R.Root {
			break // root is last in post-order; handled below
		}
		nd := t.Node(v)
		if nd.Kind == topo.Terminal {
			sub[v] = leafTriple(n, v, opt)
			continue
		}
		cur := subtree{a: negInfV(), q: negInfV(), d: negInfP()}
		lifts := make([]lifted, 0, len(n.R.Children[v]))
		_, hasRep := n.Assign.Repeaters[v]
		for _, c := range n.R.Children[v] {
			e := n.R.ParentEdge[c]
			re, ce := n.EdgeRes(e), n.EdgeCap(e)
			la := sub[c].a
			if !math.IsInf(la.v, -1) {
				var away float64
				if hasRep {
					away = n.Assign.Repeaters[v].CapDownSide()
				} else {
					away = stageCap[v] - ce - n.CapBelow[c]
				}
				la.v += re * (ce/2 + away)
			}
			lq := sub[c].q
			if !math.IsInf(lq.v, -1) {
				lq.v += re * (ce/2 + n.CapBelow[c])
			}
			lifts = append(lifts, lifted{a: la, q: lq})
			cur.a = maxV(cur.a, la)
			cur.q = maxV(cur.q, lq)
			cur.d = maxP(cur.d, sub[c].d)
		}
		// Cross-branch diameter pairs: max over i ≠ j of a_i' + q_j'.
		if len(lifts) >= 2 {
			cur.d = maxP(cur.d, crossMax(lifts))
		}
		// Crossing a repeater at v rebases a and q to the parent side.
		if pl, ok := n.Assign.Repeaters[v]; ok {
			if !math.IsInf(cur.a.v, -1) {
				du, ru := pl.UpDelay()
				e := n.R.ParentEdge[v]
				cur.a.v += du + ru*(n.EdgeCap(e)+n.CapAboveFrom[v])
			}
			if !math.IsInf(cur.q.v, -1) {
				dd, rd := pl.DownDelay()
				var below float64
				for _, c := range n.R.Children[v] {
					below += n.EdgeCap(n.R.ParentEdge[c]) + n.CapBelow[c]
				}
				cur.q.v = dd + rd*below + cur.q.v
			}
		}
		sub[v] = cur
	}
	trDFS.End(opt.targs(trace.I("nodes", len(n.R.PostOrder)))...)

	// Root combination. The paper roots the tree at an arbitrary terminal;
	// the root acts as one more leaf joined to its (single) child branch.
	trRoot := opt.Trace.Begin("ard/root", "ard")
	root := n.R.Root
	rootNd := t.Node(root)
	rootLeaf := leafTriple(n, root, opt)
	best := negInfP()
	if opt.IncludeSelf && !math.IsInf(rootLeaf.a.v, -1) && !math.IsInf(rootLeaf.q.v, -1) {
		best = maxP(best, pairVal{v: rootLeaf.a.v + rootLeaf.q.v, src: root, sink: root})
	}
	var rootLifts []lifted
	for _, c := range n.R.Children[root] {
		e := n.R.ParentEdge[c]
		re, ce := n.EdgeRes(e), n.EdgeCap(e)
		la := sub[c].a
		if !math.IsInf(la.v, -1) {
			la.v += re * (ce/2 + stageCap[root] - ce - n.CapBelow[c])
		}
		lq := sub[c].q
		if !math.IsInf(lq.v, -1) {
			lq.v += re * (ce/2 + n.CapBelow[c])
		}
		rootLifts = append(rootLifts, lifted{a: la, q: lq})
		best = maxP(best, sub[c].d)
		if rootNd.Kind == topo.Terminal && rootNd.Term.IsSink && !math.IsInf(la.v, -1) {
			best = maxP(best, pairVal{v: la.v + rootNd.Term.Q, src: la.node, sink: root})
		}
		if !math.IsInf(rootLeaf.a.v, -1) && !math.IsInf(lq.v, -1) {
			best = maxP(best, pairVal{v: rootLeaf.a.v + lq.v, src: root, sink: lq.node})
		}
	}
	// Cross pairs between distinct root branches (only if the root is not
	// a leaf, e.g. before EnsureTerminalLeaves or when rooted at a Steiner
	// node in tests).
	if len(rootLifts) >= 2 {
		best = maxP(best, crossMax(rootLifts))
	}
	trRoot.End(opt.targs(trace.I("branches", len(rootLifts)))...)
	return Result{ARD: best.v, CritSrc: best.src, CritSink: best.sink}
}

// leafTriple builds the (a, q, d) triple for a leaf terminal (or the root
// terminal acting as a leaf).
func leafTriple(n *rctree.Net, v int, opt Options) subtree {
	nd := n.R.Tree.Node(v)
	out := subtree{a: negInfV(), q: negInfV(), d: negInfP()}
	if nd.Kind != topo.Terminal {
		return out
	}
	term := nd.Term
	if term.IsSource {
		rout, intr := driverOf(n, v)
		out.a = valued{v: term.AAT + intr + rout*n.StageCapAt(v), node: v}
	}
	if term.IsSink {
		out.q = valued{v: term.Q, node: v}
	}
	if opt.IncludeSelf && term.IsSource && term.IsSink {
		out.d = pairVal{v: out.a.v + out.q.v, src: v, sink: v}
	}
	return out
}

// crossMax returns the maximum a_i + q_j over i ≠ j, with witnesses.
func crossMax(lifts []lifted) pairVal {
	best := negInfP()
	// Best and second-best arrival with owner index.
	bi, si := -1, -1
	for i, l := range lifts {
		if bi == -1 || l.a.v > lifts[bi].a.v {
			si, bi = bi, i
		} else if si == -1 || l.a.v > lifts[si].a.v {
			si = i
		}
	}
	for j, l := range lifts {
		if math.IsInf(l.q.v, -1) {
			continue
		}
		ai := bi
		if j == bi {
			ai = si
		}
		if ai == -1 || math.IsInf(lifts[ai].a.v, -1) {
			continue
		}
		best = maxP(best, pairVal{
			v:    lifts[ai].a.v + l.q.v,
			src:  lifts[ai].a.node,
			sink: l.q.node,
		})
	}
	return best
}

func driverOf(n *rctree.Net, s int) (rout, intrinsic float64) {
	term := n.R.Tree.Node(s).Term
	if d, ok := n.Assign.Drivers[s]; ok {
		return d.Rout, d.Intrinsic
	}
	return term.Rout, term.DriverIntrinsic
}
