package rsmt

import (
	"math"
	"math/rand"
	"testing"

	"msrnet/internal/geom"
)

func randPts(r *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(r.Float64()*10000, r.Float64()*10000)
	}
	return pts
}

// isSpanningTree verifies structure: connected, n-1 edges over used nodes.
func isSpanningTree(t Tree) bool {
	n := len(t.Points)
	if len(t.Edges) != n-1 {
		return false
	}
	adj := make([][]int, n)
	for _, e := range t.Edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n || e[0] == e[1] {
			return false
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	cnt := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				cnt++
				stack = append(stack, u)
			}
		}
	}
	return cnt == n
}

func TestMSTTwoPoints(t *testing.T) {
	tr := MST([]geom.Point{geom.Pt(0, 0), geom.Pt(3, 4)})
	if len(tr.Edges) != 1 || tr.Length() != 7 {
		t.Errorf("MST 2pt: edges=%d len=%g", len(tr.Edges), tr.Length())
	}
}

func TestMSTKnownSquare(t *testing.T) {
	// Unit square: MST length 3.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(1, 1)}
	tr := MST(pts)
	if math.Abs(tr.Length()-3) > 1e-12 {
		t.Errorf("square MST length = %g, want 3", tr.Length())
	}
	if !isSpanningTree(tr) {
		t.Error("not a spanning tree")
	}
}

func TestMSTIsMinimalVsRandomTrees(t *testing.T) {
	// The MST must not be longer than random spanning trees.
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		pts := randPts(r, 6)
		tr := MST(pts)
		// Random spanning tree via random parent assignment.
		for k := 0; k < 20; k++ {
			var l float64
			perm := r.Perm(len(pts))
			for i := 1; i < len(perm); i++ {
				l += geom.Dist(pts[perm[i]], pts[perm[r.Intn(i)]])
			}
			if tr.Length() > l+1e-9 {
				t.Fatalf("MST %g longer than random tree %g", tr.Length(), l)
			}
		}
	}
}

func TestHananGrid(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 2), geom.Pt(3, 1)}
	g := HananGrid(pts)
	if len(g) != 9 {
		t.Fatalf("Hanan grid size = %d, want 9", len(g))
	}
	want := map[geom.Point]bool{}
	for _, x := range []float64{0, 1, 3} {
		for _, y := range []float64{0, 1, 2} {
			want[geom.Pt(x, y)] = true
		}
	}
	for _, p := range g {
		if !want[p] {
			t.Errorf("unexpected grid point %v", p)
		}
	}
}

func TestSteinerLShape(t *testing.T) {
	// Three corners of a rectangle: the Steiner tree should use the
	// fourth-corner trunk, total length = half perimeter = 5.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0), geom.Pt(0, 2)}
	tr := Steiner(pts)
	if math.Abs(tr.Length()-5) > 1e-9 {
		t.Errorf("L-shape Steiner length = %g, want 5", tr.Length())
	}
	if !isSpanningTree(tr) {
		t.Error("not a spanning tree")
	}
}

func TestSteinerCross(t *testing.T) {
	// Four points in a plus configuration: MST length 6, Steiner tree 4
	// via the center.
	pts := []geom.Point{geom.Pt(1, 0), geom.Pt(1, 2), geom.Pt(0, 1), geom.Pt(2, 1)}
	mst := MST(pts)
	st := Steiner(pts)
	if math.Abs(mst.Length()-6) > 1e-9 {
		t.Errorf("cross MST = %g, want 6", mst.Length())
	}
	if math.Abs(st.Length()-4) > 1e-9 {
		t.Errorf("cross Steiner = %g, want 4", st.Length())
	}
}

func TestSteinerNeverWorseThanMST(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		pts := randPts(r, 4+r.Intn(8))
		mst := MST(pts)
		st := Steiner(pts)
		if st.Length() > mst.Length()+1e-9 {
			t.Fatalf("trial %d: Steiner %g > MST %g", trial, st.Length(), mst.Length())
		}
		if !isSpanningTree(st) {
			t.Fatalf("trial %d: Steiner result not a tree", trial)
		}
		if st.NumTerminals != len(pts) {
			t.Fatalf("trial %d: NumTerminals=%d", trial, st.NumTerminals)
		}
		// Terminals preserved in place.
		for i, p := range pts {
			if st.Points[i] != p {
				t.Fatalf("trial %d: terminal %d moved", trial, i)
			}
		}
	}
}

func TestSteinerLowerBound(t *testing.T) {
	// Half-perimeter of the bounding box is a lower bound for any
	// rectilinear Steiner tree.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		pts := randPts(r, 3+r.Intn(8))
		st := Steiner(pts)
		hp := geom.Bound(pts).HalfPerimeter()
		if st.Length() < hp-1e-9 {
			t.Fatalf("trial %d: Steiner %g below lower bound %g", trial, st.Length(), hp)
		}
	}
}

func TestSteinerNoUselessPoints(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		pts := randPts(r, 5+r.Intn(6))
		st := Steiner(pts)
		deg := make([]int, len(st.Points))
		for _, e := range st.Edges {
			deg[e[0]]++
			deg[e[1]]++
		}
		for i := st.NumTerminals; i < len(st.Points); i++ {
			if deg[i] <= 2 {
				t.Fatalf("trial %d: Steiner point %d has degree %d", trial, i, deg[i])
			}
		}
	}
}

func TestMSTPanicsOnTooFew(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MST(1 point) did not panic")
		}
	}()
	MST([]geom.Point{geom.Pt(0, 0)})
}
