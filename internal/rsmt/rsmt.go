// Package rsmt constructs low-cost rectilinear Steiner trees over planar
// terminal sets. It provides the routing-topology substrate for the
// experiments of §VI of Lillis & Cheng (TCAD'99): the paper routes its
// random nets with the P-Tree algorithm [16], which is not reproducible
// from the paper itself; per DESIGN.md §4 we substitute the classical
// rectilinear MST (Prim) refined by the iterated 1-Steiner heuristic of
// Kahng & Robins, which likewise produces low-cost rectilinear trees.
// The repeater-insertion optimizer is topology-agnostic, so the
// substitution preserves the character of the results.
package rsmt

import (
	"math"
	"sort"

	"msrnet/internal/geom"
)

// Tree is an abstract routing tree over points: Points[0..n-1] are the
// terminals in input order; any additional points are Steiner points.
// Edges index into Points. Edge lengths are rectilinear distances.
type Tree struct {
	Points []geom.Point
	Edges  [][2]int
	// NumTerminals is the count of original terminals at the front of
	// Points.
	NumTerminals int
}

// Length returns the total rectilinear length of the tree.
func (t Tree) Length() float64 {
	var sum float64
	for _, e := range t.Edges {
		sum += geom.Dist(t.Points[e[0]], t.Points[e[1]])
	}
	return sum
}

// MST builds the rectilinear minimum spanning tree of pts by Prim's
// algorithm in O(n²). It panics on fewer than two points.
func MST(pts []geom.Point) Tree {
	n := len(pts)
	if n < 2 {
		panic("rsmt: MST needs at least two points")
	}
	inTree := make([]bool, n)
	dist := make([]float64, n)
	from := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		from[i] = -1
	}
	dist[0] = 0
	t := Tree{Points: append([]geom.Point(nil), pts...), NumTerminals: n}
	for k := 0; k < n; k++ {
		best := -1
		for i := 0; i < n; i++ {
			if !inTree[i] && (best == -1 || dist[i] < dist[best]) {
				best = i
			}
		}
		inTree[best] = true
		if from[best] >= 0 {
			t.Edges = append(t.Edges, [2]int{from[best], best})
		}
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := geom.Dist(pts[best], pts[i]); d < dist[i] {
					dist[i] = d
					from[i] = best
				}
			}
		}
	}
	return t
}

// HananGrid returns the Hanan grid of pts: every intersection of a
// vertical line through one point with a horizontal line through another.
// Hanan's theorem guarantees an optimal rectilinear Steiner tree using
// only these candidates.
func HananGrid(pts []geom.Point) []geom.Point {
	xs := uniqueCoords(pts, func(p geom.Point) float64 { return p.X })
	ys := uniqueCoords(pts, func(p geom.Point) float64 { return p.Y })
	out := make([]geom.Point, 0, len(xs)*len(ys))
	for _, x := range xs {
		for _, y := range ys {
			out = append(out, geom.Pt(x, y))
		}
	}
	return out
}

func uniqueCoords(pts []geom.Point, get func(geom.Point) float64) []float64 {
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = get(p)
	}
	sort.Float64s(vals)
	out := vals[:0]
	for _, v := range vals {
		if len(out) == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// mstLength computes the rectilinear MST length of pts (Prim, O(n²))
// without materializing the tree.
func mstLength(pts []geom.Point) float64 {
	n := len(pts)
	if n < 2 {
		return 0
	}
	inTree := make([]bool, n)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[0] = 0
	var total float64
	for k := 0; k < n; k++ {
		best := -1
		for i := 0; i < n; i++ {
			if !inTree[i] && (best == -1 || dist[i] < dist[best]) {
				best = i
			}
		}
		inTree[best] = true
		total += dist[best]
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := geom.Dist(pts[best], pts[i]); d < dist[i] {
					dist[i] = d
				}
			}
		}
	}
	return total
}

// Steiner builds a rectilinear Steiner tree by the iterated 1-Steiner
// heuristic: repeatedly add the Hanan-grid point that maximally reduces
// the MST length, until no point helps. The result's length is at most
// the plain MST length.
func Steiner(pts []geom.Point) Tree {
	n := len(pts)
	if n < 2 {
		panic("rsmt: Steiner needs at least two points")
	}
	if n == 2 {
		return MST(pts)
	}
	cur := append([]geom.Point(nil), pts...)
	curLen := mstLength(cur)
	for {
		cands := HananGrid(cur)
		bestGain := 1e-9
		bestIdx := -1
		for i, c := range cands {
			if containsPoint(cur, c) {
				continue
			}
			l := mstLength(append(cur, c))
			if gain := curLen - l; gain > bestGain {
				bestGain = gain
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		cur = append(cur, cands[bestIdx])
		curLen -= bestGain
	}
	t := MST(cur)
	t.NumTerminals = n
	t = Simplify(t)
	return t
}

func containsPoint(pts []geom.Point, p geom.Point) bool {
	for _, q := range pts {
		if q == p {
			return true
		}
	}
	return false
}

// Simplify removes degree-≤2 Steiner points: degree-1 Steiner leaves are
// deleted (with their edge) and degree-2 Steiner points are spliced out —
// in the L1 metric the direct edge is never longer than the detour.
// Terminals are never removed. Topology-synthesis callers use this to
// clean up DP-generated trees.
func Simplify(t Tree) Tree {
	for {
		deg := make([]int, len(t.Points))
		adj := make([][]int, len(t.Points))
		for i, e := range t.Edges {
			deg[e[0]]++
			deg[e[1]]++
			adj[e[0]] = append(adj[e[0]], i)
			adj[e[1]] = append(adj[e[1]], i)
		}
		victim := -1
		for i := t.NumTerminals; i < len(t.Points); i++ {
			if deg[i] <= 2 {
				victim = i
				break
			}
		}
		if victim < 0 {
			return t
		}
		var newEdges [][2]int
		var nbrs []int
		for _, e := range t.Edges {
			switch {
			case e[0] == victim:
				nbrs = append(nbrs, e[1])
			case e[1] == victim:
				nbrs = append(nbrs, e[0])
			default:
				newEdges = append(newEdges, e)
			}
		}
		if len(nbrs) == 2 {
			newEdges = append(newEdges, [2]int{nbrs[0], nbrs[1]})
		}
		// Remove the point, remapping indices.
		last := len(t.Points) - 1
		t.Points[victim] = t.Points[last]
		t.Points = t.Points[:last]
		for i := range newEdges {
			for j := 0; j < 2; j++ {
				if newEdges[i][j] == last {
					newEdges[i][j] = victim
				}
			}
		}
		t.Edges = newEdges
	}
}
