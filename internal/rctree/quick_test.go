package rctree_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"msrnet/internal/rctree"
	"msrnet/internal/testnet"
)

// TestQuickCapConservation: without repeaters, the total capacitance the
// root driver sees equals the sum of all wire capacitance plus all
// non-root terminal loads — charge bookkeeping for the Cdown pass.
func TestQuickCapConservation(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		cfg := testnet.DefaultConfig()
		cfg.Backbone = 1 + rr.Intn(8)
		tr := testnet.RandTree(rr, cfg)
		tech := testnet.RandTech(rr, 0, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		n := rctree.NewNet(rt, tech, rctree.Assignment{})
		var want float64
		for i := 0; i < tr.NumEdges(); i++ {
			want += tech.Wire.Cap(tr.Edge(i).Length)
		}
		for _, id := range tr.Terminals() {
			if id != rt.Root {
				want += tr.Node(id).Term.Cin
			}
		}
		return math.Abs(n.TotalCap()-want) < 1e-9*(1+want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Error(err)
	}
}

// TestQuickDelayMonotoneInLoad: adding load anywhere cannot speed up any
// source-to-node Elmore delay (all sensitivities are nonnegative).
func TestQuickDelayMonotoneInLoad(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	prop := func(seed int64, extra uint16) bool {
		rr := rand.New(rand.NewSource(seed))
		cfg := testnet.DefaultConfig()
		cfg.Backbone = 1 + rr.Intn(6)
		tr := testnet.RandTree(rr, cfg)
		tech := testnet.RandTech(rr, 0, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		n := rctree.NewNet(rt, tech, rctree.Assignment{})
		s := tr.Sources()[0]
		before := n.DelaysFrom(s)
		// Grow one terminal's load.
		terms := tr.Terminals()
		victim := terms[int(extra)%len(terms)]
		term := tr.Node(victim).Term
		term.Cin += 0.1 + float64(extra%100)/100
		tr.SetTerminal(victim, term)
		n2 := rctree.NewNet(rt, tech, rctree.Assignment{})
		after := n2.DelaysFrom(s)
		for v := 0; v < tr.NumNodes(); v++ {
			if after[v] < before[v]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150, Rand: r}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecouplingReducesUpstreamLoad: placing any repeater at an
// insertion point can only reduce (or keep) the capacitance the portion
// of the net above it presents to the root driver, when the repeater's
// input cap is below the subtree cap it hides.
func TestQuickDecouplingReducesUpstreamLoad(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	prop := func(seed int64, pick uint16) bool {
		rr := rand.New(rand.NewSource(seed))
		cfg := testnet.DefaultConfig()
		cfg.Backbone = 1 + rr.Intn(6)
		tr := testnet.RandTree(rr, cfg)
		tech := testnet.RandTech(rr, 1, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		ins := tr.Insertions()
		if len(ins) == 0 {
			return true
		}
		v := ins[int(pick)%len(ins)]
		bare := rctree.NewNet(rt, tech, rctree.Assignment{})
		hidden := bare.CapBelow[v]
		rep := tech.Repeaters[0]
		buffered := rctree.NewNet(rt, tech, rctree.Assignment{
			Repeaters: map[int]rctree.Placed{v: {Rep: rep, ASideUp: true}},
		})
		if rep.CapA <= hidden {
			return buffered.TotalCap() <= bare.TotalCap()+1e-12
		}
		return buffered.TotalCap() >= bare.TotalCap()-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150, Rand: r}); err != nil {
		t.Error(err)
	}
}
