package rctree_test

import (
	"math"
	"math/rand"
	"testing"

	"msrnet/internal/buslib"
	"msrnet/internal/geom"
	"msrnet/internal/rctree"
	"msrnet/internal/testnet"
	"msrnet/internal/topo"
)

// ---------------------------------------------------------------------------
// Independent Elmore oracle.
//
// The oracle computes source-to-node delays on the expanded resistor
// network: each wire becomes one resistor with half its capacitance lumped
// at each endpoint. The Elmore delay from a driving point to a target is
// the sum over resistors on the path of R × (total capacitance on the far
// side of the resistor, where "far side" flooding stops at repeater nodes,
// counting their facing input capacitance). Repeater crossings restart the
// computation in the next stage. This is structurally unlike the
// production code in rctree.go, which uses rooted Cdown/Cup passes.
// ---------------------------------------------------------------------------

// oracle wraps a net for brute-force evaluation.
type oracle struct{ n *rctree.Net }

// stageCapFrom floods from node v, not entering `ban`, stopping at
// repeater nodes (adding their facing input cap), and returns the total
// capacitance including half-caps of traversed wires.
func (o oracle) stageCapFrom(v, ban int) float64 {
	t := o.n.R.Tree
	seen := map[int]bool{v: true, ban: true}
	var cap float64
	var visit func(x int)
	visit = func(x int) {
		nd := t.Node(x)
		if nd.Kind == topo.Terminal {
			cap += nd.Term.Cin
		}
		for _, eid := range t.Incident(x) {
			u := t.Edge(eid).Other(x)
			if seen[u] {
				continue
			}
			seen[u] = true
			cap += o.n.EdgeCap(eid) // both half-caps of the wire
			if pl, ok := o.n.Assign.Repeaters[u]; ok {
				// Stop at the repeater; count its facing input cap.
				if u != o.n.R.Root && o.n.R.Parent[u] == x {
					cap += plCapFacingParent(pl)
				} else {
					cap += plCapFacingChild(pl)
				}
				continue
			}
			visit(u)
		}
	}
	visit(v)
	return cap
}

func plCapFacingParent(p rctree.Placed) float64 { return p.CapUpSide() }
func plCapFacingChild(p rctree.Placed) float64  { return p.CapDownSide() }

// delaysFrom computes delay from source s to every node via recursive
// per-stage evaluation.
func (o oracle) delaysFrom(s int) []float64 {
	t := o.n.R.Tree
	dist := make([]float64, t.NumNodes())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	rout, intr := o.driverAt(s)
	start := intr + rout*o.stageCapFrom(s, -1)
	o.propagateStage(s, -1, start, dist)
	return dist
}

func (o oracle) driverAt(s int) (rout, intr float64) {
	term := o.n.R.Tree.Node(s).Term
	if d, ok := o.n.Assign.Drivers[s]; ok {
		return d.Rout, d.Intrinsic
	}
	return term.Rout, term.DriverIntrinsic
}

// propagateStage sets dist for all nodes reachable from entry without
// crossing a repeater, then recurses through repeaters into next stages.
// base is the arrival time at entry; cameFrom is the node we entered from
// (-1 for the source stage).
func (o oracle) propagateStage(entry, cameFrom int, base float64, dist []float64) {
	t := o.n.R.Tree
	dist[entry] = base
	type item struct{ node, from int }
	stack := []item{{entry, cameFrom}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range t.Incident(it.node) {
			u := t.Edge(eid).Other(it.node)
			if u == it.from {
				continue
			}
			// Wire resistance sees: half its own cap + everything beyond u
			// away from it.node (stage-limited).
			var beyond float64
			if pl, ok := o.n.Assign.Repeaters[u]; ok {
				if o.n.R.Parent[u] == it.node {
					beyond = plCapFacingParent(pl)
				} else {
					beyond = plCapFacingChild(pl)
				}
			} else {
				beyond = o.stageCapFrom(u, it.node)
			}
			d := dist[it.node] + o.n.EdgeRes(eid)*(o.n.EdgeCap(eid)/2+beyond)
			if d >= dist[u] {
				continue
			}
			dist[u] = d
			if pl, ok := o.n.Assign.Repeaters[u]; ok {
				// Cross the repeater into the next stage.
				var nxt int
				for _, e2 := range t.Incident(u) {
					if v2 := t.Edge(e2).Other(u); v2 != it.node {
						nxt = v2
					}
				}
				var intr, rr float64
				if o.n.R.Parent[u] == it.node {
					// entered from parent side: signal flows down.
					intr, rr = pl.DownDelay()
				} else {
					intr, rr = pl.UpDelay()
				}
				// Repeater drives the full next stage (wire caps included).
				load := o.stageCapOutOf(u, it.node)
				after := d + intr + rr*load
				// Find the wire from u to nxt for the per-wire term —
				// handled by recursing with the repeater output as a
				// driving point at u.
				o.propagateStageFromRepeater(u, nxt, after, dist)
			} else {
				stack = append(stack, item{u, it.node})
			}
		}
	}
}

// stageCapOutOf returns the total capacitance of the stage on the far
// side of repeater node u (entered from `from`).
func (o oracle) stageCapOutOf(u, from int) float64 {
	t := o.n.R.Tree
	var cap float64
	for _, eid := range t.Incident(u) {
		v := t.Edge(eid).Other(u)
		if v == from {
			continue
		}
		cap += o.n.EdgeCap(eid)
		if pl, ok := o.n.Assign.Repeaters[v]; ok {
			if o.n.R.Parent[v] == u {
				cap += plCapFacingParent(pl)
			} else {
				cap += plCapFacingChild(pl)
			}
		} else {
			cap += o.stageCapFrom(v, u)
		}
	}
	return cap
}

// propagateStageFromRepeater continues propagation out of repeater u
// toward next, with `base` being the delay at the repeater output.
func (o oracle) propagateStageFromRepeater(u, next int, base float64, dist []float64) {
	t := o.n.R.Tree
	// Find the connecting wire.
	for _, eid := range t.Incident(u) {
		if t.Edge(eid).Other(u) != next {
			continue
		}
		var beyond float64
		if pl, ok := o.n.Assign.Repeaters[next]; ok {
			if o.n.R.Parent[next] == u {
				beyond = plCapFacingParent(pl)
			} else {
				beyond = plCapFacingChild(pl)
			}
		} else {
			beyond = o.stageCapFrom(next, u)
		}
		d := base + o.n.EdgeRes(eid)*(o.n.EdgeCap(eid)/2+beyond)
		if d < dist[next] {
			if pl, ok := o.n.Assign.Repeaters[next]; ok {
				dist[next] = d
				var nxt2 int
				for _, e2 := range t.Incident(next) {
					if v2 := t.Edge(e2).Other(next); v2 != u {
						nxt2 = v2
					}
				}
				var intr, rr float64
				if o.n.R.Parent[next] == u {
					intr, rr = pl.DownDelay()
				} else {
					intr, rr = pl.UpDelay()
				}
				load := o.stageCapOutOf(next, u)
				o.propagateStageFromRepeater(next, nxt2, d+intr+rr*load, dist)
			} else {
				o.propagateStage(next, u, d, dist)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

func twoPinNet(length float64) (*rctree.Net, int, int) {
	tr := topo.New()
	ta := buslib.Terminal{Name: "a", IsSource: true, IsSink: true,
		AAT: 1.0, Q: 0.5, Cin: 0.05, Rout: 0.4, DriverIntrinsic: 0.1}
	tb := buslib.Terminal{Name: "b", IsSource: true, IsSink: true,
		AAT: 0.2, Q: 2.0, Cin: 0.08, Rout: 0.3, DriverIntrinsic: 0.15}
	a := tr.AddTerminal(geom.Pt(0, 0), ta)
	b := tr.AddTerminal(geom.Pt(length, 0), tb)
	tr.AddEdge(a, b, length)
	tech := buslib.Tech{Wire: buslib.Wire{ResPerUm: 1e-4, CapPerUm: 2e-4}}
	n := rctree.NewNet(tr.RootAt(a), tech, rctree.Assignment{})
	return n, a, b
}

func TestTwoPinHandComputed(t *testing.T) {
	// Wire: 1000 µm → R = 0.1 kΩ, C = 0.2 pF.
	n, a, b := twoPinNet(1000)
	const (
		rw, cw = 0.1, 0.2
		ca, cb = 0.05, 0.08
	)
	// Driver at a: intr 0.1, rout 0.4, load = ca + cw + cb.
	wantA := 0.1 + 0.4*(ca+cw+cb)
	dist := n.DelaysFrom(a)
	if math.Abs(dist[a]-wantA) > 1e-12 {
		t.Errorf("dist[a] = %g, want %g", dist[a], wantA)
	}
	wantB := wantA + rw*(cw/2+cb)
	if math.Abs(dist[b]-wantB) > 1e-12 {
		t.Errorf("dist[b] = %g, want %g", dist[b], wantB)
	}
	// PathDelay both directions.
	if got := n.PathDelay(a, b); math.Abs(got-wantB) > 1e-12 {
		t.Errorf("PathDelay(a,b) = %g, want %g", got, wantB)
	}
	wantBA := 0.15 + 0.3*(ca+cw+cb) + rw*(cw/2+ca)
	if got := n.PathDelay(b, a); math.Abs(got-wantBA) > 1e-12 {
		t.Errorf("PathDelay(b,a) = %g, want %g", got, wantBA)
	}
	// Naive ARD: max(AAT_a + PD(a,b) + Q_b, AAT_b + PD(b,a) + Q_a).
	ardWant := math.Max(1.0+wantB+2.0, 0.2+wantBA+0.5)
	got, cs, ck := n.NaiveARD(false)
	if math.Abs(got-ardWant) > 1e-12 {
		t.Errorf("NaiveARD = %g, want %g", got, ardWant)
	}
	if cs != a || ck != b {
		t.Errorf("critical pair = (%d,%d), want (%d,%d)", cs, ck, a, b)
	}
}

func TestTwoPinWithRepeaterHandComputed(t *testing.T) {
	tr := topo.New()
	ta := buslib.Terminal{Name: "a", IsSource: true, IsSink: true,
		Cin: 0.05, Rout: 0.4, DriverIntrinsic: 0.1}
	tb := buslib.Terminal{Name: "b", IsSource: true, IsSink: true,
		Cin: 0.05, Rout: 0.4, DriverIntrinsic: 0.1}
	a := tr.AddTerminal(geom.Pt(0, 0), ta)
	b := tr.AddTerminal(geom.Pt(2000, 0), tb)
	e := tr.AddEdge(a, b, 2000)
	mid := tr.SplitEdge(e, 0.5, topo.Insertion)
	tech := buslib.Tech{Wire: buslib.Wire{ResPerUm: 1e-4, CapPerUm: 2e-4}}
	rep := buslib.Repeater{Name: "r", DelayAB: 0.05, DelayBA: 0.07,
		RoutAB: 0.2, RoutBA: 0.25, CapA: 0.03, CapB: 0.04, Cost: 2}
	asg := rctree.Assignment{Repeaters: map[int]rctree.Placed{mid: {Rep: rep, ASideUp: true}}}
	n := rctree.NewNet(tr.RootAt(a), tech, asg)

	// Each half-wire: R = 0.1, C = 0.2.
	const rw, cw = 0.1, 0.2
	// a → b: driver at a sees stage: ca + wire1 + CapA(rep).
	s1 := 0.05 + cw + 0.03
	atMid := 0.1 + 0.4*s1 + rw*(cw/2+0.03)
	// Repeater drives down (A→B): intrinsic 0.05, rout 0.2, load = wire2 + cb.
	s2 := cw + 0.05
	atB := atMid + 0.05 + 0.2*s2 + rw*(cw/2+0.05)
	if got := n.PathDelay(a, b); math.Abs(got-atB) > 1e-12 {
		t.Errorf("PathDelay(a,b) = %g, want %g", got, atB)
	}
	// b → a: driver at b sees cb + wire2 + CapB.
	s2b := 0.05 + cw + 0.04
	atMidUp := 0.1 + 0.4*s2b + rw*(cw/2+0.04)
	s1b := cw + 0.05
	atA := atMidUp + 0.07 + 0.25*s1b + rw*(cw/2+0.05)
	if got := n.PathDelay(b, a); math.Abs(got-atA) > 1e-12 {
		t.Errorf("PathDelay(b,a) = %g, want %g", got, atA)
	}
}

func TestCapPassesTwoPin(t *testing.T) {
	n, a, b := twoPinNet(1000)
	_ = a
	// CapBelow[b] = Cin(b); stage cap at root = ca + cw + cb.
	if got := n.CapBelow[b]; math.Abs(got-0.08) > 1e-12 {
		t.Errorf("CapBelow[b] = %g", got)
	}
	if got := n.StageCapAt(n.R.Root); math.Abs(got-(0.05+0.2+0.08)) > 1e-12 {
		t.Errorf("StageCapAt(root) = %g", got)
	}
	if got := n.TotalCap(); math.Abs(got-(0.2+0.08)) > 1e-12 {
		t.Errorf("TotalCap = %g", got)
	}
	// CapAboveFrom[b] = cap at a away from b = Cin(a).
	if got := n.CapAboveFrom[b]; math.Abs(got-0.05) > 1e-12 {
		t.Errorf("CapAboveFrom[b] = %g", got)
	}
}

func TestDelaysAgainstOracleRandom(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 150; trial++ {
		cfg := testnet.DefaultConfig()
		cfg.Backbone = 2 + r.Intn(10)
		cfg.ZeroLenEdges = trial%3 == 0
		tr := testnet.RandTree(r, cfg)
		tech := testnet.RandTech(r, 2, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		asg := testnet.RandAssignment(r, rt, tech, 0.5)
		n := rctree.NewNet(rt, tech, asg)
		o := oracle{n: n}
		for _, s := range tr.Sources() {
			got := n.DelaysFrom(s)
			want := o.delaysFrom(s)
			for v := 0; v < tr.NumNodes(); v++ {
				if math.IsInf(want[v], 1) {
					t.Fatalf("trial %d: oracle unreachable node %d", trial, v)
				}
				if math.Abs(got[v]-want[v]) > 1e-9*(1+math.Abs(want[v])) {
					t.Fatalf("trial %d: delay s=%d v=%d: got %.12g want %.12g",
						trial, s, v, got[v], want[v])
				}
			}
		}
	}
}

func TestRCRadiusMatchesMaxSinkDelay(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tr := testnet.RandTree(r, testnet.DefaultConfig())
	tech := testnet.RandTech(r, 1, 0)
	rt := tr.RootAt(testnet.RootTerminal(tr))
	n := rctree.NewNet(rt, tech, testnet.RandAssignment(r, rt, tech, 0.4))
	s := tr.Sources()[0]
	dist := n.DelaysFrom(s)
	want := math.Inf(-1)
	for _, v := range tr.Sinks() {
		if v != s && dist[v] > want {
			want = dist[v]
		}
	}
	if got := n.RCRadius(s); got != want {
		t.Errorf("RCRadius = %g, want %g", got, want)
	}
}

func TestWidthsScaleParasitics(t *testing.T) {
	n, _, _ := twoPinNet(1000)
	base := rctree.Assignment{Widths: map[int]float64{0: 2}}
	n2 := rctree.NewNet(n.R, n.Tech, base)
	if got, want := n2.EdgeRes(0), n.EdgeRes(0)/2; math.Abs(got-want) > 1e-15 {
		t.Errorf("wide EdgeRes = %g, want %g", got, want)
	}
	if got, want := n2.EdgeCap(0), n.EdgeCap(0)*2; math.Abs(got-want) > 1e-15 {
		t.Errorf("wide EdgeCap = %g, want %g", got, want)
	}
}

func TestDriverOverride(t *testing.T) {
	n, a, b := twoPinNet(1000)
	drv := buslib.Driver{Name: "big", Intrinsic: 0.05, Rout: 0.1, Cost: 4}
	n2 := rctree.NewNet(n.R, n.Tech, rctree.Assignment{Drivers: map[int]buslib.Driver{a: drv}})
	// Faster driver ⇒ strictly smaller delay to b.
	if d1, d2 := n.PathDelay(a, b), n2.PathDelay(a, b); d2 >= d1 {
		t.Errorf("driver override did not speed up: %g vs %g", d1, d2)
	}
}

func TestAssignmentCostAndClone(t *testing.T) {
	rep := buslib.Repeater{Name: "r", Cost: 2, RoutAB: 1, RoutBA: 1}
	drv := buslib.Driver{Name: "d", Cost: 3, Rout: 1}
	a := rctree.Assignment{
		Repeaters: map[int]rctree.Placed{5: {Rep: rep}},
		Drivers:   map[int]buslib.Driver{1: drv},
		Widths:    map[int]float64{0: 2},
	}
	if got := a.Cost(); got != 5 {
		t.Errorf("Cost = %g, want 5", got)
	}
	c := a.Clone()
	c.Repeaters[6] = rctree.Placed{Rep: rep}
	c.Widths[0] = 3
	if len(a.Repeaters) != 1 || a.Widths[0] != 2 {
		t.Error("Clone is not deep")
	}
}

func TestNaiveARDExcludesSelf(t *testing.T) {
	n, _, _ := twoPinNet(1000)
	with, _, _ := n.NaiveARD(true)
	without, _, _ := n.NaiveARD(false)
	if with < without {
		t.Errorf("including self pairs lowered ARD: %g < %g", with, without)
	}
}

func TestDelaysFromPanicsOnNonSource(t *testing.T) {
	tr := topo.New()
	ta := buslib.Terminal{Name: "a", IsSource: true, Cin: 0.05, Rout: 0.4}
	tb := buslib.Terminal{Name: "b", IsSink: true, Cin: 0.05}
	a := tr.AddTerminal(geom.Pt(0, 0), ta)
	b := tr.AddTerminal(geom.Pt(1000, 0), tb)
	tr.AddEdge(a, b, 1000)
	n := rctree.NewNet(tr.RootAt(a), buslib.Tech{Wire: buslib.Wire{ResPerUm: 1e-4, CapPerUm: 1e-4}}, rctree.Assignment{})
	defer func() {
		if recover() == nil {
			t.Error("DelaysFrom(non-source) did not panic")
		}
	}()
	n.DelaysFrom(b)
}

func TestStageCapAtRepeaterPanics(t *testing.T) {
	tr := topo.New()
	ta := buslib.Terminal{Name: "a", IsSource: true, IsSink: true, Cin: 0.05, Rout: 0.4}
	tb := buslib.Terminal{Name: "b", IsSource: true, IsSink: true, Cin: 0.05, Rout: 0.4}
	a := tr.AddTerminal(geom.Pt(0, 0), ta)
	b := tr.AddTerminal(geom.Pt(1000, 0), tb)
	e := tr.AddEdge(a, b, 1000)
	mid := tr.SplitEdge(e, 0.5, topo.Insertion)
	rep := buslib.Repeater{Name: "r", RoutAB: 0.2, RoutBA: 0.2, CapA: 0.02, CapB: 0.02}
	n := rctree.NewNet(tr.RootAt(a), buslib.Tech{Wire: buslib.Wire{ResPerUm: 1e-4, CapPerUm: 1e-4}},
		rctree.Assignment{Repeaters: map[int]rctree.Placed{mid: {Rep: rep, ASideUp: true}}})
	defer func() {
		if recover() == nil {
			t.Error("StageCapAt(repeater node) did not panic")
		}
	}()
	n.StageCapAt(mid)
}
