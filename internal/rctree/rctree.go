// Package rctree is the Elmore-delay engine for repeater-annotated
// multisource routing trees. Given a rooted topology, a technology and a
// concrete assignment (repeaters at insertion points, optional driver
// overrides, optional wire widths), it computes the directional stage
// capacitances of eqs. (1)–(2) of Lillis & Cheng (TCAD'99) and from them
// single-source Elmore delays, path delays, the RC-radius and the naive
// all-pairs augmented RC-diameter used to cross-check the linear-time
// algorithm of package ard.
//
// Conventions: trees are rooted (topo.Rooted); a repeater placed at an
// insertion node with ASideUp=true has its A side facing the parent, so
// downward signal flow is A→B and upward flow is B→A. Wires are uniform
// distributed RC (π-model): a signal crossing a wire with total R, C into
// a stage load CL incurs R·(C/2 + CL).
package rctree

import (
	"fmt"
	"math"

	"msrnet/internal/buslib"
	"msrnet/internal/topo"
)

// Placed is a repeater placed at an insertion point with an orientation
// relative to the rooted tree.
type Placed struct {
	Rep buslib.Repeater
	// ASideUp reports that the A side of the repeater faces the parent.
	ASideUp bool
}

// DownDelay returns the intrinsic delay and output resistance for signal
// flowing from parent to child through p.
func (p Placed) DownDelay() (d, r float64) {
	if p.ASideUp {
		return p.Rep.DelayAB, p.Rep.RoutAB
	}
	return p.Rep.DelayBA, p.Rep.RoutBA
}

// UpDelay returns the intrinsic delay and output resistance for signal
// flowing from child to parent through p.
func (p Placed) UpDelay() (d, r float64) {
	if p.ASideUp {
		return p.Rep.DelayBA, p.Rep.RoutBA
	}
	return p.Rep.DelayAB, p.Rep.RoutAB
}

// CapUpSide returns the input capacitance presented toward the parent.
func (p Placed) CapUpSide() float64 {
	if p.ASideUp {
		return p.Rep.CapA
	}
	return p.Rep.CapB
}

// CapDownSide returns the input capacitance presented toward the child.
func (p Placed) CapDownSide() float64 {
	if p.ASideUp {
		return p.Rep.CapB
	}
	return p.Rep.CapA
}

// Assignment is a concrete optimization outcome to evaluate: which
// repeater (if any) sits at each insertion point, optional driver
// replacements at terminals (driver-sizing mode) and optional wire width
// factors (wire-sizing extension; width w scales resistance by 1/w and
// capacitance by w).
type Assignment struct {
	Repeaters map[int]Placed        // insertion node id -> placed repeater
	Drivers   map[int]buslib.Driver // terminal node id -> driver override
	Widths    map[int]float64       // edge id -> width factor (default 1)
}

// Cost returns the total cost of the assignment: placed repeaters plus
// driver overrides (a terminal without an override contributes the cost
// of the default 1X driver only implicitly — callers normalize).
func (a Assignment) Cost() float64 {
	var c float64
	for _, p := range a.Repeaters {
		c += p.Rep.Cost
	}
	for _, d := range a.Drivers {
		c += d.Cost
	}
	return c
}

// Clone returns a deep copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := Assignment{}
	if a.Repeaters != nil {
		out.Repeaters = make(map[int]Placed, len(a.Repeaters))
		for k, v := range a.Repeaters {
			out.Repeaters[k] = v
		}
	}
	if a.Drivers != nil {
		out.Drivers = make(map[int]buslib.Driver, len(a.Drivers))
		for k, v := range a.Drivers {
			out.Drivers[k] = v
		}
	}
	if a.Widths != nil {
		out.Widths = make(map[int]float64, len(a.Widths))
		for k, v := range a.Widths {
			out.Widths[k] = v
		}
	}
	return out
}

// Net is an evaluatable electrical view: topology + technology +
// assignment, with the directional stage capacitances precomputed.
type Net struct {
	R      *topo.Rooted
	Tech   buslib.Tech
	Assign Assignment

	// CapBelow[v] is the capacitance seen looking into v from its parent:
	// the repeater's parent-side input capacitance if v carries one,
	// otherwise v's own load plus the wire and CapBelow of each child
	// (eq. (1) of the paper).
	CapBelow []float64
	// CapAboveFrom[v] is the capacitance seen from v looking up through
	// its parent edge, excluding the wire itself: the stage capacitance
	// hanging at the parent away from v (eq. (2)). Undefined (-1) for the
	// root.
	CapAboveFrom []float64
}

// NewNet builds the electrical view and computes the capacitance passes.
func NewNet(r *topo.Rooted, tech buslib.Tech, a Assignment) *Net {
	n := &Net{R: r, Tech: tech, Assign: a}
	n.computeCaps()
	return n
}

// placedAt returns the repeater at node v, if any.
func (n *Net) placedAt(v int) (Placed, bool) {
	p, ok := n.Assign.Repeaters[v]
	return p, ok
}

// EdgeRes returns the resistance of edge eid under the assignment's width.
func (n *Net) EdgeRes(eid int) float64 {
	w := 1.0
	if ww, ok := n.Assign.Widths[eid]; ok {
		w = ww
	}
	return n.Tech.Wire.Res(n.R.Tree.Edge(eid).Length) / w
}

// EdgeCap returns the capacitance of edge eid under the assignment's width.
func (n *Net) EdgeCap(eid int) float64 {
	w := 1.0
	if ww, ok := n.Assign.Widths[eid]; ok {
		w = ww
	}
	return n.Tech.Wire.Cap(n.R.Tree.Edge(eid).Length) * w
}

// nodeSelfCap returns the capacitance the node itself hangs on the net
// when no decoupling applies: a terminal's presented input capacitance.
func (n *Net) nodeSelfCap(v int) float64 {
	nd := n.R.Tree.Node(v)
	if nd.Kind == topo.Terminal {
		return nd.Term.Cin
	}
	return 0
}

// computeCaps runs the bottom-up (eq. 1) and top-down (eq. 2) passes.
func (n *Net) computeCaps() {
	t := n.R.Tree
	nn := t.NumNodes()
	n.CapBelow = make([]float64, nn)
	n.CapAboveFrom = make([]float64, nn)
	// Bottom-up: post-order guarantees children first.
	for _, v := range n.R.PostOrder {
		if p, ok := n.placedAt(v); ok {
			n.CapBelow[v] = p.CapUpSide()
			continue
		}
		c := n.nodeSelfCap(v)
		for _, ch := range n.R.Children[v] {
			c += n.EdgeCap(n.R.ParentEdge[ch]) + n.CapBelow[ch]
		}
		n.CapBelow[v] = c
	}
	// Top-down: pre-order (reverse post-order).
	for i := len(n.R.PostOrder) - 1; i >= 0; i-- {
		v := n.R.PostOrder[i]
		if v == n.R.Root {
			n.CapAboveFrom[v] = -1
			continue
		}
		p := n.R.Parent[v]
		if pl, ok := n.placedAt(p); ok {
			// Repeater at the parent decouples: looking up we see only
			// its child-side input capacitance.
			n.CapAboveFrom[v] = pl.CapDownSide()
			continue
		}
		c := n.nodeSelfCap(p)
		for _, sib := range n.R.Children[p] {
			if sib == v {
				continue
			}
			c += n.EdgeCap(n.R.ParentEdge[sib]) + n.CapBelow[sib]
		}
		if p != n.R.Root {
			c += n.EdgeCap(n.R.ParentEdge[p]) + n.CapAboveFrom[p]
		}
		n.CapAboveFrom[v] = c
	}
}

// StageCapAt returns the total capacitance of the RC stage containing
// node v: v's own load, each child branch up to decoupling, and the
// upward region up to decoupling. This is the load a driver placed at v
// would see (including v's own presented capacitance). v must not itself
// carry a repeater.
func (n *Net) StageCapAt(v int) float64 {
	if _, ok := n.placedAt(v); ok {
		panic("rctree: StageCapAt at a repeater node is ambiguous")
	}
	c := n.nodeSelfCap(v)
	for _, ch := range n.R.Children[v] {
		c += n.EdgeCap(n.R.ParentEdge[ch]) + n.CapBelow[ch]
	}
	if v != n.R.Root {
		c += n.EdgeCap(n.R.ParentEdge[v]) + n.CapAboveFrom[v]
	}
	return c
}

// capAway returns the stage capacitance seen at node v arriving from
// neighbor `from`: everything hanging at v away from `from`, up to
// decoupling. If v carries a repeater, this is the input capacitance of
// the side facing `from`.
func (n *Net) capAway(v, from int) float64 {
	if pl, ok := n.placedAt(v); ok {
		if from == n.R.Parent[v] {
			return pl.CapUpSide()
		}
		return pl.CapDownSide()
	}
	c := n.nodeSelfCap(v)
	for _, ch := range n.R.Children[v] {
		if ch == from {
			continue
		}
		c += n.EdgeCap(n.R.ParentEdge[ch]) + n.CapBelow[ch]
	}
	if v != n.R.Root && n.R.Parent[v] != from {
		c += n.EdgeCap(n.R.ParentEdge[v]) + n.CapAboveFrom[v]
	}
	return c
}

// driverAt returns the driving parameters of source terminal s under the
// assignment: output resistance and launch delay (driver intrinsic, with
// any sizing override).
func (n *Net) driverAt(s int) (rout, intrinsic float64) {
	term := n.R.Tree.Node(s).Term
	if d, ok := n.Assign.Drivers[s]; ok {
		return d.Rout, d.Intrinsic
	}
	return term.Rout, term.DriverIntrinsic
}

// DelaysFrom computes the Elmore delay from source terminal s to every
// node, measured from the arrival of the signal at s's driver input
// (i.e. including the driver's intrinsic and RC delay but not AAT).
// Unreachable is impossible in a tree; every node gets a value.
func (n *Net) DelaysFrom(s int) []float64 {
	nd := n.R.Tree.Node(s)
	if nd.Kind != topo.Terminal || !nd.Term.IsSource {
		panic(fmt.Sprintf("rctree: node %d is not a source terminal", s))
	}
	rout, intr := n.driverAt(s)
	dist := make([]float64, n.R.Tree.NumNodes())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[s] = intr + rout*n.StageCapAt(s)
	// BFS over the undirected tree.
	type hop struct{ from, to, eid int }
	var queue []hop
	push := func(from int) {
		t := n.R.Tree
		for _, eid := range t.Incident(from) {
			to := t.Edge(eid).Other(from)
			if math.IsInf(dist[to], 1) {
				queue = append(queue, hop{from, to, eid})
			}
		}
	}
	push(s)
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		if !math.IsInf(dist[h.to], 1) {
			continue
		}
		t := dist[h.from]
		// Leaving h.from: if h.from carries a repeater (and is not the
		// source itself), the signal must first cross it.
		if pl, ok := n.placedAt(h.from); ok {
			var d, r float64
			if h.to == n.R.Parent[h.from] {
				d, r = pl.UpDelay()
				t += d + r*(n.EdgeCap(h.eid)+n.CapAboveFrom[h.from])
			} else {
				d, r = pl.DownDelay()
				// Insertion points have exactly one child.
				t += d + r*(n.EdgeCap(h.eid)+n.CapBelow[h.to])
			}
			// The repeater output drives the whole next stage; the wire
			// contribution within the stage is still charged per-resistor
			// below, so subtract nothing here — but avoid double counting:
			// the repeater RC above already includes the full stage cap
			// (wire + beyond); the wire's own resistance still adds its
			// distributed term next.
		}
		// Cross the wire h.from -> h.to.
		t += n.EdgeRes(h.eid) * (n.EdgeCap(h.eid)/2 + n.capAway(h.to, h.from))
		dist[h.to] = t
		push(h.to)
	}
	return dist
}

// PathDelay returns PD(u, v): the Elmore delay from source u's driver
// input to sink v, per Definition 2.1 (driver, wires and repeaters on the
// path; excludes AAT and Q).
func (n *Net) PathDelay(u, v int) float64 {
	return n.DelaysFrom(u)[v]
}

// RCRadius returns the maximum delay from source s to any sink terminal
// (the single-source performance measure generalized by the ARD).
func (n *Net) RCRadius(s int) float64 {
	dist := n.DelaysFrom(s)
	worst := math.Inf(-1)
	for _, v := range n.R.Tree.Sinks() {
		if v == s {
			continue
		}
		if dist[v] > worst {
			worst = dist[v]
		}
	}
	return worst
}

// NaiveARD computes the augmented RC-diameter by |sources| single-source
// propagations — the O(s·n) baseline that the linear-time algorithm of
// package ard must match. includeSelf controls whether u==v pairs count.
// It also returns the critical source/sink pair.
func (n *Net) NaiveARD(includeSelf bool) (ard float64, critSrc, critSink int) {
	ard = math.Inf(-1)
	critSrc, critSink = -1, -1
	for _, s := range n.R.Tree.Sources() {
		dist := n.DelaysFrom(s)
		aat := n.R.Tree.Node(s).Term.AAT
		for _, v := range n.R.Tree.Sinks() {
			if v == s && !includeSelf {
				continue
			}
			d := aat + dist[v] + n.R.Tree.Node(v).Term.Q
			if d > ard {
				ard, critSrc, critSink = d, s, v
			}
		}
	}
	return ard, critSrc, critSink
}

// TotalCap returns the total capacitance hanging on the root's stage —
// the load the root terminal's driver sees (excluding the root's own
// presented capacitance). Useful in tests.
func (n *Net) TotalCap() float64 {
	var c float64
	for _, ch := range n.R.Children[n.R.Root] {
		c += n.EdgeCap(n.R.ParentEdge[ch]) + n.CapBelow[ch]
	}
	return c
}
