// Package pairwise implements the "arbitrary pair-wise constraints"
// formulation that §II of Lillis & Cheng (TCAD'99) contrasts with the
// ARD: instead of one spec derived from per-terminal arrival times and
// requirements, every (source, sink) pair may carry its own delay bound.
//
// The paper makes two points about this formulation, both of which this
// package makes concrete:
//
//   - Verification alone costs Θ(s·n): all pairs must be examined
//     (footnote 8). Check implements exactly that.
//   - The dynamic-programming decomposition behind the optimal ARD
//     algorithm breaks: with arbitrary bounds, different external sinks
//     can have different critical sources inside the same subtree
//     (footnote 10), so no single per-subtree arrival function suffices.
//     The tests exhibit such an instance.
//
// For small instances the package still solves the constrained min-cost
// problem exactly — by exhaustive enumeration — which doubles as a
// consistency check: with uniform bounds the answer must coincide with
// the ARD machinery's Problem 2.1 solution.
package pairwise

import (
	"fmt"
	"math"
	"sort"

	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/rctree"
	"msrnet/internal/topo"
)

// Constraints maps (source node id, sink node id) to a maximum allowed
// augmented delay AAT(u) + PD(u,v) + Q(v). Pairs not present are
// unconstrained. Self pairs are ignored.
type Constraints map[[2]int]float64

// Uniform builds constraints bounding every source/sink pair by the same
// spec — the special case equivalent to ARD ≤ spec.
func Uniform(tr *topo.Tree, spec float64) Constraints {
	c := Constraints{}
	for _, u := range tr.Sources() {
		for _, v := range tr.Sinks() {
			if u != v {
				c[[2]int{u, v}] = spec
			}
		}
	}
	return c
}

// Violation reports one failed constraint.
type Violation struct {
	Src, Sink int
	Delay     float64
	Limit     float64
}

// Check verifies an assignment against the constraints by the necessary
// Θ(s·n) sweep: one Elmore propagation per constrained source. It returns
// all violations, sorted by excess.
func Check(n *rctree.Net, c Constraints) []Violation {
	t := n.R.Tree
	bySrc := map[int][][2]int{}
	for pair := range c {
		bySrc[pair[0]] = append(bySrc[pair[0]], pair)
	}
	var out []Violation
	for src, pairs := range bySrc {
		nd := t.Node(src)
		if nd.Kind != topo.Terminal || !nd.Term.IsSource {
			continue
		}
		dist := n.DelaysFrom(src)
		for _, pair := range pairs {
			sink := pair[1]
			if sink == src {
				continue
			}
			snd := t.Node(sink)
			if snd.Kind != topo.Terminal || !snd.Term.IsSink {
				continue
			}
			d := nd.Term.AAT + dist[sink] + snd.Term.Q
			if limit := c[pair]; d > limit+1e-12 {
				out = append(out, Violation{Src: src, Sink: sink, Delay: d, Limit: limit})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Delay-out[i].Limit > out[j].Delay-out[j].Limit
	})
	return out
}

// MinCost exhaustively finds the minimum-cost repeater assignment (over
// the insertion points of rt, with the repeaters and orientations of
// tech) that satisfies all pairwise constraints. Exponential; intended
// for small instances and for cross-validating the ARD machinery on
// uniform constraints. Returns ok=false when no assignment is feasible.
func MinCost(rt *topo.Rooted, tech buslib.Tech, c Constraints) (rctree.Assignment, float64, bool) {
	type choice struct {
		placed *rctree.Placed
		cost   float64
	}
	choices := []choice{{}}
	for _, rep := range tech.Repeaters {
		orientations := []bool{true}
		if !rep.Symmetric() {
			orientations = []bool{true, false}
		}
		for _, aUp := range orientations {
			r := rep
			choices = append(choices, choice{placed: &rctree.Placed{Rep: r, ASideUp: aUp}, cost: rep.Cost})
		}
	}
	ins := rt.Tree.Insertions()
	bestCost := math.Inf(1)
	var best rctree.Assignment
	found := false
	var rec func(i int, asg rctree.Assignment, cost float64)
	rec = func(i int, asg rctree.Assignment, cost float64) {
		if cost >= bestCost {
			return // branch and bound on cost
		}
		if i == len(ins) {
			n := rctree.NewNet(rt, tech, asg)
			if len(Check(n, c)) == 0 {
				bestCost = cost
				best = asg.Clone()
				found = true
			}
			return
		}
		for _, ch := range choices {
			na := asg
			if ch.placed != nil {
				na = asg.Clone()
				if na.Repeaters == nil {
					na.Repeaters = map[int]rctree.Placed{}
				}
				na.Repeaters[ins[i]] = *ch.placed
			}
			rec(i+1, na, cost+ch.cost)
		}
	}
	rec(0, rctree.Assignment{}, 0)
	return best, bestCost, found
}

// CriticalSources returns, for each given external sink, the source
// inside the subtree rooted at `sub` with the *least slack* to that sink
// — slack being the pair's constraint minus its achieved augmented delay
// (unconstrained pairs have infinite slack). Under the ARD formulation
// the delay-critical source of a subtree is the same for every external
// sink, which is exactly what makes the A(c_E) decomposition sound; with
// arbitrary pairwise limits, slack-criticality differs across sinks —
// the obstruction of the paper's footnote 10, exhibited by the tests.
func CriticalSources(n *rctree.Net, sub int, sinks []int, c Constraints) (map[int]int, error) {
	t := n.R.Tree
	// Collect source terminals inside the subtree.
	var internal []int
	var walk func(v int)
	walk = func(v int) {
		nd := t.Node(v)
		if nd.Kind == topo.Terminal && nd.Term.IsSource {
			internal = append(internal, v)
		}
		for _, ch := range n.R.Children[v] {
			walk(ch)
		}
	}
	walk(sub)
	if len(internal) == 0 {
		return nil, fmt.Errorf("pairwise: subtree %d has no sources", sub)
	}
	slackOf := func(u, snk int, dist []float64) float64 {
		d := t.Node(u).Term.AAT + dist[snk] + t.Node(snk).Term.Q
		limit, ok := c[[2]int{u, snk}]
		if !ok {
			if c == nil {
				// No constraints given: fall back to pure delay
				// criticality (most delay = least "slack").
				return -d
			}
			limit = math.Inf(1)
		}
		return limit - d
	}
	out := map[int]int{}
	bestSlack := map[int]float64{}
	for _, u := range internal {
		dist := n.DelaysFrom(u)
		for _, snk := range sinks {
			sl := slackOf(u, snk, dist)
			if cur, ok := bestSlack[snk]; !ok || sl < cur {
				bestSlack[snk] = sl
				out[snk] = u
			}
		}
	}
	return out, nil
}

// UniformEquivalence cross-checks the two formulations on one instance:
// the min-cost assignment under uniform pairwise bounds must cost the
// same as the ARD machinery's Problem 2.1 answer. Returns both costs.
func UniformEquivalence(rt *topo.Rooted, tech buslib.Tech, spec float64) (pairwiseCost, ardCost float64, err error) {
	_, pc, ok := MinCost(rt, tech, Uniform(rt.Tree, spec))
	res, oerr := core.Optimize(rt, tech, core.Options{Repeaters: true})
	if oerr != nil {
		return 0, 0, oerr
	}
	sol, ok2 := res.Suite.MinCost(spec)
	switch {
	case !ok && !ok2:
		return math.Inf(1), math.Inf(1), nil
	case ok != ok2:
		return 0, 0, fmt.Errorf("pairwise: feasibility disagreement (brute %v, dp %v)", ok, ok2)
	}
	return pc, sol.Cost, nil
}
