package pairwise

import (
	"math"
	"math/rand"
	"testing"

	"msrnet/internal/buslib"
	"msrnet/internal/geom"
	"msrnet/internal/rctree"
	"msrnet/internal/testnet"
	"msrnet/internal/topo"
)

// TestUniformEquivalence: with every pair bounded by the same spec, the
// exhaustive pairwise solver and the ARD dynamic program must agree on
// the minimum feasible cost — the two formulations coincide exactly in
// this special case (§II).
func TestUniformEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(3001))
	checked := 0
	for trial := 0; trial < 20; trial++ {
		cfg := testnet.DefaultConfig()
		cfg.Backbone = 1 + r.Intn(3)
		cfg.InsSpacing = 0
		cfg.AllRoles = true
		tr := testnet.RandTree(r, cfg)
		for i := 0; i < 3 && i < tr.NumEdges(); i++ {
			eid := r.Intn(tr.NumEdges())
			if tr.Edge(eid).Length > 0 {
				tr.SplitEdge(eid, 0.3+0.4*r.Float64(), topo.Insertion)
			}
		}
		tech := testnet.RandTech(r, 1, 0)
		rt := tr.RootAt(testnet.RootTerminal(tr))
		// Pick a spec between best and worst achievable.
		base := rctree.NewNet(rt, tech, rctree.Assignment{})
		worst, _, _ := base.NaiveARD(false)
		spec := worst * (0.85 + 0.2*r.Float64())
		pc, ac, err := UniformEquivalence(rt, tech, spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.IsInf(pc, 1) {
			continue // spec infeasible for both: consistent
		}
		if math.Abs(pc-ac) > 1e-9 {
			t.Fatalf("trial %d: pairwise min cost %g != ARD min cost %g (spec %g)",
				trial, pc, ac, spec)
		}
		checked++
	}
	if checked < 4 {
		t.Fatalf("too few feasible trials: %d", checked)
	}
}

// TestCheckFindsViolations: constraints tighter than the achieved delays
// must be reported, ordered by excess.
func TestCheckFindsViolations(t *testing.T) {
	tr := topo.New()
	a := tr.AddTerminal(geom.Pt(0, 0), buslib.DefaultTerminal("a"))
	b := tr.AddTerminal(geom.Pt(5000, 0), buslib.DefaultTerminal("b"))
	tr.AddEdge(a, b, 5000)
	tech := buslib.Default()
	n := rctree.NewNet(tr.RootAt(a), tech, rctree.Assignment{})
	// Actual delay a→b:
	actual := tr.Node(a).Term.AAT + n.PathDelay(a, b) + tr.Node(b).Term.Q
	c := Constraints{
		{a, b}: actual / 2, // violated
		{b, a}: 1e9,        // satisfied
	}
	v := Check(n, c)
	if len(v) != 1 || v[0].Src != a || v[0].Sink != b {
		t.Fatalf("violations = %+v", v)
	}
	if v[0].Delay <= v[0].Limit {
		t.Error("violation not actually violating")
	}
	// Loose constraints: clean.
	if v := Check(n, Uniform(tr, actual*2)); len(v) != 0 {
		t.Errorf("unexpected violations: %+v", v)
	}
}

// TestFootnote10Obstruction exhibits the structural reason the ARD
// decomposition fails under arbitrary pairwise constraints. Under the
// ARD formulation the *delay*-critical source of a subtree is the same
// for every external sink (the delay splits as arrival-at-join plus a
// source-independent tail, which is what makes A(c_E) well defined) —
// the first half of the test verifies that. Under arbitrary pairwise
// limits, criticality is *slack* (limit − delay), and the second half
// shows two external sinks with different slack-critical sources in the
// same subtree: no single per-subtree function can summarize them.
func TestFootnote10Obstruction(t *testing.T) {
	tr := topo.New()
	t1 := buslib.DefaultTerminal("s1")
	t1.IsSink = false
	t2 := buslib.DefaultTerminal("s2")
	t2.IsSink = false
	t2.AAT = 0.5 // s2 launches later: the delay-critical source everywhere
	s1 := tr.AddTerminal(geom.Pt(0, 0), t1)
	s2 := tr.AddTerminal(geom.Pt(2000, 0), t2)
	j := tr.AddSteiner(geom.Pt(1000, 500))
	tr.AddEdge(s1, j, 1000)
	tr.AddEdge(s2, j, 1000)
	near := buslib.DefaultTerminal("near")
	near.IsSource = false
	far := buslib.DefaultTerminal("far")
	far.IsSource = false
	nid := tr.AddTerminal(geom.Pt(1000, 1000), near)
	fid := tr.AddTerminal(geom.Pt(1000, 20000), far)
	tr.AddEdge(j, nid, 500)
	tr.AddEdge(j, fid, 19000)
	rt := tr.RootAt(nid) // subtree under j contains s1, s2
	tech := buslib.Default()
	n := rctree.NewNet(rt, tech, rctree.Assignment{})

	// (1) Pure delay criticality: identical across external sinks.
	delayCrit, err := CriticalSources(n, j, []int{nid, fid}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if delayCrit[nid] != delayCrit[fid] || delayCrit[nid] != s2 {
		t.Fatalf("delay-critical sources should both be s2: %v", delayCrit)
	}

	// (2) Arbitrary pairwise limits: tighten s1→far and loosen s2→far,
	// so the far sink's least-slack source flips to s1 while the near
	// sink's stays s2.
	d := func(u, v int) float64 {
		return tr.Node(u).Term.AAT + n.PathDelay(u, v) + tr.Node(v).Term.Q
	}
	c := Constraints{
		{s1, nid}: d(s1, nid) + 1.0,  // lots of slack
		{s2, nid}: d(s2, nid) + 0.1,  // tight: s2 critical at near
		{s1, fid}: d(s1, fid) + 0.05, // very tight: s1 critical at far
		{s2, fid}: d(s2, fid) + 2.0,  // loose
	}
	slackCrit, err := CriticalSources(n, j, []int{nid, fid}, c)
	if err != nil {
		t.Fatal(err)
	}
	if slackCrit[nid] != s2 || slackCrit[fid] != s1 {
		t.Fatalf("slack-critical sources: near=%d far=%d, want near=s2(%d) far=s1(%d)",
			slackCrit[nid], slackCrit[fid], s2, s1)
	}
}

// TestMinCostInfeasible returns ok=false for impossible bounds.
func TestMinCostInfeasible(t *testing.T) {
	tr := topo.New()
	a := tr.AddTerminal(geom.Pt(0, 0), buslib.DefaultTerminal("a"))
	b := tr.AddTerminal(geom.Pt(5000, 0), buslib.DefaultTerminal("b"))
	e := tr.AddEdge(a, b, 5000)
	tr.SplitEdge(e, 0.5, topo.Insertion)
	tech := buslib.Default()
	rt := tr.RootAt(a)
	if _, _, ok := MinCost(rt, tech, Uniform(tr, 1e-6)); ok {
		t.Error("impossible spec reported feasible")
	}
}

// TestCriticalSourcesErrors rejects sourceless subtrees.
func TestCriticalSourcesErrors(t *testing.T) {
	tr := topo.New()
	src := buslib.DefaultTerminal("src")
	snk := buslib.DefaultTerminal("snk")
	snk.IsSource = false
	a := tr.AddTerminal(geom.Pt(0, 0), src)
	b := tr.AddTerminal(geom.Pt(100, 0), snk)
	tr.AddEdge(a, b, 100)
	rt := tr.RootAt(a)
	n := rctree.NewNet(rt, buslib.Default(), rctree.Assignment{})
	if _, err := CriticalSources(n, b, []int{a}, nil); err == nil {
		t.Error("sourceless subtree accepted")
	}
}
