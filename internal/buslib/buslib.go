// Package buslib models the electrical library used by the multisource
// timing optimizer: unit wire parasitics, unidirectional buffers,
// bidirectional repeaters composed of buffer pairs, kX driver libraries,
// and the per-terminal electrical parameters of §II of Lillis & Cheng
// (TCAD'99): arrival time AAT, downstream delay Q, input capacitance and
// driver output resistance.
//
// Units follow DESIGN.md §3: µm, pF, kΩ, ns (kΩ·pF = ns).
package buslib

import (
	"errors"
	"fmt"
)

// Wire holds the per-unit-length parasitics of the target technology
// (the r̂ and ĉ of §II).
type Wire struct {
	ResPerUm float64 // kΩ per µm
	CapPerUm float64 // pF per µm
}

// Res returns the total resistance of a wire of the given length in µm.
func (w Wire) Res(lengthUm float64) float64 { return w.ResPerUm * lengthUm }

// Cap returns the total capacitance of a wire of the given length in µm.
func (w Wire) Cap(lengthUm float64) float64 { return w.CapPerUm * lengthUm }

// Buffer is a unidirectional buffer characterized by the basic two-stage
// model: delay = Intrinsic + Rout·Cload.
type Buffer struct {
	Name      string
	Intrinsic float64 // ns
	Rout      float64 // kΩ
	Cin       float64 // pF
	Cost      float64 // in equivalent 1X buffer areas
}

// Delay returns the buffer delay driving the given load.
func (b Buffer) Delay(cload float64) float64 { return b.Intrinsic + b.Rout*cload }

// Scale returns the kX version of the buffer: cost k, output resistance
// Rout/k, input capacitance k·Cin (the scaling rule stated in §VI of the
// paper for the driver-sizing experiments).
func (b Buffer) Scale(k float64) Buffer {
	return Buffer{
		Name:      fmt.Sprintf("%s_%gX", b.Name, k),
		Intrinsic: b.Intrinsic,
		Rout:      b.Rout / k,
		Cin:       b.Cin * k,
		Cost:      b.Cost * k,
	}
}

// Repeater is a bidirectional buffer with an A-side and a B-side (§II).
// Signal flow is either A→B or B→A; the subscripted parameters follow the
// paper. For repeaters built from a pair of unidirectional buffers the two
// directions are symmetric, but asymmetric devices are representable.
//
// Inverting marks a repeater that inverts polarity (the inverter-as-
// repeater extension of §V); the optimizer then enforces polarity
// feasibility across all source/sink pairs.
type Repeater struct {
	Name string

	DelayAB, DelayBA float64 // intrinsic delay per direction, ns
	RoutAB, RoutBA   float64 // output resistance driving B-ward / A-ward, kΩ
	CapA, CapB       float64 // input capacitance presented at each side, pF

	Cost      float64
	Inverting bool
}

// RepeaterFromPair builds the canonical bidirectional repeater used in the
// paper's experiments: a pair of the given unidirectional buffer wired
// anti-parallel. Each side presents the input capacitance of one buffer;
// each direction has the buffer's intrinsic delay and output resistance;
// the cost is twice the buffer cost.
func RepeaterFromPair(b Buffer) Repeater {
	return Repeater{
		Name:    b.Name + "_pair",
		DelayAB: b.Intrinsic, DelayBA: b.Intrinsic,
		RoutAB: b.Rout, RoutBA: b.Rout,
		CapA: b.Cin, CapB: b.Cin,
		Cost: 2 * b.Cost,
	}
}

// Flip returns the repeater with its A and B sides exchanged. Orientation
// matters for asymmetric repeaters; the optimizer tries both orientations
// at each insertion point.
func (r Repeater) Flip() Repeater {
	return Repeater{
		Name:    r.Name + "_flip",
		DelayAB: r.DelayBA, DelayBA: r.DelayAB,
		RoutAB: r.RoutBA, RoutBA: r.RoutAB,
		CapA: r.CapB, CapB: r.CapA,
		Cost:      r.Cost,
		Inverting: r.Inverting,
	}
}

// Symmetric reports whether the repeater behaves identically in both
// orientations, letting the optimizer skip the flipped variant.
func (r Repeater) Symmetric() bool {
	return r.DelayAB == r.DelayBA && r.RoutAB == r.RoutBA && r.CapA == r.CapB
}

// Driver is a terminal's bus-driving (input) buffer option in the
// driver-sizing formulation. EffIntrinsic folds in the "two-stage"
// accounting of §V: because the driver is single-input, the extra delay
// its input capacitance imposes on the preceding stage
// (PrevStageRes·Cin) can be charged to the driver choice itself.
type Driver struct {
	Name      string
	Intrinsic float64 // ns, including previous-stage loading penalty
	Rout      float64 // kΩ
	Cost      float64
}

// Terminal carries the net-specific parameters of one pin (Fig. 1 of the
// paper). A terminal may be a source, a sink, or both.
type Terminal struct {
	Name string

	IsSource bool
	IsSink   bool

	// AAT is the maximum delay from a primary input of the circuit to the
	// input (bus-driving) buffer at this terminal (\hat{a} in the paper).
	AAT float64
	// Q is the maximum delay from the output buffer at this terminal to a
	// primary output (\hat{q}); the output buffer's own intrinsic and RC
	// delay are folded in per footnote 5.
	Q float64
	// Cin is the capacitance the terminal presents to the net (c(v)).
	Cin float64
	// Rout is the output resistance of the input buffer when the terminal
	// acts as a source (r(v)); used in the fixed-driver formulation.
	Rout float64
	// DriverIntrinsic is the intrinsic delay of the terminal's driver,
	// added to AAT when the terminal launches a signal.
	DriverIntrinsic float64
}

// Tech bundles everything the optimizer needs about the target process
// and cell library.
type Tech struct {
	Wire      Wire
	Repeaters []Repeater // candidate repeaters at each insertion point
	Drivers   []Driver   // candidate drivers in driver-sizing mode

	// PrevStageRes and NextStageCap are the boundary assumptions of the
	// paper's experiments (§VI): the resistance of the stage feeding each
	// terminal's driver and the capacitance loading each terminal's
	// output buffer.
	PrevStageRes float64 // kΩ
	NextStageCap float64 // pF
}

// Validate checks the library for physical plausibility.
func (t Tech) Validate() error {
	if t.Wire.ResPerUm <= 0 || t.Wire.CapPerUm <= 0 {
		return errors.New("buslib: wire parasitics must be positive")
	}
	for _, r := range t.Repeaters {
		if r.Cost < 0 || r.CapA < 0 || r.CapB < 0 ||
			r.RoutAB <= 0 || r.RoutBA <= 0 || r.DelayAB < 0 || r.DelayBA < 0 {
			return fmt.Errorf("buslib: repeater %q has invalid parameters", r.Name)
		}
	}
	for _, d := range t.Drivers {
		if d.Rout <= 0 || d.Cost < 0 || d.Intrinsic < 0 {
			return fmt.Errorf("buslib: driver %q has invalid parameters", d.Name)
		}
	}
	return nil
}

// Default technology constants. Table I of the paper states that its
// parameters equal those of Okamoto & Cong [20]; the numeric cells are
// not legible in the available scan, so DESIGN.md §4 documents the
// representative submicron values fixed here. The constraints the text
// does state are honored exactly: a kX driver has cost k, resistance
// R1X/k and input capacitance k·0.05 pF; the previous-stage resistance is
// 400 Ω and the next-stage capacitance 0.2 pF.
const (
	DefaultResPerUm    = 8.0e-5 // 0.08 Ω/µm  = 8e-5 kΩ/µm
	DefaultCapPerUm    = 1.2e-4 // 0.12 fF/µm = 1.2e-4 pF/µm
	Default1XIntrinsic = 0.05   // ns
	Default1XRout      = 0.40   // kΩ (400 Ω)
	Default1XCin       = 0.05   // pF (stated in §VI)
	DefaultPrevStageR  = 0.40   // kΩ (stated in §VI)
	DefaultNextStageC  = 0.20   // pF (stated in §VI)
)

// Buffer1X returns the basic 1X buffer of Table I.
func Buffer1X() Buffer {
	return Buffer{
		Name:      "buf",
		Intrinsic: Default1XIntrinsic,
		Rout:      Default1XRout,
		Cin:       Default1XCin,
		Cost:      1,
	}
}

// DriverLibrary returns the kX driver options derived from the 1X buffer,
// with the previous-stage loading penalty folded into the intrinsic delay
// (the "two-stage" driver accounting of §V).
func DriverLibrary(base Buffer, prevStageRes float64, sizes ...float64) []Driver {
	out := make([]Driver, 0, len(sizes))
	for _, k := range sizes {
		b := base.Scale(k)
		out = append(out, Driver{
			Name:      fmt.Sprintf("drv%gX", k),
			Intrinsic: b.Intrinsic + prevStageRes*b.Cin,
			Rout:      b.Rout,
			Cost:      b.Cost,
		})
	}
	return out
}

// Default returns the full experimental technology of §VI: the 1X-pair
// repeater and the {1X, 2X, 3X, 4X} driver library.
func Default() Tech {
	b := Buffer1X()
	return Tech{
		Wire:         Wire{ResPerUm: DefaultResPerUm, CapPerUm: DefaultCapPerUm},
		Repeaters:    []Repeater{RepeaterFromPair(b)},
		Drivers:      DriverLibrary(b, DefaultPrevStageR, 1, 2, 3, 4),
		PrevStageRes: DefaultPrevStageR,
		NextStageCap: DefaultNextStageC,
	}
}

// DefaultTerminal returns the symmetric source+sink terminal model used in
// the Table II experiments: AAT = Q̂ = 0 (unaugmented RC-diameter), a 1X
// driver with its previous-stage penalty, a receiver presenting the 1X
// input capacitance, and the next-stage load folded into Q via the output
// buffer delay.
func DefaultTerminal(name string) Terminal {
	b := Buffer1X()
	return Terminal{
		Name:     name,
		IsSource: true,
		IsSink:   true,
		AAT:      0,
		// Output buffer drives the next stage: intrinsic + Rout·Cnext,
		// folded into Q per footnote 5 of the paper.
		Q:               b.Intrinsic + b.Rout*DefaultNextStageC,
		Cin:             b.Cin,
		Rout:            b.Rout,
		DriverIntrinsic: b.Intrinsic + DefaultPrevStageR*b.Cin,
	}
}

// ScaledRC returns a copy of the technology with every resistance
// multiplied by k — equivalently, with every RC product scaled by k while
// intrinsic delays are untouched. The Elmore measure corresponds to the
// first moment of the impulse response; scaling by ln 2 ≈ 0.69 calibrates
// it to the 50%-threshold delay of a single RC stage, which typically
// tracks transient simulation much more closely. The paper notes (§II,
// footnote 7) that the ARD is well defined under any delay measure; this
// family of measures keeps every delay affine in the load capacitance, so
// the full PWL optimization machinery remains exact under it.
func (t Tech) ScaledRC(k float64) Tech {
	out := t
	out.Wire.ResPerUm *= k
	out.Repeaters = append([]Repeater(nil), t.Repeaters...)
	for i := range out.Repeaters {
		out.Repeaters[i].RoutAB *= k
		out.Repeaters[i].RoutBA *= k
	}
	out.Drivers = append([]Driver(nil), t.Drivers...)
	for i := range out.Drivers {
		out.Drivers[i].Rout *= k
	}
	out.PrevStageRes *= k
	return out
}

// ScaleTerminalRC applies the same RC scaling to a terminal's driver
// resistance, for use together with Tech.ScaledRC.
func ScaleTerminalRC(term Terminal, k float64) Terminal {
	term.Rout *= k
	return term
}
