package buslib

import (
	"math"
	"testing"
)

func TestWire(t *testing.T) {
	w := Wire{ResPerUm: 8e-5, CapPerUm: 1.2e-4}
	if got := w.Res(1000); math.Abs(got-0.08) > 1e-15 {
		t.Errorf("Res(1000) = %g", got)
	}
	if got := w.Cap(1000); math.Abs(got-0.12) > 1e-15 {
		t.Errorf("Cap(1000) = %g", got)
	}
}

func TestBufferDelayAndScale(t *testing.T) {
	b := Buffer1X()
	if got := b.Delay(0.5); math.Abs(got-(Default1XIntrinsic+0.40*0.5)) > 1e-15 {
		t.Errorf("Delay = %g", got)
	}
	k3 := b.Scale(3)
	if k3.Cost != 3 || math.Abs(k3.Rout-b.Rout/3) > 1e-15 || math.Abs(k3.Cin-3*b.Cin) > 1e-15 {
		t.Errorf("Scale(3) = %+v", k3)
	}
	if k3.Intrinsic != b.Intrinsic {
		t.Error("Scale changed intrinsic delay")
	}
}

func TestRepeaterFromPairSymmetric(t *testing.T) {
	r := RepeaterFromPair(Buffer1X())
	if !r.Symmetric() {
		t.Error("pair repeater should be symmetric")
	}
	if r.Cost != 2 {
		t.Errorf("pair cost = %g, want 2", r.Cost)
	}
	if r.CapA != Default1XCin || r.CapB != Default1XCin {
		t.Error("side caps wrong")
	}
}

func TestFlip(t *testing.T) {
	r := Repeater{Name: "x", DelayAB: 1, DelayBA: 2, RoutAB: 3, RoutBA: 4,
		CapA: 5, CapB: 6, Cost: 7, Inverting: true}
	f := r.Flip()
	if f.DelayAB != 2 || f.DelayBA != 1 || f.RoutAB != 4 || f.RoutBA != 3 ||
		f.CapA != 6 || f.CapB != 5 || f.Cost != 7 || !f.Inverting {
		t.Errorf("Flip = %+v", f)
	}
	if r.Symmetric() {
		t.Error("asymmetric repeater reported symmetric")
	}
	// Double flip restores electrical identity.
	ff := f.Flip()
	if ff.DelayAB != r.DelayAB || ff.CapA != r.CapA {
		t.Error("double flip not identity")
	}
}

func TestDriverLibrary(t *testing.T) {
	lib := DriverLibrary(Buffer1X(), DefaultPrevStageR, 1, 2, 3, 4)
	if len(lib) != 4 {
		t.Fatalf("library size %d", len(lib))
	}
	for i, d := range lib {
		k := float64(i + 1)
		if math.Abs(d.Cost-k) > 1e-15 {
			t.Errorf("driver %d cost %g", i, d.Cost)
		}
		if math.Abs(d.Rout-Default1XRout/k) > 1e-15 {
			t.Errorf("driver %d rout %g", i, d.Rout)
		}
		// Larger drivers pay more previous-stage penalty.
		want := Default1XIntrinsic + DefaultPrevStageR*k*Default1XCin
		if math.Abs(d.Intrinsic-want) > 1e-15 {
			t.Errorf("driver %d intrinsic %g, want %g", i, d.Intrinsic, want)
		}
	}
	// Bigger drivers have lower resistance but higher intrinsic.
	if lib[3].Rout >= lib[0].Rout || lib[3].Intrinsic <= lib[0].Intrinsic {
		t.Error("driver scaling trend wrong")
	}
}

func TestDefaultTechValidates(t *testing.T) {
	tech := Default()
	if err := tech.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tech.Repeaters) != 1 || len(tech.Drivers) != 4 {
		t.Errorf("default library sizes: %d repeaters, %d drivers",
			len(tech.Repeaters), len(tech.Drivers))
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	bad := Default()
	bad.Wire.ResPerUm = 0
	if bad.Validate() == nil {
		t.Error("zero wire resistance accepted")
	}
	bad2 := Default()
	bad2.Repeaters[0].RoutAB = -1
	if bad2.Validate() == nil {
		t.Error("negative repeater resistance accepted")
	}
	bad3 := Default()
	bad3.Drivers[0].Rout = 0
	if bad3.Validate() == nil {
		t.Error("zero driver resistance accepted")
	}
}

func TestDefaultTerminal(t *testing.T) {
	term := DefaultTerminal("x")
	if !term.IsSource || !term.IsSink {
		t.Error("default terminal should be source+sink")
	}
	if term.AAT != 0 {
		t.Error("default AAT should be 0")
	}
	// Q folds in the output buffer driving the next stage.
	want := Default1XIntrinsic + Default1XRout*DefaultNextStageC
	if math.Abs(term.Q-want) > 1e-15 {
		t.Errorf("Q = %g, want %g", term.Q, want)
	}
	// Driver intrinsic folds in the previous-stage penalty.
	wantIntr := Default1XIntrinsic + DefaultPrevStageR*Default1XCin
	if math.Abs(term.DriverIntrinsic-wantIntr) > 1e-15 {
		t.Errorf("DriverIntrinsic = %g, want %g", term.DriverIntrinsic, wantIntr)
	}
}

func TestScaledRC(t *testing.T) {
	tech := Default()
	s := tech.ScaledRC(0.69)
	if math.Abs(s.Wire.ResPerUm-0.69*tech.Wire.ResPerUm) > 1e-18 {
		t.Error("wire not scaled")
	}
	if math.Abs(s.Repeaters[0].RoutAB-0.69*tech.Repeaters[0].RoutAB) > 1e-18 {
		t.Error("repeater not scaled")
	}
	if math.Abs(s.Drivers[0].Rout-0.69*tech.Drivers[0].Rout) > 1e-18 {
		t.Error("driver not scaled")
	}
	// Capacitances and intrinsics untouched; original not mutated.
	if s.Wire.CapPerUm != tech.Wire.CapPerUm || s.Repeaters[0].DelayAB != tech.Repeaters[0].DelayAB {
		t.Error("scaled more than resistances")
	}
	if tech.Repeaters[0].RoutAB != Default1XRout {
		t.Error("original mutated")
	}
	term := ScaleTerminalRC(DefaultTerminal("x"), 0.5)
	if math.Abs(term.Rout-0.5*Default1XRout) > 1e-18 {
		t.Error("terminal not scaled")
	}
}
