// Package lint holds repository-convention tests that a generic linter
// cannot express: build-time checks over the source tree itself.
package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// exitAllowed lists the library packages allowed to call os.Exit:
// cliflags.Fatal IS the documented process-exit path every cmd/ main
// funnels through, so the call lives there by design.
var exitAllowed = map[string]bool{
	"internal/cliflags": true,
}

// TestNoAdHocLoggingInLibraries enforces the logging discipline the
// request-scoped observability work depends on: every library package
// (everything under internal/) must log through *slog.Logger — whose
// context-aware methods attach trace_id/job_id — never via fmt's
// stdout printers or the legacy global "log" package, which bypass the
// handler chain and lose the request identity. It also forbids os.Exit
// in libraries (outside the exitAllowed exit path): a library that
// exits the process skips deferred cleanup, drain handshakes and the
// flight recorder's postmortem capture — return an error instead.
// Commands (cmd/) own their stdout and exit status and are exempt;
// tests are exempt.
func TestNoAdHocLoggingInLibraries(t *testing.T) {
	root := moduleRoot(t)
	var violations []string
	err := filepath.Walk(filepath.Join(root, "internal"), func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p == "log" {
				violations = append(violations,
					rel+": imports \"log\" — use log/slog so lines carry trace_id")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pos := fset.Position(call.Pos())
			switch {
			case pkg.Name == "fmt":
				switch sel.Sel.Name {
				case "Print", "Printf", "Println":
					violations = append(violations,
						rel+":"+strconv.Itoa(pos.Line)+": fmt."+sel.Sel.Name+
							" writes to stdout — log via slog (or fmt.Fprint* to an explicit writer)")
				}
			case pkg.Name == "os" && sel.Sel.Name == "Exit":
				if !exitAllowed[filepath.ToSlash(filepath.Dir(rel))] {
					violations = append(violations,
						rel+":"+strconv.Itoa(pos.Line)+": os.Exit in a library skips deferred cleanup"+
							" and postmortem capture — return an error (cmd mains exit via cliflags.Fatal)")
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Error(v)
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}
