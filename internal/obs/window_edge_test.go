package obs

import (
	"testing"
	"time"
)

// TestWindowEmptyQuantiles: an empty window reports zeros, not NaNs or
// stale values, for every field.
func TestWindowEmptyQuantiles(t *testing.T) {
	w, _ := newTestWindow(time.Minute, 5*time.Second)
	s := w.Stats()
	if s.Count != 0 || s.Sum != 0 || s.P50 != 0 || s.P90 != 0 || s.P99 != 0 {
		t.Fatalf("empty window stats = %+v, want all zero", s)
	}
}

// TestWindowSingleSample: with one observation, every quantile is that
// observation (within bucket resolution) and Count/Sum are exact.
func TestWindowSingleSample(t *testing.T) {
	w, _ := newTestWindow(time.Minute, 5*time.Second)
	w.Observe(3.0) // 3000 µs: inside the log-linear region
	s := w.Stats()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	if s.Sum != 3.0 {
		t.Fatalf("sum = %g, want 3.0", s.Sum)
	}
	const relBound = 1.0 / 16
	for _, q := range []struct {
		name string
		v    float64
	}{{"p50", s.P50}, {"p90", s.P90}, {"p99", s.P99}} {
		if rel := (q.v - 3.0) / 3.0; rel < -relBound || rel > relBound {
			t.Errorf("%s = %g, want 3.0 ± %.0f%%", q.name, q.v, relBound*100)
		}
	}
	if s.P50 != s.P90 || s.P90 != s.P99 {
		t.Errorf("single-sample quantiles differ: p50=%g p90=%g p99=%g", s.P50, s.P90, s.P99)
	}
}

// TestWindowZeroValueSample: a 0 ms observation (and negative inputs,
// which clamp to 0) still counts and quantiles stay 0, exercising the
// first bucket.
func TestWindowZeroValueSample(t *testing.T) {
	w, _ := newTestWindow(time.Minute, 5*time.Second)
	w.Observe(0)
	w.Observe(-1)
	s := w.Stats()
	if s.Count != 2 || s.P99 != 0 {
		t.Fatalf("stats = %+v, want count 2 and zero quantiles", s)
	}
}

// TestWindowSnapshotDeterminismAcrossRotation: rotation is lazy —
// expired intervals are reset by the next Observe, not by Stats — so
// repeated snapshots at one instant must agree exactly, including when
// that instant sits just past an epoch boundary where stale intervals
// are being skipped rather than rotated.
func TestWindowSnapshotDeterminismAcrossRotation(t *testing.T) {
	r := New()
	w := r.Window("svc/latency/e2e/ok", 4*time.Second, time.Second)
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	w.now = clk.now

	w.Observe(10)
	clk.advance(time.Second)
	w.Observe(20)
	w.Observe(30)

	// Cross an epoch boundary WITHOUT observing: the interval holding
	// the first sample is about to leave the window, and no Observe has
	// rotated any slot.
	clk.advance(3 * time.Second)

	s1 := r.Snapshot()
	s2 := r.Snapshot()
	q1, ok1 := s1.Quantiles["svc/latency/e2e/ok"]
	q2, ok2 := s2.Quantiles["svc/latency/e2e/ok"]
	if !ok1 || !ok2 {
		t.Fatalf("window missing from snapshot: %v %v", ok1, ok2)
	}
	if q1 != q2 {
		t.Fatalf("back-to-back snapshots disagree: %+v vs %+v", q1, q2)
	}
	// The epoch-0 sample (10 ms) expired; only the two epoch-1 samples
	// remain in [window-interval, window].
	if q1.Count != 2 {
		t.Fatalf("count = %d after boundary, want 2 (the 10ms sample expired)", q1.Count)
	}

	// One more interval and the rest expires too: the window drains to
	// empty deterministically.
	clk.advance(2 * time.Second)
	if s := w.Stats(); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("stats after full expiry = %+v, want empty", s)
	}

	// A fresh observation after total expiry starts a clean interval:
	// no stale counts leak from the pre-rotation buckets.
	w.Observe(40)
	s := w.Stats()
	if s.Count != 1 || s.Sum != 40 {
		t.Fatalf("post-expiry stats = %+v, want exactly the new sample", s)
	}
}

// TestWindowSnapshotQuantileFields: the registry snapshot carries the
// same merged view Stats reports — the two read paths cannot drift.
func TestWindowSnapshotQuantileFields(t *testing.T) {
	r := New()
	w := r.Window("lat", time.Minute, 5*time.Second)
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	w.now = clk.now
	for i := 1; i <= 100; i++ {
		w.Observe(float64(i))
	}
	direct := w.Stats()
	snap, ok := r.Snapshot().Quantiles["lat"]
	if !ok {
		t.Fatal("window missing from snapshot")
	}
	got := WindowStats{Count: snap.Count, Sum: snap.Sum, P50: snap.P50, P90: snap.P90, P99: snap.P99}
	if got != direct {
		t.Fatalf("snapshot %+v != direct stats %+v", got, direct)
	}
	if want := w.Window().Seconds(); snap.WindowSeconds != want {
		t.Fatalf("snapshot window = %gs, want %gs", snap.WindowSeconds, want)
	}
}
