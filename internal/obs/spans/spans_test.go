package spans

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"msrnet/internal/obs/reqctx"
)

// fakeClock is a deterministic, concurrency-safe test clock: every
// reading advances by step, so span order and durations are fixed.
type fakeClock struct {
	base  time.Time
	step  time.Duration
	ticks int64
}

func newFakeClock() *fakeClock {
	return &fakeClock{base: time.Unix(1700000000, 0), step: time.Millisecond}
}

func (c *fakeClock) Now() time.Time {
	n := atomic.AddInt64(&c.ticks, 1)
	return c.base.Add(time.Duration(n) * c.step)
}

func testIndex(t *testing.T, o Options) *Index {
	t.Helper()
	if o.Process == "" {
		o.Process = "node-a"
	}
	if o.Now == nil {
		o.Now = newFakeClock().Now
	}
	return NewIndex(o)
}

func traced(id string) context.Context {
	return reqctx.WithTraceID(context.Background(), id)
}

func TestStartWithoutTraceIDRecordsNothing(t *testing.T) {
	x := testIndex(t, Options{})
	ctx, s := x.Start(context.Background(), "submit")
	if s != nil {
		t.Fatalf("untraced context should yield a nil span, got %+v", s)
	}
	s.End() // must not panic
	if _, s2 := x.Start(ctx, "child"); s2 != nil {
		t.Fatal("child of an untraced context should stay nil")
	}
	if x.Len() != 0 {
		t.Fatalf("index holds %d traces, want 0", x.Len())
	}
}

func TestNilIndexAndSpanAreInert(t *testing.T) {
	var x *Index
	ctx, s := x.Start(traced("0123456789abcdef"), "submit")
	if s != nil {
		t.Fatal("nil index should yield a nil span")
	}
	s.Set("k", "v")
	s.SetPeer("p")
	s.End()
	if got := s.Ref(); got != "" {
		t.Fatalf("nil span Ref = %q, want empty", got)
	}
	if x.Len() != 0 || x.Evicted() != 0 || x.TraceIDs() != nil {
		t.Fatal("nil index accessors should be zero-valued")
	}
	if sum := x.Summarize("0123456789abcdef"); sum != nil {
		t.Fatalf("nil index Summarize = %+v, want nil", sum)
	}
	if _, ok := x.Export("0123456789abcdef"); ok {
		t.Fatal("nil index Export should miss")
	}
	if d := x.Dump(); len(d.Traces) != 0 || d.Schema != Schema {
		t.Fatalf("nil index Dump = %+v", d)
	}
	_ = ctx
}

func TestParentLinksLocalAndRemote(t *testing.T) {
	x := testIndex(t, Options{})
	ctx := traced("0123456789abcdef")

	// Remote parent applies to the first (root) span only; local
	// nesting wins below it.
	ctx = WithRemoteParent(ctx, "node-z#7")
	ctx, root := x.Start(ctx, "submit")
	cctx, child := x.Start(ctx, "queue")
	_, grand := x.Start(cctx, "solve")
	grand.End()
	child.End()
	root.End()

	exp, ok := x.Export("0123456789abcdef")
	if !ok {
		t.Fatal("trace missing from index")
	}
	if len(exp.Spans) != 3 {
		t.Fatalf("exported %d spans, want 3", len(exp.Spans))
	}
	byName := map[string]Record{}
	for _, r := range exp.Spans {
		byName[r.Name] = r
	}
	r := byName["submit"]
	if r.ParentRemote != "node-z#7" || r.Parent != 0 {
		t.Fatalf("root parent = (%d, %q), want (0, node-z#7)", r.Parent, r.ParentRemote)
	}
	if q := byName["queue"]; q.Parent != r.ID || q.ParentRemote != "" {
		t.Fatalf("queue parent = (%d, %q), want (%d, \"\")", q.Parent, q.ParentRemote, r.ID)
	}
	if s := byName["solve"]; s.Parent != byName["queue"].ID {
		t.Fatalf("solve parent = %d, want %d", s.Parent, byName["queue"].ID)
	}
	if want := Qualify("node-a", r.ID); want != "node-a#"+fmt.Sprint(r.ID) {
		t.Fatalf("Qualify = %q", want)
	}
}

func TestSplitRef(t *testing.T) {
	proc, id, ok := SplitRef("http://h1:8383#42")
	if !ok || proc != "http://h1:8383" || id != 42 {
		t.Fatalf("SplitRef = (%q, %d, %v)", proc, id, ok)
	}
	for _, bad := range []string{"", "#1", "x#", "x#0", "x#-3", "noref", "x#1.5"} {
		if _, _, ok := SplitRef(bad); ok {
			t.Fatalf("SplitRef(%q) should fail", bad)
		}
	}
}

func TestEndIsIdempotent(t *testing.T) {
	x := testIndex(t, Options{})
	_, s := x.Start(traced("0123456789abcdef"), "submit")
	s.End()
	s.End()
	exp, _ := x.Export("0123456789abcdef")
	if len(exp.Spans) != 1 {
		t.Fatalf("double End recorded %d spans, want 1", len(exp.Spans))
	}
}

func TestExportIsByteIdentical(t *testing.T) {
	build := func() []byte {
		clock := newFakeClock()
		x := NewIndex(Options{Process: "node-a", Now: clock.Now})
		ctx := traced("0123456789abcdef")
		ctx, root := x.Start(ctx, "submit")
		_, q := x.Start(ctx, "queue")
		q.Set("tenant", "default")
		q.SetPeer("node-b")
		q.End()
		root.End()
		b, ok := x.ExportJSON("0123456789abcdef")
		if !ok {
			t.Fatal("export miss")
		}
		return b
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical inputs produced different msrnet-spans/v1 bytes:\n%s\n---\n%s", a, b)
	}
	// And re-exporting the same index at the same tick count stays
	// stable span-wise (WallUnixNs moves with the clock by design).
	clock := newFakeClock()
	x := NewIndex(Options{Process: "node-a", Now: clock.Now})
	_, s := x.Start(traced("feedfacefeedface"), "submit")
	s.End()
	e1, _ := x.Export("feedfacefeedface")
	e2, _ := x.Export("feedfacefeedface")
	e1.WallUnixNs, e2.WallUnixNs = 0, 0
	if fmt.Sprint(e1) != fmt.Sprint(e2) {
		t.Fatalf("re-export drifted: %+v vs %+v", e1, e2)
	}
}

func TestPerTraceSpanBoundCountsDrops(t *testing.T) {
	x := testIndex(t, Options{MaxSpans: 4})
	ctx := traced("0123456789abcdef")
	for i := 0; i < 10; i++ {
		_, s := x.Start(ctx, fmt.Sprintf("span-%d", i))
		s.End()
	}
	exp, _ := x.Export("0123456789abcdef")
	if len(exp.Spans) != 4 {
		t.Fatalf("kept %d spans, want 4", len(exp.Spans))
	}
	if exp.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", exp.Dropped)
	}
}

func TestTraceEvictionUnderChurn(t *testing.T) {
	x := testIndex(t, Options{MaxTraces: 8})
	// Churn 100 traces through an 8-trace index; only the newest 8
	// survive and the eviction count tallies the rest.
	for i := 0; i < 100; i++ {
		ctx := traced(fmt.Sprintf("%016d", i))
		_, s := x.Start(ctx, "submit")
		s.End()
	}
	if x.Len() != 8 {
		t.Fatalf("index holds %d traces, want 8", x.Len())
	}
	if x.Evicted() != 92 {
		t.Fatalf("evicted = %d, want 92", x.Evicted())
	}
	ids := x.TraceIDs()
	for _, id := range ids {
		var n int
		fmt.Sscanf(id, "%d", &n)
		if n < 92 {
			t.Fatalf("trace %s survived but is not among the newest 8 (%v)", id, ids)
		}
	}
	// Touching an old trace protects it from the next eviction wave.
	keep := ids[0]
	for i := 100; i < 107; i++ {
		_, s := x.Start(traced(fmt.Sprintf("%016d", i)), "submit")
		s.End()
		_, k := x.Start(traced(keep), "touch")
		k.End()
	}
	found := false
	for _, id := range x.TraceIDs() {
		if id == keep {
			found = true
		}
	}
	if !found {
		t.Fatalf("recently touched trace %s was evicted; survivors %v", keep, x.TraceIDs())
	}
}

func TestConcurrentChurnStaysBounded(t *testing.T) {
	x := testIndex(t, Options{MaxTraces: 16, MaxSpans: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx := traced(fmt.Sprintf("%08d%08d", g, i%24))
				ctx, root := x.Start(ctx, "submit")
				_, c := x.Start(ctx, "queue")
				c.End()
				root.End()
			}
		}(g)
	}
	wg.Wait()
	if got := x.Len(); got > 16 {
		t.Fatalf("index grew to %d traces under churn, bound is 16", got)
	}
	for _, id := range x.TraceIDs() {
		if exp, ok := x.Export(id); ok && len(exp.Spans) > 8 {
			t.Fatalf("trace %s holds %d spans, bound is 8", id, len(exp.Spans))
		}
	}
}

func TestSummarizeSelfTimeByClass(t *testing.T) {
	clock := newFakeClock()
	x := NewIndex(Options{Process: "node-a", Now: clock.Now})
	ctx := traced("0123456789abcdef")
	// Ticks advance 1ms per reading: submit spans the whole tree, the
	// queue and solve children take their own slices out of it.
	ctx, root := x.Start(ctx, "submit")  // t1
	_, q := x.Start(ctx, "queue")        // t2
	q.End()                              // t3: queue dur 1ms
	sctx, sv := x.Start(ctx, "solve")    // t4
	_, ard := x.Start(sctx, "solve/ard") // t5
	ard.End()                            // t6: ard dur 1ms
	sv.End()                             // t7: solve dur 3ms, self 2ms
	root.End()                           // t8: submit dur 7ms, self 3ms

	sum := x.Summarize("0123456789abcdef")
	if sum == nil {
		t.Fatal("summary missing")
	}
	if sum.Count != 4 || sum.Process != "node-a" {
		t.Fatalf("summary = %+v", sum)
	}
	want := map[string]float64{ClassQueue: 1, ClassSolve: 3, ClassOther: 3}
	for class, ms := range want {
		if got := sum.ByClassMs[class]; got != ms {
			t.Fatalf("ByClassMs[%s] = %v, want %v (full: %v)", class, got, ms, sum.ByClassMs)
		}
	}
}

func TestClassOf(t *testing.T) {
	cases := map[string]string{
		"queue":            ClassQueue,
		"solve":            ClassSolve,
		"solve/ard":        ClassSolve,
		"solve/optimize":   ClassSolve,
		"wal/append":       ClassFsync,
		"wal/fsync":        ClassFsync,
		"wal/replay":       ClassFsync,
		"forward":          ClassHop,
		"cache/remote_get": ClassRemoteCache,
		"cache/remote_put": ClassRemoteCache,
		"submit":           ClassOther,
		"decode":           ClassOther,
		"admit":            ClassOther,
		"cache/get":        ClassOther,
		"replay":           ClassOther,
	}
	for name, want := range cases {
		if got := ClassOf(name); got != want {
			t.Fatalf("ClassOf(%q) = %q, want %q", name, got, want)
		}
	}
}
