package spans

import (
	"bytes"
	"encoding/json"
	"sort"
)

// TraceExport is the msrnet-spans/v1 body served by
// GET /debug/spans/{traceID}: one process's spans for one trace, sorted
// by span ID so identical index state marshals to identical bytes
// (encoding/json already emits Attrs keys sorted). WallUnixNs is the
// process clock at export time — the fleet collector's request/response
// midpoint probe reads it to estimate this peer's clock offset.
type TraceExport struct {
	Schema     string   `json:"schema"`
	TraceID    string   `json:"trace_id"`
	Process    string   `json:"process"`
	WallUnixNs int64    `json:"wall_unix_ns"`
	Spans      []Record `json:"spans"`
	Dropped    int      `json:"dropped,omitempty"`
}

// Export snapshots one trace; ok is false when the trace is unknown
// (or the index is nil).
func (x *Index) Export(traceID string) (TraceExport, bool) {
	if x == nil {
		return TraceExport{}, false
	}
	x.mu.Lock()
	tb, ok := x.traces[traceID]
	if !ok {
		x.mu.Unlock()
		return TraceExport{}, false
	}
	recs := append([]Record(nil), tb.spans...)
	dropped := tb.dropped
	x.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return TraceExport{
		Schema:     Schema,
		TraceID:    traceID,
		Process:    x.process,
		WallUnixNs: x.nowNs(),
		Spans:      recs,
		Dropped:    dropped,
	}, true
}

// ExportJSON renders one trace as the msrnet-spans/v1 body; ok is
// false when the trace is unknown. Identical index state and clock
// yield byte-identical output.
func (x *Index) ExportJSON(traceID string) ([]byte, bool) {
	exp, ok := x.Export(traceID)
	if !ok {
		return nil, false
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(exp); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

// Dump is the whole-index snapshot captured into postmortem bundles
// (spans.json), so a crashed daemon's traces survive into the bundle.
type Dump struct {
	Schema  string        `json:"schema"`
	Process string        `json:"process"`
	Evicted int64         `json:"evicted,omitempty"`
	Traces  []TraceExport `json:"traces"`
}

// Dump snapshots every indexed trace, sorted by trace ID. Safe on a
// nil index (empty dump).
func (x *Index) Dump() Dump {
	d := Dump{Schema: Schema}
	if x == nil {
		return d
	}
	d.Process = x.process
	d.Evicted = x.Evicted()
	for _, id := range x.TraceIDs() {
		if exp, ok := x.Export(id); ok {
			d.Traces = append(d.Traces, exp)
		}
	}
	return d
}
