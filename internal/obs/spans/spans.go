// Package spans is the distributed half of the observability substrate:
// explicit spans with parent links, process identity and wall-anchored
// monotonic timestamps, kept in a bounded per-trace index so every
// daemon can answer "what did THIS trace do here?" long after the job
// finished. It layers over (and deliberately does not replace) the
// aggregate span tree in package obs: obs.Registry answers "where does
// wall time go in general", this package answers "where did trace X's
// time go", and the fleet collector (internal/spancollect) stitches the
// per-process answers into one timeline. See DESIGN.md §15.
//
// Like every obs handle, a nil *Index and a nil *Span are valid,
// allocation-free sinks, so instrumented paths pay a nil check when
// tracing is off.
package spans

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"msrnet/internal/obs/reqctx"
)

// Schema identifies the JSON layout of a per-trace span export, in the
// family of msrnet-metrics/v1 and msrnet-trace-events/v1.
const Schema = "msrnet-spans/v1"

// Record is one finished span as exported: timestamps are Unix
// nanoseconds on the owning process's clock (derived from a wall anchor
// plus a monotonic elapsed reading, so they never jump with NTP steps),
// and the parent link is either a local span ID or a qualified
// "process#id" reference when the parent lives in another process.
type Record struct {
	ID           int64             `json:"id"`
	Parent       int64             `json:"parent,omitempty"`
	ParentRemote string            `json:"parent_remote,omitempty"`
	Name         string            `json:"name"`
	StartUnixNs  int64             `json:"start_unix_ns"`
	DurNs        int64             `json:"dur_ns"`
	Peer         string            `json:"peer,omitempty"`
	Attrs        map[string]string `json:"attrs,omitempty"`
}

// Ref returns the record's qualified cross-process identity.
func (r Record) Ref(process string) string { return Qualify(process, r.ID) }

// Qualify builds the cross-process span reference "process#id" carried
// on forward hops and in ParentRemote links.
func Qualify(process string, id int64) string {
	return process + "#" + strconv.FormatInt(id, 10)
}

// SplitRef splits a qualified reference back into process and span ID;
// ok is false for malformed references.
func SplitRef(ref string) (process string, id int64, ok bool) {
	i := strings.LastIndexByte(ref, '#')
	if i <= 0 {
		return "", 0, false
	}
	id, err := strconv.ParseInt(ref[i+1:], 10, 64)
	if err != nil || id <= 0 {
		return "", 0, false
	}
	return ref[:i], id, true
}

// Span classes for critical-path attribution. ClassOf maps a span name
// to the segment the fleet report buckets it under.
const (
	ClassQueue       = "queue"
	ClassSolve       = "solve"
	ClassFsync       = "fsync"
	ClassHop         = "hop"
	ClassRemoteCache = "remote_cache"
	ClassOther       = "other"
)

// ClassOf buckets a span name into its critical-path segment: queue
// wait, solver, WAL append/fsync/replay, forward hop, remote shard
// cache, or other (serving overhead: decode, admission, encode).
func ClassOf(name string) string {
	switch {
	case name == "queue":
		return ClassQueue
	case name == "solve" || strings.HasPrefix(name, "solve/"):
		return ClassSolve
	case strings.HasPrefix(name, "wal/"):
		return ClassFsync
	case name == "forward":
		return ClassHop
	case strings.HasPrefix(name, "cache/remote"):
		return ClassRemoteCache
	default:
		return ClassOther
	}
}

// Options configures an Index.
type Options struct {
	// Process is this process's identity on cross-process span links —
	// the cluster self ID for a fleet member, a stable label otherwise.
	Process string
	// MaxTraces bounds how many distinct traces the index retains; the
	// least-recently-touched trace is evicted first (0 = 256).
	MaxTraces int
	// MaxSpans bounds the spans kept per trace; overflow is counted as
	// dropped, never blocks (0 = 512).
	MaxSpans int
	// Now overrides the clock (tests). It must be safe for concurrent
	// use; the default is time.Now.
	Now func() time.Time
}

const (
	defaultMaxTraces = 256
	defaultMaxSpans  = 512
)

// Index is the bounded per-process span store: spans land here on End,
// keyed by trace ID, and leave as deterministic msrnet-spans/v1 exports
// via GET /debug/spans/{traceID}, explain summaries and postmortem
// bundles. All methods are safe for concurrent use and nil-safe.
type Index struct {
	process   string
	maxTraces int
	maxSpans  int
	now       func() time.Time

	// Wall anchor: timestamps are originWallNs + (now() − origin), so
	// with the real clock they inherit time.Time's monotonic reading —
	// intervals are NTP-step-proof — while still reading as Unix ns.
	origin       time.Time
	originWallNs int64

	mu      sync.Mutex
	nextID  int64
	touch   int64
	traces  map[string]*traceBuf
	evicted int64
}

// traceBuf is one trace's bounded span buffer.
type traceBuf struct {
	touch   int64
	spans   []Record
	dropped int
}

// NewIndex builds an empty span index.
func NewIndex(o Options) *Index {
	if o.MaxTraces <= 0 {
		o.MaxTraces = defaultMaxTraces
	}
	if o.MaxSpans <= 0 {
		o.MaxSpans = defaultMaxSpans
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	origin := o.Now()
	return &Index{
		process:   o.Process,
		maxTraces: o.MaxTraces,
		maxSpans:  o.MaxSpans,
		now:       o.Now,
		origin:    origin,
		// Round-trip through UnixNano strips nothing: the anchor is the
		// wall half, the monotonic half rides on origin itself.
		originWallNs: origin.UnixNano(),
		traces:       map[string]*traceBuf{},
	}
}

// Process returns the index's process identity ("" on a nil index).
func (x *Index) Process() string {
	if x == nil {
		return ""
	}
	return x.process
}

// nowNs is the index's clock reading as Unix nanoseconds, monotonic
// under the real clock.
func (x *Index) nowNs() int64 {
	return x.originWallNs + x.now().Sub(x.origin).Nanoseconds()
}

// ctx keys for parent propagation.
type parentKey struct{}
type remoteParentKey struct{}

// parentRef is the in-context handle to the nearest enclosing span.
// It carries the owning index so a context that crosses a process
// boundary in-memory (the test transport's forward path) cannot leak
// one process's span IDs into another's index — a foreign parent is
// ignored and the remote link wins, exactly as over real HTTP.
type parentRef struct {
	idx *Index
	id  int64
}

// WithRemoteParent marks ctx so the NEXT root span started from it
// links to the given qualified "process#id" parent in another process —
// the server half of a forward hop. A local enclosing span, when
// present, always wins over the remote link.
func WithRemoteParent(ctx context.Context, ref string) context.Context {
	if ref == "" {
		return ctx
	}
	return context.WithValue(ctx, remoteParentKey{}, ref)
}

// Span is one open measurement. End records it into the index; a nil
// Span (nil index, or a context with no trace ID) no-ops everywhere.
type Span struct {
	idx     *Index
	traceID string
	id      int64
	parent  int64
	remote  string
	name    string
	startNs int64

	mu    sync.Mutex
	peer  string
	attrs map[string]string
	ended bool
}

// Start opens a span named name on the context's trace, parenting it to
// the nearest enclosing span (local first, then a WithRemoteParent
// link). The returned context makes this span the parent of spans
// started from it. Contexts without a trace ID get a nil span: only the
// request lifecycle is indexed, never untraced scrapes.
func (x *Index) Start(ctx context.Context, name string) (context.Context, *Span) {
	if x == nil {
		return ctx, nil
	}
	traceID := reqctx.TraceID(ctx)
	if traceID == "" {
		return ctx, nil
	}
	s := &Span{idx: x, traceID: traceID, name: name, startNs: x.nowNs()}
	if p, ok := ctx.Value(parentKey{}).(parentRef); ok && p.idx == x {
		s.parent = p.id
	} else if ref, ok := ctx.Value(remoteParentKey{}).(string); ok {
		s.remote = ref
	}
	x.mu.Lock()
	x.nextID++
	s.id = x.nextID
	x.mu.Unlock()
	return context.WithValue(ctx, parentKey{}, parentRef{idx: x, id: s.id}), s
}

// Ref returns the span's qualified "process#id" identity for
// cross-process parent links ("" on a nil span).
func (s *Span) Ref() string {
	if s == nil {
		return ""
	}
	return Qualify(s.idx.process, s.id)
}

// SetPeer records the remote peer this span talked to.
func (s *Span) SetPeer(peer string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.peer = peer
	s.mu.Unlock()
}

// Set attaches one string attribute.
func (s *Span) Set(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = val
	s.mu.Unlock()
}

// End closes the span and files it under its trace. End is idempotent;
// only the first call records.
func (s *Span) End() {
	if s == nil {
		return
	}
	endNs := s.idx.nowNs()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := Record{
		ID:           s.id,
		Parent:       s.parent,
		ParentRemote: s.remote,
		Name:         s.name,
		StartUnixNs:  s.startNs,
		DurNs:        endNs - s.startNs,
		Peer:         s.peer,
		Attrs:        s.attrs,
	}
	s.mu.Unlock()
	s.idx.add(s.traceID, rec)
}

// add files one finished span, evicting the least-recently-touched
// trace when the trace bound is hit and counting (not storing) spans
// past the per-trace bound.
func (x *Index) add(traceID string, rec Record) {
	x.mu.Lock()
	defer x.mu.Unlock()
	tb, ok := x.traces[traceID]
	if !ok {
		if len(x.traces) >= x.maxTraces {
			x.evictLocked()
		}
		tb = &traceBuf{}
		x.traces[traceID] = tb
	}
	x.touch++
	tb.touch = x.touch
	if len(tb.spans) >= x.maxSpans {
		tb.dropped++
		return
	}
	tb.spans = append(tb.spans, rec)
}

// evictLocked removes the least-recently-touched trace.
func (x *Index) evictLocked() {
	var victim string
	var oldest int64
	for id, tb := range x.traces {
		if victim == "" || tb.touch < oldest {
			victim, oldest = id, tb.touch
		}
	}
	if victim != "" {
		delete(x.traces, victim)
		x.evicted++
	}
}

// Len returns the number of traces currently indexed.
func (x *Index) Len() int {
	if x == nil {
		return 0
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.traces)
}

// Evicted returns how many traces the bound has pushed out.
func (x *Index) Evicted() int64 {
	if x == nil {
		return 0
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.evicted
}

// TraceIDs lists the indexed trace IDs, sorted.
func (x *Index) TraceIDs() []string {
	if x == nil {
		return nil
	}
	x.mu.Lock()
	ids := make([]string, 0, len(x.traces))
	for id := range x.traces {
		ids = append(ids, id)
	}
	x.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// Summary is the explain-report view of one trace's spans in one
// process: how many spans landed here and where this process spent its
// share, as per-class self time (a span's duration minus its local
// children's) in milliseconds. Hops is stamped by the service from the
// forward chain.
type Summary struct {
	Process string `json:"process,omitempty"`
	Count   int    `json:"count"`
	Dropped int    `json:"dropped,omitempty"`
	Hops    int    `json:"hops,omitempty"`
	// ByClassMs maps critical-path class → this process's self time.
	ByClassMs map[string]float64 `json:"by_class_ms,omitempty"`
}

// Summarize builds the explain summary for one trace, or nil when the
// trace is unknown (or the index is nil).
func (x *Index) Summarize(traceID string) *Summary {
	if x == nil {
		return nil
	}
	x.mu.Lock()
	tb, ok := x.traces[traceID]
	if !ok {
		x.mu.Unlock()
		return nil
	}
	recs := append([]Record(nil), tb.spans...)
	dropped := tb.dropped
	x.mu.Unlock()

	// Self time: duration minus local children, children clamped into
	// the parent window so a child that outlives its parent (ended out
	// of order) cannot drive self time negative.
	childNs := map[int64]int64{}
	byID := map[int64]Record{}
	for _, r := range recs {
		byID[r.ID] = r
	}
	for _, r := range recs {
		if r.Parent == 0 {
			continue
		}
		p, ok := byID[r.Parent]
		if !ok {
			continue
		}
		childNs[r.Parent] += overlapNs(r.StartUnixNs, r.DurNs, p.StartUnixNs, p.DurNs)
	}
	s := &Summary{Process: x.process, Count: len(recs), Dropped: dropped}
	for _, r := range recs {
		self := r.DurNs - childNs[r.ID]
		if self < 0 {
			self = 0
		}
		if s.ByClassMs == nil {
			s.ByClassMs = map[string]float64{}
		}
		s.ByClassMs[ClassOf(r.Name)] += float64(self) / 1e6
	}
	return s
}

// overlapNs returns how much of interval (as, ad) lies inside (bs, bd).
func overlapNs(as, ad, bs, bd int64) int64 {
	lo, hi := as, as+ad
	if bs > lo {
		lo = bs
	}
	if be := bs + bd; be < hi {
		hi = be
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}
