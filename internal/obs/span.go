package obs

import (
	"strings"
	"time"
)

// Span is one open phase measurement. End accumulates the elapsed wall
// time into the registry's span tree at the span's path; a path like
// "msri/solve" nests "solve" under "msri". Opening the same path many
// times accumulates count and total duration, which is how per-net or
// per-call phases aggregate. A nil Span (from a nil registry) is a
// no-op.
type Span struct {
	reg   *Registry
	path  string
	start time.Time
}

// StartSpan opens a span at the '/'-separated path.
func (r *Registry) StartSpan(path string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, path: path, start: time.Now()}
}

// Start opens a span on a possibly-nil Recorder. It exists because
// calling a method on a nil Recorder interface would panic, while a nil
// *Span is safe.
func Start(r Recorder, path string) *Span {
	if r == nil {
		return nil
	}
	return r.StartSpan(path)
}

// End closes the span, folding its wall time into the span tree.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.reg.addSpan(s.path, time.Since(s.start))
}

// spanNode is one node of the accumulated span tree. The root node is
// anonymous and holds only children.
//
// order keeps sibling names in the sequence their first End reached the
// tree, and Snapshot walks it instead of the (randomly iterated)
// children map. This makes sibling order in every export — the Text
// report, the JSON snapshot, the Prometheus phase series — follow the
// pipeline's own execution order rather than lexicographic accident,
// and it makes repeated snapshots of one registry deterministic:
// identical state renders to identical bytes. Under concurrent
// recording, first-End order is whatever the scheduler produced, but it
// is fixed once recorded — later Ends only accumulate into existing
// nodes.
type spanNode struct {
	count    int64
	total    time.Duration
	order    []string
	children map[string]*spanNode
}

func (r *Registry) addSpan(path string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := &r.spans
	for _, seg := range strings.Split(path, "/") {
		if n.children == nil {
			n.children = map[string]*spanNode{}
		}
		c, ok := n.children[seg]
		if !ok {
			c = &spanNode{}
			n.children[seg] = c
			n.order = append(n.order, seg)
		}
		n = c
	}
	n.count++
	n.total += d
}

// SpanSeconds returns the accumulated wall time of the span at path, or
// zero when the path was never recorded (or the registry is nil).
func (r *Registry) SpanSeconds(path string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := &r.spans
	for _, seg := range strings.Split(path, "/") {
		c, ok := n.children[seg]
		if !ok {
			return 0
		}
		n = c
	}
	return n.total.Seconds()
}
