package reqctx

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestIDGenerationAndValidity(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatalf("two generated IDs collided: %s", a)
	}
	if len(a) != 16 || !ValidID(a) {
		t.Fatalf("generated ID %q is not a valid 16-char ID", a)
	}
	for _, bad := range []string{"", "has space", "tab\tid", strings.Repeat("x", 65), "non\x01print"} {
		if ValidID(bad) {
			t.Errorf("ValidID(%q) = true, want false", bad)
		}
	}
	if !ValidID("client-chosen.ID_42") {
		t.Error("printable punctuated ID rejected")
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != "" || JobID(ctx) != "" {
		t.Fatal("empty context carries IDs")
	}
	ctx = WithJobID(WithTraceID(ctx, "t1"), "j1")
	if TraceID(ctx) != "t1" || JobID(ctx) != "j1" {
		t.Fatalf("round trip: trace=%q job=%q", TraceID(ctx), JobID(ctx))
	}
	ctx2, id := EnsureTraceID(ctx)
	if id != "t1" || ctx2 != ctx {
		t.Fatal("EnsureTraceID replaced an existing valid ID")
	}
	_, id = EnsureTraceID(context.Background())
	if !ValidID(id) {
		t.Fatalf("EnsureTraceID generated invalid ID %q", id)
	}
}

// TestHandlerAttachesIDs: records logged with a carrying context gain
// trace_id/job_id; context-free records pass through untouched.
func TestHandlerAttachesIDs(t *testing.T) {
	var buf bytes.Buffer
	log := Logger(slog.NewTextHandler(&buf, nil))

	ctx := WithJobID(WithTraceID(context.Background(), "trace-xyz"), "job-7")
	log.InfoContext(ctx, "job done", "status", "ok")
	line := buf.String()
	if !strings.Contains(line, "trace_id=trace-xyz") || !strings.Contains(line, "job_id=job-7") {
		t.Fatalf("log line missing IDs: %s", line)
	}

	buf.Reset()
	log.Info("daemon starting")
	if strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("context-free line gained a trace_id: %s", buf.String())
	}

	// WithAttrs/WithGroup must preserve the wrapping.
	buf.Reset()
	log.With("component", "svc").InfoContext(ctx, "x")
	if !strings.Contains(buf.String(), "trace_id=trace-xyz") {
		t.Fatalf("With() dropped the reqctx handler: %s", buf.String())
	}
}

func TestMiddleware(t *testing.T) {
	var seen string
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = TraceID(r.Context())
	}))

	// Client-provided ID is propagated and echoed.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/jobs", nil)
	req.Header.Set(HeaderTraceID, "client-id-1")
	h.ServeHTTP(rec, req)
	if seen != "client-id-1" {
		t.Fatalf("handler saw trace ID %q, want client-id-1", seen)
	}
	if got := rec.Header().Get(HeaderTraceID); got != "client-id-1" {
		t.Fatalf("response echo = %q, want client-id-1", got)
	}

	// Absent or malformed IDs are replaced with a generated one.
	for _, hdr := range []string{"", "bad id with spaces", strings.Repeat("z", 200)} {
		rec = httptest.NewRecorder()
		req = httptest.NewRequest("POST", "/v1/jobs", nil)
		if hdr != "" {
			req.Header.Set(HeaderTraceID, hdr)
		}
		h.ServeHTTP(rec, req)
		if !ValidID(seen) || seen == hdr {
			t.Fatalf("header %q: handler saw %q, want a fresh valid ID", hdr, seen)
		}
		if rec.Header().Get(HeaderTraceID) != seen {
			t.Fatalf("header %q: echo %q != context ID %q", hdr, rec.Header().Get(HeaderTraceID), seen)
		}
	}
}
