package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// MetricsSchema identifies the JSON layout of a Snapshot, so downstream
// tooling (the BENCH_*.json perf-trajectory dumps) can detect format
// drift.
const MetricsSchema = "msrnet-metrics/v1"

// Snapshot is a point-in-time, JSON-serializable copy of a registry.
type Snapshot struct {
	Schema     string                      `json:"schema"`
	Counters   map[string]int64            `json:"counters,omitempty"`
	Gauges     map[string]int64            `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot     `json:"histograms,omitempty"`
	Quantiles  map[string]QuantileSnapshot `json:"quantiles,omitempty"`
	Spans      []SpanSnapshot              `json:"spans,omitempty"`
	// Runtime carries the Go runtime's state (goroutines, heap, GC
	// pause and scheduling-latency quantiles) when the registry has
	// EnableRuntime set — daemons only; batch/bench registries stay
	// deterministic.
	Runtime *RuntimeSnapshot `json:"runtime,omitempty"`
}

// QuantileSnapshot is the serialized view of one sliding-window
// histogram: p50/p90/p99 over the live window (milliseconds), plus the
// window span so readers can interpret the counts.
type QuantileSnapshot struct {
	WindowSeconds float64 `json:"window_seconds"`
	Count         int64   `json:"count"`
	Sum           float64 `json:"sum"`
	P50           float64 `json:"p50"`
	P90           float64 `json:"p90"`
	P99           float64 `json:"p99"`
	// ExemplarMs/ExemplarTrace identify the worst traced observation
	// still inside the window (WindowHist.ObserveEx): the trace ID links
	// a dashboard's tail quantile to the distributed trace behind it.
	ExemplarMs    float64 `json:"exemplar_ms,omitempty"`
	ExemplarTrace string  `json:"exemplar_trace_id,omitempty"`
}

// HistSnapshot is the serialized form of one histogram. Counts has one
// entry per bound plus a final overflow bucket. Max is omitted (and
// round-trips as zero-value) when the histogram is empty.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Max    *float64  `json:"max,omitempty"`
}

// SpanSnapshot is one node of the serialized span tree.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	Count    int64          `json:"count"`
	Seconds  float64        `json:"seconds"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot copies the registry's current state. Safe to call while other
// goroutines keep recording; each metric is read atomically.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Schema: MetricsSchema}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			snap.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistSnapshot{
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
				Count:  h.Count(),
				Sum:    h.Sum(),
			}
			for i := range h.counts {
				hs.Counts[i] = atomic.LoadInt64(&h.counts[i])
			}
			if m := h.Max(); !math.IsInf(m, -1) {
				hs.Max = &m
			}
			snap.Histograms[name] = hs
		}
	}
	if len(r.windows) > 0 {
		snap.Quantiles = make(map[string]QuantileSnapshot, len(r.windows))
		for name, w := range r.windows {
			st := w.Stats()
			snap.Quantiles[name] = QuantileSnapshot{
				WindowSeconds: w.Window().Seconds(),
				Count:         st.Count,
				Sum:           st.Sum,
				P50:           st.P50,
				P90:           st.P90,
				P99:           st.P99,
				ExemplarMs:    st.ExemplarMs,
				ExemplarTrace: st.ExemplarTrace,
			}
		}
	}
	snap.Spans = snapshotSpans(&r.spans)
	if r.runtimeOn {
		rt := ReadRuntime()
		snap.Runtime = &rt
	}
	return snap
}

func snapshotSpans(n *spanNode) []SpanSnapshot {
	out := make([]SpanSnapshot, 0, len(n.order))
	for _, name := range n.order {
		c := n.children[name]
		out = append(out, SpanSnapshot{
			Name:     name,
			Count:    c.count,
			Seconds:  c.total.Seconds(),
			Children: snapshotSpans(c),
		})
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Text renders the snapshot as a human-readable report: the span tree
// (indented by nesting) followed by counters, gauges and histogram
// summaries, each sorted by name.
func (s Snapshot) Text() string {
	var b strings.Builder
	if len(s.Spans) > 0 {
		b.WriteString("phase spans:\n")
		writeSpanText(&b, s.Spans, 1)
	}
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-44s %d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-44s %d\n", name, s.Gauges[name])
		}
	}
	if len(s.Quantiles) > 0 {
		b.WriteString("quantiles:\n")
		names := make([]string, 0, len(s.Quantiles))
		for name := range s.Quantiles {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			q := s.Quantiles[name]
			fmt.Fprintf(&b, "  %-44s n=%d p50=%.3gms p90=%.3gms p99=%.3gms (%.0fs window)\n",
				name, q.Count, q.P50, q.P90, q.P99, q.WindowSeconds)
		}
	}
	if s.Runtime != nil {
		rt := s.Runtime
		b.WriteString("runtime:\n")
		fmt.Fprintf(&b, "  %-44s %d\n", "goroutines", rt.Goroutines)
		fmt.Fprintf(&b, "  %-44s %d\n", "heap_inuse_bytes", rt.HeapInuseBytes)
		fmt.Fprintf(&b, "  %-44s %d\n", "gc_cycles", rt.GCCycles)
		fmt.Fprintf(&b, "  %-44s p50=%.3gms p90=%.3gms p99=%.3gms\n",
			"gc_pause", rt.GCPauseMs.P50, rt.GCPauseMs.P90, rt.GCPauseMs.P99)
		fmt.Fprintf(&b, "  %-44s p50=%.3gms p90=%.3gms p99=%.3gms\n",
			"sched_latency", rt.SchedLatencyMs.P50, rt.SchedLatencyMs.P90, rt.SchedLatencyMs.P99)
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		names := make([]string, 0, len(s.Histograms))
		for name := range s.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h := s.Histograms[name]
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			maxStr := "-"
			if h.Max != nil {
				maxStr = fmt.Sprintf("%g", *h.Max)
			}
			fmt.Fprintf(&b, "  %-44s n=%d mean=%.3g max=%s\n", name, h.Count, mean, maxStr)
		}
	}
	return b.String()
}

func writeSpanText(b *strings.Builder, spans []SpanSnapshot, depth int) {
	for _, sp := range spans {
		fmt.Fprintf(b, "%s%-*s %6d× %12.6fs\n",
			strings.Repeat("  ", depth), 46-2*depth, sp.Name, sp.Count, sp.Seconds)
		writeSpanText(b, sp.Children, depth+1)
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
