package obs

import (
	"math"
	"runtime/metrics"
)

// RuntimeSnapshot is the Go runtime's health at one instant, read from
// runtime/metrics: scheduler pressure (goroutine count, scheduling
// latency), memory pressure (heap in-use, total mapped) and GC activity
// (cycle count, pause quantiles). The daemon includes it in every
// metrics snapshot (Registry.EnableRuntime) and the flight recorder
// samples it into the postmortem ring, because an incident bundle
// without GC/goroutine history cannot distinguish "the DP got slow"
// from "the process was drowning".
type RuntimeSnapshot struct {
	// Goroutines is the live goroutine count.
	Goroutines int64 `json:"goroutines"`
	// HeapInuseBytes is heap memory occupied by live objects plus the
	// unused tails of in-use spans — the classic HeapInuse.
	HeapInuseBytes int64 `json:"heap_inuse_bytes"`
	// TotalBytes is all memory mapped by the runtime.
	TotalBytes int64 `json:"total_bytes"`
	// GCCycles counts completed GC cycles since process start.
	GCCycles int64 `json:"gc_cycles"`
	// GCPauseMs are stop-the-world pause quantiles (milliseconds) over
	// the process lifetime.
	GCPauseMs RuntimeQuantiles `json:"gc_pause_ms"`
	// SchedLatencyMs are goroutine scheduling-latency quantiles
	// (milliseconds, time spent runnable before running) over the
	// process lifetime.
	SchedLatencyMs RuntimeQuantiles `json:"sched_latency_ms"`
}

// RuntimeQuantiles is one p50/p90/p99 triple from a runtime histogram.
type RuntimeQuantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// runtimeSamples names the runtime/metrics series ReadRuntime consumes.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/heap/unused:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// ReadRuntime reads the current runtime state. The read is a handful of
// atomic loads inside the runtime — cheap enough for a per-second
// sampling loop.
func ReadRuntime() RuntimeSnapshot {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	var rs RuntimeSnapshot
	u := func(i int) int64 {
		if samples[i].Value.Kind() != metrics.KindUint64 {
			return 0
		}
		return int64(samples[i].Value.Uint64())
	}
	rs.Goroutines = u(0)
	rs.HeapInuseBytes = u(1) + u(2)
	rs.TotalBytes = u(3)
	rs.GCCycles = u(4)
	rs.GCPauseMs = histQuantilesMs(samples[5])
	rs.SchedLatencyMs = histQuantilesMs(samples[6])
	return rs
}

// histQuantilesMs computes p50/p90/p99 in milliseconds from one
// runtime/metrics float64-histogram sample (bucket unit: seconds). A
// missing or empty histogram yields zeros.
func histQuantilesMs(s metrics.Sample) RuntimeQuantiles {
	var q RuntimeQuantiles
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return q
	}
	h := s.Value.Float64Histogram()
	if h == nil {
		return q
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return q
	}
	q.P50 = runtimeHistQuantile(h, total, 0.50)
	q.P90 = runtimeHistQuantile(h, total, 0.90)
	q.P99 = runtimeHistQuantile(h, total, 0.99)
	return q
}

// runtimeHistQuantile finds the q-quantile by nearest rank, returning
// the bucket's midpoint in milliseconds. Buckets with infinite edges
// fall back to their finite edge.
func runtimeHistQuantile(h *metrics.Float64Histogram, total uint64, q float64) float64 {
	rank := uint64(q*float64(total-1)) + 1
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum < rank {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			return 0
		case math.IsInf(lo, -1):
			return hi * 1e3
		case math.IsInf(hi, 1):
			return lo * 1e3
		default:
			return (lo + hi) / 2 * 1e3
		}
	}
	return 0
}

// EnableRuntime makes every subsequent Snapshot of this registry carry
// a RuntimeSnapshot (and therefore the Prometheus export carry
// msrnet_runtime_* series). Off by default so library registries — and
// the determinism-sensitive bench snapshots — stay purely
// deterministic, app-level state.
func (r *Registry) EnableRuntime() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.runtimeOn = true
	r.mu.Unlock()
}
