package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile into path and returns the stop
// function. With an empty path it is a no-op and the returned stop does
// nothing, so callers can defer unconditionally.
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: starting CPU profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteMemProfile writes a heap profile to path (after a GC, so the
// numbers reflect live memory). Empty path is a no-op.
func WriteMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// WriteMetricsFile dumps the registry snapshot as indented JSON to path.
// Empty path is a no-op; a nil registry writes an empty snapshot.
func (r *Registry) WriteMetricsFile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return r.Snapshot().WriteJSON(f)
}
