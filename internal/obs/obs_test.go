package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCountersAndHistograms hammers one counter, one gauge and
// one histogram from many goroutines; run with -race this doubles as the
// data-race check for the atomic paths.
func TestConcurrentCountersAndHistograms(t *testing.T) {
	reg := New()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("c")
			g := reg.Gauge("g")
			h := reg.Histogram("h", nil)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.SetMax(int64(w*perWorker + i))
				h.Observe(float64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("g").Value(); got != workers*perWorker-1 {
		t.Errorf("gauge max = %d, want %d", got, workers*perWorker-1)
	}
	h := reg.Histogram("h", nil)
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	if h.Max() != 99 {
		t.Errorf("histogram max = %g, want 99", h.Max())
	}
	wantSum := float64(workers) * perWorker / 100 * (99 * 100 / 2)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := New()
	h := reg.Histogram("sizes", []float64{1, 4, 16})
	for _, v := range []float64{0.5, 1, 2, 4, 5, 16, 17, 1000} {
		h.Observe(v)
	}
	snap := reg.Snapshot()
	hs := snap.Histograms["sizes"]
	want := []int64{2, 2, 2, 2} // ≤1, ≤4, ≤16, overflow
	if !reflect.DeepEqual(hs.Counts, want) {
		t.Errorf("bucket counts = %v, want %v", hs.Counts, want)
	}
	if hs.Count != 8 {
		t.Errorf("count = %d", hs.Count)
	}
	if hs.Max == nil || *hs.Max != 1000 {
		t.Errorf("max = %v, want 1000", hs.Max)
	}
}

// TestSpanTreeNesting checks that '/'-separated paths build the expected
// tree and that repeated spans accumulate.
func TestSpanTreeNesting(t *testing.T) {
	reg := New()
	outer := reg.StartSpan("msri")
	for i := 0; i < 3; i++ {
		inner := reg.StartSpan("msri/solve")
		time.Sleep(time.Millisecond)
		inner.End()
	}
	reg.StartSpan("msri/report").End()
	outer.End()

	snap := reg.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "msri" {
		t.Fatalf("root spans = %+v", snap.Spans)
	}
	root := snap.Spans[0]
	if root.Count != 1 {
		t.Errorf("msri count = %d", root.Count)
	}
	if len(root.Children) != 2 {
		t.Fatalf("children = %+v", root.Children)
	}
	// Insertion order is preserved: solve ended first.
	if root.Children[0].Name != "solve" || root.Children[0].Count != 3 {
		t.Errorf("solve child = %+v", root.Children[0])
	}
	if root.Children[1].Name != "report" || root.Children[1].Count != 1 {
		t.Errorf("report child = %+v", root.Children[1])
	}
	if root.Children[0].Seconds < 0.003 {
		t.Errorf("solve accumulated %.6fs, want ≥ 3ms", root.Children[0].Seconds)
	}
	if got := reg.SpanSeconds("msri/solve"); got != root.Children[0].Seconds {
		t.Errorf("SpanSeconds = %g, want %g", got, root.Children[0].Seconds)
	}
	if got := reg.SpanSeconds("no/such/span"); got != 0 {
		t.Errorf("missing span seconds = %g", got)
	}
}

// TestSnapshotJSONRoundTrip serializes a populated snapshot and decodes
// it back; the decoded struct must match field for field.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := New()
	reg.Counter("core/prune/divide/calls").Add(7)
	reg.Gauge("core/max_set_size").SetMax(42)
	h := reg.Histogram("core/pwl_segments", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	reg.StartSpan("a/b").End()
	reg.StartSpan("a").End()

	snap := reg.Snapshot()
	if snap.Schema != MetricsSchema {
		t.Fatalf("schema = %q", snap.Schema)
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("round trip mismatch:\n  out %+v\n  in  %+v", snap, back)
	}
}

func TestTextReport(t *testing.T) {
	reg := New()
	reg.Counter("ard/runs").Inc()
	reg.Histogram("core/set_size/post_prune", nil).Observe(5)
	reg.StartSpan("msri/solve").End()
	text := reg.Snapshot().Text()
	for _, want := range []string{"phase spans:", "msri", "solve", "ard/runs", "core/set_size/post_prune"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
}

// TestNilSafety: the nil recorder and every nil handle must be inert.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Add(3)
	reg.Gauge("x").SetMax(3)
	reg.Histogram("x", nil).Observe(3)
	reg.StartSpan("x").End()
	Start(nil, "x").End()
	Start(Nop(), "x").End()
	if got := reg.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	if got := reg.SpanSeconds("x"); got != 0 {
		t.Errorf("nil span seconds = %g", got)
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Errorf("nil snapshot non-empty: %+v", snap)
	}
	if err := reg.WriteMetricsFile(""); err != nil {
		t.Errorf("nil WriteMetricsFile: %v", err)
	}
}

// TestConcurrentSpans exercises the span tree under concurrency (for
// -race); counts must add up.
func TestConcurrentSpans(t *testing.T) {
	reg := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := reg.StartSpan("net/sizing")
				sp.End()
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	if len(snap.Spans) != 1 || len(snap.Spans[0].Children) != 1 {
		t.Fatalf("span tree shape: %+v", snap.Spans)
	}
	if got := snap.Spans[0].Children[0].Count; got != 8*200 {
		t.Errorf("span count = %d, want %d", got, 8*200)
	}
}

// TestSnapshotDeterministic: sibling spans render in first-End order
// (not map order), and two snapshots of the same quiescent registry
// serialize to byte-identical JSON — the property the benchreport
// baselines and the Prometheus exposition rely on.
func TestSnapshotDeterministic(t *testing.T) {
	reg := New()
	// Deliberately non-lexicographic recording order.
	for _, path := range []string{"run/zeta", "run/alpha", "run/mid", "run/alpha"} {
		sp := reg.StartSpan(path)
		sp.End()
	}
	reg.Counter("solutions").Add(7)
	reg.Histogram("set_size", []float64{1, 4, 16}).ObserveInt(3)

	snap := reg.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("span roots = %+v", snap.Spans)
	}
	var order []string
	for _, c := range snap.Spans[0].Children {
		order = append(order, c.Name)
	}
	if want := []string{"zeta", "alpha", "mid"}; !reflect.DeepEqual(order, want) {
		t.Errorf("sibling order = %v, want first-End order %v", order, want)
	}

	var a, b bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two snapshots of the same registry differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}
