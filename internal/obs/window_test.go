package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a WindowHist deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestWindow(window, interval time.Duration) (*WindowHist, *fakeClock) {
	w := NewWindowHist(window, interval)
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	w.now = clk.now
	return w, clk
}

// exactQuantile is the reference: nearest-rank over the sorted sample.
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(q*float64(len(sorted)-1)) + 1
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestWindowQuantileAccuracy: on synthetic distributions, every
// reported quantile is within the documented 2^-4 relative error of
// the exact nearest-rank quantile (plus exactness below 32 µs).
func TestWindowQuantileAccuracy(t *testing.T) {
	const relBound = 1.0 / 16 // 2^-windowSubBits

	distributions := map[string]func(r *rand.Rand) float64{
		// Uniform milliseconds across three octave groups.
		"uniform": func(r *rand.Rand) float64 { return 0.05 + 200*r.Float64() },
		// Log-normal-ish: exp of a normal, the classic latency shape.
		"lognormal": func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()*1.2 + 2) },
		// Bimodal: fast cache hits plus slow solves.
		"bimodal": func(r *rand.Rand) float64 {
			if r.Intn(10) < 8 {
				return 0.2 + 0.1*r.Float64()
			}
			return 500 + 300*r.Float64()
		},
	}
	for name, gen := range distributions {
		t.Run(name, func(t *testing.T) {
			w, _ := newTestWindow(time.Minute, 5*time.Second)
			r := rand.New(rand.NewSource(7))
			samples := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				v := gen(r)
				samples = append(samples, v)
				w.Observe(v)
			}
			sort.Float64s(samples)
			st := w.Stats()
			if st.Count != int64(len(samples)) {
				t.Fatalf("count = %d, want %d", st.Count, len(samples))
			}
			wantSum := 0.0
			for _, v := range samples {
				wantSum += v
			}
			if math.Abs(st.Sum-wantSum) > 1e-6*wantSum {
				t.Errorf("sum = %g, want %g", st.Sum, wantSum)
			}
			for _, tc := range []struct {
				q    float64
				got  float64
				name string
			}{{0.50, st.P50, "p50"}, {0.90, st.P90, "p90"}, {0.99, st.P99, "p99"}} {
				want := exactQuantile(samples, tc.q)
				rel := math.Abs(tc.got-want) / want
				if rel > relBound {
					t.Errorf("%s = %g, exact %g: relative error %.4f > %.4f", tc.name, tc.got, want, rel, relBound)
				}
			}
		})
	}
}

// TestWindowExactSmallValues: below 2^(subBits+1) µs the buckets are
// one µs wide, so quantiles of identical samples are exact.
func TestWindowExactSmallValues(t *testing.T) {
	w, _ := newTestWindow(time.Minute, 5*time.Second)
	for i := 0; i < 100; i++ {
		w.Observe(0.017) // 17 µs
	}
	st := w.Stats()
	if st.P50 != 0.017 || st.P99 != 0.017 {
		t.Fatalf("small-value quantiles p50=%g p99=%g, want exactly 0.017", st.P50, st.P99)
	}
}

// TestWindowRotation: observations expire as the window slides —
// wholesale, one interval at a time — and slots are reused cleanly
// after a long idle gap.
func TestWindowRotation(t *testing.T) {
	w, clk := newTestWindow(30*time.Second, 10*time.Second) // 3 intervals
	w.Observe(1)
	w.Observe(1)
	clk.advance(10 * time.Second)
	w.Observe(100)
	if st := w.Stats(); st.Count != 3 {
		t.Fatalf("after 1 rotation: count = %d, want 3", st.Count)
	}

	// Advance so the first interval leaves the window: only the 100ms
	// observation remains, and the quantiles reflect that.
	clk.advance(20 * time.Second)
	st := w.Stats()
	if st.Count != 1 {
		t.Fatalf("after expiry: count = %d, want 1", st.Count)
	}
	if st.P50 < 90 || st.P50 > 110 {
		t.Fatalf("after expiry: p50 = %g, want ≈100", st.P50)
	}

	// A gap far longer than the window empties it completely.
	clk.advance(5 * time.Minute)
	if st := w.Stats(); st.Count != 0 || st.P50 != 0 {
		t.Fatalf("after long gap: %+v, want empty", st)
	}

	// Reuse after the gap: the stale slot resets rather than merging
	// ancient counts.
	w.Observe(5)
	if st := w.Stats(); st.Count != 1 {
		t.Fatalf("after reuse: count = %d, want 1", st.Count)
	}
}

// TestWindowConcurrentWriters: many goroutines observing while a
// reader polls quantiles and the clock advances across rotations. Run
// under -race; totals must balance at quiescence.
func TestWindowConcurrentWriters(t *testing.T) {
	w, clk := newTestWindow(time.Minute, 10*time.Second)
	const writers, perWriter = 8, 5000

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				w.Stats()
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perWriter; i++ {
				w.Observe(r.Float64() * 50)
				if i%1000 == 0 && g == 0 {
					clk.advance(time.Second) // a few rotations mid-flight
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	// The clock advanced ~5s total — well inside the window — so no
	// interval expired and every observation must still be visible.
	if st := w.Stats(); st.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", st.Count, writers*perWriter)
	}
}

// TestRegistryWindow: creation-on-first-use, shape fixed at creation,
// nil-safety, and the snapshot/Prometheus surfaces.
func TestRegistryWindow(t *testing.T) {
	var nilReg *Registry
	if w := nilReg.Window("x", 0, 0); w != nil {
		t.Fatal("nil registry returned a live window")
	}
	var nilW *WindowHist
	nilW.Observe(1) // must not panic
	if st := nilW.Stats(); st.Count != 0 {
		t.Fatal("nil window counted")
	}

	reg := New()
	w := reg.Window("svc/latency/e2e/ok", time.Minute, 5*time.Second)
	if reg.Window("svc/latency/e2e/ok", time.Hour, time.Minute) != w {
		t.Fatal("second Window call built a new histogram")
	}
	w.Observe(3)
	snap := reg.Snapshot()
	q, ok := snap.Quantiles["svc/latency/e2e/ok"]
	if !ok {
		t.Fatalf("snapshot missing quantiles: %+v", snap.Quantiles)
	}
	if q.Count != 1 || q.WindowSeconds != 60 || q.P50 <= 0 {
		t.Fatalf("quantile snapshot = %+v", q)
	}
}

// TestWindowExemplar: ObserveEx keeps the worst traced observation per
// interval, Stats surfaces the window-wide worst, and an exemplar
// expires when its interval slides out of the window.
func TestWindowExemplar(t *testing.T) {
	w, clk := newTestWindow(30*time.Second, 10*time.Second)

	w.ObserveEx(5, "trace-a")
	w.Observe(50) // untraced: never an exemplar
	w.ObserveEx(12, "trace-b")
	st := w.Stats()
	if st.ExemplarTrace != "trace-b" || st.ExemplarMs != 12 {
		t.Fatalf("exemplar = %q/%v, want trace-b/12", st.ExemplarTrace, st.ExemplarMs)
	}

	// A later interval with a smaller traced value: window-wide worst
	// still wins.
	clk.advance(10 * time.Second)
	w.ObserveEx(3, "trace-c")
	if st := w.Stats(); st.ExemplarTrace != "trace-b" {
		t.Fatalf("exemplar = %q, want trace-b still live", st.ExemplarTrace)
	}

	// Slide trace-b's interval out: trace-c remains.
	clk.advance(25 * time.Second)
	if st := w.Stats(); st.ExemplarTrace != "trace-c" || st.ExemplarMs != 3 {
		t.Fatalf("after expiry exemplar = %q/%v, want trace-c/3", st.ExemplarTrace, st.ExemplarMs)
	}

	// Everything out: no exemplar, and the zero value is omitted from
	// snapshots.
	clk.advance(time.Hour)
	if st := w.Stats(); st.ExemplarTrace != "" || st.ExemplarMs != 0 {
		t.Fatalf("expired window exemplar = %q/%v, want empty", st.ExemplarTrace, st.ExemplarMs)
	}
}

// TestWindowExemplarNil: nil windows and untraced observations are
// inert.
func TestWindowExemplarNil(t *testing.T) {
	var w *WindowHist
	w.ObserveEx(5, "trace-a") // must not panic
	if st := w.Stats(); st.ExemplarTrace != "" {
		t.Fatalf("nil window exemplar = %q", st.ExemplarTrace)
	}
}
