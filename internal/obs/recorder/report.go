package recorder

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"msrnet/internal/bench"
)

// WriteReport renders a loaded bundle as the human-readable incident
// report cmd/msrnetdebug prints: the trigger, a timeline of the
// recorder ring around it, the latency movers, the jobs that were
// in flight, and — when a bench baseline is supplied — the DP-shape
// deltas against the committed perf observatory numbers.
func WriteReport(w io.Writer, b *Bundle, baseline *bench.Report) error {
	pw := &printWriter{w: w}
	writeHeader(pw, b)
	writeTimeline(pw, b)
	writeLatencyMovers(pw, b)
	writeJobs(pw, b)
	writeDPShape(pw, b, baseline)
	writeArtifacts(pw, b)
	return pw.err
}

// printWriter accumulates the first write error so the sections can
// print without per-line error plumbing.
type printWriter struct {
	w   io.Writer
	err error
}

func (p *printWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func writeHeader(p *printWriter, b *Bundle) {
	tr := b.Manifest.Trigger
	p.printf("== msrnet postmortem (%s) ==\n", b.Manifest.Schema)
	p.printf("bundle:  %s\n", b.Dir)
	p.printf("trigger: %s", tr.Reason)
	if tr.Detail != "" {
		p.printf(" (%s)", tr.Detail)
	}
	p.printf("  at %s\n", time.UnixMilli(tr.TimeUnixMs).UTC().Format(time.RFC3339))
	for _, rs := range b.Manifest.Rules {
		if rs.Firing || rs.Breaching {
			state := "breaching"
			if rs.Firing {
				state = "FIRING"
			}
			p.printf("rule:    %s %s (value %.3g, threshold %g)\n", rs.Rule.Name, state, rs.Value, rs.Rule.Threshold)
		}
	}
	p.printf("\n")
}

// timelineRows bounds the timeline section; the full ring stays in
// recorder.json for deeper digging.
const timelineRows = 12

func writeTimeline(p *printWriter, b *Bundle) {
	if len(b.Ring) == 0 {
		p.printf("-- timeline: recorder ring is empty --\n\n")
		return
	}
	ring := b.Ring
	if len(ring) > timelineRows {
		ring = ring[len(ring)-timelineRows:]
	}
	t0 := b.Manifest.Trigger.TimeUnixMs
	p.printf("-- timeline (last %d of %d samples, t=0 is the trigger) --\n", len(ring), len(b.Ring))
	p.printf("%9s %6s %9s %6s %5s %9s %9s %9s  %s\n",
		"t", "goros", "heap", "queue", "jobs", "failed", "p99-e2e", "shed", "firing")
	for _, s := range ring {
		c := s.Metrics.Counters
		q := s.Metrics.Quantiles["svc/latency/e2e/ok"]
		p.printf("%8.1fs %6d %8.1fM %6d %5d %9d %8.2fms %9d  %s\n",
			float64(s.TimeUnixMs-t0)/1e3,
			s.Runtime.Goroutines,
			float64(s.Runtime.HeapInuseBytes)/(1<<20),
			s.Metrics.Gauges["svc/queue_depth"],
			c["svc/jobs_completed"],
			c["svc/jobs_failed"],
			q.P99,
			c["svc/jobs_shed"],
			strings.Join(s.Firing, ","))
	}
	p.printf("\n")
}

// writeLatencyMovers diffs every window-quantile series between the
// oldest and newest ring sample and prints the biggest p99 movements —
// the "what got slow" answer.
func writeLatencyMovers(p *printWriter, b *Bundle) {
	if len(b.Ring) < 2 {
		return
	}
	first, last := b.Ring[0], b.Ring[len(b.Ring)-1]
	type mover struct {
		name     string
		from, to float64
		delta    float64
	}
	var movers []mover
	for name, q := range last.Metrics.Quantiles {
		f := first.Metrics.Quantiles[name]
		if q.Count == 0 && f.Count == 0 {
			continue
		}
		movers = append(movers, mover{name: name, from: f.P99, to: q.P99, delta: q.P99 - f.P99})
	}
	if len(movers) == 0 {
		return
	}
	sort.Slice(movers, func(i, j int) bool {
		if movers[i].delta != movers[j].delta {
			return movers[i].delta > movers[j].delta
		}
		return movers[i].name < movers[j].name
	})
	span := float64(last.TimeUnixMs-first.TimeUnixMs) / 1e3
	p.printf("-- top p99 movers over the ring (%.1fs) --\n", span)
	n := len(movers)
	if n > 5 {
		n = 5
	}
	for _, m := range movers[:n] {
		p.printf("  %-40s %8.2fms -> %8.2fms  (%+.2fms)\n", m.name, m.from, m.to, m.delta)
	}
	p.printf("\n")
}

func writeJobs(p *printWriter, b *Bundle) {
	if len(b.Jobs.Active) == 0 && len(b.Jobs.Recent) == 0 {
		return
	}
	if len(b.Jobs.Active) > 0 {
		p.printf("-- in-flight jobs at capture --\n")
		for _, j := range b.Jobs.Active {
			p.printf("  %-8s %-12s state=%-8s mode=%-5s trace=%s\n", j.JobID, j.Label, j.State, j.Mode, j.TraceID)
		}
		p.printf("\n")
	}
	if len(b.Jobs.Recent) > 0 {
		byOutcome := map[string]int{}
		var bad []JobReport
		for _, j := range b.Jobs.Recent {
			byOutcome[j.Outcome]++
			if j.Outcome != "" && j.Outcome != "ok" {
				bad = append(bad, j)
			}
		}
		var classes []string
		for c := range byOutcome {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		p.printf("-- recent jobs (%d in the done-ring) --\n", len(b.Jobs.Recent))
		for _, c := range classes {
			p.printf("  %-10s %d\n", c+":", byOutcome[c])
		}
		if len(bad) > 0 {
			if len(bad) > 8 {
				bad = bad[:8]
			}
			p.printf("  most recent non-ok:\n")
			for _, j := range bad {
				p.printf("    %-8s %-12s outcome=%-9s code=%-18s total=%.2fms trace=%s\n",
					j.JobID, j.Label, j.Outcome, j.Code, j.TotalMs, j.TraceID)
			}
		}
		slowest := append([]JobReport(nil), b.Jobs.Recent...)
		sort.Slice(slowest, func(i, j int) bool { return slowest[i].TotalMs > slowest[j].TotalMs })
		if len(slowest) > 5 {
			slowest = slowest[:5]
		}
		p.printf("  slowest:\n")
		for _, j := range slowest {
			p.printf("    %-8s %-12s total=%9.2fms queue=%8.2fms solve=%8.2fms\n",
				j.JobID, j.Label, j.TotalMs, j.QueueWaitMs, j.SolveMs)
		}
		p.printf("\n")
	}
}

// writeDPShape aggregates the DP shape of the bundle's solved jobs and,
// when a bench baseline is given, compares the per-job means against
// the baseline's msri workloads — a crashed daemon whose jobs created
// 10× the baseline's candidates per net tells a very different story
// from one whose DP shape was nominal.
func writeDPShape(p *printWriter, b *Bundle, baseline *bench.Report) {
	var n, solutions, dropped, pruneCalls, maxSet int64
	for _, j := range b.Jobs.Recent {
		if j.Solve == nil {
			continue
		}
		n++
		solutions += int64(j.Solve.SolutionsCreated)
		dropped += int64(j.Solve.Dropped)
		pruneCalls += int64(j.Solve.PruneCalls)
		if int64(j.Solve.MaxSetSize) > maxSet {
			maxSet = int64(j.Solve.MaxSetSize)
		}
	}
	if n == 0 {
		return
	}
	p.printf("-- DP shape (over %d solved jobs in the done-ring) --\n", n)
	p.printf("  %-28s %10.1f\n", "mean solutions created/job", float64(solutions)/float64(n))
	p.printf("  %-28s %10.1f\n", "mean dropped/job", float64(dropped)/float64(n))
	p.printf("  %-28s %10.1f\n", "mean prune calls/job", float64(pruneCalls)/float64(n))
	p.printf("  %-28s %10d\n", "max set size", maxSet)
	if baseline != nil {
		var bn, bsol, bdrop int64
		for _, wl := range baseline.Workloads {
			if !strings.HasPrefix(wl.Name, "msri/") {
				continue
			}
			bn++
			bsol += wl.Counters["solutions_created"]
			bdrop += wl.Counters["dropped"]
		}
		if bn > 0 && bsol > 0 {
			obsMean := float64(solutions) / float64(n)
			baseMean := float64(bsol) / float64(bn)
			p.printf("  vs baseline (%s, %d msri workloads):\n", baseline.Suite, bn)
			p.printf("    %-26s %10.1f  (observed/baseline %.2fx)\n", "baseline solutions/net", baseMean, obsMean/baseMean)
			if bdrop > 0 {
				p.printf("    %-26s %10.1f  (observed/baseline %.2fx)\n", "baseline dropped/net",
					float64(bdrop)/float64(bn), (float64(dropped)/float64(n))/(float64(bdrop)/float64(bn)))
			}
		}
	}
	p.printf("\n")
}

func writeArtifacts(p *printWriter, b *Bundle) {
	p.printf("-- artifacts --\n")
	p.printf("  recorder ring: %d samples at %dms\n", len(b.Ring), b.RingIntervalMs)
	if b.GoroutineCount > 0 {
		p.printf("  goroutine dump: %d goroutines (%s)\n", b.GoroutineCount, fileGoroutines)
	}
	if b.HasHeap {
		p.printf("  heap profile: %s (go tool pprof %s/%s)\n", fileHeap, b.Dir, fileHeap)
	}
	if b.HasTrace {
		p.printf("  DP timeline: %s (load in Perfetto)\n", fileTrace)
	}
}
