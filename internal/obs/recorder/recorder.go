// Package recorder is the incident-grade layer of the observability
// substrate: an always-on flight recorder that continuously samples the
// full observability surface — metrics snapshots (including the
// sliding-window SLO quantiles and the DP-shape core/* aggregates),
// queue depth, and Go runtime state — into a bounded in-memory ring, an
// SLO burn-rate evaluator over configurable multi-window rules, and a
// postmortem bundle writer that, on trigger (worker panic, SLO burn,
// SIGQUIT, POST /debug/dump), captures a self-contained
// msrnet-postmortem/v1 directory: the recorder ring, the final metrics
// snapshot, the ring tracer's timeline, goroutine and heap dumps, the
// in-flight and recent per-job explain reports, and the daemon's
// config/build info.
//
// A production daemon cannot rely on a human being attached when it
// degrades: the ring means the minutes BEFORE the trigger are always
// available, and the bundle means an incident leaves a corpse that
// cmd/msrnetdebug can autopsy offline. A nil *FlightRecorder is inert
// (every method no-ops), so the serving layer wires its trigger points
// unconditionally. See DESIGN.md §11.
package recorder

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"msrnet/internal/obs"
	"msrnet/internal/obs/trace"
)

// Defaults for Config zero values.
const (
	DefaultInterval   = time.Second
	DefaultCapacity   = 512 // ~8.5 minutes of history at the default interval
	DefaultMaxBundles = 8
	DefaultCooldown   = time.Minute
)

// Trigger reasons. Panic and SLO-burn triggers are automatic and
// debounced by the cooldown; manual and SIGQUIT triggers always write.
const (
	ReasonPanic   = "worker_panic"
	ReasonSLOBurn = "slo_burn"
	ReasonManual  = "manual"
	ReasonSIGQUIT = "sigquit"
)

// Config assembles a FlightRecorder.
type Config struct {
	// Reg is the sampled registry (required): its snapshot carries the
	// svc/* serving metrics, the window quantiles and the core/* DP
	// aggregates. EnableRuntime state is irrelevant — the recorder reads
	// the runtime directly into each sample.
	Reg *obs.Registry
	// Tracer, when non-nil, is dumped (Chrome trace JSON) into bundles.
	Tracer *trace.Tracer
	// Interval is the sampling period (DefaultInterval when <= 0).
	Interval time.Duration
	// Capacity bounds the ring (DefaultCapacity when <= 0).
	Capacity int
	// Rules are the SLO burn-rate rules evaluated every tick; a rising
	// edge (not-firing -> firing) triggers a bundle.
	Rules []Rule
	// Dir is where bundles are written. Empty disables bundle writing —
	// the ring and rules still run and stay inspectable live.
	Dir string
	// MaxBundles bounds retention in Dir: after each write the oldest
	// bundles beyond this count are deleted (DefaultMaxBundles when <= 0).
	MaxBundles int
	// Cooldown is the minimum spacing between automatic bundles (panic,
	// SLO burn), so a crash-looping worker or a flapping rule cannot
	// churn the disk (DefaultCooldown when <= 0). Manual and SIGQUIT
	// triggers ignore it.
	Cooldown time.Duration
	// Info is embedded verbatim in bundle manifests — the daemon's
	// config and build identification.
	Info any
	// Logger receives trigger/write logs; slog.Default when nil.
	Logger *slog.Logger
}

// Sample is one tick of the flight recorder's ring.
type Sample struct {
	TimeUnixMs int64 `json:"time_unix_ms"`
	// Metrics is the full registry snapshot at the tick: counters,
	// gauges (queue depth among them), histograms, window quantiles and
	// span tree.
	Metrics obs.Snapshot `json:"metrics"`
	// Runtime is the Go runtime's state at the tick.
	Runtime obs.RuntimeSnapshot `json:"runtime"`
	// Firing lists the SLO rules firing at this tick.
	Firing []string `json:"firing,omitempty"`
}

// FlightRecorder owns the sampling loop, the ring, the rule evaluator
// and the bundle writer. All methods are safe for concurrent use and
// nil-safe.
type FlightRecorder struct {
	cfg Config
	log *slog.Logger

	mu      sync.Mutex
	ring    []Sample // grows to capacity, then circular with next as the oldest slot
	next    int
	evals   []*ruleEval
	jobs    func() any
	cluster func() any
	tenants func() any
	spans   func() any
	seq     int64
	lastAut time.Time // last automatic bundle write, for the cooldown
	ticks   int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// writeMu serializes bundle writes so a panic storm and a SIGQUIT
	// cannot interleave inside one directory.
	writeMu sync.Mutex

	samples  *obs.Counter
	triggers *obs.Counter
	bundles  *obs.Counter
}

// New builds a recorder (not yet sampling; call Start).
func New(cfg Config) *FlightRecorder {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = DefaultMaxBundles
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	f := &FlightRecorder{
		cfg:      cfg,
		log:      cfg.Logger,
		ring:     make([]Sample, 0, cfg.Capacity),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		samples:  cfg.Reg.Counter("recorder/samples"),
		triggers: cfg.Reg.Counter("recorder/triggers"),
		bundles:  cfg.Reg.Counter("recorder/bundles_written"),
	}
	for _, r := range cfg.Rules {
		f.evals = append(f.evals, &ruleEval{rule: r})
	}
	return f
}

// SetJobs installs the per-job report source: a function returning a
// JSON-serializable view of the in-flight and recent jobs (the serving
// layer wires its explain table here). Safe to call before or after
// Start; nil clears it.
func (f *FlightRecorder) SetJobs(fn func() any) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.jobs = fn
	f.mu.Unlock()
}

// SetCluster installs the fleet-membership source: a function returning
// a JSON-serializable peer view (msrnet-cluster/v1), written into
// bundles as cluster.json so an incident report can say what the fleet
// looked like at capture. Safe to call before or after Start; nil
// clears it.
func (f *FlightRecorder) SetCluster(fn func() any) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.cluster = fn
	f.mu.Unlock()
}

// SetTenants installs the tenancy source: a function returning a
// JSON-serializable view of the daemon's tenants (msrnet-tenants/v1
// runtime state — quota fill, fair-share position, per-tenant
// counters), written into bundles as tenants.json so an incident
// report can say who was being throttled or starved at capture. Safe
// to call before or after Start; nil clears it.
func (f *FlightRecorder) SetTenants(fn func() any) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.tenants = fn
	f.mu.Unlock()
}

// SetSpans installs the distributed-tracing source: a function
// returning the process's span-index dump (msrnet-spans/v1), written
// into bundles as spans.json so the traces of a crashed daemon survive
// into the postmortem — msrnetdebug -trace reads them back. Safe to
// call before or after Start; nil clears it.
func (f *FlightRecorder) SetSpans(fn func() any) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.spans = fn
	f.mu.Unlock()
}

// Start launches the sampling loop. Stop ends it; Start after Stop is
// not supported.
func (f *FlightRecorder) Start() {
	if f == nil {
		return
	}
	go func() {
		defer close(f.done)
		t := time.NewTicker(f.cfg.Interval)
		defer t.Stop()
		f.tick(time.Now()) // an immediate first sample, so the ring is never empty
		for {
			select {
			case now := <-t.C:
				f.tick(now)
			case <-f.stop:
				return
			}
		}
	}()
}

// Stop ends the sampling loop and waits for it to exit. The ring stays
// readable and Trigger keeps working — a drain sequence can still dump.
func (f *FlightRecorder) Stop() {
	if f == nil {
		return
	}
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
}

// tick takes one sample, evaluates the rules and fires on rising edges.
func (f *FlightRecorder) tick(now time.Time) {
	s := Sample{
		TimeUnixMs: now.UnixMilli(),
		Metrics:    f.cfg.Reg.Snapshot(),
		Runtime:    obs.ReadRuntime(),
	}
	f.mu.Lock()
	f.push(s) // pushed before evaluation so rules see the newest sample
	var rises []Rule
	ring := f.ringLocked()
	for _, e := range f.evals {
		if e.evaluate(now, ring) {
			rises = append(rises, e.rule)
		}
		if e.state.Firing {
			s.Firing = append(s.Firing, e.rule.Name)
		}
	}
	// Re-stamp the stored sample with the firing set computed above.
	if len(f.ring) > 0 {
		f.ring[f.lastIdxLocked()].Firing = s.Firing
	}
	f.ticks++
	f.mu.Unlock()
	f.samples.Inc()
	for _, r := range rises {
		f.log.Warn("SLO burn-rate rule firing", "rule", r.Name, "spec", r.String())
		if _, err := f.triggerLocked(ReasonSLOBurn, r.String(), false); err != nil && err != errCooldown && err != errNoDir {
			f.log.Error("postmortem bundle write failed", "reason", ReasonSLOBurn, "err", err)
		}
	}
}

// push appends to the circular ring. Callers hold f.mu.
func (f *FlightRecorder) push(s Sample) {
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, s)
		return
	}
	f.ring[f.next] = s
	f.next++
	if f.next == cap(f.ring) {
		f.next = 0
	}
}

// lastIdxLocked returns the index of the newest sample.
func (f *FlightRecorder) lastIdxLocked() int {
	if len(f.ring) < cap(f.ring) {
		return len(f.ring) - 1
	}
	return (f.next - 1 + cap(f.ring)) % cap(f.ring)
}

// ringLocked returns the samples oldest-first. Callers hold f.mu; the
// returned slice is freshly allocated.
func (f *FlightRecorder) ringLocked() []Sample {
	if len(f.ring) < cap(f.ring) {
		return append([]Sample(nil), f.ring...)
	}
	out := make([]Sample, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out
}

// Samples returns the ring oldest-first (the last n samples when n > 0).
func (f *FlightRecorder) Samples(n int) []Sample {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	ring := f.ringLocked()
	f.mu.Unlock()
	if n > 0 && len(ring) > n {
		ring = ring[len(ring)-n:]
	}
	return ring
}

// RuleStates returns the last-tick evaluation state of every rule.
func (f *FlightRecorder) RuleStates() []RuleState {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]RuleState, 0, len(f.evals))
	for _, e := range f.evals {
		out = append(out, e.state)
	}
	return out
}

// State is the live view served at GET /debug/recorder.
type State struct {
	Schema string `json:"schema"`
	// IntervalMs and Capacity describe the ring's shape; Ticks counts
	// samples ever taken (ticks - len(samples) have been overwritten).
	IntervalMs int64       `json:"interval_ms"`
	Capacity   int         `json:"capacity"`
	Ticks      int64       `json:"ticks"`
	Rules      []RuleState `json:"rules,omitempty"`
	Samples    []Sample    `json:"samples"`
}

// State snapshots the recorder for live inspection: the last n samples
// (all when n <= 0) plus rule states.
func (f *FlightRecorder) State(n int) State {
	if f == nil {
		return State{Schema: BundleSchema}
	}
	f.mu.Lock()
	ticks := f.ticks
	f.mu.Unlock()
	return State{
		Schema:     BundleSchema,
		IntervalMs: f.cfg.Interval.Milliseconds(),
		Capacity:   f.cfg.Capacity,
		Ticks:      ticks,
		Rules:      f.RuleStates(),
		Samples:    f.Samples(n),
	}
}

// Sentinel errors distinguishing "did not write" cases a caller may
// want to tolerate.
var (
	errNoDir    = fmt.Errorf("recorder: no postmortem directory configured")
	errCooldown = fmt.Errorf("recorder: automatic trigger inside the cooldown window")
)

// Trigger writes a postmortem bundle now, unconditionally (manual dump
// endpoint, SIGQUIT). It returns the bundle directory path.
func (f *FlightRecorder) Trigger(reason, detail string) (string, error) {
	if f == nil {
		return "", fmt.Errorf("recorder: not configured")
	}
	return f.triggerLocked(reason, detail, true)
}

// TriggerAuto writes a bundle for an automatic trigger (worker panic),
// debounced by the cooldown: inside the window it is a cheap no-op
// returning an empty path.
func (f *FlightRecorder) TriggerAuto(reason, detail string) (string, error) {
	if f == nil {
		return "", nil
	}
	dir, err := f.triggerLocked(reason, detail, false)
	if err == errCooldown || err == errNoDir {
		return "", nil
	}
	return dir, err
}

func (f *FlightRecorder) triggerLocked(reason, detail string, force bool) (string, error) {
	f.triggers.Inc()
	if f.cfg.Dir == "" {
		return "", errNoDir
	}
	now := time.Now()
	f.mu.Lock()
	if !force && now.Sub(f.lastAut) < f.cfg.Cooldown && !f.lastAut.IsZero() {
		f.mu.Unlock()
		return "", errCooldown
	}
	if !force {
		f.lastAut = now
	}
	f.seq++
	seq := f.seq
	f.mu.Unlock()

	f.writeMu.Lock()
	defer f.writeMu.Unlock()
	dir, err := f.writeBundle(now, seq, reason, detail)
	if err != nil {
		return "", err
	}
	f.bundles.Inc()
	f.log.Warn("postmortem bundle written", "reason", reason, "detail", detail, "dir", dir)
	if err := f.enforceRetention(); err != nil {
		f.log.Error("postmortem retention sweep failed", "err", err)
	}
	return dir, nil
}
