package recorder

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"msrnet/internal/buildinfo"
	"msrnet/internal/obs"
	"msrnet/internal/obs/spans"
)

// BundleSchema identifies the postmortem bundle layout for downstream
// tooling (cmd/msrnetdebug), the same way msrnet-metrics/v1 and
// msrnet-explain/v1 version their formats.
const BundleSchema = "msrnet-postmortem/v1"

// bundlePrefix names bundle directories; the timestamp is fixed-width
// so lexical order is chronological order (retention relies on it).
const bundlePrefix = "postmortem-"

// Bundle file names.
const (
	fileManifest   = "manifest.json"
	fileRecorder   = "recorder.json"
	fileMetrics    = "metrics.json"
	fileTrace      = "trace.json"
	fileGoroutines = "goroutines.txt"
	fileHeap       = "heap.pb.gz"
	fileJobs       = "jobs.json"
	fileCluster    = "cluster.json"
	fileTenants    = "tenants.json"
	fileSpans      = "spans.json"
)

// Manifest is the bundle's index: what triggered the capture, when,
// under which daemon configuration, and which files were written.
type Manifest struct {
	Schema  string      `json:"schema"`
	Trigger TriggerInfo `json:"trigger"`
	// Info is the daemon's config/build identification, verbatim from
	// Config.Info.
	Info any `json:"info,omitempty"`
	// Build is the binary's embedded build identity (msrnet-build/v1):
	// module version, toolchain and VCS stamp — the same body GET
	// /version serves, so a bundle pins exactly which build died.
	Build buildinfo.Info `json:"build"`
	// Rules is the SLO rule state at capture time.
	Rules []RuleState `json:"rules,omitempty"`
	Files []string    `json:"files"`
}

// TriggerInfo describes what fired the capture.
type TriggerInfo struct {
	Reason     string `json:"reason"`
	Detail     string `json:"detail,omitempty"`
	TimeUnixMs int64  `json:"time_unix_ms"`
	Seq        int64  `json:"seq"`
}

// writeBundle captures everything into a fresh directory under cfg.Dir
// and returns its path. Callers hold writeMu.
func (f *FlightRecorder) writeBundle(now time.Time, seq int64, reason, detail string) (string, error) {
	dir := filepath.Join(f.cfg.Dir, fmt.Sprintf("%s%013d-%d-%s", bundlePrefix, now.UnixMilli(), seq, sanitize(reason)))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("recorder: creating bundle dir: %w", err)
	}
	man := Manifest{
		Schema:  BundleSchema,
		Trigger: TriggerInfo{Reason: reason, Detail: detail, TimeUnixMs: now.UnixMilli(), Seq: seq},
		Info:    f.cfg.Info,
		Build:   buildinfo.Get(),
		Rules:   f.RuleStates(),
	}
	keep := func(name string, err error) error {
		if err != nil {
			return fmt.Errorf("recorder: writing %s: %w", name, err)
		}
		man.Files = append(man.Files, name)
		return nil
	}

	ringDump := ringDump{Schema: BundleSchema, IntervalMs: f.cfg.Interval.Milliseconds(), Samples: f.Samples(0)}
	if err := keep(fileRecorder, writeJSONFile(filepath.Join(dir, fileRecorder), ringDump)); err != nil {
		return "", err
	}
	if err := keep(fileMetrics, writeJSONFile(filepath.Join(dir, fileMetrics), f.cfg.Reg.Snapshot())); err != nil {
		return "", err
	}
	if f.cfg.Tracer != nil {
		if err := keep(fileTrace, f.cfg.Tracer.WriteFile(filepath.Join(dir, fileTrace))); err != nil {
			return "", err
		}
	}
	if err := keep(fileGoroutines, writeGoroutines(filepath.Join(dir, fileGoroutines))); err != nil {
		return "", err
	}
	if err := keep(fileHeap, writeHeap(filepath.Join(dir, fileHeap))); err != nil {
		return "", err
	}
	f.mu.Lock()
	jobs, clusterFn, tenantsFn, spansFn := f.jobs, f.cluster, f.tenants, f.spans
	f.mu.Unlock()
	if jobs != nil {
		if err := keep(fileJobs, writeJSONFile(filepath.Join(dir, fileJobs), jobs())); err != nil {
			return "", err
		}
	}
	if clusterFn != nil {
		if err := keep(fileCluster, writeJSONFile(filepath.Join(dir, fileCluster), clusterFn())); err != nil {
			return "", err
		}
	}
	if tenantsFn != nil {
		if err := keep(fileTenants, writeJSONFile(filepath.Join(dir, fileTenants), tenantsFn())); err != nil {
			return "", err
		}
	}
	if spansFn != nil {
		if err := keep(fileSpans, writeJSONFile(filepath.Join(dir, fileSpans), spansFn())); err != nil {
			return "", err
		}
	}
	if err := writeJSONFile(filepath.Join(dir, fileManifest), man); err != nil {
		return "", fmt.Errorf("recorder: writing manifest: %w", err)
	}
	return dir, nil
}

// ringDump is the recorder.json payload.
type ringDump struct {
	Schema     string   `json:"schema"`
	IntervalMs int64    `json:"interval_ms"`
	Samples    []Sample `json:"samples"`
}

// enforceRetention deletes the oldest bundles beyond MaxBundles.
// Bundle names embed a fixed-width millisecond timestamp, so lexical
// order is age order.
func (f *FlightRecorder) enforceRetention() error {
	entries, err := os.ReadDir(f.cfg.Dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), bundlePrefix) {
			names = append(names, e.Name())
		}
	}
	if len(names) <= f.cfg.MaxBundles {
		return nil
	}
	sort.Strings(names)
	var first error
	for _, name := range names[:len(names)-f.cfg.MaxBundles] {
		if err := os.RemoveAll(filepath.Join(f.cfg.Dir, name)); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeGoroutines dumps every goroutine's full stack (pprof debug=2).
func writeGoroutines(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.Lookup("goroutine").WriteTo(f, 2); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeHeap dumps the binary heap profile (pprof-loadable).
func writeHeap(path string) error { return obs.WriteMemProfile(path) }

// Bundle is one loaded postmortem directory.
type Bundle struct {
	Dir      string
	Manifest Manifest
	// Ring holds the flight-recorder samples (oldest first) and their
	// sampling interval.
	RingIntervalMs int64
	Ring           []Sample
	// Metrics is the final registry snapshot at capture.
	Metrics obs.Snapshot
	// Jobs are the per-job explain reports captured in the bundle
	// (zero-valued when the bundle carries none).
	Jobs JobsDump
	// GoroutineCount counts goroutines in the stack dump (0 when the
	// dump is absent).
	GoroutineCount int
	HasTrace       bool
	HasHeap        bool
	// HasCluster reports a cluster.json peer view in the bundle
	// (clustered daemons only).
	HasCluster bool
	// HasTenants reports a tenants.json tenancy view in the bundle
	// (daemons running the multi-tenant serving layer).
	HasTenants bool
	// HasSpans reports a spans.json trace dump in the bundle; Spans is
	// its decoded msrnet-spans/v1 content (zero-valued when absent), so
	// msrnetdebug -trace can render a crashed daemon's traces offline.
	HasSpans bool
	Spans    spans.Dump
}

// JobsDump mirrors the jobs.json payload: the explain-table view the
// serving layer exports (schema msrnet-explain/v1). Fields are a
// decoupled subset — the bundle format, not the service package,
// defines what the debugger needs.
type JobsDump struct {
	Active []JobReport `json:"active"`
	Recent []JobReport `json:"recent"`
}

// JobReport is the subset of one msrnet-explain/v1 report the incident
// report renders.
type JobReport struct {
	JobID       string     `json:"job_id"`
	Label       string     `json:"label"`
	TraceID     string     `json:"trace_id"`
	Mode        string     `json:"mode"`
	State       string     `json:"state"`
	Outcome     string     `json:"outcome"`
	Code        string     `json:"code"`
	Cached      bool       `json:"cached"`
	QueueWaitMs float64    `json:"queue_wait_ms"`
	SolveMs     float64    `json:"solve_ms"`
	TotalMs     float64    `json:"total_ms"`
	Solve       *JobSolve  `json:"solve"`
	Degradation *JobDegrad `json:"degradation"`
}

// JobSolve is the DP shape of one job.
type JobSolve struct {
	NodesVisited     int     `json:"nodes_visited"`
	SolutionsCreated int     `json:"solutions_created"`
	MaxSetSize       int     `json:"max_set_size"`
	MeanSetSize      float64 `json:"mean_set_size"`
	MaxSegs          int     `json:"max_pwl_segments"`
	PruneCalls       int     `json:"prune_calls"`
	Dropped          int     `json:"dropped"`
}

// JobDegrad is a job's degradation note.
type JobDegrad struct {
	Reason     string  `json:"reason"`
	CoarseEps  float64 `json:"coarse_eps"`
	ErrorBound float64 `json:"error_bound_ns"`
}

// LoadBundle reads a bundle directory written by the flight recorder.
// Optional files (trace, jobs) may be absent; the manifest, recorder
// ring and metrics snapshot are required.
func LoadBundle(dir string) (*Bundle, error) {
	b := &Bundle{Dir: dir}
	if err := readJSONFile(filepath.Join(dir, fileManifest), &b.Manifest); err != nil {
		return nil, fmt.Errorf("recorder: loading manifest: %w", err)
	}
	if b.Manifest.Schema != BundleSchema {
		return nil, fmt.Errorf("recorder: %s has schema %q, want %q", dir, b.Manifest.Schema, BundleSchema)
	}
	var ring ringDump
	if err := readJSONFile(filepath.Join(dir, fileRecorder), &ring); err != nil {
		return nil, fmt.Errorf("recorder: loading ring: %w", err)
	}
	b.RingIntervalMs, b.Ring = ring.IntervalMs, ring.Samples
	if err := readJSONFile(filepath.Join(dir, fileMetrics), &b.Metrics); err != nil {
		return nil, fmt.Errorf("recorder: loading metrics: %w", err)
	}
	if err := readJSONFile(filepath.Join(dir, fileJobs), &b.Jobs); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("recorder: loading jobs: %w", err)
	}
	if data, err := os.ReadFile(filepath.Join(dir, fileGoroutines)); err == nil {
		b.GoroutineCount = strings.Count(string(data), "\ngoroutine ")
		if strings.HasPrefix(string(data), "goroutine ") {
			b.GoroutineCount++
		}
	}
	if err := readJSONFile(filepath.Join(dir, fileSpans), &b.Spans); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("recorder: loading spans: %w", err)
	}
	b.HasTrace = fileExists(filepath.Join(dir, fileTrace))
	b.HasHeap = fileExists(filepath.Join(dir, fileHeap))
	b.HasCluster = fileExists(filepath.Join(dir, fileCluster))
	b.HasTenants = fileExists(filepath.Join(dir, fileTenants))
	b.HasSpans = fileExists(filepath.Join(dir, fileSpans))
	return b, nil
}

func readJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
