package recorder

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Rule is one SLO burn-rate condition the recorder evaluates on every
// sampling tick. Rules come in two kinds:
//
//   - Quantile rules (Kind p50/p90/p99) watch one sliding-window latency
//     series (Metric is the "<axis>/<class>" suffix of an
//     svc/latency/... window, e.g. "e2e/ok") and fire when the quantile
//     stays above Threshold (milliseconds) continuously for Window.
//
//   - Error-rate rules (Kind error_rate) fire when the fraction of
//     failed jobs — delta(svc/jobs_failed) over delta(completed+failed)
//     between the recorder samples spanning Window — exceeds Threshold.
//     Pairing a tight threshold over a short window with a looser one
//     over a long window gives the classic fast-burn/slow-burn alert
//     pair.
//
// The textual spec (flag -slo, semicolon-separated) is
//
//	name:kind:metric:threshold:window     (quantile kinds)
//	name:error_rate:threshold:window
//
// e.g. "e2e-slow:p99:e2e/ok:500ms:1m;err-fast:error_rate:0.01:1m".
type Rule struct {
	Name string `json:"name"`
	// Kind is p50, p90, p99 or error_rate.
	Kind string `json:"kind"`
	// Metric is the latency window suffix ("<axis>/<class>") for
	// quantile kinds; empty for error_rate.
	Metric string `json:"metric,omitempty"`
	// Threshold is milliseconds for quantile kinds, a [0,1] failure
	// fraction for error_rate.
	Threshold float64 `json:"threshold"`
	// Window is how long the condition must hold (quantile kinds) or
	// the trailing span the rate is computed over (error_rate).
	Window time.Duration `json:"window"`
}

// String renders the rule back in spec form.
func (r Rule) String() string {
	if r.Kind == KindErrorRate {
		return fmt.Sprintf("%s:%s:%g:%s", r.Name, r.Kind, r.Threshold, r.Window)
	}
	return fmt.Sprintf("%s:%s:%s:%gms:%s", r.Name, r.Kind, r.Metric, r.Threshold, r.Window)
}

// Rule kinds.
const (
	KindP50       = "p50"
	KindP90       = "p90"
	KindP99       = "p99"
	KindErrorRate = "error_rate"
)

// ParseRules parses a semicolon-separated rule spec. An empty spec
// yields no rules.
func ParseRules(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func parseRule(s string) (Rule, error) {
	fields := strings.Split(s, ":")
	if len(fields) < 4 {
		return Rule{}, fmt.Errorf("recorder: rule %q: want name:kind:[metric:]threshold:window", s)
	}
	r := Rule{Name: fields[0], Kind: fields[1]}
	if r.Name == "" {
		return Rule{}, fmt.Errorf("recorder: rule %q has an empty name", s)
	}
	var thr, win string
	switch r.Kind {
	case KindP50, KindP90, KindP99:
		if len(fields) != 5 {
			return Rule{}, fmt.Errorf("recorder: rule %q: %s wants name:%s:metric:threshold:window", s, r.Kind, r.Kind)
		}
		r.Metric = fields[2]
		if strings.Count(r.Metric, "/") != 1 {
			return Rule{}, fmt.Errorf("recorder: rule %q: metric %q is not <axis>/<class> (e.g. e2e/ok)", s, r.Metric)
		}
		thr, win = fields[3], fields[4]
		d, err := time.ParseDuration(thr)
		if err != nil || d < 0 {
			return Rule{}, fmt.Errorf("recorder: rule %q: bad latency threshold %q (want a duration, e.g. 500ms)", s, thr)
		}
		r.Threshold = float64(d) / float64(time.Millisecond)
	case KindErrorRate:
		if len(fields) != 4 {
			return Rule{}, fmt.Errorf("recorder: rule %q: error_rate wants name:error_rate:threshold:window", s)
		}
		thr, win = fields[2], fields[3]
		f, err := strconv.ParseFloat(thr, 64)
		if err != nil || f < 0 || f > 1 {
			return Rule{}, fmt.Errorf("recorder: rule %q: bad rate threshold %q (want [0,1])", s, thr)
		}
		r.Threshold = f
	default:
		return Rule{}, fmt.Errorf("recorder: rule %q: unknown kind %q (want p50, p90, p99 or error_rate)", s, r.Kind)
	}
	d, err := time.ParseDuration(win)
	if err != nil || d <= 0 {
		return Rule{}, fmt.Errorf("recorder: rule %q: bad window %q", s, win)
	}
	r.Window = d
	return r, nil
}

// RuleState is the live evaluation state of one rule, exposed at
// GET /debug/recorder and recorded into postmortem manifests.
type RuleState struct {
	Rule Rule `json:"rule"`
	// Value is the rule's input at the last tick: the watched quantile
	// in milliseconds, or the windowed error rate.
	Value float64 `json:"value"`
	// Breaching reports the instantaneous condition at the last tick;
	// Firing additionally requires the condition to have held for the
	// rule's window (quantile kinds) or full window coverage
	// (error_rate).
	Breaching bool `json:"breaching"`
	Firing    bool `json:"firing"`
	// SinceUnixMs is when the current breach streak started (0 when not
	// breaching).
	SinceUnixMs int64 `json:"since_unix_ms,omitempty"`
}

// ruleEval carries the per-rule evaluation memory across ticks.
type ruleEval struct {
	rule        Rule
	breachSince time.Time // zero when the last tick did not breach
	firing      bool
	state       RuleState
}

// evaluate updates the rule against the sample history (newest last)
// and reports whether this tick is a rising edge (not-firing → firing).
func (e *ruleEval) evaluate(now time.Time, ring []Sample) (rising bool) {
	if len(ring) == 0 {
		return false
	}
	cur := ring[len(ring)-1]
	var value float64
	var breach, firing bool
	switch e.rule.Kind {
	case KindErrorRate:
		value, breach = errorRate(e.rule, now, ring)
		// The rate is already windowed, so an instantaneous breach IS a
		// firing condition.
		firing = breach
	default:
		value = quantileValue(e.rule, cur)
		breach = value > e.rule.Threshold
		if breach {
			if e.breachSince.IsZero() {
				e.breachSince = now
			}
			firing = now.Sub(e.breachSince) >= e.rule.Window
		}
	}
	if !breach {
		e.breachSince = time.Time{}
	}
	rising = firing && !e.firing
	e.firing = firing
	e.state = RuleState{Rule: e.rule, Value: value, Breaching: breach, Firing: firing}
	if !e.breachSince.IsZero() {
		e.state.SinceUnixMs = e.breachSince.UnixMilli()
	}
	return rising
}

// quantileValue extracts the watched quantile from one sample.
func quantileValue(r Rule, s Sample) float64 {
	q, ok := s.Metrics.Quantiles["svc/latency/"+r.Metric]
	if !ok {
		return 0
	}
	switch r.Kind {
	case KindP50:
		return q.P50
	case KindP90:
		return q.P90
	default:
		return q.P99
	}
}

// errorRate computes the failed-job fraction over the rule's trailing
// window from the cumulative svc counters of the ring samples. The rate
// only counts (and only breaches) once the ring covers the whole
// window, so a freshly started recorder cannot false-fire off two
// samples.
func errorRate(r Rule, now time.Time, ring []Sample) (rate float64, breach bool) {
	cur := ring[len(ring)-1]
	cutoff := now.Add(-r.Window).UnixMilli()
	// Oldest sample still inside the window; its counters are the base.
	base := -1
	for i := len(ring) - 1; i >= 0; i-- {
		if ring[i].TimeUnixMs < cutoff {
			break
		}
		base = i
	}
	if base < 0 || base == len(ring)-1 {
		return 0, false
	}
	covered := base > 0 || // an older sample exists beyond the window edge
		cur.TimeUnixMs-ring[base].TimeUnixMs >= int64(float64(r.Window.Milliseconds())*0.8)
	failed := counterDelta(ring[base], cur, "svc/jobs_failed")
	total := failed + counterDelta(ring[base], cur, "svc/jobs_completed")
	if total <= 0 {
		return 0, false
	}
	rate = float64(failed) / float64(total)
	return rate, covered && rate > r.Threshold
}

func counterDelta(a, b Sample, name string) int64 {
	return b.Metrics.Counters[name] - a.Metrics.Counters[name]
}
