package recorder

import (
	"bytes"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"msrnet/internal/bench"
	"msrnet/internal/obs"
	"msrnet/internal/obs/trace"
)

func quiet() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("e2e-slow:p99:e2e/ok:500ms:1m; err-fast:error_rate:0.01:2m")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}
	r := rules[0]
	if r.Name != "e2e-slow" || r.Kind != KindP99 || r.Metric != "e2e/ok" || r.Threshold != 500 || r.Window != time.Minute {
		t.Fatalf("rule 0 parsed wrong: %+v", r)
	}
	r = rules[1]
	if r.Name != "err-fast" || r.Kind != KindErrorRate || r.Threshold != 0.01 || r.Window != 2*time.Minute {
		t.Fatalf("rule 1 parsed wrong: %+v", r)
	}
	// Round-trip: the String form re-parses to the same rule.
	again, err := ParseRules(rules[0].String() + ";" + rules[1].String())
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 2 || again[0] != rules[0] || again[1] != rules[1] {
		t.Fatalf("spec round-trip changed the rules: %+v vs %+v", again, rules)
	}
}

func TestParseRulesRejects(t *testing.T) {
	for _, spec := range []string{
		"x",                            // not enough fields
		"a:p99:e2e/ok:banana:1m",       // bad threshold
		"a:p99:e2e:500ms:1m",           // metric missing class
		"a:error_rate:2:1m",            // rate out of [0,1]
		"a:error_rate:0.5:0s",          // non-positive window
		"a:p42:e2e/ok:500ms:1m",        // unknown kind
		":p99:e2e/ok:500ms:1m",         // empty name
		"a:p99:e2e/ok:500ms:1m:extras", // too many fields
	} {
		if _, err := ParseRules(spec); err == nil {
			t.Errorf("spec %q: parsed, want error", spec)
		}
	}
}

func TestRingBounded(t *testing.T) {
	reg := obs.New()
	f := New(Config{Reg: reg, Capacity: 4, Interval: time.Hour, Logger: quiet()})
	base := time.Now()
	for i := 0; i < 10; i++ {
		reg.Counter("tick").Inc()
		f.tick(base.Add(time.Duration(i) * time.Second))
	}
	got := f.Samples(0)
	if len(got) != 4 {
		t.Fatalf("ring has %d samples, want capacity 4", len(got))
	}
	// Oldest-first: the retained samples are ticks 6..9.
	for i, s := range got {
		if want := int64(7 + i); s.Metrics.Counters["tick"] != want {
			t.Fatalf("sample %d has tick=%d, want %d", i, s.Metrics.Counters["tick"], want)
		}
	}
	if last2 := f.Samples(2); len(last2) != 2 || last2[1].Metrics.Counters["tick"] != 10 {
		t.Fatalf("Samples(2) = %d samples ending %v", len(last2), last2)
	}
	st := f.State(3)
	if st.Ticks != 10 || len(st.Samples) != 3 || st.Capacity != 4 {
		t.Fatalf("State: ticks=%d samples=%d cap=%d", st.Ticks, len(st.Samples), st.Capacity)
	}
}

func TestQuantileRuleFiresAfterWindow(t *testing.T) {
	reg := obs.New()
	w := reg.Window("svc/latency/e2e/ok", time.Minute, time.Second)
	rules, err := ParseRules("slow:p99:e2e/ok:100ms:3s")
	if err != nil {
		t.Fatal(err)
	}
	f := New(Config{Reg: reg, Rules: rules, Interval: time.Hour, Logger: quiet()})
	base := time.Now()

	// Healthy latency: no breach.
	w.Observe(10)
	f.tick(base)
	if st := f.RuleStates()[0]; st.Breaching || st.Firing {
		t.Fatalf("healthy tick breached: %+v", st)
	}

	// Latency jumps over the threshold: breaching immediately, firing
	// only once the breach has held for the 3s window.
	for i := 0; i < 200; i++ {
		w.Observe(500)
	}
	f.tick(base.Add(1 * time.Second))
	st := f.RuleStates()[0]
	if !st.Breaching || st.Firing {
		t.Fatalf("tick 1: want breaching, not yet firing: %+v", st)
	}
	f.tick(base.Add(2 * time.Second))
	f.tick(base.Add(4*time.Second + time.Millisecond)) // 3s+ since the breach started
	if st := f.RuleStates()[0]; !st.Firing {
		t.Fatalf("breach held past the window but rule not firing: %+v", st)
	}
	// The firing tick is marked in the ring.
	last := f.Samples(1)[0]
	if len(last.Firing) != 1 || last.Firing[0] != "slow" {
		t.Fatalf("firing sample not marked: %+v", last.Firing)
	}
}

func TestErrorRateRule(t *testing.T) {
	reg := obs.New()
	completed := reg.Counter("svc/jobs_completed")
	failed := reg.Counter("svc/jobs_failed")
	rules, err := ParseRules("burn:error_rate:0.10:4s")
	if err != nil {
		t.Fatal(err)
	}
	f := New(Config{Reg: reg, Rules: rules, Interval: time.Hour, Logger: quiet()})
	base := time.Now()

	// Two samples only 1s apart do not cover the 4s window: no firing
	// even at a 100% failure rate.
	f.tick(base)
	failed.Add(10)
	f.tick(base.Add(time.Second))
	if st := f.RuleStates()[0]; st.Firing {
		t.Fatalf("fired without window coverage: %+v", st)
	}

	// Healthy traffic across the window: rate stays under threshold.
	completed.Add(1000)
	f.tick(base.Add(2 * time.Second))
	f.tick(base.Add(5 * time.Second))
	st := f.RuleStates()[0]
	if st.Firing {
		t.Fatalf("fired on a healthy window: %+v", st)
	}

	// A fast burn: half the jobs in the window fail.
	completed.Add(50)
	failed.Add(50)
	f.tick(base.Add(6 * time.Second))
	f.tick(base.Add(9 * time.Second))
	st = f.RuleStates()[0]
	if !st.Firing {
		t.Fatalf("fast burn not detected: %+v", st)
	}
	if st.Value < 0.10 {
		t.Fatalf("windowed rate %.3f, want > threshold", st.Value)
	}
}

func TestTriggerWritesBundleAndRetention(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New()
	reg.Counter("svc/jobs_completed").Add(7)
	tr := trace.New(64)
	tr.Instant("prune", "dp", trace.I("drops", 3))
	f := New(Config{
		Reg: reg, Tracer: tr, Dir: dir, Interval: time.Hour,
		MaxBundles: 2, Info: map[string]string{"version": "test"}, Logger: quiet(),
	})
	f.SetJobs(func() any {
		return JobsDump{Recent: []JobReport{{
			JobID: "j1", Label: "net-1", TraceID: "trace-1", Outcome: "error", Code: "internal", TotalMs: 12.5,
			Solve: &JobSolve{SolutionsCreated: 4300, Dropped: 2000, PruneCalls: 30, MaxSetSize: 140},
		}}}
	})
	f.tick(time.Now())

	var dirs []string
	for i := 0; i < 3; i++ {
		d, err := f.Trigger(ReasonManual, "test dump")
		if err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, d)
		time.Sleep(2 * time.Millisecond) // distinct bundle timestamps
	}

	// Retention: only the 2 newest bundles survive.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("retention kept %d bundles, want 2", len(entries))
	}
	if _, err := os.Stat(dirs[0]); !os.IsNotExist(err) {
		t.Fatalf("oldest bundle %s survived retention", dirs[0])
	}

	b, err := LoadBundle(dirs[2])
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Schema != BundleSchema || b.Manifest.Trigger.Reason != ReasonManual {
		t.Fatalf("manifest: %+v", b.Manifest)
	}
	if len(b.Ring) != 1 || b.Ring[0].Metrics.Counters["svc/jobs_completed"] != 7 {
		t.Fatalf("ring not captured: %+v", b.Ring)
	}
	if b.Metrics.Counters["svc/jobs_completed"] != 7 {
		t.Fatalf("final metrics not captured: %+v", b.Metrics.Counters)
	}
	if len(b.Jobs.Recent) != 1 || b.Jobs.Recent[0].Solve.SolutionsCreated != 4300 {
		t.Fatalf("jobs not captured: %+v", b.Jobs)
	}
	if b.GoroutineCount == 0 {
		t.Fatal("goroutine dump missing or empty")
	}
	if !b.HasTrace || !b.HasHeap {
		t.Fatalf("trace/heap artifacts missing: trace=%v heap=%v", b.HasTrace, b.HasHeap)
	}
	// Every manifest-listed file exists.
	for _, name := range b.Manifest.Files {
		if _, err := os.Stat(filepath.Join(dirs[2], name)); err != nil {
			t.Errorf("manifest lists %s but: %v", name, err)
		}
	}
}

func TestTriggerAutoCooldown(t *testing.T) {
	dir := t.TempDir()
	f := New(Config{Reg: obs.New(), Dir: dir, Interval: time.Hour, Cooldown: time.Hour, Logger: quiet()})
	f.tick(time.Now())
	d1, err := f.TriggerAuto(ReasonPanic, "first")
	if err != nil || d1 == "" {
		t.Fatalf("first auto trigger: %q, %v", d1, err)
	}
	d2, err := f.TriggerAuto(ReasonPanic, "second")
	if err != nil {
		t.Fatal(err)
	}
	if d2 != "" {
		t.Fatalf("second auto trigger inside cooldown wrote %s", d2)
	}
	// Manual triggers ignore the cooldown.
	d3, err := f.Trigger(ReasonManual, "forced")
	if err != nil || d3 == "" {
		t.Fatalf("manual trigger during cooldown: %q, %v", d3, err)
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var f *FlightRecorder
	f.Start()
	f.Stop()
	f.SetJobs(nil)
	if s := f.Samples(5); s != nil {
		t.Fatal("nil recorder returned samples")
	}
	if _, err := f.TriggerAuto(ReasonPanic, ""); err != nil {
		t.Fatalf("nil TriggerAuto: %v", err)
	}
	if _, err := f.Trigger(ReasonManual, ""); err == nil {
		t.Fatal("nil manual Trigger should error (nothing was written)")
	}
}

func TestStartStopLoop(t *testing.T) {
	reg := obs.New()
	f := New(Config{Reg: reg, Interval: 5 * time.Millisecond, Logger: quiet()})
	f.Start()
	deadline := time.Now().Add(2 * time.Second)
	for f.State(0).Ticks < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	f.Stop()
	if got := f.State(0).Ticks; got < 3 {
		t.Fatalf("loop took %d ticks, want >= 3", got)
	}
	// The ring samples carry runtime state.
	if s := f.Samples(1); len(s) != 1 || s[0].Runtime.Goroutines == 0 {
		t.Fatalf("samples missing runtime state: %+v", s)
	}
}

func TestWriteReport(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New()
	w := reg.Window("svc/latency/e2e/ok", time.Minute, time.Second)
	w.Observe(12)
	reg.Counter("svc/jobs_completed").Add(3)
	reg.Counter("svc/jobs_failed").Add(1)
	reg.Gauge("svc/queue_depth").Set(2)
	f := New(Config{Reg: reg, Dir: dir, Interval: time.Hour, Logger: quiet(),
		Info: map[string]string{"go": "test"}})
	f.SetJobs(func() any {
		return JobsDump{
			Active: []JobReport{{JobID: "j9", Label: "net-9", State: "running", Mode: "msri", TraceID: "t-9"}},
			Recent: []JobReport{
				{JobID: "j1", Label: "net-1", Outcome: "ok", TotalMs: 40,
					Solve: &JobSolve{SolutionsCreated: 4300, Dropped: 2000, PruneCalls: 30, MaxSetSize: 140}},
				{JobID: "j2", Label: "net-2", Outcome: "error", Code: "internal", TraceID: "t-2", TotalMs: 5},
			},
		}
	})
	f.tick(time.Now())
	w.Observe(900)
	f.tick(time.Now())
	path, err := f.Trigger(ReasonSIGQUIT, "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	baseline := &bench.Report{Schema: bench.Schema, Suite: "quick", Workloads: []bench.Workload{
		{Name: "msri/10pin", Counters: map[string]int64{"solutions_created": 2685, "dropped": 563}},
	}}
	var buf bytes.Buffer
	if err := WriteReport(&buf, b, baseline); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"msrnet postmortem",
		"trigger: sigquit",
		"timeline",
		"svc/latency/e2e/ok", // the mover
		"in-flight jobs",
		"j9",
		"outcome=error",
		"DP shape",
		"vs baseline",
		"goroutine dump",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
