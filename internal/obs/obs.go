// Package obs is the zero-dependency observability substrate of the
// repository: structured counters, gauges and histograms (all atomic, so
// a future parallel dynamic program can record from many goroutines
// without locks on the hot path), hierarchical phase spans with
// wall-time accumulation, and JSON/text snapshots for machine-readable
// performance tracking.
//
// The paper's value is its complexity claims — the linear-time ARD of
// Fig. 2 and a pruned PWL dynamic program whose practical cost is
// governed by per-node solution-set sizes and PWL segment counts
// (Tables I–IV) — so the pipeline packages (core, ard, dominance,
// experiments) thread a Recorder through their entry points and report
// exactly those quantities. See DESIGN.md §7 for the metric-to-paper
// mapping.
//
// A nil Recorder (or a nil *Registry, which Nop returns) is a valid
// sink: every handle method is nil-safe and allocation-free, so
// instrumented hot paths cost a predictable nil check when observability
// is off.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Recorder is the instrumentation sink threaded through the MSRI/ARD
// pipeline. *Registry implements it; callers that receive a possibly-nil
// Recorder should obtain handles only after a nil check (or via the
// package-level Start helper for spans).
type Recorder interface {
	// Counter returns the named monotonic counter, creating it on first
	// use.
	Counter(name string) *Counter
	// Gauge returns the named gauge, creating it on first use.
	Gauge(name string) *Gauge
	// Histogram returns the named histogram, creating it on first use
	// with the given upper bucket bounds (DefaultBounds when nil). Bounds
	// are fixed at creation; later calls ignore the argument.
	Histogram(name string, bounds []float64) *Histogram
	// StartSpan opens a phase span at the given '/'-separated path; the
	// span's wall time is accumulated into the span tree on End.
	StartSpan(path string) *Span
}

// Registry is the concrete Recorder: a named set of metrics plus a span
// tree. All methods are safe for concurrent use and nil-safe (a nil
// *Registry records nothing).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	windows  map[string]*WindowHist
	spans    spanNode

	// runtimeOn makes snapshots carry a RuntimeSnapshot (EnableRuntime).
	runtimeOn bool
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

// Nop returns a Recorder that records nothing at zero cost: a nil
// *Registry, whose handles are nil and whose handle methods no-op.
func Nop() Recorder { return (*Registry)(nil) }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[string]*Gauge{}
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// DefaultBounds are the power-of-two bucket bounds used when a histogram
// is created with nil bounds — a good fit for the set-size and
// segment-count distributions the pipeline records.
var DefaultBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = map[string]*Histogram{}
	}
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultBounds
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1), max: math.Float64bits(math.Inf(-1))}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe.
type Counter struct{ v int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.v, n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Gauge is an atomic last/extreme-value cell. All methods are nil-safe.
type Gauge struct{ v int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	atomic.StoreInt64(&g.v, v)
}

// SetMax raises the gauge to v if v is greater than the current value.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := atomic.LoadInt64(&g.v)
		if v <= cur {
			return
		}
		if atomic.CompareAndSwapInt64(&g.v, cur, v) {
			return
		}
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	atomic.AddInt64(&g.v, delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return atomic.LoadInt64(&g.v)
}

// Histogram is a fixed-bucket atomic histogram: counts[i] holds the
// observations v ≤ bounds[i] (and greater than the previous bound); the
// final bucket is the +Inf overflow. Observe is lock-free — a bucket
// scan plus four atomic updates — so it is safe on the DP hot path.
type Histogram struct {
	bounds []float64
	counts []int64
	count  int64
	sum    uint64 // float64 bits, CAS-updated
	max    uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	atomic.AddInt64(&h.counts[i], 1)
	atomic.AddInt64(&h.count, 1)
	addFloatBits(&h.sum, v)
	maxFloatBits(&h.max, v)
}

// ObserveInt records one integer value.
func (h *Histogram) ObserveInt(v int) { h.Observe(float64(v)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.count)
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&h.sum))
}

// Max returns the largest observation (−Inf when empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return math.Inf(-1)
	}
	return math.Float64frombits(atomic.LoadUint64(&h.max))
}

func addFloatBits(p *uint64, v float64) {
	for {
		old := atomic.LoadUint64(p)
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(p, old, nw) {
			return
		}
	}
}

func maxFloatBits(p *uint64, v float64) {
	for {
		old := atomic.LoadUint64(p)
		if v <= math.Float64frombits(old) {
			return
		}
		if atomic.CompareAndSwapUint64(p, old, math.Float64bits(v)) {
			return
		}
	}
}
