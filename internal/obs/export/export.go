// Package export publishes obs registries to the outside world: the
// Prometheus text exposition format (for /metrics scrapes), expvar
// publication (for /debug/vars), and an HTTP server that mounts both
// next to net/http/pprof and a health check, so a long Table I–IV run
// can be watched live instead of waiting for the exit snapshot.
//
// The exported values are exactly the msrnet-metrics/v1 Snapshot: every
// counter, gauge, histogram and span of the registry appears under a
// deterministic Prometheus name (see PromName), so a scrape taken at
// exit matches the final JSON snapshot field for field.
package export

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"msrnet/internal/obs"
)

// namePrefix is prepended to every exported metric, namespacing the
// pipeline's series in a shared Prometheus.
const namePrefix = "msrnet_"

// PromName converts a '/'-separated registry metric name into a valid
// Prometheus metric name: the msrnet_ namespace plus the name with
// every character outside [a-zA-Z0-9_] mapped to '_'. The mapping is
// stable and injective for the names the pipeline uses (which never
// contain '_'-adjacent separators), so dashboards can rely on it.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(namePrefix) + len(name))
	b.WriteString(namePrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9': // the msrnet_ prefix keeps a digit off position 0
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as <name>_total, gauges as-is,
// histograms with cumulative le-labelled buckets plus _sum and _count,
// and the span tree flattened to msrnet_phase_seconds_total /
// msrnet_phase_count_total series labelled by '/'-joined path. Output
// is sorted by name, so successive scrapes of an idle registry are
// byte-identical.
func WritePrometheus(w io.Writer, s obs.Snapshot) error {
	for _, name := range sortedKeys(s.Counters) {
		pn := PromName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		if err := writeHistogram(w, name, s.Histograms[name]); err != nil {
			return err
		}
	}
	qnames := make([]string, 0, len(s.Quantiles))
	for name := range s.Quantiles {
		qnames = append(qnames, name)
	}
	sort.Strings(qnames)
	for _, name := range qnames {
		if err := writeQuantiles(w, name, s.Quantiles[name]); err != nil {
			return err
		}
	}
	if err := writeRuntime(w, s.Runtime); err != nil {
		return err
	}
	return writeSpans(w, s.Spans)
}

// writeRuntime renders the Go runtime section (present only on
// registries with EnableRuntime): scalar gauges plus the GC-pause and
// scheduling-latency quantile triples as summaries.
func writeRuntime(w io.Writer, rt *obs.RuntimeSnapshot) error {
	if rt == nil {
		return nil
	}
	for _, g := range []struct {
		name string
		v    int64
	}{
		{"runtime_gc_cycles", rt.GCCycles},
		{"runtime_goroutines", rt.Goroutines},
		{"runtime_heap_inuse_bytes", rt.HeapInuseBytes},
		{"runtime_total_bytes", rt.TotalBytes},
	} {
		pn := namePrefix + g.name
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, g.v); err != nil {
			return err
		}
	}
	for _, q := range []struct {
		name string
		v    obs.RuntimeQuantiles
	}{
		{"runtime_gc_pause_ms", rt.GCPauseMs},
		{"runtime_sched_latency_ms", rt.SchedLatencyMs},
	} {
		pn := namePrefix + q.name
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n%s{quantile=\"0.5\"} %s\n%s{quantile=\"0.9\"} %s\n%s{quantile=\"0.99\"} %s\n",
			pn, pn, formatFloat(q.v.P50), pn, formatFloat(q.v.P90), pn, formatFloat(q.v.P99)); err != nil {
			return err
		}
	}
	return nil
}

// writeQuantiles renders one sliding-window histogram as a Prometheus
// summary: pre-computed φ-quantiles plus _sum and _count. Unlike the
// cumulative series, the quantiles cover only the trailing window —
// which is exactly what an SLO dashboard wants to alert on.
func writeQuantiles(w io.Writer, name string, q obs.QuantileSnapshot) error {
	pn := PromName(name)
	if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pn); err != nil {
		return err
	}
	for _, p := range []struct {
		phi string
		v   float64
	}{{"0.5", q.P50}, {"0.9", q.P90}, {"0.99", q.P99}} {
		if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n", pn, p.phi, formatFloat(p.v)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, formatFloat(q.Sum), pn, q.Count); err != nil {
		return err
	}
	// Exemplar: the worst traced observation in the window, labelled
	// with its trace ID so a dashboard can jump from a tail quantile to
	// `msrnetctl -trace <id>`. Emitted as a plain gauge series (the
	// text exposition v0.0.4 has no native exemplar syntax).
	if q.ExemplarTrace != "" {
		if _, err := fmt.Fprintf(w, "# TYPE %s_exemplar gauge\n%s_exemplar{trace_id=%q} %s\n",
			pn, pn, q.ExemplarTrace, formatFloat(q.ExemplarMs)); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h obs.HistSnapshot) error {
	pn := PromName(name)
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	cum := int64(0)
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, formatBound(bound), cum); err != nil {
			return err
		}
	}
	// The overflow bucket makes the +Inf cumulative count equal Count.
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, formatFloat(h.Sum), pn, h.Count); err != nil {
		return err
	}
	return nil
}

func writeSpans(w io.Writer, spans []obs.SpanSnapshot) error {
	type flat struct {
		path    string
		count   int64
		seconds float64
	}
	var all []flat
	var walk func(prefix string, spans []obs.SpanSnapshot)
	walk = func(prefix string, spans []obs.SpanSnapshot) {
		for _, sp := range spans {
			path := sp.Name
			if prefix != "" {
				path = prefix + "/" + sp.Name
			}
			all = append(all, flat{path: path, count: sp.Count, seconds: sp.Seconds})
			walk(path, sp.Children)
		}
	}
	walk("", spans)
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i].path < all[j].path })
	if _, err := fmt.Fprintf(w, "# TYPE %sphase_seconds_total counter\n", namePrefix); err != nil {
		return err
	}
	for _, f := range all {
		if _, err := fmt.Fprintf(w, "%sphase_seconds_total{path=%q} %s\n", namePrefix, f.path, formatFloat(f.seconds)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %sphase_count_total counter\n", namePrefix); err != nil {
		return err
	}
	for _, f := range all {
		if _, err := fmt.Fprintf(w, "%sphase_count_total{path=%q} %d\n", namePrefix, f.path, f.count); err != nil {
			return err
		}
	}
	return nil
}

// formatBound renders a bucket bound the way Prometheus clients
// conventionally do (shortest decimal that round-trips).
func formatBound(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

var expvarMu sync.Mutex

// PublishExpvar publishes the registry's live snapshot under the given
// expvar name, so it appears (JSON-encoded, schema msrnet-metrics/v1)
// in /debug/vars next to the runtime's memstats. The expvar registry is
// process-global and forbids re-publication, so publishing an
// already-taken name replaces nothing and returns false; this makes the
// call safe from tests and repeated Serve invocations.
func PublishExpvar(name string, r *obs.Registry) bool {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return true
}
