package export

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"

	"msrnet/internal/obs"
)

func populated() *obs.Registry {
	reg := obs.New()
	reg.Counter("core/solutions_created").Add(120)
	reg.Counter("core/prune/divide/calls").Add(7)
	reg.Gauge("core/max_set_size").SetMax(42)
	h := reg.Histogram("core/pwl_segments", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)
	sp := reg.StartSpan("msri/solve")
	sp.End()
	reg.StartSpan("msri").End()
	return reg
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"core/solutions_created":   "msrnet_core_solutions_created",
		"core/prune/divide/calls":  "msrnet_core_prune_divide_calls",
		"ard/runs":                 "msrnet_ard_runs",
		"weird name-with.symbols!": "msrnet_weird_name_with_symbols_",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusFormat checks the exposition rules that scrapers
// depend on: typed families, _total counter suffix, cumulative
// le-labelled buckets ending at +Inf == _count, and flattened span
// series.
func TestWritePrometheusFormat(t *testing.T) {
	snap := populated().Snapshot()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, snap); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE msrnet_core_solutions_created_total counter",
		"msrnet_core_solutions_created_total 120",
		"msrnet_core_prune_divide_calls_total 7",
		"# TYPE msrnet_core_max_set_size gauge",
		"msrnet_core_max_set_size 42",
		"# TYPE msrnet_core_pwl_segments histogram",
		`msrnet_core_pwl_segments_bucket{le="1"} 1`,
		`msrnet_core_pwl_segments_bucket{le="2"} 1`,
		`msrnet_core_pwl_segments_bucket{le="4"} 2`,
		`msrnet_core_pwl_segments_bucket{le="+Inf"} 3`,
		"msrnet_core_pwl_segments_sum 104",
		"msrnet_core_pwl_segments_count 3",
		`msrnet_phase_count_total{path="msri"} 1`,
		`msrnet_phase_count_total{path="msri/solve"} 1`,
		`msrnet_phase_seconds_total{path="msri/solve"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic: a second render of the same snapshot is identical.
	var buf2 bytes.Buffer
	if err := WritePrometheus(&buf2, snap); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("two renders of equal snapshots differ")
	}
}

// TestPrometheusMatchesSnapshot is the acceptance check: every counter,
// gauge and histogram of the final JSON snapshot appears in the scrape
// with the same value.
func TestPrometheusMatchesSnapshot(t *testing.T) {
	reg := populated()
	snap := reg.Snapshot()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, snap); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for name, v := range snap.Counters {
		want := fmt.Sprintf("%s_total %d\n", PromName(name), v)
		if !strings.Contains(out, want) {
			t.Errorf("counter %s: scrape missing %q", name, want)
		}
	}
	for name, v := range snap.Gauges {
		want := fmt.Sprintf("%s %d\n", PromName(name), v)
		if !strings.Contains(out, want) {
			t.Errorf("gauge %s: scrape missing %q", name, want)
		}
	}
	for name, h := range snap.Histograms {
		want := fmt.Sprintf("%s_count %d\n", PromName(name), h.Count)
		if !strings.Contains(out, want) {
			t.Errorf("histogram %s: scrape missing %q", name, want)
		}
	}
}

// TestServeEndpoints boots the real server on a loopback port and hits
// every mounted endpoint.
func TestServeEndpoints(t *testing.T) {
	reg := populated()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv, err := Serve("127.0.0.1:0", reg, logger)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr().String()

	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	if code, body, _ := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body, hdr := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "msrnet_core_solutions_created_total 120") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	// A scrape must see live updates, not a boot-time copy.
	reg.Counter("core/solutions_created").Add(5)
	if _, body, _ := get("/metrics"); !strings.Contains(body, "msrnet_core_solutions_created_total 125") {
		t.Error("/metrics did not reflect a live counter update")
	}

	code, body, _ = get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	raw, ok := vars["msrnet"]
	if !ok {
		t.Fatal("/debug/vars missing msrnet var")
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("msrnet expvar not a snapshot: %v", err)
	}
	if snap.Schema != obs.MetricsSchema {
		t.Errorf("expvar snapshot schema = %q", snap.Schema)
	}

	if code, body, _ := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d (%d bytes)", code, len(body))
	}
}

// TestPublishExpvarIdempotent: re-publishing the same name must refuse
// rather than panic (expvar's registry is process-global).
func TestPublishExpvarIdempotent(t *testing.T) {
	reg := obs.New()
	first := PublishExpvar("msrnet-test-idem", reg)
	second := PublishExpvar("msrnet-test-idem", reg)
	if !first || second {
		t.Errorf("publish results = %v, %v; want true, false", first, second)
	}
}

// TestPrometheusExemplar: a traced window observation surfaces as a
// <name>_exemplar{trace_id=...} gauge next to the summary, and windows
// without a traced observation emit no exemplar series.
func TestPrometheusExemplar(t *testing.T) {
	reg := obs.New()
	reg.Window("svc/latency/e2e/ok", 0, 0).ObserveEx(42.5, "deadbeef")
	reg.Window("svc/latency/queue/ok", 0, 0).Observe(7)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `msrnet_svc_latency_e2e_ok_exemplar{trace_id="deadbeef"} 42.5`
	if !strings.Contains(out, want) {
		t.Errorf("missing exemplar series %q in:\n%s", want, out)
	}
	if strings.Contains(out, "queue_ok_exemplar") {
		t.Errorf("untraced window grew an exemplar series:\n%s", out)
	}
}
