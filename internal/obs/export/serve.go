package export

import (
	"context"
	"expvar"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"msrnet/internal/obs"
)

// Server is a live observability endpoint for one registry. Close shuts
// it down; Addr reports the bound address (useful with ":0").
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close gracefully shuts the server down, waiting briefly for in-flight
// scrapes.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// Serve starts an HTTP server on addr exposing the registry live:
//
//	/metrics        Prometheus text exposition of the current snapshot
//	/debug/vars     expvar JSON (includes the registry as "msrnet")
//	/debug/pprof/   the standard pprof index, profiles and traces
//	/healthz        200 "ok"
//
// Every request is logged through logger (slog.Default when nil) with
// method, path, status and duration. The server runs on its own
// goroutine; callers Close it when the run ends, or simply exit — the
// endpoint is a window, not a lifecycle owner.
func Serve(addr string, reg *obs.Registry, logger *slog.Logger) (*Server, error) {
	if logger == nil {
		logger = slog.Default()
	}
	mux := http.NewServeMux()
	Register(mux, reg)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           LogRequests(logger, mux),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("obs endpoint failed", "addr", ln.Addr().String(), "err", err)
		}
	}()
	logger.Info("obs endpoint listening",
		"addr", ln.Addr().String(),
		"endpoints", []string{"/metrics", "/debug/vars", "/debug/pprof/", "/healthz"})
	return &Server{ln: ln, srv: srv}, nil
}

// Register mounts the standard observability surface on mux —
// /metrics, /debug/vars, /debug/pprof/* and /healthz — publishing the
// registry under the "msrnet" expvar on the way. It exists so services
// with their own listener (msrnetd) expose exactly the same endpoints,
// on the same paths, as the -listen flag of the batch commands.
func Register(mux *http.ServeMux, reg *obs.Registry) {
	PublishExpvar("msrnet", reg)
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
}

// MetricsHandler serves the registry's current snapshot in Prometheus
// text format. Each request takes a fresh snapshot, so scrapes see live
// values mid-run.
func MetricsHandler(reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, reg.Snapshot()); err != nil {
			// Headers are gone; nothing to do but note it server-side.
			slog.Default().Warn("metrics write failed", "err", err)
		}
	})
}

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// LogRequests wraps next so every request is logged through logger with
// method, path, status, duration and remote address — the same access
// log Serve installs, exported for services that own their listener.
// The line is emitted with the request context, so a reqctx-wrapped
// handler stamps it with the request's trace_id.
func LogRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		logger.InfoContext(r.Context(), "http",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"dur", time.Since(start),
			"remote", r.RemoteAddr)
	})
}
