// Package trace is the timeline layer of the observability substrate:
// where internal/obs aggregates (how much time, how many solutions),
// trace records *when* — a bounded ring of timestamped events that
// exports to the Chrome trace-event JSON format, loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// The tracer is built for the MSRI hot path: the event buffer is
// preallocated at construction, event slots are fixed-size (typed int64
// args, no maps, no interfaces), and recording an event is a mutex
// acquire plus a struct copy — no allocation. Names, categories and
// argument keys are interned into a side table so the ring itself holds
// only scalars: a pointer-free ring is invisible to the garbage
// collector, which matters because the DP being traced is
// allocation-heavy and would otherwise pay a scan of the whole ring on
// every GC cycle. When the ring fills, the oldest events are
// overwritten and the drop count is reported in the export, so a long
// run keeps its most recent window instead of growing without bound.
//
// Like the rest of the obs substrate, a nil *Tracer is a valid sink:
// every method no-ops, and the Region returned by a nil Begin is inert,
// so instrumented code needs no branches.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"
)

// TraceEventSchema identifies the export format for downstream tooling.
// The payload is the standard Chrome trace-event JSON Object Format
// ({"traceEvents": [...]}), which Perfetto and chrome://tracing load
// directly; the schema name is carried in the otherData section.
const TraceEventSchema = "msrnet-trace-events/v1"

// DefaultCapacity is the ring size used by New when given a
// non-positive capacity: at ~104 bytes per slot this bounds the tracer
// near 14 MB, roughly one 20-pin Table II net's worth of per-node DP
// events with room to spare.
const DefaultCapacity = 1 << 17

// Arg is one typed event argument. Most values are int64 because the
// quantities the pipeline traces (node ids, solution-set sizes, PWL
// segment counts, prune drops) are small integers; string values (trace
// IDs, prune-site names) are interned into the tracer's side table so
// the slot stays fixed-size and pointer-free either way.
type Arg struct {
	Key string
	Val int64
	// Str, when IsStr is set, is the string value; Val is ignored.
	Str   string
	IsStr bool
}

// I builds an Arg from an int, the common case at call sites.
func I(key string, v int) Arg { return Arg{Key: key, Val: int64(v)} }

// S builds a string-valued Arg. The value is interned on record, so a
// bounded vocabulary (site names, outcome classes) is free; unbounded
// vocabularies (per-request trace IDs) grow the intern table one entry
// per distinct value until the tracer's intern cap, after which new
// strings collapse to "(interned-overflow)" — the ring stays bounded
// regardless.
func S(key, val string) Arg { return Arg{Key: key, Str: val, IsStr: true} }

// maxArgs is the per-event argument capacity. Events carrying more are
// truncated (never split), so slots stay fixed-size.
const maxArgs = 6

// Event is one recorded timeline event, as returned by Events. TS is
// the offset from the tracer's start; Dur is zero for instant events.
type Event struct {
	Name  string
	Cat   string
	Phase byte // 'X' (complete) or 'i' (instant)
	TS    time.Duration
	Dur   time.Duration
	Args  [maxArgs]Arg
	NArgs uint8
}

// slot is the in-ring representation of an event: strings are replaced
// by interned ids so the slot holds no pointers and the GC never scans
// the (potentially multi-megabyte) ring.
type slot struct {
	name    uint32
	cat     uint32
	phase   byte
	nargs   uint8
	strMask uint8 // bit i set: vals[i] is an interned string id
	keys    [maxArgs]uint32
	ts      int64 // nanoseconds since tracer start
	dur     int64
	vals    [maxArgs]int64
}

// Tracer records events into a fixed-capacity ring. All methods are
// safe for concurrent use and nil-safe.
type Tracer struct {
	mu    sync.Mutex
	start time.Time
	slots []slot
	next  int    // overwrite cursor, meaningful once the ring is full
	total uint64 // events ever recorded (total − len kept = dropped)

	// Interning table for names, categories and arg keys. The vocabulary
	// is the set of instrumentation sites, a few dozen strings at most.
	strs []string
	ids  map[string]uint32
}

// New returns a tracer with the given ring capacity (DefaultCapacity
// when cap <= 0). The buffer is allocated up front so recording never
// grows it.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{
		start: time.Now(),
		slots: make([]slot, 0, capacity),
		ids:   make(map[string]uint32),
	}
}

// maxInterned caps the interning table. Event names, categories and
// arg keys are a few dozen strings, but string arg *values* include
// per-request trace IDs, which are unbounded over a daemon's lifetime;
// the cap turns that into a bounded (≈2 MB worst-case) table instead
// of a slow leak. Strings arriving past the cap all map to one
// overflow id.
const maxInterned = 1 << 16

// internedOverflow replaces string values interned past the cap.
const internedOverflow = "(interned-overflow)"

// intern maps a string to its stable id, assigning one on first sight.
// Callers must hold t.mu. Lookups of known strings do not allocate,
// which keeps steady-state recording allocation-free.
func (t *Tracer) intern(s string) uint32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	if len(t.strs) >= maxInterned-1 && s != internedOverflow {
		// Table full: reserve the last slot for the overflow marker.
		return t.intern(internedOverflow)
	}
	id := uint32(len(t.strs))
	t.strs = append(t.strs, s)
	t.ids[s] = id
	return id
}

// Enabled reports whether events will actually be kept; it lets callers
// skip argument computation that is only needed for tracing.
func (t *Tracer) Enabled() bool { return t != nil }

// Instant records a zero-duration event ('i' in the trace-event
// format), e.g. a prune decision or a dropped-solution note.
func (t *Tracer) Instant(name, cat string, args ...Arg) {
	if t == nil {
		return
	}
	t.record(name, cat, 'i', time.Since(t.start), 0, args)
}

// Region is one open timed slice, closed by End. The zero Region (from
// a nil tracer) is inert.
type Region struct {
	t     *Tracer
	name  string
	cat   string
	start time.Duration
}

// Begin opens a timed region. The region is recorded as one complete
// ('X') event when End is called, so no begin/end pairing is needed in
// the viewer and an unfinished region at exit simply records nothing.
func (t *Tracer) Begin(name, cat string) Region {
	if t == nil {
		return Region{}
	}
	return Region{t: t, name: name, cat: cat, start: time.Since(t.start)}
}

// End closes the region, attaching the given args to the recorded
// event.
func (r Region) End(args ...Arg) {
	if r.t == nil {
		return
	}
	now := time.Since(r.t.start)
	r.t.record(r.name, r.cat, 'X', r.start, now-r.start, args)
}

func (t *Tracer) record(name, cat string, phase byte, ts, dur time.Duration, args []Arg) {
	n := len(args)
	if n > maxArgs {
		n = maxArgs
	}
	t.mu.Lock()
	var sl slot
	sl.name = t.intern(name)
	sl.cat = t.intern(cat)
	sl.phase = phase
	sl.nargs = uint8(n)
	sl.ts = int64(ts)
	sl.dur = int64(dur)
	for i := 0; i < n; i++ {
		sl.keys[i] = t.intern(args[i].Key)
		if args[i].IsStr {
			sl.strMask |= 1 << i
			sl.vals[i] = int64(t.intern(args[i].Str))
		} else {
			sl.vals[i] = args[i].Val
		}
	}
	if len(t.slots) < cap(t.slots) {
		t.slots = append(t.slots, sl)
	} else {
		t.slots[t.next] = sl
		t.next++
		if t.next == cap(t.slots) {
			t.next = 0
		}
	}
	t.total++
	t.mu.Unlock()
}

// Len returns the number of events currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.slots)
}

// Total returns the number of events ever recorded, including those the
// ring has since overwritten.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.slots))
}

// Events returns a copy of the retained events in recording order
// (oldest first), with interned ids resolved back to strings.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.slots))
	emit := func(sl slot) {
		ev := Event{
			Name:  t.strs[sl.name],
			Cat:   t.strs[sl.cat],
			Phase: sl.phase,
			TS:    time.Duration(sl.ts),
			Dur:   time.Duration(sl.dur),
			NArgs: sl.nargs,
		}
		for i := 0; i < int(sl.nargs); i++ {
			if sl.strMask&(1<<i) != 0 {
				ev.Args[i] = Arg{Key: t.strs[sl.keys[i]], Str: t.strs[sl.vals[i]], IsStr: true}
			} else {
				ev.Args[i] = Arg{Key: t.strs[sl.keys[i]], Val: sl.vals[i]}
			}
		}
		out = append(out, ev)
	}
	if len(t.slots) == cap(t.slots) {
		for _, sl := range t.slots[t.next:] {
			emit(sl)
		}
		for _, sl := range t.slots[:t.next] {
			emit(sl)
		}
	} else {
		for _, sl := range t.slots {
			emit(sl)
		}
	}
	return out
}

// WriteJSON writes the retained events as Chrome trace-event JSON
// (Object Format). Timestamps and durations are microseconds, per the
// format; sub-microsecond precision is kept as a fraction. The
// otherData section carries the schema name and the drop count.
func (t *Tracer) WriteJSON(w io.Writer) error {
	return t.WriteJSONFilter(w, "")
}

// WriteJSONFilter is WriteJSON restricted to events tagged with the
// given trace ID (a "trace_id" string arg, as the daemon's exec path
// stamps on solve events). An empty traceID keeps every event, making
// WriteJSON the unfiltered special case.
func (t *Tracer) WriteJSONFilter(w io.Writer, traceID string) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","otherData":{"schema":` +
		quote(TraceEventSchema) + `,"dropped":` + strconv.FormatUint(t.Dropped(), 10) +
		"},\n\"traceEvents\":[\n"); err != nil {
		return err
	}
	n := 0
	for _, ev := range t.Events() {
		if traceID != "" && !eventHasTrace(ev, traceID) {
			continue
		}
		if n > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		n++
		if err := writeEvent(bw, ev); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// eventHasTrace reports whether the event carries a trace_id string
// arg equal to traceID.
func eventHasTrace(ev Event, traceID string) bool {
	for i := 0; i < int(ev.NArgs); i++ {
		if ev.Args[i].IsStr && ev.Args[i].Key == "trace_id" && ev.Args[i].Str == traceID {
			return true
		}
	}
	return false
}

// writeEvent renders one event. All events share pid/tid 1: regions are
// self-contained 'X' slices, so no begin/end pairing across tracks is
// needed; parallel-mode slices simply interleave on the single track.
func writeEvent(bw *bufio.Writer, ev Event) error {
	bw.WriteString(`{"name":`)
	bw.WriteString(quote(ev.Name))
	bw.WriteString(`,"cat":`)
	bw.WriteString(quote(ev.Cat))
	bw.WriteString(`,"ph":"`)
	bw.WriteByte(ev.Phase)
	bw.WriteString(`","pid":1,"tid":1,"ts":`)
	bw.WriteString(micros(ev.TS))
	if ev.Phase == 'X' {
		bw.WriteString(`,"dur":`)
		bw.WriteString(micros(ev.Dur))
	}
	if ev.Phase == 'i' {
		bw.WriteString(`,"s":"t"`)
	}
	if ev.NArgs > 0 {
		bw.WriteString(`,"args":{`)
		for i := 0; i < int(ev.NArgs); i++ {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(quote(ev.Args[i].Key))
			bw.WriteByte(':')
			if ev.Args[i].IsStr {
				bw.WriteString(quote(ev.Args[i].Str))
			} else {
				bw.WriteString(strconv.FormatInt(ev.Args[i].Val, 10))
			}
		}
		bw.WriteByte('}')
	}
	_, err := bw.WriteString("}")
	return err
}

// micros renders a duration as decimal microseconds with nanosecond
// precision.
func micros(d time.Duration) string {
	return strconv.FormatFloat(float64(d.Nanoseconds())/1e3, 'f', 3, 64)
}

// quote JSON-escapes a string. Names and keys are code-controlled ASCII
// in practice, but escaping keeps the export valid for any input.
func quote(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return `"?"`
	}
	return string(b)
}

// WriteFile dumps the trace to path. Empty path is a no-op, and a nil
// tracer writes a valid empty trace, matching the obs profile helpers
// so commands can call it unconditionally at exit.
func (t *Tracer) WriteFile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	return f.Close()
}
