package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegionAndInstantRecording(t *testing.T) {
	tr := New(16)
	rg := tr.Begin("dp/node", "core")
	time.Sleep(time.Millisecond)
	rg.End(I("node", 5), I("set", 12))
	tr.Instant("dp/prune", "core", I("drops", 3))

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	x := evs[0]
	if x.Name != "dp/node" || x.Cat != "core" || x.Phase != 'X' {
		t.Errorf("region event = %+v", x)
	}
	if x.Dur < time.Millisecond {
		t.Errorf("region duration = %v, want ≥ 1ms", x.Dur)
	}
	if x.NArgs != 2 || x.Args[0] != I("node", 5) || x.Args[1] != I("set", 12) {
		t.Errorf("region args = %+v", x.Args[:x.NArgs])
	}
	i := evs[1]
	if i.Phase != 'i' || i.Dur != 0 || i.NArgs != 1 || i.Args[0] != I("drops", 3) {
		t.Errorf("instant event = %+v", i)
	}
	if i.TS < x.TS {
		t.Errorf("instant ts %v before region start %v", i.TS, x.TS)
	}
}

// TestRingOverwrite: a full ring keeps the newest events and counts the
// overwritten ones as dropped.
func TestRingOverwrite(t *testing.T) {
	tr := New(4)
	for k := 0; k < 10; k++ {
		tr.Instant("e", "t", I("k", k))
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Fatalf("total = %d dropped = %d, want 10/6", tr.Total(), tr.Dropped())
	}
	evs := tr.Events()
	for idx, want := range []int64{6, 7, 8, 9} {
		if evs[idx].Args[0].Val != want {
			t.Errorf("event %d: k = %d, want %d (oldest-first order)", idx, evs[idx].Args[0].Val, want)
		}
	}
}

// TestChromeJSONFormat validates the export against the trace-event
// Object Format: a top-level traceEvents array whose entries carry ph,
// ts (µs), name, and args — the shape Perfetto and chrome://tracing
// load.
func TestChromeJSONFormat(t *testing.T) {
	tr := New(16)
	tr.Begin("ard/dfs", "ard").End(I("nodes", 42))
	tr.Instant("note", "ard")

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		OtherData       struct {
			Schema  string `json:"schema"`
			Dropped uint64 `json:"dropped"`
		} `json:"otherData"`
		TraceEvents []struct {
			Name string           `json:"name"`
			Cat  string           `json:"cat"`
			Ph   string           `json:"ph"`
			Pid  int              `json:"pid"`
			Tid  int              `json:"tid"`
			TS   float64          `json:"ts"`
			Dur  *float64         `json:"dur"`
			S    string           `json:"s"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.OtherData.Schema != TraceEventSchema {
		t.Errorf("schema = %q", doc.OtherData.Schema)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("traceEvents = %d, want 2", len(doc.TraceEvents))
	}
	x := doc.TraceEvents[0]
	if x.Ph != "X" || x.Name != "ard/dfs" || x.Cat != "ard" || x.Pid != 1 || x.Tid != 1 {
		t.Errorf("X event = %+v", x)
	}
	if x.Dur == nil || *x.Dur < 0 {
		t.Errorf("X event missing dur: %+v", x)
	}
	if x.Args["nodes"] != 42 {
		t.Errorf("args = %v", x.Args)
	}
	in := doc.TraceEvents[1]
	if in.Ph != "i" || in.S != "t" {
		t.Errorf("instant event = %+v", in)
	}
}

// TestNilTracerInert: every method on a nil tracer (and the Region a
// nil Begin returns) must no-op, and the nil export must still be a
// loadable empty trace.
func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	tr.Instant("x", "y", I("a", 1))
	tr.Begin("x", "y").End()
	if tr.Enabled() {
		t.Error("nil tracer reports Enabled")
	}
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer retained state")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if !json.Valid(buf.Bytes()) || !strings.Contains(buf.String(), "traceEvents") {
		t.Errorf("nil export invalid: %s", buf.String())
	}
	if err := tr.WriteFile(""); err != nil {
		t.Errorf("nil WriteFile: %v", err)
	}
}

// TestNilTracerZeroAlloc guards the disabled-path invariant the DP hot
// path relies on: recording against a nil tracer must not allocate,
// including the variadic args.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		rg := tr.Begin("dp/node", "core")
		rg.End(I("node", 1), I("set", 2), I("segs", 3))
		tr.Instant("dp/prune", "core", I("drops", 4))
	}); n != 0 {
		t.Errorf("nil tracer allocates %.1f per op, want 0", n)
	}
}

// TestLiveTracerZeroAllocPerEvent: even a live tracer must not allocate
// per event once the ring is warm — the ≤5% BenchmarkOptimize overhead
// budget leaves no room for per-node garbage.
func TestLiveTracerZeroAllocPerEvent(t *testing.T) {
	tr := New(64)
	if n := testing.AllocsPerRun(1000, func() {
		rg := tr.Begin("dp/node", "core")
		rg.End(I("node", 1), I("set", 2))
	}); n != 0 {
		t.Errorf("live tracer allocates %.1f per event, want 0", n)
	}
}

// TestConcurrentRecording exercises the ring under -race.
func TestConcurrentRecording(t *testing.T) {
	tr := New(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Begin("work", "test").End(I("worker", w))
			}
		}(w)
	}
	wg.Wait()
	if tr.Total() != 8*500 {
		t.Errorf("total = %d, want %d", tr.Total(), 8*500)
	}
	if tr.Len() != 128 {
		t.Errorf("len = %d, want full ring 128", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("concurrent export invalid JSON")
	}
}

func BenchmarkRecordRegion(b *testing.B) {
	b.Run("live", func(b *testing.B) {
		tr := New(1 << 12)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Begin("dp/node", "core").End(I("node", i), I("set", 7))
		}
	})
	b.Run("nil", func(b *testing.B) {
		var tr *Tracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Begin("dp/node", "core").End(I("node", i), I("set", 7))
		}
	})
}

// TestWriteJSONFilter: a trace_id filter keeps exactly the events
// stamped with that ID, the unfiltered export keeps everything, and a
// filter nothing matches still yields a valid empty trace.
func TestWriteJSONFilter(t *testing.T) {
	tr := New(16)
	tr.Instant("solve", "svc", S("trace_id", "t-1"))
	tr.Instant("solve", "svc", S("trace_id", "t-2"))
	tr.Instant("untagged", "svc")

	events := func(traceID string) []string {
		var buf bytes.Buffer
		if err := tr.WriteJSONFilter(&buf, traceID); err != nil {
			t.Fatalf("WriteJSONFilter(%q): %v", traceID, err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("WriteJSONFilter(%q): invalid JSON: %s", traceID, buf.String())
		}
		var doc struct {
			TraceEvents []struct {
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatal(err)
		}
		var ids []string
		for _, ev := range doc.TraceEvents {
			id, _ := ev.Args["trace_id"].(string)
			ids = append(ids, id)
		}
		return ids
	}

	if got := events("t-1"); len(got) != 1 || got[0] != "t-1" {
		t.Errorf("filter t-1: %v", got)
	}
	if got := events(""); len(got) != 3 {
		t.Errorf("unfiltered: %v", got)
	}
	if got := events("t-404"); len(got) != 0 {
		t.Errorf("filter t-404: %v", got)
	}
}
