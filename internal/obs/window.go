package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Window histogram geometry. Values are recorded in microseconds into
// HDR-style log-linear buckets: each power-of-two octave is split into
// 2^windowSubBits linear sub-buckets, so the value resolution — and
// therefore the worst-case relative error of any reported quantile —
// is bounded by 2^-windowSubBits (6.25%); values below 2^(subBits+1) µs
// are recorded exactly. Values above windowMaxMicros clamp into the
// last bucket.
const (
	windowSubBits   = 4
	windowMaxMicros = 1 << 30 // ≈ 17.9 minutes; far beyond any job deadline
)

// Default window shape: quantiles over the trailing minute, rotated in
// five-second intervals. The effective window is [window−interval,
// window] — the oldest interval leaves whole, not sample by sample.
const (
	DefaultWindow   = time.Minute
	DefaultInterval = 5 * time.Second
)

// windowBucketIdx maps a microsecond value to its bucket. With
// m = bits.Len64(u) and shift = max(0, m−(subBits+1)), the index is
// shift<<subBits + u>>shift: the linear region (shift 0) is exact, and
// every later octave contributes 2^subBits buckets.
func windowBucketIdx(u uint64) int {
	if u > windowMaxMicros {
		u = windowMaxMicros
	}
	shift := bits.Len64(u) - (windowSubBits + 1)
	if shift < 0 {
		shift = 0
	}
	return shift<<windowSubBits + int(u>>shift)
}

// windowBucketRep returns the representative (midpoint) microsecond
// value of a bucket — the inverse of windowBucketIdx up to the bounded
// rounding the bucket width implies.
func windowBucketRep(idx int) float64 {
	block := idx >> windowSubBits
	if block <= 1 {
		return float64(idx) // linear region: one bucket per µs
	}
	shift := block - 1
	lo := uint64(idx-shift<<windowSubBits) << shift
	return float64(lo) + float64(uint64(1)<<shift)/2
}

var windowNumBuckets = windowBucketIdx(windowMaxMicros) + 1

// winInterval is one rotation slot: the epoch it currently holds (the
// interval-granular timestamp) plus its bucket counts. Counts are
// plain atomics; the mutex in WindowHist serializes only the rare
// epoch-rollover reset.
type winInterval struct {
	epoch  int64
	count  int64
	sum    uint64 // float64 bits of the sum in milliseconds
	counts []int64
}

// WindowHist is a sliding-window latency histogram: observations land
// in log-linear buckets of the current interval, intervals expire
// wholesale as the window slides, and Stats merges the live intervals
// into p50/p90/p99. Observe is lock-free in the steady state (atomic
// adds; a mutex is taken only when an interval rotates), so it is safe
// on the daemon's per-job completion path with many concurrent
// workers. All methods are nil-safe.
//
// The reported quantiles carry two bounded errors: the bucket
// resolution (relative error ≤ 2^-4 = 6.25%, exact below 32 µs) and
// the window granularity (the window covers between window−interval
// and window of trailing wall time). See DESIGN.md §10.
type WindowHist struct {
	interval time.Duration
	ivals    []winInterval

	resetMu sync.Mutex
	now     func() time.Time // injectable for rotation tests

	// Exemplar storage: one slot per interval holding the worst traced
	// observation that landed in it. Guarded by its own mutex so the
	// lock-free Observe fast path is untouched; only ObserveEx (called
	// once per finished job) and Stats touch it.
	exMu sync.Mutex
	ex   []winExemplar
}

// winExemplar is the worst traced observation of one interval: the
// value plus the request's trace ID, so a dashboard quantile can link
// straight to the distributed trace that produced it.
type winExemplar struct {
	epoch   int64
	ms      float64
	traceID string
}

// NewWindowHist builds a sliding-window histogram covering the given
// window rotated at the given interval (DefaultWindow/DefaultInterval
// when non-positive). The window is rounded up to a whole number of
// intervals.
func NewWindowHist(window, interval time.Duration) *WindowHist {
	if interval <= 0 {
		interval = DefaultInterval
	}
	if window <= 0 {
		window = DefaultWindow
	}
	n := int((window + interval - 1) / interval)
	if n < 1 {
		n = 1
	}
	w := &WindowHist{interval: interval, ivals: make([]winInterval, n), ex: make([]winExemplar, n), now: time.Now}
	for i := range w.ivals {
		w.ivals[i].epoch = -1
		w.ivals[i].counts = make([]int64, windowNumBuckets)
	}
	return w
}

// epochOf converts a wall time to the interval-granular epoch counter.
func (w *WindowHist) epochOf(t time.Time) int64 {
	return t.UnixNano() / int64(w.interval)
}

// Observe records one latency in milliseconds.
func (w *WindowHist) Observe(ms float64) {
	if w == nil {
		return
	}
	if ms < 0 {
		ms = 0
	}
	e := w.epochOf(w.now())
	iv := &w.ivals[int(e%int64(len(w.ivals)))]
	if atomic.LoadInt64(&iv.epoch) != e {
		w.rotate(iv, e)
	}
	idx := windowBucketIdx(uint64(ms * 1000))
	atomic.AddInt64(&iv.counts[idx], 1)
	atomic.AddInt64(&iv.count, 1)
	addFloatBits(&iv.sum, ms)
}

// ObserveEx records one latency like Observe and, when the observation
// carries a trace ID, offers it as the interval's exemplar: the slot
// keeps the largest traced value per interval, so the exported
// exemplar names a trace that actually sits in the window's tail.
func (w *WindowHist) ObserveEx(ms float64, traceID string) {
	w.Observe(ms)
	if w == nil || traceID == "" {
		return
	}
	if ms < 0 {
		ms = 0
	}
	e := w.epochOf(w.now())
	i := int(e % int64(len(w.ivals)))
	w.exMu.Lock()
	if w.ex[i].epoch != e {
		w.ex[i] = winExemplar{epoch: e}
	}
	if w.ex[i].traceID == "" || ms >= w.ex[i].ms {
		w.ex[i].ms, w.ex[i].traceID = ms, traceID
	}
	w.exMu.Unlock()
}

// rotate resets a slot whose interval has expired to hold the new
// epoch. A concurrent observer that raced the rollover may land one
// sample in the neighboring interval — within the window-granularity
// error bound, never lost from the totals of its interval.
func (w *WindowHist) rotate(iv *winInterval, e int64) {
	w.resetMu.Lock()
	defer w.resetMu.Unlock()
	if atomic.LoadInt64(&iv.epoch) == e {
		return // another writer rotated it first
	}
	for i := range iv.counts {
		atomic.StoreInt64(&iv.counts[i], 0)
	}
	atomic.StoreInt64(&iv.count, 0)
	atomic.StoreUint64(&iv.sum, 0)
	atomic.StoreInt64(&iv.epoch, e)
}

// WindowStats is one merged view of the live window.
type WindowStats struct {
	// Count and Sum cover every observation still inside the window;
	// Sum is in milliseconds.
	Count int64
	Sum   float64
	// P50, P90, P99 are the quantile estimates in milliseconds (0 when
	// the window is empty).
	P50, P90, P99 float64
	// ExemplarMs/ExemplarTrace name the worst traced observation still
	// inside the window (ObserveEx); ExemplarTrace is empty when no
	// traced observation is live.
	ExemplarMs    float64
	ExemplarTrace string
}

// Stats merges the intervals still inside the window and computes the
// quantiles. Safe to call concurrently with Observe; the view is
// approximately consistent (each bucket is read atomically).
func (w *WindowHist) Stats() WindowStats {
	var s WindowStats
	if w == nil {
		return s
	}
	e := w.epochOf(w.now())
	oldest := e - int64(len(w.ivals)) + 1
	merged := make([]int64, windowNumBuckets)
	for i := range w.ivals {
		iv := &w.ivals[i]
		ep := atomic.LoadInt64(&iv.epoch)
		if ep < oldest || ep > e {
			continue
		}
		for b := range merged {
			merged[b] += atomic.LoadInt64(&iv.counts[b])
		}
		s.Count += atomic.LoadInt64(&iv.count)
		s.Sum += math.Float64frombits(atomic.LoadUint64(&iv.sum))
	}
	if s.Count == 0 {
		return s
	}
	s.P50 = windowQuantile(merged, s.Count, 0.50)
	s.P90 = windowQuantile(merged, s.Count, 0.90)
	s.P99 = windowQuantile(merged, s.Count, 0.99)
	w.exMu.Lock()
	for i := range w.ex {
		x := &w.ex[i]
		if x.traceID == "" || x.epoch < oldest || x.epoch > e {
			continue
		}
		if s.ExemplarTrace == "" || x.ms > s.ExemplarMs {
			s.ExemplarMs, s.ExemplarTrace = x.ms, x.traceID
		}
	}
	w.exMu.Unlock()
	return s
}

// Window returns the configured window span.
func (w *WindowHist) Window() time.Duration {
	if w == nil {
		return 0
	}
	return w.interval * time.Duration(len(w.ivals))
}

// windowQuantile finds the q-quantile by nearest rank over merged
// bucket counts, returning the bucket's representative value in
// milliseconds.
func windowQuantile(merged []int64, total int64, q float64) float64 {
	rank := int64(q*float64(total-1)) + 1 // 1-based nearest rank
	if rank > total {
		rank = total
	}
	var cum int64
	for idx, c := range merged {
		cum += c
		if cum >= rank {
			return windowBucketRep(idx) / 1000
		}
	}
	return windowBucketRep(len(merged)-1) / 1000
}

// Window returns the named sliding-window histogram, creating it on
// first use with the given window/interval (defaults when
// non-positive). Like the other metric kinds, later calls ignore the
// shape arguments and a nil registry returns a nil (inert) histogram.
func (r *Registry) Window(name string, window, interval time.Duration) *WindowHist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.windows == nil {
		r.windows = map[string]*WindowHist{}
	}
	w, ok := r.windows[name]
	if !ok {
		w = NewWindowHist(window, interval)
		r.windows[name] = w
	}
	return w
}
