package bench

import (
	"path/filepath"
	"testing"
)

// TestRunQuickSuite runs the CI-sized suite once and checks the report
// shape: schema, every workload present with counters and span phases.
func TestRunQuickSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the MSRI DP; skipped with -short")
	}
	rep, err := Run(Config{Suite: "quick", Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema {
		t.Errorf("schema = %q, want %q", rep.Schema, Schema)
	}
	want := map[string]bool{"ard/16pin": false, "msri/10pin": false, "msri/12pin": false, "msri/20pin": false}
	for _, wl := range rep.Workloads {
		if _, ok := want[wl.Name]; !ok {
			t.Errorf("unexpected workload %q", wl.Name)
			continue
		}
		want[wl.Name] = true
		if len(wl.Counters) == 0 {
			t.Errorf("%s: no counters", wl.Name)
		}
		if len(wl.Phases) == 0 {
			t.Errorf("%s: no span phases captured", wl.Name)
		}
		if wl.WallSeconds <= 0 {
			t.Errorf("%s: wall_seconds = %g", wl.Name, wl.WallSeconds)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("workload %q missing from report", name)
		}
	}

	// Round-trip through the file format.
	path := filepath.Join(t.TempDir(), "BENCH_msrnet.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Workloads) != len(rep.Workloads) || back.Suite != rep.Suite {
		t.Errorf("round-trip mismatch: %+v vs %+v", back, rep)
	}

	// A report never regresses against itself.
	regs, err := Compare(rep, rep, 0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("self-comparison found regressions: %v", regs)
	}
}

// TestWasteGate exercises the waste-budget comparison on synthetic
// reports: absolute per-mille deadband, missing-counter and
// missing-workload handling.
func TestWasteGate(t *testing.T) {
	base := Report{Schema: Schema, Suite: "quick", Workloads: []Workload{
		{Name: "msri/12pin", Counters: map[string]int64{"waste_per_mille": 460}},
		{Name: "msri/10pin", Counters: map[string]int64{"waste_per_mille": 200}},
		{Name: "ard/16pin", Counters: map[string]int64{"nodes": 60}},
	}}
	cur := Report{Schema: Schema, Suite: "quick", Workloads: []Workload{
		{Name: "msri/12pin", Counters: map[string]int64{"waste_per_mille": 464}}, // within slack
		{Name: "msri/10pin", Counters: map[string]int64{"waste_per_mille": 210}}, // past slack
		{Name: "ard/16pin", Counters: map[string]int64{"nodes": 60}},
	}}
	regs, err := WasteRegressions(base, cur, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Workload != "msri/10pin" || regs[0].Metric != "waste_per_mille" {
		t.Fatalf("regs = %v, want one msri/10pin waste regression", regs)
	}
	// Improvement passes.
	cur.Workloads[1].Counters["waste_per_mille"] = 150
	if regs, _ := WasteRegressions(base, cur, 5); len(regs) != 0 {
		t.Errorf("improvement flagged: %v", regs)
	}
	// A workload that silently loses its waste counter must fail.
	delete(cur.Workloads[0].Counters, "waste_per_mille")
	if regs, _ := WasteRegressions(base, cur, 5); len(regs) != 1 {
		t.Errorf("missing counter not flagged: %v", regs)
	}
	// As must a dropped workload.
	cur.Workloads = cur.Workloads[2:]
	if regs, _ := WasteRegressions(base, cur, 5); len(regs) != 2 {
		t.Errorf("missing workloads not flagged: %v", regs)
	}
}

// TestProfileMSRI: the msrnetprof entry point profiles a committed
// workload and its profile reconciles with the run stats.
func TestProfileMSRI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the MSRI DP; skipped with -short")
	}
	res, err := ProfileMSRI("msri/12pin")
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("no lifecycle profile attached")
	}
	if got := res.Profile.TotalDeaths(); got != res.Stats.Dropped {
		t.Errorf("profile deaths %d != Stats.Dropped %d", got, res.Stats.Dropped)
	}
	if _, err := ProfileMSRI("ard/16pin"); err == nil {
		t.Error("non-msri workload accepted")
	}
	if _, err := ProfileMSRI("msri/11pin"); err == nil {
		t.Error("uncommitted pin count accepted")
	}
}

// TestCompareDetectsRegressions exercises the comparison rules on
// synthetic reports, without running workloads.
func TestCompareDetectsRegressions(t *testing.T) {
	base := Report{Schema: Schema, Suite: "quick", Workloads: []Workload{
		{Name: "msri/10pin", Counters: map[string]int64{"solutions_created": 1000, "prune_calls": 40}, WallSeconds: 1.0},
		{Name: "ard/16pin", Counters: map[string]int64{"nodes": 60}, WallSeconds: 0.1},
	}}

	cur := Report{Schema: Schema, Suite: "quick", Workloads: []Workload{
		// solutions_created +50% (past 25%); prune_calls down (fine).
		{Name: "msri/10pin", Counters: map[string]int64{"solutions_created": 1500, "prune_calls": 30}, WallSeconds: 3.0},
		// Workload dropped entirely: must flag, not silently pass.
	}}
	regs, err := Compare(base, cur, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want counter blow-up + missing workload", regs)
	}
	if regs[0].Workload != "msri/10pin" || regs[0].Metric != "solutions_created" {
		t.Errorf("first regression = %+v", regs[0])
	}
	if regs[1].Metric != "(missing workload)" {
		t.Errorf("second regression = %+v", regs[1])
	}

	// Wall time is only compared when opted in.
	cur.Workloads = append(cur.Workloads, base.Workloads[1])
	cur.Workloads[0].Counters["solutions_created"] = 1000
	if regs, _ := Compare(base, cur, 0.25, 0); len(regs) != 0 {
		t.Errorf("time ignored by default, got %v", regs)
	}
	regs, err = Compare(base, cur, 0.25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "wall_seconds" {
		t.Errorf("time regression = %v, want one wall_seconds entry", regs)
	}

	// Suite and schema mismatches are errors, not silent passes.
	if _, err := Compare(Report{Schema: Schema, Suite: "full"}, cur, 0.25, 0); err == nil {
		t.Error("suite mismatch not rejected")
	}
	if _, err := Compare(Report{Schema: "other/v9", Suite: "quick"}, cur, 0.25, 0); err == nil {
		t.Error("schema mismatch not rejected")
	}
}
