// Package bench is the measurement half of the perf-regression
// observatory behind cmd/benchreport: a fixed set of paper-derived
// workloads (ARD characterization on §VI-style random nets, MSRI
// dynamic-program sweeps), each run under its own obs.Registry so the
// report carries per-phase span timings next to the DP's deterministic
// work counters.
//
// Reports are schema-versioned JSON. Regression detection compares the
// deterministic counters (solutions created, prune calls, set sizes…)
// by default — those are machine-independent, so a committed baseline
// stays meaningful on any CI runner — and treats wall-clock as opt-in,
// since it only means something against a baseline from the same
// machine.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/netgen"
	"msrnet/internal/obs"
	"msrnet/internal/rctree"
	"msrnet/internal/solveprof"
)

// Schema identifies the report layout for downstream tooling.
const Schema = "msrnet-bench/v1"

// Report is one observatory run: every workload of a suite, measured.
type Report struct {
	Schema    string     `json:"schema"`
	Suite     string     `json:"suite"`
	Repeats   int        `json:"repeats"`
	Workloads []Workload `json:"workloads"`
}

// Workload is one measured workload. Counters are deterministic work
// measures (identical across repeats, enforced by Run); Phases are the
// obs span tree of the best repeat, flattened to '/'-joined paths;
// WallSeconds is the best-of-repeats wall time.
type Workload struct {
	Name        string           `json:"name"`
	Counters    map[string]int64 `json:"counters"`
	Phases      []Phase          `json:"phases,omitempty"`
	WallSeconds float64          `json:"wall_seconds"`
}

// Phase is one flattened span-tree node.
type Phase struct {
	Path    string  `json:"path"`
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// Config selects the workload suite and measurement effort.
type Config struct {
	Suite   string // "quick" (CI-sized) or "full"; default "quick"
	Repeats int    // wall-time repeats, best-of; default 3
}

// workload pairs a stable name with a body that does the work and
// returns its deterministic counters. The registry collects phase spans
// (and any library counters wired through obs.Recorder).
type workload struct {
	name string
	run  func(reg *obs.Registry) (map[string]int64, error)
}

// ardWorkload measures the linear-time Fig. 2 ARD pass: the per-call
// cost is microseconds, so it is iterated to get a measurable wall
// time. Counters pin the input shape so a silent netgen change shows up
// as a counter diff rather than a mystery slowdown.
func ardWorkload(pins int, seed int64, iters int) workload {
	return workload{
		name: fmt.Sprintf("ard/%dpin", pins),
		run: func(reg *obs.Registry) (map[string]int64, error) {
			tr, err := netgen.Generate(seed, netgen.Defaults(pins))
			if err != nil {
				return nil, err
			}
			rt := tr.RootAt(tr.Terminals()[0])
			net := rctree.NewNet(rt, buslib.Default(), rctree.Assignment{})
			var rec obs.Recorder
			if reg != nil {
				rec = reg
			}
			for i := 0; i < iters; i++ {
				ard.Compute(net, ard.Options{Obs: rec})
			}
			return map[string]int64{
				"nodes":      int64(tr.NumNodes()),
				"sources":    int64(len(tr.Sources())),
				"sinks":      int64(len(tr.Sinks())),
				"iterations": int64(iters),
			}, nil
		},
	}
}

// msriParams maps each committed MSRI workload to its netgen seed —
// the single source of truth shared by the suites and ProfileMSRI.
var msriParams = map[int]int64{10: 1, 12: 3, 16: 7, 20: 1, 32: 7}

// MSRIWorkloadName returns the canonical workload name for a pin count.
func MSRIWorkloadName(pins int) string { return fmt.Sprintf("msri/%dpin", pins) }

// msriRun executes one committed MSRI workload with lifecycle profiling
// on. Profiling is pure observation (asserted by the core tests), so
// the Stats counters are identical to an unprofiled run — the committed
// baseline stays valid.
func msriRun(pins int, rec obs.Recorder) (*core.Result, error) {
	seed, ok := msriParams[pins]
	if !ok {
		return nil, fmt.Errorf("bench: no committed msri workload for %d pins", pins)
	}
	tr, err := netgen.Generate(seed, netgen.Defaults(pins))
	if err != nil {
		return nil, err
	}
	rt := tr.RootAt(tr.Terminals()[0])
	return core.Optimize(rt, buslib.Default(), core.Options{Repeaters: true, Obs: rec, Profile: true})
}

// ProfileMSRI runs one committed MSRI workload ("msri/12pin" form) and
// returns its result with the lifecycle profile attached — the entry
// point cmd/msrnetprof uses to profile a bench workload in place.
func ProfileMSRI(name string) (*core.Result, error) {
	var pins int
	if _, err := fmt.Sscanf(name, "msri/%dpin", &pins); err != nil {
		return nil, fmt.Errorf("bench: workload %q is not an msri workload (want msri/<N>pin)", name)
	}
	return msriRun(pins, nil)
}

// msriWorkload measures one optimal repeater-insertion run (§IV DP).
// The Stats counters are the DP's work profile: any algorithmic
// regression — weaker pruning, set blow-up, PWL segment growth — moves
// them, on every machine identically. The lifecycle profile adds the
// waste counters the CI waste gate baselines: total/wasted PWL segment
// ops and the integer waste ratio.
func msriWorkload(pins int) workload {
	return workload{
		name: MSRIWorkloadName(pins),
		run: func(reg *obs.Registry) (map[string]int64, error) {
			var rec obs.Recorder
			if reg != nil {
				rec = reg
			}
			sp := reg.StartSpan("msri/optimize")
			res, err := msriRun(pins, rec)
			if err != nil {
				return nil, err
			}
			sp.End()
			p := res.Profile
			return map[string]int64{
				"solutions_created": int64(res.Stats.SolutionsCreated),
				"max_set_size":      int64(res.Stats.MaxSetSize),
				"max_pwl_segs":      int64(res.Stats.MaxSegs),
				"prune_calls":       int64(res.Stats.PruneCalls),
				"dropped":           int64(res.Stats.Dropped),
				"suite_points":      int64(len(res.Suite)),
				"total_seg_ops":     p.TotalSegOps,
				"wasted_seg_ops":    p.WastedSegOps,
				"waste_per_mille":   solveprof.PerMille(p.WastedSegOps, p.TotalSegOps),
			}, nil
		},
	}
}

// suiteWorkloads resolves a suite name. The quick suite is sized for a
// CI smoke job (a few seconds end to end); full adds the 16-pin DP,
// which dominates the runtime.
func suiteWorkloads(suite string) ([]workload, error) {
	switch suite {
	case "", "quick":
		return []workload{
			ardWorkload(16, 7, 256),
			msriWorkload(10),
			msriWorkload(12),
			msriWorkload(20),
		}, nil
	case "full":
		return []workload{
			ardWorkload(16, 7, 256),
			ardWorkload(24, 11, 256),
			msriWorkload(10),
			msriWorkload(12),
			msriWorkload(16),
			msriWorkload(20),
			msriWorkload(32),
		}, nil
	default:
		return nil, fmt.Errorf("bench: unknown suite %q (want quick or full)", suite)
	}
}

// Run executes the configured suite and returns the report. Each
// workload is repeated Config.Repeats times; wall time and phases come
// from the fastest repeat, and the deterministic counters must agree
// across repeats — a mismatch means the workload is nondeterministic
// and the report would be meaningless as a baseline, so Run fails.
func Run(cfg Config) (Report, error) {
	if cfg.Repeats <= 0 {
		cfg.Repeats = 3
	}
	if cfg.Suite == "" {
		cfg.Suite = "quick"
	}
	wls, err := suiteWorkloads(cfg.Suite)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Schema: Schema, Suite: cfg.Suite, Repeats: cfg.Repeats}
	for _, wl := range wls {
		var (
			best     time.Duration
			counters map[string]int64
			phases   []Phase
		)
		for i := 0; i < cfg.Repeats; i++ {
			reg := obs.New()
			start := time.Now()
			c, err := wl.run(reg)
			elapsed := time.Since(start)
			if err != nil {
				return Report{}, fmt.Errorf("bench: workload %s: %w", wl.name, err)
			}
			if counters != nil && !sameCounters(counters, c) {
				return Report{}, fmt.Errorf("bench: workload %s: counters differ across repeats (%v vs %v)",
					wl.name, counters, c)
			}
			if i == 0 || elapsed < best {
				best = elapsed
				phases = flattenSpans(reg.Snapshot().Spans, "")
			}
			counters = c
		}
		rep.Workloads = append(rep.Workloads, Workload{
			Name:        wl.name,
			Counters:    counters,
			Phases:      phases,
			WallSeconds: best.Seconds(),
		})
	}
	return rep, nil
}

func sameCounters(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func flattenSpans(spans []obs.SpanSnapshot, prefix string) []Phase {
	var out []Phase
	for _, sp := range spans {
		path := sp.Name
		if prefix != "" {
			path = prefix + "/" + sp.Name
		}
		out = append(out, Phase{Path: path, Count: sp.Count, Seconds: sp.Seconds})
		out = append(out, flattenSpans(sp.Children, path)...)
	}
	return out
}

// Regression is one metric that got worse past its threshold.
type Regression struct {
	Workload string  `json:"workload"`
	Metric   string  `json:"metric"`
	Base     float64 `json:"base"`
	Current  float64 `json:"current"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %g -> %g (%+.1f%%)",
		r.Workload, r.Metric, r.Base, r.Current, 100*(r.Current-r.Base)/nonzero(r.Base))
}

func nonzero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// Compare checks cur against base. A counter that grew beyond
// base·(1+counterTol) is a regression (shrinking is an improvement and
// passes); with timeTol > 0, wall time is checked the same way. A
// workload present in base but missing from cur is always a
// regression — a silently dropped workload must not read as green.
func Compare(base, cur Report, counterTol, timeTol float64) ([]Regression, error) {
	if base.Schema != Schema {
		return nil, fmt.Errorf("bench: baseline schema %q, want %q", base.Schema, Schema)
	}
	if base.Suite != cur.Suite {
		return nil, fmt.Errorf("bench: suite mismatch: baseline %q vs current %q", base.Suite, cur.Suite)
	}
	curByName := make(map[string]Workload, len(cur.Workloads))
	for _, wl := range cur.Workloads {
		curByName[wl.Name] = wl
	}
	var regs []Regression
	for _, bw := range base.Workloads {
		cw, ok := curByName[bw.Name]
		if !ok {
			regs = append(regs, Regression{Workload: bw.Name, Metric: "(missing workload)"})
			continue
		}
		names := make([]string, 0, len(bw.Counters))
		for name := range bw.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			b, c := float64(bw.Counters[name]), float64(cw.Counters[name])
			if c > b*(1+counterTol) {
				regs = append(regs, Regression{Workload: bw.Name, Metric: name, Base: b, Current: c})
			}
		}
		if timeTol > 0 && cw.WallSeconds > bw.WallSeconds*(1+timeTol) {
			regs = append(regs, Regression{
				Workload: bw.Name, Metric: "wall_seconds",
				Base: bw.WallSeconds, Current: cw.WallSeconds,
			})
		}
	}
	return regs, nil
}

// WasteRegressions is the CI waste-budget gate: for every baselined
// workload carrying a waste_per_mille counter, the current ratio may
// not exceed the baseline by more than slackPerMille (an absolute
// deadband in per-mille points, so a 46.1% → 46.3% wobble passes at
// slack 5 while a structural regression fails). This is deliberately
// tighter than the generic Compare tolerance: the waste ratio is a
// ratio of two deterministic counters, so any genuine movement is a
// solver change, not measurement noise.
func WasteRegressions(base, cur Report, slackPerMille int64) ([]Regression, error) {
	if base.Schema != Schema {
		return nil, fmt.Errorf("bench: baseline schema %q, want %q", base.Schema, Schema)
	}
	curByName := make(map[string]Workload, len(cur.Workloads))
	for _, wl := range cur.Workloads {
		curByName[wl.Name] = wl
	}
	var regs []Regression
	for _, bw := range base.Workloads {
		b, ok := bw.Counters["waste_per_mille"]
		if !ok {
			continue
		}
		cw, found := curByName[bw.Name]
		if !found {
			regs = append(regs, Regression{Workload: bw.Name, Metric: "(missing workload)"})
			continue
		}
		c, ok := cw.Counters["waste_per_mille"]
		if !ok {
			regs = append(regs, Regression{Workload: bw.Name, Metric: "waste_per_mille", Base: float64(b)})
			continue
		}
		if c > b+slackPerMille {
			regs = append(regs, Regression{
				Workload: bw.Name, Metric: "waste_per_mille",
				Base: float64(b), Current: float64(c),
			})
		}
	}
	return regs, nil
}

// WriteFile writes the report as indented JSON.
func (r Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return f.Close()
}

// Load reads a report and validates its schema.
func Load(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if r.Schema != Schema {
		return Report{}, fmt.Errorf("bench: %s has schema %q, want %q", path, r.Schema, Schema)
	}
	return r, nil
}
