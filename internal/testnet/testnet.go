// Package testnet generates deterministic random multisource nets,
// technologies and repeater assignments for tests and benchmarks. It is
// deliberately independent of the optimizer so that the same fixtures can
// cross-check the Elmore engine, the linear-time ARD algorithm and the
// dynamic program against each other.
package testnet

import (
	"fmt"
	"math/rand"

	"msrnet/internal/buslib"
	"msrnet/internal/geom"
	"msrnet/internal/rctree"
	"msrnet/internal/topo"
)

// Config controls random net generation.
type Config struct {
	Backbone     int     // number of internal (Steiner) backbone nodes, ≥ 1
	TermProb     float64 // probability a backbone node gets a terminal leaf
	MaxEdgeLen   float64 // µm, uniform edge lengths in (0, MaxEdgeLen]
	InsSpacing   float64 // if > 0, run PlaceInsertionPoints with this spacing
	AllRoles     bool    // every terminal is both source and sink, AAT=Q=0
	ZeroLenEdges bool    // occasionally emit zero-length edges
}

// DefaultConfig returns a mid-size random net configuration.
func DefaultConfig() Config {
	return Config{
		Backbone:   8,
		TermProb:   0.7,
		MaxEdgeLen: 2000,
		InsSpacing: 900,
	}
}

// RandTree builds a random routing tree per cfg using r. It guarantees at
// least two terminals, at least one source and at least one sink.
func RandTree(r *rand.Rand, cfg Config) *topo.Tree {
	t := topo.New()
	// Random recursive backbone of Steiner nodes.
	ids := make([]int, 0, cfg.Backbone)
	for i := 0; i < cfg.Backbone; i++ {
		p := geom.Pt(r.Float64()*10000, r.Float64()*10000)
		id := t.AddSteiner(p)
		if i > 0 {
			parent := ids[r.Intn(len(ids))]
			length := r.Float64()*cfg.MaxEdgeLen + 1
			if cfg.ZeroLenEdges && r.Intn(8) == 0 {
				length = 0
			}
			t.AddEdge(parent, id, length)
		}
		ids = append(ids, id)
	}
	// Attach terminal leaves.
	nterm := 0
	for _, id := range ids {
		if r.Float64() < cfg.TermProb {
			attachTerminal(t, r, id, nterm, cfg)
			nterm++
		}
	}
	for nterm < 2 {
		attachTerminal(t, r, ids[r.Intn(len(ids))], nterm, cfg)
		nterm++
	}
	ensureRoles(t, r)
	if cfg.InsSpacing > 0 {
		t.PlaceInsertionPoints(cfg.InsSpacing)
	}
	return t
}

func attachTerminal(t *topo.Tree, r *rand.Rand, at, idx int, cfg Config) {
	p := geom.Pt(r.Float64()*10000, r.Float64()*10000)
	term := RandTerminal(r, fmt.Sprintf("t%d", idx), cfg.AllRoles)
	id := t.AddTerminal(p, term)
	length := r.Float64()*cfg.MaxEdgeLen + 1
	if cfg.ZeroLenEdges && r.Intn(8) == 0 {
		length = 0
	}
	t.AddEdge(at, id, length)
}

// RandTerminal returns a terminal with randomized electrical parameters.
// When allRoles is set the terminal is source+sink with AAT = Q = 0,
// matching the paper's Table II setup.
func RandTerminal(r *rand.Rand, name string, allRoles bool) buslib.Terminal {
	term := buslib.Terminal{
		Name:            name,
		IsSource:        true,
		IsSink:          true,
		Cin:             0.02 + r.Float64()*0.2,
		Rout:            0.1 + r.Float64()*0.8,
		DriverIntrinsic: r.Float64() * 0.3,
	}
	if !allRoles {
		term.AAT = r.Float64() * 2
		term.Q = r.Float64() * 2
		switch r.Intn(3) {
		case 0:
			term.IsSink = false
		case 1:
			term.IsSource = false
		}
	}
	return term
}

// ensureRoles guarantees at least one source and one sink exist.
func ensureRoles(t *topo.Tree, r *rand.Rand) {
	terms := t.Terminals()
	if len(t.Sources()) == 0 {
		id := terms[r.Intn(len(terms))]
		term := t.Node(id).Term
		term.IsSource = true
		t.SetTerminal(id, term)
	}
	if len(t.Sinks()) == 0 {
		id := terms[r.Intn(len(terms))]
		term := t.Node(id).Term
		term.IsSink = true
		t.SetTerminal(id, term)
	}
}

// RandTech returns a randomized technology with nRep repeater types
// (possibly asymmetric) and nDrv driver options.
func RandTech(r *rand.Rand, nRep, nDrv int) buslib.Tech {
	tech := buslib.Tech{
		Wire: buslib.Wire{
			ResPerUm: 2e-5 + r.Float64()*2e-4,
			CapPerUm: 2e-5 + r.Float64()*3e-4,
		},
		PrevStageRes: 0.4,
		NextStageCap: 0.2,
	}
	for i := 0; i < nRep; i++ {
		rep := buslib.Repeater{
			Name:    fmt.Sprintf("rep%d", i),
			DelayAB: r.Float64() * 0.3,
			DelayBA: r.Float64() * 0.3,
			RoutAB:  0.05 + r.Float64()*0.8,
			RoutBA:  0.05 + r.Float64()*0.8,
			CapA:    0.01 + r.Float64()*0.15,
			CapB:    0.01 + r.Float64()*0.15,
			Cost:    1 + float64(r.Intn(4)),
		}
		if r.Intn(2) == 0 {
			// Symmetric device, as built from a buffer pair.
			rep.DelayBA, rep.RoutBA, rep.CapB = rep.DelayAB, rep.RoutAB, rep.CapA
		}
		tech.Repeaters = append(tech.Repeaters, rep)
	}
	for i := 0; i < nDrv; i++ {
		k := float64(i + 1)
		tech.Drivers = append(tech.Drivers, buslib.Driver{
			Name:      fmt.Sprintf("drv%dX", i+1),
			Intrinsic: 0.1 + 0.4*0.05*k,
			Rout:      0.4 / k,
			Cost:      k,
		})
	}
	return tech
}

// RandAssignment places a random repeater with random orientation at each
// insertion point with probability p, in the rooted frame rt.
func RandAssignment(r *rand.Rand, rt *topo.Rooted, tech buslib.Tech, p float64) rctree.Assignment {
	a := rctree.Assignment{Repeaters: map[int]rctree.Placed{}}
	for _, id := range rt.Tree.Insertions() {
		if r.Float64() < p && len(tech.Repeaters) > 0 {
			a.Repeaters[id] = rctree.Placed{
				Rep:     tech.Repeaters[r.Intn(len(tech.Repeaters))],
				ASideUp: r.Intn(2) == 0,
			}
		}
	}
	return a
}

// RootTerminal returns the lowest-id terminal, the conventional root.
func RootTerminal(t *topo.Tree) int {
	terms := t.Terminals()
	if len(terms) == 0 {
		panic("testnet: no terminals")
	}
	return terms[0]
}
