package jobstore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"msrnet/internal/faultinject"
	"msrnet/internal/obs"
)

func openT(t *testing.T, dir string, opts ...func(*Options)) (*Store, *Replay) {
	t.Helper()
	opt := Options{Dir: dir}
	for _, f := range opts {
		f(&opt)
	}
	s, rep, err := Open(opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rep
}

func appendT(t *testing.T, s *Store, recs ...*Record) {
	t.Helper()
	if err := s.Append(context.Background(), recs...); err != nil {
		t.Fatalf("Append: %v", err)
	}
}

func accepted(uid, tenant string, job string) *Record {
	return &Record{Type: TypeAccepted, UID: uid, Tenant: tenant, Job: json.RawMessage(job)}
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	best, bestN := "", -1
	for _, e := range ents {
		if n := segIndex(e.Name()); n > bestN {
			best, bestN = filepath.Join(dir, e.Name()), n
		}
	}
	if best == "" {
		t.Fatal("no segment files")
	}
	return best
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if segIndex(e.Name()) >= 0 {
			n++
		}
	}
	return n
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	if err := s.Append(context.Background(), accepted("x", "t", `{}`)); err != nil {
		t.Fatalf("nil Append: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	s.SetLive(7)
	if s.Enabled() {
		t.Fatal("nil store reports Enabled")
	}
	if s.Dir() != "" {
		t.Fatal("nil store reports a dir")
	}
}

func TestRoundTripAndUIDAssignment(t *testing.T) {
	dir := t.TempDir()
	s, rep := openT(t, dir)
	if len(rep.Entries) != 0 || rep.Torn != 0 {
		t.Fatalf("fresh dir replayed %d entries, torn=%d", len(rep.Entries), rep.Torn)
	}
	a := accepted("", "acme", `{"nets":[1]}`)
	a.Label, a.TraceID, a.Key, a.NetKey = "lbl", "trc", "cache-key", "net-key"
	appendT(t, s, a)
	if a.UID == "" {
		t.Fatal("Append left accepted UID empty")
	}
	if a.Schema != Schema {
		t.Fatalf("Append stamped schema %q", a.Schema)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, rep2 := mustReopen(t, dir)
	if len(rep2.Entries) != 1 {
		t.Fatalf("replayed %d entries, want 1", len(rep2.Entries))
	}
	e := rep2.Entries[0]
	if e.UID != a.UID || e.Tenant != "acme" || e.Label != "lbl" || e.TraceID != "trc" ||
		e.Key != "cache-key" || e.NetKey != "net-key" {
		t.Fatalf("replayed identity mismatch: %+v", e)
	}
	if string(e.Job) != `{"nets":[1]}` {
		t.Fatalf("replayed job %s", e.Job)
	}
	if !e.Pending() {
		t.Fatal("entry with no result not pending")
	}
}

func mustReopen(t *testing.T, dir string, opts ...func(*Options)) (*Store, *Replay) {
	t.Helper()
	s, rep := openT(t, dir, opts...)
	t.Cleanup(func() { s.Close() })
	return s, rep
}

func TestResultAndAckLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	a := accepted("", "t1", `{"j":1}`)
	appendT(t, s, a)
	appendT(t, s, &Record{Type: TypeResult, UID: a.UID, Result: json.RawMessage(`{"ok":true}`)})
	s.Close()

	// Un-acked exact result replays as done (result bytes intact).
	s2, rep := openT(t, dir)
	if len(rep.Entries) != 1 {
		t.Fatalf("want 1 entry, got %d", len(rep.Entries))
	}
	e := rep.Entries[0]
	if e.Pending() || string(e.Result) != `{"ok":true}` || e.Degraded {
		t.Fatalf("bad replayed result state: pending=%v result=%s degraded=%v", e.Pending(), e.Result, e.Degraded)
	}
	// Ack it; the next open compacts it away entirely.
	appendT(t, s2, &Record{Type: TypeAck, UID: a.UID})
	s2.Close()

	_, rep3 := mustReopen(t, dir)
	if len(rep3.Entries) != 0 {
		t.Fatalf("acked entry survived compaction: %+v", rep3.Entries[0])
	}
}

func TestDegradedResultReplaysAsPending(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	a := accepted("", "t1", `{"j":1}`)
	appendT(t, s, a)
	appendT(t, s, &Record{Type: TypeResult, UID: a.UID, Result: json.RawMessage(`{"eps":true}`), Degraded: true})
	s.Close()

	// Replay must re-queue the job for an exact re-solve: the ε-relaxed
	// result is discarded at compaction, never served forever.
	_, rep := mustReopen(t, dir)
	if len(rep.Entries) != 1 {
		t.Fatalf("want 1 entry, got %d", len(rep.Entries))
	}
	e := rep.Entries[0]
	if !e.Pending() {
		t.Fatal("degraded entry not pending after replay")
	}
	if e.Result != nil {
		t.Fatalf("degraded result survived compaction: %s", e.Result)
	}
	if !e.Degraded {
		t.Fatal("entry lost its degraded marker")
	}
}

func TestExactResultSupersedesDegraded(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	a := accepted("", "t1", `{"j":1}`)
	appendT(t, s, a)
	appendT(t, s, &Record{Type: TypeResult, UID: a.UID, Result: json.RawMessage(`{"eps":true}`), Degraded: true})
	appendT(t, s, &Record{Type: TypeResult, UID: a.UID, Result: json.RawMessage(`{"exact":true}`)})
	// A later degraded record must NOT claw back an exact answer.
	appendT(t, s, &Record{Type: TypeResult, UID: a.UID, Result: json.RawMessage(`{"eps2":true}`), Degraded: true})
	s.Close()

	_, rep := mustReopen(t, dir)
	if len(rep.Entries) != 1 {
		t.Fatalf("want 1 entry, got %d", len(rep.Entries))
	}
	e := rep.Entries[0]
	if e.Pending() || e.Degraded || string(e.Result) != `{"exact":true}` {
		t.Fatalf("exact result lost: pending=%v degraded=%v result=%s", e.Pending(), e.Degraded, e.Result)
	}
}

func TestSegmentRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	small := func(o *Options) { o.SegmentBytes = 1 } // rotate on every record after the first
	s, _ := openT(t, dir, small)
	var uids []string
	for i := 0; i < 6; i++ {
		a := accepted("", "t1", fmt.Sprintf(`{"j":%d}`, i))
		appendT(t, s, a)
		uids = append(uids, a.UID)
	}
	if n := countSegments(t, dir); n < 3 {
		t.Fatalf("expected rotation to leave several segments, got %d", n)
	}
	// Resolve+ack half of them.
	for _, uid := range uids[:3] {
		appendT(t, s,
			&Record{Type: TypeResult, UID: uid, Result: json.RawMessage(`{"ok":1}`)},
			&Record{Type: TypeAck, UID: uid})
	}
	s.Close()

	_, rep := mustReopen(t, dir, small)
	if len(rep.Entries) != 3 {
		t.Fatalf("want 3 live entries after compaction, got %d", len(rep.Entries))
	}
	for i, e := range rep.Entries {
		if e.UID != uids[3+i] {
			t.Fatalf("accept order lost: entry %d is %s, want %s", i, e.UID, uids[3+i])
		}
	}
}

func TestTornTailTruncatedNotFatal(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	a := accepted("", "t1", `{"j":1}`)
	appendT(t, s, a)
	s.Close()

	// Simulate a crash mid-write: half a frame at the tail of the last
	// segment.
	seg := lastSegment(t, dir)
	clean, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	torn := frameRecord([]byte(`{"schema":"msrnet-wal/v1","type":"accepted","uid":"lost"}`))
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, rep := mustReopen(t, dir)
	if !rep.TornTail || rep.Torn != 1 {
		t.Fatalf("torn tail not detected: %+v", rep)
	}
	if len(rep.Entries) != 1 || rep.Entries[0].UID != a.UID {
		t.Fatalf("intact entries lost with the torn tail: %+v", rep.Entries)
	}
	// The truncation must have removed the garbage from disk.
	got, err := os.ReadFile(seg)
	if err == nil && int64(len(got)) > int64(len(clean)) {
		t.Fatalf("torn tail still on disk: %d > %d bytes", len(got), len(clean))
	}
}

func TestMidLogCorruptionSkipsSegmentOnly(t *testing.T) {
	dir := t.TempDir()
	small := func(o *Options) { o.SegmentBytes = 1 }
	s, _ := openT(t, dir, small)
	a1 := accepted("", "t1", `{"j":1}`)
	appendT(t, s, a1)
	a2 := accepted("", "t1", `{"j":2}`)
	appendT(t, s, a2)
	a3 := accepted("", "t1", `{"j":3}`)
	appendT(t, s, a3)
	s.Close()

	// Flip a payload byte in the FIRST segment: mid-log corruption. Only
	// that segment's records are lost; later segments replay fine.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	firstN, first := 1<<30, ""
	for _, e := range ents {
		if n := segIndex(e.Name()); n >= 0 && n < firstN {
			firstN, first = n, filepath.Join(dir, e.Name())
		}
	}
	buf, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) < frameHeader+4 {
		t.Fatalf("first segment too small: %d bytes", len(buf))
	}
	buf[frameHeader+2] ^= 0xff
	if err := os.WriteFile(first, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rep := mustReopen(t, dir, small)
	if rep.Torn == 0 {
		t.Fatal("corruption not counted")
	}
	if rep.TornTail {
		t.Fatal("mid-log corruption misreported as torn tail")
	}
	got := map[string]bool{}
	for _, e := range rep.Entries {
		got[e.UID] = true
	}
	if got[a1.UID] {
		t.Fatal("corrupt record replayed")
	}
	if !got[a2.UID] || !got[a3.UID] {
		t.Fatalf("later segments lost: have %v", got)
	}
}

func TestShortWriteFaultLeavesTornTail(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(1, nil)
	s, _ := openT(t, dir, func(o *Options) { o.Faults = inj })
	a1 := accepted("", "t1", `{"j":1}`)
	appendT(t, s, a1)

	if err := inj.Configure(PointAppend + ":shortwrite"); err != nil {
		t.Fatal(err)
	}
	err := s.Append(context.Background(), accepted("", "t1", `{"j":2}`))
	if err == nil {
		t.Fatal("shortwrite fault did not surface")
	}
	if !errors.Is(err, faultinject.ErrShortWrite) || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("error misses sentinels: %v", err)
	}
	if err := inj.Configure(""); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// The torn half-frame must be truncated away on replay; the durable
	// entry survives.
	_, rep := mustReopen(t, dir)
	if !rep.TornTail {
		t.Fatalf("shortwrite artifact not treated as torn tail: %+v", rep)
	}
	if len(rep.Entries) != 1 || rep.Entries[0].UID != a1.UID {
		t.Fatalf("durable entry lost: %+v", rep.Entries)
	}
}

func TestFsyncFaultDegradesWithoutDeadlock(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(1, nil)
	reg := obs.New()
	s, _ := openT(t, dir, func(o *Options) { o.Faults = inj; o.Reg = reg })
	if err := inj.Configure(PointFsync + ":error"); err != nil {
		t.Fatal(err)
	}
	// Append must return despite every fsync failing (degraded
	// durability, not a hung daemon).
	appendT(t, s, accepted("", "t1", `{"j":1}`))
	if got := reg.Counter("wal/fsync_errors").Value(); got == 0 {
		t.Fatal("fsync fault not counted")
	}
	inj.Configure("")
	s.Close()

	_, rep := mustReopen(t, dir)
	if len(rep.Entries) != 1 {
		t.Fatalf("entry lost after degraded fsync: %d", len(rep.Entries))
	}
}

func TestReplayFaultSkipsRecordNotStartup(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	appendT(t, s, accepted("", "t1", `{"j":1}`))
	appendT(t, s, accepted("", "t1", `{"j":2}`))
	s.Close()

	inj := faultinject.New(1, nil)
	if err := inj.Configure(PointReplay + ":error"); err != nil {
		t.Fatal(err)
	}
	// Every record read hits an injected fault; startup must still
	// succeed with the records skipped and counted.
	_, rep := mustReopen(t, dir, func(o *Options) { o.Faults = inj })
	if len(rep.Entries) != 0 {
		t.Fatalf("faulted records replayed anyway: %d", len(rep.Entries))
	}
	if rep.Torn != 2 {
		t.Fatalf("want 2 skipped records, got %d", rep.Torn)
	}
}

func TestAppendErrorFaultFailsCleanly(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(1, nil)
	s, _ := openT(t, dir, func(o *Options) { o.Faults = inj })
	if err := inj.Configure(PointAppend + ":error"); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(context.Background(), accepted("", "t1", `{}`)); err == nil {
		t.Fatal("append fault not surfaced")
	}
	inj.Configure("")
	s.Close()
	// A clean error (no shortwrite) leaves no torn artifact behind.
	_, rep := mustReopen(t, dir)
	if rep.Torn != 0 || len(rep.Entries) != 0 {
		t.Fatalf("clean append fault left artifacts: %+v", rep)
	}
}

func TestConcurrentAppendsAllDurable(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	const workers, per = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a := accepted("", fmt.Sprintf("tenant-%d", w), fmt.Sprintf(`{"w":%d,"i":%d}`, w, i))
				if err := s.Append(context.Background(), a); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append: %v", err)
	}
	s.Close()

	_, rep := mustReopen(t, dir)
	if len(rep.Entries) != workers*per {
		t.Fatalf("replayed %d entries, want %d", len(rep.Entries), workers*per)
	}
	seen := map[string]bool{}
	for _, e := range rep.Entries {
		if seen[e.UID] {
			t.Fatalf("duplicate UID %s", e.UID)
		}
		seen[e.UID] = true
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, rep := openT(t, dir)
	defer s.Close()
	if len(rep.Entries) != 0 || rep.Torn != 0 {
		t.Fatalf("foreign file replayed: %+v", rep)
	}
}
