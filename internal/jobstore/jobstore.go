// Package jobstore is the durability layer of the serving stack: an
// append-only write-ahead log of accepted jobs, their results and
// their delivery acknowledgements, replayed by msrnetd on startup so a
// drain, crash or SIGKILL between admission and response loses no
// accepted work (DESIGN.md §14).
//
// The log is a sequence of segment files (wal-<n>.log) of
// length-prefixed, CRC-framed records:
//
//	uint32 LE payload length | uint32 LE CRC-32C of payload | payload
//
// where the payload is one msrnet-wal/v1 JSON record. Appends are
// durable on return: each Append waits for an fsync, but syncs are
// group-committed — one fsync retires every append that landed while
// the previous sync was in flight, so a busy daemon pays ~one fsync
// per batch, not per record.
//
// Replay tolerates exactly the corruption a crash can produce: a torn
// record at the tail of the last segment (the write the crash
// interrupted) is truncated away with a warning instead of failing
// startup, and a corrupt record mid-log skips forward to the next
// segment rather than aborting. Fault-injection points wal/append,
// wal/fsync and wal/replay (error and shortwrite modes) exercise all
// of it deterministically.
//
// Segments rotate at Options.SegmentBytes; Open compacts the log by
// rewriting only live entries (accepted jobs not yet terminally
// resolved AND acknowledged) into a fresh segment, so the log's size
// tracks the daemon's unfinished work, not its lifetime throughput.
package jobstore

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"msrnet/internal/faultinject"
	"msrnet/internal/obs"
	"msrnet/internal/obs/spans"
)

// Schema identifies the WAL record layout, versioned like every other
// on-disk artifact of the repository.
const Schema = "msrnet-wal/v1"

// Record types.
const (
	// TypeAccepted marks a job the daemon admitted: once this record is
	// durable, a crash cannot lose the job — replay re-queues it.
	TypeAccepted = "accepted"
	// TypeResult marks a completed solve for an accepted job. Degraded
	// results carry Degraded=true; replay re-queues those for an exact
	// re-solve instead of serving the ε-relaxed answer forever.
	TypeResult = "result"
	// TypeAck marks the job's outcome as delivered to the client;
	// acknowledged entries are dropped at the next compaction.
	TypeAck = "ack"
)

// Fault-injection point names (see internal/faultinject).
const (
	PointAppend = "wal/append"
	PointFsync  = "wal/fsync"
	PointReplay = "wal/replay"
)

// Record is one WAL entry. Job and Result payloads cross this package
// as raw JSON so the store does not depend on the serving schema.
type Record struct {
	Schema string `json:"schema"`
	Type   string `json:"type"`
	// Seq is the store-wide append sequence, monotonic across restarts.
	Seq uint64 `json:"seq"`
	// UID is the durable job identity ("w<seq-of-accept>"), assigned at
	// the accepted record and echoed by its result and ack records.
	UID string `json:"uid"`
	// Identity of the accepted job: owning tenant, client label, the
	// submission's trace ID, the result-cache key and the net's content
	// hash.
	Tenant  string `json:"tenant,omitempty"`
	Label   string `json:"label,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	Key     string `json:"key,omitempty"`
	NetKey  string `json:"net_key,omitempty"`
	// Job is the msrnet-job/v1 Job body (accepted records).
	Job json.RawMessage `json:"job,omitempty"`
	// Result is the msrnet-job/v1 Result body (result records);
	// Degraded distinguishes ε-relaxed answers, which replay re-queues.
	Result   json.RawMessage `json:"result,omitempty"`
	Degraded bool            `json:"degraded,omitempty"`
}

// Entry is one accepted job's replayed state: its accepted record plus
// the latest result and ack observed for it.
type Entry struct {
	UID     string
	Tenant  string
	Label   string
	TraceID string
	Key     string
	NetKey  string
	Job     json.RawMessage
	// Result is the persisted outcome, nil while the job is pending.
	// Degraded marks an ε-relaxed result: the entry must be re-queued
	// for an exact re-solve, with the degraded answer discarded.
	Result   json.RawMessage
	Degraded bool
	// Acked reports the outcome was delivered to the client; acked
	// entries are compacted away and never replayed.
	Acked bool
}

// Pending reports whether the entry needs a (re-)solve after replay: no
// result yet, or only a degraded one.
func (e *Entry) Pending() bool { return e.Result == nil || e.Degraded }

// Replay is what Open recovered from the log, in accept order.
type Replay struct {
	// Entries are the live (un-acked) accepted jobs.
	Entries []*Entry
	// Torn counts records dropped for framing/CRC damage; TornTail is
	// true when the damage was the expected kind — a partial record at
	// the tail of the last segment, truncated away.
	Torn     int
	TornTail bool
}

// Options assembles a Store.
type Options struct {
	// Dir holds the segment files; created if missing. Required.
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 8 MiB).
	SegmentBytes int64
	// Faults, when non-nil, injects test faults at wal/append, wal/fsync
	// and wal/replay. Nil in production.
	Faults *faultinject.Injector
	// Reg receives the wal/* counters and gauges; may be nil.
	Reg *obs.Registry
	// Spans, when non-nil, records a wal/append span (with a wal/fsync
	// child covering the group-commit wait) for every Append whose
	// context carries a trace ID, so durability cost shows up in
	// stitched traces. Nil disables recording.
	Spans *spans.Index
	// Logger receives replay and degradation warnings; slog.Default
	// when nil.
	Logger *slog.Logger
}

const defaultSegmentBytes = 8 << 20

// maxRecordBytes bounds one framed payload; a batch job with a
// multi-thousand-node net fits with room to spare.
const maxRecordBytes = 64 << 20

// frameHeader is the per-record framing overhead: 4-byte length plus
// 4-byte CRC-32C.
const frameHeader = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Store is the open WAL. All methods are safe for concurrent use; a
// nil *Store is inert (appends succeed without persisting), so the
// serving layer wires its hooks unconditionally.
type Store struct {
	opt Options
	log *slog.Logger

	mu     sync.Mutex
	f      *os.File
	seg    int   // active segment index
	size   int64 // bytes written to the active segment
	seq    uint64
	closed bool

	// Group commit: appends bump appendGen and wait until syncedGen
	// catches up; the syncer goroutine fsyncs whole generations at once.
	appendGen uint64
	syncedGen uint64
	synced    *sync.Cond
	kick      chan struct{}
	done      chan struct{}
	idle      chan struct{}

	appends, appendErrs    *obs.Counter
	syncs, syncErrs        *obs.Counter
	tornRecords, replayed  *obs.Counter
	compacted              *obs.Counter
	segments, pendingGauge *obs.Gauge
}

// Open replays the log in dir (creating it if absent), compacts away
// acknowledged entries, and returns the store ready for appends plus
// the replayed live entries. Corruption a crash can produce — a torn
// tail record, a short final frame — degrades to a warning, never to a
// failed startup.
func Open(opt Options) (*Store, *Replay, error) {
	if opt.Dir == "" {
		return nil, nil, fmt.Errorf("jobstore: Options.Dir is required")
	}
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = defaultSegmentBytes
	}
	if opt.Logger == nil {
		opt.Logger = slog.Default()
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("jobstore: %w", err)
	}
	s := &Store{
		opt:          opt,
		log:          opt.Logger,
		kick:         make(chan struct{}, 1),
		done:         make(chan struct{}),
		idle:         make(chan struct{}),
		appends:      opt.Reg.Counter("wal/appends"),
		appendErrs:   opt.Reg.Counter("wal/append_errors"),
		syncs:        opt.Reg.Counter("wal/fsync_batches"),
		syncErrs:     opt.Reg.Counter("wal/fsync_errors"),
		tornRecords:  opt.Reg.Counter("wal/torn_records"),
		replayed:     opt.Reg.Counter("wal/replayed_records"),
		compacted:    opt.Reg.Counter("wal/compacted_entries"),
		segments:     opt.Reg.Gauge("wal/segments"),
		pendingGauge: opt.Reg.Gauge("wal/live_entries"),
	}
	s.synced = sync.NewCond(&s.mu)

	rep, maxSeg, err := s.replayDir()
	if err != nil {
		return nil, nil, err
	}
	if err := s.compact(rep, maxSeg); err != nil {
		return nil, nil, err
	}
	go s.syncer()
	return s, rep, nil
}

// segPath names segment n.
func (s *Store) segPath(n int) string {
	return filepath.Join(s.opt.Dir, fmt.Sprintf("wal-%08d.log", n))
}

// segIndex parses a segment file name, returning -1 for foreign files.
func segIndex(name string) int {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return -1
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"))
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// replayDir scans every segment in order, building the entry table.
func (s *Store) replayDir() (*Replay, []int, error) {
	names, err := os.ReadDir(s.opt.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("jobstore: %w", err)
	}
	var segs []int
	for _, e := range names {
		if n := segIndex(e.Name()); n >= 0 && !e.IsDir() {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)

	rep := &Replay{}
	byUID := map[string]*Entry{}
	order := []string{}
	for i, n := range segs {
		last := i == len(segs)-1
		if err := s.replaySegment(s.segPath(n), last, rep, byUID, &order); err != nil {
			return nil, nil, err
		}
	}
	for _, uid := range order {
		e := byUID[uid]
		if e != nil && !e.Acked {
			rep.Entries = append(rep.Entries, e)
		}
	}
	return rep, segs, nil
}

// replaySegment reads one segment, folding its records into the entry
// table. Damage handling is asymmetric by position: a bad frame at the
// tail of the LAST segment is the torn write of the crash — truncate
// and keep going; a bad frame anywhere else loses the rest of that
// segment only (with a warning), because frame boundaries cannot be
// re-found after a corrupt length.
func (s *Store) replaySegment(path string, last bool, rep *Replay, byUID map[string]*Entry, order *[]string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	defer f.Close()

	var off int64
	var hdr [frameHeader]byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return nil // clean end of segment
		}
		if err != nil { // short header: torn tail
			return s.handleTorn(path, off, last, rep, fmt.Sprintf("short header: %v", err))
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordBytes {
			return s.handleTorn(path, off, last, rep, fmt.Sprintf("implausible record length %d", n))
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return s.handleTorn(path, off, last, rep, fmt.Sprintf("short payload: %v", err))
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return s.handleTorn(path, off, last, rep, "CRC mismatch")
		}
		off += frameHeader + int64(n)

		if err := s.opt.Faults.Fire(context.Background(), PointReplay); err != nil {
			// An injected replay fault skips the record, never the
			// startup: losing one entry to a read fault beats refusing to
			// serve at all.
			rep.Torn++
			s.tornRecords.Inc()
			s.log.Warn("wal: replay fault, record skipped", "segment", path, "err", err)
			continue
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// The frame was intact (CRC held) but the payload does not
			// parse — a foreign or future record. Skip it; framing still
			// holds for the next one.
			rep.Torn++
			s.tornRecords.Inc()
			s.log.Warn("wal: unparseable record skipped", "segment", path, "err", err)
			continue
		}
		s.replayed.Inc()
		if rec.Seq > s.seq {
			s.seq = rec.Seq
		}
		switch rec.Type {
		case TypeAccepted:
			if _, dup := byUID[rec.UID]; dup {
				continue // compaction rewrite duplicated an entry; first wins
			}
			byUID[rec.UID] = &Entry{
				UID: rec.UID, Tenant: rec.Tenant, Label: rec.Label, TraceID: rec.TraceID,
				Key: rec.Key, NetKey: rec.NetKey, Job: rec.Job,
			}
			*order = append(*order, rec.UID)
		case TypeResult:
			if e := byUID[rec.UID]; e != nil {
				// An exact result supersedes a degraded one, never the
				// reverse: once the exact answer is durable the ε-relaxed
				// record is history.
				if e.Result == nil || (e.Degraded && !rec.Degraded) {
					e.Result = rec.Result
					e.Degraded = rec.Degraded
				}
			}
		case TypeAck:
			if e := byUID[rec.UID]; e != nil {
				e.Acked = true
			}
		}
	}
}

// handleTorn deals with an unreadable frame at offset off. On the last
// segment it is the expected crash artifact: truncate the tail so
// future appends (which continue in a fresh segment anyway) never
// follow garbage, count it, carry on. Mid-log it costs the rest of
// that one segment.
func (s *Store) handleTorn(path string, off int64, last bool, rep *Replay, detail string) error {
	rep.Torn++
	s.tornRecords.Inc()
	if last {
		rep.TornTail = true
		s.log.Warn("wal: torn tail record truncated", "segment", path, "offset", off, "detail", detail)
		if err := os.Truncate(path, off); err != nil {
			return fmt.Errorf("jobstore: truncating torn tail of %s: %w", path, err)
		}
		return nil
	}
	s.log.Warn("wal: corrupt record mid-log; rest of segment skipped", "segment", path, "offset", off, "detail", detail)
	return nil
}

// compact rewrites the live entries into a fresh segment and deletes
// the old ones, then leaves that segment active for appends. Live
// means un-acked: pending jobs keep their accepted record, undelivered
// results keep accepted+result (degraded results are dropped — the
// entry reverts to pending so the exact re-solve replaces the ε-relaxed
// answer).
func (s *Store) compact(rep *Replay, oldSegs []int) error {
	next := 0
	if n := len(oldSegs); n > 0 {
		next = oldSegs[n-1] + 1
	}
	f, err := os.OpenFile(s.segPath(next), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	s.f, s.seg, s.size = f, next, 0
	for _, e := range rep.Entries {
		s.seq++
		acc := Record{Schema: Schema, Type: TypeAccepted, Seq: s.seq, UID: e.UID,
			Tenant: e.Tenant, Label: e.Label, TraceID: e.TraceID, Key: e.Key, NetKey: e.NetKey, Job: e.Job}
		if err := s.writeLocked(&acc); err != nil {
			return err
		}
		if e.Result != nil && !e.Degraded {
			s.seq++
			res := Record{Schema: Schema, Type: TypeResult, Seq: s.seq, UID: e.UID, Result: e.Result}
			if err := s.writeLocked(&res); err != nil {
				return err
			}
		} else if e.Degraded {
			// Dropping the degraded result reverts the entry to pending.
			e.Result, e.Degraded = nil, true
		}
	}
	// writeLocked may itself have rotated past the first compaction
	// segment; sync whichever file is now active.
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	for _, n := range oldSegs {
		if err := os.Remove(s.segPath(n)); err != nil {
			s.log.Warn("wal: removing compacted segment failed", "segment", s.segPath(n), "err", err)
		} else {
			s.compacted.Inc()
		}
	}
	s.segments.Set(int64(s.seg - next + 1))
	s.pendingGauge.Set(int64(len(rep.Entries)))
	return nil
}

// Append frames, writes and durably syncs recs in order, assigning
// store sequence numbers; accepted records additionally get their UID
// ("w<seq>") when the caller left it empty. It returns once the group
// fsync covering every rec has completed. Nil stores succeed
// immediately (no persistence, by construction).
func (s *Store) Append(ctx context.Context, recs ...*Record) error {
	if s == nil || len(recs) == 0 {
		return nil
	}
	if err := s.opt.Faults.Fire(ctx, PointAppend); err != nil {
		s.appendErrs.Inc()
		if errors.Is(err, faultinject.ErrShortWrite) {
			// Leave the crash artifact the mode promises: half a frame,
			// which the next replay must truncate away.
			s.tearTail(recs[0])
		}
		return fmt.Errorf("jobstore: append: %w", err)
	}
	sctx, wspan := s.opt.Spans.Start(ctx, "wal/append")
	defer wspan.End()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("jobstore: store is closed")
	}
	for _, rec := range recs {
		s.seq++
		rec.Schema, rec.Seq = Schema, s.seq
		if rec.Type == TypeAccepted && rec.UID == "" {
			rec.UID = fmt.Sprintf("w%d", s.seq)
		}
		if err := s.writeLocked(rec); err != nil {
			s.appendErrs.Inc()
			s.mu.Unlock()
			return err
		}
		s.appends.Inc()
	}
	gen := s.appendGen + 1
	s.appendGen = gen
	s.mu.Unlock()
	// The fsync child measures the group-commit wait alone, so a
	// stitched trace separates "writing bytes" from "waiting for disk".
	_, fspan := s.opt.Spans.Start(sctx, "wal/fsync")
	defer fspan.End()
	select {
	case s.kick <- struct{}{}:
	default: // a kick is already pending; the syncer will cover gen
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.syncedGen < gen && !s.closed {
		s.synced.Wait()
	}
	return nil
}

// tearTail writes a deliberately truncated frame for rec — the on-disk
// state a crash mid-write leaves behind. Only fault injection reaches
// it.
func (s *Store) tearTail(rec *Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return
	}
	frame := frameRecord(payload)
	torn := frame[:frameHeader+len(payload)/2]
	if n, err := s.f.Write(torn); err == nil {
		s.size += int64(n)
	}
}

// writeLocked frames and writes one record to the active segment,
// rotating first when the segment is full. Callers hold mu (or are in
// single-threaded Open).
func (s *Store) writeLocked(rec *Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobstore: encode record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("jobstore: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecordBytes)
	}
	if s.size >= s.opt.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := s.f.Write(frameRecord(payload))
	s.size += int64(n)
	if err != nil {
		return fmt.Errorf("jobstore: write record: %w", err)
	}
	return nil
}

// frameRecord wraps payload in the length+CRC frame.
func frameRecord(payload []byte) []byte {
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeader:], payload)
	return frame
}

// rotateLocked syncs and closes the active segment and starts the next.
func (s *Store) rotateLocked() error {
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("jobstore: sync before rotate: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("jobstore: close before rotate: %w", err)
	}
	s.seg++
	f, err := os.OpenFile(s.segPath(s.seg), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: rotate: %w", err)
	}
	s.f, s.size = f, 0
	s.segments.Add(1)
	return nil
}

// syncer is the group-commit loop: each pass fsyncs everything
// appended so far and wakes every append waiting at or below that
// generation.
func (s *Store) syncer() {
	defer close(s.idle)
	for {
		select {
		case <-s.kick:
		case <-s.done:
			return
		}
		s.mu.Lock()
		gen := s.appendGen
		f := s.f
		s.mu.Unlock()
		if gen == 0 || f == nil {
			continue
		}
		s.syncs.Inc()
		if err := s.opt.Faults.Fire(context.Background(), PointFsync); err != nil {
			// Degrade, don't deadlock: the data sits in the page cache
			// (an actual crash now could lose it) but every waiter is
			// released and the daemon keeps serving.
			s.syncErrs.Inc()
			s.log.Warn("wal: fsync fault; batch durability degraded", "err", err)
		} else if err := f.Sync(); err != nil {
			s.syncErrs.Inc()
			s.log.Warn("wal: fsync failed; batch durability degraded", "err", err)
		}
		s.mu.Lock()
		if gen > s.syncedGen {
			s.syncedGen = gen
			s.synced.Broadcast()
		}
		s.mu.Unlock()
	}
}

// SetLive updates the wal/live_entries gauge — the serving layer owns
// the live-entry count once recovery hands entries over.
func (s *Store) SetLive(n int64) {
	if s == nil {
		return
	}
	s.pendingGauge.Set(n)
}

// Close stops the syncer after a final sync and closes the active
// segment. Appends racing Close fail cleanly.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.synced.Broadcast()
	f := s.f
	s.mu.Unlock()
	close(s.done)
	<-s.idle
	var err error
	if f != nil {
		if serr := f.Sync(); serr != nil {
			err = serr
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return fmt.Errorf("jobstore: close: %w", err)
	}
	return nil
}

// Dir reports the store's directory ("" on a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.opt.Dir
}

// Enabled reports whether the store persists anything (false for nil).
func (s *Store) Enabled() bool { return s != nil }
