package buildinfo

import (
	"runtime"
	"runtime/debug"
	"testing"
)

func TestGetIsStableAndStamped(t *testing.T) {
	a, b := Get(), Get()
	if a != b {
		t.Fatalf("Get is not stable: %+v vs %+v", a, b)
	}
	if a.Schema != Schema {
		t.Fatalf("schema %q, want %q", a.Schema, Schema)
	}
	if a.GoVersion == "" {
		t.Fatal("GoVersion must always be stamped")
	}
}

func TestReadParsesVCSSettings(t *testing.T) {
	bi := &debug.BuildInfo{
		GoVersion: "go1.22.0",
		Main:      debug.Module{Path: "msrnet", Version: "v1.2.3"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "abc123"},
			{Key: "vcs.time", Value: "2026-01-02T03:04:05Z"},
			{Key: "vcs.modified", Value: "true"},
		},
	}
	info := read(bi, true)
	if info.Main != "msrnet" || info.Version != "v1.2.3" || info.GoVersion != "go1.22.0" {
		t.Fatalf("module identity not carried: %+v", info)
	}
	if info.Revision != "abc123" || info.RevisionTime != "2026-01-02T03:04:05Z" || !info.Modified {
		t.Fatalf("vcs stamp not parsed: %+v", info)
	}
}

func TestReadWithoutBuildInfoFallsBack(t *testing.T) {
	info := read(nil, false)
	if info.Schema != Schema {
		t.Fatalf("schema %q, want %q", info.Schema, Schema)
	}
	if info.GoVersion != runtime.Version() {
		t.Fatalf("GoVersion %q, want runtime fallback %q", info.GoVersion, runtime.Version())
	}
}
