// Package buildinfo reads the binary's embedded build metadata
// (runtime/debug.ReadBuildInfo) into one stable JSON shape, served at
// GET /version and stamped into postmortem bundle manifests — so an
// incident report or a fleet inventory can say exactly which build
// answered.
package buildinfo

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Schema identifies the JSON layout of Info.
const Schema = "msrnet-build/v1"

// Info is the build identity of the running binary.
type Info struct {
	Schema string `json:"schema"`
	// Main is the main module's path (module identity, e.g. "msrnet").
	Main string `json:"main,omitempty"`
	// Version is the main module's version ("(devel)" for local builds).
	Version string `json:"version,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision/RevisionTime/Modified are the VCS stamp when the build
	// had one (vcs.revision, vcs.time, vcs.modified settings).
	Revision     string `json:"revision,omitempty"`
	RevisionTime string `json:"revision_time,omitempty"`
	// Modified reports a dirty working tree at build time.
	Modified bool `json:"modified,omitempty"`
}

var (
	once   sync.Once
	cached Info
)

// Get returns the binary's build identity. The lookup runs once; the
// result never changes within a process.
func Get() Info {
	once.Do(func() {
		cached = read(debug.ReadBuildInfo())
	})
	return cached
}

// read converts a debug.BuildInfo (possibly absent — binaries built
// without module support) into the stable shape.
func read(bi *debug.BuildInfo, ok bool) Info {
	info := Info{Schema: Schema, GoVersion: runtime.Version()}
	if !ok || bi == nil {
		return info
	}
	info.Main = bi.Main.Path
	info.Version = bi.Main.Version
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.RevisionTime = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}
