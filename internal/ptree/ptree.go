// Package ptree implements multisource timing-driven topology synthesis —
// the future-work direction named in §VII of Lillis & Cheng (TCAD'99):
// "given the results in this paper, a multisource version of the P-Tree
// timing-driven Steiner router [16] is now possible."
//
// Following the P-Tree recipe, terminals are first arranged in a tour
// order (nearest-neighbor + 2-opt on the rectilinear metric); a dynamic
// program over contiguous intervals of that order then builds candidate
// routing trees whose internal nodes come from a candidate point set
// (the Hanan grid for small nets, the terminal locations for larger
// ones). The wirelength DP yields low-cost topologies; the multisource
// step plugs the repeater-insertion optimizer of package core underneath
// it — candidate topologies are scored by their *optimized* augmented
// RC-diameter, so the router sees through buffering exactly as the paper
// envisions.
package ptree

import (
	"fmt"
	"math"

	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/geom"
	"msrnet/internal/rsmt"
	"msrnet/internal/topo"
)

// Options controls synthesis.
type Options struct {
	// MaxHananTerminals bounds the net size for which the full Hanan
	// grid is used as the candidate set; larger nets use the terminal
	// locations only. Default 10.
	MaxHananTerminals int
	// TwoOptRounds bounds tour improvement passes. Default 20.
	TwoOptRounds int
}

func (o Options) withDefaults() Options {
	if o.MaxHananTerminals <= 0 {
		o.MaxHananTerminals = 10
	}
	if o.TwoOptRounds <= 0 {
		o.TwoOptRounds = 20
	}
	return o
}

// Order returns a tour order of the points: nearest-neighbor
// construction followed by 2-opt improvement under the rectilinear
// metric. P-Tree restricts its trees to contiguous intervals of this
// order, which is what makes the interval DP complete enough in
// practice.
func Order(pts []geom.Point, rounds int) []int {
	n := len(pts)
	order := make([]int, 0, n)
	used := make([]bool, n)
	cur := 0
	used[0] = true
	order = append(order, 0)
	for len(order) < n {
		best, bestD := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !used[i] {
				if d := geom.Dist(pts[cur], pts[i]); d < bestD {
					best, bestD = i, d
				}
			}
		}
		used[best] = true
		order = append(order, best)
		cur = best
	}
	// 2-opt on the open tour.
	tourLen := func(ord []int) float64 {
		var l float64
		for i := 1; i < len(ord); i++ {
			l += geom.Dist(pts[ord[i-1]], pts[ord[i]])
		}
		return l
	}
	for round := 0; round < rounds; round++ {
		improved := false
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				// Reverse order[i..j]; delta on an open tour.
				var before, after float64
				if i > 0 {
					before += geom.Dist(pts[order[i-1]], pts[order[i]])
					after += geom.Dist(pts[order[i-1]], pts[order[j]])
				}
				if j < n-1 {
					before += geom.Dist(pts[order[j]], pts[order[j+1]])
					after += geom.Dist(pts[order[i]], pts[order[j+1]])
				}
				if after < before-1e-9 {
					for a, b := i, j; a < b; a, b = a+1, b-1 {
						order[a], order[b] = order[b], order[a]
					}
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	_ = tourLen
	return order
}

// WirelengthTree runs the interval DP and returns the minimum-wirelength
// P-Tree topology over the given candidate order.
func WirelengthTree(pts []geom.Point, opt Options) rsmt.Tree {
	opt = opt.withDefaults()
	if len(pts) < 2 {
		panic("ptree: need at least two terminals")
	}
	order := Order(pts, opt.TwoOptRounds)
	return dpTree(pts, order, candidates(pts, opt))
}

// candidates picks the internal-node candidate set.
func candidates(pts []geom.Point, opt Options) []geom.Point {
	if len(pts) <= opt.MaxHananTerminals {
		return rsmt.HananGrid(pts)
	}
	return append([]geom.Point(nil), pts...)
}

// dpTree is the P-Tree interval dynamic program. State: cost[i][j][p] =
// minimum wirelength of a tree spanning terminals order[i..j] whose root
// hangs at candidate point p. Transition: split [i..j] at k, join the
// two subtrees at a point q, and run a wire q→p:
//
//	cost[i][j][p] = min over q of ( M[i][j][q] + d(q, p) )
//	M[i][j][q]    = min over k of ( cost[i][k][q] + cost[k+1][j][q] )
//
// Base: cost[i][i][p] = d(terminal_i, p).
func dpTree(pts []geom.Point, order []int, cands []geom.Point) rsmt.Tree {
	n := len(order)
	h := len(cands)
	// cost[i][j][p]; choice tracking for reconstruction.
	type choice struct {
		k int // split (or -1 for leaf)
		q int // join candidate
	}
	idx := func(i, j int) int { return i*n + j }
	cost := make([][]float64, n*n)
	ch := make([][]choice, n*n)
	for i := 0; i < n; i++ {
		c := make([]float64, h)
		cc := make([]choice, h)
		for p := 0; p < h; p++ {
			c[p] = geom.Dist(pts[order[i]], cands[p])
			cc[p] = choice{k: -1, q: -1}
		}
		cost[idx(i, i)] = c
		ch[idx(i, i)] = cc
	}
	m := make([]float64, h)
	mk := make([]int, h)
	for span := 2; span <= n; span++ {
		for i := 0; i+span-1 < n; i++ {
			j := i + span - 1
			// M over q.
			for q := 0; q < h; q++ {
				m[q] = math.Inf(1)
				mk[q] = -1
			}
			for k := i; k < j; k++ {
				a := cost[idx(i, k)]
				b := cost[idx(k+1, j)]
				for q := 0; q < h; q++ {
					if v := a[q] + b[q]; v < m[q] {
						m[q] = v
						mk[q] = k
					}
				}
			}
			// cost over p.
			c := make([]float64, h)
			cc := make([]choice, h)
			for p := 0; p < h; p++ {
				best := math.Inf(1)
				bq := -1
				for q := 0; q < h; q++ {
					if v := m[q] + geom.Dist(cands[q], cands[p]); v < best {
						best = v
						bq = q
					}
				}
				c[p] = best
				cc[p] = choice{k: mk[bq], q: bq}
			}
			cost[idx(i, j)] = c
			ch[idx(i, j)] = cc
		}
	}
	// Root: the candidate minimizing the full-interval cost (distance to
	// the root point itself is zero when p is chosen as the hang point).
	rootP, best := 0, math.Inf(1)
	for p := 0; p < h; p++ {
		if cost[idx(0, n-1)][p] < best {
			best = cost[idx(0, n-1)][p]
			rootP = p
		}
	}
	// Reconstruct.
	t := rsmt.Tree{NumTerminals: len(pts)}
	t.Points = append(t.Points, pts...)
	// Each structural use of a candidate gets its own tree node (sharing
	// across subtrees would create cycles); coincident copies end up as
	// zero-length edges that Simplify splices away.
	newCand := func(p int) int {
		t.Points = append(t.Points, cands[p])
		return len(t.Points) - 1
	}
	var build func(i, j, p, pNode int)
	build = func(i, j, p, pNode int) {
		if i == j {
			t.Edges = append(t.Edges, [2]int{order[i], pNode})
			return
		}
		c := ch[idx(i, j)][p]
		qNode := newCand(c.q)
		t.Edges = append(t.Edges, [2]int{qNode, pNode})
		build(i, c.k, c.q, qNode)
		build(c.k+1, j, c.q, qNode)
	}
	rootNode := newCand(rootP)
	build(0, n-1, rootP, rootNode)
	return rsmt.Simplify(t)
}

// Result is a synthesized, optimized topology.
type Result struct {
	Tree  *topo.Tree
	Suite core.Suite
	// WirelengthUm is the routed wirelength of the chosen topology.
	WirelengthUm float64
}

// TimingDriven synthesizes a topology for the given terminals and
// electrical parameters, then runs optimal repeater insertion on it.
// Candidate topologies (the P-Tree and, as a baseline, the iterated
// 1-Steiner tree) are scored by their optimized minimum ARD; the best is
// returned with its full tradeoff suite. insertionSpacing follows the
// paper's 800 µm rule; pass 0 to skip insertion points.
func TimingDriven(pts []geom.Point, terms []buslib.Terminal, tech buslib.Tech,
	insertionSpacing float64, opt Options) (*Result, error) {
	if len(pts) != len(terms) {
		return nil, fmt.Errorf("ptree: %d points but %d terminals", len(pts), len(terms))
	}
	if len(pts) < 2 {
		return nil, fmt.Errorf("ptree: need at least two terminals")
	}
	cands := []rsmt.Tree{
		WirelengthTree(pts, opt),
		rsmt.Steiner(pts),
	}
	var best *Result
	for _, st := range cands {
		tr, err := toTopo(st, terms)
		if err != nil {
			return nil, err
		}
		if insertionSpacing > 0 {
			tr.PlaceInsertionPoints(insertionSpacing)
		}
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("ptree: synthesized topology invalid: %w", err)
		}
		rt := tr.RootAt(tr.Terminals()[0])
		res, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
		if err != nil {
			return nil, err
		}
		cand := &Result{Tree: tr, Suite: res.Suite, WirelengthUm: tr.TotalWireLength()}
		candBest, err := cand.Suite.MinARD()
		if err != nil {
			return nil, err
		}
		if best == nil {
			best = cand
			continue
		}
		bestBest, err := best.Suite.MinARD()
		if err != nil {
			return nil, err
		}
		if candBest.ARD < bestBest.ARD {
			best = cand
		}
	}
	return best, nil
}

func toTopo(st rsmt.Tree, terms []buslib.Terminal) (*topo.Tree, error) {
	tr := topo.New()
	ids := make([]int, len(st.Points))
	for i, pt := range st.Points {
		if i < st.NumTerminals {
			ids[i] = tr.AddTerminal(pt, terms[i])
		} else {
			ids[i] = tr.AddSteiner(pt)
		}
	}
	for _, e := range st.Edges {
		tr.AddEdge(ids[e[0]], ids[e[1]], geom.Dist(st.Points[e[0]], st.Points[e[1]]))
	}
	tr.EnsureTerminalLeaves()
	return tr, nil
}
