package ptree

import (
	"math"
	"math/rand"
	"testing"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/geom"
	"msrnet/internal/rctree"
	"msrnet/internal/rsmt"
	"msrnet/internal/topo"
)

func randPts(r *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(r.Float64()*10000, r.Float64()*10000)
	}
	return pts
}

func TestOrderIsPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		pts := randPts(r, 2+r.Intn(15))
		ord := Order(pts, 10)
		if len(ord) != len(pts) {
			t.Fatalf("order length %d, want %d", len(ord), len(pts))
		}
		seen := make([]bool, len(pts))
		for _, i := range ord {
			if i < 0 || i >= len(pts) || seen[i] {
				t.Fatalf("bad permutation: %v", ord)
			}
			seen[i] = true
		}
	}
}

func TestOrderTwoOptImproves(t *testing.T) {
	// A zig-zag point set where nearest-neighbor alone is suboptimal.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(200, 0), geom.Pt(300, 0),
		geom.Pt(300, 10), geom.Pt(200, 10), geom.Pt(100, 10), geom.Pt(0, 10),
	}
	ord := Order(pts, 50)
	var l float64
	for i := 1; i < len(ord); i++ {
		l += geom.Dist(pts[ord[i-1]], pts[ord[i]])
	}
	// Optimal open tour: snake through, ~710. Anything ≤ 800 is sane.
	if l > 800 {
		t.Errorf("tour length %g too long", l)
	}
}

func TestWirelengthTreeStructure(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(8)
		pts := randPts(r, n)
		tr := WirelengthTree(pts, Options{})
		if tr.NumTerminals != n {
			t.Fatalf("NumTerminals = %d", tr.NumTerminals)
		}
		// Terminals preserved.
		for i, p := range pts {
			if tr.Points[i] != p {
				t.Fatalf("terminal %d moved", i)
			}
		}
		// Spanning tree over its points.
		if len(tr.Edges) != len(tr.Points)-1 {
			t.Fatalf("edges %d for %d points", len(tr.Edges), len(tr.Points))
		}
		// Connectivity.
		adj := make([][]int, len(tr.Points))
		for _, e := range tr.Edges {
			adj[e[0]] = append(adj[e[0]], e[1])
			adj[e[1]] = append(adj[e[1]], e[0])
		}
		seen := make([]bool, len(tr.Points))
		stack := []int{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range adj[v] {
				if !seen[u] {
					seen[u] = true
					count++
					stack = append(stack, u)
				}
			}
		}
		if count != len(tr.Points) {
			t.Fatalf("trial %d: tree disconnected", trial)
		}
	}
}

func TestWirelengthCompetitiveWithMST(t *testing.T) {
	// The P-Tree over Hanan candidates should be close to (often better
	// than) the plain MST; never accept a tree much worse.
	r := rand.New(rand.NewSource(3))
	worse := 0
	for trial := 0; trial < 20; trial++ {
		pts := randPts(r, 4+r.Intn(6))
		pt := WirelengthTree(pts, Options{})
		mst := rsmt.MST(pts)
		if pt.Length() > mst.Length()*1.05+1e-9 {
			worse++
		}
	}
	if worse > 2 {
		t.Errorf("P-Tree materially worse than MST on %d/20 instances", worse)
	}
}

func TestWirelengthBeatsMSTOnCross(t *testing.T) {
	// The plus-shaped instance where a Steiner point saves 1/3.
	pts := []geom.Point{geom.Pt(1000, 0), geom.Pt(1000, 2000), geom.Pt(0, 1000), geom.Pt(2000, 1000)}
	pt := WirelengthTree(pts, Options{})
	if math.Abs(pt.Length()-4000) > 1e-6 {
		t.Errorf("cross P-Tree length = %g, want 4000", pt.Length())
	}
}

func TestTimingDrivenImprovesOrMatchesBaseline(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	tech := buslib.Default()
	for trial := 0; trial < 5; trial++ {
		n := 5 + r.Intn(4)
		pts := randPts(r, n)
		terms := make([]buslib.Terminal, n)
		for i := range terms {
			terms[i] = buslib.DefaultTerminal("t" + string(rune('a'+i)))
		}
		res, err := TimingDriven(pts, terms, tech, 800, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Baseline: optimize the 1-Steiner topology directly.
		st := rsmt.Steiner(pts)
		baseTr, err := toTopo(st, terms)
		if err != nil {
			t.Fatal(err)
		}
		baseTr.PlaceInsertionPoints(800)
		rt := baseTr.RootAt(baseTr.Terminals()[0])
		baseNet := rctree.NewNet(rt, tech, rctree.Assignment{})
		_ = ard.Compute(baseNet, ard.Options{})
		// TimingDriven considered the 1-Steiner candidate itself, so its
		// chosen topology can only be at least as good.
		best, err := res.Suite.MinARD()
		if err != nil {
			t.Fatal(err)
		}
		if best.ARD <= 0 {
			t.Fatalf("degenerate result")
		}
		if res.Tree == nil || res.WirelengthUm <= 0 {
			t.Fatalf("missing topology info")
		}
	}
}

// TestTimingDrivenSeesThroughBuffering: construct a case where the
// min-wirelength topology is a long daisy chain but a star-ish topology
// wins after buffering; the timing-driven synthesis must not pick the
// worse optimized topology among its candidates.
func TestTimingDrivenPicksBestCandidate(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tech := buslib.Default()
	pts := randPts(r, 7)
	terms := make([]buslib.Terminal, len(pts))
	for i := range terms {
		terms[i] = buslib.DefaultTerminal("x")
	}
	res, err := TimingDriven(pts, terms, tech, 800, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Score both candidates independently and verify the returned one is
	// the minimum.
	best := math.Inf(1)
	for _, st := range []rsmt.Tree{WirelengthTree(pts, Options{}), rsmt.Steiner(pts)} {
		tr, err := toTopo(st, terms)
		if err != nil {
			t.Fatal(err)
		}
		tr.PlaceInsertionPoints(800)
		rt := tr.RootAt(tr.Terminals()[0])
		opt, err := optimize(rt, tech)
		if err != nil {
			t.Fatal(err)
		}
		if opt < best {
			best = opt
		}
	}
	got, err := res.Suite.MinARD()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.ARD-best) > 1e-9 {
		t.Errorf("TimingDriven returned %.6f, best candidate is %.6f",
			got.ARD, best)
	}
}

func TestTimingDrivenErrors(t *testing.T) {
	tech := buslib.Default()
	if _, err := TimingDriven(randPts(rand.New(rand.NewSource(1)), 3),
		make([]buslib.Terminal, 2), tech, 800, Options{}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := TimingDriven([]geom.Point{geom.Pt(0, 0)},
		make([]buslib.Terminal, 1), tech, 800, Options{}); err == nil {
		t.Error("single terminal accepted")
	}
}

func optimize(rt *topo.Rooted, tech buslib.Tech) (float64, error) {
	res, err := core.Optimize(rt, tech, core.Options{Repeaters: true})
	if err != nil {
		return 0, err
	}
	best, err := res.Suite.MinARD()
	if err != nil {
		return 0, err
	}
	return best.ARD, nil
}
