package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"testing"

	"msrnet/internal/obs"
)

// testLocal is a minimal Local: always ready, fixed load, map cache.
type testLocal struct {
	ready bool
	load  int64
	cache map[string][]byte
}

func newTestLocal() *testLocal { return &testLocal{ready: true, cache: map[string][]byte{}} }

func (l *testLocal) CacheGet(key string) ([]byte, bool) { v, ok := l.cache[key]; return v, ok }
func (l *testLocal) CachePut(key string, val []byte)    { l.cache[key] = val }
func (l *testLocal) Submit(ctx context.Context, body []byte, meta ForwardMeta) ([]byte, int) {
	return []byte(`{}`), 200
}
func (l *testLocal) Status() (bool, int64) { return l.ready, l.load }

// newTestFleet builds n nodes on one MemTransport, each seeded with its
// ring-next neighbour (the brahms-test bootstrap shape).
func newTestFleet(t *testing.T, n int) (*MemTransport, []*Node) {
	t.Helper()
	tr := NewMemTransport()
	peers := make([]Peer, n)
	for i := range peers {
		peers[i] = Peer{ID: ID(fmt.Sprintf("n%d", i)), Addr: fmt.Sprintf("mem://n%d", i)}
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(Config{
			Self:      peers[i],
			Seeds:     []Peer{peers[(i+1)%n]},
			Params:    Params{ViewSize: 8, Fanout: 2, SuspectAfter: 2, StaleTicks: 4},
			Transport: tr,
			Seed:      int64(i + 1),
			Epoch:     int64(i+1) * 1000,
			Reg:       obs.New(),
			Logger:    slog.New(slog.DiscardHandler),
		})
		nodes[i].SetLocal(newTestLocal())
		tr.Add(nodes[i])
	}
	return tr, nodes
}

func tickAll(nodes []*Node) {
	for _, n := range nodes {
		n.Tick()
	}
}

// converged reports whether every node's membership is exactly want.
func converged(nodes []*Node, want map[ID]bool) bool {
	for _, n := range nodes {
		ms := n.Members()
		if len(ms) != len(want) {
			return false
		}
		for _, m := range ms {
			if !want[m.ID] {
				return false
			}
		}
	}
	return true
}

func fullSet(n int) map[ID]bool {
	want := map[ID]bool{}
	for i := 0; i < n; i++ {
		want[ID(fmt.Sprintf("n%d", i))] = true
	}
	return want
}

func TestGossipConvergesFromRingBootstrap(t *testing.T) {
	_, nodes := newTestFleet(t, 5)
	want := fullSet(5)
	for round := 0; round < 30; round++ {
		tickAll(nodes)
		if converged(nodes, want) {
			// Rings must agree everywhere once views agree.
			for _, k := range keys(50) {
				o0, ok := nodes[0].Owner(k)
				if !ok {
					t.Fatal("no owner")
				}
				for _, n := range nodes[1:] {
					if o, _ := n.Owner(k); o.ID != o0.ID {
						t.Fatalf("ring disagreement for %s: %s vs %s", k, o0.ID, o.ID)
					}
				}
			}
			return
		}
	}
	for i, n := range nodes {
		t.Logf("node %d members: %+v", i, n.Members())
	}
	t.Fatal("views did not converge in 30 rounds")
}

func TestGossipDropsKilledPeer(t *testing.T) {
	tr, nodes := newTestFleet(t, 4)
	for round := 0; round < 30 && !converged(nodes, fullSet(4)); round++ {
		tickAll(nodes)
	}
	if !converged(nodes, fullSet(4)) {
		t.Fatal("no initial convergence")
	}

	tr.Kill("n3")
	survivors := nodes[:3]
	want := fullSet(3)
	for round := 0; round < 40; round++ {
		tickAll(survivors)
		if converged(survivors, want) {
			for _, n := range survivors {
				if _, ok := n.view["n3"]; ok {
					t.Fatal("dead peer still in view")
				}
			}
			// The dead peer owns nothing on the new ring.
			for _, k := range keys(100) {
				if o, _ := survivors[0].Owner(k); o.ID == "n3" {
					t.Fatalf("dead peer still owns %s", k)
				}
			}
			return
		}
	}
	t.Fatal("survivors did not drop the killed peer in 40 rounds")
}

func TestGossipHealsPartition(t *testing.T) {
	tr, nodes := newTestFleet(t, 3)
	for round := 0; round < 30 && !converged(nodes, fullSet(3)); round++ {
		tickAll(nodes)
	}
	tr.Partition("n0", "n1")
	// Ride out the partition: n2 still talks to both sides, so nobody
	// should lose the full membership (gossip routes around the cut).
	for round := 0; round < 20; round++ {
		tickAll(nodes)
	}
	if !converged(nodes, fullSet(3)) {
		t.Fatal("membership fell apart under a single-link partition")
	}
	tr.Heal("n0", "n1")
	for round := 0; round < 10; round++ {
		tickAll(nodes)
	}
	if !converged(nodes, fullSet(3)) {
		t.Fatal("membership did not survive the heal")
	}
}

func TestGossipRejoinAfterRevive(t *testing.T) {
	tr, nodes := newTestFleet(t, 3)
	for round := 0; round < 30 && !converged(nodes, fullSet(3)); round++ {
		tickAll(nodes)
	}
	tr.Kill("n2")
	for round := 0; round < 40 && !converged(nodes[:2], fullSet(2)); round++ {
		tickAll(nodes[:2])
	}
	if !converged(nodes[:2], fullSet(2)) {
		t.Fatal("survivors did not drop n2")
	}

	// n2 restarts with a fresh (later) epoch: its heartbeat outranks the
	// stale fence and it rejoins.
	revived := NewNode(Config{
		Self:      Peer{ID: "n2", Addr: "mem://n2"},
		Seeds:     []Peer{{ID: "n0", Addr: "mem://n0"}},
		Params:    Params{ViewSize: 8, Fanout: 2, SuspectAfter: 2, StaleTicks: 4},
		Transport: tr,
		Seed:      99,
		Epoch:     1_000_000,
		Reg:       obs.New(),
		Logger:    slog.New(slog.DiscardHandler),
	})
	revived.SetLocal(newTestLocal())
	tr.Add(revived)
	all := []*Node{nodes[0], nodes[1], revived}
	for round := 0; round < 40; round++ {
		tickAll(all)
		if converged(all, fullSet(3)) {
			return
		}
	}
	t.Fatal("revived peer did not rejoin in 40 rounds")
}

func TestLeastLoadedPrefersReadyAndLight(t *testing.T) {
	_, nodes := newTestFleet(t, 3)
	locals := make([]*testLocal, 3)
	for i, n := range nodes {
		locals[i] = newTestLocal()
		locals[i].load = int64(10 - i) // n2 lightest
		n.SetLocal(locals[i])
	}
	for round := 0; round < 30 && !converged(nodes, fullSet(3)); round++ {
		tickAll(nodes)
	}
	// One more round so every view carries fresh load annotations.
	tickAll(nodes)
	p, ok := nodes[0].LeastLoaded()
	if !ok || p.ID != "n2" {
		t.Fatalf("least loaded: got %v %v, want n2", p, ok)
	}
	// A draining peer is not a stealing target.
	locals[2].ready = false
	for round := 0; round < 4; round++ {
		tickAll(nodes)
	}
	p, ok = nodes[0].LeastLoaded()
	if !ok || p.ID != "n1" {
		t.Fatalf("least loaded with n2 draining: got %v %v, want n1", p, ok)
	}
	// Excluding the remaining candidate leaves nothing.
	if _, ok := nodes[0].LeastLoaded("n1", "n2"); ok {
		t.Fatal("LeastLoaded ignored the exclusion list")
	}
}

func TestStateCarriesRingParameters(t *testing.T) {
	_, nodes := newTestFleet(t, 3)
	for round := 0; round < 30 && !converged(nodes, fullSet(3)); round++ {
		tickAll(nodes)
	}
	st := nodes[0].State()
	if st.Schema != Schema {
		t.Fatalf("schema: %q", st.Schema)
	}
	if st.Vnodes != nodes[0].Vnodes() || st.Vnodes <= 0 {
		t.Fatalf("vnodes: %d", st.Vnodes)
	}
	if len(st.Members) != 3 {
		t.Fatalf("members: %+v", st.Members)
	}
	// A client building a ring from the state must agree with the node.
	ids := make([]ID, 0, len(st.Members))
	for _, m := range st.Members {
		ids = append(ids, m.ID)
	}
	ring := NewRing(ids, st.Vnodes)
	for _, k := range keys(50) {
		want, _ := nodes[0].Owner(k)
		got, _ := ring.Owner(k)
		if got != want.ID {
			t.Fatalf("client ring disagrees for %s: %s vs %s", k, got, want.ID)
		}
	}
}
