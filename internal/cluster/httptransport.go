package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"msrnet/internal/obs/reqctx"
)

// HTTPTransport is the production Transport: gossip and shard-cache
// traffic hit the peer's /cluster/* endpoints (served by Handler on
// msrnetd's ordinary listener), forwards hit its /v1/jobs.
type HTTPTransport struct {
	// Client issues the requests; a 5s-timeout client when nil. Per-
	// operation deadlines (gossip exchange, shard-cache hop) are
	// tighter and come from the caller's context.
	Client *http.Client
}

func (t *HTTPTransport) http() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return defaultHTTPClient
}

var defaultHTTPClient = &http.Client{Timeout: 5 * time.Second}

func (t *HTTPTransport) Gossip(ctx context.Context, from, to Peer, msg GossipMsg) (View, error) {
	body, err := json.Marshal(msg)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode gossip: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, to.Addr+"/cluster/gossip", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: gossip %s: HTTP %d", to.ID, resp.StatusCode)
	}
	var v View
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&v); err != nil {
		return nil, fmt.Errorf("cluster: decode gossip reply: %w", err)
	}
	return v, nil
}

func (t *HTTPTransport) CacheGet(ctx context.Context, from, to Peer, key string) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		to.Addr+"/cluster/cache?key="+url.QueryEscape(key), nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := t.http().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		val, err := io.ReadAll(io.LimitReader(resp.Body, maxCacheValueBytes+1))
		if err != nil {
			return nil, false, err
		}
		return val, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("cluster: cache get from %s: HTTP %d", to.ID, resp.StatusCode)
	}
}

func (t *HTTPTransport) CachePut(ctx context.Context, from, to Peer, key string, val []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		to.Addr+"/cluster/cache?key="+url.QueryEscape(key), bytes.NewReader(val))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("cluster: cache put to %s: HTTP %d", to.ID, resp.StatusCode)
	}
	return nil
}

func (t *HTTPTransport) Submit(ctx context.Context, from, to Peer, body []byte, meta ForwardMeta) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, to.Addr+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderForwardHops, strconv.Itoa(meta.Hops))
	req.Header.Set(HeaderForwardFrom, string(meta.From))
	if meta.TraceID != "" {
		req.Header.Set(reqctx.HeaderTraceID, meta.TraceID)
	}
	if meta.APIKey != "" {
		req.Header.Set(reqctx.HeaderAPIKey, meta.APIKey)
	}
	if meta.ParentSpan != "" {
		req.Header.Set(HeaderForwardSpan, meta.ParentSpan)
	}
	resp, err := t.http().Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return out, resp.StatusCode, nil
}

// maxCacheValueBytes bounds one shard-cache value (a serialized
// Result); a full Pareto suite over a large net fits comfortably.
const maxCacheValueBytes = 16 << 20

// maxGossipBytes bounds an inbound gossip message.
const maxGossipBytes = 1 << 20

// Handler serves the node's cluster surface, mounted by the daemon
// under /cluster/ on its ordinary listener:
//
//	POST /cluster/gossip   push/pull view exchange (GossipMsg in, View out)
//	GET  /cluster/members  msrnet-cluster/v1 membership + ring parameters
//	GET  /cluster/cache    shard-cache get  (?key=..., 404 on miss)
//	PUT  /cluster/cache    shard-cache put  (?key=..., body = value)
func Handler(n *Node) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/gossip", func(w http.ResponseWriter, r *http.Request) {
		var msg GossipMsg
		if err := json.NewDecoder(io.LimitReader(r.Body, maxGossipBytes)).Decode(&msg); err != nil {
			http.Error(w, "bad gossip message: "+err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(n.HandleGossip(msg))
	})
	mux.HandleFunc("GET /cluster/members", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(n.State())
	})
	mux.HandleFunc("GET /cluster/cache", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		l := n.localHandler()
		if key == "" || l == nil {
			http.Error(w, "missing key", http.StatusBadRequest)
			return
		}
		val, ok := l.CacheGet(key)
		if !ok {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(val)
	})
	mux.HandleFunc("PUT /cluster/cache", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		l := n.localHandler()
		if key == "" || l == nil {
			http.Error(w, "missing key", http.StatusBadRequest)
			return
		}
		val, err := io.ReadAll(io.LimitReader(r.Body, maxCacheValueBytes))
		if err != nil {
			http.Error(w, "read value: "+err.Error(), http.StatusBadRequest)
			return
		}
		l.CachePut(key, val)
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}
