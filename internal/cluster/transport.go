package cluster

import (
	"context"
	"time"
)

// Forward headers: a forwarded (work-stolen) submission carries its
// hop count and origin so the receiving daemon can cap forwarding
// chains and stamp provenance on explain reports. The trace ID rides
// the standard X-Msrnet-Trace-Id header (internal/obs/reqctx).
const (
	HeaderForwardHops = "X-Msrnet-Forward-Hops"
	HeaderForwardFrom = "X-Msrnet-Forwarded-From"
	// HeaderForwardSpan carries the forwarding daemon's hop span
	// reference ("process#id"), so the receiving daemon's submit span
	// links under it and the fleet collector can stitch both sides of
	// the hop into one trace tree.
	HeaderForwardSpan = "X-Msrnet-Forward-Span"
)

// ForwardMeta is the provenance of a forwarded submission.
type ForwardMeta struct {
	// Hops counts forwards so far; a daemon refuses to forward past the
	// configured cap, so a saturated fleet degrades to 429, not to a
	// request orbiting forever.
	Hops int
	// From is the forwarding peer.
	From ID
	// TraceID propagates the request's correlation ID across the hop.
	TraceID string
	// APIKey propagates the submitting tenant's API key across the hop
	// (the X-Msrnet-Api-Key header), so the executing peer bills the
	// work to the same tenant the origin admitted.
	APIKey string
	// ParentSpan is the forwarding daemon's hop span reference
	// ("process#id"): the executing peer's submit span records it as a
	// remote parent, linking both sides of the hop in a stitched trace.
	ParentSpan string
}

// Transport carries the four cluster operations between peers. The
// in-memory implementation makes multi-node behaviour deterministic in
// tests; the HTTP implementation rides msrnetd's listener (gossip and
// cache under /cluster/*, forwards on the ordinary /v1/jobs).
type Transport interface {
	// Gossip performs one push/pull exchange: deliver msg to peer and
	// return the peer's view.
	Gossip(ctx context.Context, from, to Peer, msg GossipMsg) (View, error)
	// CacheGet fetches the shard-cache value for key from peer; ok is
	// false on a clean miss.
	CacheGet(ctx context.Context, from, to Peer, key string) (val []byte, ok bool, err error)
	// CachePut stores the shard-cache value for key on peer.
	CachePut(ctx context.Context, from, to Peer, key string, val []byte) error
	// Submit posts a msrnet-job/v1 request body to peer with forward
	// provenance, returning the response body and HTTP status.
	Submit(ctx context.Context, from, to Peer, body []byte, meta ForwardMeta) (resp []byte, status int, err error)
}

// Local is the daemon-side handler a Node dispatches inbound cluster
// traffic to; internal/service implements it over the job queue and
// the LRU result cache.
type Local interface {
	// CacheGet returns the locally cached serialized Result for key.
	CacheGet(key string) ([]byte, bool)
	// CachePut stores a serialized Result under key.
	CachePut(key string, val []byte)
	// Submit runs a forwarded msrnet-job/v1 request body and returns
	// the response body plus its HTTP status.
	Submit(ctx context.Context, body []byte, meta ForwardMeta) ([]byte, int)
	// Status reports readiness (the /readyz verdict) and queue load.
	Status() (ready bool, load int64)
}

// remoteTimeout bounds single-hop shard-cache operations: the cache is
// an optimization, so a slow or dead owner must cost milliseconds, not
// the job deadline.
const remoteTimeout = 2 * time.Second

// CacheGet fetches key from peer's shard cache (single hop), counting
// hits/misses/errors under cluster/*. A transport error degrades to a
// miss: the caller solves locally.
func (n *Node) CacheGet(ctx context.Context, peer Peer, key string) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(ctx, remoteTimeout)
	defer cancel()
	val, ok, err := n.tr.CacheGet(ctx, n.cfg.Self, peer, key)
	if err != nil {
		n.remoteErrs.Inc()
		return nil, false
	}
	if !ok {
		n.remoteMisses.Inc()
		return nil, false
	}
	n.remoteHits.Inc()
	return val, true
}

// CachePut stores key on peer's shard cache (single hop). It reports
// whether the put landed so the caller can fall back to its local
// cache when the owner is down.
func (n *Node) CachePut(ctx context.Context, peer Peer, key string, val []byte) bool {
	ctx, cancel := context.WithTimeout(ctx, remoteTimeout)
	defer cancel()
	if err := n.tr.CachePut(ctx, n.cfg.Self, peer, key, val); err != nil {
		n.remotePutErrs.Inc()
		return false
	}
	n.remotePuts.Inc()
	return true
}

// Forward posts a job request to peer with forward provenance.
func (n *Node) Forward(ctx context.Context, peer Peer, body []byte, meta ForwardMeta) ([]byte, int, error) {
	resp, status, err := n.tr.Submit(ctx, n.cfg.Self, peer, body, meta)
	if err != nil || status < 200 || status >= 300 {
		n.forwardErrs.Inc()
		return resp, status, err
	}
	n.forwards.Inc()
	return resp, status, nil
}

// localHandler exposes the installed Local to transports delivering
// inbound traffic (the in-memory transport calls it directly; the HTTP
// handler goes through the same accessor).
func (n *Node) localHandler() Local {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.local
}
