package cluster

import (
	"context"
	"sort"
	"time"
)

// GossipMsg is one push/pull exchange request: the sender's identity
// and its annotated view (including the sender's own fresh Info, which
// is what makes the exchange a push).
type GossipMsg struct {
	From Peer `json:"from"`
	View View `json:"view"`
}

// exchangeTimeout bounds one gossip exchange so a dead peer costs a
// round at most this much wall clock.
const exchangeTimeout = 2 * time.Second

// Tick runs one gossip round: push/pull exchanges with up to Fanout
// view peers, then the Brahms-style view mix — α slots from peers that
// pushed to us since the last round, β from the views we pulled, γ
// from a history sample — with failed and stale peers dropped. Rounds
// are driven by Start in production and called directly by tests.
func (n *Node) Tick() {
	n.rounds.Inc()
	n.mu.Lock()
	n.tick++
	self := n.selfInfoLocked()
	push := n.liveViewLocked()
	push[self.ID] = self
	targets := n.targetsLocked()
	// Claim the pushes received since the last round; exchanges below
	// run unlocked, so fresh pushes land in the next round's mix.
	pushes := n.pushes
	n.pushes = nil
	n.mu.Unlock()

	var pulls []View
	failed := map[ID]bool{}
	for _, p := range targets {
		ctx, cancel := context.WithTimeout(context.Background(), exchangeTimeout)
		reply, err := n.tr.Gossip(ctx, n.cfg.Self, p, GossipMsg{From: n.cfg.Self, View: push})
		cancel()
		if err != nil {
			n.gossipFail.Inc()
			failed[p.ID] = true
			continue
		}
		n.gossipOK.Inc()
		pulls = append(pulls, reply)
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	for id := range failed {
		if e, ok := n.view[id]; ok {
			e.fails++
		}
	}
	n.mixLocked(pushes, pulls)
	n.rebuildRingLocked()
}

// HandleGossip answers one exchange: record the sender as a push
// candidate, absorb its view into history, and reply with our live
// view plus our own fresh Info (the pull half).
func (n *Node) HandleGossip(msg GossipMsg) View {
	n.mu.Lock()
	defer n.mu.Unlock()
	if from, ok := msg.View[msg.From.ID]; ok && from.ID != n.cfg.Self.ID {
		n.pushes = append(n.pushes, from)
	} else if msg.From.ID != "" && msg.From.ID != n.cfg.Self.ID {
		n.pushes = append(n.pushes, Info{Peer: msg.From})
	}
	for id, info := range msg.View {
		if id == n.cfg.Self.ID {
			continue
		}
		n.recordHistLocked(info)
	}
	reply := n.liveViewLocked()
	reply[n.cfg.Self.ID] = n.selfInfoLocked()
	return reply
}

// liveViewLocked copies the current view as an exchangeable View.
func (n *Node) liveViewLocked() View {
	v := make(View, len(n.view)+1)
	for id, e := range n.view {
		v[id] = e.info
	}
	return v
}

// targetsLocked samples up to Fanout distinct exchange targets from
// the view, falling back to the seed/history address book when the
// view is empty (bootstrap, or every member temporarily lost).
func (n *Node) targetsLocked() []Peer {
	pool := make([]Peer, 0, len(n.view))
	for _, e := range n.view {
		pool = append(pool, e.info.Peer)
	}
	if len(pool) == 0 {
		for _, info := range n.hist {
			pool = append(pool, info.Peer)
		}
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].ID < pool[j].ID })
	n.rnd.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > n.prm.Fanout {
		pool = pool[:n.prm.Fanout]
	}
	return pool
}

// recordHistLocked remembers the freshest Info seen for a peer and
// advances its staleness fence when the heartbeat moved.
func (n *Node) recordHistLocked(info Info) {
	if info.ID == "" || info.ID == n.cfg.Self.ID {
		return
	}
	if cur, ok := n.hist[info.ID]; !ok || info.Seq > cur.Seq {
		n.hist[info.ID] = info
	}
	if info.Seq > n.lastSeq[info.ID] {
		n.lastSeq[info.ID] = info.Seq
		n.lastAdvance[info.ID] = n.tick
		// Witness stamp: our wall clock at the moment this peer's
		// heartbeat advanced, paired with the WallMs the peer put in it.
		n.heardMs[info.ID] = n.wallMs()
		// An advancing heartbeat proves the peer is alive, even when our
		// own exchanges with it fail (one cut link, not a dead process):
		// gossip relayed through third parties clears the suspicion.
		if e, ok := n.view[info.ID]; ok {
			e.fails = 0
		}
	}
}

// admissibleLocked reports whether a candidate may (re)enter the view:
// its heartbeat must have advanced within the staleness window. A dead
// peer's echo keeps its last Seq forever and is fenced out once every
// node has seen no advance for StaleTicks rounds.
func (n *Node) admissibleLocked(info Info) bool {
	if info.ID == "" || info.ID == n.cfg.Self.ID {
		return false
	}
	last, seen := n.lastAdvance[info.ID]
	if !seen {
		// Never heard a heartbeat: a bootstrap seed or a brand-new peer.
		// Admit it and let the fence judge it from here on.
		return true
	}
	return n.tick-last <= int64(n.prm.StaleTicks)
}

// mixLocked computes the next view from this round's evidence.
func (n *Node) mixLocked(pushes []Info, pulls []View) {
	for _, info := range pushes {
		n.recordHistLocked(info)
	}
	for _, v := range pulls {
		for _, info := range v {
			n.recordHistLocked(info)
		}
	}

	l := n.prm.ViewSize
	slots := func(f float64) int {
		k := int(f*float64(l) + 0.5)
		if k < 1 {
			k = 1
		}
		return k
	}
	cands := View{}
	take := func(pool []Info, limit int) {
		n.rnd.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		taken := 0
		for _, info := range pool {
			if taken >= limit {
				break
			}
			if !n.admissibleLocked(info) {
				continue
			}
			if cands.merge(info) {
				taken++
			}
		}
	}

	// α: peers that pushed to us.
	take(append([]Info(nil), pushes...), slots(n.prm.Alpha))
	// β: peers from the views we pulled.
	var pulled []Info
	for _, v := range pulls {
		for _, info := range v {
			pulled = append(pulled, info)
		}
	}
	sort.Slice(pulled, func(i, j int) bool {
		if pulled[i].ID != pulled[j].ID {
			return pulled[i].ID < pulled[j].ID
		}
		return pulled[i].Seq > pulled[j].Seq
	})
	take(pulled, slots(n.prm.Beta))
	// γ: a uniform sample of everyone ever seen.
	histPool := make([]Info, 0, len(n.hist))
	for _, info := range n.hist {
		histPool = append(histPool, info)
	}
	sort.Slice(histPool, func(i, j int) bool { return histPool[i].ID < histPool[j].ID })
	take(histPool, slots(n.prm.Gamma))

	// Carry over current members not re-drawn this round (keeps the
	// view stable in small fleets where one round's sample is sparse),
	// unless they are suspect or stale.
	next := map[ID]*entry{}
	for id, info := range cands {
		e := &entry{info: info}
		if old, ok := n.view[id]; ok {
			e.fails = old.fails
			if info.Seq < old.info.Seq {
				e.info = old.info
			}
		}
		next[id] = e
	}
	for id, old := range n.view {
		if _, ok := next[id]; !ok && n.admissibleLocked(old.info) {
			next[id] = old
		}
	}
	for id, e := range next {
		if e.fails >= n.prm.SuspectAfter || !n.admissibleLocked(e.info) {
			delete(next, id)
			n.removed.Inc()
			n.log.Info("cluster: peer removed", "peer", id, "fails", e.fails, "seq", e.info.Seq)
		}
	}
	// Cap at ViewSize, preferring the freshest heartbeats.
	if len(next) > l {
		ids := make([]ID, 0, len(next))
		for id := range next {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			a, b := next[ids[i]], next[ids[j]]
			if a.info.Seq != b.info.Seq {
				return a.info.Seq > b.info.Seq
			}
			return ids[i] < ids[j]
		})
		for _, id := range ids[l:] {
			delete(next, id)
		}
	}
	n.view = next
}
