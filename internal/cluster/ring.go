package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring with virtual nodes. Members and keys
// hash onto a 64-bit circle; a key is owned by the first member point
// clockwise from the key's hash. With V virtual points per member,
// adding or removing one member moves only ~1/N of the key space, so a
// peer death reshuffles a sliver of the shard cache, not all of it.
//
// The hash is the first 8 bytes of SHA-256 — deliberately not a seeded
// or per-process hash, because every node (and every cluster-aware
// client) must derive the identical ring from the same member list, on
// any platform, in any process.
type Ring struct {
	points []ringPoint
	n      int
}

type ringPoint struct {
	h  uint64
	id ID
}

// NewRing builds the ring over the given members with vnodes virtual
// points each. Duplicate and empty IDs are ignored.
func NewRing(ids []ID, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := map[ID]bool{}
	r := &Ring{}
	for _, id := range ids {
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		r.n++
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{h: hash64(string(id) + "#" + strconv.Itoa(v)), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].id < r.points[j].id
	})
	return r
}

// hash64 maps s onto the ring circle.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Members reports the distinct member count.
func (r *Ring) Members() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Owner returns the member owning key; ok is false on an empty ring.
func (r *Ring) Owner(key string) (ID, bool) {
	if r == nil || len(r.points) == 0 {
		return "", false
	}
	return r.points[r.at(key)].id, true
}

// Successors returns up to k distinct members strictly after key's
// owner in clockwise order — the failover candidates when the owner is
// unreachable.
func (r *Ring) Successors(key string, k int) []ID {
	if r == nil || len(r.points) == 0 || k <= 0 {
		return nil
	}
	i := r.at(key)
	owner := r.points[i].id
	seen := map[ID]bool{owner: true}
	var out []ID
	for step := 1; step < len(r.points) && len(out) < k; step++ {
		id := r.points[(i+step)%len(r.points)].id
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// at locates the first ring point clockwise from key's hash.
func (r *Ring) at(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
