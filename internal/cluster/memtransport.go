package cluster

import (
	"context"
	"fmt"
	"sync"
)

// MemTransport is the in-process Transport: it routes every operation
// to the registered target Node's handlers directly, with no sockets,
// timers or real concurrency of its own — which is what makes
// multi-node gossip, shard-cache and forwarding behaviour exactly
// reproducible in tests. Kill and Partition simulate peer death and
// network splits.
type MemTransport struct {
	mu    sync.Mutex
	nodes map[ID]*Node
	down  map[ID]bool
	cut   map[[2]ID]bool
}

// NewMemTransport builds an empty in-memory network.
func NewMemTransport() *MemTransport {
	return &MemTransport{nodes: map[ID]*Node{}, down: map[ID]bool{}, cut: map[[2]ID]bool{}}
}

// Add registers a node as reachable.
func (t *MemTransport) Add(n *Node) {
	t.mu.Lock()
	t.nodes[n.Self().ID] = n
	delete(t.down, n.Self().ID)
	t.mu.Unlock()
}

// Kill makes a node unreachable (process death); Revive undoes it.
func (t *MemTransport) Kill(id ID) {
	t.mu.Lock()
	t.down[id] = true
	t.mu.Unlock()
}

// Revive restores a killed node.
func (t *MemTransport) Revive(id ID) {
	t.mu.Lock()
	delete(t.down, id)
	t.mu.Unlock()
}

// Partition cuts the link between a and b in both directions; Heal
// restores it.
func (t *MemTransport) Partition(a, b ID) {
	t.mu.Lock()
	t.cut[link(a, b)] = true
	t.mu.Unlock()
}

// Heal restores the link between a and b.
func (t *MemTransport) Heal(a, b ID) {
	t.mu.Lock()
	delete(t.cut, link(a, b))
	t.mu.Unlock()
}

func link(a, b ID) [2]ID {
	if a > b {
		a, b = b, a
	}
	return [2]ID{a, b}
}

// reach resolves the target node, honoring kills and partitions.
func (t *MemTransport) reach(from, to ID) (*Node, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.down[to] {
		return nil, fmt.Errorf("cluster: peer %s is down", to)
	}
	if t.cut[link(from, to)] {
		return nil, fmt.Errorf("cluster: link %s-%s is partitioned", from, to)
	}
	n, ok := t.nodes[to]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown peer %s", to)
	}
	return n, nil
}

func (t *MemTransport) Gossip(ctx context.Context, from, to Peer, msg GossipMsg) (View, error) {
	n, err := t.reach(from.ID, to.ID)
	if err != nil {
		return nil, err
	}
	return n.HandleGossip(msg), nil
}

func (t *MemTransport) CacheGet(ctx context.Context, from, to Peer, key string) ([]byte, bool, error) {
	n, err := t.reach(from.ID, to.ID)
	if err != nil {
		return nil, false, err
	}
	l := n.localHandler()
	if l == nil {
		return nil, false, fmt.Errorf("cluster: peer %s has no local handler", to.ID)
	}
	val, ok := l.CacheGet(key)
	return val, ok, nil
}

func (t *MemTransport) CachePut(ctx context.Context, from, to Peer, key string, val []byte) error {
	n, err := t.reach(from.ID, to.ID)
	if err != nil {
		return err
	}
	l := n.localHandler()
	if l == nil {
		return fmt.Errorf("cluster: peer %s has no local handler", to.ID)
	}
	l.CachePut(key, val)
	return nil
}

func (t *MemTransport) Submit(ctx context.Context, from, to Peer, body []byte, meta ForwardMeta) ([]byte, int, error) {
	n, err := t.reach(from.ID, to.ID)
	if err != nil {
		return nil, 0, err
	}
	l := n.localHandler()
	if l == nil {
		return nil, 0, fmt.Errorf("cluster: peer %s has no local handler", to.ID)
	}
	resp, status := l.Submit(ctx, body, meta)
	return resp, status, nil
}
