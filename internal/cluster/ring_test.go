package cluster

import (
	"fmt"
	"testing"
)

func ringIDs(n int) []ID {
	ids := make([]ID, n)
	for i := range ids {
		ids[i] = ID(fmt.Sprintf("n%d", i))
	}
	return ids
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("sha256:%064d", i)
	}
	return out
}

func TestRingDeterministicAcrossConstruction(t *testing.T) {
	a := NewRing(ringIDs(5), 64)
	// Same members in a different order (and with duplicates) must give
	// the identical ring — clients and every daemon build it separately.
	shuffled := []ID{"n3", "n1", "n4", "n1", "n0", "n2", ""}
	b := NewRing(shuffled, 64)
	if a.Members() != 5 || b.Members() != 5 {
		t.Fatalf("member counts: %d, %d", a.Members(), b.Members())
	}
	for _, k := range keys(200) {
		ao, _ := a.Owner(k)
		bo, _ := b.Owner(k)
		if ao != bo {
			t.Fatalf("owner disagreement for %s: %s vs %s", k, ao, bo)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	var nilRing *Ring
	if _, ok := nilRing.Owner("k"); ok {
		t.Fatal("nil ring claimed an owner")
	}
	if _, ok := NewRing(nil, 8).Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	solo := NewRing([]ID{"only"}, 8)
	if id, ok := solo.Owner("k"); !ok || id != "only" {
		t.Fatalf("single-member ring: %q, %v", id, ok)
	}
	if s := solo.Successors("k", 3); len(s) != 0 {
		t.Fatalf("single-member ring has successors: %v", s)
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(ringIDs(4), 64)
	counts := map[ID]int{}
	const n = 4000
	for _, k := range keys(n) {
		id, ok := r.Owner(k)
		if !ok {
			t.Fatal("no owner")
		}
		counts[id]++
	}
	for id, c := range counts {
		// With 64 vnodes the split is not perfect, but no member should
		// own more than twice or less than half its fair share.
		if c < n/8 || c > n/2 {
			t.Fatalf("imbalanced ring: %s owns %d of %d", id, c, n)
		}
	}
}

func TestRingMinimalReshuffleOnMemberLoss(t *testing.T) {
	full := NewRing(ringIDs(4), 64)
	without := NewRing([]ID{"n0", "n1", "n2"}, 64)
	moved := 0
	const n = 2000
	for _, k := range keys(n) {
		was, _ := full.Owner(k)
		now, _ := without.Owner(k)
		if was != "n3" && was != now {
			t.Fatalf("key %s moved from surviving owner %s to %s", k, was, now)
		}
		if was == "n3" {
			moved++
		}
	}
	// Consistent hashing: only the dead member's ~1/4 share moves.
	if moved < n/8 || moved > n/2 {
		t.Fatalf("unexpected moved share: %d of %d", moved, n)
	}
}

func TestRingSuccessorsDistinctAndExcludeOwner(t *testing.T) {
	r := NewRing(ringIDs(5), 64)
	for _, k := range keys(50) {
		owner, _ := r.Owner(k)
		succ := r.Successors(k, 3)
		if len(succ) != 3 {
			t.Fatalf("want 3 successors, got %v", succ)
		}
		seen := map[ID]bool{owner: true}
		for _, id := range succ {
			if seen[id] {
				t.Fatalf("successor list repeats or includes owner: owner=%s succ=%v", owner, succ)
			}
			seen[id] = true
		}
	}
}
