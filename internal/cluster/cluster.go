// Package cluster turns a set of msrnetd processes into one fleet. It
// has three layers (DESIGN.md §13):
//
//   - membership: a Brahms-style gossip peer-sampler. Each node keeps a
//     bounded view of peers and, every round, performs push/pull view
//     exchanges with a few of them over a pluggable Transport; the next
//     view is mixed from pushed-in candidates, pulled views and a
//     history sample (the α/β/γ split), so a node cannot be flooded
//     into a poisoned view by pushes alone. All randomness comes from a
//     caller-seeded RNG and rounds can be driven manually, so
//     multi-node behaviour is deterministically testable in-memory.
//
//   - sharding: a consistent-hash ring (virtual nodes) over the live
//     member set. Keys are netio.ContentHash values, so every net has
//     one home peer and the per-daemon LRU result cache composes into a
//     cluster-wide shard cache with single-hop remote get/put.
//
//   - load + health: each node stamps its gossiped Info with its
//     /readyz verdict and queue load, so peers can pick live,
//     least-loaded targets for work-stealing without extra RPCs.
//
// The package is deliberately independent of internal/service: the
// daemon plugs in as a Local handler (cache, submit, status) and the
// two transports — in-memory for tests, HTTP riding msrnetd's listener
// at /cluster/* — carry the same four operations.
package cluster

import (
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"sync"
	"time"

	"msrnet/internal/obs"
)

// Schema identifies the JSON layout of the membership/state bodies
// (GET /cluster/members, postmortem cluster.json), the same way
// msrnet-metrics/v1 and msrnet-explain/v1 version their formats.
const Schema = "msrnet-cluster/v1"

// ID is a peer's stable identity within the fleet.
type ID string

// Peer is how a node is addressed: its identity plus the base URL the
// HTTP transport dials (opaque to the in-memory transport).
type Peer struct {
	ID   ID     `json:"id"`
	Addr string `json:"addr"`
}

// Info is one peer's gossiped state: identity, health and load, plus a
// heartbeat sequence so stale gossip never overwrites fresh gossip.
type Info struct {
	Peer
	// Ready mirrors the peer's /readyz verdict: false while draining or
	// queue-saturated. Not-ready peers keep their ring shards (their
	// cache still serves) but are skipped as work-stealing targets.
	Ready bool `json:"ready"`
	// Load is the peer's self-reported queue occupancy (queued jobs);
	// work-stealing prefers the smallest.
	Load int64 `json:"load"`
	// Seq is the peer's heartbeat: epoch + tick count, incremented only
	// by the peer itself. A peer whose Seq stops advancing is dead; a
	// restarted peer rejoins with a fresh (later) epoch.
	Seq int64 `json:"seq"`
	// WallMs is the peer's wall clock (Unix ms) stamped when it
	// generated this heartbeat. Pure payload — merge still orders by Seq
	// alone — it exists so third parties can witness the peer's clock:
	// the span collector refines its request/response-midpoint offset
	// estimates from (WallMs, StateBody.HeardMs) pairs. See DESIGN.md
	// §15.
	WallMs int64 `json:"wall_ms,omitempty"`
}

// View is a set of peer Infos keyed by ID, as exchanged by gossip.
type View map[ID]Info

// merge admits in unless the view already holds a fresher Info for the
// same peer; it reports whether the entry changed.
func (v View) merge(in Info) bool {
	cur, ok := v[in.ID]
	if ok && cur.Seq >= in.Seq {
		return false
	}
	v[in.ID] = in
	return true
}

// Params tunes the gossip core. The zero value takes the defaults.
type Params struct {
	// ViewSize bounds the local view (default 16).
	ViewSize int
	// Fanout is how many view peers each round exchanges with
	// (default 3).
	Fanout int
	// Alpha/Beta/Gamma split the next view's candidate slots between
	// pushed-in peers, pulled views and the history sample, Brahms
	// style (default 0.45/0.45/0.10). They should sum to 1.
	Alpha, Beta, Gamma float64
	// SuspectAfter drops a peer from the view after this many
	// consecutive failed exchanges (default 2).
	SuspectAfter int
	// StaleTicks drops (and refuses to readmit) a peer whose heartbeat
	// Seq has not advanced for this many local rounds — how a dead
	// peer's echo is purged even though live peers keep gossiping its
	// last Info (default 8).
	StaleTicks int
	// Vnodes is the virtual-node count per member on the consistent-
	// hash ring (default 64).
	Vnodes int
	// Interval is the gossip round period for Start (default 1s).
	// Tests drive rounds manually with Tick and never call Start.
	Interval time.Duration
}

func (p Params) withDefaults() Params {
	if p.ViewSize <= 0 {
		p.ViewSize = 16
	}
	if p.Fanout <= 0 {
		p.Fanout = 3
	}
	if p.Alpha == 0 && p.Beta == 0 && p.Gamma == 0 {
		p.Alpha, p.Beta, p.Gamma = 0.45, 0.45, 0.10
	}
	if p.SuspectAfter <= 0 {
		p.SuspectAfter = 2
	}
	if p.StaleTicks <= 0 {
		p.StaleTicks = 8
	}
	if p.Vnodes <= 0 {
		p.Vnodes = 64
	}
	if p.Interval <= 0 {
		p.Interval = time.Second
	}
	return p
}

// Config builds a Node.
type Config struct {
	// Self identifies this node to the fleet.
	Self Peer
	// Seeds are the peers contacted to join: the initial view.
	Seeds []Peer
	// Params tunes gossip; zero fields take defaults.
	Params Params
	// Transport carries gossip, shard-cache and forward traffic.
	Transport Transport
	// Seed determines the gossip RNG; 0 seeds from the clock.
	Seed int64
	// Epoch bases the heartbeat Seq so a restarted node outranks its
	// own pre-restart gossip echo; 0 uses the wall clock (tests pin
	// small values for determinism).
	Epoch int64
	// Reg receives the cluster/* counters and gauges; may be nil.
	Reg *obs.Registry
	// Logger receives membership-change lines; slog.Default when nil.
	Logger *slog.Logger
	// WallClock overrides the wall-clock readings stamped into
	// heartbeats (Info.WallMs) and witness records (StateBody.HeardMs);
	// tests pin it, production uses time.Now.
	WallClock func() time.Time
}

// entry is the node's bookkeeping around one view member.
type entry struct {
	info Info
	// fails counts consecutive failed exchanges with the peer.
	fails int
}

// Node is one process's cluster membership: the gossip core, the
// consistent-hash ring derived from the live view, and the remote-
// operation helpers the daemon uses (shard-cache get/put, forward).
// All methods are safe for concurrent use.
type Node struct {
	cfg Config
	prm Params
	tr  Transport
	log *slog.Logger

	mu    sync.Mutex
	rnd   *rand.Rand
	local Local
	view  map[ID]*entry
	// hist remembers the freshest Info ever seen per peer (minus
	// dropped-as-stale ones): the γ candidate pool, and the address
	// book for rejoining a partitioned fleet.
	hist map[ID]Info
	// lastSeq/lastAdvance implement the staleness fence per peer ID, so
	// a dead peer's echo cannot re-enter the view through gossip.
	lastSeq     map[ID]int64
	lastAdvance map[ID]int64
	// heardMs records this node's wall clock when each peer's heartbeat
	// last advanced — the witness half of the span collector's
	// clock-offset refinement (served in StateBody.HeardMs).
	heardMs map[ID]int64
	pushes  []Info
	tick    int64
	ring    *Ring
	ringKey string

	stop chan struct{}
	done chan struct{}

	rounds, gossipOK, gossipFail *obs.Counter
	removed, rebuilds            *obs.Counter
	remoteHits, remoteMisses     *obs.Counter
	remoteErrs, remotePuts       *obs.Counter
	remotePutErrs, forwards      *obs.Counter
	forwardErrs                  *obs.Counter
	peersGauge, ringMembersGauge *obs.Gauge
}

// NewNode builds the node with its seed view. Call SetLocal before the
// first gossip round so exchanged Infos carry real health and load,
// then Start (or drive rounds manually with Tick).
func NewNode(cfg Config) *Node {
	prm := cfg.Params.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = time.Now().UnixMilli()
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	reg := cfg.Reg
	n := &Node{
		cfg:         cfg,
		prm:         prm,
		tr:          cfg.Transport,
		log:         log,
		rnd:         rand.New(rand.NewSource(seed)),
		view:        map[ID]*entry{},
		hist:        map[ID]Info{},
		lastSeq:     map[ID]int64{},
		lastAdvance: map[ID]int64{},
		heardMs:     map[ID]int64{},

		rounds:           reg.Counter("cluster/gossip_rounds"),
		gossipOK:         reg.Counter("cluster/gossip_exchanges_ok"),
		gossipFail:       reg.Counter("cluster/gossip_exchanges_failed"),
		removed:          reg.Counter("cluster/peers_removed"),
		rebuilds:         reg.Counter("cluster/ring_rebuilds"),
		remoteHits:       reg.Counter("cluster/shard_get_remote_hits"),
		remoteMisses:     reg.Counter("cluster/shard_get_remote_misses"),
		remoteErrs:       reg.Counter("cluster/shard_get_remote_errors"),
		remotePuts:       reg.Counter("cluster/shard_put_remote"),
		remotePutErrs:    reg.Counter("cluster/shard_put_remote_errors"),
		forwards:         reg.Counter("cluster/forwards_out"),
		forwardErrs:      reg.Counter("cluster/forward_errors"),
		peersGauge:       reg.Gauge("cluster/peers_live"),
		ringMembersGauge: reg.Gauge("cluster/ring_members"),
	}
	for _, s := range cfg.Seeds {
		if s.ID == "" || s.ID == cfg.Self.ID {
			continue
		}
		n.view[s.ID] = &entry{info: Info{Peer: s}}
		n.hist[s.ID] = Info{Peer: s}
	}
	n.rebuildRingLocked()
	return n
}

// SetLocal installs the daemon-side handler the transports dispatch to
// (shard-cache access, forwarded submissions, health/load). Must be
// set before serving cluster traffic; internal/service does it in New.
func (n *Node) SetLocal(l Local) {
	n.mu.Lock()
	n.local = l
	n.mu.Unlock()
}

// Self returns this node's identity.
func (n *Node) Self() Peer { return n.cfg.Self }

// IsSelf reports whether id names this node.
func (n *Node) IsSelf(id ID) bool { return id == n.cfg.Self.ID }

// selfInfoLocked stamps a fresh heartbeat with the daemon's live
// health and load.
func (n *Node) selfInfoLocked() Info {
	info := Info{Peer: n.cfg.Self, Seq: n.cfg.Epoch + n.tick, WallMs: n.wallMs()}
	if n.local != nil {
		info.Ready, info.Load = n.local.Status()
	}
	return info
}

// wallMs reads the node's wall clock in Unix milliseconds (injectable
// for tests via Config.WallClock).
func (n *Node) wallMs() int64 {
	if n.cfg.WallClock != nil {
		return n.cfg.WallClock().UnixMilli()
	}
	return time.Now().UnixMilli()
}

// Members returns the live membership — this node plus its view —
// sorted by ID.
func (n *Node) Members() []Info {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Info, 0, len(n.view)+1)
	out = append(out, n.selfInfoLocked())
	for _, e := range n.view {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Owner returns the ring owner of key (a netio.ContentHash) among the
// live members. ok is false only when the ring is empty (then the
// caller is on its own — serve locally).
func (n *Node) Owner(key string) (Peer, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	id, ok := n.ring.Owner(key)
	if !ok {
		return Peer{}, false
	}
	return n.peerLocked(id), true
}

// Successors returns up to k distinct live members after key's owner
// in ring order — the failover candidates for a down owner.
func (n *Node) Successors(key string, k int) []Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := n.ring.Successors(key, k)
	out := make([]Peer, 0, len(ids))
	for _, id := range ids {
		out = append(out, n.peerLocked(id))
	}
	return out
}

func (n *Node) peerLocked(id ID) Peer {
	if id == n.cfg.Self.ID {
		return n.cfg.Self
	}
	if e, ok := n.view[id]; ok {
		return e.info.Peer
	}
	if info, ok := n.hist[id]; ok {
		return info.Peer
	}
	return Peer{ID: id}
}

// LeastLoaded returns the ready view peer with the smallest gossiped
// load (ID order breaks ties), excluding the given IDs. ok is false
// when no ready peer remains — then there is nowhere to steal to.
func (n *Node) LeastLoaded(exclude ...ID) (Peer, bool) {
	skip := map[ID]bool{n.cfg.Self.ID: true}
	for _, id := range exclude {
		skip[id] = true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	var best *entry
	for _, e := range n.view {
		if skip[e.info.ID] || !e.info.Ready || e.fails > 0 {
			continue
		}
		if best == nil || e.info.Load < best.info.Load ||
			(e.info.Load == best.info.Load && e.info.ID < best.info.ID) {
			best = e
		}
	}
	if best == nil {
		return Peer{}, false
	}
	return best.info.Peer, true
}

// rebuildRingLocked re-derives the consistent-hash ring when the
// member set changed. Ring membership is the full live view plus self —
// draining (not-ready) peers keep their shards, because their cache
// still answers gets; only exchange-failing peers fall out (with the
// view itself).
func (n *Node) rebuildRingLocked() {
	ids := make([]ID, 0, len(n.view)+1)
	ids = append(ids, n.cfg.Self.ID)
	for id := range n.view {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	key := fmt.Sprint(ids)
	if key == n.ringKey && n.ring != nil {
		return
	}
	n.ring = NewRing(ids, n.prm.Vnodes)
	n.ringKey = key
	n.rebuilds.Inc()
	n.peersGauge.Set(int64(len(n.view)))
	n.ringMembersGauge.Set(int64(len(ids)))
}

// Start runs the gossip loop at Params.Interval until Stop.
func (n *Node) Start() {
	n.mu.Lock()
	if n.stop != nil {
		n.mu.Unlock()
		return
	}
	n.stop = make(chan struct{})
	n.done = make(chan struct{})
	stop, done := n.stop, n.done
	n.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(n.prm.Interval)
		defer t.Stop()
		n.Tick()
		for {
			select {
			case <-t.C:
				n.Tick()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the gossip loop; the node keeps answering exchanges.
func (n *Node) Stop() {
	n.mu.Lock()
	stop, done := n.stop, n.done
	n.stop, n.done = nil, nil
	n.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// StateBody is the JSON shape of GET /cluster/members and of the
// postmortem bundle's cluster.json: everything a client needs to build
// the same ring this node routes by.
type StateBody struct {
	Schema  string `json:"schema"`
	Self    Info   `json:"self"`
	Members []Info `json:"members"`
	// Vnodes is the ring's virtual-node count; clients must build
	// their ring with the same value or routing disagrees.
	Vnodes int   `json:"vnodes"`
	Tick   int64 `json:"tick"`
	// HeardMs maps peer ID → this node's wall clock (Unix ms) when that
	// peer's heartbeat Seq last advanced. Combined with the peer's own
	// Info.WallMs it lets the span collector use this node as a clock
	// witness for peers it cannot probe directly.
	HeardMs map[ID]int64 `json:"heard_ms,omitempty"`
}

// State snapshots the membership for /cluster/members, msrnetctl
// -members and postmortem bundles.
func (n *Node) State() StateBody {
	members := n.Members()
	n.mu.Lock()
	self := n.selfInfoLocked()
	tick := n.tick
	heard := make(map[ID]int64, len(n.heardMs))
	for id, ms := range n.heardMs {
		heard[id] = ms
	}
	n.mu.Unlock()
	return StateBody{Schema: Schema, Self: self, Members: members, Vnodes: n.prm.Vnodes, Tick: tick, HeardMs: heard}
}

// Vnodes reports the ring's virtual-node count.
func (n *Node) Vnodes() int { return n.prm.Vnodes }
