// Package svgplot renders routing topologies and repeater-insertion
// solutions as standalone SVG documents — the medium used to reproduce
// Fig. 11 of Lillis & Cheng (TCAD'99): the unoptimized topology and the
// optimizer's k-repeater solutions, annotated with RC-diameter and the
// critical source/sink pair.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"msrnet/internal/geom"
	"msrnet/internal/rctree"
	"msrnet/internal/topo"
)

// Style controls rendering.
type Style struct {
	CanvasPx   float64 // square canvas size in pixels (default 640)
	MarginPx   float64 // border margin (default 40)
	WireWidth  float64 // stroke width for wires (default 2)
	ShowLabels bool    // label terminals with their names
}

func (s Style) withDefaults() Style {
	if s.CanvasPx <= 0 {
		s.CanvasPx = 640
	}
	if s.MarginPx <= 0 {
		s.MarginPx = 40
	}
	if s.WireWidth <= 0 {
		s.WireWidth = 2
	}
	return s
}

// Annotation carries optional headline text rendered above the plot.
type Annotation struct {
	Title    string
	Subtitle string
	// CritSrc/CritSink, when ≥ 0, highlight the critical pair.
	CritSrc, CritSink int
}

// Render writes an SVG of the topology with the assignment's repeaters
// marked. Terminals are squares (filled when they are the critical source
// or sink), Steiner points small dots, insertion points faint ticks and
// placed repeaters prominent triangles.
func Render(w io.Writer, tr *topo.Tree, asg rctree.Assignment, ann Annotation, style Style) error {
	style = style.withDefaults()
	// Find the drawing transform.
	var pts []geom.Point
	for i := 0; i < tr.NumNodes(); i++ {
		pts = append(pts, tr.Node(i).Pt)
	}
	box := geom.Bound(pts)
	span := math.Max(box.Width(), box.Height())
	if span == 0 {
		span = 1
	}
	scale := (style.CanvasPx - 2*style.MarginPx) / span
	tx := func(p geom.Point) (float64, float64) {
		// Flip Y so the plot is in conventional orientation.
		x := style.MarginPx + (p.X-box.Min.X)*scale
		y := style.CanvasPx - style.MarginPx - (p.Y-box.Min.Y)*scale
		return x, y
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		style.CanvasPx, style.CanvasPx+40, style.CanvasPx, style.CanvasPx+40)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if ann.Title != "" {
		fmt.Fprintf(&b, `<text x="%.0f" y="22" font-family="sans-serif" font-size="16" fill="#222">%s</text>`+"\n",
			style.MarginPx, xmlEscape(ann.Title))
	}
	if ann.Subtitle != "" {
		fmt.Fprintf(&b, `<text x="%.0f" y="40" font-family="sans-serif" font-size="12" fill="#555">%s</text>`+"\n",
			style.MarginPx, xmlEscape(ann.Subtitle))
	}
	// Wires (rectilinear elbow: draw as L-shaped polyline via the corner
	// point when the endpoints are not axis-aligned).
	for i := 0; i < tr.NumEdges(); i++ {
		e := tr.Edge(i)
		p, q := tr.Node(e.A).Pt, tr.Node(e.B).Pt
		x1, y1 := tx(p)
		x2, y2 := tx(q)
		if p.X != q.X && p.Y != q.Y {
			cx, cy := tx(geom.Pt(p.X, q.Y))
			fmt.Fprintf(&b, `<polyline points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="none" stroke="#4477aa" stroke-width="%.1f"/>`+"\n",
				x1, y1, cx, cy, x2, y2, style.WireWidth)
		} else {
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#4477aa" stroke-width="%.1f"/>`+"\n",
				x1, y1, x2, y2, style.WireWidth)
		}
	}
	// Nodes.
	for i := 0; i < tr.NumNodes(); i++ {
		n := tr.Node(i)
		x, y := tx(n.Pt)
		switch n.Kind {
		case topo.Terminal:
			fill := "#ffffff"
			if i == ann.CritSrc {
				fill = "#cc3311"
			} else if i == ann.CritSink {
				fill = "#009988"
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s" stroke="#222" stroke-width="1.5"/>`+"\n",
				x-5, y-5, fill)
			if style.ShowLabels && n.Term.Name != "" {
				fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" fill="#222">%s</text>`+"\n",
					x+7, y-7, xmlEscape(n.Term.Name))
			}
		case topo.Steiner:
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="#4477aa"/>`+"\n", x, y)
		case topo.Insertion:
			if _, ok := asg.Repeaters[i]; ok {
				fmt.Fprintf(&b, `<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="#ee7733" stroke="#222" stroke-width="1"/>`+"\n",
					x, y-7, x-6, y+5, x+6, y+5)
			} else {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="1.5" fill="#bbbbbb"/>`+"\n", x, y)
			}
		}
	}
	// Legend.
	ly := style.CanvasPx + 14
	fmt.Fprintf(&b, `<text x="%.0f" y="%.1f" font-family="sans-serif" font-size="11" fill="#555">□ terminal  ▲ repeater  · insertion point  ■ red: critical source  ■ teal: critical sink</text>`+"\n",
		style.MarginPx, ly)
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
