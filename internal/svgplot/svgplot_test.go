package svgplot

import (
	"bytes"
	"strings"
	"testing"

	"msrnet/internal/buslib"
	"msrnet/internal/netgen"
	"msrnet/internal/rctree"
)

func TestRenderBasic(t *testing.T) {
	tr, err := netgen.Generate(8, netgen.Defaults(8))
	if err != nil {
		t.Fatal(err)
	}
	ins := tr.Insertions()
	rep := buslib.RepeaterFromPair(buslib.Buffer1X())
	asg := rctree.Assignment{Repeaters: map[int]rctree.Placed{
		ins[0]: {Rep: rep, ASideUp: true},
	}}
	var buf bytes.Buffer
	err = Render(&buf, tr, asg, Annotation{
		Title:    "eight-pin net",
		Subtitle: "ARD = 1.234 ns",
		CritSrc:  tr.Terminals()[0],
		CritSink: tr.Terminals()[1],
	}, Style{ShowLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"<svg", "</svg>", "polygon", "eight-pin net", "ARD = 1.234 ns", "rect"} {
		if !strings.Contains(s, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One triangle per placed repeater.
	if got := strings.Count(s, "<polygon"); got != 1 {
		t.Errorf("polygons = %d, want 1", got)
	}
}

func TestRenderEscapesXML(t *testing.T) {
	tr, err := netgen.Generate(2, netgen.Defaults(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = Render(&buf, tr, rctree.Assignment{}, Annotation{
		Title: `a<b>&"c"`, CritSrc: -1, CritSink: -1,
	}, Style{})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Contains(s, `a<b>`) {
		t.Error("title not escaped")
	}
	if !strings.Contains(s, "a&lt;b&gt;&amp;&quot;c&quot;") {
		t.Error("escaped title missing")
	}
}

func TestRenderDefaultsApplied(t *testing.T) {
	tr, err := netgen.Generate(4, netgen.Defaults(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Render(&buf, tr, rctree.Assignment{}, Annotation{CritSrc: -1, CritSink: -1}, Style{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `width="640"`) {
		t.Error("default canvas size not applied")
	}
}
