// Package netgen generates the benchmark workloads of §VI of Lillis &
// Cheng (TCAD'99): random terminal sets on a 1 cm × 1 cm grid, routed
// with a rectilinear Steiner heuristic, with repeater insertion points
// placed so consecutive candidates are at most 800 µm apart and every
// wire carries at least one point. All generation is deterministic in the
// seed.
package netgen

import (
	"fmt"
	"math/rand"

	"msrnet/internal/buslib"
	"msrnet/internal/geom"
	"msrnet/internal/rsmt"
	"msrnet/internal/topo"
)

// Params controls net generation. The zero value is not useful; start
// from Defaults.
type Params struct {
	// Terminals is the number of pins.
	Terminals int
	// GridUm is the side of the square placement region (µm).
	GridUm float64
	// MaxInsertionSpacingUm bounds the distance between consecutive
	// candidate repeater locations; every wire gets at least one.
	// Zero disables insertion points.
	MaxInsertionSpacingUm float64
	// UseSteiner selects iterated 1-Steiner refinement (true, the
	// default) or the plain rectilinear MST.
	UseSteiner bool
	// SourceFrac and SinkFrac give the fraction of terminals acting as
	// sources resp. sinks (each ≥ one terminal; a terminal can be both).
	// 1.0 and 1.0 reproduce the paper's symmetric experiments.
	SourceFrac, SinkFrac float64
}

// Defaults returns the Table II configuration: n terminals on a 1 cm
// grid, Steiner routing, 800 µm insertion spacing, all terminals both
// source and sink.
func Defaults(n int) Params {
	return Params{
		Terminals:             n,
		GridUm:                10000,
		MaxInsertionSpacingUm: 800,
		UseSteiner:            true,
		SourceFrac:            1,
		SinkFrac:              1,
	}
}

// Generate builds a random net. The terminal electrical model is the
// experiments' default (buslib.DefaultTerminal); adjust per-terminal
// parameters afterwards with Tree.SetTerminal if needed.
func Generate(seed int64, p Params) (*topo.Tree, error) {
	if p.Terminals < 2 {
		return nil, fmt.Errorf("netgen: need at least 2 terminals, got %d", p.Terminals)
	}
	if p.GridUm <= 0 {
		return nil, fmt.Errorf("netgen: non-positive grid size")
	}
	r := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, p.Terminals)
	for i := range pts {
		pts[i] = geom.Pt(r.Float64()*p.GridUm, r.Float64()*p.GridUm)
	}
	var st rsmt.Tree
	if p.UseSteiner {
		st = rsmt.Steiner(pts)
	} else {
		st = rsmt.MST(pts)
	}
	tr, err := FromRSMT(st, func(i int) buslib.Terminal {
		return buslib.DefaultTerminal(fmt.Sprintf("t%d", i))
	})
	if err != nil {
		return nil, err
	}
	assignRoles(tr, r, p.SourceFrac, p.SinkFrac)
	if p.MaxInsertionSpacingUm > 0 {
		tr.PlaceInsertionPoints(p.MaxInsertionSpacingUm)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("netgen: generated invalid topology: %w", err)
	}
	return tr, nil
}

// FromRSMT converts an abstract Steiner tree into a routing topology:
// point i < NumTerminals becomes a terminal with electrical parameters
// from mk(i); the rest become Steiner nodes. Non-leaf terminals are
// rewritten with zero-length pendants per the paper's convention.
func FromRSMT(st rsmt.Tree, mk func(i int) buslib.Terminal) (*topo.Tree, error) {
	tr := topo.New()
	ids := make([]int, len(st.Points))
	for i, pt := range st.Points {
		if i < st.NumTerminals {
			ids[i] = tr.AddTerminal(pt, mk(i))
		} else {
			ids[i] = tr.AddSteiner(pt)
		}
	}
	for _, e := range st.Edges {
		tr.AddEdge(ids[e[0]], ids[e[1]], geom.Dist(st.Points[e[0]], st.Points[e[1]]))
	}
	tr.EnsureTerminalLeaves()
	return tr, nil
}

// assignRoles restricts source/sink roles to random subsets of the given
// fractions, guaranteeing at least one of each.
func assignRoles(tr *topo.Tree, r *rand.Rand, srcFrac, snkFrac float64) {
	terms := tr.Terminals()
	nSrc := atLeastOne(srcFrac, len(terms))
	nSnk := atLeastOne(snkFrac, len(terms))
	srcPick := pick(r, len(terms), nSrc)
	snkPick := pick(r, len(terms), nSnk)
	for i, id := range terms {
		t := tr.Node(id).Term
		t.IsSource = srcPick[i]
		t.IsSink = snkPick[i]
		tr.SetTerminal(id, t)
	}
}

func atLeastOne(frac float64, n int) int {
	k := int(frac*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

func pick(r *rand.Rand, n, k int) []bool {
	out := make([]bool, n)
	for _, i := range r.Perm(n)[:k] {
		out[i] = true
	}
	return out
}
