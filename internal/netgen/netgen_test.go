package netgen

import (
	"math"
	"testing"

	"msrnet/internal/topo"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(42, Defaults(10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(42, Defaults(10))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different structure")
	}
	if math.Abs(a.TotalWireLength()-b.TotalWireLength()) > 1e-9 {
		t.Fatal("same seed produced different wirelength")
	}
	c, err := Generate(43, Defaults(10))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalWireLength() == c.TotalWireLength() {
		t.Fatal("different seeds produced identical wirelength (suspicious)")
	}
}

func TestGenerateStructure(t *testing.T) {
	for _, n := range []int{2, 5, 10, 20} {
		tr, err := Generate(7, Defaults(n))
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := len(tr.Terminals()); got != n {
			t.Errorf("n=%d: %d terminals", n, got)
		}
		if len(tr.Sources()) != n || len(tr.Sinks()) != n {
			t.Errorf("n=%d: roles not symmetric", n)
		}
		// Insertion spacing respected, every wire ≤ 800 µm.
		for i := 0; i < tr.NumEdges(); i++ {
			if l := tr.Edge(i).Length; l > 800+1e-9 {
				t.Errorf("n=%d: wire %d length %g > 800", n, i, l)
			}
		}
		if len(tr.Insertions()) == 0 {
			t.Errorf("n=%d: no insertion points", n)
		}
		// All terminals within the grid.
		for _, id := range tr.Terminals() {
			p := tr.Node(id).Pt
			if p.X < 0 || p.X > 10000 || p.Y < 0 || p.Y > 10000 {
				t.Errorf("terminal outside grid: %v", p)
			}
		}
	}
}

func TestGenerateAsymmetricRoles(t *testing.T) {
	p := Defaults(10)
	p.SourceFrac = 0.3
	p.SinkFrac = 0.7
	tr, err := Generate(3, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Sources()); got != 3 {
		t.Errorf("sources = %d, want 3", got)
	}
	if got := len(tr.Sinks()); got != 7 {
		t.Errorf("sinks = %d, want 7", got)
	}
}

func TestGenerateMSTvsSteiner(t *testing.T) {
	p := Defaults(12)
	p.MaxInsertionSpacingUm = 0
	st, err := Generate(11, p)
	if err != nil {
		t.Fatal(err)
	}
	p.UseSteiner = false
	mst, err := Generate(11, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalWireLength() > mst.TotalWireLength()+1e-9 {
		t.Errorf("Steiner wirelength %g > MST %g", st.TotalWireLength(), mst.TotalWireLength())
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(1, Defaults(1)); err == nil {
		t.Error("expected error for 1 terminal")
	}
	p := Defaults(5)
	p.GridUm = 0
	if _, err := Generate(1, p); err == nil {
		t.Error("expected error for zero grid")
	}
}

func TestTerminalsAreLeaves(t *testing.T) {
	tr, err := Generate(99, Defaults(20))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range tr.Terminals() {
		if tr.Degree(id) != 1 {
			t.Errorf("terminal %d degree %d", id, tr.Degree(id))
		}
	}
	for _, id := range tr.Insertions() {
		if tr.Degree(id) != 2 {
			t.Errorf("insertion %d degree %d", id, tr.Degree(id))
		}
	}
	_ = topo.Terminal
}
