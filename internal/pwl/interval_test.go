package pwl

import (
	"math"
	"math/rand"
	"testing"
)

func ivs(vals ...float64) IntervalSet {
	if len(vals)%2 != 0 {
		panic("ivs needs pairs")
	}
	var s IntervalSet
	for i := 0; i < len(vals); i += 2 {
		s = append(s, Interval{Lo: vals[i], Hi: vals[i+1]})
	}
	return s.Canon()
}

func setsEqual(a, b IntervalSet) bool {
	a, b = a.Canon(), b.Canon()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i].Lo-b[i].Lo) > 1e-9 {
			return false
		}
		if a[i].Hi != b[i].Hi && math.Abs(a[i].Hi-b[i].Hi) > 1e-9 {
			return false
		}
	}
	return true
}

func TestCanonMergesAndSorts(t *testing.T) {
	s := IntervalSet{{Lo: 3, Hi: 5}, {Lo: 1, Hi: 2}, {Lo: 2, Hi: 3.5}}
	got := s.Canon()
	want := ivs(1, 5)
	if !setsEqual(got, want) {
		t.Errorf("Canon = %v, want %v", got, want)
	}
}

func TestCanonClipsNegative(t *testing.T) {
	s := IntervalSet{{Lo: -3, Hi: 2}, {Lo: -10, Hi: -5}}
	got := s.Canon()
	if !setsEqual(got, ivs(0, 2)) {
		t.Errorf("Canon = %v, want [0,2)", got)
	}
}

func TestIntersectBasic(t *testing.T) {
	a := ivs(0, 5, 10, 20)
	b := ivs(3, 12)
	got := a.Intersect(b)
	if !setsEqual(got, ivs(3, 5, 10, 12)) {
		t.Errorf("Intersect = %v", got)
	}
}

func TestSubtractBasic(t *testing.T) {
	a := ivs(0, 10)
	b := ivs(2, 4, 6, 8)
	got := a.Subtract(b)
	if !setsEqual(got, ivs(0, 2, 4, 6, 8, 10)) {
		t.Errorf("Subtract = %v", got)
	}
}

func TestSubtractAll(t *testing.T) {
	a := ivs(1, 5)
	if got := a.Subtract(Full()); !got.IsEmpty() {
		t.Errorf("Subtract(Full) = %v, want empty", got)
	}
}

func TestUnionBasic(t *testing.T) {
	a := ivs(0, 2)
	b := ivs(5, math.Inf(1))
	got := a.Union(b)
	if len(got) != 2 || !got.Contains(1) || !got.Contains(100) || got.Contains(3) {
		t.Errorf("Union = %v", got)
	}
}

func TestShiftSet(t *testing.T) {
	a := ivs(2, 6)
	got := a.Shift(3) // {x : x+3 ∈ [2,6)} ∩ [0,∞) = [0,3)
	if !setsEqual(got, ivs(0, 3)) {
		t.Errorf("Shift = %v, want [0,3)", got)
	}
	got = a.Shift(7) // entirely below zero
	if !got.IsEmpty() {
		t.Errorf("Shift past set = %v, want empty", got)
	}
}

func TestMeasure(t *testing.T) {
	if m := ivs(0, 2, 5, 8).Measure(); math.Abs(m-5) > 1e-12 {
		t.Errorf("Measure = %g, want 5", m)
	}
	if m := Full().Measure(); !math.IsInf(m, 1) {
		t.Errorf("Full Measure = %g, want +Inf", m)
	}
}

func TestContainsBoundaries(t *testing.T) {
	s := ivs(1, 3)
	for _, c := range []struct {
		x    float64
		want bool
	}{{0.5, false}, {1, true}, {2, true}, {3 - 1e-12, true}, {4, false}} {
		if got := s.Contains(c.x); got != c.want {
			t.Errorf("Contains(%g) = %v, want %v", c.x, got, c.want)
		}
	}
}

// Property: set algebra matches pointwise membership semantics on random
// sets sampled at random points.
func TestSetAlgebraProperty(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	randSet := func() IntervalSet {
		var s IntervalSet
		n := 1 + r.Intn(4)
		for i := 0; i < n; i++ {
			lo := r.Float64() * 20
			s = append(s, Interval{Lo: lo, Hi: lo + r.Float64()*5})
		}
		return s.Canon()
	}
	for trial := 0; trial < 300; trial++ {
		a, b := randSet(), randSet()
		inter := a.Intersect(b)
		sub := a.Subtract(b)
		uni := a.Union(b)
		for i := 0; i < 30; i++ {
			x := r.Float64() * 25
			// Skip points within Eps of any boundary to avoid
			// half-open-boundary ambiguity in Contains.
			nearEdge := false
			for _, s := range []IntervalSet{a, b} {
				for _, iv := range s {
					if math.Abs(x-iv.Lo) < 1e-6 || math.Abs(x-iv.Hi) < 1e-6 {
						nearEdge = true
					}
				}
			}
			if nearEdge {
				continue
			}
			ina, inb := a.Contains(x), b.Contains(x)
			if got, want := inter.Contains(x), ina && inb; got != want {
				t.Fatalf("Intersect membership mismatch at %g: a=%v b=%v", x, a, b)
			}
			if got, want := sub.Contains(x), ina && !inb; got != want {
				t.Fatalf("Subtract membership mismatch at %g: a=%v b=%v", x, a, b)
			}
			if got, want := uni.Contains(x), ina || inb; got != want {
				t.Fatalf("Union membership mismatch at %g: a=%v b=%v", x, a, b)
			}
		}
	}
}

func TestIntervalSetString(t *testing.T) {
	if s := (IntervalSet{}).String(); s != "∅" {
		t.Errorf("empty String = %q", s)
	}
	if s := ivs(0, 1).String(); s == "" || s == "∅" {
		t.Errorf("nonempty String = %q", s)
	}
}
