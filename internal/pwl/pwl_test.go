package pwl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randFunc builds a random continuous PWL function as the max of up to n
// random lines — exactly the family produced by the paper's DP.
func randFunc(r *rand.Rand, n int) Func {
	f := Linear(r.Float64()*10-5, r.Float64()*4-2)
	k := 1 + r.Intn(n)
	for i := 0; i < k; i++ {
		f = f.Max(Linear(r.Float64()*10-5, r.Float64()*4-2))
	}
	return f
}

func almostEq(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

func TestConstEval(t *testing.T) {
	f := Const(3.5)
	for _, x := range []float64{0, 0.1, 1, 100, 1e9} {
		if got := f.Eval(x); got != 3.5 {
			t.Errorf("Const(3.5).Eval(%g) = %g", x, got)
		}
	}
	if f.NumSegs() != 1 {
		t.Errorf("Const has %d segments, want 1", f.NumSegs())
	}
}

func TestLinearEval(t *testing.T) {
	f := Linear(2, 0.5)
	cases := []struct{ x, want float64 }{{0, 2}, {1, 2.5}, {4, 4}, {10, 7}}
	for _, c := range cases {
		if got := f.Eval(c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Linear(2,0.5).Eval(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestMaxTwoLines(t *testing.T) {
	// f(x)=1+2x, g(x)=5. Cross at x=2.
	h := Linear(1, 2).Max(Const(5))
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.NumSegs() != 2 {
		t.Fatalf("expected 2 segments, got %d: %v", h.NumSegs(), h)
	}
	cases := []struct{ x, want float64 }{{0, 5}, {1, 5}, {2, 5}, {3, 7}, {10, 21}}
	for _, c := range cases {
		if got := h.Eval(c.x); !almostEq(got, c.want, 1e-9) {
			t.Errorf("max.Eval(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestMaxIsPointwise(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		f := randFunc(r, 5)
		g := randFunc(r, 5)
		h := f.Max(g)
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < 50; i++ {
			x := r.Float64() * 20
			want := math.Max(f.Eval(x), g.Eval(x))
			if got := h.Eval(x); !almostEq(got, want, 1e-7) {
				t.Fatalf("trial %d: Max(%v, %v).Eval(%g) = %g, want %g",
					trial, f, g, x, got, want)
			}
		}
	}
}

func TestMinIsPointwise(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		f := randFunc(r, 5)
		g := randFunc(r, 5)
		h := f.Min(g)
		for i := 0; i < 50; i++ {
			x := r.Float64() * 20
			want := math.Min(f.Eval(x), g.Eval(x))
			if got := h.Eval(x); !almostEq(got, want, 1e-7) {
				t.Fatalf("trial %d: Min.Eval(%g) = %g, want %g", trial, x, got, want)
			}
		}
	}
}

func TestAddIsPointwise(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		f := randFunc(r, 5)
		g := randFunc(r, 5)
		h := f.Add(g)
		for i := 0; i < 50; i++ {
			x := r.Float64() * 20
			want := f.Eval(x) + g.Eval(x)
			if got := h.Eval(x); !almostEq(got, want, 1e-7) {
				t.Fatalf("trial %d: Add.Eval(%g) = %g, want %g", trial, x, got, want)
			}
		}
	}
}

func TestMaxCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		f := randFunc(r, 4)
		g := randFunc(r, 4)
		if !f.Max(g).EqualWithin(g.Max(f), 1e-9) {
			t.Fatalf("Max not commutative for %v, %v", f, g)
		}
	}
}

func TestMaxAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		f := randFunc(r, 3)
		g := randFunc(r, 3)
		h := randFunc(r, 3)
		a := f.Max(g).Max(h)
		b := f.Max(g.Max(h))
		if !a.EqualWithin(b, 1e-7) {
			t.Fatalf("Max not associative: %v vs %v", a, b)
		}
	}
}

func TestMaxIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		f := randFunc(r, 5)
		if !f.Max(f).EqualWithin(f, 1e-9) {
			t.Fatalf("Max not idempotent for %v", f)
		}
	}
}

func TestNegInfIsMaxIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		f := randFunc(r, 5)
		if !NegInf().Max(f).EqualWithin(f, 1e-9) {
			t.Fatalf("NegInf ⊔ f ≠ f for %v", f)
		}
		if !f.Max(NegInf()).EqualWithin(f, 1e-9) {
			t.Fatalf("f ⊔ NegInf ≠ f for %v", f)
		}
	}
}

func TestAddConstAddLinear(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		f := randFunc(r, 4)
		c := r.Float64()*10 - 5
		m := r.Float64()*2 - 1
		g := f.AddConst(c)
		h := f.AddLinear(c, m)
		for i := 0; i < 20; i++ {
			x := r.Float64() * 15
			if got, want := g.Eval(x), f.Eval(x)+c; !almostEq(got, want, 1e-9) {
				t.Fatalf("AddConst mismatch at %g: %g vs %g", x, got, want)
			}
			if got, want := h.Eval(x), f.Eval(x)+c+m*x; !almostEq(got, want, 1e-9) {
				t.Fatalf("AddLinear mismatch at %g: %g vs %g", x, got, want)
			}
		}
	}
}

func TestShiftSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		f := randFunc(r, 5)
		d := r.Float64() * 8
		g := f.Shift(d)
		if err := g.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			x := r.Float64() * 15
			if got, want := g.Eval(x), f.Eval(x+d); !almostEq(got, want, 1e-8) {
				t.Fatalf("Shift(%g) mismatch at %g: %g vs %g (f=%v)", d, x, got, want, f)
			}
		}
	}
}

func TestShiftZeroIsIdentity(t *testing.T) {
	f := Linear(1, 2).Max(Const(5))
	if !f.Shift(0).EqualWithin(f, 0) {
		t.Error("Shift(0) changed function")
	}
}

func TestShiftComposition(t *testing.T) {
	// Shift(a) then Shift(b) == Shift(a+b).
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		f := randFunc(r, 4)
		a := r.Float64() * 4
		b := r.Float64() * 4
		g1 := f.Shift(a).Shift(b)
		g2 := f.Shift(a + b)
		if !g1.EqualWithin(g2, 1e-8) {
			t.Fatalf("shift composition failed: %v vs %v", g1, g2)
		}
	}
}

func TestEvalAgreesWithSegments(t *testing.T) {
	// Hand-built 3-piece function.
	f := FromSegments([]Seg{
		{X0: 0, X1: 2, Y0: 10, M: -1},
		{X0: 2, X1: 5, Y0: 8, M: 0.5},
		{X0: 5, X1: math.Inf(1), Y0: 9.5, M: 2},
	})
	cases := []struct{ x, want float64 }{
		{0, 10}, {1, 9}, {2, 8}, {3.5, 8.75}, {5, 9.5}, {7, 13.5},
	}
	for _, c := range cases {
		if got := f.Eval(c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Eval(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestCanonMergesCollinear(t *testing.T) {
	f := FromSegments([]Seg{
		{X0: 0, X1: 1, Y0: 0, M: 1},
		{X0: 1, X1: 2, Y0: 1, M: 1},
		{X0: 2, X1: math.Inf(1), Y0: 2, M: 1},
	})
	if f.NumSegs() != 1 {
		t.Errorf("collinear pieces not merged: %v", f)
	}
}

func TestLeqRegionsTwoLines(t *testing.T) {
	// f = 1 + 2x, g = 5: f ≤ g on [0, 2].
	f := Linear(1, 2)
	g := Const(5)
	s := f.LeqRegions(g, 0)
	if len(s) != 1 || !almostEq(s[0].Lo, 0, 1e-9) || !almostEq(s[0].Hi, 2, 1e-9) {
		t.Errorf("LeqRegions = %v, want [0,2)", s)
	}
	// g ≤ f on [2, ∞).
	s2 := g.LeqRegions(f, 0)
	if len(s2) != 1 || !almostEq(s2[0].Lo, 2, 1e-9) || !math.IsInf(s2[0].Hi, 1) {
		t.Errorf("LeqRegions reverse = %v, want [2,∞)", s2)
	}
}

func TestLeqRegionsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		f := randFunc(r, 4)
		g := randFunc(r, 4)
		s := f.LeqRegions(g, 0)
		for i := 0; i < 40; i++ {
			x := r.Float64() * 20
			in := s.Contains(x)
			le := f.Eval(x) <= g.Eval(x)+1e-7
			if in && !le && f.Eval(x) > g.Eval(x)+1e-5 {
				t.Fatalf("x=%g in region but f>g: f=%g g=%g", x, f.Eval(x), g.Eval(x))
			}
			if !in && le && f.Eval(x) < g.Eval(x)-1e-5 {
				t.Fatalf("x=%g not in region but f<g: f=%g g=%g", x, f.Eval(x), g.Eval(x))
			}
		}
	}
}

func TestMinOn(t *testing.T) {
	// V-shaped function: max(5-x, x-1). Min value 2 at x=3.
	f := Linear(5, -1).Max(Linear(-1, 1))
	x, y := f.MinOn(Full())
	if !almostEq(x, 3, 1e-9) || !almostEq(y, 2, 1e-9) {
		t.Errorf("MinOn(Full) = (%g, %g), want (3, 2)", x, y)
	}
	// Restricted away from the valley.
	x, y = f.MinOn(IntervalSet{{Lo: 5, Hi: 8}})
	if !almostEq(x, 5, 1e-9) || !almostEq(y, 4, 1e-9) {
		t.Errorf("MinOn([5,8)) = (%g, %g), want (5, 4)", x, y)
	}
	// Empty domain.
	_, y = f.MinOn(nil)
	if !math.IsInf(y, 1) {
		t.Errorf("MinOn(empty) = %g, want +Inf", y)
	}
}

func TestQuickMaxUpperBound(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	prop := func(b1, m1, b2, m2 float64, xr float64) bool {
		b1, m1 = math.Mod(b1, 100), math.Mod(m1, 10)
		b2, m2 = math.Mod(b2, 100), math.Mod(m2, 10)
		x := math.Abs(math.Mod(xr, 50))
		f := Linear(b1, m1)
		g := Linear(b2, m2)
		h := f.Max(g)
		return h.Eval(x) >= f.Eval(x)-1e-9 && h.Eval(x) >= g.Eval(x)-1e-9
	}
	cfg := &quick.Config{MaxCount: 500, Rand: r}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickShiftAddCommute(t *testing.T) {
	// Shift(d) of (f + c) == (Shift(d) of f) + c.
	r := rand.New(rand.NewSource(13))
	prop := func(seed int64, cr, dr float64) bool {
		rr := rand.New(rand.NewSource(seed))
		f := randFunc(rr, 4)
		c := math.Mod(cr, 50)
		d := math.Abs(math.Mod(dr, 10))
		a := f.AddConst(c).Shift(d)
		b := f.Shift(d).AddConst(c)
		return a.EqualWithin(b, 1e-8)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: r}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestConvexityPreserved(t *testing.T) {
	// Max of lines is convex: slopes must be non-decreasing. All DP
	// operations preserve this family.
	r := rand.New(rand.NewSource(14))
	convex := func(f Func) bool {
		segs := f.Segments()
		for i := 1; i < len(segs); i++ {
			if segs[i].M < segs[i-1].M-1e-9 {
				return false
			}
		}
		return true
	}
	for trial := 0; trial < 200; trial++ {
		f := randFunc(r, 6)
		if !convex(f) {
			t.Fatalf("max-of-lines not convex: %v", f)
		}
		g := f.Shift(r.Float64()*5).AddLinear(r.Float64(), r.Float64())
		if !convex(g) {
			t.Fatalf("shift/add broke convexity: %v", g)
		}
		h := f.Max(randFunc(r, 6))
		if !convex(h) {
			t.Fatalf("max broke convexity: %v", h)
		}
	}
}

func TestStringNonEmpty(t *testing.T) {
	if s := Linear(1, 2).Max(Const(5)).String(); s == "" {
		t.Error("empty String()")
	}
	var z Func
	if z.String() != "pwl.Func(zero)" {
		t.Error("zero Func String() wrong")
	}
}

func TestFromSegmentsPanics(t *testing.T) {
	cases := []struct {
		name string
		segs []Seg
	}{
		{"empty", nil},
		{"not-at-zero", []Seg{{X0: 1, X1: math.Inf(1)}}},
		{"gap", []Seg{{X0: 0, X1: 1}, {X0: 2, X1: math.Inf(1)}}},
		{"finite-end", []Seg{{X0: 0, X1: 5}}},
		{"empty-seg", []Seg{{X0: 0, X1: 0}, {X0: 0, X1: math.Inf(1)}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("FromSegments(%v) did not panic", c.segs)
				}
			}()
			FromSegments(c.segs)
		})
	}
}

func TestEvalNegativeExtrapolates(t *testing.T) {
	f := Linear(2, 3)
	if got := f.Eval(-1e-12); !almostEq(got, 2, 1e-9) {
		t.Errorf("tiny negative Eval = %g", got)
	}
}

func TestLeqRegionsWithNegInf(t *testing.T) {
	f := NegInf()
	g := NegInf()
	// −∞ ≤ −∞ everywhere.
	if s := f.LeqRegions(g, 0); !s.Contains(0) || !s.Contains(1e6) {
		t.Errorf("NegInf ≤ NegInf regions = %v, want Full", s)
	}
	// finite ≤ −∞ nowhere.
	if s := Const(1).LeqRegions(g, 0); !s.IsEmpty() {
		t.Errorf("Const ≤ NegInf regions = %v, want empty", s)
	}
	// −∞ ≤ finite everywhere.
	if s := f.LeqRegions(Const(1), 0); !s.Contains(0) || !s.Contains(1e6) {
		t.Errorf("NegInf ≤ Const regions = %v, want Full", s)
	}
	// Mixed: max(NegInf, line) behaves like the line.
	h := NegInf().Max(Linear(0, 1))
	if s := h.LeqRegions(Const(5), 0); !s.Contains(3) || s.Contains(7) {
		t.Errorf("mixed regions = %v", s)
	}
}
