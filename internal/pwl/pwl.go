// Package pwl implements the piecewise-linear (PWL) function algebra that
// underlies the multisource timing characterization of Lillis & Cheng
// (TCAD'99, §IV-C). Candidate repeater-insertion solutions carry two PWL
// functions of the external capacitance c_E — the arrival-time function
// A(c_E) and the internal-diameter function D(c_E) — and the dynamic
// program manipulates them with the primitives defined here: pointwise
// maximum, scalar and linear addition, and domain shift.
//
// A Func is total on [0, +∞). Validity restrictions introduced by the
// minimal-functional-subset pruning are represented separately as
// IntervalSet values (see interval.go), so the function algebra itself
// never has to handle partial functions.
//
// Functions are stored as an ordered list of segments that tile [0, +∞)
// exactly: the first segment starts at 0, each segment ends where the next
// begins, and the final segment extends to +∞. Within a segment the
// function is the line y = Y0 + M·(x − X0).
package pwl

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Eps is the default tolerance used when comparing ordinates and
// abscissae. Capacitances are in pF and times in ns, so 1e-9 is far below
// any physically meaningful difference.
const Eps = 1e-9

// Seg is one linear piece: y = Y0 + M·(x − X0) for x ∈ [X0, X1).
type Seg struct {
	X0, X1 float64 // domain of the piece; X1 may be +Inf
	Y0     float64 // value at X0
	M      float64 // slope
}

// At evaluates the segment's line at x (which need not lie in [X0, X1)).
func (s Seg) At(x float64) float64 {
	if math.IsInf(x, 1) {
		// Only meaningful for limits; return signed infinity by slope.
		switch {
		case s.M > 0:
			return math.Inf(1)
		case s.M < 0:
			return math.Inf(-1)
		default:
			return s.Y0
		}
	}
	return s.Y0 + s.M*(x-s.X0)
}

// end returns the value approaching X1 from the left (may be ±Inf).
func (s Seg) end() float64 { return s.At(s.X1) }

// Func is a total piecewise-linear function on [0, +∞).
//
// The zero value is not a valid Func; use the constructors. Funcs are
// immutable: every operation returns a new Func.
type Func struct {
	segs []Seg
}

// Const returns the constant function f(x) = c on [0, +∞).
func Const(c float64) Func {
	return Func{segs: []Seg{{X0: 0, X1: math.Inf(1), Y0: c, M: 0}}}
}

// Linear returns the function f(x) = b + m·x on [0, +∞).
func Linear(b, m float64) Func {
	return Func{segs: []Seg{{X0: 0, X1: math.Inf(1), Y0: b, M: m}}}
}

// NegInf returns the identity element for Max: a function that is −∞
// everywhere. It is used as the seed when folding maxima over solution
// sets (e.g. the internal-diameter function of a leaf, which has no
// internal source/sink pair).
func NegInf() Func {
	return Const(math.Inf(-1))
}

// FromSegments builds a Func from explicit segments. The segments must be
// sorted by X0, tile [0, +∞) without gaps or overlaps. It panics on
// malformed input; it is intended for tests and deserialization.
func FromSegments(segs []Seg) Func {
	if len(segs) == 0 {
		panic("pwl: FromSegments with no segments")
	}
	if segs[0].X0 != 0 {
		panic("pwl: first segment must start at 0")
	}
	for i, s := range segs {
		if s.X1 <= s.X0 {
			panic(fmt.Sprintf("pwl: segment %d has empty domain [%g,%g)", i, s.X0, s.X1))
		}
		if i+1 < len(segs) && math.Abs(segs[i+1].X0-s.X1) > Eps {
			panic(fmt.Sprintf("pwl: gap between segment %d and %d", i, i+1))
		}
	}
	if !math.IsInf(segs[len(segs)-1].X1, 1) {
		panic("pwl: last segment must extend to +Inf")
	}
	cp := make([]Seg, len(segs))
	copy(cp, segs)
	return Func{segs: cp}.canon()
}

// Segments returns a copy of the function's segments.
func (f Func) Segments() []Seg {
	cp := make([]Seg, len(f.segs))
	copy(cp, f.segs)
	return cp
}

// NumSegs returns the number of linear pieces.
func (f Func) NumSegs() int { return len(f.segs) }

// IsZero reports whether f is the (invalid) zero value, i.e. was never
// initialized through a constructor.
func (f Func) IsZero() bool { return f.segs == nil }

// Eval returns f(x). x must be ≥ 0; negative x evaluates the first
// segment's line (extrapolation), which keeps callers robust against tiny
// negative rounding noise.
func (f Func) Eval(x float64) float64 {
	if f.IsZero() {
		panic("pwl: Eval on zero Func")
	}
	i := f.segIndex(x)
	return f.segs[i].At(x)
}

// segIndex returns the index of the segment whose domain contains x
// (clamping below 0 and above the last start).
func (f Func) segIndex(x float64) int {
	// Binary search for the last segment with X0 <= x.
	i := sort.Search(len(f.segs), func(i int) bool { return f.segs[i].X0 > x })
	if i == 0 {
		return 0
	}
	return i - 1
}

// AddConst returns f + c.
func (f Func) AddConst(c float64) Func {
	return f.mapSegs(func(s Seg) Seg {
		s.Y0 += c
		return s
	})
}

// AddLinear returns g(x) = f(x) + b + m·x.
func (f Func) AddLinear(b, m float64) Func {
	return f.mapSegs(func(s Seg) Seg {
		s.Y0 += b + m*s.X0
		s.M += m
		return s
	})
}

// Scale returns g(x) = k·f(x). Useful for averaging in tests; k must be
// finite.
func (f Func) Scale(k float64) Func {
	return f.mapSegs(func(s Seg) Seg {
		s.Y0 *= k
		s.M *= k
		return s
	})
}

func (f Func) mapSegs(fn func(Seg) Seg) Func {
	out := make([]Seg, len(f.segs))
	for i, s := range f.segs {
		out[i] = fn(s)
	}
	return Func{segs: out}.canon()
}

// Shift returns g(x) = f(x + d) for d ≥ 0. This is the "external
// capacitance grows by d" operator used when a subtree is augmented by a
// wire or joined with a sibling of capacitance d. Segments that fall
// entirely below the new origin are dropped; the first surviving segment
// is re-anchored at 0.
func (f Func) Shift(d float64) Func {
	if d < 0 {
		if d > -Eps {
			d = 0
		} else {
			panic(fmt.Sprintf("pwl: Shift by negative %g", d))
		}
	}
	if d == 0 {
		return f
	}
	out := make([]Seg, 0, len(f.segs))
	for _, s := range f.segs {
		x0 := s.X0 - d
		x1 := s.X1 - d
		if x1 <= 0 {
			continue // entirely left of new origin
		}
		if x0 < 0 {
			// Re-anchor at 0.
			s.Y0 = s.At(d) // value of original at x=d is new value at 0
			x0 = 0
		} else {
			// value unchanged; only the anchor moves
		}
		out = append(out, Seg{X0: x0, X1: x1, Y0: s.Y0, M: s.M})
	}
	if len(out) == 0 {
		// d beyond all finite breakpoints of a degenerate function —
		// cannot happen because the last segment is infinite.
		panic("pwl: Shift produced empty function")
	}
	return Func{segs: out}.canon()
}

// Max returns the pointwise maximum of f and g.
func (f Func) Max(g Func) Func { return merge(f, g, math.Max) }

// Min returns the pointwise minimum of f and g.
func (f Func) Min(g Func) Func { return merge(f, g, math.Min) }

// Add returns the pointwise sum f + g.
func (f Func) Add(g Func) Func {
	return merge(f, g, func(a, b float64) float64 { return a + b })
}

// MaxOver folds Max over fs, returning NegInf for an empty slice.
func MaxOver(fs ...Func) Func {
	out := NegInf()
	for _, f := range fs {
		out = out.Max(f)
	}
	return out
}

// merge combines two PWL functions with a binary operator, splitting at
// the union of their breakpoints and, for Max/Min, also at interior
// crossing points of the two lines.
func merge(f, g Func, op func(a, b float64) float64) Func {
	if f.IsZero() || g.IsZero() {
		panic("pwl: merge on zero Func")
	}
	// Gather breakpoints.
	xs := make([]float64, 0, len(f.segs)+len(g.segs)+4)
	for _, s := range f.segs {
		xs = append(xs, s.X0)
	}
	for _, s := range g.segs {
		xs = append(xs, s.X0)
	}
	// Crossing points within overlapping pieces. We walk both lists.
	i, j := 0, 0
	for i < len(f.segs) && j < len(g.segs) {
		a, b := f.segs[i], g.segs[j]
		lo := math.Max(a.X0, b.X0)
		hi := math.Min(a.X1, b.X1)
		if hi > lo {
			if x, ok := lineCross(a, b); ok && x > lo+Eps && x < hi-Eps {
				xs = append(xs, x)
			}
		}
		if a.X1 <= b.X1 {
			i++
		} else {
			j++
		}
	}
	sort.Float64s(xs)
	// Deduplicate.
	uniq := xs[:0]
	for _, x := range xs {
		if len(uniq) == 0 || x > uniq[len(uniq)-1]+Eps {
			uniq = append(uniq, x)
		}
	}
	if len(uniq) == 0 || uniq[0] != 0 {
		uniq = append([]float64{0}, uniq...)
	}
	out := make([]Seg, 0, len(uniq))
	for k, x0 := range uniq {
		x1 := math.Inf(1)
		if k+1 < len(uniq) {
			x1 = uniq[k+1]
		}
		// Use the midpoint to decide which line wins on this piece; at
		// infinity use a point past x0.
		var mid float64
		if math.IsInf(x1, 1) {
			mid = x0 + 1
		} else {
			mid = (x0 + x1) / 2
		}
		fa, fb := f.segs[f.segIndex(mid)], g.segs[g.segIndex(mid)]
		y0 := op(fa.At(x0), fb.At(x0))
		ym := op(fa.At(mid), fb.At(mid))
		// Reconstruct the segment line from its values at x0 and mid.
		var m float64
		switch {
		case math.IsInf(y0, 0) && math.IsInf(ym, 0):
			// Both endpoints infinite (NegInf operand): constant ±Inf.
			m = 0
		default:
			m = (ym - y0) / (mid - x0)
		}
		out = append(out, Seg{X0: x0, X1: x1, Y0: y0, M: m})
	}
	return Func{segs: out}.canon()
}

// safeSub computes a − b with the conventions needed for dominance
// comparison: −∞ − (−∞) = −∞ (a ≤ b holds when both are absent), and a
// finite value minus −∞ is +∞ (a ≤ b fails).
func safeSub(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return math.Inf(-1)
	}
	if math.IsInf(b, -1) {
		return math.Inf(1)
	}
	return a - b
}

// lineCross returns the x at which the extended lines of segments a and b
// intersect, and whether they are non-parallel.
func lineCross(a, b Seg) (float64, bool) {
	dm := a.M - b.M
	if math.Abs(dm) < Eps {
		return 0, false
	}
	// a.Y0 + a.M (x - a.X0) = b.Y0 + b.M (x - b.X0)
	num := (b.Y0 - b.M*b.X0) - (a.Y0 - a.M*a.X0)
	return num / dm, true
}

// canon merges adjacent segments that lie on the same line (within Eps)
// and normalizes tiny negative zero values.
func (f Func) canon() Func {
	if len(f.segs) == 0 {
		return f
	}
	out := f.segs[:0:0]
	for _, s := range f.segs {
		if len(out) > 0 {
			p := &out[len(out)-1]
			sameSlope := math.Abs(p.M-s.M) <= Eps ||
				(math.IsInf(p.Y0, 0) && math.IsInf(s.Y0, 0) && p.Y0 == s.Y0)
			contOK := math.IsInf(p.Y0, 0) && p.Y0 == s.Y0 ||
				math.Abs(p.At(s.X0)-s.Y0) <= Eps*(1+math.Abs(s.Y0))
			if sameSlope && contOK {
				p.X1 = s.X1
				continue
			}
		}
		out = append(out, s)
	}
	return Func{segs: out}
}

// EqualWithin reports whether f and g agree within tol at all breakpoints
// of both functions and at midpoints of the induced pieces.
func (f Func) EqualWithin(g Func, tol float64) bool {
	xs := breakpointUnion(f, g)
	for _, x := range xs {
		if !closeOrBothInf(f.Eval(x), g.Eval(x), tol) {
			return false
		}
	}
	for i := 0; i+1 < len(xs); i++ {
		m := (xs[i] + xs[i+1]) / 2
		if !closeOrBothInf(f.Eval(m), g.Eval(m), tol) {
			return false
		}
	}
	// Compare asymptotic slope.
	lf, lg := f.segs[len(f.segs)-1], g.segs[len(g.segs)-1]
	if math.IsInf(lf.Y0, -1) != math.IsInf(lg.Y0, -1) {
		return false
	}
	if !math.IsInf(lf.Y0, -1) && math.Abs(lf.M-lg.M) > tol {
		return false
	}
	return true
}

func closeOrBothInf(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

func breakpointUnion(f, g Func) []float64 {
	xs := make([]float64, 0, len(f.segs)+len(g.segs))
	for _, s := range f.segs {
		xs = append(xs, s.X0)
	}
	for _, s := range g.segs {
		xs = append(xs, s.X0)
	}
	sort.Float64s(xs)
	uniq := xs[:0]
	for _, x := range xs {
		if len(uniq) == 0 || x > uniq[len(uniq)-1]+Eps {
			uniq = append(uniq, x)
		}
	}
	return uniq
}

// LeqRegions returns the set of x ≥ 0 where f(x) ≤ g(x) + tol. This is
// the primitive behind minimal-functional-subset pruning: the region where
// one solution's PWL coordinate does not exceed another's. Infinities are
// handled so that −∞ ≤ −∞ holds (both-empty diameter functions compare as
// equal rather than producing NaN).
func (f Func) LeqRegions(g Func, tol float64) IntervalSet {
	d := merge(f, g, safeSub) // f - g
	var out IntervalSet
	for _, s := range d.segs {
		lo, hi := s.X0, s.X1
		v0 := s.Y0
		v1 := s.end()
		switch {
		case v0 <= tol && v1 <= tol:
			out = append(out, Interval{Lo: lo, Hi: hi})
		case v0 > tol && v1 > tol:
			// nothing
		default:
			// One crossing inside the piece.
			if s.M == 0 || math.IsInf(v0, 0) {
				// Constant piece straddling is impossible; infinite
				// endpoints: treat -Inf as ≤, +Inf as >.
				if v0 <= tol {
					out = append(out, Interval{Lo: lo, Hi: hi})
				}
				continue
			}
			x := s.X0 + (tol-s.Y0)/s.M
			if v0 <= tol {
				out = append(out, Interval{Lo: lo, Hi: math.Min(x, hi)})
			} else {
				out = append(out, Interval{Lo: math.Max(x, lo), Hi: hi})
			}
		}
	}
	return out.Canon()
}

// MinOn returns the minimum value of f on the interval set dom, and the
// x achieving it. Returns +Inf if dom is empty.
func (f Func) MinOn(dom IntervalSet) (xmin, ymin float64) {
	ymin = math.Inf(1)
	xmin = math.NaN()
	for _, iv := range dom {
		for _, s := range f.segs {
			lo := math.Max(s.X0, iv.Lo)
			hi := math.Min(s.X1, iv.Hi)
			if hi < lo {
				continue
			}
			// Linear on [lo,hi]: min at an endpoint.
			if y := s.At(lo); y < ymin {
				ymin, xmin = y, lo
			}
			if !math.IsInf(hi, 1) {
				if y := s.At(hi); y < ymin {
					ymin, xmin = y, hi
				}
			} else if s.M < 0 {
				ymin, xmin = math.Inf(-1), math.Inf(1)
			}
		}
	}
	return xmin, ymin
}

// String renders the function as a sequence of pieces for debugging.
func (f Func) String() string {
	if f.IsZero() {
		return "pwl.Func(zero)"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, s := range f.segs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "[%.4g,%.4g): %.6g + %.6g·Δx", s.X0, s.X1, s.Y0, s.M)
	}
	b.WriteByte('}')
	return b.String()
}

// CheckInvariants validates the internal representation; tests call this
// after every operation.
func (f Func) CheckInvariants() error {
	if f.IsZero() {
		return fmt.Errorf("zero Func")
	}
	if f.segs[0].X0 != 0 {
		return fmt.Errorf("first segment starts at %g, want 0", f.segs[0].X0)
	}
	for i, s := range f.segs {
		if s.X1 <= s.X0 {
			return fmt.Errorf("segment %d empty: [%g,%g)", i, s.X0, s.X1)
		}
		if i+1 < len(f.segs) && math.Abs(f.segs[i+1].X0-s.X1) > Eps {
			return fmt.Errorf("gap after segment %d: %g vs %g", i, s.X1, f.segs[i+1].X0)
		}
	}
	if !math.IsInf(f.segs[len(f.segs)-1].X1, 1) {
		return fmt.Errorf("last segment ends at %g, want +Inf", f.segs[len(f.segs)-1].X1)
	}
	return nil
}
