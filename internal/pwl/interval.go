package pwl

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Interval is a half-open interval [Lo, Hi) on the external-capacitance
// axis. Hi may be +Inf.
type Interval struct {
	Lo, Hi float64
}

// Empty reports whether the interval contains no points (beyond Eps).
func (iv Interval) Empty() bool { return iv.Hi-iv.Lo <= Eps }

// Len returns Hi − Lo (possibly +Inf).
func (iv Interval) Len() float64 { return iv.Hi - iv.Lo }

// IntervalSet is a set of disjoint, sorted intervals. It represents the
// validity domain of a candidate solution: the values of external
// capacitance for which the solution is not dominated by any other (the
// "minimal functional subset" of Definition 4.3). The zero value is the
// empty set; use Full() for [0, +∞).
type IntervalSet []Interval

// Full returns the interval set covering all of [0, +∞).
func Full() IntervalSet {
	return IntervalSet{{Lo: 0, Hi: math.Inf(1)}}
}

// Canon sorts, clips to [0, +∞), drops empty intervals and merges
// adjacent/overlapping ones, returning the canonical form.
func (s IntervalSet) Canon() IntervalSet {
	cp := make(IntervalSet, 0, len(s))
	for _, iv := range s {
		if iv.Lo < 0 {
			iv.Lo = 0
		}
		if !iv.Empty() {
			cp = append(cp, iv)
		}
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i].Lo < cp[j].Lo })
	out := cp[:0]
	for _, iv := range cp {
		if len(out) > 0 && iv.Lo <= out[len(out)-1].Hi+Eps {
			if iv.Hi > out[len(out)-1].Hi {
				out[len(out)-1].Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// IsEmpty reports whether the set contains no points.
func (s IntervalSet) IsEmpty() bool {
	for _, iv := range s {
		if !iv.Empty() {
			return false
		}
	}
	return true
}

// Contains reports whether x lies in the set.
func (s IntervalSet) Contains(x float64) bool {
	for _, iv := range s {
		if x >= iv.Lo-Eps && x < iv.Hi+Eps {
			return true
		}
	}
	return false
}

// Measure returns the total length of the set (possibly +Inf).
func (s IntervalSet) Measure() float64 {
	var m float64
	for _, iv := range s {
		m += iv.Len()
	}
	return m
}

// Intersect returns s ∩ t.
func (s IntervalSet) Intersect(t IntervalSet) IntervalSet {
	var out IntervalSet
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		lo := math.Max(s[i].Lo, t[j].Lo)
		hi := math.Min(s[i].Hi, t[j].Hi)
		if hi > lo {
			out = append(out, Interval{Lo: lo, Hi: hi})
		}
		if s[i].Hi < t[j].Hi {
			i++
		} else {
			j++
		}
	}
	return out.Canon()
}

// Subtract returns s \ t.
func (s IntervalSet) Subtract(t IntervalSet) IntervalSet {
	t = t.Canon()
	var out IntervalSet
	for _, iv := range s {
		lo := iv.Lo
		for _, cut := range t {
			if cut.Hi <= lo {
				continue
			}
			if cut.Lo >= iv.Hi {
				break
			}
			if cut.Lo > lo {
				out = append(out, Interval{Lo: lo, Hi: math.Min(cut.Lo, iv.Hi)})
			}
			if cut.Hi > lo {
				lo = cut.Hi
			}
		}
		if lo < iv.Hi {
			out = append(out, Interval{Lo: lo, Hi: iv.Hi})
		}
	}
	return out.Canon()
}

// Union returns s ∪ t.
func (s IntervalSet) Union(t IntervalSet) IntervalSet {
	out := make(IntervalSet, 0, len(s)+len(t))
	out = append(out, s...)
	out = append(out, t...)
	return out.Canon()
}

// Shift returns { x : x + d ∈ s } ∩ [0, +∞), i.e. the domain expressed in
// a new variable x' = x − d. It is applied when a subtree's external
// capacitance is known to include an extra fixed load d (a sibling's
// capacitance or an augmenting wire's capacitance).
func (s IntervalSet) Shift(d float64) IntervalSet {
	out := make(IntervalSet, 0, len(s))
	for _, iv := range s {
		out = append(out, Interval{Lo: iv.Lo - d, Hi: iv.Hi - d})
	}
	return out.Canon()
}

// String renders the set for debugging.
func (s IntervalSet) String() string {
	if s.IsEmpty() {
		return "∅"
	}
	var b strings.Builder
	for i, iv := range s {
		if i > 0 {
			b.WriteString(" ∪ ")
		}
		fmt.Fprintf(&b, "[%.4g,%.4g)", iv.Lo, iv.Hi)
	}
	return b.String()
}
