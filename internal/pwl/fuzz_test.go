package pwl

import (
	"math"
	"testing"
)

// FuzzMaxShiftAdd drives the PWL algebra with arbitrary line parameters
// and operation inputs, asserting representation invariants and pointwise
// semantics. Run with `go test -fuzz FuzzMaxShiftAdd ./internal/pwl` for
// continuous fuzzing; the seed corpus runs in normal `go test`.
func FuzzMaxShiftAdd(f *testing.F) {
	f.Add(0.0, 1.0, 5.0, -2.0, 0.5, 1.5, 2.0)
	f.Add(1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(-3.0, 2.5, 4.0, -1.25, 7.0, 0.25, 100.0)
	f.Fuzz(func(t *testing.T, b1, m1, b2, m2, shift, addM, x float64) {
		for _, v := range []float64{b1, m1, b2, m2, shift, addM, x} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				t.Skip("out of modeled range")
			}
		}
		if shift < 0 {
			shift = -shift
		}
		if x < 0 {
			x = -x
		}
		fn := Linear(b1, m1).Max(Linear(b2, m2))
		if err := fn.CheckInvariants(); err != nil {
			t.Fatalf("max invariants: %v", err)
		}
		want := math.Max(b1+m1*(x+shift), b2+m2*(x+shift)) + addM*x
		got := fn.Shift(shift).AddLinear(0, addM).Eval(x)
		// Relative tolerance: the fuzzer explores huge magnitudes.
		tol := 1e-6 * (1 + math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Fatalf("Eval mismatch: got %g, want %g (b1=%g m1=%g b2=%g m2=%g shift=%g addM=%g x=%g)",
				got, want, b1, m1, b2, m2, shift, addM, x)
		}
	})
}

// FuzzLeqRegions checks that the dominance-region primitive agrees with
// direct comparison at arbitrary probe points.
func FuzzLeqRegions(f *testing.F) {
	f.Add(0.0, 1.0, 5.0, -1.0, 2.5)
	f.Add(1.0, 1.0, 1.0, 1.0, 0.0)
	f.Fuzz(func(t *testing.T, b1, m1, b2, m2, x float64) {
		for _, v := range []float64{b1, m1, b2, m2, x} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				t.Skip()
			}
		}
		if x < 0 {
			x = -x
		}
		fa := Linear(b1, m1)
		fb := Linear(b2, m2)
		regions := fa.LeqRegions(fb, 0)
		va, vb := fa.Eval(x), fb.Eval(x)
		margin := 1e-6 * (1 + math.Max(math.Abs(va), math.Abs(vb)))
		in := regions.Contains(x)
		if va < vb-margin && !in {
			t.Fatalf("f<g at %g but not in region %v", x, regions)
		}
		if va > vb+margin && in {
			t.Fatalf("f>g at %g but in region %v", x, regions)
		}
	})
}
