// Package validate defines the msrnet-error/v1 taxonomy: a typed,
// machine-readable vocabulary for everything that can be wrong with a
// net file, its technology, or a serving request. Every rejection in
// netio, the CLIs and the msrnetd HTTP surface is (or wraps) an *Error
// carrying one of the Code* constants, so clients and scripts can
// branch on the code instead of parsing prose. The package also holds
// the generic structural/numeric checkers the netio walk builds on
// (finiteness, sign, union-find cycle/connectivity detection) and the
// corpus of canonical malformed inputs that seeds the fuzz targets.
//
// The deep NetFile walk itself lives in netio.Check — netio owns the
// file schema — but every error it produces is typed here. See
// DESIGN.md §9.
package validate

import (
	"errors"
	"fmt"
	"math"
)

// TaxonomyVersion identifies the error vocabulary. It is echoed in
// msrnetd error bodies next to the code.
const TaxonomyVersion = "msrnet-error/v1"

// Net-level codes: the structure or numbers of the net file are wrong.
const (
	// CodeBadJSON: the input is not syntactically valid JSON.
	CodeBadJSON = "net/bad_json"
	// CodeUnsupportedVersion: the file's schema version is unknown.
	CodeUnsupportedVersion = "net/unsupported_version"
	// CodeEmptyNet: the net has no nodes.
	CodeEmptyNet = "net/empty"
	// CodeTooLarge: the net exceeds the configured size limits.
	CodeTooLarge = "net/too_large"
	// CodeNodeOrder: node ids are not dense and in index order.
	CodeNodeOrder = "net/node_id_order"
	// CodeBadKind: a node kind is not terminal/steiner/insertion.
	CodeBadKind = "net/bad_node_kind"
	// CodeNonFinite: a coordinate, length or electrical value is NaN/±Inf.
	CodeNonFinite = "net/non_finite"
	// CodeNegativeRC: a resistance, capacitance or length is negative.
	CodeNegativeRC = "net/negative_rc"
	// CodeEdgeRange: an edge endpoint is not a valid node id.
	CodeEdgeRange = "net/edge_endpoint"
	// CodeSelfLoop: an edge connects a node to itself.
	CodeSelfLoop = "net/self_loop"
	// CodeCycle: the edge set contains a cycle.
	CodeCycle = "net/cycle"
	// CodeDisconnected: the graph has more than one component.
	CodeDisconnected = "net/disconnected"
	// CodeNotATree: edge count does not match node count − 1.
	CodeNotATree = "net/not_a_tree"
	// CodeTerminalDegree: a terminal is not a leaf.
	CodeTerminalDegree = "net/terminal_not_leaf"
	// CodeInsertionDegree: an insertion point does not have degree 2.
	CodeInsertionDegree = "net/insertion_degree"
	// CodeNoSource: the net has no source terminal.
	CodeNoSource = "net/no_source"
	// CodeNoSink: the net has no sink terminal.
	CodeNoSink = "net/no_sink"
)

// Technology-level codes.
const (
	// CodeTechNonFinite: a technology parameter is NaN/±Inf.
	CodeTechNonFinite = "tech/non_finite"
	// CodeTechNegativeRC: a technology R/C/cost is negative.
	CodeTechNegativeRC = "tech/negative_rc"
	// CodeTechEmptyLibrary: an operation requires a repeater/driver
	// library the technology does not carry.
	CodeTechEmptyLibrary = "tech/empty_library"
	// CodeTechTooLarge: a repeater/driver library exceeds the limits.
	CodeTechTooLarge = "tech/too_large"
)

// Error is one typed validation failure. Code is a member of the
// msrnet-error/v1 vocabulary above; Path locates the offending element
// ("nodes[3].cin", "edges[0]", "tech.repeaters[2].cost"); Detail is the
// human-readable explanation.
type Error struct {
	Code   string `json:"code"`
	Path   string `json:"path,omitempty"`
	Detail string `json:"detail"`
}

// Error renders "code at path: detail" (path omitted when empty).
func (e *Error) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("%s: %s", e.Code, e.Detail)
	}
	return fmt.Sprintf("%s at %s: %s", e.Code, e.Path, e.Detail)
}

// E builds a taxonomy error.
func E(code, path, format string, args ...any) *Error {
	return &Error{Code: code, Path: path, Detail: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the taxonomy code from err (unwrapping as needed);
// empty when err carries none.
func CodeOf(err error) string {
	var ve *Error
	if errors.As(err, &ve) {
		return ve.Code
	}
	return ""
}

// PathOf extracts the element path from err; empty when err carries
// none.
func PathOf(err error) string {
	var ve *Error
	if errors.As(err, &ve) {
		return ve.Path
	}
	return ""
}

// Limits bounds the size of an acceptable net — the defense against
// hostile or runaway inputs (a daemon must reject a billion-node net at
// decode, not at OOM).
type Limits struct {
	// MaxNodes caps the node count (0 = DefaultLimits value).
	MaxNodes int
	// MaxEdges caps the edge count (0 = DefaultLimits value).
	MaxEdges int
	// MaxLibrary caps the repeater and driver library sizes each
	// (0 = DefaultLimits value).
	MaxLibrary int
}

// DefaultLimits are the decode-time bounds: generous for legitimate
// EDA workloads, far below anything that would distress the process.
func DefaultLimits() Limits {
	return Limits{MaxNodes: 200_000, MaxEdges: 200_000, MaxLibrary: 4096}
}

// withDefaults fills zero fields from DefaultLimits.
func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxNodes <= 0 {
		l.MaxNodes = d.MaxNodes
	}
	if l.MaxEdges <= 0 {
		l.MaxEdges = d.MaxEdges
	}
	if l.MaxLibrary <= 0 {
		l.MaxLibrary = d.MaxLibrary
	}
	return l
}

// Resolve returns the limits with defaults applied — what a checker
// actually enforces.
func (l Limits) Resolve() Limits { return l.withDefaults() }

// Finite returns a typed error when v is NaN or ±Inf.
func Finite(code, path string, v float64) *Error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return E(code, path, "value %v is not finite", v)
	}
	return nil
}

// NonNegative returns a typed error when v is negative or non-finite
// (negative R/C/length/cost are physically meaningless and break the
// Elmore model's monotonicity assumptions).
func NonNegative(finiteCode, negCode, path string, v float64) *Error {
	if err := Finite(finiteCode, path, v); err != nil {
		return err
	}
	if v < 0 {
		return E(negCode, path, "value %v is negative", v)
	}
	return nil
}

// DSU is a union-find over n elements used for cycle and connectivity
// detection on the edge list — the structural core of the net checks.
type DSU struct {
	parent []int
	comps  int
}

// NewDSU builds a forest of n singletons.
func NewDSU(n int) *DSU {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &DSU{parent: p, comps: n}
}

func (d *DSU) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// Union merges the sets of a and b, reporting false when they were
// already connected (i.e. the edge closes a cycle).
func (d *DSU) Union(a, b int) bool {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return false
	}
	d.parent[ra] = rb
	d.comps--
	return true
}

// Components reports the number of connected components.
func (d *DSU) Components() int { return d.comps }
