package validate

// CorpusEntry is one canonical malformed (or deliberately well-formed)
// net file, paired with the taxonomy code its rejection must carry.
// The corpus seeds the netio and service fuzz targets and anchors the
// taxonomy tests: every code in the vocabulary has at least one entry
// that provokes it.
type CorpusEntry struct {
	// Name identifies the entry in test output.
	Name string
	// JSON is the raw net-file document.
	JSON string
	// WantCode is the msrnet-error/v1 code netio.Read+Decode must
	// return, or "" when the entry must decode cleanly.
	WantCode string
}

// minimal two-terminal net fragments shared by the entries below. The
// tech block is the smallest one that passes the numeric checks.
const goodTech = `"tech":{"wire_res_per_um":0.1,"wire_cap_per_um":0.2}`

// Corpus returns the canonical malformed-input set. Entries are valid
// JSON unless the name says otherwise, so each exercises a specific
// semantic check rather than the JSON parser.
func Corpus() []CorpusEntry {
	return []CorpusEntry{
		{
			Name:     "truncated json",
			JSON:     `{"version":1,"nodes":[`,
			WantCode: CodeBadJSON,
		},
		{
			Name:     "wrong version",
			JSON:     `{"version":99,` + goodTech + `,"nodes":[],"edges":[]}`,
			WantCode: CodeUnsupportedVersion,
		},
		{
			Name:     "empty net",
			JSON:     `{"version":1,` + goodTech + `,"nodes":[],"edges":[]}`,
			WantCode: CodeEmptyNet,
		},
		{
			Name: "node ids not dense",
			JSON: `{"version":1,` + goodTech + `,"nodes":[
				{"id":0,"kind":"terminal","name":"a","is_source":true,"rout":100},
				{"id":7,"kind":"terminal","name":"b","is_sink":true,"cin":0.01}],
				"edges":[{"a":0,"b":1,"length":10}]}`,
			WantCode: CodeNodeOrder,
		},
		{
			Name: "unknown node kind",
			JSON: `{"version":1,` + goodTech + `,"nodes":[
				{"id":0,"kind":"teapot"},
				{"id":1,"kind":"terminal","name":"b","is_sink":true,"is_source":true}],
				"edges":[{"a":0,"b":1,"length":10}]}`,
			WantCode: CodeBadKind,
		},
		{
			// JSON itself cannot carry NaN/±Inf — an overflowing literal
			// dies in the parser. The CodeNonFinite checks are reachable
			// only through programmatic NetFile construction; see the
			// netio tests.
			Name: "overflowing coordinate literal",
			JSON: `{"version":1,` + goodTech + `,"nodes":[
				{"id":0,"kind":"terminal","name":"a","is_source":true,"x":1e999},
				{"id":1,"kind":"terminal","name":"b","is_sink":true}],
				"edges":[{"a":0,"b":1,"length":10}]}`,
			WantCode: CodeBadJSON,
		},
		{
			Name: "negative input capacitance",
			JSON: `{"version":1,` + goodTech + `,"nodes":[
				{"id":0,"kind":"terminal","name":"a","is_source":true},
				{"id":1,"kind":"terminal","name":"b","is_sink":true,"cin":-0.5}],
				"edges":[{"a":0,"b":1,"length":10}]}`,
			WantCode: CodeNegativeRC,
		},
		{
			Name: "edge endpoint out of range",
			JSON: `{"version":1,` + goodTech + `,"nodes":[
				{"id":0,"kind":"terminal","name":"a","is_source":true},
				{"id":1,"kind":"terminal","name":"b","is_sink":true}],
				"edges":[{"a":0,"b":5,"length":10}]}`,
			WantCode: CodeEdgeRange,
		},
		{
			Name: "self-loop edge",
			JSON: `{"version":1,` + goodTech + `,"nodes":[
				{"id":0,"kind":"terminal","name":"a","is_source":true},
				{"id":1,"kind":"terminal","name":"b","is_sink":true}],
				"edges":[{"a":0,"b":0,"length":10}]}`,
			WantCode: CodeSelfLoop,
		},
		{
			Name: "negative wire length",
			JSON: `{"version":1,` + goodTech + `,"nodes":[
				{"id":0,"kind":"terminal","name":"a","is_source":true},
				{"id":1,"kind":"terminal","name":"b","is_sink":true}],
				"edges":[{"a":0,"b":1,"length":-3}]}`,
			WantCode: CodeNegativeRC,
		},
		{
			Name: "cycle",
			JSON: `{"version":1,` + goodTech + `,"nodes":[
				{"id":0,"kind":"terminal","name":"a","is_source":true},
				{"id":1,"kind":"steiner"},
				{"id":2,"kind":"steiner"},
				{"id":3,"kind":"terminal","name":"b","is_sink":true}],
				"edges":[{"a":0,"b":1,"length":1},{"a":1,"b":2,"length":1},
				         {"a":2,"b":1,"length":1},{"a":2,"b":3,"length":1}]}`,
			WantCode: CodeCycle,
		},
		{
			Name: "disconnected",
			JSON: `{"version":1,` + goodTech + `,"nodes":[
				{"id":0,"kind":"terminal","name":"a","is_source":true},
				{"id":1,"kind":"terminal","name":"b","is_sink":true},
				{"id":2,"kind":"steiner"},
				{"id":3,"kind":"steiner"}],
				"edges":[{"a":0,"b":1,"length":1},{"a":2,"b":3,"length":1}]}`,
			WantCode: CodeDisconnected,
		},
		{
			Name: "too few edges",
			JSON: `{"version":1,` + goodTech + `,"nodes":[
				{"id":0,"kind":"terminal","name":"a","is_source":true},
				{"id":1,"kind":"terminal","name":"b","is_sink":true},
				{"id":2,"kind":"steiner"}],
				"edges":[{"a":0,"b":1,"length":1}]}`,
			WantCode: CodeDisconnected,
		},
		{
			Name: "terminal not a leaf",
			JSON: `{"version":1,` + goodTech + `,"nodes":[
				{"id":0,"kind":"terminal","name":"a","is_source":true},
				{"id":1,"kind":"terminal","name":"m","is_sink":true},
				{"id":2,"kind":"terminal","name":"b","is_sink":true}],
				"edges":[{"a":0,"b":1,"length":1},{"a":1,"b":2,"length":1}]}`,
			WantCode: CodeTerminalDegree,
		},
		{
			Name: "insertion point of degree 1",
			JSON: `{"version":1,` + goodTech + `,"nodes":[
				{"id":0,"kind":"terminal","name":"a","is_source":true,"is_sink":true},
				{"id":1,"kind":"insertion"}],
				"edges":[{"a":0,"b":1,"length":1}]}`,
			WantCode: CodeInsertionDegree,
		},
		{
			Name: "no source",
			JSON: `{"version":1,` + goodTech + `,"nodes":[
				{"id":0,"kind":"terminal","name":"a","is_sink":true},
				{"id":1,"kind":"terminal","name":"b","is_sink":true}],
				"edges":[{"a":0,"b":1,"length":10}]}`,
			WantCode: CodeNoSource,
		},
		{
			Name: "no sink",
			JSON: `{"version":1,` + goodTech + `,"nodes":[
				{"id":0,"kind":"terminal","name":"a","is_source":true},
				{"id":1,"kind":"terminal","name":"b","is_source":true}],
				"edges":[{"a":0,"b":1,"length":10}]}`,
			WantCode: CodeNoSink,
		},
		{
			Name: "negative wire capacitance",
			JSON: `{"version":1,"tech":{"wire_res_per_um":0.1,"wire_cap_per_um":-0.2},"nodes":[
				{"id":0,"kind":"terminal","name":"a","is_source":true},
				{"id":1,"kind":"terminal","name":"b","is_sink":true}],
				"edges":[{"a":0,"b":1,"length":10}]}`,
			WantCode: CodeTechNegativeRC,
		},
		{
			Name: "negative repeater cost",
			JSON: `{"version":1,"tech":{"wire_res_per_um":0.1,"wire_cap_per_um":0.2,
				"repeaters":[{"name":"r1","cost":-1}]},"nodes":[
				{"id":0,"kind":"terminal","name":"a","is_source":true},
				{"id":1,"kind":"terminal","name":"b","is_sink":true}],
				"edges":[{"a":0,"b":1,"length":10}]}`,
			WantCode: CodeTechNegativeRC,
		},
		{
			Name: "well-formed two-pin net",
			JSON: `{"version":1,` + goodTech + `,"nodes":[
				{"id":0,"kind":"terminal","name":"a","is_source":true,"rout":100},
				{"id":1,"kind":"terminal","name":"b","is_sink":true,"cin":0.01}],
				"edges":[{"a":0,"b":1,"length":10}]}`,
			WantCode: "",
		},
	}
}
