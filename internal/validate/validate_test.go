package validate

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestErrorRendering(t *testing.T) {
	e := E(CodeCycle, "edges[2]", "edge %d–%d closes a cycle", 2, 1)
	if got := e.Error(); got != "net/cycle at edges[2]: edge 2–1 closes a cycle" {
		t.Fatalf("render: %q", got)
	}
	noPath := E(CodeEmptyNet, "", "net has no nodes")
	if got := noPath.Error(); got != "net/empty: net has no nodes" {
		t.Fatalf("render without path: %q", got)
	}
}

func TestCodeOfUnwraps(t *testing.T) {
	base := E(CodeNoSource, "nodes", "net has no source terminal")
	wrapped := fmt.Errorf("job #3: %w", fmt.Errorf("decode: %w", base))
	if got := CodeOf(wrapped); got != CodeNoSource {
		t.Fatalf("CodeOf(wrapped) = %q", got)
	}
	if got := PathOf(wrapped); got != "nodes" {
		t.Fatalf("PathOf(wrapped) = %q", got)
	}
	if got := CodeOf(errors.New("plain")); got != "" {
		t.Fatalf("CodeOf(plain) = %q, want empty", got)
	}
	if got := CodeOf(nil); got != "" {
		t.Fatalf("CodeOf(nil) = %q, want empty", got)
	}
}

func TestFiniteAndNonNegative(t *testing.T) {
	if err := Finite(CodeNonFinite, "x", 1.5); err != nil {
		t.Fatalf("finite value rejected: %v", err)
	}
	nan := 0.0
	nan /= nan
	if err := Finite(CodeNonFinite, "x", nan); err == nil || err.Code != CodeNonFinite {
		t.Fatalf("NaN accepted: %v", err)
	}
	if err := NonNegative(CodeNonFinite, CodeNegativeRC, "cin", -1); err == nil || err.Code != CodeNegativeRC {
		t.Fatalf("negative accepted: %v", err)
	}
	if err := NonNegative(CodeNonFinite, CodeNegativeRC, "cin", nan); err == nil || err.Code != CodeNonFinite {
		t.Fatalf("NaN ranked below sign check: %v", err)
	}
}

func TestDSU(t *testing.T) {
	d := NewDSU(5)
	if d.Components() != 5 {
		t.Fatalf("fresh components = %d", d.Components())
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}} {
		if !d.Union(e[0], e[1]) {
			t.Fatalf("union %v reported a cycle", e)
		}
	}
	if d.Components() != 2 {
		t.Fatalf("components = %d, want 2", d.Components())
	}
	if d.Union(2, 0) {
		t.Fatal("cycle-closing union not detected")
	}
	if !d.Union(2, 3) {
		t.Fatal("cross-component union rejected")
	}
	if d.Components() != 1 {
		t.Fatalf("final components = %d, want 1", d.Components())
	}
}

func TestLimitsResolve(t *testing.T) {
	r := Limits{}.Resolve()
	d := DefaultLimits()
	if r != d {
		t.Fatalf("zero limits resolve to %+v, want defaults %+v", r, d)
	}
	r = Limits{MaxNodes: 10}.Resolve()
	if r.MaxNodes != 10 || r.MaxEdges != d.MaxEdges || r.MaxLibrary != d.MaxLibrary {
		t.Fatalf("partial limits resolve to %+v", r)
	}
}

// TestCorpusCoversTaxonomy: every net/tech code in the vocabulary has a
// corpus entry provoking it (so the fuzz seeds exercise the whole
// taxonomy), and every entry's code is part of the vocabulary.
func TestCorpusCoversTaxonomy(t *testing.T) {
	// CodeNonFinite and CodeTechNonFinite are absent: JSON cannot carry
	// NaN/±Inf, so their triggers only exist as in-memory NetFiles (the
	// netio tests cover them directly).
	all := []string{
		CodeBadJSON, CodeUnsupportedVersion, CodeEmptyNet, CodeNodeOrder,
		CodeBadKind, CodeNegativeRC, CodeEdgeRange,
		CodeSelfLoop, CodeCycle, CodeDisconnected, CodeTerminalDegree,
		CodeInsertionDegree, CodeNoSource, CodeNoSink,
		CodeTechNegativeRC,
	}
	have := map[string]bool{}
	for _, c := range Corpus() {
		have[c.WantCode] = true
		if c.WantCode == "" {
			continue
		}
		if !strings.HasPrefix(c.WantCode, "net/") && !strings.HasPrefix(c.WantCode, "tech/") {
			t.Errorf("%s: code %q outside the net/ and tech/ namespaces", c.Name, c.WantCode)
		}
	}
	for _, code := range all {
		if !have[code] {
			t.Errorf("taxonomy code %s has no corpus entry", code)
		}
	}
	if !have[""] {
		t.Error("corpus has no well-formed entry")
	}
}
