package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(3, 4), 7},
		{Pt(-1, -1), Pt(1, 1), 4},
		{Pt(5, 0), Pt(0, 0), 5},
	}
	for _, c := range cases {
		if got := Dist(c.p, c.q); got != c.want {
			t.Errorf("Dist(%v, %v) = %g, want %g", c.p, c.q, got, c.want)
		}
	}
}

func TestDistSymmetricAndTriangle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	prop := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Pt(math.Mod(ax, 1e4), math.Mod(ay, 1e4))
		b := Pt(math.Mod(bx, 1e4), math.Mod(by, 1e4))
		c := Pt(math.Mod(cx, 1e4), math.Mod(cy, 1e4))
		if Dist(a, b) != Dist(b, a) {
			return false
		}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestEuclidVsManhattan(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		p := Pt(r.Float64()*100, r.Float64()*100)
		q := Pt(r.Float64()*100, r.Float64()*100)
		e, m := EuclidDist(p, q), Dist(p, q)
		if e > m+1e-9 || m > e*math.Sqrt2+1e-9 {
			t.Fatalf("metric bounds violated: L2=%g L1=%g", e, m)
		}
	}
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := Lerp(p, q, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp mid = %v", got)
	}
	if got := Lerp(p, q, -1); got != p {
		t.Errorf("Lerp clamp low = %v", got)
	}
	if got := Lerp(p, q, 2); got != q {
		t.Errorf("Lerp clamp high = %v", got)
	}
}

func TestRectNormalization(t *testing.T) {
	r := NewRect(Pt(5, 1), Pt(2, 7))
	if r.Min != Pt(2, 1) || r.Max != Pt(5, 7) {
		t.Errorf("NewRect normalization failed: %+v", r)
	}
	if r.Width() != 3 || r.Height() != 6 || r.HalfPerimeter() != 9 {
		t.Errorf("dims wrong: w=%g h=%g hp=%g", r.Width(), r.Height(), r.HalfPerimeter())
	}
}

func TestRectContainsExpandUnion(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10))
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(10, 10)) || r.Contains(Pt(11, 5)) {
		t.Error("Contains wrong")
	}
	e := r.Expand(2)
	if !e.Contains(Pt(-2, -2)) || e.Contains(Pt(-3, 0)) {
		t.Error("Expand wrong")
	}
	u := r.Union(NewRect(Pt(20, 20), Pt(30, 30)))
	if u.Min != Pt(0, 0) || u.Max != Pt(30, 30) {
		t.Errorf("Union = %+v", u)
	}
}

func TestBound(t *testing.T) {
	pts := []Point{Pt(3, 9), Pt(-1, 4), Pt(7, 2)}
	b := Bound(pts)
	if b.Min != Pt(-1, 2) || b.Max != Pt(7, 9) {
		t.Errorf("Bound = %+v", b)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("Bound does not contain %v", p)
		}
	}
}

func TestBoundEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bound(nil) did not panic")
		}
	}()
	Bound(nil)
}

func TestEq(t *testing.T) {
	if !Eq(Pt(1, 1), Pt(1+1e-10, 1-1e-10), 1e-9) {
		t.Error("Eq with tolerance failed")
	}
	if Eq(Pt(1, 1), Pt(1.1, 1), 1e-9) {
		t.Error("Eq false positive")
	}
}

func TestPointString(t *testing.T) {
	if s := Pt(1.25, 3).String(); s == "" {
		t.Error("empty String")
	}
}
