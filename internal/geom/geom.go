// Package geom provides planar geometry primitives used by the routing
// and net-generation substrates: points in the plane, rectilinear
// (Manhattan) metrics, bounding boxes and deterministic random point sets.
//
// All coordinates are in micrometers (µm), matching the unit conventions
// of the rest of the module (see DESIGN.md §3).
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane, in µm.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String renders the point as "(x, y)" with µm precision.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Dist returns the rectilinear (L1) distance between p and q.
func Dist(p, q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// EuclidDist returns the Euclidean (L2) distance between p and q.
func EuclidDist(p, q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Lerp returns the point a fraction t of the way from p to q along the
// straight segment pq. t is clamped to [0, 1].
func Lerp(p, q Point, t float64) Point {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return Point{X: p.X + t*(q.X-p.X), Y: p.Y + t*(q.Y-p.Y)}
}

// Eq reports whether p and q coincide within tolerance eps in each
// coordinate.
func Eq(p, q Point, eps float64) bool {
	return math.Abs(p.X-q.X) <= eps && math.Abs(p.Y-q.Y) <= eps
}

// Rect is an axis-aligned rectangle given by its min and max corners.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle with the given corners, normalizing the
// corner order so that Min is component-wise ≤ Max.
func NewRect(a, b Point) Rect {
	r := Rect{Min: a, Max: b}
	if r.Min.X > r.Max.X {
		r.Min.X, r.Max.X = r.Max.X, r.Min.X
	}
	if r.Min.Y > r.Max.Y {
		r.Min.Y, r.Max.Y = r.Max.Y, r.Min.Y
	}
	return r
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// HalfPerimeter returns the half-perimeter of r, a standard lower bound on
// the rectilinear Steiner tree length of points spanning r.
func (r Rect) HalfPerimeter() float64 { return r.Width() + r.Height() }

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Expand grows r by d on every side and returns the result.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{X: r.Min.X - d, Y: r.Min.Y - d},
		Max: Point{X: r.Max.X + d, Y: r.Max.Y + d},
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{X: math.Min(r.Min.X, s.Min.X), Y: math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{X: math.Max(r.Max.X, s.Max.X), Y: math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Bound returns the bounding box of the given points. It panics if pts is
// empty, since an empty point set has no bounding box.
func Bound(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: Bound of empty point set")
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	return r
}
