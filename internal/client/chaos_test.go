package client

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"testing"
	"time"

	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/faultinject"
	"msrnet/internal/netgen"
	"msrnet/internal/netio"
	"msrnet/internal/obs"
	"msrnet/internal/service"
)

// fiveHundredCounter counts server-error responses passing through the
// client's transport: the chaos run must never turn a valid net into a
// bare 5xx.
type fiveHundredCounter struct {
	base http.RoundTripper
	n    int64
}

func (c *fiveHundredCounter) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := c.base.RoundTrip(r)
	if err == nil && resp.StatusCode >= 500 {
		c.n++
	}
	return resp, err
}

func chaosNet(t *testing.T, seed int64, pins int) netio.NetFile {
	t.Helper()
	tr, err := netgen.Generate(seed, netgen.Defaults(pins))
	if err != nil {
		t.Fatal(err)
	}
	return netio.Encode("", tr, buslib.Default())
}

// TestChaosEndToEnd drives the full fault-tolerance story over a real
// listener: a 16-net batch against a daemon whose workers panic, then
// sleep and lose their cache, while the retrying client drives every
// valid net to an OK result; deadline-pressed msri jobs come back
// flagged degraded (never silently truncated) within the documented
// accuracy bound; and the drain leaves no goroutines behind. Run under
// -race in CI (the chaos smoke job).
func TestChaosEndToEnd(t *testing.T) {
	before := runtime.NumGoroutine()

	reg := obs.New()
	inj := faultinject.New(7, reg)
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	const jobTimeout = 30 * time.Second
	d := service.New(service.Config{
		Workers:    4,
		QueueDepth: 64,
		JobTimeout: jobTimeout,
		CacheSize:  64,
		// Headroom = the whole deadline: every msri job degrades on
		// arrival (phase D); plain ard jobs are unaffected.
		DegradeHeadroom: jobTimeout,
		CoarseEps:       0.05,
		Faults:          inj,
		Reg:             reg,
		Logger:          quiet,
	})
	srv, err := service.Serve("127.0.0.1:0", d, quiet)
	if err != nil {
		t.Fatal(err)
	}

	counter := &fiveHundredCounter{base: &http.Transport{}}
	httpc := &http.Client{Transport: counter}
	c := New("http://"+srv.Addr().String(), Options{
		HTTPClient:  httpc,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		Seed:        1,
	})

	const nNets = 16
	batch := &service.Request{Version: service.SchemaVersion}
	nets := make([]netio.NetFile, nNets)
	for i := range nets {
		nets[i] = chaosNet(t, int64(300+i), 6+i%4)
		batch.Jobs = append(batch.Jobs, service.Job{ID: fmt.Sprintf("net-%d", i), Mode: "ard", Net: nets[i]})
	}
	ctx := context.Background()

	// Phase A: every worker invocation panics. Panic isolation must turn
	// each one into a structured, retryable per-job failure — HTTP stays
	// 200, the daemon stays up.
	if err := inj.Configure("svc/worker:panic:1"); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Submit(ctx, batch)
	if err != nil {
		t.Fatalf("phase A submit: %v", err)
	}
	for i, r := range resp.Results {
		if r.Status != service.StatusError || r.Code != service.ErrInternal || !r.Retryable {
			t.Fatalf("phase A net-%d: %+v, want retryable internal error", i, r)
		}
	}
	if got := reg.Counter("svc/panics_recovered").Value(); got != nNets {
		t.Fatalf("phase A: %d panics recovered, want %d", got, nNets)
	}

	// Phase B: workers are slow and the cache both misses on read and
	// drops every write. The retrying client still drives all 16 to OK.
	if err := inj.Configure("svc/worker:latency:1:20ms;svc/cache/get:error:1;svc/cache/put:error:1"); err != nil {
		t.Fatal(err)
	}
	resp, err = c.Run(ctx, batch)
	if err != nil {
		t.Fatalf("phase B run: %v", err)
	}
	for i, r := range resp.Results {
		if r.Status != service.StatusOK || r.Cached {
			t.Fatalf("phase B net-%d: %+v, want fresh OK", i, r)
		}
	}
	if got := reg.Counter("svc/cache_inserts").Value(); got != 0 {
		t.Fatalf("phase B: %d cache inserts despite put faults", got)
	}

	// Phase C: faults cleared — the daemon heals with no restart. A
	// fresh run computes and caches; a repeat is served from cache.
	if err := inj.Configure(""); err != nil {
		t.Fatal(err)
	}
	resp, err = c.Run(ctx, batch)
	if err != nil {
		t.Fatalf("phase C run: %v", err)
	}
	for i, r := range resp.Results {
		if r.Status != service.StatusOK {
			t.Fatalf("phase C net-%d: %+v", i, r)
		}
	}
	resp, err = c.Submit(ctx, batch)
	if err != nil {
		t.Fatalf("phase C repeat: %v", err)
	}
	for i, r := range resp.Results {
		if !r.Cached {
			t.Fatalf("phase C net-%d not served from cache after healing", i)
		}
	}

	// Phase D: deadline-pressed optimization. With the whole deadline
	// reserved as headroom, msri jobs degrade on arrival — flagged, never
	// silently truncated, and within ε·PruneCalls of the exact optimum.
	msri := &service.Request{Version: service.SchemaVersion}
	for i := 0; i < 4; i++ {
		msri.Jobs = append(msri.Jobs, service.Job{ID: fmt.Sprintf("opt-%d", i), Mode: "msri", Net: nets[i]})
	}
	resp, err = c.Run(ctx, msri)
	if err != nil {
		t.Fatalf("phase D run: %v", err)
	}
	for i, r := range resp.Results {
		if r.Status != service.StatusOK {
			t.Fatalf("phase D opt-%d: %+v", i, r)
		}
		if !r.Degraded || r.DegradedReason == "" {
			t.Fatalf("phase D opt-%d not flagged degraded: %+v", i, r)
		}
		if r.Opt == nil || len(r.Opt.Suite) == 0 || r.Opt.CoarseEps <= 0 {
			t.Fatalf("phase D opt-%d truncated degraded result: %+v", i, r.Opt)
		}
		tr, tech, err := netio.Decode(nets[i])
		if err != nil {
			t.Fatal(err)
		}
		out, err := core.Optimize(tr.RootAt(tr.Terminals()[0]), tech, core.Options{Repeaters: true})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := out.Suite.MinARD()
		if err != nil {
			t.Fatal(err)
		}
		bound := exact.ARD + r.Opt.CoarseEps*float64(r.Opt.Stats.PruneCalls) + 1e-9
		if r.Opt.Chosen.ARD > bound || r.Opt.Chosen.ARD < exact.ARD-1e-9 {
			t.Fatalf("phase D opt-%d: degraded ARD %.9g outside [%.9g, %.9g]",
				i, r.Opt.Chosen.ARD, exact.ARD, bound)
		}
	}
	if got := reg.Counter("svc/jobs_degraded").Value(); got < 4 {
		t.Fatalf("svc/jobs_degraded = %d, want ≥ 4", got)
	}

	// Across every phase, no valid net ever produced a server error.
	if counter.n != 0 {
		t.Fatalf("%d 5xx responses for valid nets", counter.n)
	}

	// Phase E: graceful drain, then no goroutine leaks.
	httpc.CloseIdleConnections()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after drain", before, runtime.NumGoroutine())
}
