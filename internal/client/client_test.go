package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"msrnet/internal/service"
)

// script serves a fixed sequence of canned responses, then keeps
// repeating the last one.
type script struct {
	mu    sync.Mutex
	steps []func(w http.ResponseWriter, r *http.Request)
	calls int
	// bodies records each decoded request for assertions.
	bodies []service.Request
}

func (s *script) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	var req service.Request
	json.NewDecoder(r.Body).Decode(&req)
	s.bodies = append(s.bodies, req)
	i := s.calls
	s.calls++
	if i >= len(s.steps) {
		i = len(s.steps) - 1
	}
	step := s.steps[i]
	s.mu.Unlock()
	step(w, r)
}

func (s *script) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func errStep(status int, code string, hdr map[string]string) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		for k, v := range hdr {
			w.Header().Set(k, v)
		}
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(service.ErrorBody{Version: service.SchemaVersion, Code: code, Error: code})
	}
}

func okStep(results ...service.Result) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.Response{Version: service.SchemaVersion, Results: results})
	}
}

func fastOpts(seed int64) Options {
	return Options{BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Seed: seed}
}

func req(ids ...string) *service.Request {
	r := &service.Request{Version: service.SchemaVersion}
	for _, id := range ids {
		r.Jobs = append(r.Jobs, service.Job{ID: id, Mode: "ard"})
	}
	return r
}

// TestSubmitRetries429And5xx: the canonical recovery sequence — 429
// with Retry-After, then a 503, then success.
func TestSubmitRetries429And5xx(t *testing.T) {
	s := &script{steps: []func(http.ResponseWriter, *http.Request){
		errStep(http.StatusTooManyRequests, service.ErrQueueFull, map[string]string{"Retry-After": "0"}),
		errStep(http.StatusServiceUnavailable, service.ErrInternal, nil),
		okStep(service.Result{ID: "a", Status: service.StatusOK}),
	}}
	srv := httptest.NewServer(s)
	defer srv.Close()

	c := New(srv.URL, fastOpts(1))
	resp, err := c.Submit(context.Background(), req("a"))
	if err != nil {
		t.Fatal(err)
	}
	if s.count() != 3 {
		t.Fatalf("server saw %d calls, want 3", s.count())
	}
	if len(resp.Results) != 1 || resp.Results[0].Status != service.StatusOK {
		t.Fatalf("bad response: %+v", resp)
	}
}

// TestSubmitDoesNotRetry4xx: a 400 is deterministic — exactly one call.
func TestSubmitDoesNotRetry4xx(t *testing.T) {
	s := &script{steps: []func(http.ResponseWriter, *http.Request){
		errStep(http.StatusBadRequest, service.ErrBadRequest, nil),
	}}
	srv := httptest.NewServer(s)
	defer srv.Close()

	c := New(srv.URL, fastOpts(1))
	_, err := c.Submit(context.Background(), req("a"))
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if ae.Body.Code != service.ErrBadRequest {
		t.Fatalf("body code = %q", ae.Body.Code)
	}
	if s.count() != 1 {
		t.Fatalf("server saw %d calls, want 1", s.count())
	}
}

// TestSubmitGivesUp: persistent 5xx exhausts MaxAttempts.
func TestSubmitGivesUp(t *testing.T) {
	s := &script{steps: []func(http.ResponseWriter, *http.Request){
		errStep(http.StatusInternalServerError, service.ErrInternal, nil),
	}}
	srv := httptest.NewServer(s)
	defer srv.Close()

	opt := fastOpts(1)
	opt.MaxAttempts = 3
	c := New(srv.URL, opt)
	_, err := c.Submit(context.Background(), req("a"))
	if err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want wrapped APIError 500", err)
	}
	if s.count() != 3 {
		t.Fatalf("server saw %d calls, want 3", s.count())
	}
}

// TestRunResubmitsRetryableJobs: a batch where one job fails with a
// retryable code is healed by resubmitting just that job.
func TestRunResubmitsRetryableJobs(t *testing.T) {
	s := &script{steps: []func(http.ResponseWriter, *http.Request){
		okStep(
			service.Result{ID: "a", Status: service.StatusOK},
			service.Result{ID: "b", Status: service.StatusError, Code: service.ErrShedLoad, Retryable: true},
			service.Result{ID: "c", Status: service.StatusError, Code: service.ErrBadRequest},
		),
		okStep(service.Result{ID: "b", Status: service.StatusOK}),
	}}
	srv := httptest.NewServer(s)
	defer srv.Close()

	c := New(srv.URL, fastOpts(1))
	resp, err := c.Run(context.Background(), req("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if s.count() != 2 {
		t.Fatalf("server saw %d calls, want 2", s.count())
	}
	// Only the retryable job went back.
	if got := s.bodies[1].Jobs; len(got) != 1 || got[0].ID != "b" {
		t.Fatalf("retry round resubmitted %+v", got)
	}
	// Merged in order: a ok, b healed, c still the deterministic failure.
	want := []struct {
		id, status string
	}{{"a", service.StatusOK}, {"b", service.StatusOK}, {"c", service.StatusError}}
	for i, w := range want {
		if resp.Results[i].ID != w.id || resp.Results[i].Status != w.status {
			t.Fatalf("result %d = %+v, want %s/%s", i, resp.Results[i], w.id, w.status)
		}
	}
}

// TestRunStopsAfterJobRounds: a job that keeps failing retryably is
// surfaced after the configured rounds, not retried forever.
func TestRunStopsAfterJobRounds(t *testing.T) {
	s := &script{steps: []func(http.ResponseWriter, *http.Request){
		okStep(service.Result{ID: "a", Status: service.StatusError, Code: service.ErrInternal, Retryable: true}),
	}}
	srv := httptest.NewServer(s)
	defer srv.Close()

	opt := fastOpts(1)
	opt.JobRounds = 2
	c := New(srv.URL, opt)
	resp, err := c.Run(context.Background(), req("a"))
	if err != nil {
		t.Fatal(err)
	}
	if s.count() != 3 { // initial + 2 rounds
		t.Fatalf("server saw %d calls, want 3", s.count())
	}
	if resp.Results[0].Status != service.StatusError || !resp.Results[0].Retryable {
		t.Fatalf("final result %+v", resp.Results[0])
	}
}

// TestSubmitHonorsContext: cancellation interrupts the backoff sleep.
func TestSubmitHonorsContext(t *testing.T) {
	s := &script{steps: []func(http.ResponseWriter, *http.Request){
		errStep(http.StatusServiceUnavailable, service.ErrInternal, nil),
	}}
	srv := httptest.NewServer(s)
	defer srv.Close()

	opt := fastOpts(1)
	opt.BaseBackoff = 10 * time.Second
	opt.MaxBackoff = 10 * time.Second
	c := New(srv.URL, opt)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Submit(ctx, req("a"))
	if err == nil {
		t.Fatal("want error")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
}
