package client

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"msrnet/internal/cluster"
	"msrnet/internal/netio"
	"msrnet/internal/obs"
	"msrnet/internal/service"
)

// This file exercises the cluster-aware client against a real fleet:
// daemons on real listeners, gossip over the HTTP transport, discovery
// from a single seed, content-hash routing straight to each job's home
// peer, and failover when a member dies mid-run.

// fleetMember is one live msrnetd: its advertised base URL doubles as
// its cluster identity.
type fleetMember struct {
	base string
	node *cluster.Node
	srv  *service.HTTPServer
}

// startHTTPFleet binds n listeners first (identity must exist before
// the daemon), then builds fully-seeded nodes and serves each daemon.
// Gossip rounds are driven manually by the caller.
func startHTTPFleet(t *testing.T, n int) []*fleetMember {
	t.Helper()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	lns := make([]net.Listener, n)
	bases := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		bases[i] = "http://" + ln.Addr().String()
	}

	members := make([]*fleetMember, n)
	for i := range members {
		var seeds []cluster.Peer
		for j, b := range bases {
			if j != i {
				seeds = append(seeds, cluster.Peer{ID: cluster.ID(b), Addr: b})
			}
		}
		node := cluster.NewNode(cluster.Config{
			Self:      cluster.Peer{ID: cluster.ID(bases[i]), Addr: bases[i]},
			Seeds:     seeds,
			Params:    cluster.Params{ViewSize: 8, Fanout: 2, SuspectAfter: 2, StaleTicks: 4},
			Transport: &cluster.HTTPTransport{},
			Seed:      int64(i + 1),
			Epoch:     int64(i+1) * 1000,
			Reg:       obs.New(),
			Logger:    quiet,
		})
		d := service.New(service.Config{Workers: 2, QueueDepth: 8, CacheSize: 64,
			Reg: obs.New(), Cluster: node, Logger: quiet})
		srv := service.ServeListener(lns[i], d, quiet)
		m := &fleetMember{base: bases[i], node: node, srv: srv}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			m.srv.Shutdown(ctx) // double shutdowns after a test kill are fine
		})
		members[i] = m
	}

	// Converge over real HTTP: every member must see all n peers.
	for round := 0; round < 20; round++ {
		full := true
		for _, m := range members {
			m.node.Tick()
			if len(m.node.Members()) != n {
				full = false
			}
		}
		if full && round > 0 {
			return members
		}
	}
	t.Fatal("HTTP fleet did not converge")
	return nil
}

// TestClusterClientRoutesAndFailsOver: the fleet acceptance path from
// the client side. Discovery from one seed finds every member; every
// job lands directly on its ring owner (proved by the owner itself
// answering, and by the whole batch hitting caches on resubmission);
// killing a member mid-session costs failover latency, not answers.
func TestClusterClientRoutesAndFailsOver(t *testing.T) {
	members := startHTTPFleet(t, 3)
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	c := NewCluster([]string{members[0].base}, Options{
		Seed: 1, MaxAttempts: 2, BaseBackoff: time.Millisecond, Logger: quiet})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Discover(ctx); err != nil {
		t.Fatal(err)
	}
	if got := c.Members(); len(got) != 3 {
		t.Fatalf("discovered %d members, want 3: %v", len(got), got)
	}

	// The client must route by the same ring the daemons shard by.
	ids := make([]cluster.ID, 0, 3)
	for _, m := range members {
		ids = append(ids, cluster.ID(m.base))
	}
	ring := cluster.NewRing(ids, members[0].node.Vnodes())

	req := &service.Request{Version: service.SchemaVersion, Explain: true}
	for seed := int64(41); seed <= 45; seed++ {
		req.Jobs = append(req.Jobs, service.Job{Mode: "both", Net: chaosNet(t, seed, 8)})
	}
	resp, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if r.Status != service.StatusOK {
			t.Fatalf("job %d failed: %s: %s", i, r.Code, r.Error)
		}
		key, herr := netio.ContentHash(req.Jobs[i].Net)
		if herr != nil {
			t.Fatal(herr)
		}
		owner, _ := ring.Owner(key)
		if r.Explain == nil || r.Explain.ServedBy != string(owner) {
			t.Fatalf("job %d should be answered by its home peer %q, got %+v", i, owner, r.Explain)
		}
	}

	// Resubmission: every job goes straight back to its home peer, whose
	// local cache holds the answer — the single-hop property end to end.
	resp, err = c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if r.Status != service.StatusOK || !r.Cached {
			t.Fatalf("job %d on resubmission: status=%q cached=%v, want a cache hit", i, r.Status, r.Cached)
		}
	}

	// Kill the owner of job 0 and resubmit the whole batch: its group
	// fails over to a surviving member; nothing errors.
	key0, err := netio.ContentHash(req.Jobs[0].Net)
	if err != nil {
		t.Fatal(err)
	}
	owner0, _ := ring.Owner(key0)
	var dead *fleetMember
	for _, m := range members {
		if m.base == string(owner0) {
			dead = m
		}
	}
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := dead.srv.Shutdown(sctx); err != nil {
		t.Fatalf("killing peer: %v", err)
	}
	resp, err = c.Run(ctx, req)
	if err != nil {
		t.Fatalf("batch after peer death: %v", err)
	}
	for i, r := range resp.Results {
		if r.Status != service.StatusOK {
			t.Fatalf("job %d after peer death: %s: %s", i, r.Code, r.Error)
		}
		if r.Explain != nil && r.Explain.ServedBy == string(owner0) {
			t.Fatalf("job %d claims the dead peer answered it", i)
		}
	}
}

// TestDrainingDaemonSends503WithRetryAfter: a draining peer
// (mid rolling-restart) must tell clients when to come back — the
// Retry-After hint the client's backoff honors on 503, not just 429.
func TestDrainingDaemonSends503WithRetryAfter(t *testing.T) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	d := service.New(service.Config{Workers: 1, Reg: obs.New(), Logger: quiet})
	srv, err := service.Serve("127.0.0.1:0", d, quiet)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	srv.StartDrain()

	body, err := json.Marshal(&service.Request{Version: service.SchemaVersion,
		Jobs: []service.Job{{Mode: "ard", Net: chaosNet(t, 51, 6)}}})
	if err != nil {
		t.Fatal(err)
	}
	hresp, err := http.Post("http://"+srv.Addr().String()+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	io.Copy(io.Discard, hresp.Body)
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining daemon answered %d, want 503", hresp.StatusCode)
	}
	if ra := hresp.Header.Get("Retry-After"); parseRetryAfter(ra) <= 0 {
		t.Fatalf("503 carried Retry-After %q, want a positive hint", ra)
	}
}

// TestParseRetryAfterForms covers both RFC 9110 encodings and the
// degenerate values proxies produce.
func TestParseRetryAfterForms(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"garbage", 0},
		{time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat), 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// A future HTTP-date maps to roughly the remaining interval.
	future := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(future); got <= 25*time.Second || got > 31*time.Second {
		t.Errorf("parseRetryAfter(future date) = %v, want ~30s", got)
	}
}
