package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"

	"msrnet/internal/cluster"
	"msrnet/internal/netio"
	"msrnet/internal/service"
)

// ClusterClient talks to a msrnetd fleet. It discovers the membership
// from any seed peer (GET /cluster/members), builds the same
// consistent-hash ring the daemons route by, and sends every job
// straight to its home peer — so shard-cache hits need zero forwarding
// hops. A dead peer is routed around: its jobs fail over to the ring
// successors and the membership is re-discovered. Safe for concurrent
// use.
type ClusterClient struct {
	seeds []string
	opt   Options
	httpc *http.Client
	log   *slog.Logger

	mu      sync.Mutex
	ring    *cluster.Ring
	addrs   map[cluster.ID]string
	order   []cluster.ID // members sorted by ID, for deterministic fallback order
	clients map[string]*Client
}

// NewCluster builds a fleet client from one or more seed base URLs
// (any live member will do — discovery learns the rest). Options tune
// the per-peer retry discipline, exactly as for New.
func NewCluster(seeds []string, opt Options) *ClusterClient {
	httpc := opt.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	log := opt.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	c := &ClusterClient{
		opt:     opt,
		httpc:   httpc,
		log:     log,
		addrs:   map[cluster.ID]string{},
		clients: map[string]*Client{},
	}
	for _, s := range seeds {
		if s = strings.TrimRight(strings.TrimSpace(s), "/"); s != "" {
			c.seeds = append(c.seeds, s)
		}
	}
	return c
}

// Discover refreshes the membership from the first seed (then first
// known member) that answers, and rebuilds the routing ring with the
// fleet's own virtual-node count — the client and every daemon must
// derive identical rings or routing loses its single-hop property.
func (c *ClusterClient) Discover(ctx context.Context) error {
	var last error
	for _, addr := range c.candidatesForDiscovery() {
		state, err := c.fetchMembers(ctx, addr)
		if err != nil {
			last = err
			continue
		}
		c.adopt(state)
		return nil
	}
	if last == nil {
		last = fmt.Errorf("client: no seed peers configured")
	}
	return fmt.Errorf("client: cluster discovery failed: %w", last)
}

// candidatesForDiscovery lists addresses to try: configured seeds
// first, then previously discovered members not already listed.
func (c *ClusterClient) candidatesForDiscovery() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.seeds...)
	seen := map[string]bool{}
	for _, s := range out {
		seen[s] = true
	}
	for _, id := range c.order {
		if a := c.addrs[id]; a != "" && !seen[a] {
			out = append(out, a)
			seen[a] = true
		}
	}
	return out
}

func (c *ClusterClient) fetchMembers(ctx context.Context, addr string) (*cluster.StateBody, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/cluster/members", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		// A clusterless msrnetd has no /cluster/members route. Degrade to
		// a one-member "fleet" of this seed, so msrnetctl works the same
		// against a single daemon as against a gossiping fleet.
		return &cluster.StateBody{Schema: cluster.Schema, Vnodes: 1,
			Members: []cluster.Info{{Peer: cluster.Peer{ID: cluster.ID(addr), Addr: addr}, Ready: true}},
		}, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/cluster/members: HTTP %d", addr, resp.StatusCode)
	}
	var state cluster.StateBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&state); err != nil {
		return nil, fmt.Errorf("%s/cluster/members: decode: %w", addr, err)
	}
	if state.Schema != cluster.Schema {
		return nil, fmt.Errorf("%s/cluster/members: schema %q, want %q", addr, state.Schema, cluster.Schema)
	}
	if len(state.Members) == 0 {
		return nil, fmt.Errorf("%s/cluster/members: empty membership", addr)
	}
	return &state, nil
}

func (c *ClusterClient) adopt(state *cluster.StateBody) {
	ids := make([]cluster.ID, 0, len(state.Members))
	addrs := make(map[cluster.ID]string, len(state.Members))
	for _, m := range state.Members {
		ids = append(ids, m.ID)
		addrs[m.ID] = strings.TrimRight(m.Addr, "/")
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	c.mu.Lock()
	c.ring = cluster.NewRing(ids, state.Vnodes)
	c.addrs = addrs
	c.order = ids
	c.mu.Unlock()
	c.log.Debug("cluster membership adopted", "members", len(ids), "vnodes", state.Vnodes)
}

// Members returns the discovered peer base URLs, sorted by cluster ID.
func (c *ClusterClient) Members() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.addrs[id])
	}
	return out
}

// client returns (building once) the single-daemon client for addr.
func (c *ClusterClient) client(addr string) *Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl, ok := c.clients[addr]; ok {
		return cl
	}
	cl := New(addr, c.opt)
	c.clients[addr] = cl
	return cl
}

// group is the slice of one batch routed to one home peer.
type group struct {
	owner cluster.ID
	idx   []int
}

// Run routes req's jobs to their home peers by the canonical content
// hash of each net — the same ring position the daemons shard their
// caches by — runs each per-peer sub-batch with the full single-daemon
// retry discipline, and merges the results back into request order. A
// peer that fails its sub-batch (even after retries) triggers failover:
// the membership is re-discovered and the sub-batch replays on the next
// live candidate, so one dead daemon costs latency, not answers.
func (c *ClusterClient) Run(ctx context.Context, req *service.Request) (*service.Response, error) {
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if c.needDiscovery() {
		if err := c.Discover(ctx); err != nil {
			return nil, err
		}
	}
	groups := c.route(req)
	results := make([]service.Result, len(req.Jobs))
	for _, g := range groups {
		sub := &service.Request{Version: req.Version, Jobs: make([]service.Job, len(g.idx)),
			Explain: req.Explain, Profile: req.Profile}
		for k, i := range g.idx {
			sub.Jobs[k] = req.Jobs[i]
			if sub.Jobs[k].ID == "" {
				// Pin the batch-index label so a sub-batch result carries
				// the name the caller used.
				sub.Jobs[k].ID = fmt.Sprintf("#%d", i)
			}
		}
		resp, err := c.runGroup(ctx, g, sub)
		if err != nil {
			return nil, err
		}
		for k, i := range g.idx {
			results[i] = resp.Results[k]
		}
	}
	return &service.Response{Version: service.SchemaVersion, Results: results}, nil
}

func (c *ClusterClient) needDiscovery() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring == nil || len(c.order) == 0
}

// route partitions the batch by home peer. Jobs whose net cannot be
// hashed (the daemon will reject them with a structured 400) ride with
// the first group so the error surfaces in-band.
func (c *ClusterClient) route(req *service.Request) []group {
	c.mu.Lock()
	ring := c.ring
	c.mu.Unlock()
	byOwner := map[cluster.ID]*group{}
	var order []cluster.ID
	for i := range req.Jobs {
		owner := cluster.ID("")
		if key, err := netio.ContentHash(req.Jobs[i].Net); err == nil {
			if id, ok := ring.Owner(key); ok {
				owner = id
			}
		}
		g, ok := byOwner[owner]
		if !ok {
			g = &group{owner: owner}
			byOwner[owner] = g
			order = append(order, owner)
		}
		g.idx = append(g.idx, i)
	}
	out := make([]group, 0, len(order))
	for _, id := range order {
		out = append(out, *byOwner[id])
	}
	return out
}

// failoverRounds bounds how many times one sub-batch may replay across
// candidates (re-discovering between rounds) before Run gives up.
const failoverRounds = 2

// runGroup tries the group's home peer, then — on failure — the ring
// successors and every other live member, re-discovering the membership
// between rounds so a dead peer drops out of the candidate list.
func (c *ClusterClient) runGroup(ctx context.Context, g group, sub *service.Request) (*service.Response, error) {
	var last error
	for round := 0; round <= failoverRounds; round++ {
		if round > 0 {
			if err := c.Discover(ctx); err != nil {
				last = err
				break
			}
		}
		for _, addr := range c.candidatesFor(g.owner) {
			resp, err := c.client(addr).Run(ctx, sub)
			if err == nil {
				if len(resp.Results) != len(sub.Jobs) {
					return nil, fmt.Errorf("client: peer %s returned %d results for %d jobs",
						addr, len(resp.Results), len(sub.Jobs))
				}
				return resp, nil
			}
			last = err
			if ctx.Err() != nil {
				return nil, fmt.Errorf("client: %w (last error: %v)", ctx.Err(), last)
			}
			if ae, ok := err.(*APIError); ok && !ae.Temporary() {
				// Deterministic rejection (bad request): no peer will
				// answer differently.
				return nil, err
			}
			c.log.WarnContext(ctx, "peer failed; failing over", "peer", addr, "err", err)
		}
	}
	return nil, fmt.Errorf("client: all fleet peers failed for sub-batch: %w", last)
}

// candidatesFor orders the peers to try for a group: the home peer
// first (that is where the shard cache hits), then every other member
// in ID order — deterministic, so retries and tests are reproducible.
func (c *ClusterClient) candidatesFor(owner cluster.ID) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	seen := map[string]bool{}
	add := func(id cluster.ID) {
		if a := c.addrs[id]; a != "" && !seen[a] {
			out = append(out, a)
			seen[a] = true
		}
	}
	add(owner)
	for _, id := range c.order {
		add(id)
	}
	return out
}
