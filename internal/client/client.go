// Package client is the Go client for msrnetd's msrnet-job/v1 surface,
// with the retry discipline the daemon's failure taxonomy is designed
// for. Submit retries whole HTTP submissions on transport errors, 429
// (honoring Retry-After) and 5xx with capped exponential backoff and
// seeded jitter; Run additionally resubmits individual jobs whose
// results came back failed-but-Retryable (deadline_exceeded, shed_load,
// internal, …) — safe because jobs are idempotent, keyed by the
// content hash of the net. Deterministic client-caused failures
// (bad_request, spec_unmet) are never retried.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"msrnet/internal/service"
)

// Options tunes the client's retry discipline. The zero value is
// usable: sensible attempt counts and backoff bounds are applied.
type Options struct {
	// HTTPClient issues the requests; http.DefaultClient when nil.
	HTTPClient *http.Client
	// MaxAttempts bounds HTTP submissions per Submit call (first try
	// included). Defaults to 4.
	MaxAttempts int
	// JobRounds bounds how many extra rounds Run spends resubmitting
	// retryable failed jobs after the initial submission. Defaults to 2.
	JobRounds int
	// BaseBackoff is the first retry delay; doubled per attempt up to
	// MaxBackoff, then jittered to [½d, d). Defaults 100ms / 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed determines the jitter sequence; 0 seeds from the clock.
	Seed int64
	// Logger receives one line per retry; silent when nil.
	Logger *slog.Logger
}

// Client talks to one msrnetd. Safe for concurrent use.
type Client struct {
	base string
	http *http.Client
	opt  Options
	log  *slog.Logger

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8383").
func New(baseURL string, opt Options) *Client {
	if opt.HTTPClient == nil {
		opt.HTTPClient = http.DefaultClient
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 4
	}
	if opt.JobRounds < 0 {
		opt.JobRounds = 0
	} else if opt.JobRounds == 0 {
		opt.JobRounds = 2
	}
	if opt.BaseBackoff <= 0 {
		opt.BaseBackoff = 100 * time.Millisecond
	}
	if opt.MaxBackoff <= 0 {
		opt.MaxBackoff = 5 * time.Second
	}
	seed := opt.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	log := opt.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: opt.HTTPClient,
		opt:  opt,
		log:  log,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// APIError is a non-200 response from the daemon, carrying its
// structured body when one decoded.
type APIError struct {
	Status int
	Body   service.ErrorBody

	// retryAfter is the server's Retry-After hint, when present.
	retryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Body.Code != "" {
		return fmt.Sprintf("msrnetd: HTTP %d %s: %s", e.Status, e.Body.Code, e.Body.Error)
	}
	return fmt.Sprintf("msrnetd: HTTP %d", e.Status)
}

// Temporary reports whether the failure is worth retrying: 429
// (backpressure) and 5xx (server-side faults). 4xx other than 429 are
// the client's fault and deterministic.
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// Submit posts req, retrying transport errors, 429 and 5xx with capped
// exponential backoff and jitter (honoring Retry-After on 429) up to
// MaxAttempts. A 200 may still carry per-job failures — see Run for
// job-level retries.
func (c *Client) Submit(ctx context.Context, req *service.Request) (*service.Response, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encode request: %w", err)
	}
	var last error
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoff(attempt, last)); err != nil {
				return nil, err
			}
		}
		resp, err := c.post(ctx, payload)
		if err == nil {
			return resp, nil
		}
		last = err
		if ae, ok := err.(*APIError); ok && !ae.Temporary() {
			return nil, err // deterministic: retrying cannot help
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("client: %w (last error: %v)", ctx.Err(), err)
		}
		c.log.Info("submit retry", "attempt", attempt+1, "err", err)
	}
	return nil, fmt.Errorf("client: giving up after %d attempts: %w", c.opt.MaxAttempts, last)
}

// Run submits req and then, for up to JobRounds extra rounds,
// resubmits the jobs whose results failed with Retryable codes,
// merging the fresh outcomes into the original result order. Jobs are
// idempotent by content hash, so a resubmission either hits the cache
// or recomputes the identical answer.
func (c *Client) Run(ctx context.Context, req *service.Request) (*service.Response, error) {
	resp, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	for round := 0; round < c.opt.JobRounds; round++ {
		var idx []int
		for i, r := range resp.Results {
			if r.Status == service.StatusError && r.Retryable {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			break
		}
		c.log.Info("retrying failed jobs", "round", round+1, "jobs", len(idx))
		sub := &service.Request{Version: req.Version, Jobs: make([]service.Job, len(idx))}
		for k, i := range idx {
			sub.Jobs[k] = req.Jobs[i]
		}
		again, err := c.Submit(ctx, sub)
		if err != nil {
			return resp, fmt.Errorf("client: job retry round %d: %w", round+1, err)
		}
		if len(again.Results) != len(idx) {
			return resp, fmt.Errorf("client: job retry returned %d results for %d jobs", len(again.Results), len(idx))
		}
		for k, i := range idx {
			r := again.Results[k]
			r.ID = resp.Results[i].ID // keep the original label on index-labeled jobs
			resp.Results[i] = r
		}
	}
	return resp, nil
}

// post issues one HTTP submission. Non-200 statuses come back as
// *APIError.
func (c *Client) post(ctx context.Context, payload []byte) (*service.Response, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	hresp, err := c.http.Do(hr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		ae := &APIError{Status: hresp.StatusCode}
		body, _ := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
		json.Unmarshal(body, &ae.Body)
		ae.retryAfter = parseRetryAfter(hresp.Header.Get("Retry-After"))
		return nil, ae
	}
	var resp service.Response
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("client: decode response: %w", err)
	}
	return &resp, nil
}

// backoff computes the delay before the attempt-th retry: the server's
// Retry-After when the last failure carried one, else capped
// exponential with jitter in [½d, d).
func (c *Client) backoff(attempt int, last error) time.Duration {
	if ae, ok := last.(*APIError); ok && ae.retryAfter > 0 {
		return ae.retryAfter
	}
	d := c.opt.BaseBackoff << (attempt - 1)
	if d > c.opt.MaxBackoff || d <= 0 {
		d = c.opt.MaxBackoff
	}
	c.mu.Lock()
	f := 0.5 + 0.5*c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("client: %w", ctx.Err())
	}
}

// parseRetryAfter handles the delta-seconds form; the HTTP-date form
// is not worth supporting for a same-module daemon that only sends
// integers.
func parseRetryAfter(s string) time.Duration {
	if s == "" {
		return 0
	}
	secs, err := strconv.Atoi(s)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
