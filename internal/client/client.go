// Package client is the Go client for msrnetd's msrnet-job/v1 surface,
// with the retry discipline the daemon's failure taxonomy is designed
// for. Submit retries whole HTTP submissions on transport errors, 429
// and 5xx — honoring the server's Retry-After hint on both 429 (queue
// full) and 503 (a draining peer mid rolling-restart sends one) — with
// capped exponential backoff and seeded jitter between the rest; Run
// additionally resubmits individual jobs whose
// results came back failed-but-Retryable (deadline_exceeded, shed_load,
// internal, …) — safe because jobs are idempotent, keyed by the
// content hash of the net. Deterministic client-caused failures
// (bad_request, spec_unmet) are never retried.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"msrnet/internal/obs/reqctx"
	"msrnet/internal/service"
)

// Options tunes the client's retry discipline. The zero value is
// usable: sensible attempt counts and backoff bounds are applied.
type Options struct {
	// HTTPClient issues the requests; http.DefaultClient when nil.
	HTTPClient *http.Client
	// MaxAttempts bounds HTTP submissions per Submit call (first try
	// included). Defaults to 4.
	MaxAttempts int
	// JobRounds bounds how many extra rounds Run spends resubmitting
	// retryable failed jobs after the initial submission. Defaults to 2.
	JobRounds int
	// BaseBackoff is the first retry delay; doubled per attempt up to
	// MaxBackoff, then jittered to [½d, d). Defaults 100ms / 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed determines the jitter sequence; 0 seeds from the clock.
	Seed int64
	// Logger receives one line per retry; silent when nil.
	Logger *slog.Logger
	// APIKey authenticates against a multi-tenant daemon: it travels as
	// the X-Msrnet-Api-Key header on every submission. Empty is fine
	// against a daemon with tenancy disabled; against one with -tenants
	// set, requests without a key come back 401 (never retried — a bad
	// credential is deterministic).
	APIKey string
}

// Client talks to one msrnetd. Safe for concurrent use.
type Client struct {
	base string
	http *http.Client
	opt  Options
	log  *slog.Logger

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8383").
func New(baseURL string, opt Options) *Client {
	if opt.HTTPClient == nil {
		opt.HTTPClient = http.DefaultClient
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 4
	}
	if opt.JobRounds < 0 {
		opt.JobRounds = 0
	} else if opt.JobRounds == 0 {
		opt.JobRounds = 2
	}
	if opt.BaseBackoff <= 0 {
		opt.BaseBackoff = 100 * time.Millisecond
	}
	if opt.MaxBackoff <= 0 {
		opt.MaxBackoff = 5 * time.Second
	}
	seed := opt.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	log := opt.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: opt.HTTPClient,
		opt:  opt,
		log:  log,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// APIError is a non-200 response from the daemon, carrying its
// structured body when one decoded.
type APIError struct {
	Status int
	Body   service.ErrorBody

	// retryAfter is the server's Retry-After hint, when present.
	retryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Body.Code != "" {
		return fmt.Sprintf("msrnetd: HTTP %d %s: %s", e.Status, e.Body.Code, e.Body.Error)
	}
	return fmt.Sprintf("msrnetd: HTTP %d", e.Status)
}

// Temporary reports whether the failure is worth retrying: 429
// (backpressure) and 5xx (server-side faults). 4xx other than 429 are
// the client's fault and deterministic.
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// submitStats is the delivery cost of one Submit call: HTTP attempts
// made and total backoff slept before them.
type submitStats struct {
	attempts int
	backoff  time.Duration
}

// Submit posts req, retrying transport errors, 429 and 5xx with capped
// exponential backoff and jitter (honoring Retry-After on 429 and 503)
// up to MaxAttempts. The submission carries an X-Msrnet-Trace-Id header —
// the context's trace ID when present (reqctx.WithTraceID), freshly
// generated otherwise — and every retry decision is logged with it. A
// 200 may still carry per-job failures — see Run for job-level retries.
func (c *Client) Submit(ctx context.Context, req *service.Request) (*service.Response, error) {
	resp, _, err := c.submit(ctx, req, 0)
	return resp, err
}

func (c *Client) submit(ctx context.Context, req *service.Request, round int) (*service.Response, submitStats, error) {
	ctx, traceID := reqctx.EnsureTraceID(ctx)
	var st submitStats
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, st, fmt.Errorf("client: encode request: %w", err)
	}
	var last error
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		if attempt > 0 {
			d := c.backoff(attempt, last)
			c.log.InfoContext(ctx, "submit retry",
				"trace_id", traceID, "attempt", attempt+1, "max_attempts", c.opt.MaxAttempts,
				"backoff", d, "round", round, "err", last)
			if err := c.sleep(ctx, d); err != nil {
				return nil, st, err
			}
			st.backoff += d
		}
		st.attempts++
		resp, err := c.post(ctx, payload, traceID, round)
		if err == nil {
			return resp, st, nil
		}
		last = err
		if ae, ok := err.(*APIError); ok && !ae.Temporary() {
			return nil, st, err // deterministic: retrying cannot help
		}
		if ctx.Err() != nil {
			return nil, st, fmt.Errorf("client: %w (last error: %v)", ctx.Err(), err)
		}
	}
	c.log.WarnContext(ctx, "submit giving up",
		"trace_id", traceID, "attempts", c.opt.MaxAttempts, "err", last)
	return nil, st, fmt.Errorf("client: giving up after %d attempts: %w", c.opt.MaxAttempts, last)
}

// Run submits req and then, for up to JobRounds extra rounds,
// resubmits the jobs whose results failed with Retryable codes,
// merging the fresh outcomes into the original result order. Jobs are
// idempotent by content hash, so a resubmission either hits the cache
// or recomputes the identical answer. Every result comes back stamped
// with a ClientInfo delivery report: the HTTP attempts, job-retry
// rounds and total backoff its delivery cost, plus the trace ID the
// submissions carried.
func (c *Client) Run(ctx context.Context, req *service.Request) (*service.Response, error) {
	ctx, traceID := reqctx.EnsureTraceID(ctx)
	resp, st, err := c.submit(ctx, req, 0)
	if err != nil {
		return nil, err
	}
	attempts := make([]int, len(resp.Results))
	rounds := make([]int, len(resp.Results))
	backoff := make([]time.Duration, len(resp.Results))
	for i := range resp.Results {
		attempts[i] = st.attempts
		backoff[i] = st.backoff
	}
	for round := 0; round < c.opt.JobRounds; round++ {
		var idx []int
		for i, r := range resp.Results {
			if r.Status == service.StatusError && r.Retryable {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			break
		}
		c.log.InfoContext(ctx, "retrying failed jobs",
			"trace_id", traceID, "round", round+1, "jobs", len(idx))
		sub := &service.Request{Version: req.Version, Jobs: make([]service.Job, len(idx)), Explain: req.Explain}
		for k, i := range idx {
			sub.Jobs[k] = req.Jobs[i]
		}
		again, rst, err := c.submit(ctx, sub, round+1)
		if err != nil {
			c.stampClient(resp, attempts, rounds, backoff, traceID)
			return resp, fmt.Errorf("client: job retry round %d: %w", round+1, err)
		}
		if len(again.Results) != len(idx) {
			c.stampClient(resp, attempts, rounds, backoff, traceID)
			return resp, fmt.Errorf("client: job retry returned %d results for %d jobs", len(again.Results), len(idx))
		}
		for k, i := range idx {
			r := again.Results[k]
			r.ID = resp.Results[i].ID // keep the original label on index-labeled jobs
			resp.Results[i] = r
			attempts[i] += rst.attempts
			backoff[i] += rst.backoff
			rounds[i]++
		}
	}
	c.stampClient(resp, attempts, rounds, backoff, traceID)
	return resp, nil
}

// stampClient attaches the per-job delivery report.
func (c *Client) stampClient(resp *service.Response, attempts, rounds []int, backoff []time.Duration, traceID string) {
	for i := range resp.Results {
		resp.Results[i].Client = &service.ClientInfo{
			Attempts:  attempts[i],
			Rounds:    rounds[i],
			BackoffMs: float64(backoff[i]) / float64(time.Millisecond),
			TraceID:   traceID,
		}
	}
}

// post issues one HTTP submission carrying the trace and retry-round
// headers. Non-200 statuses come back as *APIError.
func (c *Client) post(ctx context.Context, payload []byte, traceID string, round int) (*service.Response, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	if c.opt.APIKey != "" {
		hr.Header.Set(reqctx.HeaderAPIKey, c.opt.APIKey)
	}
	if traceID != "" {
		hr.Header.Set(reqctx.HeaderTraceID, traceID)
	}
	if round > 0 {
		hr.Header.Set(reqctx.HeaderRetryRound, strconv.Itoa(round))
	}
	hresp, err := c.http.Do(hr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		ae := &APIError{Status: hresp.StatusCode}
		body, _ := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
		json.Unmarshal(body, &ae.Body)
		ae.retryAfter = parseRetryAfter(hresp.Header.Get("Retry-After"))
		return nil, ae
	}
	var resp service.Response
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("client: decode response: %w", err)
	}
	return &resp, nil
}

// backoff computes the delay before the attempt-th retry: the server's
// Retry-After when the last failure carried one (msrnetd sends it on
// 429 queue-full and on 503 while draining), else capped exponential
// with jitter in [½d, d).
func (c *Client) backoff(attempt int, last error) time.Duration {
	if ae, ok := last.(*APIError); ok && ae.retryAfter > 0 {
		return ae.retryAfter
	}
	d := c.opt.BaseBackoff << (attempt - 1)
	if d > c.opt.MaxBackoff || d <= 0 {
		d = c.opt.MaxBackoff
	}
	c.mu.Lock()
	f := 0.5 + 0.5*c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("client: %w", ctx.Err())
	}
}

// parseRetryAfter handles both RFC 9110 forms: delta-seconds (what
// msrnetd itself sends) and HTTP-date (what a proxy or load balancer in
// front of a fleet may rewrite it to). A date in the past, like a
// negative delta, means "retry now" and maps to 0.
func parseRetryAfter(s string) time.Duration {
	if s == "" {
		return 0
	}
	if secs, err := strconv.Atoi(s); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(s); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}
