package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"msrnet/internal/obs"
	"msrnet/internal/obs/reqctx"
	"msrnet/internal/obs/trace"
	"msrnet/internal/service"
)

// safeBuffer is a bytes.Buffer usable as a slog sink from the daemon's
// concurrent workers.
type safeBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *safeBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestTracePropagationEndToEnd is the request-scoped observability
// acceptance test: one client-generated trace ID must be correlatable
// across every surface the daemon offers — the structured logs, the
// Chrome trace-event ring, the /debug/jobs explain report, and the
// per-outcome latency quantiles. Runs under -race in CI.
func TestTracePropagationEndToEnd(t *testing.T) {
	const traceID = "e2e-trace-0123abcd"

	logBuf := &safeBuffer{}
	logger := reqctx.Logger(slog.NewJSONHandler(logBuf, nil))
	reg := obs.New()
	tcr := trace.New(1 << 14)
	d := service.New(service.Config{
		Workers: 2,
		Reg:     reg,
		Logger:  logger,
		Tracer:  tcr,
	})
	srv, err := service.Serve("127.0.0.1:0", d, logger)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	base := "http://" + srv.Addr().String()

	c := New(base, Options{Logger: logger, Seed: 1})
	ctx := reqctx.WithTraceID(context.Background(), traceID)
	req := &service.Request{
		Version: service.SchemaVersion,
		Jobs:    []service.Job{{ID: "e2e", Mode: "both", Net: chaosNet(t, 11, 10)}},
		Explain: true,
	}
	resp, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	r := resp.Results[0]
	if r.Status != service.StatusOK {
		t.Fatalf("result: %+v", r)
	}

	// Surface 0: the result itself — explain report and client stamp
	// both carry the ID.
	if r.Explain == nil || r.Explain.TraceID != traceID {
		t.Fatalf("explain on result: %+v", r.Explain)
	}
	if r.Client == nil || r.Client.TraceID != traceID || r.Client.Attempts != 1 {
		t.Fatalf("client stamp: %+v", r.Client)
	}
	jobID := r.Explain.JobID

	// Surface 1: the daemon's slog output — the "job done" line (and the
	// access log) carry trace_id via the context-aware handler.
	logs := logBuf.String()
	if !strings.Contains(logs, fmt.Sprintf("%q:%q", "trace_id", traceID)) {
		t.Errorf("daemon logs never mention the trace id:\n%s", logs)
	}
	if !strings.Contains(logs, `"msg":"job done"`) {
		t.Errorf("no job-done line in logs")
	}

	// Surface 2: the Chrome trace ring — DP events are tagged with the
	// trace id and the job id.
	hr, _ := http.NewRequest(http.MethodGet, base+"/debug/trace", nil)
	hresp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Events []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	err = json.NewDecoder(hresp.Body).Decode(&doc)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	tagged := 0
	for _, ev := range doc.Events {
		if ev.Args["trace_id"] == traceID && ev.Args["job"] == jobID {
			tagged++
		}
	}
	if tagged == 0 {
		t.Errorf("no ring event tagged trace_id=%s job=%s (%d events total)", traceID, jobID, len(doc.Events))
	}

	// Surface 3: live job introspection — the report is retrievable by
	// job id AND by trace id.
	for _, id := range []string{jobID, traceID} {
		gresp, err := http.Get(base + "/debug/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var e service.Explain
		err = json.NewDecoder(gresp.Body).Decode(&e)
		gresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if e.JobID != jobID || e.TraceID != traceID || e.State != service.JobDone {
			t.Errorf("GET /debug/jobs/%s: %+v", id, e)
		}
		if e.Solve == nil || e.Solve.PruneCalls == 0 {
			t.Errorf("explain without solve shape: %+v", e.Solve)
		}
	}

	// Surface 4: per-outcome latency quantiles, in both exports.
	snap := reg.Snapshot()
	if q, ok := snap.Quantiles["svc/latency/e2e/ok"]; !ok || q.Count == 0 {
		t.Errorf("snapshot quantiles: %+v (ok=%t)", q, ok)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), `msrnet_svc_latency_e2e_ok{quantile="0.99"}`) {
		t.Errorf("/metrics missing the ok-class e2e summary")
	}
}
