package report

import (
	"bytes"
	"strings"
	"testing"

	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/netgen"
	"msrnet/internal/rctree"
)

func optimized(t *testing.T) (*core.Result, interface{ Terminals() []int }, func() string) {
	t.Helper()
	tr, err := netgen.Generate(3, netgen.Defaults(6))
	if err != nil {
		t.Fatal(err)
	}
	rt := tr.RootAt(tr.Terminals()[0])
	res, err := core.Optimize(rt, buslib.Default(), core.Options{Repeaters: true, SizeDrivers: true})
	if err != nil {
		t.Fatal(err)
	}
	best, err := res.Suite.MinARD()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Summary(&buf, rt, buslib.Default(), best); err != nil {
		t.Fatal(err)
	}
	return res, tr, buf.String
}

func TestSuiteReport(t *testing.T) {
	res, _, _ := optimized(t)
	var buf bytes.Buffer
	if err := Suite(&buf, res.Suite); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "cost") || !strings.Contains(s, "ARD") {
		t.Errorf("suite header missing: %q", s)
	}
	if got := strings.Count(s, "\n"); got != len(res.Suite)+1 {
		t.Errorf("rows = %d, want %d", got, len(res.Suite)+1)
	}
}

func TestSummaryAndPlacement(t *testing.T) {
	_, _, out := optimized(t)
	s := out()
	for _, want := range []string{"before", "after", "gain", "critical"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	// The min-ARD repeater+sizing solution must place something.
	if !strings.Contains(s, "repeater") && !strings.Contains(s, "driver") {
		t.Errorf("no placements reported:\n%s", s)
	}
}

func TestPlacementEmpty(t *testing.T) {
	tr, err := netgen.Generate(3, netgen.Defaults(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Placement(&buf, tr, rctree.Assignment{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no resources placed") {
		t.Errorf("empty placement output: %q", buf.String())
	}
}

func TestPlacementWidths(t *testing.T) {
	tr, err := netgen.Generate(3, netgen.Defaults(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	asg := rctree.Assignment{Widths: map[int]float64{0: 2}}
	if err := Placement(&buf, tr, asg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "width ×2") {
		t.Errorf("width line missing: %q", buf.String())
	}
}
