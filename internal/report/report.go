// Package report renders optimization outcomes as human-readable text:
// tradeoff suites, placement reports (which repeater at which location,
// in which orientation), and before/after summaries. Shared by cmd/msri
// and the examples so sign-off output looks the same everywhere.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"msrnet/internal/ard"
	"msrnet/internal/buslib"
	"msrnet/internal/core"
	"msrnet/internal/rctree"
	"msrnet/internal/topo"
)

// Suite writes the cost/ARD tradeoff table.
func Suite(w io.Writer, s core.Suite) error {
	if _, err := fmt.Fprintln(w, "  cost   ARD(ns)  repeaters"); err != nil {
		return err
	}
	for _, sol := range s {
		if _, err := fmt.Fprintf(w, "  %5.1f  %8.4f  %9d\n", sol.Cost, sol.ARD, sol.Repeaters()); err != nil {
			return err
		}
	}
	return nil
}

// Placement writes a location-sorted listing of every placed repeater,
// driver override and widened wire in the assignment.
func Placement(w io.Writer, tr *topo.Tree, asg rctree.Assignment) error {
	type line struct {
		key  int
		text string
	}
	var lines []line
	for node, pl := range asg.Repeaters {
		orient := "A-side-up"
		if !pl.ASideUp {
			orient = "B-side-up"
		}
		pt := tr.Node(node).Pt
		lines = append(lines, line{node, fmt.Sprintf(
			"repeater  n%-5d %-12s %-10s at (%8.1f, %8.1f) µm",
			node, pl.Rep.Name, orient, pt.X, pt.Y)})
	}
	for node, drv := range asg.Drivers {
		name := tr.Node(node).Term.Name
		lines = append(lines, line{node, fmt.Sprintf(
			"driver    %-6s -> %-12s (rout %.3g Ω, cost %.3g)",
			name, drv.Name, drv.Rout*1000, drv.Cost)})
	}
	for eid, width := range asg.Widths {
		e := tr.Edge(eid)
		lines = append(lines, line{1<<20 | eid, fmt.Sprintf(
			"wire      e%-5d width ×%g (%.0f µm, %d–%d)",
			eid, width, e.Length, e.A, e.B)})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].key < lines[j].key })
	if len(lines) == 0 {
		_, err := fmt.Fprintln(w, "  (no resources placed)")
		return err
	}
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "  %s\n", l.text); err != nil {
			return err
		}
	}
	return nil
}

// Summary writes a before/after comparison for a chosen solution,
// including the critical pair shift.
func Summary(w io.Writer, rt *topo.Rooted, tech buslib.Tech, sol core.RootSolution) error {
	tr := rt.Tree
	name := func(id int) string {
		if id < 0 {
			return "-"
		}
		return tr.Node(id).Term.Name
	}
	before := ard.Compute(rctree.NewNet(rt, tech, rctree.Assignment{}), ard.Options{})
	asg := sol.Assignment()
	after := ard.Compute(rctree.NewNet(rt, tech, asg), ard.Options{})
	var b strings.Builder
	fmt.Fprintf(&b, "before : ARD %.4f ns, critical %s → %s\n",
		before.ARD, name(before.CritSrc), name(before.CritSink))
	fmt.Fprintf(&b, "after  : ARD %.4f ns, critical %s → %s\n",
		after.ARD, name(after.CritSrc), name(after.CritSink))
	improvement := 0.0
	if before.ARD > 0 {
		improvement = 100 * (before.ARD - after.ARD) / before.ARD
	}
	fmt.Fprintf(&b, "gain   : %.1f%% at cost %.1f (%d repeaters)\n",
		improvement, sol.Cost, sol.Repeaters())
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	return Placement(w, tr, asg)
}
