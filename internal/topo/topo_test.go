package topo

import (
	"math"
	"math/rand"
	"testing"

	"msrnet/internal/buslib"
	"msrnet/internal/geom"
)

func term(name string) buslib.Terminal {
	return buslib.Terminal{Name: name, IsSource: true, IsSink: true, Cin: 0.05, Rout: 0.4}
}

// line builds a 2-terminal net with one wire of the given length.
func line(length float64) (*Tree, int, int) {
	t := New()
	a := t.AddTerminal(geom.Pt(0, 0), term("a"))
	b := t.AddTerminal(geom.Pt(length, 0), term("b"))
	t.AddEdge(a, b, length)
	return t, a, b
}

func TestAddAndQuery(t *testing.T) {
	tr, a, b := line(1000)
	if tr.NumNodes() != 2 || tr.NumEdges() != 1 {
		t.Fatalf("nodes=%d edges=%d", tr.NumNodes(), tr.NumEdges())
	}
	if tr.Node(a).Kind != Terminal || tr.Node(b).Kind != Terminal {
		t.Error("terminal kinds wrong")
	}
	if got := tr.Edge(0).Other(a); got != b {
		t.Errorf("Other = %d", got)
	}
	if tr.Degree(a) != 1 {
		t.Errorf("Degree = %d", tr.Degree(a))
	}
	if tr.TotalWireLength() != 1000 {
		t.Errorf("TotalWireLength = %g", tr.TotalWireLength())
	}
}

func TestAddEdgeAutoUsesManhattan(t *testing.T) {
	tr := New()
	a := tr.AddTerminal(geom.Pt(0, 0), term("a"))
	b := tr.AddTerminal(geom.Pt(300, 400), term("b"))
	tr.AddEdgeAuto(a, b)
	if got := tr.Edge(0).Length; got != 700 {
		t.Errorf("auto length = %g, want 700", got)
	}
}

func TestValidateGood(t *testing.T) {
	tr, _, _ := line(1000)
	tr.PlaceInsertionPoints(400)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsNonLeafTerminal(t *testing.T) {
	tr := New()
	a := tr.AddTerminal(geom.Pt(0, 0), term("a"))
	b := tr.AddTerminal(geom.Pt(1, 0), term("b"))
	c := tr.AddTerminal(geom.Pt(2, 0), term("c"))
	tr.AddEdge(a, b, 100)
	tr.AddEdge(b, c, 100)
	if err := tr.Validate(); err == nil {
		t.Fatal("expected non-leaf terminal error")
	}
	tr.EnsureTerminalLeaves()
	if err := tr.Validate(); err != nil {
		t.Fatalf("after EnsureTerminalLeaves: %v", err)
	}
	// b became a Steiner node with a zero-length pendant terminal.
	if len(tr.Terminals()) != 3 {
		t.Errorf("terminals = %d, want 3", len(tr.Terminals()))
	}
	if tr.TotalWireLength() != 200 {
		t.Errorf("wirelength changed: %g", tr.TotalWireLength())
	}
}

func TestValidateDetectsDisconnected(t *testing.T) {
	tr := New()
	tr.AddTerminal(geom.Pt(0, 0), term("a"))
	tr.AddTerminal(geom.Pt(1, 0), term("b"))
	if err := tr.Validate(); err == nil {
		t.Fatal("expected error for forest")
	}
}

func TestSplitEdgePreservesLengthAndGeometry(t *testing.T) {
	tr, a, b := line(1000)
	mid := tr.SplitEdge(0, 0.25, Insertion)
	if tr.NumNodes() != 3 || tr.NumEdges() != 2 {
		t.Fatalf("nodes=%d edges=%d", tr.NumNodes(), tr.NumEdges())
	}
	if tr.TotalWireLength() != 1000 {
		t.Errorf("length not preserved: %g", tr.TotalWireLength())
	}
	if got := tr.Node(mid).Pt; !geom.Eq(got, geom.Pt(250, 0), 1e-9) {
		t.Errorf("split point at %v", got)
	}
	if tr.Degree(mid) != 2 || tr.Degree(a) != 1 || tr.Degree(b) != 1 {
		t.Error("degrees wrong after split")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitEdgePanicsOnBadFrac(t *testing.T) {
	tr, _, _ := line(100)
	for _, f := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SplitEdge(frac=%g) did not panic", f)
				}
			}()
			tr.SplitEdge(0, f, Insertion)
		}()
	}
}

func TestPlaceInsertionPointsSpacing(t *testing.T) {
	for _, length := range []float64{100, 799, 800, 801, 1600, 5000, 12345} {
		tr, _, _ := line(length)
		added := tr.PlaceInsertionPoints(800)
		if added < 1 {
			t.Fatalf("length %g: added %d points, want ≥ 1", length, added)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("length %g: %v", length, err)
		}
		// Every resulting wire must be ≤ 800 µm and lengths must sum up.
		var sum float64
		for i := 0; i < tr.NumEdges(); i++ {
			l := tr.Edge(i).Length
			if l > 800+1e-9 {
				t.Errorf("length %g: segment %d is %g > 800", length, i, l)
			}
			sum += l
		}
		if math.Abs(sum-length) > 1e-6 {
			t.Errorf("length %g: segments sum to %g", length, sum)
		}
	}
}

func TestPlaceInsertionPointsEvenSpacing(t *testing.T) {
	tr, _, _ := line(2400)
	tr.PlaceInsertionPoints(800)
	// 2400/800 = 3 → 2 points → 3 segments of 800.
	if tr.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", tr.NumEdges())
	}
	for i := 0; i < tr.NumEdges(); i++ {
		if math.Abs(tr.Edge(i).Length-800) > 1e-9 {
			t.Errorf("segment %d length %g, want 800", i, tr.Edge(i).Length)
		}
	}
}

func TestPlaceInsertionPointsSkipsZeroLength(t *testing.T) {
	tr := New()
	a := tr.AddTerminal(geom.Pt(0, 0), term("a"))
	s := tr.AddSteiner(geom.Pt(0, 0))
	b := tr.AddTerminal(geom.Pt(100, 0), term("b"))
	tr.AddEdge(a, s, 0)
	tr.AddEdge(s, b, 100)
	added := tr.PlaceInsertionPoints(800)
	if added != 1 {
		t.Errorf("added = %d, want 1 (zero-length edge skipped)", added)
	}
}

func TestRootAtOrientation(t *testing.T) {
	// a - s - b, plus s - c.
	tr := New()
	a := tr.AddTerminal(geom.Pt(0, 0), term("a"))
	s := tr.AddSteiner(geom.Pt(1, 0))
	b := tr.AddTerminal(geom.Pt(2, 0), term("b"))
	c := tr.AddTerminal(geom.Pt(1, 1), term("c"))
	tr.AddEdge(a, s, 100)
	tr.AddEdge(s, b, 100)
	tr.AddEdge(s, c, 100)
	r := tr.RootAt(a)
	if r.Parent[a] != -1 || r.Parent[s] != a || r.Parent[b] != s || r.Parent[c] != s {
		t.Fatalf("parents wrong: %v", r.Parent)
	}
	if len(r.Children[s]) != 2 {
		t.Errorf("children of s: %v", r.Children[s])
	}
	// Post-order: every node after its children.
	pos := make(map[int]int)
	for i, v := range r.PostOrder {
		pos[v] = i
	}
	for v, p := range r.Parent {
		if p != -1 && pos[v] > pos[p] {
			t.Errorf("node %d appears after its parent %d", v, p)
		}
	}
	if r.PostOrder[len(r.PostOrder)-1] != a {
		t.Error("root not last in post-order")
	}
	if r.Depth(b) != 2 || r.Depth(a) != 0 {
		t.Error("depths wrong")
	}
}

func TestPath(t *testing.T) {
	tr := New()
	a := tr.AddTerminal(geom.Pt(0, 0), term("a"))
	s := tr.AddSteiner(geom.Pt(1, 0))
	b := tr.AddTerminal(geom.Pt(2, 0), term("b"))
	c := tr.AddTerminal(geom.Pt(1, 1), term("c"))
	tr.AddEdge(a, s, 100)
	tr.AddEdge(s, b, 100)
	tr.AddEdge(s, c, 100)
	r := tr.RootAt(a)
	got := r.Path(b, c)
	want := []int{b, s, c}
	if len(got) != len(want) {
		t.Fatalf("Path = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Path = %v, want %v", got, want)
		}
	}
	if p := r.Path(b, b); len(p) != 1 || p[0] != b {
		t.Errorf("Path(b,b) = %v", p)
	}
}

func TestSourcesSinksFilters(t *testing.T) {
	tr := New()
	src := buslib.Terminal{Name: "s", IsSource: true, Cin: 0.1, Rout: 0.4}
	snk := buslib.Terminal{Name: "k", IsSink: true, Cin: 0.1}
	a := tr.AddTerminal(geom.Pt(0, 0), src)
	b := tr.AddTerminal(geom.Pt(1, 0), snk)
	tr.AddEdge(a, b, 50)
	if got := tr.Sources(); len(got) != 1 || got[0] != a {
		t.Errorf("Sources = %v", got)
	}
	if got := tr.Sinks(); len(got) != 1 || got[0] != b {
		t.Errorf("Sinks = %v", got)
	}
}

func TestRandomTreesValidateAndRoot(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		tr := New()
		n := 2 + r.Intn(20)
		ids := []int{tr.AddSteiner(geom.Pt(r.Float64(), r.Float64()))}
		for i := 1; i < n; i++ {
			id := tr.AddSteiner(geom.Pt(r.Float64()*1000, r.Float64()*1000))
			tr.AddEdge(ids[r.Intn(len(ids))], id, r.Float64()*500+1)
			ids = append(ids, id)
		}
		// Attach terminals to all current leaves plus a couple extra.
		for _, id := range ids {
			if tr.Degree(id) <= 1 || r.Intn(3) == 0 {
				tid := tr.AddTerminal(geom.Pt(r.Float64()*1000, r.Float64()*1000), term("t"))
				tr.AddEdge(id, tid, r.Float64()*500+1)
			}
		}
		tr.PlaceInsertionPoints(200 + r.Float64()*600)
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		root := tr.Terminals()[0]
		rt := tr.RootAt(root)
		if len(rt.PostOrder) != tr.NumNodes() {
			t.Fatalf("trial %d: post-order covers %d of %d", trial, len(rt.PostOrder), tr.NumNodes())
		}
		for v := 0; v < tr.NumNodes(); v++ {
			if v != root && rt.Parent[v] == -1 {
				t.Fatalf("trial %d: node %d unparented", trial, v)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if Terminal.String() != "terminal" || Steiner.String() != "steiner" || Insertion.String() != "insertion" {
		t.Error("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown Kind empty")
	}
}

func TestSetTerminalPanicsOnNonTerminal(t *testing.T) {
	tr := New()
	s := tr.AddSteiner(geom.Pt(0, 0))
	defer func() {
		if recover() == nil {
			t.Error("SetTerminal on steiner did not panic")
		}
	}()
	tr.SetTerminal(s, term("x"))
}
