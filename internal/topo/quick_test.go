package topo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"msrnet/internal/geom"
)

// TestQuickSplitPreservesLength: splitting any edge at any interior
// fraction preserves total wirelength and keeps the tree valid.
func TestQuickSplitPreservesLength(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	prop := func(lenSeed, fracSeed uint32) bool {
		length := 1 + float64(lenSeed%100000)/10
		frac := 0.001 + 0.998*float64(fracSeed%1000)/1000
		tr, _, _ := lineForQuick(length)
		before := tr.TotalWireLength()
		tr.SplitEdge(0, frac, Insertion)
		after := tr.TotalWireLength()
		return math.Abs(before-after) < 1e-9*(1+before) && tr.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400, Rand: r}); err != nil {
		t.Error(err)
	}
}

func lineForQuick(length float64) (*Tree, int, int) {
	tr := New()
	a := tr.AddTerminal(geom.Pt(0, 0), term("a"))
	b := tr.AddTerminal(geom.Pt(length, 0), term("b"))
	tr.AddEdge(a, b, length)
	return tr, a, b
}

// TestQuickInsertionSpacingBound: after PlaceInsertionPoints every wire
// respects the bound, total length is conserved, and each original wire
// got at least one point.
func TestQuickInsertionSpacingBound(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	prop := func(lenSeed, spacingSeed uint32) bool {
		length := 10 + float64(lenSeed%500000)/10
		spacing := 50 + float64(spacingSeed%20000)/10
		tr, _, _ := lineForQuick(length)
		added := tr.PlaceInsertionPoints(spacing)
		if added < 1 {
			return false
		}
		var sum float64
		for i := 0; i < tr.NumEdges(); i++ {
			l := tr.Edge(i).Length
			if l > spacing+1e-9 {
				return false
			}
			sum += l
		}
		return math.Abs(sum-length) < 1e-6*(1+length)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Error(err)
	}
}

// TestQuickRootingInvariants: rooting at any node yields a post-order
// covering all nodes with children-before-parents and a single root.
func TestQuickRootingInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	prop := func(structSeed int64, rootPick uint8) bool {
		rr := rand.New(rand.NewSource(structSeed))
		tr := New()
		n := 2 + rr.Intn(15)
		ids := []int{tr.AddSteiner(geom.Pt(0, 0))}
		for i := 1; i < n; i++ {
			id := tr.AddSteiner(geom.Pt(float64(i), 0))
			tr.AddEdge(ids[rr.Intn(len(ids))], id, rr.Float64()*100+1)
			ids = append(ids, id)
		}
		root := ids[int(rootPick)%len(ids)]
		rt := tr.RootAt(root)
		if len(rt.PostOrder) != tr.NumNodes() {
			return false
		}
		pos := make(map[int]int, len(rt.PostOrder))
		for i, v := range rt.PostOrder {
			pos[v] = i
		}
		roots := 0
		for v := 0; v < tr.NumNodes(); v++ {
			if rt.Parent[v] == -1 {
				roots++
				continue
			}
			if pos[v] > pos[rt.Parent[v]] {
				return false
			}
		}
		return roots == 1 && rt.Parent[root] == -1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Error(err)
	}
}
